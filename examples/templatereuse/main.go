// Template reuse example (§6, Figs 17–18): learn a state-space map for a
// repeatable sensitive application with one batch co-runner, export it as
// a JSON template, then seed a fresh execution with a *different* batch
// co-runner from that template — the learned violation knowledge carries
// over, so the second run throttles dangerous transitions it has never
// itself experienced.
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/statespace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "templatereuse:", err)
		os.Exit(1)
	}
}

func vlc(rng *rand.Rand) sim.QoSApp {
	return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
}

func run() error {
	// Run 1: learn with CPUBomb, Stay-Away active.
	learn, err := experiments.Run(experiments.Scenario{
		Name:        "template-learn",
		SensitiveID: "vlc",
		Sensitive:   vlc,
		Batch: []experiments.Placement{{ID: "batch", StartTick: 20, App: func(*rand.Rand) sim.App {
			return apps.NewCPUBomb(apps.DefaultCPUBombConfig())
		}}},
		Ticks:    250,
		Seed:     42,
		StayAway: true,
	})
	if err != nil {
		return err
	}
	tpl := learn.Runtime.ExportTemplate("vlc-stream")
	var buf bytes.Buffer
	if _, err := tpl.WriteTo(&buf); err != nil {
		return err
	}
	fmt.Printf("learned template with CPUBomb: %d states (%d violation), %d bytes of JSON\n",
		len(tpl.States), learn.Report.ViolationStates, buf.Len())

	// The template survives serialization: parse it back as a new run
	// would from disk.
	parsed, err := statespace.ReadTemplate(&buf)
	if err != nil {
		return err
	}

	soplex := func(rng *rand.Rand) sim.App {
		cfg := apps.DefaultSoplexConfig()
		cfg.TotalWork = 0
		return apps.NewSoplex(cfg, rng)
	}

	// Run 2: the same VLC stream alongside Soplex — a batch application
	// the template has never seen — with the template loaded and actions
	// disabled (the Fig 18 validation protocol). Every violation the new
	// co-location suffers should map into the violation region the
	// CPUBomb run learned: the violation states characterize the
	// *sensitive application's* starvation, not the co-runner's identity.
	validate, err := experiments.Run(experiments.Scenario{
		Name:           "template-validate",
		SensitiveID:    "vlc",
		Sensitive:      vlc,
		Batch:          []experiments.Placement{{ID: "batch", StartTick: 20, App: soplex}},
		Ticks:          250,
		Seed:           43,
		StayAway:       true,
		DisableActions: true,
		Template:       parsed,
	})
	if err != nil {
		return err
	}
	tplSpace, err := statespace.Import(parsed)
	if err != nil {
		return err
	}
	var total, inRegion int
	for _, r := range validate.Records {
		if !r.Violation {
			continue
		}
		total++
		if _, in := tplSpace.InViolationRange(r.Coord); in {
			inRegion++
		}
	}
	fmt.Printf("\nVLC + Soplex with the CPUBomb template, actions disabled (Fig 18 protocol):\n")
	fmt.Printf("  violations observed:                    %d\n", total)
	fmt.Printf("  inside the template's violation region: %d\n", inRegion)

	// Run 3: the same co-location with actions enabled and the template
	// loaded — the seeded runtime throttles transitions it never itself
	// experienced. Compare when protection first engages.
	firstPause := func(records []experiments.TickRecord) int {
		for _, r := range records {
			if r.Throttled {
				return r.Tick
			}
		}
		return -1
	}
	cold, err := experiments.Run(experiments.Scenario{
		Name:        "template-cold",
		SensitiveID: "vlc",
		Sensitive:   vlc,
		Batch:       []experiments.Placement{{ID: "batch", StartTick: 20, App: soplex}},
		Ticks:       250,
		Seed:        43,
		StayAway:    true,
	})
	if err != nil {
		return err
	}
	seeded, err := experiments.Run(experiments.Scenario{
		Name:        "template-seeded",
		SensitiveID: "vlc",
		Sensitive:   vlc,
		Batch:       []experiments.Placement{{ID: "batch", StartTick: 20, App: soplex}},
		Ticks:       250,
		Seed:        43,
		StayAway:    true,
		Template:    parsed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nWith actions enabled (batch starts at tick 20):\n")
	fmt.Printf("  cold start:      first throttle at tick %d\n", firstPause(cold.Records))
	fmt.Printf("  template-seeded: first throttle at tick %d\n", firstPause(seeded.Records))
	return nil
}
