// Baselines example: the comparison that motivates the paper (§1, §8).
// A static profiling policy (Bubble-Up style) profiles each application in
// isolation and admits a co-location only when the summed peak demands
// fit the host. Because it keys on peaks, it rejects the VLC+Twitter
// co-location outright — forfeiting all the utilization Stay-Away
// harvests from Twitter's phases and VLC's light scenes.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/apps"
	"repro/internal/baseline"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "baselines:", err)
		os.Exit(1)
	}
}

func run() error {
	host := sim.DefaultHostConfig()
	vlc := func(rng *rand.Rand) sim.QoSApp {
		return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
	}
	twitter := func(rng *rand.Rand) sim.App {
		cfg := apps.DefaultTwitterConfig()
		cfg.TotalWork = 0
		return apps.NewTwitterAnalysis(cfg, rng)
	}

	fmt.Println("VLC streaming + Twitter-Analysis on a 4-core host, 300 periods")
	fmt.Println()

	// 1. Static profiling (peak-fit with 5% headroom).
	static, err := baseline.RunStatic(host, vlc,
		[]baseline.AppFactory{twitter}, 60, 300, 0.95, 42)
	if err != nil {
		return err
	}
	admitted := "rejected"
	if static.Admitted {
		admitted = "admitted"
	}
	fmt.Printf("%-22s co-location %s (%s)\n", "static profiling:", admitted, static.Reason)
	fmt.Printf("%-22s violations %.1f%%, gained utilization %.1f%%\n\n",
		"", 100*static.ViolationRate, 100*static.MeanGain)

	// 2. No prevention: co-locate blindly.
	noPrev, err := experiments.Run(experiments.Scenario{
		Name:        "baseline-noprev",
		SensitiveID: "vlc",
		Sensitive:   vlc,
		Batch:       []experiments.Placement{{ID: "twitter", StartTick: 20, App: twitter}},
		Ticks:       300,
		Seed:        42,
	})
	if err != nil {
		return err
	}
	vsNo := experiments.Violations(noPrev.Records)
	fmt.Printf("%-22s violations %.1f%%, gained utilization %.1f%%\n\n",
		"no prevention:", 100*vsNo.Rate,
		100*experiments.Mean(experiments.GainSeries(noPrev.Records)))

	// 3. Stay-Away.
	sa, err := experiments.Run(experiments.Scenario{
		Name:        "baseline-stayaway",
		SensitiveID: "vlc",
		Sensitive:   vlc,
		Batch:       []experiments.Placement{{ID: "twitter", StartTick: 20, App: twitter}},
		Ticks:       300,
		Seed:        42,
		StayAway:    true,
	})
	if err != nil {
		return err
	}
	vsSA := experiments.Violations(sa.Records)
	fmt.Printf("%-22s violations %.1f%%, gained utilization %.1f%%\n\n",
		"Stay-Away:", 100*vsSA.Rate,
		100*experiments.Mean(experiments.GainSeries(sa.Records)))

	fmt.Println("Static profiling protects QoS by forfeiting the co-location entirely;")
	fmt.Println("no prevention takes the utilization but violates QoS; Stay-Away gets")
	fmt.Println("most of the utilization at a fraction of the violations.")
	return nil
}
