// Webservice example: the second sensitive application of the evaluation
// (§7.1, Figs 12–16). Sweeps the three workload mixes (CPU-intensive,
// memory-intensive, mixed) against two batch co-runners and prints the
// QoS / gained-utilization trade-off with Stay-Away, plus a trace-driven
// run showing the middleware exploiting diurnal low-intensity valleys.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webservice:", err)
		os.Exit(1)
	}
}

func webApp(kind apps.WorkloadKind, intensity apps.Intensity) func(*rand.Rand) sim.QoSApp {
	return func(rng *rand.Rand) sim.QoSApp {
		cfg := apps.DefaultWebserviceConfig(kind)
		if intensity != nil {
			cfg.Intensity = intensity
		}
		return apps.NewWebservice(cfg, rng)
	}
}

func run() error {
	batches := map[string]func(rng *rand.Rand) sim.App{
		"twitter": func(rng *rand.Rand) sim.App {
			cfg := apps.DefaultTwitterConfig()
			cfg.TotalWork = 0
			return apps.NewTwitterAnalysis(cfg, rng)
		},
		"memorybomb": func(rng *rand.Rand) sim.App {
			return apps.NewMemoryBomb(apps.DefaultMemoryBombConfig(), rng)
		},
	}

	fmt.Println("Webservice × batch co-runner, 300 periods each, with Stay-Away")
	fmt.Printf("%-18s %-12s %12s %12s\n", "workload", "batch", "violations", "gained util")
	for _, kind := range []apps.WorkloadKind{apps.CPUIntensive, apps.MemoryIntensive, apps.Mixed} {
		for _, name := range []string{"twitter", "memorybomb"} {
			res, err := experiments.Run(experiments.Scenario{
				Name:        fmt.Sprintf("web-%s-%s", kind, name),
				SensitiveID: "web",
				Sensitive:   webApp(kind, nil),
				Batch:       []experiments.Placement{{ID: name, StartTick: 20, App: batches[name]}},
				Ticks:       300,
				Seed:        42,
				StayAway:    true,
			})
			if err != nil {
				return err
			}
			vs := experiments.Violations(res.Records)
			fmt.Printf("%-18s %-12s %11.1f%% %11.1f%%\n",
				kind, name, 100*vs.Rate,
				100*experiments.Mean(experiments.GainSeries(res.Records)))
		}
	}

	// Trace-driven run: the diurnal valleys of the Fig 1 trace are where
	// Stay-Away lets the batch job through.
	intensity, err := experiments.DiurnalIntensity(7, 300)
	if err != nil {
		return err
	}
	res, err := experiments.Run(experiments.Scenario{
		Name:        "web-diurnal",
		SensitiveID: "web",
		Sensitive:   webApp(apps.CPUIntensive, intensity),
		Batch:       []experiments.Placement{{ID: "twitter", StartTick: 10, App: batches["twitter"]}},
		Ticks:       300,
		Seed:        42,
		StayAway:    true,
	})
	if err != nil {
		return err
	}
	intens := make([]float64, 300)
	for i := range intens {
		intens[i] = intensity(i)
	}
	fmt.Println("\nDiurnal workload (o = offered intensity, + = batch throttled):")
	fmt.Println(experiments.RenderSeries(experiments.ChartOptions{
		YMin: 0, YMax: 1.05, Height: 10,
	}, experiments.QoSSeries(res.Records), intens, experiments.ThrottleSeries(res.Records)))
	vs := experiments.Violations(res.Records)
	fmt.Printf("violations: %.1f%%  gained utilization: %.1f%%\n",
		100*vs.Rate, 100*experiments.Mean(experiments.GainSeries(res.Records)))
	return nil
}
