// Quickstart: wire the Stay-Away runtime to a simulated host by hand —
// no experiment harness — to show the minimal public surface:
//
//  1. build a simulator and containers (the substrate),
//  2. build a core.Runtime over an Environment + Actuator,
//  3. call Period() once per monitoring interval,
//  4. read the report.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The host: a 4-core machine, like the paper's testbed.
	host := sim.DefaultHostConfig()
	simulator, err := sim.NewSimulator(host)
	if err != nil {
		return err
	}

	// A latency-sensitive VLC stream and a batch CPU hog, each in its own
	// container.
	vlc := apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rand.New(rand.NewSource(1)))
	if _, err := simulator.AddContainer("vlc", vlc); err != nil {
		return err
	}
	if _, err := simulator.AddContainer("bomb", apps.NewCPUBomb(apps.DefaultCPUBombConfig())); err != nil {
		return err
	}

	// 2. The middleware: observes the simulator, freezes/thaws the batch
	// container. On a real host the same interfaces wrap cgroup stats and
	// SIGSTOP/SIGCONT.
	env := experiments.NewSimEnvironment(simulator, "vlc", []string{"bomb"}, vlc)
	cfg := core.DefaultConfig("vlc", []string{"bomb"},
		metrics.DefaultRanges(host.Cores, host.MemoryMB, host.DiskMBps, host.NetMbps))
	runtime, err := core.New(cfg, env, experiments.NewSimActuator(simulator))
	if err != nil {
		return err
	}

	// 3. Drive time: one simulator tick, then one Stay-Away period.
	violations := 0
	for tick := 0; tick < 200; tick++ {
		simulator.Step()
		ev, err := runtime.Period()
		if err != nil {
			return err
		}
		if ev.Violation {
			violations++
			fmt.Printf("period %3d: QoS violation at state %d (throttled=%v)\n",
				ev.Period, ev.StateID, ev.Throttled)
		}
	}

	// 4. The outcome: violations concentrate early (learning); once the
	// violation states are mapped, the bomb stays frozen except for
	// exploratory resumes.
	fmt.Println()
	fmt.Println(runtime.Report())
	fmt.Printf("\nmachine utilization: %.1f%% (VLC alone would be ≈%.0f%%)\n",
		100*simulator.Utilization(), 100*145.0/host.CPUCapacity())
	return nil
}
