// VLC streaming example: the paper's headline scenario (§7.2, Figs 8–11).
// A VLC streaming server is co-located first with CPUBomb (the worst-case
// co-runner) and then with Twitter-Analysis (a phase-alternating batch
// job), each with and without Stay-Away, printing QoS and gained
// utilization for all four runs.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vlcstreaming:", err)
		os.Exit(1)
	}
}

func run() error {
	vlc := func(rng *rand.Rand) sim.QoSApp {
		return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
	}
	batches := []struct {
		name string
		app  func(rng *rand.Rand) sim.App
	}{
		{"cpubomb", func(*rand.Rand) sim.App { return apps.NewCPUBomb(apps.DefaultCPUBombConfig()) }},
		{"twitter", func(rng *rand.Rand) sim.App {
			cfg := apps.DefaultTwitterConfig()
			cfg.TotalWork = 0
			return apps.NewTwitterAnalysis(cfg, rng)
		}},
	}

	threshold := 1.0
	for _, b := range batches {
		fmt.Printf("=== VLC streaming + %s ===\n\n", b.name)
		for _, protected := range []bool{false, true} {
			res, err := experiments.Run(experiments.Scenario{
				Name:        "vlc-" + b.name,
				SensitiveID: "vlc",
				Sensitive:   vlc,
				Batch:       []experiments.Placement{{ID: b.name, StartTick: 20, App: b.app}},
				Ticks:       300,
				Seed:        42,
				StayAway:    protected,
			})
			if err != nil {
				return err
			}
			label := "without prevention"
			if protected {
				label = "with Stay-Away"
			}
			vs := experiments.Violations(res.Records)
			fmt.Println(experiments.RenderSeries(experiments.ChartOptions{
				Title: fmt.Sprintf("%s — normalized QoS (threshold line at 1.0)", label),
				HLine: &threshold,
				YMin:  0, YMax: 1.3,
				Height: 9,
			}, experiments.QoSSeries(res.Records)))
			fmt.Printf("violations: %d/%d (%.1f%%)   gained utilization: %.1f%%\n\n",
				vs.Violations, vs.Ticks, 100*vs.Rate,
				100*experiments.Mean(experiments.GainSeries(res.Records)))
		}
	}
	return nil
}
