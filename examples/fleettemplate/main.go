// Fleet template sharing example (§6 across hosts): two simulated hosts
// run the same sensitive application against different batch co-runners,
// connected through the template registry control plane.
//
// Host A learns a state-space map against CPUBomb and pushes it to the
// registry. Host B — starting later, against Soplex, a co-runner the map
// has never seen — pulls the consensus at startup and engages protection
// earlier than a cold start, with fewer learning-phase QoS violations.
// The example finishes by simulating a registry outage: the syncer
// degrades gracefully and resyncs once the registry returns.
//
// Everything runs in-process over an httptest server — no real network.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"

	"repro/internal/apps"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/registry"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleettemplate:", err)
		os.Exit(1)
	}
}

func vlc(rng *rand.Rand) sim.QoSApp {
	return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
}

// outage is an http.RoundTripper with an off switch — the "network cable"
// between a host and the registry.
type outage struct {
	down  bool
	inner http.RoundTripper
}

func (o *outage) RoundTrip(req *http.Request) (*http.Response, error) {
	if o.down {
		return nil, fmt.Errorf("registry unreachable (simulated outage)")
	}
	return o.inner.RoundTrip(req)
}

func run() error {
	// The control plane: in-memory registry behind the fleet HTTP API.
	reg, err := registry.Open(registry.Config{})
	if err != nil {
		return err
	}
	srv, err := fleet.NewServer(fleet.ServerConfig{Registry: reg})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("registry listening on %s\n\n", ts.URL)

	// Host A: learn against CPUBomb with Stay-Away active, push the map.
	hostA, err := fleet.NewClient(fleet.ClientConfig{BaseURL: ts.URL})
	if err != nil {
		return err
	}
	learn, err := experiments.Run(experiments.Scenario{
		Name:        "host-a-learn",
		SensitiveID: "vlc",
		Sensitive:   vlc,
		Batch: []experiments.Placement{{ID: "batch", StartTick: 20, App: func(*rand.Rand) sim.App {
			return apps.NewCPUBomb(apps.DefaultCPUBombConfig())
		}}},
		Ticks:    250,
		Seed:     42,
		StayAway: true,
	})
	if err != nil {
		return err
	}
	ctx := context.Background()
	pushed, err := hostA.PushTemplate(ctx, "host-a", "vlc-stream",
		learn.Runtime.ExportTemplate("vlc-stream"))
	if err != nil {
		return err
	}
	fmt.Printf("host A learned vs CPUBomb and pushed: revision %d, %d states (%d violation)\n\n",
		pushed.Revision, pushed.States, pushed.ViolationStates)

	// Host B: pull the consensus, then face Soplex — a co-runner host A
	// never saw — seeded vs cold with identical randomness.
	hostB, err := fleet.NewClient(fleet.ClientConfig{BaseURL: ts.URL})
	if err != nil {
		return err
	}
	tpl, rev, err := hostB.PullTemplate(ctx, "vlc-stream", "", 0)
	if err != nil {
		return err
	}
	fmt.Printf("host B pulled revision %d (%d states)\n", rev, len(tpl.States))

	soplex := func(rng *rand.Rand) sim.App {
		cfg := apps.DefaultSoplexConfig()
		cfg.TotalWork = 0
		return apps.NewSoplex(cfg, rng)
	}
	hostBRun := func(name string, seeded bool) (*experiments.RunResult, error) {
		sc := experiments.Scenario{
			Name:        name,
			SensitiveID: "vlc",
			Sensitive:   vlc,
			Batch:       []experiments.Placement{{ID: "batch", StartTick: 20, App: soplex}},
			Ticks:       250,
			Seed:        43,
			StayAway:    true,
		}
		if seeded {
			sc.Template = tpl
		}
		return experiments.Run(sc)
	}
	cold, err := hostBRun("host-b-cold", false)
	if err != nil {
		return err
	}
	seeded, err := hostBRun("host-b-seeded", true)
	if err != nil {
		return err
	}
	firstThrottle := func(res *experiments.RunResult) int {
		for _, r := range res.Records {
			if r.Throttled {
				return r.Tick
			}
		}
		return -1
	}
	fmt.Printf("\nhost B vs Soplex (batch arrives at tick 20):\n")
	fmt.Printf("  cold start:    first throttle at tick %d, %d violations\n",
		firstThrottle(cold), cold.Report.Violations)
	fmt.Printf("  fleet-seeded:  first throttle at tick %d, %d violations\n",
		firstThrottle(seeded), seeded.Report.Violations)

	// Host B contributes its own learning back to the consensus.
	merged, err := hostB.PushTemplate(ctx, "host-b", "vlc-stream",
		seeded.Runtime.ExportTemplate("vlc-stream"))
	if err != nil {
		return err
	}
	fmt.Printf("\nhost B pushed back: revision %d, %d states from %d hosts\n",
		merged.Revision, merged.States, merged.Hosts)

	// Degraded mode: the registry drops off the network mid-operation.
	cable := &outage{inner: http.DefaultTransport}
	flaky, err := fleet.NewClient(fleet.ClientConfig{BaseURL: ts.URL, Transport: cable})
	if err != nil {
		return err
	}
	syncer := fleet.NewSyncer(flaky, "host-b", "vlc-stream")
	cable.down = true
	if err := syncer.PushTemplate(seeded.Runtime.ExportTemplate("vlc-stream")); err != nil {
		degraded, lastErr := syncer.Degraded()
		fmt.Printf("\nregistry outage: push failed (%v), degraded=%v — host keeps its local map\n",
			lastErr, degraded)
	}
	cable.down = false
	if err := syncer.PushTemplate(seeded.Runtime.ExportTemplate("vlc-stream")); err != nil {
		return err
	}
	degraded, _ := syncer.Degraded()
	fmt.Printf("registry back: resync succeeded (revision %d), degraded=%v\n",
		syncer.LastRevision(), degraded)
	return nil
}
