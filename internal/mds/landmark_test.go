package mds

import (
	"math/rand"
	"testing"
)

func clusteredVectors(rng *rand.Rand, nPerCluster int) [][]float64 {
	centers := [][]float64{
		{0.1, 0.1, 0.1, 0.1},
		{0.9, 0.9, 0.1, 0.1},
		{0.1, 0.9, 0.9, 0.5},
	}
	var out [][]float64
	for _, c := range centers {
		for i := 0; i < nPerCluster; i++ {
			v := make([]float64, len(c))
			for d := range v {
				v[d] = c[d] + rng.NormFloat64()*0.02
			}
			out = append(out, v)
		}
	}
	return out
}

func TestLandmarkMDSValidation(t *testing.T) {
	m, _ := NewMatrix(5)
	if _, err := LandmarkMDS(m, 3, Options{MaxIter: 10}); err == nil {
		t.Error("nil RNG should error")
	}
}

func TestLandmarkMDSMatchesFullOnClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vecs := clusteredVectors(rng, 30) // 90 points
	delta, err := DistanceMatrix(vecs)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SMACOF(delta, DefaultOptions(rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	lm, err := LandmarkMDS(delta, 12, DefaultOptions(rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	if len(lm.Config) != 90 || len(lm.Landmarks) != 12 {
		t.Fatalf("config=%d landmarks=%d", len(lm.Config), len(lm.Landmarks))
	}
	// Landmark stress stays within a modest factor of full SMACOF stress.
	if lm.Stress > full.Stress*3+0.05 {
		t.Errorf("landmark stress %v too far above full %v", lm.Stress, full.Stress)
	}
	// Cluster separation must survive: max intra vs min inter distance.
	var maxIntra, minInter float64
	minInter = 1e18
	for i := 0; i < 90; i++ {
		for j := i + 1; j < 90; j++ {
			d := lm.Config[i].Dist(lm.Config[j])
			if i/30 == j/30 {
				if d > maxIntra {
					maxIntra = d
				}
			} else if d < minInter {
				minInter = d
			}
		}
	}
	if minInter < 2*maxIntra {
		t.Errorf("clusters blurred: intra=%v inter=%v", maxIntra, minInter)
	}
}

func TestLandmarkMDSKEqualsN(t *testing.T) {
	truth := []Coord{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 0.5}}
	delta := planted2D(truth)
	lm, err := LandmarkMDS(delta, 5, DefaultOptions(rand.New(rand.NewSource(2))))
	if err != nil {
		t.Fatal(err)
	}
	if lm.Stress > 1e-3 {
		t.Errorf("k=n stress = %v, want ≈0", lm.Stress)
	}
}

func TestLandmarkMDSTinyK(t *testing.T) {
	// k below 3 clamps to 3.
	truth := []Coord{{0, 0}, {3, 0}, {0, 4}, {3, 4}}
	delta := planted2D(truth)
	lm, err := LandmarkMDS(delta, 1, DefaultOptions(rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	if len(lm.Landmarks) != 3 {
		t.Errorf("landmarks = %d, want clamped 3", len(lm.Landmarks))
	}
	if lm.Stress > 0.05 {
		t.Errorf("stress = %v for exact planar data", lm.Stress)
	}
}

func TestLandmarkMDSCoincidentPoints(t *testing.T) {
	// All points identical: selection must terminate, config collapses.
	m, _ := NewMatrix(6)
	lm, err := LandmarkMDS(m, 4, DefaultOptions(rand.New(rand.NewSource(4))))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range lm.Config {
		if p.Dist(lm.Config[0]) > 1e-6 {
			t.Errorf("point %d did not collapse: %v", i, p)
		}
	}
}

func TestMaxminLandmarksSpread(t *testing.T) {
	// Two far clusters: the first two landmarks must hit both clusters.
	truth := []Coord{{0, 0}, {0.1, 0}, {0.2, 0}, {10, 0}, {10.1, 0}, {10.2, 0}}
	delta := planted2D(truth)
	lms := maxminLandmarks(delta.Size(), 2, delta.At, rand.New(rand.NewSource(5)))
	if len(lms) != 2 {
		t.Fatalf("landmarks = %v", lms)
	}
	sideA := lms[0] < 3
	sideB := lms[1] < 3
	if sideA == sideB {
		t.Errorf("landmarks %v landed in one cluster", lms)
	}
}

func TestLandmarkVectorsMatchesMatrixPath(t *testing.T) {
	// The vector path must be the same algorithm as the matrix path — only
	// the distance storage differs. Same seed → identical landmarks and
	// configuration (stress definitions differ by design).
	rng := rand.New(rand.NewSource(9))
	vecs := clusteredVectors(rng, 14) // ~40 points
	delta, err := DistanceMatrix(vecs)
	if err != nil {
		t.Fatal(err)
	}
	viaMatrix, err := LandmarkMDS(delta, 12, DefaultOptions(rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	viaVectors, err := LandmarkMDSVectors(vecs, 12, DefaultOptions(rand.New(rand.NewSource(3))))
	if err != nil {
		t.Fatal(err)
	}
	if len(viaMatrix.Landmarks) != len(viaVectors.Landmarks) {
		t.Fatalf("landmark counts differ: %v vs %v", viaMatrix.Landmarks, viaVectors.Landmarks)
	}
	for i, l := range viaMatrix.Landmarks {
		if viaVectors.Landmarks[i] != l {
			t.Fatalf("landmark %d differs: %d vs %d", i, l, viaVectors.Landmarks[i])
		}
	}
	for i, p := range viaMatrix.Config {
		if p.Dist(viaVectors.Config[i]) > 1e-9 {
			t.Fatalf("config %d differs: %v vs %v", i, p, viaVectors.Config[i])
		}
	}
}

func BenchmarkLandmarkVsFull200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vecs := clusteredVectors(rng, 67) // ~200 points
	delta, err := DistanceMatrix(vecs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("landmark-k20", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LandmarkMDS(delta, 20, DefaultOptions(rand.New(rand.NewSource(1)))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-smacof", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SMACOF(delta, DefaultOptions(rand.New(rand.NewSource(1)))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
