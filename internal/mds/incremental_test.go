package mds

import (
	"math"
	"math/rand"
	"testing"
)

func TestPlaceFirstPoint(t *testing.T) {
	p, stress, err := Place(nil, nil, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p != (Coord{}) || stress != 0 {
		t.Errorf("first point = %v, %v; want origin, 0", p, stress)
	}
}

func TestPlaceSingleAnchor(t *testing.T) {
	p, _, err := Place([]Coord{{1, 1}}, []float64{3}, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Dist(Coord{1, 1}); math.Abs(d-3) > 1e-9 {
		t.Errorf("distance to anchor = %v, want 3", d)
	}
}

func TestPlaceValidation(t *testing.T) {
	anchors := []Coord{{0, 0}, {1, 0}}
	if _, _, err := Place(anchors, []float64{1}, PlaceOptions{}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := Place(anchors, []float64{1, -2}, PlaceOptions{}); err == nil {
		t.Error("negative dissimilarity should error")
	}
	if _, _, err := Place(anchors, []float64{1, math.NaN()}, PlaceOptions{}); err == nil {
		t.Error("NaN dissimilarity should error")
	}
}

func TestPlaceExactTriangulation(t *testing.T) {
	// Anchors form a triangle; the new point's true position is (1, 1).
	anchors := []Coord{{0, 0}, {2, 0}, {0, 2}, {3, 3}}
	truth := Coord{1, 1}
	delta := make([]float64, len(anchors))
	for i, a := range anchors {
		delta[i] = truth.Dist(a)
	}
	p, stress, err := Place(anchors, delta, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(truth) > 1e-3 {
		t.Errorf("placed at %v, want ≈%v (stress %v)", p, truth, stress)
	}
	if stress > 1e-6 {
		t.Errorf("stress = %v, want ≈0 for consistent triangulation", stress)
	}
}

func TestPlaceCoincidentWithAnchor(t *testing.T) {
	// δ = 0 to one anchor: the point should land on that anchor.
	anchors := []Coord{{0, 0}, {4, 0}, {0, 4}}
	target := anchors[1]
	delta := []float64{target.Dist(anchors[0]), 0, target.Dist(anchors[2])}
	p, _, err := Place(anchors, delta, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dist(target) > 1e-3 {
		t.Errorf("placed at %v, want ≈%v", p, target)
	}
}

func TestPlaceAgainstSMACOF(t *testing.T) {
	// Incremental placement of the last point must land close to where a
	// full SMACOF run puts it (after Procrustes alignment).
	rng := rand.New(rand.NewSource(5))
	truth := make([]Coord, 12)
	for i := range truth {
		truth[i] = Coord{rng.Float64() * 4, rng.Float64() * 4}
	}
	deltaAll := planted2D(truth)

	// Full embedding of all 12.
	full, err := SMACOF(deltaAll, DefaultOptions(rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}

	// Embedding of the first 11, then place the 12th incrementally.
	first11 := truth[:11]
	delta11 := planted2D(first11)
	base, err := SMACOF(delta11, DefaultOptions(rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	newDelta := make([]float64, 11)
	for i := 0; i < 11; i++ {
		newDelta[i] = truth[11].Dist(truth[i])
	}
	placed, _, err := Place(base.Config, newDelta, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Align the incremental config (11 anchors + placed) onto the full
	// embedding and compare the last point.
	incCfg := append(append([]Coord(nil), base.Config...), placed)
	aligned, err := AlignTo(incCfg, full.Config)
	if err != nil {
		t.Fatal(err)
	}
	if d := aligned[11].Dist(full.Config[11]); d > 0.05 {
		t.Errorf("incremental vs full placement differ by %v", d)
	}
}

func TestPlaceStressDecreases(t *testing.T) {
	// More iterations must never yield worse stress.
	anchors := []Coord{{0, 0}, {5, 0}, {0, 5}, {5, 5}, {2, 3}}
	delta := []float64{2, 4, 3.5, 4.5, 1.5} // deliberately inconsistent
	_, s1, err := Place(anchors, delta, PlaceOptions{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, s50, err := Place(anchors, delta, PlaceOptions{MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if s50 > s1+1e-9 {
		t.Errorf("stress after 50 iters (%v) worse than after 1 (%v)", s50, s1)
	}
}
