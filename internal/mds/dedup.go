package mds

// Representative-sample reduction (§4): "we significantly reduce this
// overhead by choosing one representative sample from the set of samples
// that are very close to each other (Euclidean distance) and discarding
// other similar samples." The reduction keeps SMACOF's quadratic cost
// bounded by the number of *distinct* system states rather than the number
// of monitoring periods.

// Reduction maps original sample indices onto a smaller representative set.
type Reduction struct {
	// Representatives holds the retained vectors.
	Representatives [][]float64
	// Assignment[i] is the index into Representatives for original sample i.
	Assignment []int
	// Weights[r] counts how many original samples representative r stands
	// for.
	Weights []int
}

// Reduce greedily merges samples within epsilon (Euclidean) of an existing
// representative. The first sample of each cluster becomes its
// representative, so the reduction is deterministic and order-stable:
// re-running with the same inputs yields the same representatives, and the
// representative positions are actual observed states (never synthetic
// averages), which keeps violation labels attached to real measurements.
//
// epsilon <= 0 disables merging (every sample is its own representative).
func Reduce(samples [][]float64, epsilon float64) *Reduction {
	r := &Reduction{Assignment: make([]int, len(samples))}
	for i, s := range samples {
		idx := -1
		if epsilon > 0 {
			for j, rep := range r.Representatives {
				if Euclidean(s, rep) <= epsilon {
					idx = j
					break
				}
			}
		}
		if idx < 0 {
			idx = len(r.Representatives)
			r.Representatives = append(r.Representatives, s)
			r.Weights = append(r.Weights, 0)
		}
		r.Assignment[i] = idx
		r.Weights[idx]++
	}
	return r
}

// Expand maps a configuration of the representatives back onto the original
// sample order: original sample i receives the coordinates of its
// representative.
func (r *Reduction) Expand(repConfig []Coord) []Coord {
	out := make([]Coord, len(r.Assignment))
	for i, idx := range r.Assignment {
		out[i] = repConfig[idx]
	}
	return out
}

// Incremental reduction for the runtime: an OnlineReducer maintains the
// representative set across periods so per-period cost stays proportional
// to the number of distinct states.
type OnlineReducer struct {
	epsilon float64
	reps    [][]float64
	weights []int
}

// NewOnlineReducer returns a reducer with the given merge threshold.
func NewOnlineReducer(epsilon float64) *OnlineReducer {
	return &OnlineReducer{epsilon: epsilon}
}

// Observe registers a sample, returning the representative index it maps
// to and whether a new representative was created.
func (o *OnlineReducer) Observe(sample []float64) (rep int, created bool) {
	if o.epsilon > 0 {
		for j, r := range o.reps {
			if Euclidean(sample, r) <= o.epsilon {
				o.weights[j]++
				return j, false
			}
		}
	}
	cp := append([]float64(nil), sample...)
	o.reps = append(o.reps, cp)
	o.weights = append(o.weights, 1)
	return len(o.reps) - 1, true
}

// Len returns the number of representatives.
func (o *OnlineReducer) Len() int { return len(o.reps) }

// Representative returns representative i (not a copy; callers must not
// modify it).
func (o *OnlineReducer) Representative(i int) []float64 { return o.reps[i] }

// Representatives returns the underlying representative set (shared, not
// copied) for distance-matrix construction.
func (o *OnlineReducer) Representatives() [][]float64 { return o.reps }

// Weight returns how many observations representative i has absorbed.
func (o *OnlineReducer) Weight(i int) int { return o.weights[i] }
