package mds

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(0); err == nil {
		t.Error("NewMatrix(0) should error")
	}
	if _, err := NewMatrix(-1); err == nil {
		t.Error("NewMatrix(-1) should error")
	}
	m, err := NewMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 3 {
		t.Errorf("Size = %d, want 3", m.Size())
	}
}

func TestMatrixSymmetry(t *testing.T) {
	m, _ := NewMatrix(4)
	m.Set(1, 3, 2.5)
	if m.At(1, 3) != 2.5 || m.At(3, 1) != 2.5 {
		t.Errorf("asymmetric: (1,3)=%v (3,1)=%v", m.At(1, 3), m.At(3, 1))
	}
}

func TestEuclidean(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical", []float64{1, 2}, []float64{1, 2}, 0},
		{"3-4-5", []float64{0, 0}, []float64{3, 4}, 5},
		{"1d", []float64{2}, []float64{-1}, 3},
		{"empty", nil, nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Euclidean(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Euclidean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEuclideanPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestDistanceMatrix(t *testing.T) {
	vecs := [][]float64{{0, 0}, {3, 4}, {0, 8}}
	m, err := DistanceMatrix(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.At(0, 1), 5, 1e-12) {
		t.Errorf("d(0,1) = %v, want 5", m.At(0, 1))
	}
	if !almostEqual(m.At(0, 2), 8, 1e-12) {
		t.Errorf("d(0,2) = %v, want 8", m.At(0, 2))
	}
	if !almostEqual(m.At(1, 2), 5, 1e-12) {
		t.Errorf("d(1,2) = %v, want 5", m.At(1, 2))
	}
	for i := 0; i < 3; i++ {
		if m.At(i, i) != 0 {
			t.Errorf("d(%d,%d) = %v, want 0", i, i, m.At(i, i))
		}
	}
}

func TestDistanceMatrixErrors(t *testing.T) {
	if _, err := DistanceMatrix(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := DistanceMatrix([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged input should error")
	}
}

func TestCoordOps(t *testing.T) {
	a := Coord{1, 2}
	b := Coord{4, 6}
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.Add(b); got != (Coord{5, 8}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Coord{3, 4}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Coord{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestCoordAngle(t *testing.T) {
	o := Coord{0, 0}
	tests := []struct {
		to   Coord
		want float64
	}{
		{Coord{1, 0}, 0},
		{Coord{0, 1}, math.Pi / 2},
		{Coord{-1, 0}, math.Pi},
		{Coord{0, -1}, -math.Pi / 2},
		{Coord{1, 1}, math.Pi / 4},
	}
	for _, tt := range tests {
		if got := o.Angle(tt.to); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Angle to %v = %v, want %v", tt.to, got, tt.want)
		}
	}
}

// Property: the triangle inequality holds for Euclidean distances.
func TestEuclideanTriangleProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := []float64{float64(ax), float64(ay)}
		b := []float64{float64(bx), float64(by)}
		c := []float64{float64(cx), float64(cy)}
		return Euclidean(a, c) <= Euclidean(a, b)+Euclidean(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCenterConfig(t *testing.T) {
	x := []Coord{{1, 1}, {3, 5}}
	centerConfig(x)
	var cx, cy float64
	for _, p := range x {
		cx += p.X
		cy += p.Y
	}
	if !almostEqual(cx, 0, 1e-12) || !almostEqual(cy, 0, 1e-12) {
		t.Errorf("centroid after centering = (%v,%v)", cx, cy)
	}
}
