package mds

import (
	"fmt"
	"math/cmplx"
)

// Procrustes alignment. MDS solutions are unique only up to rotation,
// reflection, translation and (for stress-1) scale, so when the runtime
// periodically refreshes the embedding with a full SMACOF pass, the new
// configuration must be aligned back onto the previous one — otherwise
// trajectories and templates would jump between arbitrary orientations.
//
// For 2-D configurations the optimal similarity transform has a closed
// form over the complex plane: writing points as z = x + iy, the transform
// z ↦ a·z + b (with a, b complex) that minimizes Σ‖a·z_i + b − w_i‖² is an
// ordinary complex least-squares problem; allowing reflection corresponds
// to fitting against conj(z) and keeping whichever residual is lower.

// Transform is a 2-D similarity transform w = a·z + b over complex
// coordinates, optionally preceded by conjugation (reflection across the
// x-axis).
type Transform struct {
	A, B    complex128
	Reflect bool
}

// Apply maps a single point through the transform.
func (t Transform) Apply(p Coord) Coord {
	z := complex(p.X, p.Y)
	if t.Reflect {
		z = cmplx.Conj(z)
	}
	w := t.A*z + t.B
	return Coord{real(w), imag(w)}
}

// ApplyAll maps a whole configuration through the transform.
func (t Transform) ApplyAll(ps []Coord) []Coord {
	out := make([]Coord, len(ps))
	for i, p := range ps {
		out[i] = t.Apply(p)
	}
	return out
}

// Procrustes finds the similarity transform (rotation, reflection, scale,
// translation) mapping src onto dst with minimal summed squared error, and
// returns the transform together with that residual error.
func Procrustes(src, dst []Coord) (Transform, float64, error) {
	if len(src) != len(dst) {
		return Transform{}, 0, fmt.Errorf("mds: procrustes size mismatch %d vs %d", len(src), len(dst))
	}
	if len(src) == 0 {
		return Transform{A: 1}, 0, nil
	}
	if len(src) == 1 {
		// A single correspondence pins translation only.
		b := complex(dst[0].X-src[0].X, dst[0].Y-src[0].Y)
		return Transform{A: 1, B: b}, 0, nil
	}

	direct, errDirect := fitComplex(src, dst, false)
	mirror, errMirror := fitComplex(src, dst, true)
	if errMirror < errDirect {
		return mirror, errMirror, nil
	}
	return direct, errDirect, nil
}

// fitComplex solves min Σ |a·z_i + b − w_i|² in closed form.
func fitComplex(src, dst []Coord, reflect bool) (Transform, float64) {
	n := complex(float64(len(src)), 0)
	var sz, sw, szw, szz complex128
	zs := make([]complex128, len(src))
	ws := make([]complex128, len(src))
	for i := range src {
		z := complex(src[i].X, src[i].Y)
		if reflect {
			z = cmplx.Conj(z)
		}
		w := complex(dst[i].X, dst[i].Y)
		zs[i], ws[i] = z, w
		sz += z
		sw += w
		szw += cmplx.Conj(z) * w
		szz += cmplx.Conj(z) * z
	}
	den := n*szz - cmplx.Conj(sz)*sz
	var a complex128
	if cmplx.Abs(den) < 1e-15 {
		// Degenerate source (all points coincide): translation only.
		a = 1
	} else {
		a = (n*szw - cmplx.Conj(sz)*sw) / den
	}
	b := (sw - a*sz) / n

	var residual float64
	for i := range zs {
		d := a*zs[i] + b - ws[i]
		residual += real(d)*real(d) + imag(d)*imag(d)
	}
	return Transform{A: a, B: b, Reflect: reflect}, residual
}

// AlignTo returns src aligned onto dst (convenience wrapper).
func AlignTo(src, dst []Coord) ([]Coord, error) {
	t, _, err := Procrustes(src, dst)
	if err != nil {
		return nil, err
	}
	return t.ApplyAll(src), nil
}
