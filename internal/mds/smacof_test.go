package mds

import (
	"math"
	"math/rand"
	"testing"
)

// planted2D builds a dissimilarity matrix from known 2-D positions, so a
// perfect embedding (stress ≈ 0) must exist.
func planted2D(points []Coord) *Matrix {
	m, _ := NewMatrix(len(points))
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			m.Set(i, j, points[i].Dist(points[j]))
		}
	}
	return m
}

func TestSMACOFRecoversPlanarConfiguration(t *testing.T) {
	truth := []Coord{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 2}, {-1, 0.5}, {2, 1.5}}
	delta := planted2D(truth)
	res, err := SMACOF(delta, DefaultOptions(rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stress > 1e-3 {
		t.Errorf("stress = %v, want ≈0 for planted 2-D data", res.Stress)
	}
	// Pairwise distances must be reproduced.
	for i := range truth {
		for j := i + 1; j < len(truth); j++ {
			want := truth[i].Dist(truth[j])
			got := res.Config[i].Dist(res.Config[j])
			if math.Abs(got-want) > 1e-2 {
				t.Errorf("d(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSMACOFHighDimensionalClusters(t *testing.T) {
	// Two tight 8-D clusters far apart must embed as two separated groups:
	// this is the property Stay-Away depends on — QoS-violation vectors
	// "are mapped farther away from the group of normal executions".
	rng := rand.New(rand.NewSource(2))
	var vecs [][]float64
	for i := 0; i < 10; i++ {
		v := make([]float64, 8)
		for d := range v {
			v[d] = 0.1 + rng.Float64()*0.05 // cluster A near 0.1
		}
		vecs = append(vecs, v)
	}
	for i := 0; i < 10; i++ {
		v := make([]float64, 8)
		for d := range v {
			v[d] = 0.9 + rng.Float64()*0.05 // cluster B near 0.9
		}
		vecs = append(vecs, v)
	}
	delta, err := DistanceMatrix(vecs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SMACOF(delta, DefaultOptions(rng))
	if err != nil {
		t.Fatal(err)
	}
	// Max intra-cluster embedded distance must be far below min
	// inter-cluster distance.
	var maxIntra, minInter float64
	minInter = math.Inf(1)
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			d := res.Config[i].Dist(res.Config[j])
			sameCluster := (i < 10) == (j < 10)
			if sameCluster && d > maxIntra {
				maxIntra = d
			}
			if !sameCluster && d < minInter {
				minInter = d
			}
		}
	}
	if minInter < 3*maxIntra {
		t.Errorf("clusters not separated: maxIntra=%v minInter=%v", maxIntra, minInter)
	}
}

func TestSMACOFMonotoneStress(t *testing.T) {
	// Each Guttman transform must not increase raw stress.
	rng := rand.New(rand.NewSource(3))
	vecs := make([][]float64, 15)
	for i := range vecs {
		v := make([]float64, 5)
		for d := range v {
			v[d] = rng.Float64()
		}
		vecs[i] = v
	}
	delta, _ := DistanceMatrix(vecs)
	x := randomConfig(15, rng)
	prev := RawStress(delta, x)
	for iter := 0; iter < 50; iter++ {
		x = guttman(delta, x)
		cur := RawStress(delta, x)
		if cur > prev+1e-9 {
			t.Fatalf("stress increased at iter %d: %v -> %v", iter, prev, cur)
		}
		prev = cur
	}
}

func TestSMACOFSinglePoint(t *testing.T) {
	m, _ := NewMatrix(1)
	res, err := SMACOF(m, DefaultOptions(rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Config) != 1 || !res.Converged {
		t.Errorf("single point result: %+v", res)
	}
}

func TestSMACOFTwoPoints(t *testing.T) {
	m, _ := NewMatrix(2)
	m.Set(0, 1, 4)
	res, err := SMACOF(m, DefaultOptions(rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Config[0].Dist(res.Config[1]); math.Abs(d-4) > 1e-6 {
		t.Errorf("embedded distance = %v, want 4", d)
	}
}

func TestSMACOFIdenticalPoints(t *testing.T) {
	// All dissimilarities zero: embedding must collapse with zero stress.
	m, _ := NewMatrix(5)
	res, err := SMACOF(m, DefaultOptions(rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stress != 0 {
		t.Errorf("stress = %v, want 0 for identical points", res.Stress)
	}
	for i := 1; i < 5; i++ {
		if d := res.Config[0].Dist(res.Config[i]); d > 1e-6 {
			t.Errorf("points did not collapse: d(0,%d)=%v", i, d)
		}
	}
}

func TestSMACOFWithProvidedInit(t *testing.T) {
	truth := []Coord{{0, 0}, {2, 0}, {0, 2}}
	delta := planted2D(truth)
	res, err := SMACOF(delta, Options{MaxIter: 100, Epsilon: 1e-9, Init: truth})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stress > 1e-6 {
		t.Errorf("stress from perfect init = %v, want ≈0", res.Stress)
	}
}

func TestSMACOFOptionValidation(t *testing.T) {
	m, _ := NewMatrix(3)
	rng := rand.New(rand.NewSource(1))
	if _, err := SMACOF(m, Options{MaxIter: 0, RNG: rng}); err == nil {
		t.Error("MaxIter=0 should error")
	}
	if _, err := SMACOF(m, Options{MaxIter: 10, Epsilon: math.NaN(), RNG: rng}); err == nil {
		t.Error("NaN epsilon should error")
	}
	if _, err := SMACOF(m, Options{MaxIter: 10}); err == nil {
		t.Error("nil RNG without Init should error")
	}
	if _, err := SMACOF(m, Options{MaxIter: 10, Init: []Coord{{0, 0}}}); err == nil {
		t.Error("mismatched Init length should error")
	}
}

func TestSMACOFDeterministic(t *testing.T) {
	vecs := [][]float64{{0, 0, 1}, {1, 0, 0}, {0, 1, 0}, {1, 1, 1}, {0.5, 0.2, 0.9}}
	delta, _ := DistanceMatrix(vecs)
	a, err := SMACOF(delta, DefaultOptions(rand.New(rand.NewSource(7))))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SMACOF(delta, DefaultOptions(rand.New(rand.NewSource(7))))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Config {
		if a.Config[i] != b.Config[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a.Config[i], b.Config[i])
		}
	}
}

func TestTorgersonExactForPlanarData(t *testing.T) {
	truth := []Coord{{0, 0}, {3, 0}, {0, 4}, {3, 4}}
	delta := planted2D(truth)
	x := Torgerson(delta, rand.New(rand.NewSource(1)))
	// Classical scaling is exact for planar Euclidean data: check all
	// pairwise distances.
	for i := range truth {
		for j := i + 1; j < len(truth); j++ {
			want := truth[i].Dist(truth[j])
			got := x[i].Dist(x[j])
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("torgerson d(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestTorgersonCollinearData(t *testing.T) {
	// Points on a line: second eigenvalue ~0; must not produce NaNs.
	truth := []Coord{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	delta := planted2D(truth)
	x := Torgerson(delta, rand.New(rand.NewSource(1)))
	for i, p := range x {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("NaN at %d: %v", i, p)
		}
	}
	if d := x[0].Dist(x[3]); math.Abs(d-3) > 1e-3 {
		t.Errorf("collinear span = %v, want 3", d)
	}
}

func TestStress1Degenerate(t *testing.T) {
	m, _ := NewMatrix(3)
	// All-zero delta with coincident config: perfect.
	x := []Coord{{0, 0}, {0, 0}, {0, 0}}
	if got := Stress1(m, x); got != 0 {
		t.Errorf("stress of exact zero fit = %v, want 0", got)
	}
	// All-zero delta with spread config: infinitely bad.
	x2 := []Coord{{0, 0}, {1, 0}, {0, 1}}
	if got := Stress1(m, x2); !math.IsInf(got, 1) {
		t.Errorf("stress of impossible fit = %v, want +Inf", got)
	}
}

func BenchmarkSMACOF50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vecs := make([][]float64, 50)
	for i := range vecs {
		v := make([]float64, 8)
		for d := range v {
			v[d] = rng.Float64()
		}
		vecs[i] = v
	}
	delta, _ := DistanceMatrix(vecs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SMACOF(delta, DefaultOptions(rand.New(rand.NewSource(1)))); err != nil {
			b.Fatal(err)
		}
	}
}
