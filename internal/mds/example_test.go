package mds_test

import (
	"fmt"
	"math/rand"

	"repro/internal/mds"
)

// Embedding two well-separated clusters of 8-dimensional measurement
// vectors: the 2-D map preserves the separation (the property Stay-Away's
// violation detection rests on).
func ExampleSMACOF() {
	vectors := [][]float64{
		{0.1, 0.1, 0.1, 0.1}, {0.12, 0.1, 0.11, 0.1}, // cluster A
		{0.9, 0.9, 0.9, 0.9}, {0.88, 0.9, 0.91, 0.9}, // cluster B
	}
	delta, _ := mds.DistanceMatrix(vectors)
	res, _ := mds.SMACOF(delta, mds.DefaultOptions(rand.New(rand.NewSource(1))))

	intra := res.Config[0].Dist(res.Config[1])
	inter := res.Config[0].Dist(res.Config[2])
	fmt.Printf("stress < 0.01: %v\n", res.Stress < 0.01)
	fmt.Printf("clusters separated: %v\n", inter > 10*intra)
	// Output:
	// stress < 0.01: true
	// clusters separated: true
}

// The §4 optimization: near-duplicate samples collapse onto one
// representative, keeping the embedding cost bounded.
func ExampleReduce() {
	samples := [][]float64{
		{0.50, 0.50},
		{0.501, 0.499}, // within epsilon of the first
		{0.90, 0.10},
	}
	r := mds.Reduce(samples, 0.01)
	fmt.Printf("representatives: %d\n", len(r.Representatives))
	fmt.Printf("weights: %v\n", r.Weights)
	// Output:
	// representatives: 2
	// weights: [2 1]
}
