package mds

import (
	"fmt"
	"math"
	"math/rand"
)

// Options configures a SMACOF run. The zero value is not usable; use
// DefaultOptions.
type Options struct {
	// MaxIter bounds the number of Guttman-transform iterations.
	MaxIter int
	// Epsilon is the relative raw-stress improvement below which the
	// iteration is considered converged.
	Epsilon float64
	// Init provides the starting configuration. If nil, Torgerson
	// (classical scaling) initialization is used, falling back to a random
	// configuration drawn from RNG when classical scaling degenerates.
	Init []Coord
	// RNG seeds random initialization. Required when Init is nil.
	RNG *rand.Rand
}

// DefaultOptions returns options matching the prototype's behaviour:
// at most 300 iterations, converging at a relative improvement of 1e-6.
func DefaultOptions(rng *rand.Rand) Options {
	return Options{MaxIter: 300, Epsilon: 1e-6, RNG: rng}
}

// Result carries the output of a SMACOF run.
type Result struct {
	// Config is the embedded 2-D configuration, centered at the origin.
	Config []Coord
	// Stress is the final normalized stress-1 value.
	Stress float64
	// RawStress is the final un-normalized loss σ(X).
	RawStress float64
	// Iterations is how many Guttman transforms were applied.
	Iterations int
	// Converged reports whether the epsilon criterion was met before
	// MaxIter.
	Converged bool
}

// SMACOF minimizes the stress of a 2-D embedding of the dissimilarity
// matrix delta by iterated Guttman transforms ("Scaling by MAjorizing a
// COnvex Function", §2.2). Each iteration is guaranteed not to increase
// the raw stress.
func SMACOF(delta *Matrix, opts Options) (*Result, error) {
	n := delta.Size()
	if n == 0 {
		return nil, fmt.Errorf("mds: empty dissimilarity matrix")
	}
	if opts.MaxIter <= 0 {
		return nil, fmt.Errorf("mds: MaxIter must be positive, got %d", opts.MaxIter)
	}
	if opts.Epsilon < 0 || math.IsNaN(opts.Epsilon) {
		return nil, fmt.Errorf("mds: invalid Epsilon %v", opts.Epsilon)
	}

	var x []Coord
	switch {
	case opts.Init != nil:
		if len(opts.Init) != n {
			return nil, fmt.Errorf("mds: init has %d points, want %d", len(opts.Init), n)
		}
		x = append([]Coord(nil), opts.Init...)
	default:
		if opts.RNG == nil {
			return nil, fmt.Errorf("mds: RNG required when Init is nil")
		}
		x = Torgerson(delta, opts.RNG)
	}

	if n == 1 {
		return &Result{Config: []Coord{{}}, Converged: true}, nil
	}

	prev := RawStress(delta, x)
	res := &Result{}
	for iter := 1; iter <= opts.MaxIter; iter++ {
		x = guttman(delta, x)
		cur := RawStress(delta, x)
		res.Iterations = iter
		if prev > 0 && (prev-cur)/prev < opts.Epsilon {
			res.Converged = true
			prev = cur
			break
		}
		if cur == 0 {
			res.Converged = true
			prev = cur
			break
		}
		prev = cur
	}
	centerConfig(x)
	res.Config = x
	res.RawStress = prev
	res.Stress = Stress1(delta, x)
	return res, nil
}

// guttman applies one (unweighted) Guttman transform: X' = n⁻¹ B(X) X with
// b_ij = −δ_ij/d_ij for i≠j (0 when d_ij = 0) and b_ii = −Σ_{j≠i} b_ij.
func guttman(delta *Matrix, x []Coord) []Coord {
	n := len(x)
	out := make([]Coord, n)
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		var sx, sy, diag float64
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := x[i].Dist(x[j])
			var b float64
			if d > 0 {
				b = -delta.At(i, j) / d
			}
			sx += b * x[j].X
			sy += b * x[j].Y
			diag -= b
		}
		out[i].X = (diag*x[i].X + sx) * invN
		out[i].Y = (diag*x[i].Y + sy) * invN
	}
	return out
}

// Torgerson computes a classical-scaling starting configuration: double
// center the squared dissimilarities, extract the top two eigenpairs by
// deflated power iteration, and scale eigenvectors by the square roots of
// their eigenvalues. When the spectrum degenerates (e.g. all points
// coincide) it falls back to a small random configuration.
func Torgerson(delta *Matrix, rng *rand.Rand) []Coord {
	n := delta.Size()
	if n == 1 {
		return []Coord{{}}
	}
	// B = −½ J D² J with J = I − 11ᵀ/n.
	b := make([]float64, n*n)
	rowMean := make([]float64, n)
	var grand float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := delta.At(i, j)
			sq := d * d
			b[i*n+j] = sq
			rowMean[i] += sq
		}
		rowMean[i] /= float64(n)
		grand += rowMean[i]
	}
	grand /= float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i*n+j] = -0.5 * (b[i*n+j] - rowMean[i] - rowMean[j] + grand)
		}
	}

	v1, l1 := powerIteration(b, n, rng)
	if l1 <= 1e-12 {
		return randomConfig(n, rng)
	}
	// Deflate: B ← B − λ₁ v₁v₁ᵀ.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i*n+j] -= l1 * v1[i] * v1[j]
		}
	}
	v2, l2 := powerIteration(b, n, rng)

	x := make([]Coord, n)
	s1 := math.Sqrt(l1)
	var s2 float64
	if l2 > 1e-12 {
		s2 = math.Sqrt(l2)
	}
	for i := range x {
		x[i].X = v1[i] * s1
		if s2 > 0 {
			x[i].Y = v2[i] * s2
		}
	}
	// Break exact collinearity so SMACOF can explore both dimensions.
	if s2 == 0 {
		for i := range x {
			x[i].Y = (rng.Float64() - 0.5) * 1e-6
		}
	}
	return x
}

// powerIteration returns the dominant eigenvector (unit norm) and
// eigenvalue of the symmetric n×n matrix m (row-major).
func powerIteration(m []float64, n int, rng *rand.Rand) ([]float64, float64) {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() - 0.5
	}
	normalize(v)
	tmp := make([]float64, n)
	var lambda float64
	for iter := 0; iter < 200; iter++ {
		for i := 0; i < n; i++ {
			var s float64
			row := m[i*n : (i+1)*n]
			for j, vj := range v {
				s += row[j] * vj
			}
			tmp[i] = s
		}
		newLambda := dot(v, tmp)
		nrm := norm(tmp)
		if nrm < 1e-15 {
			return v, 0
		}
		for i := range v {
			v[i] = tmp[i] / nrm
		}
		if math.Abs(newLambda-lambda) < 1e-12*(1+math.Abs(newLambda)) {
			lambda = newLambda
			break
		}
		lambda = newLambda
	}
	return v, lambda
}

func randomConfig(n int, rng *rand.Rand) []Coord {
	x := make([]Coord, n)
	for i := range x {
		x[i] = Coord{rng.Float64() - 0.5, rng.Float64() - 0.5}
	}
	return x
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func normalize(a []float64) {
	n := norm(a)
	if n == 0 {
		return
	}
	for i := range a {
		a[i] /= n
	}
}
