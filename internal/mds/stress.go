package mds

import "math"

// RawStress returns the un-normalized SMACOF loss
//
//	σ(X) = Σ_{i<j} (δ_ij − d_ij(X))²
//
// — the loss function quoted verbatim in §2.2 of the paper.
func RawStress(delta *Matrix, x []Coord) float64 {
	var s float64
	n := delta.Size()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := x[i].Dist(x[j])
			diff := delta.At(i, j) - d
			s += diff * diff
		}
	}
	return s
}

// Stress1 returns Kruskal's normalized stress-1,
//
//	sqrt( Σ (δ_ij − d_ij)² / Σ δ_ij² ),
//
// the standard figure of merit for an MDS embedding. §5 of the paper uses
// "low stress value" as the criterion that a 2-D representation is
// adequate; values below ~0.15 are conventionally considered good.
func Stress1(delta *Matrix, x []Coord) float64 {
	var num, den float64
	n := delta.Size()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := x[i].Dist(x[j])
			diff := delta.At(i, j) - d
			num += diff * diff
			den += delta.At(i, j) * delta.At(i, j)
		}
	}
	if den == 0 {
		// All dissimilarities are zero: any coincident embedding is exact.
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}
