// Package mds implements the Multi-Dimensional Scaling machinery of §2.2
// and §4 of the Stay-Away paper: SMACOF stress majorization for embedding
// high-dimensional measurement vectors into 2-D, classical (Torgerson)
// initialization, normalized stress, representative-sample reduction to
// keep the quadratic cost bounded, incremental single-point placement for
// the per-period fast path, and Procrustes alignment so successive
// embeddings stay visually and temporally comparable.
package mds

import (
	"fmt"
	"math"
)

// Matrix is a dense symmetric dissimilarity matrix. Only the values are
// stored; symmetry is enforced at construction.
type Matrix struct {
	n    int
	data []float64
}

// NewMatrix returns an n×n zero matrix. n must be positive.
func NewMatrix(n int) (*Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mds: matrix size must be positive, got %d", n)
	}
	return &Matrix{n: n, data: make([]float64, n*n)}, nil
}

// Size returns the matrix dimension n.
func (m *Matrix) Size() int { return m.n }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set assigns element (i, j) and (j, i) symmetrically.
func (m *Matrix) Set(i, j int, v float64) {
	m.data[i*m.n+j] = v
	m.data[j*m.n+i] = v
}

// Euclidean returns the Euclidean distance between two equal-length vectors.
// It panics if the lengths differ, which always indicates a programming
// error in the caller (measurement vectors have a fixed schema).
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mds: dimension mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// DistanceMatrix computes the pairwise Euclidean dissimilarity matrix of
// the given vectors. All vectors must share the same dimension.
func DistanceMatrix(vectors [][]float64) (*Matrix, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("mds: no vectors")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("mds: vector %d has dimension %d, want %d", i, len(v), dim)
		}
	}
	m, err := NewMatrix(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, Euclidean(vectors[i], vectors[j]))
		}
	}
	return m, nil
}

// Coord is a point in the 2-D embedded space.
type Coord struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two embedded points.
func (c Coord) Dist(o Coord) float64 {
	return math.Hypot(c.X-o.X, c.Y-o.Y)
}

// Add returns c + o.
func (c Coord) Add(o Coord) Coord { return Coord{c.X + o.X, c.Y + o.Y} }

// Sub returns c − o.
func (c Coord) Sub(o Coord) Coord { return Coord{c.X - o.X, c.Y - o.Y} }

// Scale returns c scaled by f.
func (c Coord) Scale(f float64) Coord { return Coord{c.X * f, c.Y * f} }

// Angle returns the absolute angle of the vector from c to o with respect
// to the x-axis, in [−π, π). This is the "absolute angle α" trajectory
// parameter of §3.2.3.
func (c Coord) Angle(o Coord) float64 {
	return math.Atan2(o.Y-c.Y, o.X-c.X)
}

// configDistances returns the pairwise distances of an embedding.
func configDistances(x []Coord) *Matrix {
	m, _ := NewMatrix(len(x))
	for i := range x {
		for j := i + 1; j < len(x); j++ {
			m.Set(i, j, x[i].Dist(x[j]))
		}
	}
	return m
}

// centerConfig translates the embedding so its centroid is the origin.
func centerConfig(x []Coord) {
	var cx, cy float64
	for _, p := range x {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(x))
	cx /= n
	cy /= n
	for i := range x {
		x[i].X -= cx
		x[i].Y -= cy
	}
}
