package mds

import (
	"math"
	"math/rand"
	"testing"
)

func rotate(ps []Coord, theta float64) []Coord {
	c, s := math.Cos(theta), math.Sin(theta)
	out := make([]Coord, len(ps))
	for i, p := range ps {
		out[i] = Coord{p.X*c - p.Y*s, p.X*s + p.Y*c}
	}
	return out
}

func TestProcrustesRecoversRotation(t *testing.T) {
	src := []Coord{{0, 0}, {1, 0}, {0, 1}, {2, 2}}
	dst := rotate(src, math.Pi/3)
	tr, residual, err := Procrustes(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-12 {
		t.Errorf("residual = %v, want ≈0", residual)
	}
	for i, p := range tr.ApplyAll(src) {
		if p.Dist(dst[i]) > 1e-9 {
			t.Errorf("point %d: %v, want %v", i, p, dst[i])
		}
	}
}

func TestProcrustesRecoversFullSimilarity(t *testing.T) {
	src := []Coord{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {-1, 2}}
	// Rotate by -0.7, scale by 2.5, translate by (3, -4).
	dst := rotate(src, -0.7)
	for i := range dst {
		dst[i] = dst[i].Scale(2.5).Add(Coord{3, -4})
	}
	tr, residual, err := Procrustes(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-9 {
		t.Errorf("residual = %v, want ≈0", residual)
	}
	if tr.Reflect {
		t.Error("pure similarity should not need reflection")
	}
}

func TestProcrustesRecoversReflection(t *testing.T) {
	src := []Coord{{0, 0}, {1, 0}, {0, 1}, {2, 1}}
	dst := make([]Coord, len(src))
	for i, p := range src {
		dst[i] = Coord{p.X, -p.Y} // mirror across x-axis
	}
	tr, residual, err := Procrustes(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if residual > 1e-12 {
		t.Errorf("residual = %v, want ≈0", residual)
	}
	if !tr.Reflect {
		t.Error("mirrored configuration should select reflection")
	}
}

func TestProcrustesEdgeCases(t *testing.T) {
	if _, _, err := Procrustes([]Coord{{0, 0}}, []Coord{{0, 0}, {1, 1}}); err == nil {
		t.Error("size mismatch should error")
	}
	tr, residual, err := Procrustes(nil, nil)
	if err != nil || residual != 0 {
		t.Errorf("empty procrustes: %v, %v", residual, err)
	}
	if tr.Apply(Coord{1, 2}) != (Coord{1, 2}) {
		t.Error("empty procrustes should be identity")
	}

	// Single point: translation only.
	tr, _, err = Procrustes([]Coord{{1, 1}}, []Coord{{4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Apply(Coord{1, 1}); got.Dist(Coord{4, 5}) > 1e-12 {
		t.Errorf("single-point transform = %v, want (4,5)", got)
	}

	// Degenerate source: all points coincide.
	src := []Coord{{2, 2}, {2, 2}, {2, 2}}
	dst := []Coord{{0, 0}, {0, 0}, {0, 0}}
	tr, _, err = Procrustes(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Apply(Coord{2, 2}); got.Dist(Coord{0, 0}) > 1e-9 {
		t.Errorf("degenerate transform maps to %v, want origin", got)
	}
}

func TestAlignToPreservesInternalDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := make([]Coord, 10)
	for i := range src {
		src[i] = Coord{rng.Float64() * 5, rng.Float64() * 5}
	}
	dst := rotate(src, 1.1)
	aligned, err := AlignTo(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Rigid alignment (scale 1 here) must keep all pairwise distances.
	for i := range src {
		for j := i + 1; j < len(src); j++ {
			want := src[i].Dist(src[j])
			got := aligned[i].Dist(aligned[j])
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("distance (%d,%d) changed: %v -> %v", i, j, want, got)
			}
		}
	}
}

func TestProcrustesNoisyAlignment(t *testing.T) {
	// With noise, alignment should still bring configurations close.
	rng := rand.New(rand.NewSource(10))
	src := make([]Coord, 20)
	for i := range src {
		src[i] = Coord{rng.Float64() * 3, rng.Float64() * 3}
	}
	dst := rotate(src, 0.4)
	for i := range dst {
		dst[i] = dst[i].Add(Coord{rng.NormFloat64() * 0.01, rng.NormFloat64() * 0.01})
	}
	aligned, err := AlignTo(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range aligned {
		if aligned[i].Dist(dst[i]) > 0.1 {
			t.Errorf("point %d misaligned by %v", i, aligned[i].Dist(dst[i]))
		}
	}
}
