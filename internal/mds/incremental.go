package mds

import (
	"fmt"
	"math"
)

// Incremental single-point placement. Re-running full SMACOF every
// monitoring period is wasteful when only one new state arrives; §4 of the
// paper points to incremental MDS variants for exactly this reason. Place
// positions one new point against a frozen existing configuration by
// majorizing the single-point stress
//
//	σ(y) = Σ_i (δ_i − ‖y − x_i‖)²
//
// which uses the same Guttman-style update restricted to the new row.

// PlaceOptions configures incremental placement.
type PlaceOptions struct {
	// MaxIter bounds the majorization iterations (default 50 when 0).
	MaxIter int
	// Epsilon is the relative improvement convergence threshold
	// (default 1e-9 when 0).
	Epsilon float64
}

// Place embeds one new point with dissimilarities delta[i] to each existing
// configuration point x[i]. It returns the new point's coordinates and the
// final single-point raw stress.
func Place(x []Coord, delta []float64, opts PlaceOptions) (Coord, float64, error) {
	if len(x) == 0 {
		// First point ever: the origin is as good as anywhere.
		return Coord{}, 0, nil
	}
	if len(delta) != len(x) {
		return Coord{}, 0, fmt.Errorf("mds: %d dissimilarities for %d anchor points", len(delta), len(x))
	}
	for i, d := range delta {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return Coord{}, 0, fmt.Errorf("mds: invalid dissimilarity %v at %d", d, i)
		}
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 50
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = 1e-9
	}

	// Initialize at the anchor with the smallest dissimilarity, nudged
	// toward the centroid; a pure anchor start can sit at distance 0 from
	// that anchor, which stalls the majorizer when δ there is positive.
	best := 0
	for i, d := range delta {
		if d < delta[best] {
			best = i
		}
	}
	var centroid Coord
	for _, p := range x {
		centroid = centroid.Add(p)
	}
	centroid = centroid.Scale(1 / float64(len(x)))
	y := x[best].Scale(0.9).Add(centroid.Scale(0.1))
	if len(x) == 1 {
		// Single anchor: any point at distance δ is optimal; pick +x.
		return Coord{X: x[0].X + delta[0], Y: x[0].Y}, 0, nil
	}
	// Nudge the start off any line through the anchors: the majorization
	// update preserves exact collinearity, so without a perpendicular
	// component a degenerate 1-D configuration could never recover its
	// second dimension.
	var spread float64
	for _, p := range x {
		d := p.Sub(centroid)
		if s := math.Abs(d.X) + math.Abs(d.Y); s > spread {
			spread = s
		}
	}
	y.Y += 1e-3*spread + 1e-9

	prev := pointStress(x, delta, y)
	invN := 1 / float64(len(x))
	for iter := 0; iter < maxIter; iter++ {
		var sx, sy float64
		for i, p := range x {
			d := y.Dist(p)
			if d > 0 {
				r := delta[i] / d
				sx += p.X + r*(y.X-p.X)
				sy += p.Y + r*(y.Y-p.Y)
			} else {
				// Coincident with an anchor: majorizer contribution reduces
				// to the anchor itself; the δ term re-expands on the next
				// iteration once other anchors pull y off the singularity.
				sx += p.X
				sy += p.Y
			}
		}
		y = Coord{sx * invN, sy * invN}
		cur := pointStress(x, delta, y)
		if prev > 0 && (prev-cur)/prev < eps {
			prev = cur
			break
		}
		prev = cur
	}
	return y, prev, nil
}

// pointStress is the single-point raw stress Σ (δ_i − ‖y−x_i‖)².
func pointStress(x []Coord, delta []float64, y Coord) float64 {
	var s float64
	for i, p := range x {
		diff := delta[i] - y.Dist(p)
		s += diff * diff
	}
	return s
}
