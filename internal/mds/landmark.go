package mds

import (
	"fmt"
	"math"
	"math/rand"
)

// Landmark MDS — the "fast approximation to multidimensional scaling" §4
// cites as the alternative to representative-sample reduction: embed only
// k landmark points with full SMACOF, then place every remaining point
// against the landmark configuration by single-point majorization. Cost
// drops from O(n²) per iteration to O(k² + n·k).

// LandmarkResult carries the output of a landmark MDS run.
type LandmarkResult struct {
	// Config is the full embedded configuration (all n points), centered.
	Config []Coord
	// Landmarks are the indices chosen as landmarks.
	Landmarks []int
	// Stress is the normalized stress-1 of the *full* configuration
	// against the complete dissimilarity matrix.
	Stress float64
}

// LandmarkMDS embeds delta using k landmarks chosen by greedy farthest-
// point (maxmin) selection. k is clamped to [3, n]; with k = n it reduces
// to plain SMACOF.
func LandmarkMDS(delta *Matrix, k int, opts Options) (*LandmarkResult, error) {
	n := delta.Size()
	if n == 0 {
		return nil, fmt.Errorf("mds: empty dissimilarity matrix")
	}
	res, err := landmarkMDS(n, k, delta.At, opts)
	if err != nil {
		return nil, err
	}
	// The caller already paid for the full matrix, so the exact full-
	// configuration stress is affordable here.
	res.Stress = Stress1(delta, res.Config)
	return res, nil
}

// LandmarkMDSVectors runs landmark MDS directly from the data vectors,
// computing distances on demand. It never materializes the n×n
// dissimilarity matrix, so memory stays O(n·k) and time O(n·k) plus the
// O(k²) landmark solve — the difference between a 10⁵-state refresh
// finishing in milliseconds and allocating tens of gigabytes. Stress is
// the landmark subproblem's stress (the full-configuration stress would
// need the quadratic matrix this function exists to avoid).
func LandmarkMDSVectors(vectors [][]float64, k int, opts Options) (*LandmarkResult, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("mds: no vectors")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("mds: vector %d has dimension %d, want %d", i, len(v), dim)
		}
	}
	return landmarkMDS(n, k, func(i, j int) float64 {
		return Euclidean(vectors[i], vectors[j])
	}, opts)
}

// landmarkMDS is the shared core: n points whose dissimilarities are read
// through dist, k landmarks. The returned Stress is the landmark
// subproblem's stress; LandmarkMDS overwrites it with the exact value.
func landmarkMDS(n, k int, dist func(i, j int) float64, opts Options) (*LandmarkResult, error) {
	if opts.RNG == nil {
		return nil, fmt.Errorf("mds: RNG required for landmark selection")
	}
	if k < 3 {
		k = 3
	}
	if k > n {
		k = n
	}

	landmarks := maxminLandmarks(n, k, dist, opts.RNG)

	// Full SMACOF on the landmark submatrix.
	sub, err := NewMatrix(len(landmarks))
	if err != nil {
		return nil, err
	}
	for i, li := range landmarks {
		for j, lj := range landmarks {
			if j > i {
				sub.Set(i, j, dist(li, lj))
			}
		}
	}
	subOpts := opts
	subOpts.Init = nil
	res, err := SMACOF(sub, subOpts)
	if err != nil {
		return nil, err
	}

	// Place every non-landmark against the landmark configuration.
	config := make([]Coord, n)
	isLandmark := make(map[int]int, len(landmarks))
	for i, li := range landmarks {
		isLandmark[li] = i
		config[li] = res.Config[i]
	}
	d := make([]float64, len(landmarks))
	for p := 0; p < n; p++ {
		if _, ok := isLandmark[p]; ok {
			continue
		}
		for i, li := range landmarks {
			d[i] = dist(p, li)
		}
		pos, _, err := Place(res.Config, d, PlaceOptions{})
		if err != nil {
			return nil, err
		}
		config[p] = pos
	}
	centerConfig(config)
	return &LandmarkResult{
		Config:    config,
		Landmarks: landmarks,
		Stress:    res.Stress,
	}, nil
}

// maxminLandmarks greedily picks k points maximizing the minimum distance
// to already-chosen landmarks, starting from a random seed point. This is
// the standard farthest-point heuristic: it spreads landmarks across the
// data's extent so the triangulation anchors every region.
func maxminLandmarks(n, k int, dist func(i, j int) float64, rng *rand.Rand) []int {
	chosen := make([]int, 0, k)
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	next := rng.Intn(n)
	for len(chosen) < k {
		chosen = append(chosen, next)
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			if d := dist(i, next); d < minDist[i] {
				minDist[i] = d
			}
			if minDist[i] > bestD && minDist[i] > 0 {
				best, bestD = i, minDist[i]
			}
		}
		if best < 0 {
			break // all remaining points coincide with landmarks
		}
		next = best
	}
	return chosen
}
