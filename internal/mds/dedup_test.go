package mds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReduceMergesCloseSamples(t *testing.T) {
	samples := [][]float64{
		{0, 0},
		{0.001, 0.001}, // merges with sample 0
		{1, 1},
		{0.999, 1.001}, // merges with sample 2
		{5, 5},
	}
	r := Reduce(samples, 0.01)
	if len(r.Representatives) != 3 {
		t.Fatalf("representatives = %d, want 3", len(r.Representatives))
	}
	wantAssign := []int{0, 0, 1, 1, 2}
	for i, a := range r.Assignment {
		if a != wantAssign[i] {
			t.Errorf("assignment[%d] = %d, want %d", i, a, wantAssign[i])
		}
	}
	wantWeights := []int{2, 2, 1}
	for i, w := range r.Weights {
		if w != wantWeights[i] {
			t.Errorf("weight[%d] = %d, want %d", i, w, wantWeights[i])
		}
	}
}

func TestReduceZeroEpsilonKeepsAll(t *testing.T) {
	samples := [][]float64{{0}, {0}, {0}}
	r := Reduce(samples, 0)
	if len(r.Representatives) != 3 {
		t.Errorf("representatives = %d, want 3 with epsilon=0", len(r.Representatives))
	}
}

func TestReduceEmpty(t *testing.T) {
	r := Reduce(nil, 0.1)
	if len(r.Representatives) != 0 || len(r.Assignment) != 0 {
		t.Errorf("empty reduce: %+v", r)
	}
}

func TestReduceRepresentativesAreObservedStates(t *testing.T) {
	samples := [][]float64{{1, 2}, {1.0001, 2.0001}, {9, 9}}
	r := Reduce(samples, 0.01)
	// The representative of the first cluster must be exactly sample 0,
	// never an average.
	if r.Representatives[0][0] != 1 || r.Representatives[0][1] != 2 {
		t.Errorf("representative mutated: %v", r.Representatives[0])
	}
}

func TestReduceExpand(t *testing.T) {
	samples := [][]float64{{0}, {0.001}, {5}}
	r := Reduce(samples, 0.01)
	cfg := []Coord{{1, 1}, {2, 2}}
	full := r.Expand(cfg)
	if len(full) != 3 {
		t.Fatalf("expanded length = %d, want 3", len(full))
	}
	if full[0] != cfg[0] || full[1] != cfg[0] || full[2] != cfg[1] {
		t.Errorf("expand wrong: %v", full)
	}
}

// Property: weights sum to the number of samples, every sample maps within
// epsilon of its representative.
func TestReduceInvariantsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		samples := make([][]float64, len(raw))
		for i, r := range raw {
			samples[i] = []float64{float64(r) / 255}
		}
		const eps = 0.05
		red := Reduce(samples, eps)
		total := 0
		for _, w := range red.Weights {
			total += w
		}
		if total != len(samples) {
			return false
		}
		for i, a := range red.Assignment {
			if Euclidean(samples[i], red.Representatives[a]) > eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOnlineReducer(t *testing.T) {
	o := NewOnlineReducer(0.1)
	rep, created := o.Observe([]float64{0.5, 0.5})
	if rep != 0 || !created {
		t.Errorf("first observe = %d,%v; want 0,true", rep, created)
	}
	rep, created = o.Observe([]float64{0.55, 0.5})
	if rep != 0 || created {
		t.Errorf("close observe = %d,%v; want 0,false", rep, created)
	}
	rep, created = o.Observe([]float64{0.9, 0.9})
	if rep != 1 || !created {
		t.Errorf("far observe = %d,%v; want 1,true", rep, created)
	}
	if o.Len() != 2 {
		t.Errorf("Len = %d, want 2", o.Len())
	}
	if o.Weight(0) != 2 || o.Weight(1) != 1 {
		t.Errorf("weights = %d,%d; want 2,1", o.Weight(0), o.Weight(1))
	}
}

func TestOnlineReducerCopiesSamples(t *testing.T) {
	o := NewOnlineReducer(0.01)
	s := []float64{1, 2}
	o.Observe(s)
	s[0] = 99
	if o.Representative(0)[0] != 1 {
		t.Error("reducer aliased the caller's slice")
	}
}

func TestOnlineReducerMatchesBatchReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := make([][]float64, 200)
	for i := range samples {
		samples[i] = []float64{rng.Float64(), rng.Float64()}
	}
	const eps = 0.15
	batch := Reduce(samples, eps)
	online := NewOnlineReducer(eps)
	for _, s := range samples {
		online.Observe(s)
	}
	if online.Len() != len(batch.Representatives) {
		t.Fatalf("online reps = %d, batch reps = %d", online.Len(), len(batch.Representatives))
	}
	for i := 0; i < online.Len(); i++ {
		if Euclidean(online.Representative(i), batch.Representatives[i]) != 0 {
			t.Errorf("representative %d differs", i)
		}
	}
}

func TestReduceCutsSMACOFCost(t *testing.T) {
	// The §4 optimization: heavy duplication should collapse to a tiny
	// representative set whose embedding still reproduces the distinct
	// structure.
	var samples [][]float64
	for i := 0; i < 100; i++ {
		samples = append(samples, []float64{0.1, 0.1})
	}
	for i := 0; i < 100; i++ {
		samples = append(samples, []float64{0.9, 0.9})
	}
	r := Reduce(samples, 0.01)
	if len(r.Representatives) != 2 {
		t.Fatalf("representatives = %d, want 2", len(r.Representatives))
	}
	delta, err := DistanceMatrix(r.Representatives)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SMACOF(delta, DefaultOptions(rand.New(rand.NewSource(1))))
	if err != nil {
		t.Fatal(err)
	}
	full := r.Expand(res.Config)
	if len(full) != 200 {
		t.Fatalf("expanded = %d, want 200", len(full))
	}
	if d := full[0].Dist(full[150]); d < 0.5 {
		t.Errorf("cluster separation lost after reduction: %v", d)
	}
}
