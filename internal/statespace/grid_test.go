package statespace

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mds"
)

// bruteNearest is the reference implementation the grid must match.
func bruteNearest(states []State, p mds.Coord, pred func(*State) bool) (float64, int, bool) {
	best := math.Inf(1)
	bestID := -1
	for i := range states {
		if !pred(&states[i]) {
			continue
		}
		d := p.Dist(states[i].Coord)
		if d < best {
			best = d
			bestID = states[i].ID
		}
	}
	if bestID < 0 {
		return 0, 0, false
	}
	return best, bestID, true
}

func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewSpace()
	for i := 0; i < 300; i++ {
		id := s.Add(mds.Coord{X: rng.Float64() * 20, Y: rng.Float64() * 20}, nil, 0)
		if rng.Float64() < 0.3 {
			if err := s.MarkViolation(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	states := s.States()
	safePred := func(st *State) bool { return st.Label == Safe }
	for q := 0; q < 200; q++ {
		p := mds.Coord{X: rng.Float64()*30 - 5, Y: rng.Float64()*30 - 5}
		gd, gid, gok := s.NearestSafe(p)
		bd, bid, bok := bruteNearest(states, p, safePred)
		if gok != bok {
			t.Fatalf("query %v: ok %v vs brute %v", p, gok, bok)
		}
		if !gok {
			continue
		}
		if math.Abs(gd-bd) > 1e-9 {
			t.Fatalf("query %v: dist %v (id %d) vs brute %v (id %d)", p, gd, gid, bd, bid)
		}
	}
}

func TestGridCoincidentStates(t *testing.T) {
	s := NewSpace()
	for i := 0; i < 5; i++ {
		s.Add(mds.Coord{X: 1, Y: 1}, nil, 0)
	}
	d, _, ok := s.NearestAny(mds.Coord{X: 1, Y: 1})
	if !ok || d != 0 {
		t.Errorf("nearest among coincident = %v,%v", d, ok)
	}
	d, _, ok = s.NearestAny(mds.Coord{X: 4, Y: 5})
	if !ok || math.Abs(d-5) > 1e-12 {
		t.Errorf("distance = %v, want 5", d)
	}
}

func TestGridRebuildAfterSetCoords(t *testing.T) {
	s := NewSpace()
	a := s.Add(mds.Coord{X: 0, Y: 0}, nil, 0)
	b := s.Add(mds.Coord{X: 10, Y: 0}, nil, 0)
	// Prime the grid.
	if _, id, _ := s.NearestAny(mds.Coord{X: 1, Y: 0}); id != a {
		t.Fatalf("nearest = %d, want %d", id, a)
	}
	// Swap positions; the cached grid must be invalidated.
	if err := s.SetCoords([]mds.Coord{{X: 10, Y: 0}, {X: 0, Y: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, id, _ := s.NearestAny(mds.Coord{X: 1, Y: 0}); id != b {
		t.Errorf("nearest after move = %d, want %d", id, b)
	}
}

func TestGridQueryFarOutsideBounds(t *testing.T) {
	s := NewSpace()
	s.Add(mds.Coord{X: 0, Y: 0}, nil, 0)
	s.Add(mds.Coord{X: 1, Y: 1}, nil, 0)
	d, id, ok := s.NearestAny(mds.Coord{X: 1000, Y: 1000})
	if !ok {
		t.Fatal("expected a result")
	}
	want := mds.Coord{X: 1, Y: 1}.Dist(mds.Coord{X: 1000, Y: 1000})
	if id != 1 || math.Abs(d-want) > 1e-9 {
		t.Errorf("far query: id=%d d=%v, want id=1 d=%v", id, d, want)
	}
}

func TestRingDY(t *testing.T) {
	// Edges of the ring enumerate all dy; interior columns only ±ring.
	if got := ringDY(2, 2); len(got) != 5 {
		t.Errorf("edge column dys = %v", got)
	}
	if got := ringDY(0, 2); len(got) != 2 || got[0] != -2 || got[1] != 2 {
		t.Errorf("interior column dys = %v", got)
	}
}

func BenchmarkGridNearest1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := NewSpace()
	for i := 0; i < 1000; i++ {
		s.Add(mds.Coord{X: rng.Float64() * 100, Y: rng.Float64() * 100}, nil, 0)
	}
	s.ensureGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := mds.Coord{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		s.NearestAny(p)
	}
}
