package statespace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Delta encoding of template states (§6 scaled to a streaming fleet).
// Whole-template polling ships every state on every pull; a fleet of
// thousands of hosts polling a consensus map that changes by one or two
// states per control period wastes almost all of that bandwidth. A
// TemplateDelta instead carries only the states that changed after a known
// revision — new states and label upgrades — as a patch template the
// receiver merges onto its local map with the same Procrustes-consistent
// alignment the registry uses (ApplyDelta).

// ErrDeltaBase marks an incremental delta applied without a local base
// template to merge onto: the receiver must fetch a full template first
// (or request the delta from revision 0, which is served full).
var ErrDeltaBase = errors.New("statespace: incremental delta without base template")

// TemplateDelta is the wire format of one template update.
type TemplateDelta struct {
	// FromRevision and ToRevision bound the update: the patch carries
	// every state changed in (FromRevision, ToRevision]. FromRevision 0
	// means "from nothing" — the patch is the whole template.
	FromRevision int `json:"from_revision"`
	ToRevision   int `json:"to_revision"`
	// Full marks a patch that replaces the receiver's template instead of
	// merging into it. Served when the requester's revision is unusable:
	// zero, ahead of the store (the store lost history), predating a
	// normalization-range rescale (every vector changed), or predating the
	// store's per-state version tracking.
	Full bool `json:"full,omitempty"`
	// Patch is a well-formed template carrying only the changed states
	// (all states when Full), plus the current schema and normalization
	// ranges the receiver needs to merge them.
	Patch *Template `json:"patch"`
}

// Validate checks structural consistency; the embedded patch is validated
// with the full template rules.
func (d *TemplateDelta) Validate() error {
	if d == nil {
		return fmt.Errorf("statespace: nil delta")
	}
	if d.Patch == nil {
		return fmt.Errorf("statespace: delta without patch: %w", ErrCorruptTemplate)
	}
	if d.ToRevision < 0 || d.FromRevision < 0 || d.ToRevision < d.FromRevision {
		return fmt.Errorf("statespace: delta revisions %d..%d: %w",
			d.FromRevision, d.ToRevision, ErrCorruptTemplate)
	}
	if d.Full && d.FromRevision != 0 {
		return fmt.Errorf("statespace: full delta from revision %d: %w",
			d.FromRevision, ErrCorruptTemplate)
	}
	return d.Patch.Validate()
}

// Empty reports whether the delta carries no state changes — the "you are
// already current" reply to a conditional sync.
func (d *TemplateDelta) Empty() bool {
	return !d.Full && len(d.Patch.States) == 0
}

// WriteTo serializes the delta as indented JSON.
func (d *TemplateDelta) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("statespace: marshal delta: %w", err)
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ReadTemplateDelta parses and validates a delta from JSON with the same
// hardening as ReadTemplate: truncation surfaces as io.ErrUnexpectedEOF,
// trailing garbage is rejected, and a structurally invalid patch fails
// here rather than corrupting a later apply.
func ReadTemplateDelta(r io.Reader) (*TemplateDelta, error) {
	var d TemplateDelta
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("statespace: decode delta: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("statespace: trailing data after delta: %w", ErrCorruptTemplate)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// ApplyDelta folds a delta into the receiver's local template and returns
// the updated template (neither input is mutated). A Full delta replaces
// local wholesale (local may then be nil); an incremental delta merges the
// patch states onto local with Procrustes-consistent alignment, exactly as
// the registry merges host uploads — so a host applying the stream and a
// host re-pulling the whole template converge on the same violation set.
// eps is the state-dedup radius (same value the registry merged under).
func ApplyDelta(local *Template, d *TemplateDelta, eps float64) (*Template, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Full {
		return CloneTemplate(d.Patch), nil
	}
	if local == nil {
		return nil, ErrDeltaBase
	}
	if d.Empty() {
		return CloneTemplate(local), nil
	}
	return MergeTemplates(local, d.Patch, eps)
}
