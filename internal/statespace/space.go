// Package statespace maintains Stay-Away's 2-D state-space representation
// (§3.1–§3.2): the mapped-states produced by MDS, their safe/violation
// labels, the Rayleigh-weighted violation-ranges around violation-states
// (§3.2.2), nearest-neighbour queries backed by a uniform grid index, and
// the template export/import of §6 that lets a map learned with one batch
// co-runner seed future executions with different co-runners.
package statespace

import (
	"fmt"
	"math"

	"repro/internal/mds"
	"repro/internal/stats"
)

// Label classifies a mapped state.
type Label int

const (
	// Safe marks a mapped-state not associated with any QoS violation.
	Safe Label = iota
	// Violation marks a mapped-state observed during a reported QoS
	// violation.
	Violation
)

// String returns "safe" or "violation".
func (l Label) String() string {
	switch l {
	case Safe:
		return "safe"
	case Violation:
		return "violation"
	default:
		return fmt.Sprintf("label(%d)", int(l))
	}
}

// State is one mapped-state: a representative measurement vector, its 2-D
// embedding, and its violation label.
type State struct {
	// ID is the state's index within its Space, assigned at creation.
	ID int
	// Coord is the state's current position in the 2-D mapped space.
	Coord mds.Coord
	// Label records whether any observation of this state coincided with a
	// QoS violation. Once Violation, always Violation: a state that caused
	// degradation once is permanently unsafe (§3.2.1).
	Label Label
	// Unverified marks a Safe-labelled state first observed while the
	// application's QoS signal was stale (no fresh report for several
	// periods). The absence of a violation report proves nothing then, so
	// such states are excluded from safe-state queries — they must not
	// shrink violation-ranges — until a revisit under a fresh signal
	// verifies them. MarkViolation clears the flag: a violation report is
	// itself fresh evidence.
	Unverified bool
	// Weight counts how many raw observations this representative absorbed.
	Weight int
	// FirstPeriod and LastPeriod bound when the state was observed.
	FirstPeriod, LastPeriod int
	// Vector is the representative (normalized) measurement vector.
	Vector []float64
}

// Disc is a violation-range: the unexplored neighbourhood around a
// violation-state deemed dangerous.
type Disc struct {
	Center mds.Coord
	Radius float64
	// StateID is the violation-state the disc belongs to.
	StateID int
}

// Contains reports whether p falls inside the disc (boundary inclusive).
func (d Disc) Contains(p mds.Coord) bool {
	return d.Center.Dist(p) <= d.Radius
}

// RangePolicy computes a violation-range radius from the distance d to
// the nearest safe-state and the coordinate-range median c. The default is
// the paper's Rayleigh weighting; the ablation benchmarks substitute fixed
// or linear policies.
type RangePolicy func(d, c float64) float64

// Space is the collection of mapped states. The zero value is an empty,
// usable space with the default Rayleigh range policy.
type Space struct {
	states []State
	grid   *grid
	// violations caches the IDs of violation-states.
	violations []int
	// rangePolicy overrides the Rayleigh weighting when non-nil.
	rangePolicy RangePolicy
}

// SetRangePolicy overrides how violation-range radii are derived. Passing
// nil restores the paper's Rayleigh weighting.
func (s *Space) SetRangePolicy(p RangePolicy) { s.rangePolicy = p }

// NewSpace returns an empty state space.
func NewSpace() *Space { return &Space{} }

// Len returns the number of states.
func (s *Space) Len() int { return len(s.states) }

// State returns a copy of state id.
func (s *Space) State(id int) (State, error) {
	if id < 0 || id >= len(s.states) {
		return State{}, fmt.Errorf("statespace: state %d out of range [0,%d)", id, len(s.states))
	}
	st := s.states[id]
	st.Vector = append([]float64(nil), st.Vector...)
	return st, nil
}

// States returns a copy of all states.
func (s *Space) States() []State {
	out := make([]State, len(s.states))
	copy(out, s.states)
	for i := range out {
		out[i].Vector = append([]float64(nil), out[i].Vector...)
	}
	return out
}

// Add inserts a new state and returns its ID. The vector is copied.
func (s *Space) Add(coord mds.Coord, vector []float64, period int) int {
	id := len(s.states)
	s.states = append(s.states, State{
		ID:          id,
		Coord:       coord,
		Label:       Safe,
		Weight:      1,
		FirstPeriod: period,
		LastPeriod:  period,
		Vector:      append([]float64(nil), vector...),
	})
	s.grid = nil
	return id
}

// Observe records a re-visit of an existing state.
func (s *Space) Observe(id, period int) error {
	if id < 0 || id >= len(s.states) {
		return fmt.Errorf("statespace: state %d out of range", id)
	}
	s.states[id].Weight++
	s.states[id].LastPeriod = period
	return nil
}

// MarkViolation labels state id as a violation-state. Labelling is sticky.
func (s *Space) MarkViolation(id int) error {
	if id < 0 || id >= len(s.states) {
		return fmt.Errorf("statespace: state %d out of range", id)
	}
	if s.states[id].Label != Violation {
		s.states[id].Label = Violation
		s.violations = append(s.violations, id)
	}
	s.states[id].Unverified = false
	return nil
}

// MarkUnverified flags state id as created under a stale QoS signal, so
// it does not count as a safe-state anchor. Violation-states are never
// unverified (the violation report is the evidence).
func (s *Space) MarkUnverified(id int) error {
	if id < 0 || id >= len(s.states) {
		return fmt.Errorf("statespace: state %d out of range", id)
	}
	if s.states[id].Label == Safe {
		s.states[id].Unverified = true
	}
	return nil
}

// ClearUnverified records that state id was revisited under a fresh QoS
// signal without a violation — it is now a verified safe-state.
func (s *Space) ClearUnverified(id int) error {
	if id < 0 || id >= len(s.states) {
		return fmt.Errorf("statespace: state %d out of range", id)
	}
	s.states[id].Unverified = false
	return nil
}

// UnverifiedIDs returns the IDs of all unverified states, in ID order.
func (s *Space) UnverifiedIDs() []int {
	var out []int
	for _, st := range s.states {
		if st.Unverified {
			out = append(out, st.ID)
		}
	}
	return out
}

// SetCoord moves one state (used by incremental placement refinement).
func (s *Space) SetCoord(id int, c mds.Coord) error {
	if id < 0 || id >= len(s.states) {
		return fmt.Errorf("statespace: state %d out of range", id)
	}
	s.states[id].Coord = c
	s.grid = nil
	return nil
}

// SetCoords replaces every state's position after a full SMACOF refresh.
// The slice must have exactly one coordinate per state, in ID order.
func (s *Space) SetCoords(coords []mds.Coord) error {
	if len(coords) != len(s.states) {
		return fmt.Errorf("statespace: %d coords for %d states", len(coords), len(s.states))
	}
	for i := range s.states {
		s.states[i].Coord = coords[i]
	}
	s.grid = nil
	return nil
}

// Coords returns all state positions in ID order.
func (s *Space) Coords() []mds.Coord {
	out := make([]mds.Coord, len(s.states))
	for i, st := range s.states {
		out[i] = st.Coord
	}
	return out
}

// Vectors returns all representative vectors in ID order (shared slices;
// callers must not mutate).
func (s *Space) Vectors() [][]float64 {
	out := make([][]float64, len(s.states))
	for i := range s.states {
		out[i] = s.states[i].Vector
	}
	return out
}

// ViolationIDs returns the IDs of all violation-states.
func (s *Space) ViolationIDs() []int {
	return append([]int(nil), s.violations...)
}

// HasViolations reports whether any violation-state exists yet.
func (s *Space) HasViolations() bool { return len(s.violations) > 0 }

// CoordinateRangeMedian returns c, "the median of the coordinate range of
// the mapped space" (§3.2.2): the median of the per-dimension extents of
// the current embedding. It returns 0 for spaces with fewer than two
// states (no meaningful extent exists yet).
func (s *Space) CoordinateRangeMedian() float64 {
	if len(s.states) < 2 {
		return 0
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, st := range s.states {
		minX = math.Min(minX, st.Coord.X)
		maxX = math.Max(maxX, st.Coord.X)
		minY = math.Min(minY, st.Coord.Y)
		maxY = math.Max(maxY, st.Coord.Y)
	}
	m, err := stats.Median([]float64{maxX - minX, maxY - minY})
	if err != nil {
		return 0
	}
	return m
}

// NearestSafe returns the distance from p to the nearest *verified*
// safe-state and that state's ID. ok is false when no such state exists.
// Unverified states (created under a stale QoS signal) are skipped: an
// unproven "safe" state must not shrink the violation-ranges around it.
func (s *Space) NearestSafe(p mds.Coord) (dist float64, id int, ok bool) {
	s.ensureGrid()
	return s.grid.nearest(p, func(st *State) bool { return st.Label == Safe && !st.Unverified })
}

// NearestAny returns the distance from p to the nearest state of any label.
func (s *Space) NearestAny(p mds.Coord) (dist float64, id int, ok bool) {
	s.ensureGrid()
	return s.grid.nearest(p, func(*State) bool { return true })
}

// ViolationRanges computes the current violation-range disc for every
// violation-state: radius R = d·exp(−d²/(2c²)) with d the distance to the
// nearest safe-state and c the coordinate-range median (§3.2.2). When no
// safe-state exists yet, d falls back to c (maximal uncertainty); when the
// space has no extent at all, the radius is 0.
func (s *Space) ViolationRanges() []Disc {
	if len(s.violations) == 0 {
		return nil
	}
	c := s.CoordinateRangeMedian()
	policy := s.rangePolicy
	if policy == nil {
		policy = stats.RayleighWeight
	}
	out := make([]Disc, 0, len(s.violations))
	for _, id := range s.violations {
		v := s.states[id]
		d, _, ok := s.NearestSafe(v.Coord)
		if !ok {
			d = c
		}
		out = append(out, Disc{
			Center:  v.Coord,
			Radius:  policy(d, c),
			StateID: id,
		})
	}
	return out
}

// InViolationRange reports whether p falls inside any violation-range, and
// if so returns the owning disc.
func (s *Space) InViolationRange(p mds.Coord) (Disc, bool) {
	for _, d := range s.ViolationRanges() {
		if d.Contains(p) {
			return d, true
		}
	}
	return Disc{}, false
}

func (s *Space) ensureGrid() {
	if s.grid == nil {
		s.grid = buildGrid(s.states)
	}
}
