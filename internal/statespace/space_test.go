package statespace

import (
	"math"
	"testing"

	"repro/internal/mds"
	"repro/internal/stats"
)

func TestLabelString(t *testing.T) {
	if Safe.String() != "safe" || Violation.String() != "violation" {
		t.Errorf("labels: %v %v", Safe, Violation)
	}
	if Label(9).String() == "" {
		t.Error("unknown label should still format")
	}
}

func TestSpaceAddAndState(t *testing.T) {
	s := NewSpace()
	if s.Len() != 0 {
		t.Fatalf("fresh space len = %d", s.Len())
	}
	vec := []float64{0.1, 0.2}
	id := s.Add(mds.Coord{X: 1, Y: 2}, vec, 5)
	if id != 0 || s.Len() != 1 {
		t.Fatalf("id=%d len=%d", id, s.Len())
	}
	st, err := s.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Coord != (mds.Coord{X: 1, Y: 2}) || st.Label != Safe || st.Weight != 1 {
		t.Errorf("state = %+v", st)
	}
	if st.FirstPeriod != 5 || st.LastPeriod != 5 {
		t.Errorf("periods = %d,%d", st.FirstPeriod, st.LastPeriod)
	}
	// The stored vector must be a copy in both directions.
	vec[0] = 99
	st2, _ := s.State(id)
	if st2.Vector[0] != 0.1 {
		t.Error("Add aliased caller's vector")
	}
	st2.Vector[0] = 77
	st3, _ := s.State(id)
	if st3.Vector[0] != 0.1 {
		t.Error("State leaked internal vector")
	}
}

func TestSpaceStateOutOfRange(t *testing.T) {
	s := NewSpace()
	if _, err := s.State(0); err == nil {
		t.Error("State(0) on empty space should error")
	}
	if err := s.Observe(3, 1); err == nil {
		t.Error("Observe out of range should error")
	}
	if err := s.MarkViolation(-1); err == nil {
		t.Error("MarkViolation out of range should error")
	}
	if err := s.SetCoord(0, mds.Coord{}); err == nil {
		t.Error("SetCoord out of range should error")
	}
}

func TestSpaceObserve(t *testing.T) {
	s := NewSpace()
	id := s.Add(mds.Coord{}, nil, 1)
	if err := s.Observe(id, 9); err != nil {
		t.Fatal(err)
	}
	st, _ := s.State(id)
	if st.Weight != 2 || st.LastPeriod != 9 || st.FirstPeriod != 1 {
		t.Errorf("after observe: %+v", st)
	}
}

func TestMarkViolationSticky(t *testing.T) {
	s := NewSpace()
	id := s.Add(mds.Coord{}, nil, 0)
	if s.HasViolations() {
		t.Error("fresh space should have no violations")
	}
	if err := s.MarkViolation(id); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkViolation(id); err != nil {
		t.Fatal(err)
	}
	if got := s.ViolationIDs(); len(got) != 1 || got[0] != id {
		t.Errorf("violation IDs = %v, want [%d] exactly once", got, id)
	}
	if !s.HasViolations() {
		t.Error("HasViolations should be true")
	}
}

func TestSetCoords(t *testing.T) {
	s := NewSpace()
	s.Add(mds.Coord{}, nil, 0)
	s.Add(mds.Coord{}, nil, 0)
	if err := s.SetCoords([]mds.Coord{{X: 1}}); err == nil {
		t.Error("length mismatch should error")
	}
	want := []mds.Coord{{X: 1, Y: 2}, {X: 3, Y: 4}}
	if err := s.SetCoords(want); err != nil {
		t.Fatal(err)
	}
	got := s.Coords()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("coord %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCoordinateRangeMedian(t *testing.T) {
	s := NewSpace()
	if got := s.CoordinateRangeMedian(); got != 0 {
		t.Errorf("empty median = %v, want 0", got)
	}
	s.Add(mds.Coord{X: 0, Y: 0}, nil, 0)
	if got := s.CoordinateRangeMedian(); got != 0 {
		t.Errorf("single-state median = %v, want 0", got)
	}
	s.Add(mds.Coord{X: 4, Y: 2}, nil, 0)
	// Ranges: x extent 4, y extent 2 → median (mean of two) = 3.
	if got := s.CoordinateRangeMedian(); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
}

func TestNearestSafe(t *testing.T) {
	s := NewSpace()
	a := s.Add(mds.Coord{X: 0, Y: 0}, nil, 0)
	b := s.Add(mds.Coord{X: 10, Y: 0}, nil, 0)
	v := s.Add(mds.Coord{X: 4, Y: 0}, nil, 0)
	if err := s.MarkViolation(v); err != nil {
		t.Fatal(err)
	}
	dist, id, ok := s.NearestSafe(mds.Coord{X: 4, Y: 0})
	if !ok {
		t.Fatal("expected a safe state")
	}
	if id != a || dist != 4 {
		t.Errorf("nearest safe = state %d at %v, want state %d at 4", id, dist, a)
	}
	// From the right-hand side, b is nearer.
	dist, id, ok = s.NearestSafe(mds.Coord{X: 8, Y: 0})
	if !ok || id != b || dist != 2 {
		t.Errorf("nearest safe = %d at %v, want %d at 2", id, dist, b)
	}
}

func TestNearestSafeNoneExists(t *testing.T) {
	s := NewSpace()
	v := s.Add(mds.Coord{}, nil, 0)
	if err := s.MarkViolation(v); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.NearestSafe(mds.Coord{X: 1}); ok {
		t.Error("no safe states exist; ok should be false")
	}
	if _, _, ok := s.NearestAny(mds.Coord{X: 1}); !ok {
		t.Error("NearestAny should find the violation state")
	}
}

func TestNearestOnEmptySpace(t *testing.T) {
	s := NewSpace()
	if _, _, ok := s.NearestAny(mds.Coord{}); ok {
		t.Error("empty space should report no nearest")
	}
}

func TestViolationRangesRayleigh(t *testing.T) {
	s := NewSpace()
	safe := s.Add(mds.Coord{X: 0, Y: 0}, nil, 0)
	_ = safe
	v := s.Add(mds.Coord{X: 3, Y: 0}, nil, 0)
	if err := s.MarkViolation(v); err != nil {
		t.Fatal(err)
	}
	discs := s.ViolationRanges()
	if len(discs) != 1 {
		t.Fatalf("discs = %d, want 1", len(discs))
	}
	c := s.CoordinateRangeMedian() // x extent 3, y extent 0 → median 1.5
	wantR := stats.RayleighWeight(3, c)
	if math.Abs(discs[0].Radius-wantR) > 1e-12 {
		t.Errorf("radius = %v, want %v", discs[0].Radius, wantR)
	}
	if discs[0].StateID != v || discs[0].Center != (mds.Coord{X: 3, Y: 0}) {
		t.Errorf("disc = %+v", discs[0])
	}
	// The radius never reaches the safe state (R < d).
	if discs[0].Radius >= 3 {
		t.Errorf("radius %v must be < distance 3", discs[0].Radius)
	}
}

func TestViolationRangesNoSafeStates(t *testing.T) {
	s := NewSpace()
	v1 := s.Add(mds.Coord{X: 0, Y: 0}, nil, 0)
	v2 := s.Add(mds.Coord{X: 2, Y: 2}, nil, 0)
	if err := s.MarkViolation(v1); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkViolation(v2); err != nil {
		t.Fatal(err)
	}
	discs := s.ViolationRanges()
	if len(discs) != 2 {
		t.Fatalf("discs = %d, want 2", len(discs))
	}
	// With no safe state, d falls back to c: radius = c·e^(−1/2).
	c := s.CoordinateRangeMedian()
	want := stats.RayleighWeight(c, c)
	for _, d := range discs {
		if math.Abs(d.Radius-want) > 1e-12 {
			t.Errorf("radius = %v, want %v", d.Radius, want)
		}
	}
}

func TestInViolationRange(t *testing.T) {
	s := NewSpace()
	s.Add(mds.Coord{X: 0, Y: 0}, nil, 0) // safe
	v := s.Add(mds.Coord{X: 2, Y: 0}, nil, 0)
	if err := s.MarkViolation(v); err != nil {
		t.Fatal(err)
	}
	d, in := s.InViolationRange(mds.Coord{X: 2, Y: 0})
	if !in || d.StateID != v {
		t.Errorf("center of violation must be in range: %+v, %v", d, in)
	}
	if _, in := s.InViolationRange(mds.Coord{X: -5, Y: -5}); in {
		t.Error("far point must not be in violation range")
	}
}

func TestViolationRangeShrinksAsSafeStateApproaches(t *testing.T) {
	// §3.2.2: "the closer there is a known safe-state, the lesser is the
	// area of the violation-range". Keep the overall extent fixed with two
	// pinned corner states so c is constant, and move the safe state in.
	radiusWith := func(safeX float64) float64 {
		s := NewSpace()
		s.Add(mds.Coord{X: 0, Y: 0}, nil, 0)   // pin extent
		s.Add(mds.Coord{X: 10, Y: 10}, nil, 0) // pin extent
		s.Add(mds.Coord{X: safeX, Y: 5}, nil, 0)
		v := s.Add(mds.Coord{X: 5, Y: 5}, nil, 0)
		if err := s.MarkViolation(v); err != nil {
			t.Fatal(err)
		}
		return s.ViolationRanges()[0].Radius
	}
	// c = 10; distances 0.5, 1, 2 are all below the Rayleigh peak (d=c),
	// so the radius must grow with distance.
	r1 := radiusWith(4.5) // d = 0.5
	r2 := radiusWith(4)   // d = 1
	r3 := radiusWith(3)   // d = 2
	if !(r1 < r2 && r2 < r3) {
		t.Errorf("radii %v, %v, %v should increase with distance below the peak", r1, r2, r3)
	}
}

func TestStatesCopy(t *testing.T) {
	s := NewSpace()
	s.Add(mds.Coord{X: 1}, []float64{0.5}, 0)
	all := s.States()
	all[0].Vector[0] = 99
	st, _ := s.State(0)
	if st.Vector[0] != 0.5 {
		t.Error("States leaked internal vectors")
	}
}
