package statespace

import (
	"strings"
	"testing"
)

// FuzzReadTemplate: template parsing must never panic, and anything it
// accepts must survive Import (or be rejected by Import's validation) —
// never corrupt a Space.
func FuzzReadTemplate(f *testing.F) {
	f.Add(`{"version":1,"sensitive_app":"vlc","dim":2,"states":[{"x":1,"y":2,"label":"safe","weight":1,"vector":[0.1,0.2]}],"ranges":{}}`)
	f.Add(`{"version":1,"states":[{"label":"violation","vector":[]}]}`)
	f.Add(`{}`)
	f.Add(`{"version":99}`)
	f.Add(`not json`)
	f.Add(`{"version":1,"dim":3,"states":[{"vector":[1]}]}`)
	f.Add(`{"version":2,"sensitive_app":"vlc","dim":2,"schema_vms":["vlc"],"schema_metrics":["cpu","memory"],"states":[{"x":1,"y":2,"label":"violation","weight":3,"vector":[0.4,0.5]}],"ranges":{"cpu":{"max":400}}}`)
	f.Add(`{"version":2,"dim":2,"schema_vms":["vlc"]}`)
	f.Add(`{"version":2,"dim":4,"schema_vms":["a"],"schema_metrics":["cpu","cpu","io","net"]}`)
	f.Add(`{"version":2,"sensitive_app":"vlc","dim":1,"states":[{"vector":[0.1]`)
	f.Add(`{"version":2,"dim":0,"states":[]}trailing`)
	f.Add(`{"version":2,"states":[{"label":"safe","weight":-1,"vector":[]}]}`)
	f.Add(`{"version":2,"ranges":{"cpu":{"max":-1}}}`)
	f.Fuzz(func(t *testing.T, input string) {
		tpl, err := ReadTemplate(strings.NewReader(input))
		if err != nil {
			return
		}
		space, err := Import(tpl)
		if err != nil {
			return
		}
		// An imported space must be internally consistent.
		if space.Len() != len(tpl.States) {
			t.Fatalf("states %d vs template %d", space.Len(), len(tpl.States))
		}
		for _, id := range space.ViolationIDs() {
			st, err := space.State(id)
			if err != nil {
				t.Fatalf("violation id %d invalid: %v", id, err)
			}
			if st.Label != Violation {
				t.Fatalf("violation id %d labelled %v", id, st.Label)
			}
		}
		// Violation ranges must respect the R < d invariant where defined.
		for _, d := range space.ViolationRanges() {
			if d.Radius < 0 {
				t.Fatalf("negative radius %v", d.Radius)
			}
		}
	})
}
