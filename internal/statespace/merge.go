package statespace

import (
	"fmt"

	"repro/internal/mds"
	"repro/internal/metrics"
)

// Template merging. Two executions of the same sensitive application learn
// maps of the same underlying state space, but their MDS embeddings differ
// by an arbitrary similarity transform (rotation, reflection, scale,
// translation — MDS solutions are only unique up to those), and adaptive
// normalization ranges may have stretched differently. Merging therefore:
//
//  1. widens both templates onto the union of their normalization ranges,
//     rescaling state vectors so they stay comparable;
//  2. Procrustes-aligns the incoming coordinates onto the base layout,
//     using vector-nearest state pairs as correspondences;
//  3. dedupes the combined state set: ε-close vectors collapse into one
//     consensus state whose weight accumulates and whose label is
//     Violation if either contributor saw a violation there.
//
// The result keeps every violation-state either contributor has suffered,
// which is the whole point of sharing: the next execution bootstraps from
// the union of the fleet's bad experiences. The machinery lives here (not
// in the registry) because both sides of the fleet control plane need it:
// the registry merges whole uploads into the consensus map, and a running
// host applies streamed deltas onto its live map with the same alignment.

// MergeTemplates merges incoming into base and returns a new consensus
// template; neither input is mutated. Both templates must describe the
// same sensitive application under the same metric schema. eps is the
// vector distance under which states from the two templates collapse into
// one consensus state; it must be positive.
func MergeTemplates(base, incoming *Template, eps float64) (*Template, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("statespace: merge epsilon %v must be positive", eps)
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("statespace: base template: %w", err)
	}
	if err := incoming.Validate(); err != nil {
		return nil, fmt.Errorf("statespace: incoming template: %w", err)
	}
	if base.SensitiveApp != incoming.SensitiveApp {
		return nil, fmt.Errorf("statespace: merging templates for different apps %q and %q",
			base.SensitiveApp, incoming.SensitiveApp)
	}
	if base.SchemaKey() != incoming.SchemaKey() {
		return nil, fmt.Errorf("statespace: merging templates with schemas %q and %q: %w",
			base.SchemaKey(), incoming.SchemaKey(), ErrSchemaMismatch)
	}

	merged := &Template{
		Version:       base.Version,
		SensitiveApp:  base.SensitiveApp,
		Dim:           base.Dim,
		SchemaVMs:     append([]string(nil), base.SchemaVMs...),
		SchemaMetrics: append([]metrics.Metric(nil), base.SchemaMetrics...),
	}
	if incoming.Version > merged.Version {
		merged.Version = incoming.Version
	}

	ranges, err := MergeRanges(base, incoming)
	if err != nil {
		return nil, err
	}
	merged.Ranges = ranges
	baseStates := RescaleStates(base, ranges)
	inStates := RescaleStates(incoming, ranges)

	inStates, err = alignOnto(baseStates, inStates, eps)
	if err != nil {
		return nil, err
	}

	merged.States = DedupeStates(append(baseStates, inStates...), eps)
	if merged.Dim == 0 {
		merged.Dim = incoming.Dim
	}
	return merged, nil
}

// AlignStates maps incoming's states into base's frame without touching
// base's normalization ranges: vectors are rescaled from incoming.Ranges
// into base.Ranges (values the base has never seen may land above 1 — they
// describe loads beyond this execution's observed range and still compare
// correctly), and coordinates are Procrustes-aligned onto base's layout
// using ε-close vector pairs as correspondences. This is the apply side of
// delta sync: a running host folds streamed fleet states into its live map
// without rescaling the map it is actively controlling from.
func AlignStates(base, incoming *Template, eps float64) ([]TemplateState, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("statespace: align epsilon %v must be positive", eps)
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("statespace: align base: %w", err)
	}
	if err := incoming.Validate(); err != nil {
		return nil, fmt.Errorf("statespace: align incoming: %w", err)
	}
	if base.SchemaKey() != incoming.SchemaKey() {
		return nil, fmt.Errorf("statespace: aligning templates with schemas %q and %q: %w",
			base.SchemaKey(), incoming.SchemaKey(), ErrSchemaMismatch)
	}
	inStates := RescaleStates(incoming, base.Ranges)
	return alignOnto(base.States, inStates, eps)
}

// alignOnto Procrustes-aligns inStates' coordinates onto the base layout
// using vector-nearest pairs as correspondences. With no confident pairs
// the transform degrades to identity, which is still safe: downstream
// dedup matches on vectors, not coordinates. inStates is returned with
// coordinates rewritten (the slice is owned by the caller).
func alignOnto(baseStates, inStates []TemplateState, eps float64) ([]TemplateState, error) {
	var src, dst []mds.Coord
	for _, in := range inStates {
		j, d := NearestStateByVector(baseStates, in.Vector)
		if j >= 0 && d <= eps {
			src = append(src, mds.Coord{X: in.X, Y: in.Y})
			dst = append(dst, mds.Coord{X: baseStates[j].X, Y: baseStates[j].Y})
		}
	}
	if len(src) > 0 && len(inStates) > 0 {
		tr, _, err := mds.Procrustes(src, dst)
		if err != nil {
			return nil, fmt.Errorf("statespace: aligning templates: %w", err)
		}
		for i := range inStates {
			p := tr.Apply(mds.Coord{X: inStates[i].X, Y: inStates[i].Y})
			inStates[i].X, inStates[i].Y = p.X, p.Y
		}
	}
	return inStates, nil
}

// DedupeStates greedily collapses ε-close (by vector) states into one
// consensus state: earlier states seed the representative set so an
// established fleet map stays stable; later states either fold into a
// representative — accumulating weight, upgrading the label to Violation
// if either contributor saw one — or join as new states.
func DedupeStates(states []TemplateState, eps float64) []TemplateState {
	var reps []TemplateState
	for _, st := range states {
		j, d := NearestStateByVector(reps, st.Vector)
		if j >= 0 && d <= eps {
			reps[j].Weight += st.Weight
			if st.Label == Violation.String() {
				reps[j].Label = st.Label
			}
			continue
		}
		reps = append(reps, st)
	}
	return reps
}

// MergeRanges unions the two templates' normalization ranges, taking the
// wider max per metric. Templates without schema information (version 1)
// cannot be rescaled, so their ranges must match exactly.
func MergeRanges(base, incoming *Template) (map[metrics.Metric]metrics.Range, error) {
	legacy := len(base.SchemaMetrics) == 0 || len(incoming.SchemaMetrics) == 0
	out := make(map[metrics.Metric]metrics.Range, len(base.Ranges))
	for m, r := range base.Ranges {
		out[m] = r
	}
	for m, r := range incoming.Ranges {
		cur, ok := out[m]
		if !ok {
			out[m] = r
			continue
		}
		//lint:stayaway-ignore floatcmp schema-less templates cannot be rescaled, so only byte-identical range maxima are mergeable — exact equality is the requirement, not a rounding accident
		if legacy && (cur.Max != r.Max || cur.Adaptive != r.Adaptive) {
			return nil, fmt.Errorf("statespace: schema-less templates with differing range for %q (%v vs %v) cannot merge",
				m, cur, r)
		}
		if r.Max > cur.Max {
			cur.Max = r.Max
		}
		cur.Adaptive = cur.Adaptive || r.Adaptive
		out[m] = cur
	}
	return out, nil
}

// RescaleStates returns copies of t's states with vectors re-normalized
// from t.Ranges into the given ranges: a value that meant "x of oldMax"
// becomes "x·oldMax/newMax of newMax". Coordinates are left untouched —
// they are an embedding of the old distances and get re-solved by the next
// embedding refresh anyway.
func RescaleStates(t *Template, ranges map[metrics.Metric]metrics.Range) []TemplateState {
	nm := len(t.SchemaMetrics)
	out := make([]TemplateState, len(t.States))
	for i, st := range t.States {
		cp := st
		cp.Vector = append([]float64(nil), st.Vector...)
		if nm > 0 {
			for d := range cp.Vector {
				m := t.SchemaMetrics[d%nm]
				oldR, okOld := t.Ranges[m]
				newR, okNew := ranges[m]
				//lint:stayaway-ignore floatcmp equal maxima mean a scale factor of exactly 1; skipping the multiply keeps unchanged vectors byte-identical, which the delta tracker relies on
				if okOld && okNew && oldR.Max > 0 && newR.Max > 0 && oldR.Max != newR.Max {
					cp.Vector[d] *= oldR.Max / newR.Max
				}
			}
		}
		out[i] = cp
	}
	return out
}

// CloneTemplate deep-copies a template so stored consensus maps never
// alias caller-owned memory.
func CloneTemplate(t *Template) *Template {
	cp := *t
	cp.SchemaVMs = append([]string(nil), t.SchemaVMs...)
	cp.SchemaMetrics = append([]metrics.Metric(nil), t.SchemaMetrics...)
	cp.States = make([]TemplateState, len(t.States))
	for i, st := range t.States {
		cp.States[i] = st
		cp.States[i].Vector = append([]float64(nil), st.Vector...)
	}
	cp.Ranges = make(map[metrics.Metric]metrics.Range, len(t.Ranges))
	for m, r := range t.Ranges {
		cp.Ranges[m] = r
	}
	return &cp
}

// NearestStateByVector returns the index and vector distance of the state
// in states whose vector is closest to vec, or (-1, 0) when states is
// empty or no state shares vec's dimension.
func NearestStateByVector(states []TemplateState, vec []float64) (int, float64) {
	best, bestD := -1, 0.0
	for i, st := range states {
		if len(st.Vector) != len(vec) {
			continue
		}
		d := mds.Euclidean(st.Vector, vec)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
