package statespace

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

// queryTemplate builds a small learned map for tests: a sensitive app that
// is safe alone and safe next to a CPU-heavy co-runner, but violates under
// a memory-heavy co-runner. Coordinates roughly respect the vector-space
// distances so out-of-sample placement lands new points sensibly.
func queryTemplate() *Template {
	return &Template{
		Version:       2,
		SensitiveApp:  "vlc",
		Dim:           8,
		SchemaVMs:     []string{"sens", "batch"},
		SchemaMetrics: metrics.DefaultMetrics(),
		Ranges: map[metrics.Metric]metrics.Range{
			metrics.MetricCPU:     {Max: 800},
			metrics.MetricMemory:  {Max: 8192},
			metrics.MetricIO:      {Max: 200},
			metrics.MetricNetwork: {Max: 1000},
		},
		States: []TemplateState{
			// Sensitive alone.
			{X: 0, Y: 0, Label: "safe", Weight: 4,
				Vector: []float64{0.35, 0.07, 0, 0, 0, 0, 0, 0}},
			// CPU-bomb co-location: harmless on this host.
			{X: 0.7, Y: 0, Label: "safe", Weight: 4,
				Vector: []float64{0.35, 0.07, 0, 0, 0.5, 0.01, 0, 0}},
			// Memory-bomb co-location: violation.
			{X: 0, Y: 0.9, Label: "violation", Weight: 2,
				Vector: []float64{0.35, 0.07, 0.2, 0, 0.08, 0.45, 0.4, 0}},
		},
	}
}

func TestTemplateViolationCount(t *testing.T) {
	tpl := queryTemplate()
	if got := tpl.ViolationCount(); got != 1 {
		t.Fatalf("ViolationCount = %d, want 1", got)
	}
	if got := tpl.SafeCount(); got != 2 {
		t.Fatalf("SafeCount = %d, want 2", got)
	}
}

func TestNewQueryMapRejectsBadTemplates(t *testing.T) {
	if _, err := NewQueryMap(&Template{Version: 1, Dim: 8}); err == nil {
		t.Fatal("schema-less template accepted")
	}
	tpl := queryTemplate()
	tpl.SchemaVMs = []string{"a", "b", "c"}
	tpl.Dim = 12
	for i := range tpl.States {
		tpl.States[i].Vector = append(tpl.States[i].Vector, 0, 0, 0, 0)
	}
	if _, err := NewQueryMap(tpl); err == nil {
		t.Fatal("three-slot template accepted")
	}
	empty := queryTemplate()
	empty.States = nil
	if _, err := NewQueryMap(empty); err == nil {
		t.Fatal("empty template accepted")
	}
}

func TestQueryMapScoreDiscriminatesCoLocations(t *testing.T) {
	q, err := NewQueryMap(queryTemplate())
	if err != nil {
		t.Fatalf("NewQueryMap: %v", err)
	}
	if !q.HasViolations() {
		t.Fatal("HasViolations = false")
	}
	sens := map[metrics.Metric]float64{metrics.MetricCPU: 280, metrics.MetricMemory: 600}

	cpuBomb := map[metrics.Metric]float64{metrics.MetricCPU: 400, metrics.MetricMemory: 64}
	memBomb := map[metrics.Metric]float64{
		metrics.MetricCPU: 60, metrics.MetricMemory: 3600, metrics.MetricIO: 70,
	}
	pCPU, err := q.Score(sens, cpuBomb)
	if err != nil {
		t.Fatalf("Score(cpu bomb): %v", err)
	}
	pMem, err := q.Score(sens, memBomb)
	if err != nil {
		t.Fatalf("Score(mem bomb): %v", err)
	}
	if pCPU >= pMem {
		t.Fatalf("cpu-bomb score %.4f not below mem-bomb score %.4f", pCPU, pMem)
	}
	if pMem < 0.5 {
		t.Fatalf("mem-bomb co-location scored %.4f, want near-certain violation", pMem)
	}
	if pCPU < 0 || pCPU > 1 || pMem < 0 || pMem > 1 {
		t.Fatalf("scores out of [0,1]: %v %v", pCPU, pMem)
	}
}

func TestQueryMapScoreDeterministic(t *testing.T) {
	sens := map[metrics.Metric]float64{metrics.MetricCPU: 280, metrics.MetricMemory: 600}
	batch := map[metrics.Metric]float64{metrics.MetricCPU: 120, metrics.MetricMemory: 2000}
	var first float64
	for i := 0; i < 3; i++ {
		q, err := NewQueryMap(queryTemplate())
		if err != nil {
			t.Fatalf("NewQueryMap: %v", err)
		}
		p, err := q.Score(sens, batch)
		if err != nil {
			t.Fatalf("Score: %v", err)
		}
		if i == 0 {
			first = p
		} else if p != first {
			t.Fatalf("run %d scored %v, first run %v", i, p, first)
		}
	}
}

func TestQueryMapNoViolationsScoresZero(t *testing.T) {
	tpl := queryTemplate()
	tpl.States = tpl.States[:2] // drop the violation state
	q, err := NewQueryMap(tpl)
	if err != nil {
		t.Fatalf("NewQueryMap: %v", err)
	}
	p, err := q.Score(
		map[metrics.Metric]float64{metrics.MetricCPU: 280},
		map[metrics.Metric]float64{metrics.MetricMemory: 4000})
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if p != 0 {
		t.Fatalf("violation-free map scored %v, want 0", p)
	}
}

func TestQueryMapProjectInsideViolationIsOne(t *testing.T) {
	q, err := NewQueryMap(queryTemplate())
	if err != nil {
		t.Fatalf("NewQueryMap: %v", err)
	}
	// The violation state's own vector must project onto (or next to) the
	// violation state and score 1.
	vec := []float64{0.35, 0.07, 0.2, 0, 0.08, 0.45, 0.4, 0}
	coord, err := q.Project(vec)
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if p := q.ViolationProximity(coord); p != 1 {
		t.Fatalf("violation vector proximity %v, want 1", p)
	}
	if _, err := q.Project([]float64{1, 2, 3}); err == nil {
		t.Fatal("wrong-dimension vector accepted")
	}
	if math.IsNaN(coord.X) || math.IsNaN(coord.Y) {
		t.Fatalf("non-finite projection %v", coord)
	}
}
