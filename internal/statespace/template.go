package statespace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/mds"
	"repro/internal/metrics"
)

// Template properties (§6): "the violation-states in the generated map from
// a previous execution can be used as a starting point and is a valid map
// for a new execution with a different batch application." A template
// captures the states, their labels, and the normalization ranges they were
// measured under — without matching ranges the vectors of the new run would
// not be comparable to the template's.

// templateVersion is the current template format version. Version 1
// templates (no schema fields) are still accepted; anything newer than the
// current version is rejected.
const templateVersion = 2

// Sentinel errors for template validation, matchable with errors.Is.
var (
	// ErrTemplateVersion marks a template from an unknown (newer or
	// nonsensical) format version.
	ErrTemplateVersion = errors.New("unsupported template version")
	// ErrSchemaMismatch marks a template whose metric schema does not
	// match the importer's measurement schema — its vectors would be
	// incomparable with locally collected ones.
	ErrSchemaMismatch = errors.New("template metric-schema mismatch")
	// ErrCorruptTemplate marks JSON that parsed but fails structural
	// validation (negative dimensions, non-finite vectors, …).
	ErrCorruptTemplate = errors.New("corrupt template")
)

// Template is the serializable snapshot of a learned state space.
type Template struct {
	// Version is the template format version.
	Version int `json:"version"`
	// SensitiveApp names the latency-sensitive application the map
	// characterizes. Templates are only valid across runs of the same
	// sensitive application (§6).
	SensitiveApp string `json:"sensitive_app"`
	// Dim is the measurement-vector dimension.
	Dim int `json:"dim"`
	// SchemaVMs and SchemaMetrics record the (VM, metric) flattening
	// schema the vectors were produced under: Dim = len(SchemaVMs) ×
	// len(SchemaMetrics), metrics varying fastest. Version-1 templates
	// predate these fields and carry only Dim.
	SchemaVMs     []string         `json:"schema_vms,omitempty"`
	SchemaMetrics []metrics.Metric `json:"schema_metrics,omitempty"`
	// States carries every learned state.
	States []TemplateState `json:"states"`
	// Ranges carries the normalizer snapshot the vectors were scaled with.
	Ranges map[metrics.Metric]metrics.Range `json:"ranges"`
}

// TemplateState is one serialized state.
type TemplateState struct {
	X      float64   `json:"x"`
	Y      float64   `json:"y"`
	Label  string    `json:"label"`
	Weight int       `json:"weight"`
	Vector []float64 `json:"vector"`
	// Unverified preserves the stale-QoS flag across checkpoint
	// round-trips: a state whose safety was never confirmed must not come
	// back from a restart as a verified safe-state anchor. Absent (false)
	// in templates from before the flag existed.
	Unverified bool `json:"unverified,omitempty"`
}

// Export captures the space into a template. schema, when non-nil, records
// the (VM, metric) flattening layout so importers can reject templates
// measured under a different schema.
func Export(s *Space, sensitiveApp string, ranges map[metrics.Metric]metrics.Range, schema *metrics.Schema) *Template {
	t := &Template{
		Version:      templateVersion,
		SensitiveApp: sensitiveApp,
		Ranges:       ranges,
	}
	if schema != nil {
		t.SchemaVMs = schema.VMs()
		t.SchemaMetrics = schema.Metrics()
		t.Dim = schema.Dim()
	}
	for _, st := range s.States() {
		if t.Dim == 0 {
			t.Dim = len(st.Vector)
		}
		t.States = append(t.States, TemplateState{
			X:          st.Coord.X,
			Y:          st.Coord.Y,
			Label:      st.Label.String(),
			Weight:     st.Weight,
			Vector:     st.Vector,
			Unverified: st.Unverified,
		})
	}
	return t
}

// Validate checks the template's internal consistency: a known version, a
// schema whose product matches Dim, and finite state vectors of the right
// dimension. Import and ReadTemplate both call it.
func (t *Template) Validate() error {
	if t == nil {
		return fmt.Errorf("statespace: nil template")
	}
	if t.Version < 1 || t.Version > templateVersion {
		return fmt.Errorf("statespace: template version %d, support 1..%d: %w",
			t.Version, templateVersion, ErrTemplateVersion)
	}
	if t.Dim < 0 {
		return fmt.Errorf("statespace: template dim %d: %w", t.Dim, ErrCorruptTemplate)
	}
	if len(t.SchemaVMs) > 0 || len(t.SchemaMetrics) > 0 {
		if len(t.SchemaVMs) == 0 || len(t.SchemaMetrics) == 0 {
			return fmt.Errorf("statespace: template schema incomplete (%d VMs, %d metrics): %w",
				len(t.SchemaVMs), len(t.SchemaMetrics), ErrCorruptTemplate)
		}
		if got := len(t.SchemaVMs) * len(t.SchemaMetrics); t.Dim != got {
			return fmt.Errorf("statespace: template dim %d, schema implies %d: %w",
				t.Dim, got, ErrCorruptTemplate)
		}
		seen := make(map[metrics.Metric]bool, len(t.SchemaMetrics))
		for _, m := range t.SchemaMetrics {
			if m == "" || seen[m] {
				return fmt.Errorf("statespace: template schema metric %q empty or duplicated: %w",
					m, ErrCorruptTemplate)
			}
			seen[m] = true
		}
	}
	for i, ts := range t.States {
		if t.Dim > 0 && len(ts.Vector) != t.Dim {
			return fmt.Errorf("statespace: template state %d has dim %d, want %d: %w",
				i, len(ts.Vector), t.Dim, ErrCorruptTemplate)
		}
		if ts.Weight < 0 {
			return fmt.Errorf("statespace: template state %d has negative weight %d: %w",
				i, ts.Weight, ErrCorruptTemplate)
		}
		for j, v := range ts.Vector {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("statespace: template state %d vector[%d] = %v: %w",
					i, j, v, ErrCorruptTemplate)
			}
		}
		if math.IsNaN(ts.X) || math.IsInf(ts.X, 0) || math.IsNaN(ts.Y) || math.IsInf(ts.Y, 0) {
			return fmt.Errorf("statespace: template state %d has non-finite coordinates: %w",
				i, ErrCorruptTemplate)
		}
	}
	for m, r := range t.Ranges {
		if math.IsNaN(r.Max) || math.IsInf(r.Max, 0) || r.Max < 0 {
			return fmt.Errorf("statespace: template range for %q has invalid max %v: %w",
				m, r.Max, ErrCorruptTemplate)
		}
	}
	return nil
}

// CompatibleWith reports (as an error wrapping ErrSchemaMismatch) whether
// the template's vectors are comparable with measurements flattened under
// the given schema: same metric set in the same order and the same VM-slot
// count. VM *names* are deliberately not compared — hosts name their
// sensitive/batch slots differently while the positional roles match.
// Version-1 templates carry no schema, so only the dimension is checked.
func (t *Template) CompatibleWith(schema *metrics.Schema) error {
	if schema == nil {
		return fmt.Errorf("statespace: nil schema")
	}
	if len(t.SchemaMetrics) == 0 {
		if t.Dim != 0 && t.Dim != schema.Dim() {
			return fmt.Errorf("statespace: template dim %d, local schema dim %d: %w",
				t.Dim, schema.Dim(), ErrSchemaMismatch)
		}
		return nil
	}
	ms := schema.Metrics()
	if len(ms) != len(t.SchemaMetrics) {
		return fmt.Errorf("statespace: template has %d metrics %v, local schema %d %v: %w",
			len(t.SchemaMetrics), t.SchemaMetrics, len(ms), ms, ErrSchemaMismatch)
	}
	for i, m := range ms {
		if t.SchemaMetrics[i] != m {
			return fmt.Errorf("statespace: template metric[%d] = %q, local schema %q: %w",
				i, t.SchemaMetrics[i], m, ErrSchemaMismatch)
		}
	}
	if len(t.SchemaVMs) != len(schema.VMs()) {
		return fmt.Errorf("statespace: template has %d VM slots, local schema %d: %w",
			len(t.SchemaVMs), len(schema.VMs()), ErrSchemaMismatch)
	}
	return nil
}

// SchemaKey returns a stable fingerprint of the flattening schema, used by
// the fleet registry to key templates per (sensitive app, schema) so maps
// measured under different metric sets never merge. Version-1 templates
// degrade to a dimension-only key.
func (t *Template) SchemaKey() string {
	if len(t.SchemaMetrics) == 0 {
		return fmt.Sprintf("dim%d", t.Dim)
	}
	parts := make([]string, len(t.SchemaMetrics))
	for i, m := range t.SchemaMetrics {
		parts[i] = string(m)
	}
	return fmt.Sprintf("%dvm/%s", len(t.SchemaVMs), strings.Join(parts, ","))
}

// Import reconstructs a state space from a template. The returned space
// contains every template state with weight and label preserved; periods
// are reset to 0 (they belong to the old execution's timeline). Templates
// from unknown versions or with inconsistent schemas are rejected with
// errors wrapping ErrTemplateVersion / ErrCorruptTemplate.
func Import(t *Template) (*Space, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	s := NewSpace()
	for i, ts := range t.States {
		id := s.Add(mds.Coord{X: ts.X, Y: ts.Y}, ts.Vector, 0)
		s.states[id].Weight = ts.Weight
		switch ts.Label {
		case Safe.String():
			s.states[id].Unverified = ts.Unverified
		case Violation.String():
			if err := s.MarkViolation(id); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("statespace: template state %d has unknown label %q: %w",
				i, ts.Label, ErrCorruptTemplate)
		}
	}
	return s, nil
}

// WriteTo serializes the template as indented JSON.
func (t *Template) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("statespace: marshal template: %w", err)
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ReadTemplate parses and validates a template from JSON. Truncated input
// surfaces as a wrapped io.ErrUnexpectedEOF, trailing garbage after the
// template object is rejected, and structurally invalid templates (wrong
// version, inconsistent schema, non-finite vectors) fail Validate rather
// than corrupting a later Import.
func ReadTemplate(r io.Reader) (*Template, error) {
	var t Template
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		if errors.Is(err, io.EOF) {
			// Empty input and input cut off mid-object both surface as the
			// same matchable truncation error.
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("statespace: decode template: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("statespace: trailing data after template: %w", ErrCorruptTemplate)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
