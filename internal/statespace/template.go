package statespace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/mds"
	"repro/internal/metrics"
)

// Template properties (§6): "the violation-states in the generated map from
// a previous execution can be used as a starting point and is a valid map
// for a new execution with a different batch application." A template
// captures the states, their labels, and the normalization ranges they were
// measured under — without matching ranges the vectors of the new run would
// not be comparable to the template's.

// templateVersion guards against loading templates from incompatible
// releases.
const templateVersion = 1

// Template is the serializable snapshot of a learned state space.
type Template struct {
	// Version is the template format version.
	Version int `json:"version"`
	// SensitiveApp names the latency-sensitive application the map
	// characterizes. Templates are only valid across runs of the same
	// sensitive application (§6).
	SensitiveApp string `json:"sensitive_app"`
	// Dim is the measurement-vector dimension.
	Dim int `json:"dim"`
	// States carries every learned state.
	States []TemplateState `json:"states"`
	// Ranges carries the normalizer snapshot the vectors were scaled with.
	Ranges map[metrics.Metric]metrics.Range `json:"ranges"`
}

// TemplateState is one serialized state.
type TemplateState struct {
	X      float64   `json:"x"`
	Y      float64   `json:"y"`
	Label  string    `json:"label"`
	Weight int       `json:"weight"`
	Vector []float64 `json:"vector"`
}

// Export captures the space into a template.
func Export(s *Space, sensitiveApp string, ranges map[metrics.Metric]metrics.Range) *Template {
	t := &Template{
		Version:      templateVersion,
		SensitiveApp: sensitiveApp,
		Ranges:       ranges,
	}
	for _, st := range s.States() {
		if t.Dim == 0 {
			t.Dim = len(st.Vector)
		}
		t.States = append(t.States, TemplateState{
			X:      st.Coord.X,
			Y:      st.Coord.Y,
			Label:  st.Label.String(),
			Weight: st.Weight,
			Vector: st.Vector,
		})
	}
	return t
}

// Import reconstructs a state space from a template. The returned space
// contains every template state with weight and label preserved; periods
// are reset to 0 (they belong to the old execution's timeline).
func Import(t *Template) (*Space, error) {
	if t == nil {
		return nil, fmt.Errorf("statespace: nil template")
	}
	if t.Version != templateVersion {
		return nil, fmt.Errorf("statespace: template version %d, want %d", t.Version, templateVersion)
	}
	s := NewSpace()
	for i, ts := range t.States {
		if t.Dim > 0 && len(ts.Vector) != t.Dim {
			return nil, fmt.Errorf("statespace: template state %d has dim %d, want %d", i, len(ts.Vector), t.Dim)
		}
		id := s.Add(mds.Coord{X: ts.X, Y: ts.Y}, ts.Vector, 0)
		s.states[id].Weight = ts.Weight
		switch ts.Label {
		case Safe.String():
		case Violation.String():
			if err := s.MarkViolation(id); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("statespace: template state %d has unknown label %q", i, ts.Label)
		}
	}
	return s, nil
}

// WriteTo serializes the template as indented JSON.
func (t *Template) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("statespace: marshal template: %w", err)
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ReadTemplate parses a template from JSON.
func ReadTemplate(r io.Reader) (*Template, error) {
	var t Template
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("statespace: decode template: %w", err)
	}
	return &t, nil
}
