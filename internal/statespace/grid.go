package statespace

import (
	"math"

	"repro/internal/mds"
)

// grid is a uniform spatial hash over state positions for nearest-neighbour
// queries. State counts stay modest (representative reduction keeps only
// distinct states), but nearest-safe-state queries run for every
// violation-state every period, so an index keeps the controller's
// per-period cost low (the paper's ~2% CPU overhead budget).
type grid struct {
	states   []State
	cellSize float64
	minX     float64
	minY     float64
	cols     int
	rows     int
	cells    map[int][]int // cell key -> state IDs
}

// targetPerCell tunes cell granularity: cells sized so an average cell
// holds about this many states.
const targetPerCell = 4

func buildGrid(states []State) *grid {
	g := &grid{states: states, cells: make(map[int][]int)}
	if len(states) == 0 {
		g.cellSize = 1
		g.cols, g.rows = 1, 1
		return g
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, st := range states {
		minX = math.Min(minX, st.Coord.X)
		maxX = math.Max(maxX, st.Coord.X)
		minY = math.Min(minY, st.Coord.Y)
		maxY = math.Max(maxY, st.Coord.Y)
	}
	g.minX, g.minY = minX, minY
	w, h := maxX-minX, maxY-minY
	span := math.Max(w, h)
	if span <= 0 {
		// All states coincide: one cell is enough.
		g.cellSize = 1
		g.cols, g.rows = 1, 1
		for i := range states {
			g.cells[0] = append(g.cells[0], i)
		}
		return g
	}
	nCells := math.Max(1, float64(len(states))/targetPerCell)
	side := math.Sqrt(nCells)
	g.cellSize = span / side
	g.cols = int(w/g.cellSize) + 1
	g.rows = int(h/g.cellSize) + 1
	for i, st := range states {
		g.cells[g.key(st.Coord)] = append(g.cells[g.key(st.Coord)], i)
	}
	return g
}

func (g *grid) cellOf(p mds.Coord) (cx, cy int) {
	cx = int((p.X - g.minX) / g.cellSize)
	cy = int((p.Y - g.minY) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

func (g *grid) key(p mds.Coord) int {
	cx, cy := g.cellOf(p)
	return cy*g.cols + cx
}

// nearest finds the closest state satisfying pred using an expanding-ring
// search over grid cells. It returns ok=false when no state matches.
func (g *grid) nearest(p mds.Coord, pred func(*State) bool) (dist float64, id int, ok bool) {
	if len(g.states) == 0 {
		return 0, 0, false
	}
	cx, cy := g.cellOf(p)
	best := math.Inf(1)
	bestID := -1
	maxRing := g.cols
	if g.rows > maxRing {
		maxRing = g.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate is found, one extra ring guarantees correctness:
		// a state in a farther ring is at least (ring−1)·cellSize away.
		if bestID >= 0 && float64(ring-1)*g.cellSize > best {
			break
		}
		g.visitRing(cx, cy, ring, func(ids []int) {
			for _, i := range ids {
				st := &g.states[i]
				if !pred(st) {
					continue
				}
				d := p.Dist(st.Coord)
				if d < best {
					best = d
					bestID = i
				}
			}
		})
	}
	if bestID < 0 {
		return 0, 0, false
	}
	return best, g.states[bestID].ID, true
}

// visitRing calls fn for every populated cell on the square ring of the
// given radius around (cx, cy).
func (g *grid) visitRing(cx, cy, ring int, fn func(ids []int)) {
	if ring == 0 {
		if ids, ok := g.cells[cy*g.cols+cx]; ok {
			fn(ids)
		}
		return
	}
	for dx := -ring; dx <= ring; dx++ {
		for _, dy := range ringDY(dx, ring) {
			x, y := cx+dx, cy+dy
			if x < 0 || y < 0 || x >= g.cols || y >= g.rows {
				continue
			}
			if ids, ok := g.cells[y*g.cols+x]; ok {
				fn(ids)
			}
		}
	}
}

// ringDY returns the dy offsets forming the ring boundary for a given dx.
func ringDY(dx, ring int) []int {
	if dx == -ring || dx == ring {
		out := make([]int, 0, 2*ring+1)
		for dy := -ring; dy <= ring; dy++ {
			out = append(out, dy)
		}
		return out
	}
	return []int{-ring, ring}
}
