package statespace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mds"
	"repro/internal/metrics"
)

func buildSampleSpace(t *testing.T) *Space {
	t.Helper()
	s := NewSpace()
	s.Add(mds.Coord{X: 0, Y: 0}, []float64{0.1, 0.2}, 1)
	v := s.Add(mds.Coord{X: 3, Y: 4}, []float64{0.9, 0.8}, 2)
	if err := s.MarkViolation(v); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(0, 5); err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleRanges() map[metrics.Metric]metrics.Range {
	return map[metrics.Metric]metrics.Range{
		metrics.MetricCPU:    {Max: 400},
		metrics.MetricMemory: {Max: 2048, Adaptive: true},
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	s := buildSampleSpace(t)
	tpl := Export(s, "vlc-stream", sampleRanges())
	if tpl.SensitiveApp != "vlc-stream" || tpl.Dim != 2 || len(tpl.States) != 2 {
		t.Fatalf("template = %+v", tpl)
	}

	s2, err := Import(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("imported len = %d, want 2", s2.Len())
	}
	st0, _ := s2.State(0)
	if st0.Label != Safe || st0.Weight != 2 || st0.Vector[0] != 0.1 {
		t.Errorf("state 0 = %+v", st0)
	}
	st1, _ := s2.State(1)
	if st1.Label != Violation || st1.Coord != (mds.Coord{X: 3, Y: 4}) {
		t.Errorf("state 1 = %+v", st1)
	}
	if ids := s2.ViolationIDs(); len(ids) != 1 || ids[0] != 1 {
		t.Errorf("violation IDs = %v", ids)
	}
}

func TestTemplateJSONRoundTrip(t *testing.T) {
	s := buildSampleSpace(t)
	tpl := Export(s, "vlc-stream", sampleRanges())
	var buf bytes.Buffer
	if _, err := tpl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTemplate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.SensitiveApp != tpl.SensitiveApp || len(parsed.States) != len(tpl.States) {
		t.Errorf("parsed = %+v", parsed)
	}
	r, ok := parsed.Ranges[metrics.MetricMemory]
	if !ok || r.Max != 2048 || !r.Adaptive {
		t.Errorf("ranges lost: %+v", parsed.Ranges)
	}
	// The imported space must reproduce violation ranges.
	s2, err := Import(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.ViolationRanges()) != 1 {
		t.Error("imported space lost its violation range")
	}
}

func TestImportValidation(t *testing.T) {
	if _, err := Import(nil); err == nil {
		t.Error("nil template should error")
	}
	if _, err := Import(&Template{Version: 99}); err == nil {
		t.Error("wrong version should error")
	}
	bad := &Template{
		Version: templateVersion,
		Dim:     2,
		States:  []TemplateState{{Vector: []float64{1}}},
	}
	if _, err := Import(bad); err == nil {
		t.Error("dim mismatch should error")
	}
	badLabel := &Template{
		Version: templateVersion,
		States:  []TemplateState{{Label: "weird"}},
	}
	if _, err := Import(badLabel); err == nil {
		t.Error("unknown label should error")
	}
}

func TestReadTemplateMalformed(t *testing.T) {
	if _, err := ReadTemplate(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON should error")
	}
}

func TestTemplateViolationsSurviveAsViolations(t *testing.T) {
	// §6's core claim: a state labelled violation in the template remains a
	// violation-state for the next execution, whatever batch app runs.
	s := buildSampleSpace(t)
	tpl := Export(s, "vlc", sampleRanges())
	s2, err := Import(tpl)
	if err != nil {
		t.Fatal(err)
	}
	// A point mapped to the old violation location is flagged immediately,
	// before the new run has seen any violation of its own.
	if _, in := s2.InViolationRange(mds.Coord{X: 3, Y: 4}); !in {
		t.Error("template violation not active in new run")
	}
}
