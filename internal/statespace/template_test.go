package statespace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/mds"
	"repro/internal/metrics"
)

func buildSampleSpace(t *testing.T) *Space {
	t.Helper()
	s := NewSpace()
	s.Add(mds.Coord{X: 0, Y: 0}, []float64{0.1, 0.2}, 1)
	v := s.Add(mds.Coord{X: 3, Y: 4}, []float64{0.9, 0.8}, 2)
	if err := s.MarkViolation(v); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(0, 5); err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleRanges() map[metrics.Metric]metrics.Range {
	return map[metrics.Metric]metrics.Range{
		metrics.MetricCPU:    {Max: 400},
		metrics.MetricMemory: {Max: 2048, Adaptive: true},
	}
}

func sampleSchema(t *testing.T) *metrics.Schema {
	t.Helper()
	sch, err := metrics.NewSchema([]string{"vlc"},
		[]metrics.Metric{metrics.MetricCPU, metrics.MetricMemory})
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func TestExportImportRoundTrip(t *testing.T) {
	s := buildSampleSpace(t)
	tpl := Export(s, "vlc-stream", sampleRanges(), sampleSchema(t))
	if tpl.SensitiveApp != "vlc-stream" || tpl.Dim != 2 || len(tpl.States) != 2 {
		t.Fatalf("template = %+v", tpl)
	}

	s2, err := Import(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("imported len = %d, want 2", s2.Len())
	}
	st0, _ := s2.State(0)
	if st0.Label != Safe || st0.Weight != 2 || st0.Vector[0] != 0.1 {
		t.Errorf("state 0 = %+v", st0)
	}
	st1, _ := s2.State(1)
	if st1.Label != Violation || st1.Coord != (mds.Coord{X: 3, Y: 4}) {
		t.Errorf("state 1 = %+v", st1)
	}
	if ids := s2.ViolationIDs(); len(ids) != 1 || ids[0] != 1 {
		t.Errorf("violation IDs = %v", ids)
	}
}

func TestTemplateJSONRoundTrip(t *testing.T) {
	s := buildSampleSpace(t)
	tpl := Export(s, "vlc-stream", sampleRanges(), sampleSchema(t))
	var buf bytes.Buffer
	if _, err := tpl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadTemplate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.SensitiveApp != tpl.SensitiveApp || len(parsed.States) != len(tpl.States) {
		t.Errorf("parsed = %+v", parsed)
	}
	r, ok := parsed.Ranges[metrics.MetricMemory]
	if !ok || r.Max != 2048 || !r.Adaptive {
		t.Errorf("ranges lost: %+v", parsed.Ranges)
	}
	if len(parsed.SchemaVMs) != 1 || len(parsed.SchemaMetrics) != 2 ||
		parsed.SchemaMetrics[0] != metrics.MetricCPU {
		t.Errorf("schema lost: VMs=%v metrics=%v", parsed.SchemaVMs, parsed.SchemaMetrics)
	}
	if parsed.SchemaKey() != tpl.SchemaKey() {
		t.Errorf("schema key changed across serialization: %q vs %q",
			parsed.SchemaKey(), tpl.SchemaKey())
	}
	// The imported space must reproduce violation ranges.
	s2, err := Import(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.ViolationRanges()) != 1 {
		t.Error("imported space lost its violation range")
	}
}

func TestImportValidation(t *testing.T) {
	if _, err := Import(nil); err == nil {
		t.Error("nil template should error")
	}
	if _, err := Import(&Template{Version: 99}); err == nil {
		t.Error("wrong version should error")
	}
	bad := &Template{
		Version: templateVersion,
		Dim:     2,
		States:  []TemplateState{{Vector: []float64{1}}},
	}
	if _, err := Import(bad); err == nil {
		t.Error("dim mismatch should error")
	}
	badLabel := &Template{
		Version: templateVersion,
		States:  []TemplateState{{Label: "weird"}},
	}
	if _, err := Import(badLabel); err == nil {
		t.Error("unknown label should error")
	}
}

func TestReadTemplateMalformed(t *testing.T) {
	if _, err := ReadTemplate(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON should error")
	}
}

func TestReadTemplateTruncatedAndCorrupt(t *testing.T) {
	// A valid template cut off at every byte boundary must error (never
	// panic, never half-parse).
	s := buildSampleSpace(t)
	var buf bytes.Buffer
	if _, err := Export(s, "vlc", sampleRanges(), sampleSchema(t)).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	for cut := 0; cut < len(full)-1; cut += 7 {
		if _, err := ReadTemplate(strings.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := ReadTemplate(strings.NewReader("")); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("empty input: err = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := ReadTemplate(strings.NewReader(full + "garbage")); !errors.Is(err, ErrCorruptTemplate) {
		t.Errorf("trailing garbage: err = %v, want ErrCorruptTemplate", err)
	}
	corrupt := []string{
		`{"version":2,"dim":-1}`,
		`{"version":2,"dim":2,"schema_vms":["a"]}`,
		`{"version":2,"dim":3,"schema_vms":["a"],"schema_metrics":["cpu","memory"]}`,
		`{"version":2,"dim":2,"schema_vms":["a"],"schema_metrics":["cpu","cpu"]}`,
		`{"version":2,"states":[{"label":"safe","weight":-3,"vector":[]}]}`,
		`{"version":2,"ranges":{"cpu":{"max":-5}}}`,
	}
	for _, in := range corrupt {
		if _, err := ReadTemplate(strings.NewReader(in)); !errors.Is(err, ErrCorruptTemplate) {
			t.Errorf("input %s: err = %v, want ErrCorruptTemplate", in, err)
		}
	}
	if _, err := ReadTemplate(strings.NewReader(`{"version":3}`)); !errors.Is(err, ErrTemplateVersion) {
		t.Errorf("future version: err = %v, want ErrTemplateVersion", err)
	}
	// Version-1 templates (pre-schema) still load.
	v1 := `{"version":1,"sensitive_app":"vlc","dim":2,"states":[{"x":1,"y":2,"label":"safe","weight":1,"vector":[0.1,0.2]}],"ranges":{}}`
	tpl, err := ReadTemplate(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 template rejected: %v", err)
	}
	if _, err := Import(tpl); err != nil {
		t.Fatalf("version-1 import: %v", err)
	}
}

func TestCompatibleWith(t *testing.T) {
	s := buildSampleSpace(t)
	sch := sampleSchema(t)
	tpl := Export(s, "vlc", sampleRanges(), sch)
	if err := tpl.CompatibleWith(sch); err != nil {
		t.Fatalf("self-compatibility: %v", err)
	}
	// Same metric count, different metric: mismatch.
	other, err := metrics.NewSchema([]string{"vlc"},
		[]metrics.Metric{metrics.MetricCPU, metrics.MetricIO})
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.CompatibleWith(other); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("different metric set: err = %v, want ErrSchemaMismatch", err)
	}
	// Different VM-slot count: mismatch.
	twoVMs, err := metrics.NewSchema([]string{"vlc", "batch"},
		[]metrics.Metric{metrics.MetricCPU, metrics.MetricMemory})
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.CompatibleWith(twoVMs); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("different VM count: err = %v, want ErrSchemaMismatch", err)
	}
	// Same schema on a host that names its VM slots differently: compatible.
	renamed, err := metrics.NewSchema([]string{"sensitive"},
		[]metrics.Metric{metrics.MetricCPU, metrics.MetricMemory})
	if err != nil {
		t.Fatal(err)
	}
	if err := tpl.CompatibleWith(renamed); err != nil {
		t.Errorf("renamed VM slots should stay compatible: %v", err)
	}
	// Legacy template: dimension-only check.
	legacy := &Template{Version: 1, Dim: 4}
	if err := legacy.CompatibleWith(sch); !errors.Is(err, ErrSchemaMismatch) {
		t.Errorf("legacy dim mismatch: err = %v, want ErrSchemaMismatch", err)
	}
	legacy.Dim = sch.Dim()
	if err := legacy.CompatibleWith(sch); err != nil {
		t.Errorf("legacy matching dim: %v", err)
	}
}

func TestSchemaKey(t *testing.T) {
	s := buildSampleSpace(t)
	withSchema := Export(s, "vlc", sampleRanges(), sampleSchema(t))
	if got, want := withSchema.SchemaKey(), "1vm/cpu,memory"; got != want {
		t.Errorf("SchemaKey = %q, want %q", got, want)
	}
	legacy := Export(s, "vlc", sampleRanges(), nil)
	if got, want := legacy.SchemaKey(), "dim2"; got != want {
		t.Errorf("legacy SchemaKey = %q, want %q", got, want)
	}
}

func TestTemplateViolationsSurviveAsViolations(t *testing.T) {
	// §6's core claim: a state labelled violation in the template remains a
	// violation-state for the next execution, whatever batch app runs.
	s := buildSampleSpace(t)
	tpl := Export(s, "vlc", sampleRanges(), nil)
	s2, err := Import(tpl)
	if err != nil {
		t.Fatal(err)
	}
	// A point mapped to the old violation location is flagged immediately,
	// before the new run has seen any violation of its own.
	if _, in := s2.InViolationRange(mds.Coord{X: 3, Y: 4}); !in {
		t.Error("template violation not active in new run")
	}
}
