package statespace

import (
	"fmt"
	"math"

	"repro/internal/mds"
	"repro/internal/metrics"
)

// Template query helpers: read-only violation-geometry queries over a
// learned map, used by the cluster scheduler (internal/sched) to rate
// candidate co-locations *before* they happen. Where the per-host runtime
// asks "is the current state heading into a violation-range?", the
// scheduler asks "if I added this batch job to that host, how close to a
// violation-range would the combined state land?" — the same learned
// geometry, queried prospectively.

// ViolationCount returns the number of violation-labelled states in the
// template without materializing a Space.
func (t *Template) ViolationCount() int {
	n := 0
	for _, st := range t.States {
		if st.Label == Violation.String() {
			n++
		}
	}
	return n
}

// SafeCount returns the number of safe-labelled states in the template.
func (t *Template) SafeCount() int { return len(t.States) - t.ViolationCount() }

// QueryMap is an immutable query view over one template: the imported
// state space, its violation-range discs, and the normalization ranges the
// template's vectors were measured under. It answers "where would this
// hypothetical measurement land, and how close is that to known trouble?"
// without mutating the map. Building one is O(states); queries are
// O(states) each (one out-of-sample placement plus a disc scan).
//
// QueryMap requires a version-2 template with the standard two-slot schema
// (sensitive VM + aggregated logical batch VM, §5): prospective scoring
// must know which vector positions belong to which role.
type QueryMap struct {
	app     string
	space   *Space
	coords  []mds.Coord
	vectors [][]float64
	discs   []Disc
	mets    []metrics.Metric
	ranges  map[metrics.Metric]metrics.Range
	safe    []mds.Coord
	// scale is the embedding's coordinate-range median c — the natural
	// length unit of the map, reused as the proximity decay constant.
	scale float64
}

// NewQueryMap validates and imports the template into a query view.
func NewQueryMap(t *Template) (*QueryMap, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if len(t.SchemaVMs) != 2 {
		return nil, fmt.Errorf("statespace: query map needs the two-slot (sensitive, batch) schema, template has %d VM slots: %w",
			len(t.SchemaVMs), ErrSchemaMismatch)
	}
	if len(t.States) == 0 {
		return nil, fmt.Errorf("statespace: query map over empty template for %q", t.SensitiveApp)
	}
	space, err := Import(t)
	if err != nil {
		return nil, err
	}
	q := &QueryMap{
		app:     t.SensitiveApp,
		space:   space,
		coords:  space.Coords(),
		vectors: space.Vectors(),
		discs:   space.ViolationRanges(),
		mets:    append([]metrics.Metric(nil), t.SchemaMetrics...),
		ranges:  make(map[metrics.Metric]metrics.Range, len(t.Ranges)),
		scale:   space.CoordinateRangeMedian(),
	}
	for _, st := range space.States() {
		if st.Label == Safe {
			q.safe = append(q.safe, st.Coord)
		}
	}
	for m, r := range t.Ranges {
		q.ranges[m] = r
	}
	return q, nil
}

// App returns the sensitive application the map characterizes.
func (q *QueryMap) App() string { return q.app }

// States returns the number of states in the map.
func (q *QueryMap) States() int { return q.space.Len() }

// HasViolations reports whether the map learned any violation-state — a
// map without violations cannot discriminate co-locations.
func (q *QueryMap) HasViolations() bool { return len(q.discs) > 0 }

// Metrics returns the template's metric order (one slot's worth).
func (q *QueryMap) Metrics() []metrics.Metric {
	return append([]metrics.Metric(nil), q.mets...)
}

// normalize scales one raw metric value into [0,1] using the template's
// recorded range; metrics the template has no range for pass through (the
// learning run opted them out too).
func (q *QueryMap) normalize(m metrics.Metric, v float64) float64 {
	r, ok := q.ranges[m]
	if !ok || r.Max <= 0 {
		return v
	}
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	nv := v / r.Max
	if nv > 1 {
		nv = 1
	}
	return nv
}

// CombinedVector flattens hypothetical raw usage for the sensitive slot
// and the aggregated batch slot into a normalized vector comparable with
// the template's states — the same (VM, metric) layout and the same
// normalization ranges the learning run used.
func (q *QueryMap) CombinedVector(sensitive, batch map[metrics.Metric]float64) []float64 {
	nm := len(q.mets)
	out := make([]float64, 2*nm)
	for i, m := range q.mets {
		out[i] = q.normalize(m, sensitive[m])
		out[nm+i] = q.normalize(m, batch[m])
	}
	return out
}

// Project embeds a normalized vector into the template's 2-D layout by
// single-point stress majorization against the existing configuration
// (the out-of-sample extension of §4's incremental placement): the point
// lands where its vector-space distances to every known state are best
// preserved.
func (q *QueryMap) Project(vec []float64) (mds.Coord, error) {
	if len(vec) != 2*len(q.mets) {
		return mds.Coord{}, fmt.Errorf("statespace: project dim %d, template dim %d", len(vec), 2*len(q.mets))
	}
	delta := make([]float64, len(q.vectors))
	for i, sv := range q.vectors {
		var sum float64
		for j := range sv {
			d := vec[j] - sv[j]
			sum += d * d
		}
		delta[i] = math.Sqrt(sum)
	}
	coord, _, err := mds.Place(q.coords, delta, mds.PlaceOptions{})
	if err != nil {
		return mds.Coord{}, err
	}
	return coord, nil
}

// ViolationProximity maps a projected coordinate to a violation likelihood
// in [0,1]: 1 inside any violation-range disc, decaying as
// exp(−(margin/c)²) with the distance past the nearest disc boundary,
// where c is the map's coordinate-range median — the same length unit the
// Rayleigh range weighting of §3.2.2 is expressed in. A map with no
// violation-states returns 0 (nothing to stay away from — yet).
func (q *QueryMap) ViolationProximity(p mds.Coord) float64 {
	if len(q.discs) == 0 {
		return 0
	}
	margin := math.Inf(1)
	for _, d := range q.discs {
		m := d.Center.Dist(p) - d.Radius
		if m < margin {
			margin = m
		}
	}
	if margin <= 0 {
		return 1
	}
	scale := q.scale
	if scale <= 0 {
		// Degenerate single-cluster map: any positive margin is "far".
		return 0
	}
	return math.Exp(-(margin / scale) * (margin / scale))
}

// SafeProximity maps a projected coordinate to a safe likelihood in
// [0,1]: 1 at a known safe state, decaying as exp(−(d/c)²) with the
// distance d to the nearest one. 0 when the map has no safe states.
func (q *QueryMap) SafeProximity(p mds.Coord) float64 {
	if len(q.safe) == 0 {
		return 0
	}
	d := math.Inf(1)
	for _, s := range q.safe {
		if sd := s.Dist(p); sd < d {
			d = sd
		}
	}
	if d <= 0 {
		return 1
	}
	scale := q.scale
	if scale <= 0 {
		return 1
	}
	return math.Exp(-(d / scale) * (d / scale))
}

// Score is the one-call form: build the combined vector, project it, and
// return the predicted violation risk as the *relative* violation
// proximity pV/(pV+pS). Pure violation proximity is not enough for
// prospective queries: a hypothetical co-location far from every learned
// state has pV ≈ 0, which proximity alone would read as "safe" when it
// actually means "never seen" — and a scheduler that scores uncharted
// combinations as safe piles batch jobs onto one host. The relative form
// keeps known-safe placements near 0, known-violating ones near 1, and
// pushes unknown territory toward whichever labelled region is closer.
// A map with no violation-states returns 0: nothing to stay away from.
func (q *QueryMap) Score(sensitive, batch map[metrics.Metric]float64) (float64, error) {
	coord, err := q.Project(q.CombinedVector(sensitive, batch))
	if err != nil {
		return 0, err
	}
	if len(q.discs) == 0 {
		return 0, nil
	}
	pV := q.ViolationProximity(coord)
	pS := q.SafeProximity(coord)
	if pV+pS == 0 {
		// Off every edge of the map, violation and safe both unreachable:
		// genuinely uninformative.
		return 0.5, nil
	}
	return pV / (pV + pS), nil
}
