// Package registry implements the fleet-wide template store behind the
// Stay-Away control plane (§6 scaled out): a versioned, concurrency-safe
// map of learned state-space templates keyed by (sensitive application,
// metric schema), with atomic file-backed persistence and
// Procrustes-aligned merging of templates uploaded by different hosts.
// One host's learning-phase QoS violations become every host's head start.
package registry

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fsatomic"
	"repro/internal/statespace"
)

// Key identifies one consensus template: maps are only mergeable across
// hosts running the same sensitive application under the same measurement
// schema.
type Key struct {
	// App is the sensitive application name (Template.SensitiveApp).
	App string `json:"app"`
	// Schema is the template's schema fingerprint (Template.SchemaKey).
	Schema string `json:"schema"`
}

func (k Key) String() string { return k.App + "@" + k.Schema }

// Entry is one stored consensus template with its version history metadata.
type Entry struct {
	Key Key `json:"key"`
	// Revision increments on every accepted Put; clients use it for
	// cheap freshness checks.
	Revision int `json:"revision"`
	// Hosts counts accepted contributions per uploading host.
	Hosts map[string]int `json:"hosts"`
	// UpdatedAt is the wall-clock time of the last accepted Put.
	UpdatedAt time.Time `json:"updated_at"`
	// Template is the merged consensus map. Treated as immutable once
	// stored: every Put builds a fresh template, so callers may hold the
	// pointer but must not mutate it.
	Template *statespace.Template `json:"template"`
	// StateRevs is the per-state version vector, aligned with
	// Template.States: StateRevs[i] is the revision at which state i last
	// changed (appeared, or had its label upgraded). Delta sync ships only
	// the states with StateRevs[i] > the client's revision. Weight drift
	// deliberately does not bump a state's revision — every push folds
	// weight into revisited states, and versioning that would make every
	// delta a full resend.
	StateRevs []int `json:"state_revs,omitempty"`
	// RangesRev is the revision at which the normalization ranges last
	// widened. A range change rescales every stored vector, so clients
	// syncing from an older revision need a full template, not a patch.
	RangesRev int `json:"ranges_rev,omitempty"`
}

// clone copies the entry's metadata (the template pointer is shared; the
// stored template is immutable).
func (e *Entry) clone() *Entry {
	cp := *e
	cp.Hosts = make(map[string]int, len(e.Hosts))
	for h, n := range e.Hosts {
		cp.Hosts[h] = n
	}
	cp.StateRevs = append([]int(nil), e.StateRevs...)
	return &cp
}

// sanitizeRevs repairs a missing or corrupt version vector — an entry
// persisted by an older registry, or a hand-edited file whose StateRevs no
// longer lines up with its states. The safe repair is "everything changed
// at the current revision": clients syncing from any older revision then
// receive one full template, and delta tracking resumes cleanly from
// there. It returns whether a repair was needed.
func (e *Entry) sanitizeRevs() bool {
	ok := len(e.StateRevs) == len(e.Template.States) &&
		e.RangesRev >= 0 && e.RangesRev <= e.Revision
	for _, rev := range e.StateRevs {
		if rev <= 0 || rev > e.Revision {
			ok = false
			break
		}
	}
	if ok {
		return false
	}
	e.StateRevs = make([]int, len(e.Template.States))
	for i := range e.StateRevs {
		e.StateRevs[i] = e.Revision
	}
	e.RangesRev = e.Revision
	return true
}

// Config tunes a Registry.
type Config struct {
	// Dir is the persistence directory; entries survive restarts as one
	// JSON file each, replaced atomically (temp file + rename). Empty
	// means in-memory only.
	Dir string
	// MergeEpsilon is the vector distance under which states from
	// different hosts collapse into one consensus state; 0 uses
	// DefaultMergeEpsilon.
	MergeEpsilon float64
	// Now is the clock, injectable for tests; nil uses time.Now.
	Now func() time.Time
	// OnPut, when non-nil, is invoked after every accepted Put with the
	// new entry and the incremental delta from the previous revision —
	// the streaming control plane's publish hook. It runs with the
	// registry lock held so events observe revisions in order; the hook
	// must be fast, must not block, and must not call back into the
	// registry.
	OnPut PutHook
}

// PutHook receives accepted template updates; see Config.OnPut. The entry
// is a private clone, the delta carries only the states this Put changed
// (or the full template for a first Put).
type PutHook func(e *Entry, d *statespace.TemplateDelta)

// Registry is the store. Safe for concurrent use.
type Registry struct {
	cfg Config

	mu      sync.RWMutex
	entries map[Key]*Entry
}

// Open creates a registry, loading any entries previously persisted in
// cfg.Dir (created if missing). Unreadable entry files fail Open rather
// than being dropped silently.
func Open(cfg Config) (*Registry, error) {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MergeEpsilon <= 0 {
		cfg.MergeEpsilon = DefaultMergeEpsilon
	}
	r := &Registry{cfg: cfg, entries: make(map[Key]*Entry)}
	if cfg.Dir == "" {
		return r, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create dir: %w", err)
	}
	files, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("registry: read dir: %w", err)
	}
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		path := filepath.Join(cfg.Dir, f.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("registry: load %s: %w", f.Name(), err)
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			return nil, fmt.Errorf("registry: parse %s: %w", f.Name(), err)
		}
		if e.Template == nil {
			return nil, fmt.Errorf("registry: %s has no template", f.Name())
		}
		if err := e.Template.Validate(); err != nil {
			return nil, fmt.Errorf("registry: %s: %w", f.Name(), err)
		}
		if e.Hosts == nil {
			e.Hosts = make(map[string]int)
		}
		e.sanitizeRevs()
		r.entries[e.Key] = &e
	}
	return r, nil
}

// Put validates the template, merges it with the stored consensus map for
// its (app, schema) key — Procrustes-aligning the upload onto the stored
// layout — persists the result atomically, and returns the new entry.
// host labels the uploader for the contribution ledger.
func (r *Registry) Put(host string, t *statespace.Template) (*Entry, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.SensitiveApp == "" {
		return nil, fmt.Errorf("registry: template has no sensitive app name")
	}
	if len(t.States) == 0 {
		return nil, fmt.Errorf("registry: refusing empty template for %q", t.SensitiveApp)
	}
	if host == "" {
		host = "unknown"
	}
	key := Key{App: t.SensitiveApp, Schema: t.SchemaKey()}

	r.mu.Lock()
	defer r.mu.Unlock()
	var next, prev *Entry
	if cur, ok := r.entries[key]; ok {
		prev = cur
		merged, err := MergeTemplates(cur.Template, t, r.cfg.MergeEpsilon)
		if err != nil {
			return nil, err
		}
		next = cur.clone()
		next.Template = merged
	} else {
		next = &Entry{Key: key, Hosts: make(map[string]int)}
		// Store a private deduped copy so later caller mutations cannot
		// reach the registry's "immutable" template.
		cp := statespace.CloneTemplate(t)
		cp.States = statespace.DedupeStates(cp.States, r.cfg.MergeEpsilon)
		next.Template = cp
	}
	next.Revision++
	next.Hosts[host]++
	next.UpdatedAt = r.cfg.Now()
	trackRevisions(prev, next)

	if err := r.persist(next); err != nil {
		return nil, err
	}
	//lint:stayaway-ignore boundedgrowth the registry is keyed by (app, schema): one entry per deployed workload template, bounded by fleet configuration rather than request volume, and evicting would discard learned state that Put exists to accumulate
	r.entries[key] = next
	if r.cfg.OnPut != nil {
		since := 0
		if prev != nil {
			since = prev.Revision
		}
		r.cfg.OnPut(next.clone(), entryDelta(next, since))
	}
	return next.clone(), nil
}

// Get returns the entry for app. schema narrows to an exact (app, schema)
// key; when empty, the most recently updated entry for the app wins.
func (r *Registry) Get(app, schema string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e := r.lookupLocked(app, schema)
	if e == nil {
		return nil, false
	}
	return e.clone(), true
}

// Entries returns all entries, ordered by key for deterministic listings.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Len reports the number of stored entries.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// persist writes the entry to its file via temp-file + rename so readers
// (and a crash) never observe a torn write. No-op without a Dir.
func (r *Registry) persist(e *Entry) error {
	if r.cfg.Dir == "" {
		return nil
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: marshal entry %s: %w", e.Key, err)
	}
	data = append(data, '\n')
	path := filepath.Join(r.cfg.Dir, entryFilename(e.Key))
	if err := fsatomic.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("registry: persist entry %s: %w", e.Key, err)
	}
	return nil
}

// entryFilename derives a stable, filesystem-safe name for a key: a
// sanitized human-readable prefix plus an FNV hash that keeps distinct
// keys from colliding after sanitization.
func entryFilename(k Key) string {
	s := k.String()
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	name := b.String()
	if len(name) > 64 {
		name = name[:64]
	}
	h := fnv.New32a()
	h.Write([]byte(s))
	return fmt.Sprintf("%s-%08x.json", name, h.Sum32())
}
