package registry

import (
	"errors"
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/statespace"
)

var testMetrics = []metrics.Metric{metrics.MetricCPU, metrics.MetricMemory}

// tpl builds a two-metric, one-VM template from (x, y, label, cpu, mem)
// tuples.
func tpl(app string, ranges map[metrics.Metric]metrics.Range, states ...[5]float64) *statespace.Template {
	t := &statespace.Template{
		Version:       2,
		SensitiveApp:  app,
		Dim:           2,
		SchemaVMs:     []string{"sensitive"},
		SchemaMetrics: testMetrics,
		Ranges:        ranges,
	}
	for _, s := range states {
		label := statespace.Safe.String()
		if s[2] != 0 {
			label = statespace.Violation.String()
		}
		t.States = append(t.States, statespace.TemplateState{
			X: s[0], Y: s[1], Label: label, Weight: 1, Vector: []float64{s[3], s[4]},
		})
	}
	return t
}

func testRanges() map[metrics.Metric]metrics.Range {
	return map[metrics.Metric]metrics.Range{
		metrics.MetricCPU:    {Max: 400},
		metrics.MetricMemory: {Max: 2048, Adaptive: true},
	}
}

func TestMergeAccumulatesViolations(t *testing.T) {
	// Host A saw a violation at vector (0.9, 0.8); host B saw a different
	// one at (0.2, 0.9) plus the same safe state A knows.
	a := tpl("vlc", testRanges(),
		[5]float64{0, 0, 0, 0.1, 0.1},
		[5]float64{3, 4, 1, 0.9, 0.8})
	b := tpl("vlc", testRanges(),
		[5]float64{0, 0, 0, 0.1, 0.1},
		[5]float64{-2, 1, 1, 0.2, 0.9})
	merged, err := MergeTemplates(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.States) != 3 {
		t.Fatalf("merged states = %d, want 3 (shared safe + two violations)", len(merged.States))
	}
	var violations, safeWeight int
	for _, st := range merged.States {
		if st.Label == statespace.Violation.String() {
			violations++
		} else {
			safeWeight = st.Weight
		}
	}
	if violations != 2 {
		t.Errorf("merged violation states = %d, want 2", violations)
	}
	if safeWeight != 2 {
		t.Errorf("shared safe state weight = %d, want 2", safeWeight)
	}
	// The merged map must still import cleanly.
	if _, err := statespace.Import(merged); err != nil {
		t.Fatalf("merged template does not import: %v", err)
	}
}

func TestMergeUpgradesLabelToViolation(t *testing.T) {
	a := tpl("vlc", testRanges(), [5]float64{1, 1, 0, 0.5, 0.5})
	b := tpl("vlc", testRanges(), [5]float64{9, 9, 1, 0.5, 0.5})
	merged, err := MergeTemplates(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.States) != 1 {
		t.Fatalf("states = %d, want 1", len(merged.States))
	}
	st := merged.States[0]
	if st.Label != statespace.Violation.String() || st.Weight != 2 {
		t.Errorf("state = %+v, want violation with weight 2", st)
	}
	// Base coordinates win for matched states (fleet map stays stable).
	if st.X != 1 || st.Y != 1 {
		t.Errorf("coord = (%v, %v), want base (1, 1)", st.X, st.Y)
	}
}

func TestMergeProcrustesAlignsRotatedLayout(t *testing.T) {
	// Host B learned the same three states but its MDS solution came out
	// rotated 90° and translated. After merging, B's unique fourth state
	// must land near where A's layout would place it.
	aStates := [][5]float64{
		{0, 0, 0, 0.10, 0.10},
		{2, 0, 0, 0.50, 0.10},
		{0, 2, 1, 0.10, 0.50},
	}
	rot := func(x, y float64) (float64, float64) { return -y + 5, x - 3 }
	var bStates [][5]float64
	for _, s := range aStates {
		x, y := rot(s[0], s[1])
		bStates = append(bStates, [5]float64{x, y, s[2], s[3], s[4]})
	}
	// B's extra state sits at (2, 2) in A's frame.
	ex, ey := rot(2, 2)
	bStates = append(bStates, [5]float64{ex, ey, 1, 0.50, 0.50})

	a := tpl("vlc", testRanges(), aStates...)
	b := tpl("vlc", testRanges(), bStates...)
	merged, err := MergeTemplates(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.States) != 4 {
		t.Fatalf("states = %d, want 4", len(merged.States))
	}
	got := merged.States[3]
	if math.Hypot(got.X-2, got.Y-2) > 1e-6 {
		t.Errorf("aligned extra state at (%v, %v), want (2, 2)", got.X, got.Y)
	}
}

func TestMergeRescalesAdaptiveRanges(t *testing.T) {
	// Host A's adaptive memory range stretched to 2048, host B's to 4096:
	// the same absolute usage (1024 MB) normalized to 0.5 on A and 0.25 on
	// B. After merging onto the union range the two states must collapse.
	ra := testRanges()
	rb := testRanges()
	rb[metrics.MetricMemory] = metrics.Range{Max: 4096, Adaptive: true}
	a := tpl("vlc", ra, [5]float64{0, 0, 1, 0.5, 0.50})
	b := tpl("vlc", rb, [5]float64{0, 0, 1, 0.5, 0.25})
	merged, err := MergeTemplates(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.States) != 1 {
		t.Fatalf("states = %d, want 1 after range rescaling", len(merged.States))
	}
	if got := merged.Ranges[metrics.MetricMemory].Max; got != 4096 {
		t.Errorf("merged memory max = %v, want 4096", got)
	}
	if got := merged.States[0].Vector[1]; math.Abs(got-0.25) > 1e-9 {
		t.Errorf("rescaled memory value = %v, want 0.25", got)
	}
}

func TestMergeRejectsMismatches(t *testing.T) {
	a := tpl("vlc", testRanges(), [5]float64{0, 0, 0, 0.1, 0.1})
	other := tpl("web", testRanges(), [5]float64{0, 0, 0, 0.1, 0.1})
	if _, err := MergeTemplates(a, other, 0.05); err == nil {
		t.Error("different apps must not merge")
	}
	diffSchema := tpl("vlc", testRanges(), [5]float64{0, 0, 0, 0.1, 0.1})
	diffSchema.SchemaMetrics = []metrics.Metric{metrics.MetricCPU, metrics.MetricIO}
	if _, err := MergeTemplates(a, diffSchema, 0.05); !errors.Is(err, statespace.ErrSchemaMismatch) {
		t.Errorf("different schemas: err = %v, want ErrSchemaMismatch", err)
	}
	// Schema-less (version-1) templates cannot rescale: differing ranges
	// must be rejected rather than silently mixed.
	legacyA := &statespace.Template{Version: 1, SensitiveApp: "vlc", Dim: 1,
		States: []statespace.TemplateState{{Label: "safe", Vector: []float64{0.5}}},
		Ranges: map[metrics.Metric]metrics.Range{metrics.MetricCPU: {Max: 400}}}
	legacyB := &statespace.Template{Version: 1, SensitiveApp: "vlc", Dim: 1,
		States: []statespace.TemplateState{{Label: "safe", Vector: []float64{0.5}}},
		Ranges: map[metrics.Metric]metrics.Range{metrics.MetricCPU: {Max: 800}}}
	if _, err := MergeTemplates(legacyA, legacyB, 0.05); err == nil {
		t.Error("schema-less templates with differing ranges must not merge")
	}
}

func TestMergeDoesNotMutateInputs(t *testing.T) {
	a := tpl("vlc", testRanges(), [5]float64{0, 0, 0, 0.1, 0.1})
	b := tpl("vlc", testRanges(), [5]float64{3, 4, 1, 0.9, 0.8})
	if _, err := MergeTemplates(a, b, 0.05); err != nil {
		t.Fatal(err)
	}
	if a.States[0].Weight != 1 || b.States[0].Weight != 1 {
		t.Error("merge mutated input weights")
	}
	if a.States[0].Vector[0] != 0.1 || b.States[0].Vector[0] != 0.9 {
		t.Error("merge mutated input vectors")
	}
}
