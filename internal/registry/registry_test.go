package registry

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/statespace"
)

func testClock() func() time.Time {
	t := time.Unix(1700000000, 0)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	r, err := Open(Config{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	a := tpl("vlc", testRanges(),
		[5]float64{0, 0, 0, 0.1, 0.1},
		[5]float64{3, 4, 1, 0.9, 0.8})
	e, err := r.Put("host-a", a)
	if err != nil {
		t.Fatal(err)
	}
	if e.Revision != 1 || e.Hosts["host-a"] != 1 {
		t.Fatalf("entry = %+v", e)
	}
	got, ok := r.Get("vlc", a.SchemaKey())
	if !ok || len(got.Template.States) != 2 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	// Schema-less lookup resolves the app too.
	if _, ok := r.Get("vlc", ""); !ok {
		t.Error("empty-schema Get missed the entry")
	}
	if _, ok := r.Get("nope", ""); ok {
		t.Error("Get invented an entry")
	}
}

func TestPutMergesAcrossHostsAndBumpsRevision(t *testing.T) {
	r, err := Open(Config{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	a := tpl("vlc", testRanges(),
		[5]float64{0, 0, 0, 0.1, 0.1},
		[5]float64{3, 4, 1, 0.9, 0.8})
	b := tpl("vlc", testRanges(),
		[5]float64{0, 0, 0, 0.1, 0.1},
		[5]float64{-2, 1, 1, 0.2, 0.9})
	if _, err := r.Put("host-a", a); err != nil {
		t.Fatal(err)
	}
	e, err := r.Put("host-b", b)
	if err != nil {
		t.Fatal(err)
	}
	if e.Revision != 2 {
		t.Errorf("revision = %d, want 2", e.Revision)
	}
	if e.Hosts["host-a"] != 1 || e.Hosts["host-b"] != 1 {
		t.Errorf("hosts = %v", e.Hosts)
	}
	if len(e.Template.States) != 3 {
		t.Errorf("consensus states = %d, want 3", len(e.Template.States))
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1 (same key merges)", r.Len())
	}
}

func TestPutRejectsBadTemplates(t *testing.T) {
	r, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("h", &statespace.Template{Version: 99}); err == nil {
		t.Error("invalid version accepted")
	}
	empty := tpl("vlc", testRanges())
	if _, err := r.Put("h", empty); err == nil {
		t.Error("empty template accepted")
	}
	anon := tpl("", testRanges(), [5]float64{0, 0, 0, 0.1, 0.1})
	if _, err := r.Put("h", anon); err == nil {
		t.Error("nameless template accepted")
	}
}

func TestPersistenceSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	a := tpl("vlc", testRanges(),
		[5]float64{0, 0, 0, 0.1, 0.1},
		[5]float64{3, 4, 1, 0.9, 0.8})
	if _, err := r.Put("host-a", a); err != nil {
		t.Fatal(err)
	}
	// No temp droppings left behind.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", f.Name())
		}
	}

	r2, err := Open(Config{Dir: dir, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := r2.Get("vlc", a.SchemaKey())
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	if e.Revision != 1 || len(e.Template.States) != 2 || e.Hosts["host-a"] != 1 {
		t.Errorf("reloaded entry = %+v", e)
	}
	// And merging continues where it left off.
	b := tpl("vlc", testRanges(), [5]float64{-2, 1, 1, 0.2, 0.9})
	e2, err := r2.Put("host-b", b)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Revision != 2 || len(e2.Template.States) != 3 {
		t.Errorf("post-reopen merge entry = rev %d, %d states", e2.Revision, len(e2.Template.States))
	}
}

func TestOpenRejectsCorruptEntryFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Error("corrupt entry file silently dropped")
	}
}

func TestDifferentSchemasGetSeparateKeys(t *testing.T) {
	r, err := Open(Config{Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	a := tpl("vlc", testRanges(), [5]float64{0, 0, 0, 0.1, 0.1})
	b := tpl("vlc", testRanges(), [5]float64{0, 0, 0, 0.1, 0.1})
	b.SchemaMetrics = []metrics.Metric{metrics.MetricCPU, metrics.MetricIO}
	if _, err := r.Put("a", a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("b", b); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 distinct (app, schema) keys", r.Len())
	}
	// Empty-schema Get picks the most recently updated.
	e, ok := r.Get("vlc", "")
	if !ok || e.Key.Schema != b.SchemaKey() {
		t.Errorf("latest entry = %+v", e)
	}
	if got := len(r.Entries()); got != 2 {
		t.Errorf("Entries = %d, want 2", got)
	}
}

func TestConcurrentPutsAndGets(t *testing.T) {
	r, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(host int) {
			defer wg.Done()
			x := float64(host) / 10
			tp := tpl("vlc", testRanges(), [5]float64{x, x, 1, x, 1 - x})
			for j := 0; j < 5; j++ {
				if _, err := r.Put("host", tp); err != nil {
					t.Error(err)
					return
				}
				r.Get("vlc", "")
				r.Entries()
			}
		}(i)
	}
	wg.Wait()
	e, ok := r.Get("vlc", "")
	if !ok {
		t.Fatal("no entry after concurrent puts")
	}
	if e.Revision != 40 {
		t.Errorf("revision = %d, want 40", e.Revision)
	}
}

func TestEntryFilenameStableAndSafe(t *testing.T) {
	k := Key{App: "vlc/../../etc", Schema: "2vm/cpu,memory"}
	name := entryFilename(k)
	if strings.ContainsAny(name, "/,") {
		t.Errorf("unsafe filename %q", name)
	}
	if name != entryFilename(k) {
		t.Error("filename not deterministic")
	}
	if name == entryFilename(Key{App: "vlc", Schema: "2vm/cpu,memory"}) {
		t.Error("distinct keys collide")
	}
}
