package registry

import (
	"repro/internal/metrics"
	"repro/internal/statespace"
)

// Delta sync. Every accepted Put tags the states it changed with the new
// revision (Entry.StateRevs); DeltaSince then answers "what changed after
// revision N" with a patch template carrying only those states, instead of
// the whole consensus map. A fleet of hosts polling (or streaming) an
// actively merged map transfers bytes proportional to the change rate, not
// to the map size times the fleet size.

// trackRevisions fills next.StateRevs and next.RangesRev given the entry
// the Put replaced (prev may be nil for a first Put).
//
// It relies on a structural invariant of the merge: MergeTemplates dedupes
// with the base states seeding the representative set in order, and
// unchanged ranges leave base vectors byte-identical — so when the ranges
// did not widen, next.Template.States is prev.Template.States (possibly
// with upgraded labels and accumulated weights) followed by genuinely new
// states. The prefix is verified vector-by-vector; any mismatch falls back
// to "changed at this revision", which costs bytes, never correctness.
func trackRevisions(prev, next *Entry) {
	rev := next.Revision
	states := next.Template.States
	next.StateRevs = make([]int, len(states))
	if prev == nil || !rangesEqual(prev.Template.Ranges, next.Template.Ranges) {
		// First Put, or the normalization ranges widened and every vector
		// was rescaled: everything changed now.
		for i := range next.StateRevs {
			next.StateRevs[i] = rev
		}
		next.RangesRev = rev
		return
	}
	next.RangesRev = prev.RangesRev
	old := prev.Template.States
	for i, st := range states {
		if i < len(old) && i < len(prev.StateRevs) &&
			st.Label == old[i].Label && vectorsEqual(st.Vector, old[i].Vector) {
			next.StateRevs[i] = prev.StateRevs[i]
			continue
		}
		next.StateRevs[i] = rev
	}
}

// rangesEqual reports exact equality of two range maps. Exact float
// comparison is deliberate: a merge either copies a range bit-for-bit or
// widens it, so any difference is a real widening that rescaled vectors.
func rangesEqual(a, b map[metrics.Metric]metrics.Range) bool {
	if len(a) != len(b) {
		return false
	}
	for m, ra := range a {
		rb, ok := b[m]
		if !ok || ra != rb {
			return false
		}
	}
	return true
}

// vectorsEqual reports exact (bitwise) equality; unchanged states keep
// byte-identical vectors across merges, so this is a prefix check, not a
// numeric tolerance.
func vectorsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// entryDelta builds the delta from revision since to the entry's current
// state. It must be called with the entry's contents consistent (the
// registry lock held, or on a private clone). A since that is unusable —
// zero or negative, ahead of the store, predating the last range rescale,
// or predating the version vector (corrupt/legacy entries are sanitized to
// "all changed at current revision") — yields a Full delta.
func entryDelta(e *Entry, since int) *statespace.TemplateDelta {
	full := since <= 0 || since > e.Revision ||
		since < e.RangesRev || len(e.StateRevs) != len(e.Template.States)
	if full {
		return &statespace.TemplateDelta{
			FromRevision: 0,
			ToRevision:   e.Revision,
			Full:         true,
			Patch:        statespace.CloneTemplate(e.Template),
		}
	}
	patch := statespace.CloneTemplate(e.Template)
	changed := patch.States[:0]
	for i, st := range patch.States {
		if e.StateRevs[i] > since {
			changed = append(changed, st)
		}
	}
	patch.States = changed
	return &statespace.TemplateDelta{
		FromRevision: since,
		ToRevision:   e.Revision,
		Patch:        patch,
	}
}

// DeltaSince returns the changes to app's consensus template after
// revision since, or (nil, false) when the registry holds no entry for
// app. schema narrows to an exact (app, schema) key; when empty, the most
// recently updated entry for the app wins (matching Get). since <= 0, a
// since ahead of the store, or one predating the last range rescale yields
// a Full delta — the client must replace, not merge. since equal to the
// current revision yields an empty delta (the cheap "you are current"
// reply).
func (r *Registry) DeltaSince(app, schema string, since int) (*statespace.TemplateDelta, bool) {
	r.mu.RLock()
	e := r.lookupLocked(app, schema)
	if e == nil {
		r.mu.RUnlock()
		return nil, false
	}
	d := entryDelta(e, since)
	r.mu.RUnlock()
	return d, true
}

// lookupLocked finds the entry Get would return; callers hold r.mu.
func (r *Registry) lookupLocked(app, schema string) *Entry {
	if schema != "" {
		return r.entries[Key{App: app, Schema: schema}]
	}
	var best *Entry
	for _, e := range r.entries {
		if e.Key.App != app {
			continue
		}
		if best == nil || e.UpdatedAt.After(best.UpdatedAt) ||
			(e.UpdatedAt.Equal(best.UpdatedAt) && e.Revision > best.Revision) {
			best = e
		}
	}
	return best
}
