package registry

import (
	"repro/internal/statespace"
)

// The merge machinery itself (range union, Procrustes alignment, ε-dedup)
// lives in statespace — both the registry's consensus merge and a running
// host's delta apply use it — see statespace.MergeTemplates. The registry
// keeps the fleet-facing policy: the default ε and the consensus-store
// semantics built on top.

// DefaultMergeEpsilon is the normalized vector distance under which two
// states from different templates are considered the same underlying
// state. It is intentionally larger than core.Config's default DedupEpsilon
// (0.03) so merged maps stay importable by default-configured runtimes.
const DefaultMergeEpsilon = 0.05

// MergeTemplates merges incoming into base and returns a new consensus
// template; neither input is mutated. Both templates must describe the
// same sensitive application under the same metric schema. eps <= 0 uses
// DefaultMergeEpsilon.
func MergeTemplates(base, incoming *statespace.Template, eps float64) (*statespace.Template, error) {
	if eps <= 0 {
		eps = DefaultMergeEpsilon
	}
	return statespace.MergeTemplates(base, incoming, eps)
}
