package registry

import (
	"fmt"

	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/statespace"
)

// Template merging. Two hosts running the same sensitive application learn
// maps of the same underlying state space, but their MDS embeddings differ
// by an arbitrary similarity transform (rotation, reflection, scale,
// translation — MDS solutions are only unique up to those), and adaptive
// normalization ranges may have stretched differently. Merging therefore:
//
//  1. widens both templates onto the union of their normalization ranges,
//     rescaling state vectors so they stay comparable;
//  2. Procrustes-aligns the incoming coordinates onto the base layout,
//     using vector-nearest state pairs as correspondences;
//  3. dedupes the combined state set: ε-close vectors collapse into one
//     consensus state whose weight accumulates and whose label is
//     Violation if either contributor saw a violation there.
//
// The result keeps every violation-state either host has suffered, which is
// the whole point of sharing: the next host bootstraps from the union of
// the fleet's bad experiences.

// DefaultMergeEpsilon is the normalized vector distance under which two
// states from different templates are considered the same underlying
// state. It is intentionally larger than core.Config's default DedupEpsilon
// (0.03) so merged maps stay importable by default-configured runtimes.
const DefaultMergeEpsilon = 0.05

// MergeTemplates merges incoming into base and returns a new consensus
// template; neither input is mutated. Both templates must describe the
// same sensitive application under the same metric schema.
func MergeTemplates(base, incoming *statespace.Template, eps float64) (*statespace.Template, error) {
	if eps <= 0 {
		eps = DefaultMergeEpsilon
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("registry: base template: %w", err)
	}
	if err := incoming.Validate(); err != nil {
		return nil, fmt.Errorf("registry: incoming template: %w", err)
	}
	if base.SensitiveApp != incoming.SensitiveApp {
		return nil, fmt.Errorf("registry: merging templates for different apps %q and %q",
			base.SensitiveApp, incoming.SensitiveApp)
	}
	if base.SchemaKey() != incoming.SchemaKey() {
		return nil, fmt.Errorf("registry: merging templates with schemas %q and %q: %w",
			base.SchemaKey(), incoming.SchemaKey(), statespace.ErrSchemaMismatch)
	}

	merged := &statespace.Template{
		Version:       base.Version,
		SensitiveApp:  base.SensitiveApp,
		Dim:           base.Dim,
		SchemaVMs:     append([]string(nil), base.SchemaVMs...),
		SchemaMetrics: append([]metrics.Metric(nil), base.SchemaMetrics...),
	}
	if incoming.Version > merged.Version {
		merged.Version = incoming.Version
	}

	ranges, err := mergeRanges(base, incoming)
	if err != nil {
		return nil, err
	}
	merged.Ranges = ranges
	baseStates := rescaleStates(base, ranges)
	inStates := rescaleStates(incoming, ranges)

	// Procrustes-align the incoming layout onto the base layout using
	// vector-nearest pairs as correspondences. With no confident pairs the
	// transform degrades to identity/translation, which is still safe: the
	// dedupe below matches on vectors, not coordinates.
	var src, dst []mds.Coord
	for _, in := range inStates {
		j, d := nearestByVector(baseStates, in.Vector)
		if j >= 0 && d <= eps {
			src = append(src, mds.Coord{X: in.X, Y: in.Y})
			dst = append(dst, mds.Coord{X: baseStates[j].X, Y: baseStates[j].Y})
		}
	}
	if len(src) > 0 && len(inStates) > 0 {
		tr, _, err := mds.Procrustes(src, dst)
		if err != nil {
			return nil, fmt.Errorf("registry: aligning templates: %w", err)
		}
		for i := range inStates {
			p := tr.Apply(mds.Coord{X: inStates[i].X, Y: inStates[i].Y})
			inStates[i].X, inStates[i].Y = p.X, p.Y
		}
	}

	merged.States = dedupeStates(append(baseStates, inStates...), eps)
	if merged.Dim == 0 {
		merged.Dim = incoming.Dim
	}
	return merged, nil
}

// dedupeStates greedily collapses ε-close (by vector) states into one
// consensus state: earlier states seed the representative set so an
// established fleet map stays stable; later states either fold into a
// representative — accumulating weight, upgrading the label to Violation
// if either contributor saw one — or join as new states.
func dedupeStates(states []statespace.TemplateState, eps float64) []statespace.TemplateState {
	var reps []statespace.TemplateState
	for _, st := range states {
		j, d := nearestByVector(reps, st.Vector)
		if j >= 0 && d <= eps {
			reps[j].Weight += st.Weight
			if st.Label == statespace.Violation.String() {
				reps[j].Label = st.Label
			}
			continue
		}
		reps = append(reps, st)
	}
	return reps
}

// mergeRanges unions the two templates' normalization ranges, taking the
// wider max per metric. Templates without schema information (version 1)
// cannot be rescaled, so their ranges must match exactly.
func mergeRanges(base, incoming *statespace.Template) (map[metrics.Metric]metrics.Range, error) {
	legacy := len(base.SchemaMetrics) == 0 || len(incoming.SchemaMetrics) == 0
	out := make(map[metrics.Metric]metrics.Range, len(base.Ranges))
	for m, r := range base.Ranges {
		out[m] = r
	}
	for m, r := range incoming.Ranges {
		cur, ok := out[m]
		if !ok {
			out[m] = r
			continue
		}
		if legacy && (cur.Max != r.Max || cur.Adaptive != r.Adaptive) {
			return nil, fmt.Errorf("registry: schema-less templates with differing range for %q (%v vs %v) cannot merge",
				m, cur, r)
		}
		if r.Max > cur.Max {
			cur.Max = r.Max
		}
		cur.Adaptive = cur.Adaptive || r.Adaptive
		out[m] = cur
	}
	return out, nil
}

// rescaleStates returns copies of t's states with vectors re-normalized
// from t.Ranges into the merged ranges: a value that meant "x of oldMax"
// becomes "x·oldMax/newMax of newMax". Coordinates are left untouched —
// they are an embedding of the old distances and get re-solved by the next
// runtime refresh anyway.
func rescaleStates(t *statespace.Template, ranges map[metrics.Metric]metrics.Range) []statespace.TemplateState {
	nm := len(t.SchemaMetrics)
	out := make([]statespace.TemplateState, len(t.States))
	for i, st := range t.States {
		cp := st
		cp.Vector = append([]float64(nil), st.Vector...)
		if nm > 0 {
			for d := range cp.Vector {
				m := t.SchemaMetrics[d%nm]
				oldR, okOld := t.Ranges[m]
				newR, okNew := ranges[m]
				if okOld && okNew && oldR.Max > 0 && newR.Max > 0 && oldR.Max != newR.Max {
					cp.Vector[d] *= oldR.Max / newR.Max
				}
			}
		}
		out[i] = cp
	}
	return out
}

// cloneTemplate deep-copies a template so the registry's stored consensus
// maps never alias caller-owned memory.
func cloneTemplate(t *statespace.Template) *statespace.Template {
	cp := *t
	cp.SchemaVMs = append([]string(nil), t.SchemaVMs...)
	cp.SchemaMetrics = append([]metrics.Metric(nil), t.SchemaMetrics...)
	cp.States = make([]statespace.TemplateState, len(t.States))
	for i, st := range t.States {
		cp.States[i] = st
		cp.States[i].Vector = append([]float64(nil), st.Vector...)
	}
	cp.Ranges = make(map[metrics.Metric]metrics.Range, len(t.Ranges))
	for m, r := range t.Ranges {
		cp.Ranges[m] = r
	}
	return &cp
}

// nearestByVector returns the index and vector distance of the state in
// states whose vector is closest to vec, or (-1, 0) when states is empty.
func nearestByVector(states []statespace.TemplateState, vec []float64) (int, float64) {
	best, bestD := -1, 0.0
	for i, st := range states {
		if len(st.Vector) != len(vec) {
			continue
		}
		d := mds.Euclidean(st.Vector, vec)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
