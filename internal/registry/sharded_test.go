package registry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestShardedRoutingAndListing(t *testing.T) {
	s, err := OpenSharded(Config{Now: testClock()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	apps := []string{"vlc-stream", "kv-store", "web-api", "ml-batch"}
	for _, app := range apps {
		// Routing is a pure function of the app name: any instance with
		// the same shard count agrees.
		other, err := OpenSharded(Config{Now: testClock()}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s.ShardFor(app) != other.ShardFor(app) {
			t.Errorf("ShardFor(%q) differs across instances", app)
		}
		if got := s.ShardFor(app); got < 0 || got >= s.Shards() {
			t.Errorf("ShardFor(%q) = %d, out of range", app, got)
		}
		if _, err := s.Put("host-a", tpl(app, testRanges(),
			[5]float64{0, 0, 0, 0.1, 0.1},
			[5]float64{3, 4, 1, 0.9, 0.8})); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != len(apps) {
		t.Fatalf("Len() = %d, want %d", s.Len(), len(apps))
	}
	for _, app := range apps {
		e, ok := s.Get(app, "")
		if !ok || e.Revision != 1 || e.Template.SensitiveApp != app {
			t.Fatalf("Get(%q) = %+v, %v", app, e, ok)
		}
		if d, ok := s.DeltaSince(app, "", 0); !ok || !d.Full {
			t.Fatalf("DeltaSince(%q, 0) = %+v, %v", app, d, ok)
		}
	}

	// Entries is merged across shards and sorted by key, not shard order.
	entries := s.Entries()
	if len(entries) != len(apps) {
		t.Fatalf("Entries() = %d entries, want %d", len(entries), len(apps))
	}
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.Key.String()
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("Entries() not sorted: %v", keys)
	}
}

func TestShardedPersistencePinsShardCount(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSharded(Config{Dir: dir, Now: testClock()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("host-a", tpl("vlc", testRanges(),
		[5]float64{0, 0, 0, 0.1, 0.1})); err != nil {
		t.Fatal(err)
	}

	// Reopening with the pinned count reloads the entry from its shard.
	s2, err := OpenSharded(Config{Dir: dir, Now: testClock()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := s2.Get("vlc", ""); !ok || e.Revision != 1 {
		t.Fatalf("reloaded Get = %+v, %v", e, ok)
	}

	// A different count would re-route apps away from their history:
	// refused.
	if _, err := OpenSharded(Config{Dir: dir, Now: testClock()}, 8); err == nil {
		t.Fatal("reopen with a different shard count accepted")
	}

	// The shard layout on disk is one subdirectory per shard plus the pin.
	if _, err := os.Stat(filepath.Join(dir, "shards.json")); err != nil {
		t.Errorf("shard marker missing: %v", err)
	}
}

// TestCorruptVersionVectorServesFull tampers with a persisted entry's
// state_revs so it no longer lines up with the states, reopens the
// registry, and checks delta sync degrades to a Full replacement instead
// of shipping a wrong (or panicking) patch.
func TestCorruptVersionVectorServesFull(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(Config{Dir: dir, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("host-a", tpl("vlc", testRanges(),
		[5]float64{0, 0, 0, 0.1, 0.1},
		[5]float64{3, 4, 1, 0.9, 0.8})); err != nil {
		t.Fatal(err)
	}
	e, err := r.Put("host-b", tpl("vlc", testRanges(),
		[5]float64{5, 5, 1, 0.5, 0.4}))
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: with an intact vector, a client at revision 1 gets an
	// incremental patch.
	if d, ok := r.DeltaSince("vlc", "", e.Revision-1); !ok || d.Full || len(d.Patch.States) != 1 {
		t.Fatalf("intact delta = %+v, %v", d, ok)
	}

	// Corrupt the persisted vector: truncate state_revs to one element.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	tampered := 0
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, f.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(raw, &obj); err != nil {
			t.Fatal(err)
		}
		if _, ok := obj["state_revs"]; !ok {
			continue
		}
		obj["state_revs"] = json.RawMessage(`[1]`)
		out, err := json.Marshal(obj)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		tampered++
	}
	if tampered == 0 {
		t.Fatal("no persisted entry carried state_revs to tamper with")
	}

	r2, err := Open(Config{Dir: dir, Now: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	d, ok := r2.DeltaSince("vlc", "", e.Revision-1)
	if !ok || d == nil {
		t.Fatalf("DeltaSince after corruption = %+v, %v", d, ok)
	}
	if !d.Full {
		t.Fatalf("corrupt vector served an incremental delta: %+v", d)
	}
	if len(d.Patch.States) != 3 || d.ToRevision != e.Revision {
		t.Fatalf("full fallback = %d states to rev %d, want 3 to %d",
			len(d.Patch.States), d.ToRevision, e.Revision)
	}
}
