package registry

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/statespace"
)

// benchTemplate builds a two-metric template with n seeded-random states;
// the tight epsilon in the bench configs keeps dedup from collapsing them.
func benchTemplate(rng *rand.Rand, app string, n int) *statespace.Template {
	t := tpl(app, testRanges())
	for i := 0; i < n; i++ {
		label := statespace.Safe.String()
		if rng.Float64() < 0.2 {
			label = statespace.Violation.String()
		}
		t.States = append(t.States, statespace.TemplateState{
			X:      rng.Float64()*2 - 1,
			Y:      rng.Float64()*2 - 1,
			Label:  label,
			Weight: 1,
			Vector: []float64{rng.Float64(), rng.Float64()},
		})
	}
	return t
}

// BenchmarkRegistrySharded measures concurrent host uploads against the
// sharded store: every Put Procrustes-merges into its application's
// consensus map under that shard's lock, so throughput should scale with
// the shard count until the merge work itself dominates.
func BenchmarkRegistrySharded(b *testing.B) {
	const apps = 64
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			reg, err := OpenSharded(Config{Now: testClock(), MergeEpsilon: 0.01}, shards)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			uploads := make([]*statespace.Template, apps)
			for i := range uploads {
				uploads[i] = benchTemplate(rng, fmt.Sprintf("app-%02d", i), 10)
			}
			var next int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(atomic.AddInt64(&next, 1))
					t := uploads[i%apps]
					if _, err := reg.Put(fmt.Sprintf("host-%03d", i%256), t); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkDeltaSync compares what one "is anything new?" refresh costs a
// caught-up-but-one client under delta sync (conditional request serving
// only the changed states) versus whole-template polling (re-encoding the
// full consensus map every time). bytes/op is the payload a registry
// would put on the wire per refresh.
func BenchmarkDeltaSync(b *testing.B) {
	reg, err := Open(Config{Now: testClock(), MergeEpsilon: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	base := benchTemplate(rng, "vlc", 200)
	if _, err := reg.Put("host-a", base); err != nil {
		b.Fatal(err)
	}
	// One more violation learned somewhere in the fleet: revision 2, one
	// changed state.
	upd := benchTemplate(rng, "vlc", 0)
	upd.States = append(upd.States, statespace.TemplateState{
		X: 2, Y: 2, Label: statespace.Violation.String(), Weight: 1,
		Vector: []float64{2.1, 2.2},
	})
	entry, err := reg.Put("host-b", upd)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("delta", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			d, ok := reg.DeltaSince("vlc", "", entry.Revision-1)
			if !ok {
				b.Fatal("no delta entry")
			}
			raw, err := json.Marshal(d)
			if err != nil {
				b.Fatal(err)
			}
			bytes = int64(len(raw))
		}
		b.ReportMetric(float64(bytes), "bytes/op")
	})
	b.Run("full", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			e, ok := reg.Get("vlc", "")
			if !ok {
				b.Fatal("no entry")
			}
			raw, err := json.Marshal(e.Template)
			if err != nil {
				b.Fatal(err)
			}
			bytes = int64(len(raw))
		}
		b.ReportMetric(float64(bytes), "bytes/op")
	})
}
