package registry

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fsatomic"
	"repro/internal/statespace"
)

// Sharding. A single Registry serializes every Put behind one mutex and
// every Put pays an O(states²) merge — fine for a rack, a bottleneck for
// the ROADMAP's cluster-scale fleet where thousands of hosts push learned
// maps for many sensitive applications. Sharded splits the store into N
// independent registries routed by sensitive-app key: templates for
// different applications never contend on a lock, never share a merge, and
// persist under separate directories. Routing is a stable hash of the app
// name, so every server instance — and every restart — sends the same app
// to the same shard; the shard count is pinned in a marker file because
// changing it would re-route apps to shards that cannot see their history.

// shardMarker is the shard-count pin, one per persistence directory.
const shardMarker = "shards.json"

// Sharded is a consensus-template store split across independent
// registry shards by sensitive-app key. Safe for concurrent use; it
// implements the same store surface as Registry.
type Sharded struct {
	shards []*Registry
}

// OpenSharded creates a store with n shards (n < 1 means 1). With a
// persistence directory, each shard lives in Dir/shard-NN and the shard
// count is pinned in Dir/shards.json on first open; reopening with a
// different n fails rather than silently re-routing apps away from their
// stored history. cfg.OnPut, when set, is shared by every shard.
func OpenSharded(cfg Config, n int) (*Sharded, error) {
	if n < 1 {
		n = 1
	}
	if cfg.Dir != "" {
		if err := pinShardCount(cfg.Dir, n); err != nil {
			return nil, err
		}
	}
	s := &Sharded{shards: make([]*Registry, n)}
	for i := range s.shards {
		shardCfg := cfg
		if cfg.Dir != "" {
			shardCfg.Dir = filepath.Join(cfg.Dir, fmt.Sprintf("shard-%02d", i))
		}
		r, err := Open(shardCfg)
		if err != nil {
			return nil, fmt.Errorf("registry: shard %d: %w", i, err)
		}
		s.shards[i] = r
	}
	return s, nil
}

// shardCountFile is the marker's JSON shape.
type shardCountFile struct {
	Shards int `json:"shards"`
}

// pinShardCount creates or verifies the shard-count marker under dir.
func pinShardCount(dir string, n int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("registry: create dir: %w", err)
	}
	path := filepath.Join(dir, shardMarker)
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		body, err := json.Marshal(shardCountFile{Shards: n})
		if err != nil {
			return fmt.Errorf("registry: marshal shard marker: %w", err)
		}
		body = append(body, '\n')
		if err := fsatomic.WriteFile(path, body, 0o644); err != nil {
			return fmt.Errorf("registry: pin shard count: %w", err)
		}
		return nil
	case err != nil:
		return fmt.Errorf("registry: read shard marker: %w", err)
	}
	var pinned shardCountFile
	if err := json.Unmarshal(data, &pinned); err != nil {
		return fmt.Errorf("registry: parse %s: %w", shardMarker, err)
	}
	if pinned.Shards != n {
		return fmt.Errorf("registry: store %s was created with %d shards, reopened with %d; "+
			"shard count is part of the routing function and cannot change",
			dir, pinned.Shards, n)
	}
	return nil
}

// ShardFor returns the shard index app routes to: an FNV-1a hash of the
// app name modulo the shard count. Every template operation for one
// sensitive application lands on one shard.
func (s *Sharded) ShardFor(app string) int {
	h := fnv.New32a()
	h.Write([]byte(app))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Shards reports the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Put routes the template to its application's shard; see Registry.Put.
func (s *Sharded) Put(host string, t *statespace.Template) (*Entry, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.SensitiveApp == "" {
		return nil, fmt.Errorf("registry: template has no sensitive app name")
	}
	return s.shards[s.ShardFor(t.SensitiveApp)].Put(host, t)
}

// Get routes to app's shard; see Registry.Get.
func (s *Sharded) Get(app, schema string) (*Entry, bool) {
	return s.shards[s.ShardFor(app)].Get(app, schema)
}

// DeltaSince routes to app's shard; see Registry.DeltaSince.
func (s *Sharded) DeltaSince(app, schema string, since int) (*statespace.TemplateDelta, bool) {
	return s.shards[s.ShardFor(app)].DeltaSince(app, schema, since)
}

// Entries returns every entry across all shards, ordered by key for
// deterministic listings.
func (s *Sharded) Entries() []*Entry {
	var out []*Entry
	for _, shard := range s.shards {
		out = append(out, shard.Entries()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Len reports the total number of stored entries.
func (s *Sharded) Len() int {
	n := 0
	for _, shard := range s.shards {
		n += shard.Len()
	}
	return n
}
