package sched

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// netHogApp is a network-heavy batch job (log shipping / replication
// style): modest CPU, sustained uplink traffic.
type netHogApp struct{ remaining float64 }

func (n *netHogApp) Name() string { return "nethog" }
func (n *netHogApp) Demand(tick int) sim.Demand {
	return sim.Demand{CPU: 150, MemoryMB: 300, ActiveMemMB: 100, NetMbps: 600}
}
func (n *netHogApp) Advance(tick int, g sim.Grant) bool {
	n.remaining -= g.EffectiveCPU()
	return n.remaining <= 0
}

// e2eHosts builds the matching scenario on real simulated hosts: hostA's
// stream saturates memory bandwidth, hostB's edge cache saturates the
// uplink. A memory bomb violates A but not B; a network hog violates B
// but not A.
func e2eHosts() []ClusterHostSpec {
	hostCfg := sim.HostConfig{
		Cores: 8, MemoryMB: 8192, MemBWMBps: 10000, DiskMBps: 200,
		NetMbps: 1000, SwapPenalty: 12, SwapIOPerMB: 0.05,
	}
	vlcCfg := apps.DefaultVLCStreamConfig()
	vlcCfg.SceneCPUs = nil // deterministic: constant demand, no RNG
	vlcCfg.CPUJitter = 0
	vlcCfg.MemBWMBps = 3500
	vlc := apps.NewVLCStream(vlcCfg, nil)

	cdnCfg := apps.DefaultVLCStreamConfig()
	cdnCfg.SceneCPUs = nil
	cdnCfg.CPUJitter = 0
	cdnCfg.MemBWMBps = 1500
	cdnCfg.NetMbps = 600
	cdn := apps.NewVLCStream(cdnCfg, nil)

	return []ClusterHostSpec{
		{
			ID: "hostA", Sim: hostCfg,
			Sensitive: &ClusterSensitive{
				Name: "vlc-hd", ContainerID: "sens-a", App: vlc,
				Footprint: Footprint{CPU: 145, MemoryMB: 400, NetMbps: 60},
				Template:  vlcHDTemplate(),
			},
		},
		{
			ID: "hostB", Sim: hostCfg,
			Sensitive: &ClusterSensitive{
				Name: "cdn-edge", ContainerID: "sens-b", App: cdn,
				Footprint: Footprint{CPU: 145, MemoryMB: 400, NetMbps: 600},
				Template:  cdnEdgeTemplate(),
			},
		},
	}
}

func e2eJobs() []ClusterJob {
	memCfg := apps.DefaultMemoryBombConfig()
	memCfg.RampTicks = 5
	memCfg.ReadEveryTicks = 4
	memCfg.ReadBurstTicks = 6
	memCfg.TotalWork = 3000 // ≈50 ticks at CPU 60
	return []ClusterJob{
		{Job: memBombJob("job-mem"), App: apps.NewMemoryBomb(memCfg, nil), Arrival: 2},
		{Job: netHogJob("job-net"), App: &netHogApp{remaining: 7500}, Arrival: 4},
	}
}

func runE2E(t *testing.T, scorer Scorer) *ClusterResult {
	t.Helper()
	p, err := NewPlacer(PlacerConfig{Scorer: scorer})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(ClusterConfig{
		Hosts:       e2eHosts(),
		Jobs:        e2eJobs(),
		Placer:      p,
		SafetyNet:   true,
		Ranges:      testRanges(),
		PeriodTicks: 1,
		Ticks:       140,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPlacementAvoidsReactiveThrottling is the end-to-end contract of the
// scheduler: with learned maps, placement routes each batch job to the
// host whose sensitive tolerates it, so the reactive safety net never has
// to throttle — fewer violations AND no lost batch work compared with a
// statically-modeled placement that forces the safety net to clean up.
func TestPlacementAvoidsReactiveThrottling(t *testing.T) {
	ms, err := NewMapScorer(testTemplates())
	if err != nil {
		t.Fatal(err)
	}
	mapRes := runE2E(t, ms)
	reactiveRes := runE2E(t, NewCrossAppScorer(DefaultCrossAppProfile()))

	// The static model must actually create the bad co-location — the
	// scenario is vacuous otherwise — and the safety net must have caught
	// it (that's the reactive baseline doing its job).
	if reactiveRes.Violations == 0 {
		t.Fatal("static-model placement produced no violations; scenario lost its teeth")
	}
	if reactiveRes.ThrottledPeriods == 0 {
		t.Fatal("safety net never throttled under the static model; scenario lost its teeth")
	}

	// Placement with the learned map avoids the co-location entirely.
	if mapRes.Violations >= reactiveRes.Violations {
		t.Fatalf("map placement violations = %d, reactive baseline = %d; want strictly fewer",
			mapRes.Violations, reactiveRes.Violations)
	}
	if mapRes.Violations != 0 {
		t.Fatalf("map placement still hit %d violations", mapRes.Violations)
	}
	if mapRes.ThrottledPeriods != 0 {
		t.Fatalf("map placement still needed %d throttled periods", mapRes.ThrottledPeriods)
	}

	// No lost batch work: avoiding interference costs nothing in
	// throughput — throttling does.
	if mapRes.BatchWork < reactiveRes.BatchWork {
		t.Fatalf("map placement batch work %.0f < reactive %.0f", mapRes.BatchWork, reactiveRes.BatchWork)
	}
	if mapRes.JobsFinished < reactiveRes.JobsFinished {
		t.Fatalf("map placement finished %d jobs, reactive %d", mapRes.JobsFinished, reactiveRes.JobsFinished)
	}

	// The map run matched jobs to compatible sensitives.
	byJob := map[string]string{}
	for _, d := range mapRes.Decisions {
		byJob[d.Job] = d.Host
	}
	if byJob["job-mem"] != "hostB" || byJob["job-net"] != "hostA" {
		t.Fatalf("map placement = %v, want mem→hostB net→hostA", byJob)
	}
}

// TestRunClusterDeterministic pins reproducibility: identical configs
// produce identical outcomes, decision for decision.
func TestRunClusterDeterministic(t *testing.T) {
	ms, err := NewMapScorer(testTemplates())
	if err != nil {
		t.Fatal(err)
	}
	a := runE2E(t, ms)
	ms2, _ := NewMapScorer(testTemplates())
	b := runE2E(t, ms2)
	if a.Violations != b.Violations || a.BatchWork != b.BatchWork || a.JobsFinished != b.JobsFinished {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
	if len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("decision counts differ: %d vs %d", len(a.Decisions), len(b.Decisions))
	}
	for i := range a.Decisions {
		if a.Decisions[i].Host != b.Decisions[i].Host || a.Decisions[i].Score != b.Decisions[i].Score {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a.Decisions[i], b.Decisions[i])
		}
	}
}

// TestRunClusterRebalanceMigrates drives the migration path end to end:
// start with the bad assignment already running, let rebalance move it,
// and verify the job finishes on the destination host with no further
// violations after the move settles.
func TestRunClusterRebalanceMigrates(t *testing.T) {
	ms, err := NewMapScorer(testTemplates())
	if err != nil {
		t.Fatal(err)
	}
	// A scorer that mimics the static model's mistake for initial
	// placement but uses the map for rebalance would be contrived; instead
	// run the whole thing with the map scorer and migration enabled, with
	// only the memory bomb as a candidate, arriving when hostB is
	// temporarily infeasible.
	p, err := NewPlacer(PlacerConfig{Scorer: ms, MigrateThreshold: 0.5, MigrateMargin: 0.1})
	if err != nil {
		t.Fatal(err)
	}

	hosts := e2eHosts()
	// Shrink hostB so the filler job makes it infeasible for the bomb at
	// arrival time; the bomb is forced next to the vulnerable stream.
	hosts[1].Sim.MemoryMB = 4096

	memCfg := apps.DefaultMemoryBombConfig()
	memCfg.RampTicks = 5
	memCfg.ReadEveryTicks = 4
	memCfg.ReadBurstTicks = 6
	memCfg.TotalWork = 6000
	filler := &netHogApp{remaining: 450} // finishes after ~3 ticks
	fillerJob := BatchJob{ID: "job-filler", App: "nethog", Footprint: Footprint{CPU: 150, MemoryMB: 3000}}

	res, err := RunCluster(ClusterConfig{
		Hosts: hosts,
		Jobs: []ClusterJob{
			{Job: fillerJob, App: filler, Arrival: 0},
			{Job: memBombJob("job-mem"), App: apps.NewMemoryBomb(memCfg, nil), Arrival: 1},
		},
		Placer:         p,
		SafetyNet:      true,
		Ranges:         testRanges(),
		PeriodTicks:    1,
		RebalanceEvery: 5,
		Ticks:          200,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The bomb starts on hostA (hostB infeasible: filler 3000MB + bomb
	// 3400MB > 4096MB), and rebalance moves it to hostB once the filler
	// finishes and frees the memory.
	var placed string
	for _, d := range res.Decisions {
		if d.Job == "job-mem" {
			placed = d.Host
		}
	}
	if placed != "hostA" {
		t.Fatalf("bomb initially placed on %q, want hostA", placed)
	}
	found := false
	for _, m := range res.Migrations {
		if m.Job == "job-mem" && m.From == "hostA" && m.To == "hostB" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no migration of job-mem hostA→hostB; migrations = %+v", res.Migrations)
	}
	if res.JobsFinished != 2 {
		t.Fatalf("JobsFinished = %d, want 2 (work survives migration)", res.JobsFinished)
	}
}
