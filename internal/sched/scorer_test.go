package sched

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/statespace"
)

// Shared test fixtures: two sensitive applications with opposite
// vulnerabilities, and the two batch jobs that tell them apart.
//
//   - "vlc-hd" streams over little network but copies frames at high
//     memory bandwidth: a memory-heavy co-runner violates it, a
//     network-heavy one is harmless.
//   - "cdn-edge" serves most of the host's uplink: a network-heavy
//     co-runner violates it, a memory-heavy one is harmless.

func memBombJob(id string) BatchJob {
	return BatchJob{ID: id, App: "memorybomb", Footprint: Footprint{CPU: 60, MemoryMB: 3400, IOMBps: 80}}
}

func netHogJob(id string) BatchJob {
	return BatchJob{ID: id, App: "nethog", Footprint: Footprint{CPU: 150, MemoryMB: 300, NetMbps: 600}}
}

func testRanges() map[metrics.Metric]metrics.Range {
	return map[metrics.Metric]metrics.Range{
		metrics.MetricCPU:     {Max: 800},
		metrics.MetricMemory:  {Max: 4096},
		metrics.MetricIO:      {Max: 200},
		metrics.MetricNetwork: {Max: 1000},
	}
}

// vlcHDTemplate: safe alone, safe next to a network hog, violation next
// to a memory bomb.
func vlcHDTemplate() *statespace.Template {
	return &statespace.Template{
		Version:       2,
		SensitiveApp:  "vlc-hd",
		Dim:           8,
		SchemaVMs:     []string{"sens", "batch"},
		SchemaMetrics: metrics.DefaultMetrics(),
		Ranges:        testRanges(),
		States: []statespace.TemplateState{
			{X: 0, Y: 0, Label: "safe", Weight: 4,
				Vector: []float64{0.18, 0.1, 0, 0.06, 0, 0, 0, 0}},
			{X: 0.7, Y: 0, Label: "safe", Weight: 4,
				Vector: []float64{0.18, 0.1, 0, 0.06, 0.19, 0.07, 0, 0.6}},
			{X: 0, Y: 0.9, Label: "violation", Weight: 2,
				Vector: []float64{0.18, 0.1, 0.2, 0.06, 0.075, 0.83, 0.4, 0}},
		},
	}
}

// cdnEdgeTemplate: the mirror image — safe next to a memory bomb,
// violation next to a network hog.
func cdnEdgeTemplate() *statespace.Template {
	return &statespace.Template{
		Version:       2,
		SensitiveApp:  "cdn-edge",
		Dim:           8,
		SchemaVMs:     []string{"sens", "batch"},
		SchemaMetrics: metrics.DefaultMetrics(),
		Ranges:        testRanges(),
		States: []statespace.TemplateState{
			{X: 0, Y: 0, Label: "safe", Weight: 4,
				Vector: []float64{0.18, 0.1, 0, 0.6, 0, 0, 0, 0}},
			{X: 0.7, Y: 0, Label: "safe", Weight: 4,
				Vector: []float64{0.18, 0.1, 0, 0.6, 0.075, 0.83, 0.4, 0}},
			{X: 0, Y: 0.9, Label: "violation", Weight: 2,
				Vector: []float64{0.18, 0.1, 0, 0.45, 0.19, 0.07, 0, 0.6}},
		},
	}
}

func testTemplates() map[string]*statespace.Template {
	return map[string]*statespace.Template{
		"vlc-hd":   vlcHDTemplate(),
		"cdn-edge": cdnEdgeTemplate(),
	}
}

func vlcHDSensitive(host string) *SensitiveApp {
	return &SensitiveApp{Name: "vlc-hd", Host: host, Footprint: Footprint{CPU: 145, MemoryMB: 400, NetMbps: 60}}
}

func cdnEdgeSensitive(host string) *SensitiveApp {
	return &SensitiveApp{Name: "cdn-edge", Host: host, Footprint: Footprint{CPU: 145, MemoryMB: 400, NetMbps: 600}}
}

func TestMapScorerDiscriminatesByVulnerability(t *testing.T) {
	ms, err := NewMapScorer(testTemplates())
	if err != nil {
		t.Fatal(err)
	}
	hostA := Host{ID: "a", CPU: 800, MemoryMB: 8192}
	hostB := Host{ID: "b", CPU: 800, MemoryMB: 8192}

	score := func(sens *SensitiveApp, h Host, job BatchJob) float64 {
		s, err := ms.Score(Candidate{Host: h, Sensitive: sens, Job: job})
		if err != nil {
			t.Fatalf("score %s next to %s: %v", job.App, sens.Name, err)
		}
		return s
	}

	memOnVLC := score(vlcHDSensitive("a"), hostA, memBombJob("m"))
	netOnVLC := score(vlcHDSensitive("a"), hostA, netHogJob("n"))
	memOnCDN := score(cdnEdgeSensitive("b"), hostB, memBombJob("m"))
	netOnCDN := score(cdnEdgeSensitive("b"), hostB, netHogJob("n"))

	if memOnVLC <= netOnVLC {
		t.Fatalf("vlc-hd: membomb %v <= nethog %v, want membomb riskier", memOnVLC, netOnVLC)
	}
	if memOnVLC < 0.5 {
		t.Fatalf("membomb next to vlc-hd scored %v, want near violation", memOnVLC)
	}
	if netOnCDN <= memOnCDN {
		t.Fatalf("cdn-edge: nethog %v <= membomb %v, want nethog riskier", netOnCDN, memOnCDN)
	}
	if netOnCDN < 0.5 {
		t.Fatalf("nethog next to cdn-edge scored %v, want near violation", netOnCDN)
	}
}

func TestMapScorerNoSensitiveScoresZero(t *testing.T) {
	ms, err := NewMapScorer(testTemplates())
	if err != nil {
		t.Fatal(err)
	}
	s, err := ms.Score(Candidate{Host: Host{ID: "pool", CPU: 400, MemoryMB: 4096}, Job: memBombJob("m")})
	if err != nil || s != 0 {
		t.Fatalf("batch-only host = %v, %v; want 0, nil", s, err)
	}
}

func TestMapScorerUnknownAppUnscorable(t *testing.T) {
	ms, err := NewMapScorer(testTemplates())
	if err != nil {
		t.Fatal(err)
	}
	_, err = ms.Score(Candidate{
		Host:      Host{ID: "x", CPU: 400, MemoryMB: 4096},
		Sensitive: &SensitiveApp{Name: "unknown-app", Host: "x"},
		Job:       memBombJob("m"),
	})
	if err == nil {
		t.Fatal("sensitive without a map scored")
	}
	if ms.Covers("unknown-app") {
		t.Fatal("Covers(unknown-app) = true")
	}
	if got := ms.Apps(); len(got) != 2 || got[0] != "cdn-edge" || got[1] != "vlc-hd" {
		t.Fatalf("Apps = %v", got)
	}
}

func TestMapScorerRejectsBadTemplates(t *testing.T) {
	bad := vlcHDTemplate()
	bad.SchemaVMs = nil
	bad.SchemaMetrics = nil
	if _, err := NewMapScorer(map[string]*statespace.Template{"x": bad}); err == nil {
		t.Fatal("schema-less template accepted")
	}
	if _, err := NewMapScorer(map[string]*statespace.Template{"x": nil}); err == nil {
		t.Fatal("nil template accepted")
	}
}

func TestRandomScorerDeterministicAndOrderFree(t *testing.T) {
	h := Host{ID: "a", CPU: 400, MemoryMB: 4096}
	c1 := Candidate{Host: h, Job: BatchJob{ID: "j1"}}
	c2 := Candidate{Host: h, Job: BatchJob{ID: "j2"}}

	a := NewRandomScorer(7)
	s11, _ := a.Score(c1)
	s12, _ := a.Score(c2)

	// Fresh scorer, reversed evaluation order: same per-candidate scores.
	b := NewRandomScorer(7)
	s22, _ := b.Score(c2)
	s21, _ := b.Score(c1)
	if s11 != s21 || s12 != s22 {
		t.Fatalf("order-dependent scores: %v/%v vs %v/%v", s11, s12, s21, s22)
	}
	if s11 == s12 {
		t.Fatal("distinct candidates got identical scores")
	}
	other := NewRandomScorer(8)
	o11, _ := other.Score(c1)
	if o11 == s11 {
		t.Fatal("different seeds produced identical scores")
	}
}

func TestPackScorerTracksLoad(t *testing.T) {
	ps := NewPackScorer()
	h := Host{ID: "a", CPU: 400, MemoryMB: 4096}
	light, _ := ps.Score(Candidate{Host: h, Job: BatchJob{ID: "j", Footprint: Footprint{CPU: 40}}})
	heavy, _ := ps.Score(Candidate{Host: h, Resident: Footprint{CPU: 200}, Job: BatchJob{ID: "j", Footprint: Footprint{CPU: 150}}})
	if light >= heavy {
		t.Fatalf("light %v >= heavy %v", light, heavy)
	}
	if light != 0.1 {
		t.Fatalf("light = %v, want 0.1", light)
	}
}

func TestCrossAppScorerHasTheStaticBlindSpot(t *testing.T) {
	cs := NewCrossAppScorer(DefaultCrossAppProfile())
	h := Host{ID: "a", CPU: 800, MemoryMB: 8192, NetMbps: 1000}
	sens := vlcHDSensitive("a")
	mem, err := cs.Score(Candidate{Host: h, Sensitive: sens, Job: memBombJob("m")})
	if err != nil {
		t.Fatal(err)
	}
	net, err := cs.Score(Candidate{Host: h, Sensitive: sens, Job: netHogJob("n")})
	if err != nil {
		t.Fatal(err)
	}
	// The CPU-weighted static profile rates the network hog (CPU 150) as
	// more dangerous than the memory bomb (CPU 60) — exactly backwards for
	// a memory-bandwidth-sensitive application. This inversion is the
	// failure mode the learned map exists to fix, so pin it.
	if mem >= net {
		t.Fatalf("static model scored membomb %v >= nethog %v; expected the characteristic inversion", mem, net)
	}
	// No sensitive → no predicted interference.
	if s, _ := cs.Score(Candidate{Host: h, Job: memBombJob("m")}); s != 0 {
		t.Fatalf("batch-only host scored %v", s)
	}
}
