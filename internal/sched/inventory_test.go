package sched

import "testing"

func testHosts() []Host {
	return []Host{
		{ID: "a", CPU: 800, MemoryMB: 8192},
		{ID: "b", CPU: 400, MemoryMB: 4096},
	}
}

func TestNewClusterValidates(t *testing.T) {
	if _, err := NewCluster(nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewCluster([]Host{{ID: "", CPU: 400, MemoryMB: 4096}}); err == nil {
		t.Fatal("empty host ID accepted")
	}
	if _, err := NewCluster([]Host{{ID: "a", CPU: 400, MemoryMB: 4096}, {ID: "a", CPU: 400, MemoryMB: 4096}}); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if _, err := NewCluster([]Host{{ID: "a", CPU: 0, MemoryMB: 4096}}); err == nil {
		t.Fatal("zero-CPU host accepted")
	}
}

func TestClusterAssignLoadRemove(t *testing.T) {
	c, err := NewCluster(testHosts())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PinSensitive(SensitiveApp{Name: "vlc", Host: "a", Footprint: Footprint{CPU: 145, MemoryMB: 400}}); err != nil {
		t.Fatal(err)
	}
	if err := c.PinSensitive(SensitiveApp{Name: "other", Host: "a"}); err == nil {
		t.Fatal("second sensitive on one host accepted")
	}
	if err := c.PinSensitive(SensitiveApp{Name: "x", Host: "nope"}); err == nil {
		t.Fatal("sensitive on unknown host accepted")
	}

	j1 := BatchJob{ID: "j1", Footprint: Footprint{CPU: 100, MemoryMB: 500}}
	j2 := BatchJob{ID: "j2", Footprint: Footprint{CPU: 50, MemoryMB: 200}}
	if err := c.Assign(j1, "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Assign(j2, "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Assign(j1, "nope"); err == nil {
		t.Fatal("assignment to unknown host accepted")
	}

	if got := c.BatchLoad("a"); got.CPU != 150 || got.MemoryMB != 700 {
		t.Fatalf("BatchLoad = %+v", got)
	}
	if got := c.Load("a"); got.CPU != 295 || got.MemoryMB != 1100 {
		t.Fatalf("Load = %+v", got)
	}
	res := c.Resident("a")
	if len(res) != 2 || res[0].ID != "j1" || res[1].ID != "j2" {
		t.Fatalf("Resident = %v", res)
	}

	// Re-assignment moves.
	if err := c.Assign(j1, "b"); err != nil {
		t.Fatal(err)
	}
	if h, _ := c.HostOf("j1"); h != "b" {
		t.Fatalf("HostOf(j1) = %q", h)
	}
	if got := c.BatchLoad("a"); got.CPU != 50 {
		t.Fatalf("BatchLoad after move = %+v", got)
	}

	c.Remove("j2")
	if _, ok := c.Job("j2"); ok {
		t.Fatal("removed job still registered")
	}
	if got := c.BatchLoad("a"); got.CPU != 0 {
		t.Fatalf("BatchLoad after remove = %+v", got)
	}
}

func TestFootprintAddAndValues(t *testing.T) {
	f := Footprint{CPU: 1, MemoryMB: 2, IOMBps: 3, NetMbps: 4}.Add(Footprint{CPU: 10, MemoryMB: 20, IOMBps: 30, NetMbps: 40})
	if f.CPU != 11 || f.MemoryMB != 22 || f.IOMBps != 33 || f.NetMbps != 44 {
		t.Fatalf("Add = %+v", f)
	}
	v := f.Values()
	if len(v) != 4 {
		t.Fatalf("Values = %v", v)
	}
}
