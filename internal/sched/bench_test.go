package sched

import (
	"fmt"
	"testing"
)

// benchCluster builds n hosts, half protecting the stream and half the
// edge cache, plus an alternating stream of jobs to place.
func benchCluster(b *testing.B, n int) (*Cluster, []BatchJob) {
	b.Helper()
	hosts := make([]Host, n)
	for i := range hosts {
		hosts[i] = Host{ID: fmt.Sprintf("host-%04d", i), CPU: 800, MemoryMB: 8192}
	}
	c, err := NewCluster(hosts)
	if err != nil {
		b.Fatal(err)
	}
	for i, h := range hosts {
		var s SensitiveApp
		if i%2 == 0 {
			s = *vlcHDSensitive(h.ID)
		} else {
			s = *cdnEdgeSensitive(h.ID)
		}
		if err := c.PinSensitive(s); err != nil {
			b.Fatal(err)
		}
	}
	jobs := make([]BatchJob, n)
	for i := range jobs {
		if i%2 == 0 {
			jobs[i] = memBombJob(fmt.Sprintf("job-%04d", i))
		} else {
			jobs[i] = netHogJob(fmt.Sprintf("job-%04d", i))
		}
	}
	return c, jobs
}

// BenchmarkPlacement measures one full PlaceAll pass (one job per host)
// with the learned-map scorer at increasing cluster sizes. Each map query
// is O(states) per host, so a pass is O(hosts × jobs); the sizes below
// track how that scales from rack to fleet.
func BenchmarkPlacement(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("hosts=%d", n), func(b *testing.B) {
			ms, err := NewMapScorer(testTemplates())
			if err != nil {
				b.Fatal(err)
			}
			p, err := NewPlacer(PlacerConfig{Scorer: ms})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, jobs := benchCluster(b, n)
				b.StartTimer()
				if _, err := p.PlaceAll(c, jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRebalance measures a rebalance sweep over a cluster where
// every stream host carries the wrong job.
func BenchmarkRebalance(b *testing.B) {
	for _, n := range []int{10, 100} {
		b.Run(fmt.Sprintf("hosts=%d", n), func(b *testing.B) {
			ms, err := NewMapScorer(testTemplates())
			if err != nil {
				b.Fatal(err)
			}
			p, err := NewPlacer(PlacerConfig{Scorer: ms, MigrateThreshold: 0.5})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, _ := benchCluster(b, n)
				for j := 0; j < n; j += 2 {
					// Memory bombs onto stream hosts: maximally wrong.
					if err := c.Assign(memBombJob(fmt.Sprintf("job-%04d", j)), fmt.Sprintf("host-%04d", j)); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if _, err := p.Rebalance(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
