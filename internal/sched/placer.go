package sched

import (
	"fmt"
	"math"
	"sort"
)

// HostScore is one host's rating for a particular job, kept in placement
// plans so a decision can be audited: why this host and not that one.
type HostScore struct {
	Host string `json:"host"`
	// Score is the scorer's predicted violation risk; when Unscorable it
	// holds +Inf's JSON-safe stand-in 1 and Unscorable is set.
	Score float64 `json:"score"`
	// Load is the host's projected CPU load fraction with the job placed.
	Load float64 `json:"load"`
	// Feasible reports whether the projected load fits every capacity the
	// host declares.
	Feasible bool `json:"feasible"`
	// Unscorable marks hosts the scorer could not rate (no learned map);
	// they are considered last, after every scored host.
	Unscorable bool `json:"unscorable,omitempty"`
}

// Decision records where one job went and the full ranking that led
// there.
type Decision struct {
	Job  string `json:"job"`
	Host string `json:"host"`
	// Score is the chosen host's predicted violation risk.
	Score float64 `json:"score"`
	// Forced is set when no host was feasible and the job was overcommitted
	// onto the least-loaded host anyway — the per-host safety net, not the
	// placer, then carries the protection burden.
	Forced bool `json:"forced,omitempty"`
	// Ranking holds every host's score, best first.
	Ranking []HostScore `json:"ranking"`
}

// Migration is one rebalance move.
type Migration struct {
	Job  string `json:"job"`
	From string `json:"from"`
	To   string `json:"to"`
	// HostRisk is the source host's predicted violation risk before the
	// move; JobScore is the job's score on the destination.
	HostRisk float64 `json:"host_risk"`
	JobScore float64 `json:"job_score"`
}

// PlacerConfig tunes the placement policy.
type PlacerConfig struct {
	// Scorer rates candidate co-locations. Required.
	Scorer Scorer
	// MigrateThreshold is the predicted violation risk above which
	// Rebalance tries to move work off a host. Zero disables migration.
	MigrateThreshold float64
	// MigrateMargin is how much lower the destination's score must be than
	// the source host's risk for a migration to be worth the disruption.
	// Defaults to 0.1 when unset.
	MigrateMargin float64
}

// Placer turns scores into placements: greedy least-conflict assignment
// with feasibility checks, and optional migration when a host's predicted
// violation risk crosses the threshold. The placer only ever *suggests* —
// callers apply decisions to the real substrate (sim.Cluster or a real
// fleet), and the per-host runtime remains the enforcement layer.
type Placer struct {
	cfg PlacerConfig
}

// NewPlacer validates the config and returns a placer.
func NewPlacer(cfg PlacerConfig) (*Placer, error) {
	if cfg.Scorer == nil {
		return nil, fmt.Errorf("sched: placer needs a scorer")
	}
	if cfg.MigrateThreshold < 0 || cfg.MigrateThreshold > 1 {
		return nil, fmt.Errorf("sched: migrate threshold %v out of [0,1]", cfg.MigrateThreshold)
	}
	if cfg.MigrateMargin == 0 {
		cfg.MigrateMargin = 0.1
	}
	if cfg.MigrateMargin < 0 {
		return nil, fmt.Errorf("sched: negative migrate margin %v", cfg.MigrateMargin)
	}
	return &Placer{cfg: cfg}, nil
}

// Scorer returns the configured scorer.
func (p *Placer) Scorer() Scorer { return p.cfg.Scorer }

// fits reports whether a projected total load respects every capacity the
// host declares. CPU and memory are always declared; disk and network
// capacities are checked only when the inventory records them. Feasibility
// is a hard constraint — interference scoring ranks only within it, so a
// pile-up that would saturate a declared channel is rejected outright
// rather than trusted to a map that has never seen the combination.
func fits(h Host, f Footprint) bool {
	if f.CPU > h.CPU || f.MemoryMB > h.MemoryMB {
		return false
	}
	if h.DiskMBps > 0 && f.IOMBps > h.DiskMBps {
		return false
	}
	if h.NetMbps > 0 && f.NetMbps > h.NetMbps {
		return false
	}
	return true
}

// candidateFor builds the scoring candidate for job-on-host given current
// cluster state, optionally excluding one resident job (for rebalance
// "what if it left" queries).
func candidateFor(c *Cluster, host Host, job BatchJob, excludeJob string) Candidate {
	resident := Footprint{}
	for _, r := range c.Resident(host.ID) {
		if r.ID == excludeJob || r.ID == job.ID {
			continue
		}
		resident = resident.Add(r.Footprint)
	}
	cand := Candidate{Host: host, Resident: resident, Job: job}
	if s, ok := c.Sensitive(host.ID); ok {
		cand.Sensitive = &s
	}
	return cand
}

// rank scores the job on every host and returns the ranking, best first:
// feasible before infeasible, scored before unscorable, then by score,
// then by projected load, then by host ID. The composite order makes the
// greedy step deterministic and explainable.
func (p *Placer) rank(c *Cluster, job BatchJob) []HostScore {
	hosts := c.Hosts()
	out := make([]HostScore, 0, len(hosts))
	for _, h := range hosts {
		cand := candidateFor(c, h, job, "")
		total := cand.TotalLoad()
		hs := HostScore{
			Host:     h.ID,
			Load:     total.CPU / h.CPU,
			Feasible: fits(h, total),
		}
		if s, err := p.cfg.Scorer.Score(cand); err != nil {
			hs.Score = 1
			hs.Unscorable = true
		} else {
			hs.Score = s
		}
		out = append(out, hs)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if a.Unscorable != b.Unscorable {
			return !a.Unscorable
		}
		if a.Score != b.Score {
			return a.Score < b.Score
		}
		if a.Load != b.Load {
			return a.Load < b.Load
		}
		return a.Host < b.Host
	})
	return out
}

// Place chooses a host for the job and records the assignment in the
// cluster. When no host is feasible the job is forced onto the
// least-loaded host (overcommit) and the decision is marked Forced: in
// Stay-Away's architecture admission control is not the scheduler's job —
// the per-host runtime throttles what placement could not avoid.
func (p *Placer) Place(c *Cluster, job BatchJob) (Decision, error) {
	if job.ID == "" {
		return Decision{}, fmt.Errorf("sched: placing job with empty ID")
	}
	ranking := p.rank(c, job)
	if len(ranking) == 0 {
		return Decision{}, fmt.Errorf("sched: no hosts to place %q on", job.ID)
	}
	best := ranking[0]
	d := Decision{
		Job:     job.ID,
		Host:    best.Host,
		Score:   best.Score,
		Forced:  !best.Feasible,
		Ranking: ranking,
	}
	if d.Forced {
		// Least-loaded among all hosts, ignoring scores: spread the
		// overcommit rather than piling it where the scorer is calmest.
		least := ranking[0]
		for _, hs := range ranking[1:] {
			if hs.Load < least.Load || (hs.Load == least.Load && hs.Host < least.Host) {
				least = hs
			}
		}
		d.Host = least.Host
		d.Score = least.Score
	}
	if err := c.Assign(job, d.Host); err != nil {
		return Decision{}, err
	}
	return d, nil
}

// PlaceAll places jobs in order, each seeing the assignments before it.
func (p *Placer) PlaceAll(c *Cluster, jobs []BatchJob) ([]Decision, error) {
	out := make([]Decision, 0, len(jobs))
	for _, j := range jobs {
		d, err := p.Place(c, j)
		if err != nil {
			return out, err
		}
		out = append(out, d)
	}
	return out, nil
}

// HostRisk returns a host's current predicted violation risk: the score
// of its existing co-location as it stands, with no additional job. Hosts
// with no resident batch score 0 (nothing to move), as do hosts with no
// sensitive.
func (p *Placer) HostRisk(c *Cluster, hostID string) (float64, error) {
	h, err := c.Host(hostID)
	if err != nil {
		return 0, err
	}
	resident := c.Resident(hostID)
	if len(resident) == 0 {
		return 0, nil
	}
	// Score the resident set by treating the first resident job as the
	// "candidate" and the rest as resident — the combined load, and hence
	// the score, is identical whichever job plays that role.
	cand := candidateFor(c, h, resident[0], "")
	s, err := p.cfg.Scorer.Score(cand)
	if err != nil {
		return 1, err
	}
	return s, nil
}

// Rebalance inspects every host and, where predicted violation risk
// exceeds MigrateThreshold, proposes at most one migration per host: the
// resident job whose best alternative host scores lowest, provided that
// alternative is feasible and better by at least MigrateMargin. Proposed
// moves are applied to the cluster bookkeeping and returned; the caller
// mirrors them onto the substrate (e.g. sim.Cluster.Migrate).
//
// Migration is deliberately conservative — the threshold picks out hosts
// the map already predicts will violate, so a move is cheaper than the
// throttling the safety net would otherwise impose.
func (p *Placer) Rebalance(c *Cluster) ([]Migration, error) {
	if p.cfg.MigrateThreshold <= 0 {
		return nil, nil
	}
	var moves []Migration
	for _, h := range c.Hosts() {
		risk, err := p.HostRisk(c, h.ID)
		if err != nil {
			// Unscorable host: the map cannot justify disrupting it.
			continue
		}
		if risk <= p.cfg.MigrateThreshold {
			continue
		}
		best := Migration{JobScore: math.Inf(1)}
		for _, job := range c.Resident(h.ID) {
			for _, dst := range c.Hosts() {
				if dst.ID == h.ID {
					continue
				}
				cand := candidateFor(c, dst, job, "")
				if !fits(dst, cand.TotalLoad()) {
					continue
				}
				s, err := p.cfg.Scorer.Score(cand)
				if err != nil {
					continue
				}
				if s < best.JobScore {
					best = Migration{Job: job.ID, From: h.ID, To: dst.ID, HostRisk: risk, JobScore: s}
				}
			}
		}
		if best.Job == "" || best.JobScore+p.cfg.MigrateMargin > risk {
			continue
		}
		job, _ := c.Job(best.Job)
		if err := c.Assign(job, best.To); err != nil {
			return moves, err
		}
		moves = append(moves, best)
	}
	return moves, nil
}
