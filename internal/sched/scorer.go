package sched

import "fmt"

// Candidate is one hypothetical co-location: job added to host, next to
// the host's pinned sensitive (if any) and its already-resident batch
// load. Scorers never see the cluster — the placer flattens cluster state
// into candidates so scorers stay pure functions.
type Candidate struct {
	// Host is the target machine.
	Host Host
	// Sensitive is the application protected on the host; nil when the
	// host has none.
	Sensitive *SensitiveApp
	// Resident is the summed footprint of batch work already on the host.
	Resident Footprint
	// Job is the work being placed.
	Job BatchJob
}

// BatchLoad returns the host's batch footprint with the candidate job
// included.
func (c Candidate) BatchLoad() Footprint {
	return c.Resident.Add(c.Job.Footprint)
}

// TotalLoad returns the host's full projected footprint: sensitive plus
// all batch including the candidate job.
func (c Candidate) TotalLoad() Footprint {
	f := c.BatchLoad()
	if c.Sensitive != nil {
		f = f.Add(c.Sensitive.Footprint)
	}
	return f
}

// Scorer rates a candidate co-location. Scores are predicted violation
// risk in [0,1]: 0 means the scorer expects no QoS violation from this
// placement, 1 means it predicts the combined state lands inside a known
// violation region. The placer minimizes; relative order is what matters.
//
// Implementations must be deterministic for a fixed construction (seeded
// randomness only) and must not retain or mutate the candidate.
type Scorer interface {
	// Name identifies the scorer in plans and experiment reports.
	Name() string
	// Score rates the candidate. An error marks the candidate unscorable
	// (e.g. no learned map for that sensitive); the placer treats
	// unscorable as maximally risky rather than failing the placement.
	Score(c Candidate) (float64, error)
}

// clamp01 bounds a score into [0,1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// validateCandidate rejects structurally broken candidates early so every
// scorer shares the same contract.
func validateCandidate(c Candidate) error {
	if c.Host.ID == "" {
		return fmt.Errorf("sched: candidate with empty host")
	}
	if c.Job.ID == "" {
		return fmt.Errorf("sched: candidate with empty job")
	}
	return nil
}
