package sched

import (
	"fmt"
	"sort"

	"repro/internal/statespace"
)

// MapScorer rates co-locations with the fleet's learned violation maps:
// for a host protecting sensitive app S, it builds the hypothetical
// combined measurement vector (S's steady-state footprint in the
// sensitive slot, resident-plus-candidate batch in the aggregated batch
// slot), projects it into S's learned 2-D state space, and returns the
// violation proximity — 1 inside a known violation-range, decaying with
// distance outside. This is the paper's map, queried prospectively:
// instead of waiting for the host to drift toward a violation-state and
// reacting, the scheduler refuses to create the state at all.
//
// Hosts with no sensitive cost nothing to batch QoS; they score 0.
// Hosts whose sensitive has no registered map are unscorable — the
// caller decides whether that means "avoid" (the placer's default) or
// "fall back to a baseline".
type MapScorer struct {
	maps map[string]*statespace.QueryMap
}

// NewMapScorer builds a scorer over learned templates keyed by sensitive
// application name. Templates that fail QueryMap validation (wrong
// schema, empty) are rejected — a half-usable map is worse than none.
func NewMapScorer(templates map[string]*statespace.Template) (*MapScorer, error) {
	ms := &MapScorer{maps: make(map[string]*statespace.QueryMap, len(templates))}
	// Sorted iteration so a multi-error report is deterministic.
	apps := make([]string, 0, len(templates))
	for app := range templates {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		t := templates[app]
		if t == nil {
			return nil, fmt.Errorf("sched: nil template for %q", app)
		}
		q, err := statespace.NewQueryMap(t)
		if err != nil {
			return nil, fmt.Errorf("sched: template for %q unusable: %w", app, err)
		}
		ms.maps[app] = q
	}
	return ms, nil
}

// Name implements Scorer.
func (ms *MapScorer) Name() string { return "map" }

// Apps returns the sensitive applications the scorer has maps for,
// sorted.
func (ms *MapScorer) Apps() []string {
	out := make([]string, 0, len(ms.maps))
	for app := range ms.maps {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// Covers reports whether the scorer can rate placements next to the
// given sensitive application.
func (ms *MapScorer) Covers(app string) bool {
	_, ok := ms.maps[app]
	return ok
}

// Score implements Scorer.
func (ms *MapScorer) Score(c Candidate) (float64, error) {
	if err := validateCandidate(c); err != nil {
		return 0, err
	}
	if c.Sensitive == nil {
		return 0, nil
	}
	q, ok := ms.maps[c.Sensitive.Name]
	if !ok {
		return 0, fmt.Errorf("sched: no learned map for sensitive %q", c.Sensitive.Name)
	}
	s, err := q.Score(c.Sensitive.Footprint.Values(), c.BatchLoad().Values())
	if err != nil {
		return 0, err
	}
	return clamp01(s), nil
}
