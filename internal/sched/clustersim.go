package sched

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/statespace"
	"repro/internal/throttle"
)

// ClusterSensitive describes a host's protected application for the
// multi-host harness.
type ClusterSensitive struct {
	// Name is the fleet-wide application name (template key).
	Name string
	// ContainerID is the container the application runs in.
	ContainerID string
	// App is the workload instance; its QoS report is the violation signal.
	App sim.QoSApp
	// Footprint is the steady-state demand placement scoring uses.
	Footprint Footprint
	// Template optionally seeds the host's safety-net runtime with a
	// previously learned map (§6 template reuse).
	Template *statespace.Template
}

// ClusterHostSpec is one host in the harness.
type ClusterHostSpec struct {
	ID        string
	Sim       sim.HostConfig
	Sensitive *ClusterSensitive
}

// ClusterJob is one batch arrival.
type ClusterJob struct {
	// Job is the placement-facing description.
	Job BatchJob
	// App is the actual workload that runs once placed.
	App sim.App
	// Arrival is the cluster tick the job shows up at.
	Arrival int
}

// ClusterConfig drives RunCluster.
type ClusterConfig struct {
	Hosts []ClusterHostSpec
	Jobs  []ClusterJob
	// Placer decides where arrivals go and proposes migrations. Required.
	Placer *Placer
	// SafetyNet enables the per-host reactive Stay-Away runtime on every
	// host with a sensitive. Off, placement is the only protection —
	// the configuration the ablation uses to isolate placement's effect.
	SafetyNet bool
	// Ranges configures safety-net metric normalization (required when
	// SafetyNet is set).
	Ranges map[metrics.Metric]metrics.Range
	// PeriodTicks is how many simulator ticks one monitoring period spans.
	// Defaults to 1.
	PeriodTicks int
	// RebalanceEvery runs a rebalance pass every N periods; 0 disables.
	RebalanceEvery int
	// Ticks is the simulation length.
	Ticks int
	// Seed drives the safety-net runtimes' randomness.
	Seed int64
}

// HostReport is one host's outcome.
type HostReport struct {
	Host string `json:"host"`
	// Sensitive names the protected app, empty for batch-only hosts.
	Sensitive string `json:"sensitive,omitempty"`
	// Violations counts periods in which the sensitive reported QoS below
	// threshold while running.
	Violations int `json:"violations"`
	// ThrottledPeriods counts periods the safety net held batch throttled.
	ThrottledPeriods int `json:"throttled_periods"`
}

// ClusterResult is the harness outcome.
type ClusterResult struct {
	// Violations is the cluster-wide QoS violation period count.
	Violations int `json:"violations"`
	// BatchWork is the total effective CPU delivered to batch jobs —
	// the throughput side of the protection/throughput trade-off.
	BatchWork float64 `json:"batch_work"`
	// JobsFinished counts batch jobs that completed their work.
	JobsFinished int `json:"jobs_finished"`
	// ThrottledPeriods sums safety-net throttling across hosts.
	ThrottledPeriods int `json:"throttled_periods"`
	// Decisions are the placement decisions in arrival order.
	Decisions []Decision `json:"decisions"`
	// Migrations are the rebalance moves in the order they were applied.
	Migrations []Migration `json:"migrations"`
	// Hosts are the per-host reports in spec order.
	Hosts []HostReport `json:"hosts"`
}

// clusterEnv adapts one simulated host to core.Environment for the
// safety-net runtime. Batch IDs cover every job in the experiment; jobs
// not currently resident on this host simply are not in its samples.
type clusterEnv struct {
	sim      *sim.Simulator
	sensID   string
	batchIDs []string
	qos      sim.QoSApp
}

func (e *clusterEnv) Collect() []metrics.Sample { return e.sim.Samples() }

func (e *clusterEnv) QoSViolation() bool {
	if !e.SensitiveRunning() {
		return false
	}
	v, thr := e.qos.QoS()
	return v < thr
}

func (e *clusterEnv) SensitiveRunning() bool {
	c, err := e.sim.Container(e.sensID)
	if err != nil {
		return false
	}
	return c.Running()
}

func (e *clusterEnv) BatchRunning() bool {
	for _, id := range e.batchIDs {
		if c, err := e.sim.Container(id); err == nil && c.Running() {
			return true
		}
	}
	return false
}

func (e *clusterEnv) BatchActive() bool {
	for _, id := range e.batchIDs {
		if c, err := e.sim.Container(id); err == nil && c.Active() {
			return true
		}
	}
	return false
}

// clusterActuator freezes/thaws/limits this host's batch containers,
// skipping jobs resident elsewhere.
type clusterActuator struct{ sim *sim.Simulator }

var _ throttle.GradedActuator = clusterActuator{}

func (a clusterActuator) do(ids []string, f func(string) error) error {
	for _, id := range ids {
		if _, err := a.sim.Container(id); err != nil {
			continue
		}
		if err := f(id); err != nil {
			return err
		}
	}
	return nil
}

func (a clusterActuator) Pause(ids []string) error { return a.do(ids, a.sim.Freeze) }

func (a clusterActuator) Resume(ids []string) error {
	return a.do(ids, func(id string) error {
		if err := a.sim.Thaw(id); err != nil {
			return err
		}
		return a.sim.LimitCPU(id, 1)
	})
}

func (a clusterActuator) SetLevel(ids []string, level float64) error {
	if level < 0.01 {
		level = 0.01
	}
	return a.do(ids, func(id string) error { return a.sim.LimitCPU(id, level) })
}

// hostState is RunCluster's per-host wiring.
type hostState struct {
	spec    ClusterHostSpec
	sim     *sim.Simulator
	runtime *core.Runtime // nil without safety net or sensitive
	env     *clusterEnv   // nil for batch-only hosts
	report  HostReport
}

// RunCluster drives a multi-host experiment: jobs arrive on a schedule,
// the placer assigns each to a host (and periodically rebalances), every
// host advances through shared discrete time, and — when enabled — each
// sensitive host's reactive runtime throttles as the last line of
// defense. Deterministic for a fixed config and seed.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) {
	if cfg.Placer == nil {
		return nil, fmt.Errorf("sched: RunCluster needs a placer")
	}
	if cfg.Ticks <= 0 {
		return nil, fmt.Errorf("sched: RunCluster needs a positive tick count")
	}
	if cfg.PeriodTicks <= 0 {
		cfg.PeriodTicks = 1
	}
	if cfg.SafetyNet && len(cfg.Ranges) == 0 {
		return nil, fmt.Errorf("sched: safety net needs normalization ranges")
	}

	// All job IDs, for the safety-net runtimes' batch sets: membership per
	// host changes with placement, so every runtime watches the full set
	// and ignores absentees.
	allJobIDs := make([]string, 0, len(cfg.Jobs))
	for _, j := range cfg.Jobs {
		allJobIDs = append(allJobIDs, j.Job.ID)
	}

	// Substrate + bookkeeping.
	substrate := sim.NewCluster()
	inventory := make([]Host, 0, len(cfg.Hosts))
	states := make([]*hostState, 0, len(cfg.Hosts))
	for _, spec := range cfg.Hosts {
		hsim, err := substrate.AddHost(spec.ID, spec.Sim)
		if err != nil {
			return nil, err
		}
		inventory = append(inventory, Host{
			ID:       spec.ID,
			CPU:      spec.Sim.CPUCapacity(),
			MemoryMB: spec.Sim.MemoryMB,
			DiskMBps: spec.Sim.DiskMBps,
			NetMbps:  spec.Sim.NetMbps,
		})
		st := &hostState{spec: spec, sim: hsim, report: HostReport{Host: spec.ID}}
		if s := spec.Sensitive; s != nil {
			st.report.Sensitive = s.Name
			if _, err := hsim.AddContainer(s.ContainerID, s.App); err != nil {
				return nil, err
			}
			st.env = &clusterEnv{sim: hsim, sensID: s.ContainerID, batchIDs: allJobIDs, qos: s.App}
			if cfg.SafetyNet {
				rcfg := core.DefaultConfig(s.ContainerID, allJobIDs, cfg.Ranges)
				rcfg.SensitiveApp = s.Name
				rcfg.Seed = cfg.Seed + int64(len(states))
				rt, err := core.New(rcfg, st.env, clusterActuator{sim: hsim})
				if err != nil {
					return nil, err
				}
				if s.Template != nil {
					if err := rt.ImportTemplate(s.Template); err != nil {
						return nil, err
					}
				}
				st.runtime = rt
			}
		}
		states = append(states, st)
	}
	book, err := NewCluster(inventory)
	if err != nil {
		return nil, err
	}
	for _, st := range states {
		if s := st.spec.Sensitive; s != nil {
			if err := book.PinSensitive(SensitiveApp{Name: s.Name, Host: st.spec.ID, Footprint: s.Footprint}); err != nil {
				return nil, err
			}
		}
	}

	// Arrival schedule: by arrival tick, then config order (stable sort).
	jobs := append([]ClusterJob(nil), cfg.Jobs...)
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Arrival < jobs[j].Arrival })
	containers := make(map[string]*sim.Container, len(jobs))

	res := &ClusterResult{}
	next := 0
	for tick := 0; tick < cfg.Ticks; tick++ {
		// Arrivals.
		for next < len(jobs) && jobs[next].Arrival <= tick {
			j := jobs[next]
			next++
			d, err := cfg.Placer.Place(book, j.Job)
			if err != nil {
				return nil, err
			}
			hsim, err := substrate.Host(d.Host)
			if err != nil {
				return nil, err
			}
			ct, err := hsim.AddContainer(j.Job.ID, j.App)
			if err != nil {
				return nil, err
			}
			containers[j.Job.ID] = ct
			res.Decisions = append(res.Decisions, d)
		}

		substrate.Step()

		// Drop finished jobs from the bookkeeping so scores reflect what
		// actually still runs.
		for id, ct := range containers {
			if !ct.Active() {
				book.Remove(id)
			}
		}

		if (tick+1)%cfg.PeriodTicks != 0 {
			continue
		}
		period := (tick + 1) / cfg.PeriodTicks

		// Observe violations and run the safety net.
		for _, st := range states {
			if st.env == nil {
				continue
			}
			if st.runtime != nil {
				if _, err := st.runtime.Period(); err != nil {
					return nil, err
				}
				if st.runtime.Throttled() {
					st.report.ThrottledPeriods++
					res.ThrottledPeriods++
				}
			}
			if st.env.QoSViolation() {
				st.report.Violations++
				res.Violations++
			}
		}

		// Rebalance.
		if cfg.RebalanceEvery > 0 && period%cfg.RebalanceEvery == 0 {
			moves, err := cfg.Placer.Rebalance(book)
			if err != nil {
				return nil, err
			}
			for _, m := range moves {
				if err := substrate.Migrate(m.Job, m.From, m.To); err != nil {
					return nil, fmt.Errorf("sched: applying migration of %q: %w", m.Job, err)
				}
			}
			res.Migrations = append(res.Migrations, moves...)
		}
	}

	// Harvest throughput: ordered by job ID for a deterministic sum.
	ids := make([]string, 0, len(containers))
	for id := range containers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		ct := containers[id]
		res.BatchWork += ct.TotalEffectiveCPU()
		if ct.State() == sim.StateFinished {
			res.JobsFinished++
		}
	}
	for _, st := range states {
		res.Hosts = append(res.Hosts, st.report)
	}
	return res, nil
}
