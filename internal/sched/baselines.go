package sched

import (
	"math/rand"
)

// Baseline scorers the ablation suite compares the learned-map scorer
// against. RandomScorer is the no-information floor (spread work
// arbitrarily), PackScorer is the interference-oblivious industry default
// (bin-pack by projected load), and CrossAppScorer is a static
// cross-application interference model in the style of arXiv 1610.04309:
// a fixed per-resource sensitivity profile instead of a learned,
// workload-specific map. The static model's failure mode is exactly the
// one the paper motivates learning for — a profile weighted toward the
// wrong resource confidently steers batch work into the co-locations
// that hurt.

// RandomScorer assigns each candidate a pseudo-random score from a seeded
// stream keyed by (host, job), so the same candidate always gets the same
// score within one scorer instance regardless of evaluation order.
type RandomScorer struct {
	seed int64
}

// NewRandomScorer returns a random scorer with the given seed.
func NewRandomScorer(seed int64) *RandomScorer {
	return &RandomScorer{seed: seed}
}

// Name implements Scorer.
func (rs *RandomScorer) Name() string { return "random" }

// Score implements Scorer. The candidate's identity is hashed into the
// seed so scores are order-independent: evaluating hosts in a different
// sequence cannot change any individual score.
func (rs *RandomScorer) Score(c Candidate) (float64, error) {
	if err := validateCandidate(c); err != nil {
		return 0, err
	}
	h := rs.seed
	for _, s := range []string{c.Host.ID, c.Job.ID} {
		for _, b := range []byte(s) {
			h = h*1099511628211 + int64(b) // FNV-style mix
		}
	}
	r := rand.New(rand.NewSource(h))
	return r.Float64(), nil
}

// PackScorer scores by the host's projected CPU load fraction after
// placement — classic least-loaded bin-packing. It knows nothing about
// interference: a memory-thrashing job and a cache-friendly one with the
// same CPU demand score identically.
type PackScorer struct{}

// NewPackScorer returns the bin-packing scorer.
func NewPackScorer() *PackScorer { return &PackScorer{} }

// Name implements Scorer.
func (ps *PackScorer) Name() string { return "pack" }

// Score implements Scorer.
func (ps *PackScorer) Score(c Candidate) (float64, error) {
	if err := validateCandidate(c); err != nil {
		return 0, err
	}
	if c.Host.CPU <= 0 {
		return 1, nil
	}
	return clamp01(c.TotalLoad().CPU / c.Host.CPU), nil
}

// Profile is a static per-resource interference weighting: how much
// pressure on each shared resource is believed to hurt a sensitive
// application. Weights are relative; they are normalized at scoring time.
type Profile struct {
	CPU    float64 `json:"cpu"`
	Memory float64 `json:"memory"`
	IO     float64 `json:"io"`
	Net    float64 `json:"net"`
}

// DefaultCrossAppProfile is the CPU-dominant profile a static model built
// from coarse benchmarks tends to produce: CPU contention is the easiest
// interference to measure offline, so it dominates the weights, and
// memory-bandwidth pressure — the channel that actually hurts streaming
// sensitives — is underweighted. Faithful to the class of model the
// Stay-Away paper argues is insufficient, and deliberately so: the
// ablation needs the static model's characteristic blind spot, not a
// hand-tuned oracle.
func DefaultCrossAppProfile() Profile {
	return Profile{CPU: 1.0, Memory: 0.1, IO: 0.2, Net: 0.1}
}

// CrossAppScorer predicts interference as the profile-weighted sum of the
// batch load's pressure on each host resource — a static cross-application
// performance model (arXiv 1610.04309): one fixed formula for all
// sensitives, no per-workload learning, no notion of which resource this
// sensitive actually contends on.
type CrossAppScorer struct {
	profile Profile
}

// NewCrossAppScorer returns a static-model scorer with the given profile.
func NewCrossAppScorer(p Profile) *CrossAppScorer {
	return &CrossAppScorer{profile: p}
}

// Name implements Scorer.
func (cs *CrossAppScorer) Name() string { return "crossapp" }

// Score implements Scorer.
func (cs *CrossAppScorer) Score(c Candidate) (float64, error) {
	if err := validateCandidate(c); err != nil {
		return 0, err
	}
	if c.Sensitive == nil {
		return 0, nil
	}
	p := cs.profile
	wsum := p.CPU + p.Memory + p.IO + p.Net
	if wsum <= 0 {
		return 0, nil
	}
	batch := c.BatchLoad()
	// Pressure on each resource: batch demand relative to host capacity.
	// Capacities the inventory doesn't record fall back to the demand
	// itself saturating (pressure 1) only at absurd levels, keeping the
	// formula total rather than erroring.
	frac := func(demand, capacity float64) float64 {
		if capacity <= 0 {
			return 0
		}
		return clamp01(demand / capacity)
	}
	disk := c.Host.DiskMBps
	if disk <= 0 {
		disk = 500
	}
	net := c.Host.NetMbps
	if net <= 0 {
		net = 1000
	}
	score := p.CPU*frac(batch.CPU, c.Host.CPU) +
		p.Memory*frac(batch.MemoryMB, c.Host.MemoryMB) +
		p.IO*frac(batch.IOMBps, disk) +
		p.Net*frac(batch.NetMbps, net)
	return clamp01(score / wsum), nil
}
