// Package sched is the cluster-level placement layer above Stay-Away's
// per-host runtime: instead of reacting to interference after a batch job
// lands next to a sensitive application, it uses the fleet's learned
// violation maps to predict which (sensitive, batch, host) co-locations
// would violate and places batch work on the least-conflicting host —
// migrating it away when a host's predicted violation risk crosses a
// threshold. The per-host runtime stays in the loop as the safety net:
// placement is advisory, throttling authority never leaves the host.
//
// The scoring design follows the interference-scoring orchestration line
// of work (arXiv 2407.12248, arXiv 2402.08917): every candidate placement
// gets a scalar predicted-violation score, and the placer greedily
// minimizes it. The learned-map scorer derives the score from the shared
// statespace templates (distance of the projected combined state to known
// violation regions); a static cross-application model in the style of
// arXiv 1610.04309 and a random/bin-packing scorer serve as the baselines
// the ablation suite measures against.
//
// Everything in this package is deterministic given a seed: placement
// plans are reproducible artifacts, enforced by stayawaylint's determinism
// analyzer.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Footprint is a batch job's or sensitive application's steady-state raw
// resource demand, in the same units the monitoring vectors use: CPU in
// percent-of-core, memory in resident MB, I/O in MB/s, network in Mb/s.
// It is the prospective stand-in for a measurement sample — what the
// combined state would look like if the workload ran here.
type Footprint struct {
	CPU      float64 `json:"cpu"`
	MemoryMB float64 `json:"memory_mb"`
	IOMBps   float64 `json:"io_mbps"`
	NetMbps  float64 `json:"net_mbps"`
}

// Add returns the elementwise sum — the linear composition §5 of the
// paper justifies for aggregated batch behaviour.
func (f Footprint) Add(o Footprint) Footprint {
	return Footprint{
		CPU:      f.CPU + o.CPU,
		MemoryMB: f.MemoryMB + o.MemoryMB,
		IOMBps:   f.IOMBps + o.IOMBps,
		NetMbps:  f.NetMbps + o.NetMbps,
	}
}

// Values renders the footprint as a raw metric map in the monitoring
// schema's terms.
func (f Footprint) Values() map[metrics.Metric]float64 {
	return map[metrics.Metric]float64{
		metrics.MetricCPU:     f.CPU,
		metrics.MetricMemory:  f.MemoryMB,
		metrics.MetricIO:      f.IOMBps,
		metrics.MetricNetwork: f.NetMbps,
	}
}

// Host is one machine in the cluster inventory, described by its capacity.
type Host struct {
	// ID names the host; unique within a cluster.
	ID string `json:"id"`
	// CPU is capacity in percent-of-core units (4 cores = 400).
	CPU float64 `json:"cpu"`
	// MemoryMB is installed RAM.
	MemoryMB float64 `json:"memory_mb"`
	// DiskMBps and NetMbps are I/O capacities; when declared (non-zero)
	// they join CPU and memory in the placer's feasibility checks.
	DiskMBps float64 `json:"disk_mbps,omitempty"`
	NetMbps  float64 `json:"net_mbps,omitempty"`
}

// SensitiveApp is a latency-sensitive application pinned to a host.
// Sensitives do not move — the paper's protection target owns its machine;
// what the scheduler controls is which batch work comes near it.
type SensitiveApp struct {
	// Name is the fleet-wide application name — the key its learned
	// template is registered under.
	Name string `json:"name"`
	// Host is the host the application runs on.
	Host string `json:"host"`
	// Footprint is the application's steady-state demand.
	Footprint Footprint `json:"footprint"`
}

// BatchJob is one unit of placeable batch work.
type BatchJob struct {
	// ID names the job; unique within a cluster.
	ID string `json:"id"`
	// App labels the workload type (reporting only).
	App string `json:"app,omitempty"`
	// Footprint is the job's steady-state demand.
	Footprint Footprint `json:"footprint"`
	// Work is the job size in effective-CPU units; 0 means open-ended.
	Work float64 `json:"work,omitempty"`
}

// Cluster is the placement state: the host inventory, the pinned
// sensitives, and the current job→host assignment. It is pure bookkeeping
// — no simulation, no clocks — so the placer can evaluate hypothetical
// moves cheaply and deterministically.
type Cluster struct {
	hosts      []Host
	hostIdx    map[string]int
	sensitives map[string]SensitiveApp // keyed by host ID
	jobs       map[string]BatchJob
	assign     map[string]string // job ID → host ID
	resident   map[string][]string
}

// NewCluster builds a cluster over the given hosts.
func NewCluster(hosts []Host) (*Cluster, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("sched: cluster needs at least one host")
	}
	c := &Cluster{
		hostIdx:    make(map[string]int, len(hosts)),
		sensitives: make(map[string]SensitiveApp),
		jobs:       make(map[string]BatchJob),
		assign:     make(map[string]string),
		resident:   make(map[string][]string),
	}
	for _, h := range hosts {
		if h.ID == "" {
			return nil, fmt.Errorf("sched: host with empty ID")
		}
		if _, dup := c.hostIdx[h.ID]; dup {
			return nil, fmt.Errorf("sched: duplicate host %q", h.ID)
		}
		if h.CPU <= 0 || h.MemoryMB <= 0 {
			return nil, fmt.Errorf("sched: host %q needs positive CPU and memory capacity", h.ID)
		}
		c.hostIdx[h.ID] = len(c.hosts)
		c.hosts = append(c.hosts, h)
	}
	return c, nil
}

// Hosts returns the inventory in insertion order.
func (c *Cluster) Hosts() []Host { return append([]Host(nil), c.hosts...) }

// Host returns the host with the given ID.
func (c *Cluster) Host(id string) (Host, error) {
	i, ok := c.hostIdx[id]
	if !ok {
		return Host{}, fmt.Errorf("sched: unknown host %q", id)
	}
	return c.hosts[i], nil
}

// PinSensitive places a sensitive application on its host. At most one
// sensitive per host: the per-host runtime's multi-tenant lanes handle
// several sensitives on one machine, but placement treats such a host as
// one combined protection domain, which this layer does not model yet.
func (c *Cluster) PinSensitive(s SensitiveApp) error {
	if s.Name == "" {
		return fmt.Errorf("sched: sensitive with empty name")
	}
	if _, ok := c.hostIdx[s.Host]; !ok {
		return fmt.Errorf("sched: sensitive %q pinned to unknown host %q", s.Name, s.Host)
	}
	if prev, dup := c.sensitives[s.Host]; dup {
		return fmt.Errorf("sched: host %q already protects %q", s.Host, prev.Name)
	}
	c.sensitives[s.Host] = s
	return nil
}

// Sensitive returns the sensitive pinned to the host, if any.
func (c *Cluster) Sensitive(host string) (SensitiveApp, bool) {
	s, ok := c.sensitives[host]
	return s, ok
}

// Assign places a job on a host, registering the job if new. Re-assigning
// an already-placed job moves it.
func (c *Cluster) Assign(job BatchJob, host string) error {
	if job.ID == "" {
		return fmt.Errorf("sched: job with empty ID")
	}
	if _, ok := c.hostIdx[host]; !ok {
		return fmt.Errorf("sched: job %q assigned to unknown host %q", job.ID, host)
	}
	if prev, ok := c.assign[job.ID]; ok {
		c.dropResident(prev, job.ID)
	}
	c.jobs[job.ID] = job
	c.assign[job.ID] = host
	c.resident[host] = append(c.resident[host], job.ID)
	sort.Strings(c.resident[host])
	return nil
}

// Remove deletes a job from the cluster (it finished or was cancelled).
func (c *Cluster) Remove(jobID string) {
	if host, ok := c.assign[jobID]; ok {
		c.dropResident(host, jobID)
	}
	delete(c.assign, jobID)
	delete(c.jobs, jobID)
}

func (c *Cluster) dropResident(host, jobID string) {
	ids := c.resident[host]
	for i, id := range ids {
		if id == jobID {
			c.resident[host] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

// HostOf returns the host a job is assigned to.
func (c *Cluster) HostOf(jobID string) (string, bool) {
	h, ok := c.assign[jobID]
	return h, ok
}

// Job returns a registered job.
func (c *Cluster) Job(id string) (BatchJob, bool) {
	j, ok := c.jobs[id]
	return j, ok
}

// Resident returns the jobs currently assigned to a host, in ID order.
func (c *Cluster) Resident(host string) []BatchJob {
	ids := c.resident[host]
	out := make([]BatchJob, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.jobs[id])
	}
	return out
}

// BatchLoad returns the summed footprint of a host's resident jobs.
func (c *Cluster) BatchLoad(host string) Footprint {
	var f Footprint
	for _, id := range c.resident[host] {
		f = f.Add(c.jobs[id].Footprint)
	}
	return f
}

// Load returns a host's total projected footprint: resident batch plus the
// pinned sensitive, if any.
func (c *Cluster) Load(host string) Footprint {
	f := c.BatchLoad(host)
	if s, ok := c.sensitives[host]; ok {
		f = f.Add(s.Footprint)
	}
	return f
}
