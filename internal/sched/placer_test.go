package sched

import (
	"testing"
)

// matchCluster is the two-sensitive matching scenario: hostA protects the
// memory-bandwidth-sensitive stream, hostB the network-sensitive edge
// cache. Each host can fit both jobs; only the scorer decides who goes
// where.
func matchCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster([]Host{
		{ID: "hostA", CPU: 800, MemoryMB: 8192},
		{ID: "hostB", CPU: 800, MemoryMB: 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PinSensitive(*vlcHDSensitive("hostA")); err != nil {
		t.Fatal(err)
	}
	if err := c.PinSensitive(*cdnEdgeSensitive("hostB")); err != nil {
		t.Fatal(err)
	}
	return c
}

func mapPlacer(t *testing.T, migrateThreshold float64) *Placer {
	t.Helper()
	ms, err := NewMapScorer(testTemplates())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlacer(PlacerConfig{Scorer: ms, MigrateThreshold: migrateThreshold})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlacerMatchesJobsToCompatibleSensitives(t *testing.T) {
	c := matchCluster(t)
	p := mapPlacer(t, 0)

	decisions, err := p.PlaceAll(c, []BatchJob{memBombJob("mem"), netHogJob("net")})
	if err != nil {
		t.Fatal(err)
	}
	if decisions[0].Host != "hostB" {
		t.Fatalf("membomb placed on %q, want hostB (cdn tolerates memory pressure)", decisions[0].Host)
	}
	if decisions[1].Host != "hostA" {
		t.Fatalf("nethog placed on %q, want hostA (stream tolerates network pressure)", decisions[1].Host)
	}
	for _, d := range decisions {
		if d.Forced {
			t.Fatalf("decision %+v forced despite feasible hosts", d)
		}
		if len(d.Ranking) != 2 {
			t.Fatalf("ranking has %d entries", len(d.Ranking))
		}
	}
}

func TestPlacerDeterministicAcrossRuns(t *testing.T) {
	jobs := []BatchJob{memBombJob("m1"), netHogJob("n1"), memBombJob("m2"), netHogJob("n2")}
	var first []Decision
	for run := 0; run < 3; run++ {
		c := matchCluster(t)
		p := mapPlacer(t, 0)
		ds, err := p.PlaceAll(c, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = ds
			continue
		}
		for i := range ds {
			if ds[i].Host != first[i].Host || ds[i].Score != first[i].Score {
				t.Fatalf("run %d decision %d = %+v, first run %+v", run, i, ds[i], first[i])
			}
		}
	}
}

func TestPlacerForcedOvercommit(t *testing.T) {
	c, err := NewCluster([]Host{
		{ID: "small", CPU: 100, MemoryMB: 512},
		{ID: "smaller", CPU: 80, MemoryMB: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlacer(PlacerConfig{Scorer: NewPackScorer()})
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Place(c, BatchJob{ID: "big", Footprint: Footprint{CPU: 300, MemoryMB: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Forced {
		t.Fatal("infeasible placement not marked forced")
	}
	// Least projected load fraction: 300/100 = 3 on "small", 300/80 = 3.75
	// on "smaller".
	if d.Host != "small" {
		t.Fatalf("forced placement on %q, want least-loaded small", d.Host)
	}
	if _, ok := c.HostOf("big"); !ok {
		t.Fatal("forced job not recorded in cluster")
	}
}

func TestPlacerUnscorableRanksLast(t *testing.T) {
	// Sensitive without a learned map on one host: that host must rank
	// after a scored host even though both are feasible.
	c, err := NewCluster([]Host{
		{ID: "mapped", CPU: 800, MemoryMB: 8192},
		{ID: "unmapped", CPU: 800, MemoryMB: 8192},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PinSensitive(*vlcHDSensitive("mapped")); err != nil {
		t.Fatal(err)
	}
	if err := c.PinSensitive(SensitiveApp{Name: "mystery", Host: "unmapped", Footprint: Footprint{CPU: 100}}); err != nil {
		t.Fatal(err)
	}
	p := mapPlacer(t, 0)
	// Even the membomb — near-certain violation next to vlc-hd — beats an
	// unscorable host: a known risk is preferred over an unknown one.
	d, err := p.Place(c, memBombJob("m"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Host != "mapped" {
		t.Fatalf("placed on %q, want mapped", d.Host)
	}
	last := d.Ranking[len(d.Ranking)-1]
	if !last.Unscorable || last.Host != "unmapped" {
		t.Fatalf("ranking tail = %+v, want unscorable unmapped", last)
	}
}

func TestRebalanceMovesJobOffRiskyHost(t *testing.T) {
	c := matchCluster(t)
	p := mapPlacer(t, 0.5)

	// Force the bad assignment placement would have avoided: memory bomb
	// next to the memory-bandwidth-sensitive stream.
	if err := c.Assign(memBombJob("mem"), "hostA"); err != nil {
		t.Fatal(err)
	}
	risk, err := p.HostRisk(c, "hostA")
	if err != nil {
		t.Fatal(err)
	}
	if risk < 0.5 {
		t.Fatalf("HostRisk = %v, want above migrate threshold", risk)
	}

	moves, err := p.Rebalance(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 {
		t.Fatalf("moves = %+v, want exactly one", moves)
	}
	m := moves[0]
	if m.Job != "mem" || m.From != "hostA" || m.To != "hostB" {
		t.Fatalf("move = %+v", m)
	}
	if m.JobScore >= m.HostRisk {
		t.Fatalf("migration did not reduce risk: %+v", m)
	}
	if h, _ := c.HostOf("mem"); h != "hostB" {
		t.Fatalf("bookkeeping not updated, job on %q", h)
	}

	// Second pass: nothing left to move.
	moves, err = p.Rebalance(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("second rebalance moved %+v", moves)
	}
}

func TestRebalanceDisabledByZeroThreshold(t *testing.T) {
	c := matchCluster(t)
	p := mapPlacer(t, 0)
	if err := c.Assign(memBombJob("mem"), "hostA"); err != nil {
		t.Fatal(err)
	}
	moves, err := p.Rebalance(c)
	if err != nil || moves != nil {
		t.Fatalf("Rebalance = %v, %v; want nil, nil", moves, err)
	}
}

func TestRebalanceRespectsMargin(t *testing.T) {
	// With a margin larger than any possible improvement, nothing moves.
	ms, err := NewMapScorer(testTemplates())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlacer(PlacerConfig{Scorer: ms, MigrateThreshold: 0.5, MigrateMargin: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := matchCluster(t)
	if err := c.Assign(memBombJob("mem"), "hostA"); err != nil {
		t.Fatal(err)
	}
	moves, err := p.Rebalance(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("margin ignored: %+v", moves)
	}
}

func TestNewPlacerValidates(t *testing.T) {
	if _, err := NewPlacer(PlacerConfig{}); err == nil {
		t.Fatal("nil scorer accepted")
	}
	if _, err := NewPlacer(PlacerConfig{Scorer: NewPackScorer(), MigrateThreshold: 1.5}); err == nil {
		t.Fatal("out-of-range threshold accepted")
	}
	if _, err := NewPlacer(PlacerConfig{Scorer: NewPackScorer(), MigrateMargin: -1}); err == nil {
		t.Fatal("negative margin accepted")
	}
}
