package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/statespace"
)

// recordingSink captures every pushed template and can be scripted to fail.
type recordingSink struct {
	pushes []*statespace.Template
	fail   error
}

func (rs *recordingSink) PushTemplate(t *statespace.Template) error {
	if rs.fail != nil {
		return rs.fail
	}
	rs.pushes = append(rs.pushes, t)
	return nil
}

// runWithSink drives a server over the ramp scenario with the given sink
// and cadence, synchronising each tick on OnEvent completion.
func runWithSink(t *testing.T, sink TemplateSink, every int) *Server {
	t.Helper()
	env := &fakeEnv{script: rampScenario()}
	s := newServerFixture(t, env)
	s.Sink = sink
	s.SyncEvery = every
	done := make(chan struct{})
	s.OnEvent = func(Event) { done <- struct{}{} }
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(env.script); i++ {
		ticks <- time.Time{}
		<-done
	}
	close(ticks)
	s.Wait()
	return s
}

func TestServerPushesTemplateOnCadence(t *testing.T) {
	sink := &recordingSink{}
	s := runWithSink(t, sink, 10)

	// 28 scripted periods with SyncEvery=10: pushes at 10, 20, and the
	// final flush on loop exit.
	if len(sink.pushes) != 3 {
		t.Fatalf("pushes = %d, want 3 (two periodic + final)", len(sink.pushes))
	}
	for i, tpl := range sink.pushes {
		if tpl.SensitiveApp != "web" || len(tpl.States) == 0 {
			t.Errorf("push %d: app %q states %d", i, tpl.SensitiveApp, len(tpl.States))
		}
		if err := tpl.Validate(); err != nil {
			t.Errorf("push %d invalid: %v", i, err)
		}
	}
	syncs, failures, lastErr := s.SyncStatus()
	if syncs != 3 || failures != 0 || lastErr != nil {
		t.Errorf("sync status = %d/%d/%v, want 3/0/nil", syncs, failures, lastErr)
	}
}

func TestServerToleratesSinkFailures(t *testing.T) {
	boom := errors.New("registry down")
	sink := &recordingSink{fail: boom}
	s := runWithSink(t, sink, 5)

	// Every push failed, yet the loop ran the full script.
	_, periods, err := s.Snapshot()
	if err != nil || periods != len(rampScenario()) {
		t.Fatalf("periods = %d err = %v; sink failures must not stop the loop", periods, err)
	}
	syncs, failures, lastErr := s.SyncStatus()
	if syncs != 0 || failures == 0 || !errors.Is(lastErr, boom) {
		t.Errorf("sync status = %d/%d/%v, want 0 syncs and the sink error", syncs, failures, lastErr)
	}
}

func TestServerSkipsFinalPushWhileMapEmpty(t *testing.T) {
	// The loop exits before any period runs: the final flush finds an
	// empty space and must not push a stateless template.
	sink := &recordingSink{}
	s := newServerFixture(t, &fakeEnv{})
	s.Sink = sink
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	close(ticks)
	s.Wait()
	if len(sink.pushes) != 0 {
		t.Errorf("pushed %d empty templates", len(sink.pushes))
	}
	if syncs, failures, _ := s.SyncStatus(); syncs != 0 || failures != 0 {
		t.Errorf("sync status = %d/%d for an empty map", syncs, failures)
	}
}

func TestServerSyncEveryDefaultsWithSink(t *testing.T) {
	s := newServerFixture(t, &fakeEnv{})
	s.Sink = &recordingSink{}
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	if s.SyncEvery != 30 {
		t.Errorf("SyncEvery = %d, want default 30", s.SyncEvery)
	}
	close(ticks)
	s.Wait()
}

func TestServerBootstrap(t *testing.T) {
	// Learn a map on a "first host" runtime, then bootstrap a fresh
	// server from its exported template — the fleet pull-on-start path.
	donor, _ := newTestRuntime(t, baseConfig(), &fakeEnv{script: rampScenario()})
	for range rampScenario() {
		if _, err := donor.Period(); err != nil {
			t.Fatal(err)
		}
	}
	tpl := donor.ExportTemplate("web")
	if len(tpl.States) == 0 {
		t.Fatal("donor learned nothing")
	}

	env := &fakeEnv{script: rampScenario()}
	s := newServerFixture(t, env)
	if err := s.Bootstrap(tpl); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}

	// Schema mismatch is rejected before the loop ever runs.
	bad := &statespace.Template{Version: 2, SensitiveApp: "web", Dim: 1,
		SchemaVMs:     []string{"web"},
		SchemaMetrics: []metrics.Metric{metrics.MetricCPU},
		States:        []statespace.TemplateState{{Vector: []float64{0.5}, Label: statespace.Safe.String(), Weight: 1}},
		Ranges:        testRanges(),
	}
	if err := s.Bootstrap(bad); err == nil {
		t.Error("mismatched template accepted")
	}

	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	if err := s.Bootstrap(tpl); err == nil {
		t.Error("bootstrap after start accepted")
	}
	close(ticks)
	s.Wait()
}
