package core

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/statespace"
	"repro/internal/throttle"
)

// Failure injection: the runtime must surface actuator and environment
// faults as errors instead of silently corrupting its state.

func TestPeriodSurfacesActuatorPauseFailure(t *testing.T) {
	env := &fakeEnv{script: rampScenario()}
	act := throttle.NewRecordingActuator()
	r, err := New(baseConfig(), env, act)
	if err != nil {
		t.Fatal(err)
	}
	act.FailPause = errors.New("cgroup freezer unavailable")
	var sawErr bool
	for i := 0; i < len(env.script); i++ {
		if _, err := r.Period(); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("pause failure never surfaced")
	}
	if r.Throttled() {
		t.Error("controller believes batch is throttled despite pause failure")
	}
}

func TestPeriodSurfacesActuatorResumeFailure(t *testing.T) {
	env := &fakeEnv{script: rampScenario()}
	act := throttle.NewRecordingActuator()
	r, err := New(baseConfig(), env, act)
	if err != nil {
		t.Fatal(err)
	}
	// Run until the first pause happens, then make resumes fail.
	paused := false
	for i := 0; i < len(env.script) && !paused; i++ {
		ev, err := r.Period()
		if err != nil {
			t.Fatal(err)
		}
		paused = ev.Action == throttle.ActionPause
	}
	if !paused {
		t.Fatal("scenario never paused")
	}
	act.FailResume = errors.New("process gone")
	var sawErr bool
	for i := 0; i < 200; i++ {
		if _, err := r.Period(); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("resume failure never surfaced")
	}
}

// badEnv reports a sample for a VM the schema does not know.
type badEnv struct{ fakeEnv }

func (b *badEnv) Collect() []metrics.Sample {
	return []metrics.Sample{metrics.NewSample("intruder", map[metrics.Metric]float64{metrics.MetricCPU: 1})}
}

func TestPeriodRejectsUnknownVM(t *testing.T) {
	// A sample for a container the runtime is not configured for means the
	// deployment wiring is wrong: fail loudly.
	cfg := baseConfig()
	cfg.BatchIDs = nil // "intruder" matches neither sensitive nor batch
	r, _ := newTestRuntime(t, cfg, &badEnv{})
	if _, err := r.Period(); err == nil {
		t.Error("unknown VM should surface an error")
	}
}

func TestImportTemplateRejectsCollapsingStates(t *testing.T) {
	// Template states closer than DedupEpsilon would merge and skew
	// state indices — the import must refuse.
	tpl := &statespace.Template{
		Version: 1,
		Dim:     2,
		States: []statespace.TemplateState{
			{X: 0, Y: 0, Label: "safe", Vector: []float64{0.5, 0.5}},
			{X: 1, Y: 1, Label: "safe", Vector: []float64{0.5001, 0.5001}},
		},
	}
	env := &fakeEnv{script: []envStep{{sensitiveCPU: 10, sensRunning: true}}}
	r, _ := newTestRuntime(t, baseConfig(), env)
	if err := r.ImportTemplate(tpl); err == nil {
		t.Error("collapsing template should be rejected")
	}
}

func TestRuntimeRecoversAfterTransientActuatorFailure(t *testing.T) {
	// After a failed pause the controller is not throttled; once the
	// actuator heals, the next dangerous period pauses again.
	env := &fakeEnv{script: rampScenario()}
	act := throttle.NewRecordingActuator()
	r, err := New(baseConfig(), env, act)
	if err != nil {
		t.Fatal(err)
	}
	act.FailPause = errors.New("transient")
	var failedAt = -1
	for i := 0; i < len(env.script); i++ {
		if _, err := r.Period(); err != nil {
			failedAt = i
			break
		}
	}
	if failedAt < 0 {
		t.Fatal("no failure observed")
	}
	act.FailPause = nil
	var pausedLater bool
	for i := failedAt; i < len(env.script); i++ {
		ev, err := r.Period()
		if err != nil {
			t.Fatalf("period after heal: %v", err)
		}
		if ev.Action == throttle.ActionPause {
			pausedLater = true
			break
		}
	}
	if !pausedLater {
		t.Error("runtime never paused after the actuator healed")
	}
}

func TestSingleModelConfigWiring(t *testing.T) {
	cfg := baseConfig()
	cfg.SingleModel = true
	env := &fakeEnv{script: rampScenario()}
	r, _ := newTestRuntime(t, cfg, env)
	for range env.script {
		if _, err := r.Period(); err != nil {
			t.Fatal(err)
		}
	}
	// With a single model, all steps land in one shared model.
	m, err := r.Models().ModelFor(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() == 0 {
		t.Error("shared model collected no steps")
	}
}

func TestRangePolicyWiring(t *testing.T) {
	// A huge fixed radius must make the runtime dramatically more
	// trigger-happy than the Rayleigh default.
	run := func(policy statespace.RangePolicy) int {
		cfg := baseConfig()
		cfg.RangePolicy = policy
		env := &fakeEnv{script: rampScenario()}
		r, _ := newTestRuntime(t, cfg, env)
		for range env.script {
			if _, err := r.Period(); err != nil {
				t.Fatal(err)
			}
		}
		return r.Report().PredictedViolations
	}
	rayleigh := run(nil)
	huge := run(func(d, c float64) float64 { return 100 })
	if huge <= rayleigh {
		t.Errorf("huge fixed radius predicted %d ≤ rayleigh %d", huge, rayleigh)
	}
}
