package core

import (
	"repro/internal/mds"
	"repro/internal/trajectory"
)

// modelStage is the default Modeler: §3.2.3 execution-mode detection plus
// per-mode trajectory learning. It owns the per-mode step histograms and
// the previous-coordinate memory that turns positions into steps.
type modelStage struct {
	models *trajectory.ModeModels

	havePrev  bool
	prevCoord mds.Coord
	prevMode  trajectory.Mode
}

var _ Modeler = (*modelStage)(nil)

// newModelStage builds the per-mode (or single-model, for the ablation)
// trajectory models.
func newModelStage(cfg Config) (*modelStage, error) {
	var models *trajectory.ModeModels
	var err error
	if cfg.SingleModel {
		models, err = trajectory.NewSingleModel(cfg.Trajectory)
	} else {
		models, err = trajectory.NewModeModels(cfg.Trajectory)
	}
	if err != nil {
		return nil, err
	}
	return &modelStage{models: models}, nil
}

// Observe implements Modeler.
func (s *modelStage) Observe(in PeriodInput, coord mds.Coord) (ModelOutcome, error) {
	mode := trajectory.DetectMode(in.SensitiveRunning, in.BatchRunning)
	out := ModelOutcome{Mode: mode}
	if s.havePrev && s.prevMode == mode {
		step := trajectory.StepBetween(s.prevCoord, coord)
		if err := s.models.Observe(mode, step); err != nil {
			return out, err
		}
		if mode == trajectory.ModeSensitiveOnly {
			out.SensitiveStep = step.Distance
		}
	}
	s.havePrev = true
	s.prevCoord = coord
	s.prevMode = mode
	return out, nil
}

// Models exposes the per-mode trajectory models for figure generation and
// checkpointing.
func (s *modelStage) Models() *trajectory.ModeModels { return s.models }
