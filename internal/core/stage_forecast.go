package core

import (
	"math/rand"

	"repro/internal/mds"
	"repro/internal/predictor"
	"repro/internal/statespace"
	"repro/internal/trajectory"
)

// forecastStage is the default Forecaster: §3.2 candidate sampling over
// the trajectory models plus the violation-range vote. It owns the
// prediction-accuracy tracker.
type forecastStage struct {
	pred    *predictor.Predictor
	tracker predictor.Tracker
}

var _ Forecaster = (*forecastStage)(nil)

// newForecastStage builds the predictor over the given trajectory models.
func newForecastStage(cfg Config, models *trajectory.ModeModels, rng *rand.Rand) (*forecastStage, error) {
	pred, err := predictor.New(cfg.Predictor, models, rng)
	if err != nil {
		return nil, err
	}
	return &forecastStage{pred: pred}, nil
}

// Forecast implements Forecaster.
func (s *forecastStage) Forecast(space *statespace.Space, mode trajectory.Mode, coord mds.Coord) (ForecastOutcome, error) {
	decision, err := s.pred.Predict(space, mode, coord)
	if err != nil {
		return ForecastOutcome{}, err
	}
	// Severity is how close to unanimous the trajectory vote was — the
	// violation-proximity signal graded throttling scales its quota by.
	severity := 0.0
	if len(decision.Candidates) > 0 {
		severity = float64(decision.Hits) / float64(len(decision.Candidates))
	}
	return ForecastOutcome{WillViolate: decision.WillViolate, Severity: severity}, nil
}

// Score implements Forecaster.
func (s *forecastStage) Score(predicted, actual bool) {
	s.tracker.Record(predicted, actual)
}

// Tracker exposes the raw prediction-accuracy tracker.
func (s *forecastStage) Tracker() *predictor.Tracker { return &s.tracker }
