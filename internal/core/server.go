package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/statespace"
)

// TemplateSink receives periodic snapshots of the learned map. It is how
// the runtime feeds the fleet control plane (§6 across hosts): the fleet
// syncer implements it, pushing each snapshot to the template registry.
// Sink errors are recorded but never stop the control loop — losing the
// registry must not cost the host its protection.
type TemplateSink interface {
	PushTemplate(t *statespace.Template) error
}

// Server drives a Runtime from its own goroutine on a periodic tick,
// exposing thread-safe snapshots. The Runtime itself is single-threaded by
// design (one Mapping→Prediction→Action loop per host); the Server owns
// that loop and is the safe surface for daemons to query concurrently.
type Server struct {
	rt *Runtime

	// OnEvent, when non-nil, is invoked after every period from the loop
	// goroutine (set before Start).
	OnEvent func(Event)
	// OnError, when non-nil, receives period errors; returning false stops
	// the loop. Nil means errors stop the loop.
	OnError func(error) bool
	// Sink, when non-nil, receives the exported template every SyncEvery
	// periods and once more when the loop exits (set before Start). Push
	// failures are recorded (SyncStatus) and the loop continues on its
	// local map — graceful degradation when the registry is unreachable.
	Sink TemplateSink
	// SyncEvery is the push cadence in periods; defaults to 30 when a
	// Sink is set.
	SyncEvery int
	// FailSafe, when non-nil, replaces the default emergency release run
	// when the loop exits for ANY reason — context cancellation, tick
	// channel closure, a fatal period error, or a panic in the runtime.
	// The default releases every throttle (Runtime.Release), so a dying
	// control loop can never leave batch cgroups frozen. It runs in the
	// loop goroutine before Wait unblocks (set before Start).
	FailSafe func() error
	// Watchdog, when non-nil, is beaten once per completed period and run
	// (Run) alongside the loop, detecting stalls the loop itself cannot
	// observe — e.g. the collector blocked on a hung cgroupfs read (set
	// before Start).
	Watchdog *resilience.Watchdog
	// CheckpointPath, when non-empty, makes the loop write an atomic
	// learned-state checkpoint (Runtime.Checkpoint) every CheckpointEvery
	// periods and once more on exit. CheckpointEvery defaults to 30.
	// Write failures are recorded (Health) and never stop the loop.
	CheckpointPath  string
	CheckpointEvery int

	mu          sync.Mutex
	started     bool
	stopped     chan struct{}
	lastEv      Event
	lastErr     error
	periods     int
	syncs       int
	syncFails   int
	syncErr     error
	panicked    bool
	failSafeRan bool
	failSafeErr error
	checkpoints int
	ckErr       error
	offered     []*statespace.Template
	merges      int
	mergeFails  int
	mergeErr    error
	mergeStats  MergeStats
}

// NewServer wraps a runtime. The runtime must not be driven by anyone else
// once the server starts.
func NewServer(rt *Runtime) (*Server, error) {
	if rt == nil {
		return nil, fmt.Errorf("core: nil runtime")
	}
	return &Server{rt: rt}, nil
}

// Start launches the loop, executing one Period per tick delivered by
// ticks. The loop exits when ctx is done, ticks closes, or a period error
// occurs with no OnError handler (or one that returns false). Start
// returns immediately; Wait blocks until the loop exits.
//
// ticks is a channel rather than a duration so callers choose their clock:
// time.Tick for production, a hand-driven channel in tests.
func (s *Server) Start(ctx context.Context, ticks <-chan time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("core: server already started")
	}
	if ticks == nil {
		return fmt.Errorf("core: nil tick channel")
	}
	s.started = true
	s.stopped = make(chan struct{})
	if s.Sink != nil && s.SyncEvery <= 0 {
		s.SyncEvery = 30
	}
	if s.CheckpointPath != "" && s.CheckpointEvery <= 0 {
		s.CheckpointEvery = 30
	}
	if s.Watchdog != nil {
		go s.Watchdog.Run(ctx)
	}
	go s.loop(ctx, ticks)
	return nil
}

// Bootstrap seeds the runtime with a fleet template (pull-on-start). It
// must be called before Start; the template's schema must match the
// runtime's.
func (s *Server) Bootstrap(t *statespace.Template) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("core: bootstrap after start")
	}
	return s.rt.ImportTemplate(t)
}

// OfferTemplate queues a fleet template (or delta patch) for adoption at
// the next period boundary — the thread-safe entry point for a streaming
// syncer goroutine. The runtime itself is only ever touched from the loop
// goroutine; offers made after the loop exits are dropped. Merge outcomes
// surface through MergeStatus.
func (s *Server) OfferTemplate(t *statespace.Template) error {
	if t == nil {
		return fmt.Errorf("core: nil template offered")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offered = append(s.offered, t)
	return nil
}

// applyOffered drains queued fleet templates into the runtime, from the
// loop goroutine, between periods. Merge failures are recorded and do not
// stop the loop: a bad fleet patch must not cost the host its protection.
func (s *Server) applyOffered() {
	s.mu.Lock()
	offered := s.offered
	s.offered = nil
	s.mu.Unlock()
	for _, t := range offered {
		stats, err := s.rt.MergeTemplate(t)
		s.mu.Lock()
		if err != nil {
			s.mergeFails++
			s.mergeErr = err
		} else {
			s.merges++
			s.mergeErr = nil
			s.mergeStats.Added += stats.Added
			s.mergeStats.Upgraded += stats.Upgraded
			s.mergeStats.Matched += stats.Matched
		}
		s.mu.Unlock()
	}
}

// MergeStatus reports streamed-template adoption: successful and failed
// merges, cumulative merge stats, and the most recent failure (nil after
// a success).
func (s *Server) MergeStatus() (merges, failures int, stats MergeStats, lastErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.merges, s.mergeFails, s.mergeStats, s.mergeErr
}

func (s *Server) loop(ctx context.Context, ticks <-chan time.Time) {
	// The exit path runs strictly before Wait unblocks, in this order:
	// absorb a runtime panic (recording it as the last error), run the
	// emergency fail-safe so no batch workload outlives the loop frozen,
	// write a final checkpoint, then release waiters. The fail-safe runs
	// on EVERY exit — cancellation, tick closure, fatal error, panic —
	// because each of them would otherwise strand the actuator state.
	defer close(s.stopped)
	defer s.finalCheckpoint()
	defer s.runFailSafe()
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.panicked = true
			s.lastErr = fmt.Errorf("core: control loop panic: %v", r)
			s.mu.Unlock()
		}
	}()
	// Sink and SyncEvery are fixed at Start (documented), so the loop may
	// read them without the mutex.
	sink, syncEvery := s.Sink, s.SyncEvery
	if sink != nil {
		// Share what was learned even when the loop exits between sync
		// points — the last periods before shutdown often hold the
		// freshest violation states.
		defer s.pushTemplate(sink)
	}
	for {
		select {
		case <-ctx.Done():
			return
		case _, ok := <-ticks:
			if !ok {
				return
			}
			s.applyOffered()
			ev, err := s.rt.Period()
			if s.Watchdog != nil {
				s.Watchdog.Beat()
			}
			s.mu.Lock()
			if err != nil {
				s.lastErr = err
			} else {
				s.lastEv = ev
				s.periods++
			}
			periods := s.periods
			onEvent, onError := s.OnEvent, s.OnError
			s.mu.Unlock()
			if err != nil {
				if onError == nil || !onError(err) {
					return
				}
				continue
			}
			if onEvent != nil {
				onEvent(ev)
			}
			if sink != nil && periods%syncEvery == 0 {
				s.pushTemplate(sink)
			}
			if s.CheckpointPath != "" && periods%s.CheckpointEvery == 0 {
				s.writeCheckpoint()
			}
		}
	}
}

// runFailSafe executes the emergency release exactly once, from the loop
// goroutine's exit path.
func (s *Server) runFailSafe() {
	fs := s.FailSafe
	if fs == nil {
		fs = s.rt.Release
	}
	err := fs()
	s.mu.Lock()
	s.failSafeRan = true
	s.failSafeErr = err
	s.mu.Unlock()
}

// writeCheckpoint snapshots the runtime's learned state to disk
// atomically, recording the outcome. Called from the loop goroutine only.
func (s *Server) writeCheckpoint() {
	if s.rt.Space().Len() == 0 {
		return
	}
	err := resilience.SaveCheckpoint(s.CheckpointPath, s.rt.Checkpoint())
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.ckErr = err
		return
	}
	s.checkpoints++
	s.ckErr = nil
}

// finalCheckpoint preserves the freshest learned state on exit. It is
// skipped after a panic: the runtime's invariants cannot be trusted
// mid-period, and a checkpoint of corrupt state is worse than an old one.
func (s *Server) finalCheckpoint() {
	if s.CheckpointPath == "" {
		return
	}
	s.mu.Lock()
	panicked := s.panicked
	s.mu.Unlock()
	if panicked {
		return
	}
	s.writeCheckpoint()
}

// pushTemplate exports the current map into the sink from the loop
// goroutine (the only goroutine allowed to touch the runtime while it
// runs) and records the outcome.
func (s *Server) pushTemplate(sink TemplateSink) {
	if s.rt.Space().Len() == 0 {
		return
	}
	err := sink.PushTemplate(s.rt.ExportTemplate(s.rt.SensitiveApp()))
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.syncFails++
		s.syncErr = err
		return
	}
	s.syncs++
	s.syncErr = nil
}

// SyncStatus reports template-push outcomes: successful and failed pushes
// and the error from the most recent failure (nil after a success —
// degraded mode has healed).
func (s *Server) SyncStatus() (syncs, failures int, lastErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs, s.syncFails, s.syncErr
}

// Wait blocks until the loop has exited (after ctx cancellation, tick
// channel closure, or a fatal error). Calling Wait before Start returns
// immediately.
func (s *Server) Wait() {
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped != nil {
		<-stopped
	}
}

// Snapshot returns the most recent event, the period count, and the last
// error, race-free.
func (s *Server) Snapshot() (last Event, periods int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastEv, s.periods, s.lastErr
}

// Health describes the server's failure-handling state, for operators and
// the daemon's status surface.
type Health struct {
	// Panicked reports whether the control loop died to a runtime panic
	// (absorbed; the fail-safe still ran).
	Panicked bool
	// FailSafeRan reports whether the emergency release has executed, and
	// FailSafeErr its outcome (nil = everything thawed).
	FailSafeRan bool
	FailSafeErr error
	// WatchdogStalled / WatchdogStalls report loop-liveness: an ongoing
	// stall, and how many stall episodes have fired the watchdog action.
	WatchdogStalled bool
	WatchdogStalls  int
	// QoSStale mirrors the most recent event's staleness condition: the
	// sensitive application's QoS signal has gone silent.
	QoSStale bool
	// Checkpoints counts successful learned-state snapshots;
	// CheckpointErr is the most recent write failure (nil after success).
	Checkpoints   int
	CheckpointErr error
}

// Health returns the server's failure-handling status, race-free.
func (s *Server) Health() Health {
	s.mu.Lock()
	h := Health{
		Panicked:      s.panicked,
		FailSafeRan:   s.failSafeRan,
		FailSafeErr:   s.failSafeErr,
		QoSStale:      s.lastEv.QoSStale,
		Checkpoints:   s.checkpoints,
		CheckpointErr: s.ckErr,
	}
	s.mu.Unlock()
	if s.Watchdog != nil {
		stalled, stalls, _, _ := s.Watchdog.Status()
		h.WatchdogStalled = stalled
		h.WatchdogStalls = stalls
	}
	return h
}

// Report returns the runtime's aggregate report. It must only be called
// after the loop has exited (the runtime is not concurrency-safe while
// running); Wait first.
func (s *Server) Report() Report { return s.rt.Report() }
