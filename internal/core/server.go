package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/statespace"
)

// TemplateSink receives periodic snapshots of the learned map. It is how
// the runtime feeds the fleet control plane (§6 across hosts): the fleet
// syncer implements it, pushing each snapshot to the template registry.
// Sink errors are recorded but never stop the control loop — losing the
// registry must not cost the host its protection.
type TemplateSink interface {
	PushTemplate(t *statespace.Template) error
}

// Server drives a Runtime from its own goroutine on a periodic tick,
// exposing thread-safe snapshots. The Runtime itself is single-threaded by
// design (one Mapping→Prediction→Action loop per host); the Server owns
// that loop and is the safe surface for daemons to query concurrently.
type Server struct {
	rt *Runtime

	// OnEvent, when non-nil, is invoked after every period from the loop
	// goroutine (set before Start).
	OnEvent func(Event)
	// OnError, when non-nil, receives period errors; returning false stops
	// the loop. Nil means errors stop the loop.
	OnError func(error) bool
	// Sink, when non-nil, receives the exported template every SyncEvery
	// periods and once more when the loop exits (set before Start). Push
	// failures are recorded (SyncStatus) and the loop continues on its
	// local map — graceful degradation when the registry is unreachable.
	Sink TemplateSink
	// SyncEvery is the push cadence in periods; defaults to 30 when a
	// Sink is set.
	SyncEvery int

	mu        sync.Mutex
	started   bool
	stopped   chan struct{}
	lastEv    Event
	lastErr   error
	periods   int
	syncs     int
	syncFails int
	syncErr   error
}

// NewServer wraps a runtime. The runtime must not be driven by anyone else
// once the server starts.
func NewServer(rt *Runtime) (*Server, error) {
	if rt == nil {
		return nil, fmt.Errorf("core: nil runtime")
	}
	return &Server{rt: rt}, nil
}

// Start launches the loop, executing one Period per tick delivered by
// ticks. The loop exits when ctx is done, ticks closes, or a period error
// occurs with no OnError handler (or one that returns false). Start
// returns immediately; Wait blocks until the loop exits.
//
// ticks is a channel rather than a duration so callers choose their clock:
// time.Tick for production, a hand-driven channel in tests.
func (s *Server) Start(ctx context.Context, ticks <-chan time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("core: server already started")
	}
	if ticks == nil {
		return fmt.Errorf("core: nil tick channel")
	}
	s.started = true
	s.stopped = make(chan struct{})
	if s.Sink != nil && s.SyncEvery <= 0 {
		s.SyncEvery = 30
	}
	go s.loop(ctx, ticks)
	return nil
}

// Bootstrap seeds the runtime with a fleet template (pull-on-start). It
// must be called before Start; the template's schema must match the
// runtime's.
func (s *Server) Bootstrap(t *statespace.Template) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("core: bootstrap after start")
	}
	return s.rt.ImportTemplate(t)
}

func (s *Server) loop(ctx context.Context, ticks <-chan time.Time) {
	defer close(s.stopped)
	// Sink and SyncEvery are fixed at Start (documented), so the loop may
	// read them without the mutex.
	sink, syncEvery := s.Sink, s.SyncEvery
	if sink != nil {
		// Share what was learned even when the loop exits between sync
		// points — the last periods before shutdown often hold the
		// freshest violation states.
		defer s.pushTemplate(sink)
	}
	for {
		select {
		case <-ctx.Done():
			return
		case _, ok := <-ticks:
			if !ok {
				return
			}
			ev, err := s.rt.Period()
			s.mu.Lock()
			if err != nil {
				s.lastErr = err
			} else {
				s.lastEv = ev
				s.periods++
			}
			periods := s.periods
			onEvent, onError := s.OnEvent, s.OnError
			s.mu.Unlock()
			if err != nil {
				if onError == nil || !onError(err) {
					return
				}
				continue
			}
			if onEvent != nil {
				onEvent(ev)
			}
			if sink != nil && periods%syncEvery == 0 {
				s.pushTemplate(sink)
			}
		}
	}
}

// pushTemplate exports the current map into the sink from the loop
// goroutine (the only goroutine allowed to touch the runtime while it
// runs) and records the outcome.
func (s *Server) pushTemplate(sink TemplateSink) {
	if s.rt.Space().Len() == 0 {
		return
	}
	err := sink.PushTemplate(s.rt.ExportTemplate(s.rt.SensitiveApp()))
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.syncFails++
		s.syncErr = err
		return
	}
	s.syncs++
	s.syncErr = nil
}

// SyncStatus reports template-push outcomes: successful and failed pushes
// and the error from the most recent failure (nil after a success —
// degraded mode has healed).
func (s *Server) SyncStatus() (syncs, failures int, lastErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncs, s.syncFails, s.syncErr
}

// Wait blocks until the loop has exited (after ctx cancellation, tick
// channel closure, or a fatal error). Calling Wait before Start returns
// immediately.
func (s *Server) Wait() {
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped != nil {
		<-stopped
	}
}

// Snapshot returns the most recent event, the period count, and the last
// error, race-free.
func (s *Server) Snapshot() (last Event, periods int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastEv, s.periods, s.lastErr
}

// Report returns the runtime's aggregate report. It must only be called
// after the loop has exited (the runtime is not concurrency-safe while
// running); Wait first.
func (s *Server) Report() Report { return s.rt.Report() }
