package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Server drives a Runtime from its own goroutine on a periodic tick,
// exposing thread-safe snapshots. The Runtime itself is single-threaded by
// design (one Mapping→Prediction→Action loop per host); the Server owns
// that loop and is the safe surface for daemons to query concurrently.
type Server struct {
	rt *Runtime

	// OnEvent, when non-nil, is invoked after every period from the loop
	// goroutine (set before Start).
	OnEvent func(Event)
	// OnError, when non-nil, receives period errors; returning false stops
	// the loop. Nil means errors stop the loop.
	OnError func(error) bool

	mu      sync.Mutex
	started bool
	stopped chan struct{}
	lastEv  Event
	lastErr error
	periods int
}

// NewServer wraps a runtime. The runtime must not be driven by anyone else
// once the server starts.
func NewServer(rt *Runtime) (*Server, error) {
	if rt == nil {
		return nil, fmt.Errorf("core: nil runtime")
	}
	return &Server{rt: rt}, nil
}

// Start launches the loop, executing one Period per tick delivered by
// ticks. The loop exits when ctx is done, ticks closes, or a period error
// occurs with no OnError handler (or one that returns false). Start
// returns immediately; Wait blocks until the loop exits.
//
// ticks is a channel rather than a duration so callers choose their clock:
// time.Tick for production, a hand-driven channel in tests.
func (s *Server) Start(ctx context.Context, ticks <-chan time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("core: server already started")
	}
	if ticks == nil {
		return fmt.Errorf("core: nil tick channel")
	}
	s.started = true
	s.stopped = make(chan struct{})
	go s.loop(ctx, ticks)
	return nil
}

func (s *Server) loop(ctx context.Context, ticks <-chan time.Time) {
	defer close(s.stopped)
	for {
		select {
		case <-ctx.Done():
			return
		case _, ok := <-ticks:
			if !ok {
				return
			}
			ev, err := s.rt.Period()
			s.mu.Lock()
			if err != nil {
				s.lastErr = err
			} else {
				s.lastEv = ev
				s.periods++
			}
			onEvent, onError := s.OnEvent, s.OnError
			s.mu.Unlock()
			if err != nil {
				if onError == nil || !onError(err) {
					return
				}
				continue
			}
			if onEvent != nil {
				onEvent(ev)
			}
		}
	}
}

// Wait blocks until the loop has exited (after ctx cancellation, tick
// channel closure, or a fatal error). Calling Wait before Start returns
// immediately.
func (s *Server) Wait() {
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped != nil {
		<-stopped
	}
}

// Snapshot returns the most recent event, the period count, and the last
// error, race-free.
func (s *Server) Snapshot() (last Event, periods int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastEv, s.periods, s.lastErr
}

// Report returns the runtime's aggregate report. It must only be called
// after the loop has exited (the runtime is not concurrency-safe while
// running); Wait first.
func (s *Server) Report() Report { return s.rt.Report() }
