package core

import (
	"fmt"

	"repro/internal/mds"
	"repro/internal/statespace"
)

// Mid-run fleet merge: the apply side of the streaming control plane. A
// violation learned on another host arrives as a template patch (the
// changed states of the consensus map); the lane folds it into its live
// state space between periods — without restarting, without rescaling the
// map it is actively controlling from, and without ever touching the
// reducer and the space out of lockstep.

// MergeStats describes what one template merge did to the live map.
type MergeStats struct {
	// Added is fleet states adopted as new local states; Upgraded is
	// existing local states whose label the fleet escalated to violation;
	// Matched is incoming states that were already known (ε-close vector)
	// and needed no label change.
	Added, Upgraded, Matched int
}

// TemplateMerger is the optional Mapper capability behind Lane.MergeTemplate:
// fold a fleet template patch into the live map at the given period.
// mapStage implements it; custom mappers that don't are simply unable to
// consume the stream mid-run (Lane.MergeTemplate reports so).
type TemplateMerger interface {
	MergeTemplate(t *statespace.Template, period int) (MergeStats, error)
}

var _ TemplateMerger = (*mapStage)(nil)

// MergeTemplate implements TemplateMerger. The patch's vectors are
// rescaled from its normalization ranges into the lane's (values beyond
// the local range land above 1 — they describe loads this host has not
// seen, and still compare correctly), its coordinates Procrustes-aligned
// onto the live layout, and each state either folds into an ε-matching
// local state (upgrading its label when the fleet saw a violation there)
// or joins as a new state — registered with the reducer and the space in
// lockstep, preserving the state/representative index invariant.
func (m *mapStage) MergeTemplate(t *statespace.Template, period int) (MergeStats, error) {
	var out MergeStats
	if err := t.Validate(); err != nil {
		return out, err
	}
	if err := t.CompatibleWith(m.schema); err != nil {
		return out, fmt.Errorf("core: template merge: %w", err)
	}
	// The alignment ε doubles as the Procrustes correspondence radius; it
	// must be positive even when local dedup is disabled.
	alignEps := m.cfg.DedupEpsilon
	if alignEps <= 0 {
		alignEps = 0.05
	}
	base := statespace.Export(m.space, t.SensitiveApp, m.normalizer.Snapshot(), m.schema)
	aligned, err := statespace.AlignStates(base, t, alignEps)
	if err != nil {
		return out, fmt.Errorf("core: template merge: %w", err)
	}

	for _, in := range aligned {
		rep, isNew := m.reducer.Observe(in.Vector)
		if !isNew {
			out.Matched++
			if in.Label == statespace.Violation.String() {
				st, err := m.space.State(rep)
				if err != nil {
					return out, err
				}
				if st.Label != statespace.Violation {
					out.Upgraded++
				}
				if err := m.space.MarkViolation(rep); err != nil {
					return out, err
				}
			}
			continue
		}
		id := m.space.Add(mds.Coord{X: in.X, Y: in.Y}, in.Vector, period)
		if id != rep {
			return out, fmt.Errorf("core: state/representative index skew during merge: %d vs %d", id, rep)
		}
		out.Added++
		switch {
		case in.Label == statespace.Violation.String():
			if err := m.space.MarkViolation(id); err != nil {
				return out, err
			}
		case in.Unverified:
			if err := m.space.MarkUnverified(id); err != nil {
				return out, err
			}
		}
	}

	// A bulk adoption degrades incremental-placement quality the same way
	// a burst of organic new states would; let the periodic SMACOF refresh
	// fire on the same schedule.
	m.createdSinceSMAC += out.Added
	if m.cfg.RefreshEvery > 0 && m.createdSinceSMAC >= m.cfg.RefreshEvery && m.space.Len() >= 3 {
		if err := m.refreshEmbedding(); err != nil {
			return out, err
		}
		m.createdSinceSMAC = 0
	}
	return out, nil
}

// MergeTemplate folds a fleet template (or delta patch) into the lane's
// live map. Unlike ImportTemplate it is legal at any period: labels are
// sticky and merging only ever adds states or escalates labels, so the
// control loop's invariants survive. Callers invoke it between periods
// (the lane is single-threaded).
func (l *Lane) MergeTemplate(t *statespace.Template) (MergeStats, error) {
	mm, ok := l.mapper.(TemplateMerger)
	if !ok {
		return MergeStats{}, fmt.Errorf("core: mapper %T cannot merge templates mid-run", l.mapper)
	}
	return mm.MergeTemplate(t, l.period)
}

// MergeTemplate folds a fleet template into the runtime's live map; see
// Lane.MergeTemplate.
func (r *Runtime) MergeTemplate(t *statespace.Template) (MergeStats, error) {
	return r.lane.MergeTemplate(t)
}
