package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/throttle"
)

func newServerFixture(t *testing.T, env Environment) *Server {
	t.Helper()
	r, _ := newTestRuntime(t, baseConfig(), env)
	s, err := NewServer(r)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil runtime should error")
	}
}

func TestServerStartValidation(t *testing.T) {
	s := newServerFixture(t, &fakeEnv{})
	if err := s.Start(context.Background(), nil); err == nil {
		t.Error("nil tick channel should error")
	}
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(context.Background(), ticks); err == nil {
		t.Error("double start should error")
	}
	close(ticks)
	s.Wait()
}

func TestServerRunsPeriodsPerTick(t *testing.T) {
	env := &fakeEnv{script: rampScenario()}
	s := newServerFixture(t, env)
	var events []Event
	s.OnEvent = func(ev Event) { events = append(events, ev) }
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ticks <- time.Time{}
	}
	close(ticks)
	s.Wait()
	last, periods, err := s.Snapshot()
	if err != nil {
		t.Fatalf("snapshot err: %v", err)
	}
	if periods != 10 || len(events) != 10 {
		t.Errorf("periods=%d events=%d, want 10", periods, len(events))
	}
	if last.Period != 9 {
		t.Errorf("last period = %d", last.Period)
	}
	if s.Report().Periods != 10 {
		t.Errorf("report periods = %d", s.Report().Periods)
	}
}

func TestServerStopsOnContextCancel(t *testing.T) {
	s := newServerFixture(t, &fakeEnv{script: rampScenario()})
	ctx, cancel := context.WithCancel(context.Background())
	ticks := make(chan time.Time, 1)
	if err := s.Start(ctx, ticks); err != nil {
		t.Fatal(err)
	}
	cancel()
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("server did not stop on cancellation")
	}
}

func TestServerStopsOnFatalError(t *testing.T) {
	env := &fakeEnv{script: rampScenario()}
	act := throttle.NewRecordingActuator()
	act.FailPause = errors.New("boom")
	r, err := New(baseConfig(), env, act)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(r)
	if err != nil {
		t.Fatal(err)
	}
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	// Feed ticks until the loop dies on the pause failure.
	go func() {
		for i := 0; i < len(env.script); i++ {
			select {
			case ticks <- time.Time{}:
			case <-time.After(time.Second):
				return
			}
		}
	}()
	s.Wait()
	_, _, lastErr := s.Snapshot()
	if lastErr == nil {
		t.Error("fatal error not recorded")
	}
}

func TestServerOnErrorContinues(t *testing.T) {
	env := &fakeEnv{script: rampScenario()}
	act := throttle.NewRecordingActuator()
	r, err := New(baseConfig(), env, act)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(r)
	if err != nil {
		t.Fatal(err)
	}
	var errCount int
	s.OnError = func(error) bool {
		errCount++
		act.FailPause = nil // heal after first failure
		return true
	}
	act.FailPause = errors.New("transient")
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(env.script); i++ {
		ticks <- time.Time{}
	}
	close(ticks)
	s.Wait()
	if errCount == 0 {
		t.Error("OnError never invoked")
	}
	_, periods, _ := s.Snapshot()
	if periods == 0 {
		t.Error("no successful periods after healing")
	}
}

func TestServerWaitBeforeStart(t *testing.T) {
	s := newServerFixture(t, &fakeEnv{})
	done := make(chan struct{})
	go func() { s.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Wait before Start should return immediately")
	}
}
