package core

import (
	"repro/internal/resilience"
)

// Checkpoint captures everything the runtime has learned — the
// state-space template, the per-mode trajectory histograms, and the
// throttle controller's learned state — into one serializable snapshot.
// It is called from the control loop between periods (the runtime is
// single-threaded by design).
func (r *Runtime) Checkpoint() *resilience.Checkpoint { return r.lane.Checkpoint() }

// RestoreCheckpoint adopts a previously saved checkpoint: the template
// seeds the state space (exactly like ImportTemplate, with the same
// schema and dedup validation), the trajectory models take over the
// checkpointed histograms, and the controller recovers its learned β.
// It must be called before the first Period. Actuation state is NOT
// restored — recovery thaws everything first, and the controller comes
// back believing nothing is throttled, matching that reality.
//
// Any validation failure leaves the runtime unmodified or, at worst,
// with only the template imported — both safe starting points — and
// returns an error the caller should log before continuing cold.
func (r *Runtime) RestoreCheckpoint(c *resilience.Checkpoint) error {
	return r.lane.RestoreCheckpoint(c)
}

// Release lifts every throttle restriction — the emergency thaw-all used
// on loop exit, panic, and watchdog stall. It is conservative: it
// actuates even when the controller believes nothing is throttled,
// because after a fault that belief cannot be trusted. With actions
// disabled it is a no-op.
func (r *Runtime) Release() error { return r.lane.Release() }
