package core

import (
	"fmt"

	"repro/internal/resilience"
)

// Checkpoint captures everything the runtime has learned — the
// state-space template, the per-mode trajectory histograms, and the
// throttle controller's learned state — into one serializable snapshot.
// It is called from the control loop between periods (the runtime is
// single-threaded by design).
func (r *Runtime) Checkpoint() *resilience.Checkpoint {
	ctl := r.controller.Snapshot()
	return &resilience.Checkpoint{
		Version:    1,
		Periods:    r.period,
		Template:   r.ExportTemplate(r.cfg.SensitiveApp),
		Models:     r.models.Snapshot(),
		Controller: &ctl,
	}
}

// RestoreCheckpoint adopts a previously saved checkpoint: the template
// seeds the state space (exactly like ImportTemplate, with the same
// schema and dedup validation), the trajectory models take over the
// checkpointed histograms, and the controller recovers its learned β.
// It must be called before the first Period. Actuation state is NOT
// restored — recovery thaws everything first, and the controller comes
// back believing nothing is throttled, matching that reality.
//
// Any validation failure leaves the runtime unmodified or, at worst,
// with only the template imported — both safe starting points — and
// returns an error the caller should log before continuing cold.
func (r *Runtime) RestoreCheckpoint(c *resilience.Checkpoint) error {
	if c == nil {
		return fmt.Errorf("core: nil checkpoint")
	}
	if err := c.Validate(); err != nil {
		return err
	}
	if err := r.ImportTemplate(c.Template); err != nil {
		return fmt.Errorf("core: checkpoint template: %w", err)
	}
	if c.Models != nil {
		if err := r.models.Restore(c.Models); err != nil {
			return fmt.Errorf("core: checkpoint models: %w", err)
		}
	}
	if c.Controller != nil {
		if err := r.controller.Restore(*c.Controller); err != nil {
			return fmt.Errorf("core: checkpoint controller: %w", err)
		}
	}
	return nil
}

// Release lifts every throttle restriction — the emergency thaw-all used
// on loop exit, panic, and watchdog stall. It is conservative: it
// actuates even when the controller believes nothing is throttled,
// because after a fault that belief cannot be trusted. With actions
// disabled it is a no-op.
func (r *Runtime) Release() error {
	if r.cfg.DisableActions {
		return nil
	}
	return r.controller.Release()
}
