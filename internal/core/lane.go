package core

import (
	"fmt"
	"math/rand"

	"repro/internal/predictor"
	"repro/internal/resilience"
	"repro/internal/statespace"
	"repro/internal/throttle"
	"repro/internal/trajectory"
)

// Lane is one sensitive application's full protection pipeline: the four
// §3 stages plus everything they learn — state space, per-mode
// histograms, prediction tracker and the controller's β. A single-tenant
// Runtime wraps exactly one lane; a multi-tenant HostRuntime runs one
// lane per protected application over a shared batch pool, merging their
// throttle decisions through an actuation arbiter.
//
// A Lane is not safe for concurrent use: all methods are called from one
// periodic monitoring loop.
type Lane struct {
	cfg Config

	mapper     Mapper
	modeler    Modeler
	forecaster Forecaster
	actor      Actor

	// Concrete default stages, retained for state accessors (template
	// export, checkpointing, figures). Swapping a stage replaces pipeline
	// behaviour; the accessors keep reflecting the default components.
	ms *mapStage
	ts *modelStage
	fs *forecastStage
	as *actStage

	period int
	report Report
	events *eventLog
	// pendingPrediction holds last period's verdict so accuracy is scored
	// against this period's actual outcome.
	pendingPrediction bool
	havePending       bool
}

// NewLane assembles one lane from an already-defaulted, validated config
// and the actuator its throttle controller drives.
func NewLane(cfg Config, act throttle.Actuator) (*Lane, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if act == nil {
		return nil, fmt.Errorf("core: nil actuator")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ms, err := newMapStage(cfg, rng)
	if err != nil {
		return nil, err
	}
	ts, err := newModelStage(cfg)
	if err != nil {
		return nil, err
	}
	fs, err := newForecastStage(cfg, ts.Models(), rng)
	if err != nil {
		return nil, err
	}
	controller, err := throttle.New(cfg.Throttle, act, cfg.BatchIDs, rng)
	if err != nil {
		return nil, err
	}
	as := newActStage(controller, cfg.DisableActions)
	return &Lane{
		cfg:        cfg,
		mapper:     ms,
		modeler:    ts,
		forecaster: fs,
		actor:      as,
		ms:         ms,
		ts:         ts,
		fs:         fs,
		as:         as,
		events:     newEventLog(cfg.EventWindow),
	}, nil
}

// SetMapper swaps the mapping stage; must be called before the first
// period.
func (l *Lane) SetMapper(m Mapper) error { return l.setStage(func() { l.mapper = m }, m == nil) }

// SetModeler swaps the mode/trajectory stage; must be called before the
// first period.
func (l *Lane) SetModeler(m Modeler) error { return l.setStage(func() { l.modeler = m }, m == nil) }

// SetForecaster swaps the prediction stage; must be called before the
// first period.
func (l *Lane) SetForecaster(f Forecaster) error {
	return l.setStage(func() { l.forecaster = f }, f == nil)
}

// SetActor swaps the throttle-decision stage; must be called before the
// first period.
func (l *Lane) SetActor(a Actor) error { return l.setStage(func() { l.actor = a }, a == nil) }

func (l *Lane) setStage(assign func(), isNil bool) error {
	if isNil {
		return fmt.Errorf("core: nil stage")
	}
	if l.period != 0 {
		return fmt.Errorf("core: stage swap after %d periods", l.period)
	}
	assign()
	return nil
}

// App returns the fleet-wide application name this lane protects
// (Config.SensitiveApp, defaulted to SensitiveID).
func (l *Lane) App() string { return l.cfg.SensitiveApp }

// SensitiveID returns the lane's sensitive container ID.
func (l *Lane) SensitiveID() string { return l.cfg.SensitiveID }

// Period runs one Mapping → Prediction → Action cycle over the given
// input and returns the event describing it.
func (l *Lane) Period(in PeriodInput) (Event, error) {
	in.Period = l.period
	ev := Event{Period: l.period, App: l.cfg.SensitiveApp}

	// ---- Mapping (§3.1) ----
	mapped, err := l.mapper.Map(in)
	if err != nil {
		return ev, err
	}
	ev.StateID = mapped.StateID
	ev.NewState = mapped.NewState
	ev.Coord = mapped.Coord
	ev.Violation = in.Violation
	ev.QoSStale = mapped.Stale
	if in.Violation {
		l.report.Violations++
	}
	if mapped.Stale {
		l.report.QoSStalePeriods++
	}

	// ---- Execution mode & trajectory learning (§3.2.3) ----
	modeled, err := l.modeler.Observe(in, mapped.Coord)
	if err != nil {
		return ev, err
	}
	ev.Mode = modeled.Mode

	// ---- Prediction (§3.2) ----
	forecast, err := l.forecaster.Forecast(l.mapper.Space(), modeled.Mode, mapped.Coord)
	if err != nil {
		return ev, err
	}
	ev.Predicted = forecast.WillViolate
	ev.Severity = forecast.Severity
	if forecast.WillViolate {
		l.report.PredictedViolations++
	}

	// Score last period's prediction against this period's outcome.
	if l.havePending {
		l.forecaster.Score(l.pendingPrediction, in.Violation)
	}
	l.pendingPrediction = forecast.WillViolate
	l.havePending = true

	// ---- Action (§3.3) ----
	res, err := l.actor.Act(ActInput{
		Period:             l.period,
		PredictedViolation: forecast.WillViolate,
		ActualViolation:    in.Violation,
		Severity:           forecast.Severity,
		SensitiveStep:      modeled.SensitiveStep,
		BatchActive:        in.BatchActive,
	})
	if err != nil {
		return ev, err
	}
	ev.Action = res.Action
	ev.Throttled = res.Throttled
	ev.RandomResume = res.RandomResume
	ev.Beta = res.Beta
	ev.Level = res.Level
	switch res.Action {
	case throttle.ActionPause:
		l.report.Pauses++
	case throttle.ActionLimit:
		l.report.Limits++
	case throttle.ActionResume:
		l.report.Resumes++
		if res.RandomResume {
			l.report.RandomResumes++
		}
	}

	l.period++
	l.report.Periods++
	l.events.append(ev)
	return ev, nil
}

// Space exposes the learned state space (read-mostly; used by experiments
// and template export).
func (l *Lane) Space() *statespace.Space { return l.mapper.Space() }

// Models exposes the per-mode trajectory models for figure generation.
func (l *Lane) Models() *trajectory.ModeModels { return l.ts.Models() }

// Throttled reports whether this lane currently requests batch
// restriction.
func (l *Lane) Throttled() bool { return l.as.Controller().Throttled() }

// Beta returns the controller's learned resume threshold.
func (l *Lane) Beta() float64 { return l.as.Controller().Beta() }

// Level returns the batch CPU allowance this lane currently requests:
// 1 unlimited, 0 frozen, intermediate values are graded quotas.
func (l *Lane) Level() float64 { return l.as.Controller().Level() }

// Periods returns how many periods this lane has run.
func (l *Lane) Periods() int { return l.period }

// Events returns the retained per-period events (bounded by
// Config.EventWindow).
func (l *Lane) Events() []Event { return l.events.all() }

// EventsSince returns retained events with sequence >= seq and the
// sequence to pass on the next call — the daemon's incremental report
// drain. Events evicted from the window are skipped silently.
func (l *Lane) EventsSince(seq uint64) ([]Event, uint64) { return l.events.since(seq) }

// Report returns aggregate counters.
func (l *Lane) Report() Report {
	rep := l.report
	space := l.mapper.Space()
	rep.States = space.Len()
	rep.ViolationStates = len(space.ViolationIDs())
	rep.UnverifiedStates = len(space.UnverifiedIDs())
	rep.Refreshes = l.ms.refreshes
	rep.LastStress = l.ms.stress
	tracker := l.fs.Tracker()
	rep.Accuracy = tracker.Accuracy()
	rep.Precision = tracker.Precision()
	rep.Recall = tracker.Recall()
	return rep
}

// Tracker exposes the raw prediction-accuracy tracker.
func (l *Lane) Tracker() *predictor.Tracker { return l.fs.Tracker() }

// ExportTemplate captures the learned map for reuse (§6), stamped with the
// lane's measurement schema so importers can reject incompatible maps.
func (l *Lane) ExportTemplate(sensitiveApp string) *statespace.Template {
	return statespace.Export(l.ms.space, sensitiveApp, l.ms.normalizer.Snapshot(), l.ms.schema)
}

// ImportTemplate seeds the lane with a previously learned map. It must be
// called before the first Period: the imported states become the starting
// state space and the normalizer adopts the template's ranges so new
// vectors are comparable with the template's.
func (l *Lane) ImportTemplate(t *statespace.Template) error {
	if l.period != 0 {
		return fmt.Errorf("core: template import after %d periods", l.period)
	}
	space, err := statespace.Import(t)
	if err != nil {
		return err
	}
	// A template measured under a different metric schema would produce
	// vectors incomparable with this lane's; reject instead of silently
	// mixing them.
	if err := t.CompatibleWith(l.ms.schema); err != nil {
		return fmt.Errorf("core: template import: %w", err)
	}
	return l.ms.importSpace(space, t.Ranges)
}

// Checkpoint captures everything the lane has learned — the state-space
// template, the per-mode trajectory histograms, and the throttle
// controller's learned state — into one serializable snapshot.
func (l *Lane) Checkpoint() *resilience.Checkpoint {
	ctl := l.as.Controller().Snapshot()
	return &resilience.Checkpoint{
		Version:    1,
		Periods:    l.period,
		Template:   l.ExportTemplate(l.cfg.SensitiveApp),
		Models:     l.ts.Models().Snapshot(),
		Controller: &ctl,
	}
}

// RestoreCheckpoint adopts a previously saved checkpoint: the template
// seeds the state space (exactly like ImportTemplate, with the same
// schema and dedup validation), the trajectory models take over the
// checkpointed histograms, and the controller recovers its learned β.
// It must be called before the first Period. Actuation state is NOT
// restored — recovery thaws everything first, and the controller comes
// back believing nothing is throttled, matching that reality.
func (l *Lane) RestoreCheckpoint(c *resilience.Checkpoint) error {
	if c == nil {
		return fmt.Errorf("core: nil checkpoint")
	}
	if err := c.Validate(); err != nil {
		return err
	}
	if err := l.ImportTemplate(c.Template); err != nil {
		return fmt.Errorf("core: checkpoint template: %w", err)
	}
	if c.Models != nil {
		if err := l.ts.Models().Restore(c.Models); err != nil {
			return fmt.Errorf("core: checkpoint models: %w", err)
		}
	}
	if c.Controller != nil {
		if err := l.as.Controller().Restore(*c.Controller); err != nil {
			return fmt.Errorf("core: checkpoint controller: %w", err)
		}
	}
	return nil
}

// Release lifts every throttle restriction this lane has requested — the
// per-lane half of the emergency thaw-all. With actions disabled it is a
// no-op.
func (l *Lane) Release() error {
	if l.cfg.DisableActions {
		return nil
	}
	return l.as.Controller().Release()
}
