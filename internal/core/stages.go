package core

import (
	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/statespace"
	"repro/internal/throttle"
	"repro/internal/trajectory"
)

// The lane pipeline splits the monolithic Mapping → Prediction → Action
// period into four typed stages. Each stage is independently testable and
// swappable (Lane.SetMapper &c. before the first period); the default
// implementations reproduce the paper's §3 loop exactly.

// PeriodInput is everything one lane needs to observe for one monitoring
// period. The host runtime collects samples once per period and fans the
// same input (with per-lane samples and QoS signals) out to every lane.
type PeriodInput struct {
	// Period is the monitoring period index.
	Period int
	// Samples are the per-container usage samples visible to this lane —
	// its own sensitive container plus the shared batch containers; other
	// lanes' sensitive containers have already been filtered out.
	Samples []metrics.Sample
	// Violation reports an application-reported QoS violation.
	Violation bool
	// QoSFresh reports whether the period had a usable QoS report;
	// meaningful only when HasFreshness.
	QoSFresh     bool
	HasFreshness bool
	// SensitiveRunning / BatchRunning drive execution-mode detection.
	SensitiveRunning bool
	BatchRunning     bool
	// BatchActive reports whether any batch application still has work.
	BatchActive bool
}

// MapOutcome is the Mapper stage's result: the state the period's
// measurement vector landed on.
type MapOutcome struct {
	// StateID is the mapped state; NewState marks a freshly created
	// representative.
	StateID  int
	NewState bool
	// Coord is the state's position in the 2-D embedding.
	Coord mds.Coord
	// Stale marks periods where the QoS signal has been silent for at
	// least Config.QoSStaleAfter periods.
	Stale bool
}

// Mapper is the §3.1/§4 stage: sample → normalize → embed → label. It owns
// the state space, the online reducer and the normalizer, and is the
// single writer of violation/unverified labels.
type Mapper interface {
	// Map places the period's samples into the state space.
	Map(in PeriodInput) (MapOutcome, error)
	// Space exposes the learned state space (read-mostly; the Forecaster
	// reads it, experiments and template export inspect it).
	Space() *statespace.Space
}

// ModelOutcome is the Modeler stage's result.
type ModelOutcome struct {
	// Mode is the detected execution mode.
	Mode trajectory.Mode
	// SensitiveStep is the 2-D distance between the two most recent
	// sensitive-only states — the phase-change signal of §3.3. Zero unless
	// the mode is sensitive-only and a previous same-mode coordinate
	// exists.
	SensitiveStep float64
}

// Modeler is the §3.2.3 stage: execution-mode detection plus per-mode
// trajectory observation. It owns the per-mode step histograms.
type Modeler interface {
	// Observe detects the period's mode and feeds the step from the
	// previous same-mode coordinate into the mode's trajectory model.
	Observe(in PeriodInput, coord mds.Coord) (ModelOutcome, error)
}

// ForecastOutcome is the Forecaster stage's result.
type ForecastOutcome struct {
	// WillViolate is the vote verdict: a transition toward a learned
	// violation-state is predicted.
	WillViolate bool
	// Severity is the violation proximity in [0,1]: the fraction of
	// candidate future states that landed inside a violation-range.
	Severity float64
}

// Forecaster is the §3.2 stage: candidate sampling over the trajectory
// models and the violation-range vote. It owns the prediction-accuracy
// tracker (each verdict is scored against the next period's outcome).
type Forecaster interface {
	// Forecast votes on the next period from the current coordinate.
	Forecast(space *statespace.Space, mode trajectory.Mode, coord mds.Coord) (ForecastOutcome, error)
	// Score records last period's verdict against this period's reported
	// outcome.
	Score(predicted, actual bool)
}

// ActInput is the Actor stage's input — the forecast joined with the
// period's ground truth.
type ActInput struct {
	Period             int
	PredictedViolation bool
	ActualViolation    bool
	Severity           float64
	SensitiveStep      float64
	BatchActive        bool
}

// Actor is the §3.3 stage: the throttle decision. The default
// implementation wraps a throttle.Controller; in a multi-tenant host each
// lane's Actor drives a per-lane handle of the shared actuation arbiter.
type Actor interface {
	// Act runs one period of the throttle decision logic.
	Act(in ActInput) (throttle.Result, error)
}
