package core

import (
	"fmt"

	"repro/internal/mds"
	"repro/internal/throttle"
	"repro/internal/trajectory"
)

// Event records everything the runtime did in one monitoring period. The
// experiment harness renders figures from these.
type Event struct {
	// Period is the monitoring period index.
	Period int
	// App is the fleet-wide name of the sensitive application whose lane
	// produced the event (empty only in zero-value events).
	App string
	// Mode is the detected execution mode.
	Mode trajectory.Mode
	// StateID is the mapped state this period's vector landed on.
	StateID int
	// NewState marks a freshly created representative.
	NewState bool
	// Coord is the state's position in the mapped space.
	Coord mds.Coord
	// Violation marks an application-reported QoS violation.
	Violation bool
	// QoSStale marks periods where the application's QoS signal has been
	// silent for at least Config.QoSStaleAfter periods — "no violation"
	// then means "no evidence", not "safe".
	QoSStale bool
	// Predicted marks a predicted transition toward a violation.
	Predicted bool
	// Severity is the trajectory vote's violation proximity in [0,1]
	// (predictor hits over candidates) — the graded policy's input.
	Severity float64
	// Action is what the throttle controller did.
	Action throttle.Action
	// Throttled is the batch state after the action.
	Throttled bool
	// RandomResume marks anti-starvation resumes.
	RandomResume bool
	// Beta is the controller's threshold after the period.
	Beta float64
	// Level is the batch CPU allowance after the period: 1 unlimited,
	// 0 frozen, intermediate values are graded cpu.max quotas.
	Level float64
}

// String renders a compact single-line summary, e.g. for the daemon log.
func (e Event) String() string {
	flags := ""
	if e.NewState {
		flags += "N"
	}
	if e.Violation {
		flags += "V"
	}
	if e.Predicted {
		flags += "P"
	}
	if e.Throttled {
		flags += "T"
	}
	if e.QoSStale {
		flags += "S"
	}
	if flags == "" {
		flags = "-"
	}
	return fmt.Sprintf("p=%d mode=%s state=%d (%.3f,%.3f) %s action=%s",
		e.Period, e.Mode, e.StateID, e.Coord.X, e.Coord.Y, flags, e.Action)
}

// Report aggregates a run's counters.
type Report struct {
	// Periods processed.
	Periods int
	// Violations reported by the sensitive application.
	Violations int
	// PredictedViolations is how many periods predicted an impending
	// violation.
	PredictedViolations int
	// Pauses, Resumes and RandomResumes count actuations; Limits counts
	// graded quota adjustments (ActionLimit).
	Pauses        int
	Resumes       int
	RandomResumes int
	Limits        int
	// QoSStalePeriods counts periods spent with a stale QoS signal (no
	// fresh application report for Config.QoSStaleAfter periods or more).
	QoSStalePeriods int
	// UnverifiedStates counts states first observed under a stale QoS
	// signal and never yet verified by a fresh-signal revisit.
	UnverifiedStates int
	// States and ViolationStates describe the learned space.
	States          int
	ViolationStates int
	// Refreshes counts full SMACOF refreshes; LastStress is the stress-1
	// of the most recent one.
	Refreshes  int
	LastStress float64
	// Accuracy, Precision and Recall score one-period-ahead violation
	// prediction against reported outcomes.
	Accuracy  float64
	Precision float64
	Recall    float64
}

// String renders a multi-line report.
func (r Report) String() string {
	return fmt.Sprintf(
		"periods=%d violations=%d predicted=%d pauses=%d limits=%d resumes=%d (random=%d)\n"+
			"states=%d (violation=%d, unverified=%d) refreshes=%d stress=%.4f qos_stale=%d\n"+
			"prediction: accuracy=%.3f precision=%.3f recall=%.3f",
		r.Periods, r.Violations, r.PredictedViolations, r.Pauses, r.Limits, r.Resumes, r.RandomResumes,
		r.States, r.ViolationStates, r.UnverifiedStates, r.Refreshes, r.LastStress, r.QoSStalePeriods,
		r.Accuracy, r.Precision, r.Recall)
}
