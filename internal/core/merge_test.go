package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/statespace"
)

// tplMetricsMismatch is a single-metric schema no baseConfig runtime uses.
func tplMetricsMismatch() []metrics.Metric {
	return []metrics.Metric{metrics.MetricCPU}
}

// runScript builds a runtime and drives it through the scripted periods,
// returning it with whatever map it learned.
func runScript(t *testing.T, steps []envStep) *Runtime {
	t.Helper()
	r, _ := newTestRuntime(t, baseConfig(), &fakeEnv{script: steps})
	for i := range steps {
		if _, err := r.Period(); err != nil {
			t.Fatalf("period %d: %v", i, err)
		}
	}
	return r
}

func active(sensCPU, batchCPU float64, violation bool) envStep {
	return envStep{
		sensitiveCPU: sensCPU, batchCPU: batchCPU, violation: violation,
		sensRunning: true, batchRunning: true, batchActive: true,
	}
}

func TestMergeTemplateAddsFleetStates(t *testing.T) {
	// Host 1 learns three distinct states, one a violation.
	rt1 := runScript(t, []envStep{
		active(50, 50, false),
		active(150, 390, true),
		active(380, 100, false),
	})
	tpl := rt1.ExportTemplate("web-app")
	if len(tpl.States) < 2 {
		t.Fatalf("exported %d states, need a real map to merge", len(tpl.States))
	}

	// Host 2 never ran a period: the whole fleet map is news to it.
	rt2, _ := newTestRuntime(t, baseConfig(), &fakeEnv{})
	stats, err := rt2.MergeTemplate(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != len(tpl.States) || stats.Matched != 0 || stats.Upgraded != 0 {
		t.Fatalf("fresh merge stats = %+v, want Added=%d", stats, len(tpl.States))
	}
	if got := rt2.Space().Len(); got != len(tpl.States) {
		t.Fatalf("space holds %d states after merge, want %d", got, len(tpl.States))
	}
	if len(rt2.Space().ViolationIDs()) == 0 {
		t.Fatal("merged violation state lost its label")
	}

	// Re-merging the same template is a no-op: everything matches.
	stats, err = rt2.MergeTemplate(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 0 || stats.Matched != len(tpl.States) || stats.Upgraded != 0 {
		t.Fatalf("re-merge stats = %+v, want all Matched", stats)
	}
}

func TestMergeTemplateUpgradesLabel(t *testing.T) {
	// This host only ever saw the state as safe.
	rt := runScript(t, []envStep{
		active(50, 50, false),
		active(150, 390, false),
	})
	if len(rt.Space().ViolationIDs()) != 0 {
		t.Fatal("precondition: no local violations")
	}
	tpl := rt.ExportTemplate("web-app")

	// The fleet saw a violation at one of those states: merging upgrades
	// the local label (sticky — never the other direction).
	up := statespace.CloneTemplate(tpl)
	up.States[len(up.States)-1].Label = statespace.Violation.String()
	stats, err := rt.MergeTemplate(up)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Upgraded != 1 || stats.Added != 0 || stats.Matched != len(tpl.States) {
		t.Fatalf("upgrade merge stats = %+v, want 1 Upgraded, all Matched", stats)
	}
	if len(rt.Space().ViolationIDs()) != 1 {
		t.Fatalf("violation IDs = %v after upgrade", rt.Space().ViolationIDs())
	}

	// A safe fleet label never downgrades the local violation.
	stats, err = rt.MergeTemplate(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Upgraded != 0 || len(rt.Space().ViolationIDs()) != 1 {
		t.Fatalf("safe re-merge downgraded the label: stats %+v, violations %v",
			stats, rt.Space().ViolationIDs())
	}
}

func TestMergeTemplateRejectsSchemaMismatch(t *testing.T) {
	rt, _ := newTestRuntime(t, baseConfig(), &fakeEnv{})
	bad := &statespace.Template{
		Version: 2, SensitiveApp: "web-app", Dim: 1,
		SchemaVMs: []string{"other"}, SchemaMetrics: tplMetricsMismatch(),
		States: []statespace.TemplateState{{Label: statespace.Safe.String(), Weight: 1, Vector: []float64{0.5}}},
	}
	if _, err := rt.MergeTemplate(bad); err == nil {
		t.Fatal("schema-mismatched template merged")
	}
	if rt.Space().Len() != 0 {
		t.Fatalf("rejected merge still added %d states", rt.Space().Len())
	}
}

func TestServerOfferTemplateAppliesBetweenPeriods(t *testing.T) {
	rt1 := runScript(t, []envStep{
		active(50, 50, false),
		active(150, 390, true),
	})
	tpl := rt1.ExportTemplate("web-app")

	rt2, _ := newTestRuntime(t, baseConfig(), &fakeEnv{script: []envStep{
		active(50, 50, false),
	}})
	srv, err := NewServer(rt2)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.OfferTemplate(nil); err == nil {
		t.Fatal("nil offer accepted")
	}

	done := make(chan struct{})
	srv.OnEvent = func(Event) { done <- struct{}{} }
	ticks := make(chan time.Time)
	if err := srv.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	step := func() {
		ticks <- time.Time{}
		<-done
	}

	// A healthy offer from the stream goroutine merges at the next period
	// boundary.
	if err := srv.OfferTemplate(tpl); err != nil {
		t.Fatal(err)
	}
	step()
	merges, fails, stats, lastErr := srv.MergeStatus()
	if merges != 1 || fails != 0 || lastErr != nil || stats.Added == 0 {
		t.Fatalf("MergeStatus = %d/%d %+v %v after offer", merges, fails, stats, lastErr)
	}

	// A bad fleet patch is recorded and must not stop the loop.
	bad := &statespace.Template{
		Version: 2, SensitiveApp: "web-app", Dim: 1,
		SchemaVMs: []string{"other"}, SchemaMetrics: tplMetricsMismatch(),
		States: []statespace.TemplateState{{Label: statespace.Safe.String(), Weight: 1, Vector: []float64{0.5}}},
	}
	if err := srv.OfferTemplate(bad); err != nil {
		t.Fatal(err)
	}
	step()
	merges, fails, _, lastErr = srv.MergeStatus()
	if merges != 1 || fails != 1 || lastErr == nil {
		t.Fatalf("MergeStatus = %d/%d err %v after bad offer", merges, fails, lastErr)
	}
	if _, periods, err := srv.Snapshot(); err != nil || periods != 2 {
		t.Fatalf("loop state after bad offer: periods=%d err=%v", periods, err)
	}

	close(ticks)
	srv.Wait()
}
