package core

import (
	"fmt"
	"math/rand"

	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/statespace"
)

// mapStage is the default Mapper: the §3.1 measurement pipeline plus the
// §4 embedding. It owns the normalizer, the online reducer, the bounded
// measurement series and the state space, and is the single writer of
// violation/unverified labels.
type mapStage struct {
	cfg Config
	rng *rand.Rand

	schema     *metrics.Schema
	normalizer *metrics.Normalizer
	reducer    *mds.OnlineReducer
	space      *statespace.Space
	series     *metrics.Series

	createdSinceSMAC int
	// qosSilent counts consecutive periods without a fresh QoS report; at
	// Config.QoSStaleAfter the signal is considered stale.
	qosSilent int
	refreshes int
	stress    float64
}

var _ Mapper = (*mapStage)(nil)

// newMapStage assembles the mapping pipeline from an already-validated
// config.
func newMapStage(cfg Config, rng *rand.Rand) (*mapStage, error) {
	schemaVMs := []string{cfg.SensitiveID, cfg.LogicalBatchVM}
	if cfg.DisableBatchAggregation {
		schemaVMs = append([]string{cfg.SensitiveID}, cfg.BatchIDs...)
	}
	schema, err := metrics.NewSchema(schemaVMs, metrics.DefaultMetrics())
	if err != nil {
		return nil, err
	}
	normalizer, err := metrics.NewNormalizer(cfg.Ranges)
	if err != nil {
		return nil, err
	}
	series, err := metrics.NewSeries(cfg.SeriesWindow)
	if err != nil {
		return nil, err
	}
	eps := cfg.DedupEpsilon
	if eps < 0 {
		eps = 0
	}
	space := statespace.NewSpace()
	space.SetRangePolicy(cfg.RangePolicy)
	return &mapStage{
		cfg:        cfg,
		rng:        rng,
		schema:     schema,
		normalizer: normalizer,
		reducer:    mds.NewOnlineReducer(eps),
		space:      space,
		series:     series,
	}, nil
}

// Space implements Mapper.
func (m *mapStage) Space() *statespace.Space { return m.space }

// Map implements Mapper: aggregate → normalize → flatten → embed → label.
func (m *mapStage) Map(in PeriodInput) (MapOutcome, error) {
	var out MapOutcome
	samples := in.Samples
	if !m.cfg.DisableBatchAggregation {
		isBatch := make(map[string]bool, len(m.cfg.BatchIDs))
		for _, id := range m.cfg.BatchIDs {
			isBatch[id] = true
		}
		samples = metrics.AggregateByRole(m.cfg.LogicalBatchVM, samples,
			func(vm string) bool { return isBatch[vm] })
	}
	normalized := m.normalizer.NormalizeAll(samples)
	vec, err := m.schema.Flatten(normalized)
	if err != nil {
		return out, fmt.Errorf("core: flatten samples: %w", err)
	}
	m.series.Push(in.Period, vec)

	stateID, created, err := m.mapVector(in.Period, vec)
	if err != nil {
		return out, err
	}
	out.StateID = stateID
	out.NewState = created
	st, err := m.space.State(stateID)
	if err != nil {
		return out, err
	}
	out.Coord = st.Coord

	if in.Violation {
		if err := m.space.MarkViolation(stateID); err != nil {
			return out, err
		}
	}

	// QoS-signal staleness: silence is not safety. When the application
	// stops reporting, the absence of violations proves nothing, so new
	// states created during the silent stretch must not become safe-state
	// anchors (they would shrink the violation-ranges around real
	// violation-states).
	fresh := true
	if in.HasFreshness && m.cfg.QoSStaleAfter > 0 {
		fresh = in.QoSFresh || in.Violation
	}
	if fresh {
		m.qosSilent = 0
	} else {
		m.qosSilent++
	}
	stale := m.cfg.QoSStaleAfter > 0 && m.qosSilent >= m.cfg.QoSStaleAfter
	out.Stale = stale
	if stale {
		if created {
			if err := m.space.MarkUnverified(stateID); err != nil {
				return out, err
			}
		}
	} else if !created && !in.Violation && fresh {
		// A fresh-signal revisit without a violation verifies the state.
		if err := m.space.ClearUnverified(stateID); err != nil {
			return out, err
		}
	}
	return out, nil
}

// mapVector maps a normalized measurement vector to a state, creating and
// placing a new representative when needed, and refreshing the whole
// embedding periodically.
func (m *mapStage) mapVector(period int, vec []float64) (stateID int, created bool, err error) {
	rep, isNew := m.reducer.Observe(vec)
	if !isNew {
		if err := m.space.Observe(rep, period); err != nil {
			return 0, false, err
		}
		return rep, false, nil
	}

	// Incremental placement against the existing configuration (§4's
	// low-overhead path).
	coords := m.space.Coords()
	delta := make([]float64, len(coords))
	vectors := m.space.Vectors()
	for i, v := range vectors {
		delta[i] = mds.Euclidean(vec, v)
	}
	pos, _, err := mds.Place(coords, delta, mds.PlaceOptions{})
	if err != nil {
		return 0, false, fmt.Errorf("core: incremental placement: %w", err)
	}
	id := m.space.Add(pos, vec, period)
	if id != rep {
		return 0, false, fmt.Errorf("core: state/representative index skew: %d vs %d", id, rep)
	}
	m.createdSinceSMAC++

	// Periodic full refresh: SMACOF over all representatives, aligned back
	// onto the previous layout so trajectories stay comparable across
	// refreshes. The first refresh fires as soon as four distinct states
	// exist, because purely incremental placement of the earliest states
	// is at its least reliable then.
	needRefresh := m.createdSinceSMAC >= m.cfg.RefreshEvery ||
		(m.refreshes == 0 && m.space.Len() >= 4)
	if m.cfg.RefreshEvery > 0 && needRefresh && m.space.Len() >= 3 {
		if err := m.refreshEmbedding(); err != nil {
			return 0, false, err
		}
		m.createdSinceSMAC = 0
	}
	return id, true, nil
}

// refreshEmbedding re-solves the full MDS problem and keeps the layout
// aligned with the previous one.
func (m *mapStage) refreshEmbedding() error {
	vectors := m.space.Vectors()
	// Solve from a Torgerson (classical-scaling) start rather than the
	// current layout: incremental placement can degenerate toward
	// low-dimensional configurations, and a warm start cannot escape them
	// (the Guttman transform preserves collinearity). The fresh solution
	// is Procrustes-aligned back onto the previous layout below, so
	// trajectories remain comparable across refreshes. Above the
	// configured threshold the full quadratic solve is replaced by
	// landmark MDS working straight off the vectors, so neither the O(n²)
	// distance matrix nor its memory is ever paid at scale.
	prev := m.space.Coords()
	var config []mds.Coord
	var stress float64
	if m.cfg.LandmarkThreshold > 0 && m.space.Len() > m.cfg.LandmarkThreshold {
		res, err := mds.LandmarkMDSVectors(vectors, m.cfg.LandmarkThreshold, mds.DefaultOptions(m.rng))
		if err != nil {
			return fmt.Errorf("core: landmark refresh: %w", err)
		}
		config, stress = res.Config, res.Stress
	} else {
		delta, err := mds.DistanceMatrix(vectors)
		if err != nil {
			return fmt.Errorf("core: distance matrix: %w", err)
		}
		res, err := mds.SMACOF(delta, mds.DefaultOptions(m.rng))
		if err != nil {
			return fmt.Errorf("core: smacof refresh: %w", err)
		}
		config, stress = res.Config, res.Stress
	}
	aligned, err := mds.AlignTo(config, prev)
	if err != nil {
		return fmt.Errorf("core: procrustes alignment: %w", err)
	}
	if err := m.space.SetCoords(aligned); err != nil {
		return err
	}
	m.refreshes++
	m.stress = stress
	return nil
}

// importSpace adopts an externally built space (template import /
// checkpoint restore), rebuilding the reducer so new observations dedup
// against the imported states.
func (m *mapStage) importSpace(space *statespace.Space, ranges map[metrics.Metric]metrics.Range) error {
	if err := m.normalizer.Restore(ranges); err != nil {
		return err
	}
	eps := m.cfg.DedupEpsilon
	if eps < 0 {
		eps = 0
	}
	reducer := mds.NewOnlineReducer(eps)
	for _, st := range space.States() {
		reducer.Observe(st.Vector)
	}
	if reducer.Len() != space.Len() {
		// Template states closer than our DedupEpsilon would merge and
		// skew state/representative indices; reject rather than corrupt.
		return fmt.Errorf("core: template states collapse under DedupEpsilon %v (%d -> %d)",
			eps, space.Len(), reducer.Len())
	}
	space.SetRangePolicy(m.cfg.RangePolicy)
	m.space = space
	m.reducer = reducer
	return nil
}
