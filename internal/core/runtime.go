package core

import (
	"fmt"

	"repro/internal/predictor"
	"repro/internal/statespace"
	"repro/internal/throttle"
	"repro/internal/trajectory"
)

// Runtime is the single-tenant Stay-Away middleware instance for one
// host: one protected application, one lane. It observes an Environment
// each period and delegates the Mapping → Prediction → Action cycle to
// the lane's staged pipeline. Hosts protecting several sensitive
// applications use HostRuntime instead.
//
// Runtime is not safe for concurrent use: all methods are called from the
// single periodic monitoring loop.
type Runtime struct {
	cfg  Config
	env  Environment
	lane *Lane
}

// New assembles a runtime against the given environment and actuator.
func New(cfg Config, env Environment, act throttle.Actuator) (*Runtime, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if env == nil {
		return nil, fmt.Errorf("core: nil environment")
	}
	lane, err := NewLane(cfg, act)
	if err != nil {
		return nil, err
	}
	return &Runtime{cfg: cfg, env: env, lane: lane}, nil
}

// Period executes one full Mapping → Prediction → Action cycle and returns
// the event describing it.
func (r *Runtime) Period() (Event, error) {
	in := PeriodInput{
		Samples:          r.env.Collect(),
		Violation:        r.env.QoSViolation(),
		SensitiveRunning: r.env.SensitiveRunning(),
		BatchRunning:     r.env.BatchRunning(),
		BatchActive:      r.env.BatchActive(),
	}
	if f, ok := r.env.(QoSFreshness); ok {
		in.HasFreshness = true
		in.QoSFresh = f.QoSFresh()
	}
	return r.lane.Period(in)
}

// Lane exposes the runtime's single protection lane.
func (r *Runtime) Lane() *Lane { return r.lane }

// SensitiveApp returns the fleet-wide application name templates are
// keyed by (Config.SensitiveApp, defaulted to SensitiveID).
func (r *Runtime) SensitiveApp() string { return r.cfg.SensitiveApp }

// Space exposes the learned state space (read-mostly; used by experiments
// and template export).
func (r *Runtime) Space() *statespace.Space { return r.lane.Space() }

// Models exposes the per-mode trajectory models for figure generation.
func (r *Runtime) Models() *trajectory.ModeModels { return r.lane.Models() }

// Throttled reports whether the batch applications are currently paused.
func (r *Runtime) Throttled() bool { return r.lane.Throttled() }

// Beta returns the controller's learned resume threshold.
func (r *Runtime) Beta() float64 { return r.lane.Beta() }

// Events returns the retained per-period events. Long runs are bounded by
// Config.EventWindow; use EventsSince to drain incrementally without
// missing retained events.
func (r *Runtime) Events() []Event { return r.lane.Events() }

// EventsSince returns retained events with sequence >= seq and the
// sequence to pass on the next call.
func (r *Runtime) EventsSince(seq uint64) ([]Event, uint64) { return r.lane.EventsSince(seq) }

// Report returns aggregate counters.
func (r *Runtime) Report() Report { return r.lane.Report() }

// Tracker exposes the raw prediction-accuracy tracker.
func (r *Runtime) Tracker() *predictor.Tracker { return r.lane.Tracker() }

// ExportTemplate captures the learned map for reuse (§6), stamped with the
// runtime's measurement schema so importers can reject incompatible maps.
func (r *Runtime) ExportTemplate(sensitiveApp string) *statespace.Template {
	return r.lane.ExportTemplate(sensitiveApp)
}

// ImportTemplate seeds the runtime with a previously learned map. It must
// be called before the first Period.
func (r *Runtime) ImportTemplate(t *statespace.Template) error {
	return r.lane.ImportTemplate(t)
}
