package core

import (
	"fmt"
	"math/rand"

	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/statespace"
	"repro/internal/throttle"
	"repro/internal/trajectory"
)

// Runtime is the Stay-Away middleware instance for one host. It is not
// safe for concurrent use: all methods are called from the single periodic
// monitoring loop.
type Runtime struct {
	cfg Config
	env Environment
	rng *rand.Rand

	schema     *metrics.Schema
	normalizer *metrics.Normalizer
	reducer    *mds.OnlineReducer
	space      *statespace.Space
	series     *metrics.Series
	models     *trajectory.ModeModels
	pred       *predictor.Predictor
	controller *throttle.Controller

	period           int
	createdSinceSMAC int
	havePrev         bool
	prevCoord        mds.Coord
	prevMode         trajectory.Mode
	// qosSilent counts consecutive periods without a fresh QoS report;
	// at Config.QoSStaleAfter the signal is considered stale.
	qosSilent int

	events  []Event
	report  Report
	tracker predictor.Tracker
	// pendingPrediction holds last period's verdict so accuracy is scored
	// against this period's actual outcome.
	pendingPrediction bool
	havePending       bool
}

// New assembles a runtime against the given environment and actuator.
func New(cfg Config, env Environment, act throttle.Actuator) (*Runtime, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if env == nil {
		return nil, fmt.Errorf("core: nil environment")
	}
	if act == nil {
		return nil, fmt.Errorf("core: nil actuator")
	}

	schemaVMs := []string{cfg.SensitiveID, cfg.LogicalBatchVM}
	if cfg.DisableBatchAggregation {
		schemaVMs = append([]string{cfg.SensitiveID}, cfg.BatchIDs...)
	}
	schema, err := metrics.NewSchema(schemaVMs, metrics.DefaultMetrics())
	if err != nil {
		return nil, err
	}
	normalizer, err := metrics.NewNormalizer(cfg.Ranges)
	if err != nil {
		return nil, err
	}
	series, err := metrics.NewSeries(cfg.SeriesWindow)
	if err != nil {
		return nil, err
	}
	var models *trajectory.ModeModels
	if cfg.SingleModel {
		models, err = trajectory.NewSingleModel(cfg.Trajectory)
	} else {
		models, err = trajectory.NewModeModels(cfg.Trajectory)
	}
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pred, err := predictor.New(cfg.Predictor, models, rng)
	if err != nil {
		return nil, err
	}
	controller, err := throttle.New(cfg.Throttle, act, cfg.BatchIDs, rng)
	if err != nil {
		return nil, err
	}
	eps := cfg.DedupEpsilon
	if eps < 0 {
		eps = 0
	}
	space := statespace.NewSpace()
	space.SetRangePolicy(cfg.RangePolicy)
	return &Runtime{
		cfg:        cfg,
		env:        env,
		rng:        rng,
		schema:     schema,
		normalizer: normalizer,
		reducer:    mds.NewOnlineReducer(eps),
		space:      space,
		series:     series,
		models:     models,
		pred:       pred,
		controller: controller,
	}, nil
}

// Period executes one full Mapping → Prediction → Action cycle and returns
// the event describing it.
func (r *Runtime) Period() (Event, error) {
	ev := Event{Period: r.period}

	// ---- Mapping (§3.1) ----
	samples := r.env.Collect()
	if !r.cfg.DisableBatchAggregation {
		isBatch := make(map[string]bool, len(r.cfg.BatchIDs))
		for _, id := range r.cfg.BatchIDs {
			isBatch[id] = true
		}
		samples = metrics.AggregateByRole(r.cfg.LogicalBatchVM, samples,
			func(vm string) bool { return isBatch[vm] })
	}
	normalized := r.normalizer.NormalizeAll(samples)
	vec, err := r.schema.Flatten(normalized)
	if err != nil {
		return ev, fmt.Errorf("core: flatten samples: %w", err)
	}
	r.series.Push(r.period, vec)

	stateID, created, err := r.mapVector(vec)
	if err != nil {
		return ev, err
	}
	ev.StateID = stateID
	ev.NewState = created
	st, err := r.space.State(stateID)
	if err != nil {
		return ev, err
	}
	ev.Coord = st.Coord

	violation := r.env.QoSViolation()
	ev.Violation = violation
	if violation {
		if err := r.space.MarkViolation(stateID); err != nil {
			return ev, err
		}
		r.report.Violations++
	}

	// QoS-signal staleness: silence is not safety. When the application
	// stops reporting, the absence of violations proves nothing, so new
	// states created during the silent stretch must not become safe-state
	// anchors (they would shrink the violation-ranges around real
	// violation-states).
	fresh := true
	if f, ok := r.env.(QoSFreshness); ok && r.cfg.QoSStaleAfter > 0 {
		fresh = f.QoSFresh() || violation
	}
	if fresh {
		r.qosSilent = 0
	} else {
		r.qosSilent++
	}
	stale := r.cfg.QoSStaleAfter > 0 && r.qosSilent >= r.cfg.QoSStaleAfter
	ev.QoSStale = stale
	if stale {
		r.report.QoSStalePeriods++
		if created {
			if err := r.space.MarkUnverified(stateID); err != nil {
				return ev, err
			}
		}
	} else if !created && !violation && fresh {
		// A fresh-signal revisit without a violation verifies the state.
		if err := r.space.ClearUnverified(stateID); err != nil {
			return ev, err
		}
	}

	// ---- Execution mode & trajectory learning (§3.2.3) ----
	mode := trajectory.DetectMode(r.env.SensitiveRunning(), r.env.BatchRunning())
	ev.Mode = mode
	sensitiveStep := 0.0
	if r.havePrev && r.prevMode == mode {
		step := trajectory.StepBetween(r.prevCoord, st.Coord)
		if err := r.models.Observe(mode, step); err != nil {
			return ev, err
		}
		if mode == trajectory.ModeSensitiveOnly {
			sensitiveStep = step.Distance
		}
	}

	// ---- Prediction (§3.2) ----
	decision, err := r.pred.Predict(r.space, mode, st.Coord)
	if err != nil {
		return ev, err
	}
	ev.Predicted = decision.WillViolate
	if decision.WillViolate {
		r.report.PredictedViolations++
	}
	// Severity is how close to unanimous the trajectory vote was — the
	// violation-proximity signal graded throttling scales its quota by.
	severity := 0.0
	if len(decision.Candidates) > 0 {
		severity = float64(decision.Hits) / float64(len(decision.Candidates))
	}
	ev.Severity = severity

	// Score last period's prediction against this period's outcome.
	if r.havePending {
		r.tracker.Record(r.pendingPrediction, violation)
	}
	r.pendingPrediction = decision.WillViolate
	r.havePending = true

	// ---- Action (§3.3) ----
	if !r.cfg.DisableActions {
		res, err := r.controller.Step(throttle.Input{
			Period:                r.period,
			PredictedViolation:    decision.WillViolate,
			ActualViolation:       violation,
			ViolationSeverity:     severity,
			SensitiveStepDistance: sensitiveStep,
			BatchActive:           r.env.BatchActive(),
		})
		if err != nil {
			return ev, err
		}
		ev.Action = res.Action
		ev.Throttled = res.Throttled
		ev.RandomResume = res.RandomResume
		ev.Beta = res.Beta
		ev.Level = res.Level
		switch res.Action {
		case throttle.ActionPause:
			r.report.Pauses++
		case throttle.ActionLimit:
			r.report.Limits++
		case throttle.ActionResume:
			r.report.Resumes++
			if res.RandomResume {
				r.report.RandomResumes++
			}
		}
	}

	r.havePrev = true
	r.prevCoord = st.Coord
	r.prevMode = mode
	r.period++
	r.report.Periods++
	r.events = append(r.events, ev)
	return ev, nil
}

// mapVector maps a normalized measurement vector to a state, creating and
// placing a new representative when needed, and refreshing the whole
// embedding periodically.
func (r *Runtime) mapVector(vec []float64) (stateID int, created bool, err error) {
	rep, isNew := r.reducer.Observe(vec)
	if !isNew {
		if err := r.space.Observe(rep, r.period); err != nil {
			return 0, false, err
		}
		return rep, false, nil
	}

	// Incremental placement against the existing configuration (§4's
	// low-overhead path).
	coords := r.space.Coords()
	delta := make([]float64, len(coords))
	vectors := r.space.Vectors()
	for i, v := range vectors {
		delta[i] = mds.Euclidean(vec, v)
	}
	pos, _, err := mds.Place(coords, delta, mds.PlaceOptions{})
	if err != nil {
		return 0, false, fmt.Errorf("core: incremental placement: %w", err)
	}
	id := r.space.Add(pos, vec, r.period)
	if id != rep {
		return 0, false, fmt.Errorf("core: state/representative index skew: %d vs %d", id, rep)
	}
	r.createdSinceSMAC++

	// Periodic full refresh: SMACOF over all representatives, aligned back
	// onto the previous layout so trajectories stay comparable across
	// refreshes. The first refresh fires as soon as four distinct states
	// exist, because purely incremental placement of the earliest states
	// is at its least reliable then.
	needRefresh := r.createdSinceSMAC >= r.cfg.RefreshEvery ||
		(r.report.Refreshes == 0 && r.space.Len() >= 4)
	if r.cfg.RefreshEvery > 0 && needRefresh && r.space.Len() >= 3 {
		if err := r.refreshEmbedding(); err != nil {
			return 0, false, err
		}
		r.createdSinceSMAC = 0
	}
	return id, true, nil
}

// refreshEmbedding re-solves the full MDS problem and keeps the layout
// aligned with the previous one.
func (r *Runtime) refreshEmbedding() error {
	vectors := r.space.Vectors()
	delta, err := mds.DistanceMatrix(vectors)
	if err != nil {
		return fmt.Errorf("core: distance matrix: %w", err)
	}
	// Solve from a Torgerson (classical-scaling) start rather than the
	// current layout: incremental placement can degenerate toward
	// low-dimensional configurations, and a warm start cannot escape them
	// (the Guttman transform preserves collinearity). The fresh solution
	// is Procrustes-aligned back onto the previous layout below, so
	// trajectories remain comparable across refreshes. Above the
	// configured threshold the full quadratic solve is replaced by
	// landmark MDS.
	prev := r.space.Coords()
	var config []mds.Coord
	var stress float64
	if r.cfg.LandmarkThreshold > 0 && r.space.Len() > r.cfg.LandmarkThreshold {
		res, err := mds.LandmarkMDS(delta, r.cfg.LandmarkThreshold, mds.DefaultOptions(r.rng))
		if err != nil {
			return fmt.Errorf("core: landmark refresh: %w", err)
		}
		config, stress = res.Config, res.Stress
	} else {
		res, err := mds.SMACOF(delta, mds.DefaultOptions(r.rng))
		if err != nil {
			return fmt.Errorf("core: smacof refresh: %w", err)
		}
		config, stress = res.Config, res.Stress
	}
	aligned, err := mds.AlignTo(config, prev)
	if err != nil {
		return fmt.Errorf("core: procrustes alignment: %w", err)
	}
	if err := r.space.SetCoords(aligned); err != nil {
		return err
	}
	r.report.Refreshes++
	r.report.LastStress = stress
	return nil
}

// SensitiveApp returns the fleet-wide application name templates are
// keyed by (Config.SensitiveApp, defaulted to SensitiveID).
func (r *Runtime) SensitiveApp() string { return r.cfg.SensitiveApp }

// Space exposes the learned state space (read-mostly; used by experiments
// and template export).
func (r *Runtime) Space() *statespace.Space { return r.space }

// Models exposes the per-mode trajectory models for figure generation.
func (r *Runtime) Models() *trajectory.ModeModels { return r.models }

// Throttled reports whether the batch applications are currently paused.
func (r *Runtime) Throttled() bool { return r.controller.Throttled() }

// Beta returns the controller's learned resume threshold.
func (r *Runtime) Beta() float64 { return r.controller.Beta() }

// Events returns all per-period events so far.
func (r *Runtime) Events() []Event { return append([]Event(nil), r.events...) }

// Report returns aggregate counters.
func (r *Runtime) Report() Report {
	rep := r.report
	rep.States = r.space.Len()
	rep.ViolationStates = len(r.space.ViolationIDs())
	rep.UnverifiedStates = len(r.space.UnverifiedIDs())
	rep.Accuracy = r.tracker.Accuracy()
	rep.Precision = r.tracker.Precision()
	rep.Recall = r.tracker.Recall()
	return rep
}

// Tracker exposes the raw prediction-accuracy tracker.
func (r *Runtime) Tracker() *predictor.Tracker { return &r.tracker }

// ExportTemplate captures the learned map for reuse (§6), stamped with the
// runtime's measurement schema so importers can reject incompatible maps.
func (r *Runtime) ExportTemplate(sensitiveApp string) *statespace.Template {
	return statespace.Export(r.space, sensitiveApp, r.normalizer.Snapshot(), r.schema)
}

// ImportTemplate seeds the runtime with a previously learned map. It must
// be called before the first Period: the imported states become the
// starting state space and the normalizer adopts the template's ranges so
// new vectors are comparable with the template's.
func (r *Runtime) ImportTemplate(t *statespace.Template) error {
	if r.period != 0 {
		return fmt.Errorf("core: template import after %d periods", r.period)
	}
	space, err := statespace.Import(t)
	if err != nil {
		return err
	}
	// A template measured under a different metric schema would produce
	// vectors incomparable with this runtime's; reject instead of silently
	// mixing them.
	if err := t.CompatibleWith(r.schema); err != nil {
		return fmt.Errorf("core: template import: %w", err)
	}
	if err := r.normalizer.Restore(t.Ranges); err != nil {
		return err
	}
	// Rebuild the reducer so new observations dedup against template
	// states.
	eps := r.cfg.DedupEpsilon
	if eps < 0 {
		eps = 0
	}
	reducer := mds.NewOnlineReducer(eps)
	for _, st := range space.States() {
		reducer.Observe(st.Vector)
	}
	if reducer.Len() != space.Len() {
		// Template states closer than our DedupEpsilon would merge and
		// skew state/representative indices; reject rather than corrupt.
		return fmt.Errorf("core: template states collapse under DedupEpsilon %v (%d -> %d)",
			eps, space.Len(), reducer.Len())
	}
	space.SetRangePolicy(r.cfg.RangePolicy)
	r.space = space
	r.reducer = reducer
	return nil
}
