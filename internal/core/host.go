package core

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/internal/throttle"
)

// HostEnvironment is what a multi-tenant host observes each period: one
// shared sample collection over every co-located container and the batch
// pool's run state. Samples are collected ONCE and fanned out to the
// lanes — each lane sees only its own sensitive container plus its batch
// containers.
type HostEnvironment interface {
	// Collect returns the current usage samples for every container on
	// the host (all sensitive containers and the whole batch pool).
	Collect() []metrics.Sample
	// BatchRunning reports whether any batch application is actively
	// executing (a frozen batch container is not running).
	BatchRunning() bool
	// BatchActive reports whether any batch application still has work
	// (running or frozen).
	BatchActive() bool
}

// LaneSignals are one protected application's own observations: its QoS
// report and run state. Implementations may additionally implement
// QoSFreshness to let the lane distinguish "no violation" from "no
// report".
type LaneSignals interface {
	QoSViolation() bool
	SensitiveRunning() bool
}

// HostRuntime runs one protection Lane per sensitive application over a
// shared batch pool. Each period it collects samples once, fans them out
// per lane, and runs every lane's Mapping → Prediction → Action cycle;
// the lanes' throttle decisions land on the shared batch containers
// through an actuation arbiter (union freeze, most-severe-wins quotas,
// release only when every restricting lane has resumed).
//
// Like Runtime, a HostRuntime is single-threaded by design: one periodic
// monitoring loop drives it.
type HostRuntime struct {
	env     HostEnvironment
	arbiter *throttle.Arbiter
	lanes   []*hostLane
	byApp   map[string]*hostLane
	periods int
}

// hostLane pairs a Lane with its signal source and sample filter.
type hostLane struct {
	lane   *Lane
	sig    LaneSignals
	filter func(vm string) bool
}

// NewHost builds a multi-tenant runtime over the shared environment and
// the downstream actuator (the real cgroup actuator, its ledgered
// wrapper, or the simulator's). Lanes are added with AddLane — before
// the first Period, or live at any later period boundary.
func NewHost(env HostEnvironment, downstream throttle.Actuator) (*HostRuntime, error) {
	if env == nil {
		return nil, fmt.Errorf("core: nil host environment")
	}
	arbiter, err := throttle.NewArbiter(downstream)
	if err != nil {
		return nil, err
	}
	return &HostRuntime{
		env:     env,
		arbiter: arbiter,
		byApp:   make(map[string]*hostLane),
	}, nil
}

// AddLane registers one protected application: its pipeline config and
// its signal source. The lane's controller drives an arbiter handle named
// after the application, so its decisions merge with the other lanes'.
//
// AddLane may be called before the first Period or live at any later
// period boundary (between Period calls, from the control-loop
// goroutine — the HostRuntime stays single-threaded). A lane added live
// starts learning at its own period 0; the surviving lanes and their
// restrictions are untouched.
func (h *HostRuntime) AddLane(cfg Config, sig LaneSignals) (*Lane, error) {
	if sig == nil {
		return nil, fmt.Errorf("core: nil lane signals")
	}
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if _, dup := h.byApp[cfg.SensitiveApp]; dup {
		return nil, fmt.Errorf("core: duplicate lane for application %q", cfg.SensitiveApp)
	}
	// One container cannot be sensitive on one lane and batch on another:
	// the second lane would throttle the first lane's protected workload.
	for _, hl := range h.lanes {
		if hl.lane.SensitiveID() == cfg.SensitiveID {
			return nil, fmt.Errorf("core: sensitive container %q already owned by lane %q",
				cfg.SensitiveID, hl.lane.App())
		}
		for _, id := range cfg.BatchIDs {
			if id == hl.lane.SensitiveID() {
				return nil, fmt.Errorf("core: container %q is lane %q's sensitive app, cannot be batch",
					id, hl.lane.App())
			}
		}
		for _, id := range hl.lane.cfg.BatchIDs {
			if id == cfg.SensitiveID {
				return nil, fmt.Errorf("core: container %q is lane %q's batch, cannot be sensitive",
					cfg.SensitiveID, hl.lane.App())
			}
		}
	}
	lane, err := NewLane(cfg, h.arbiter.Lane(cfg.SensitiveApp))
	if err != nil {
		return nil, err
	}
	hl := &hostLane{
		lane:   lane,
		sig:    sig,
		filter: metrics.LaneFilter(cfg.SensitiveID, cfg.BatchIDs),
	}
	h.lanes = append(h.lanes, hl)
	h.byApp[cfg.SensitiveApp] = hl
	return lane, nil
}

// RemoveLane drains and removes the named lane. Like AddLane it is a
// period-boundary operation run from the control-loop goroutine. The
// drain is fail-safe by construction: the lane's controller first
// withdraws its own restrictions through the arbiter merge (targets it
// alone restricted thaw; targets other lanes still restrict thaw into
// the surviving quota — the survivors never see a restriction gap), then
// the lane's residual desires are purged from the merge with DropLane,
// which can only loosen. The removed Lane is returned so the caller can
// flush its final checkpoint; it must not be driven after removal.
//
// The lane leaves the runtime even when the drain actuation errors (the
// error is still returned): a lane that failed to thaw downstream must
// not keep merging, and with a ledgered downstream the missed thaw is
// exactly what boot recovery over-thaws.
func (h *HostRuntime) RemoveLane(app string) (*Lane, error) {
	hl, ok := h.byApp[app]
	if !ok {
		return nil, fmt.Errorf("core: no lane for application %q", app)
	}
	relErr := hl.lane.Release()
	dropErr := h.arbiter.DropLane(app)
	delete(h.byApp, app)
	for i, cur := range h.lanes {
		if cur == hl {
			h.lanes = append(h.lanes[:i], h.lanes[i+1:]...)
			break
		}
	}
	if relErr != nil {
		return hl.lane, relErr
	}
	return hl.lane, dropErr
}

// ReconfigureLane replaces the lane named by cfg.SensitiveApp with one
// built from cfg, at a period boundary. It is two-phase: the replacement
// lane is fully constructed and validated first, so a bad configuration
// returns an error with the running lane untouched; only then is the old
// lane drained exactly as RemoveLane drains it and the new lane swapped
// in (preserving lane order). The old lane's learned state — template,
// trajectory histograms, controller β — is carried into the new lane
// when the measurement schema still matches; an incompatible change
// (e.g. a different container set changes the sample schema) starts the
// new lane cold. The returned bool reports whether state was carried.
func (h *HostRuntime) ReconfigureLane(cfg Config, sig LaneSignals) (*Lane, bool, error) {
	if sig == nil {
		return nil, false, fmt.Errorf("core: nil lane signals")
	}
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, false, err
	}
	old, ok := h.byApp[cfg.SensitiveApp]
	if !ok {
		return nil, false, fmt.Errorf("core: no lane for application %q", cfg.SensitiveApp)
	}
	// Cross-lane collision checks against the survivors (the lane being
	// replaced is exempt — it is on its way out).
	for _, hl := range h.lanes {
		if hl == old {
			continue
		}
		if hl.lane.SensitiveID() == cfg.SensitiveID {
			return nil, false, fmt.Errorf("core: sensitive container %q already owned by lane %q",
				cfg.SensitiveID, hl.lane.App())
		}
		for _, id := range cfg.BatchIDs {
			if id == hl.lane.SensitiveID() {
				return nil, false, fmt.Errorf("core: container %q is lane %q's sensitive app, cannot be batch",
					id, hl.lane.App())
			}
		}
		for _, id := range hl.lane.cfg.BatchIDs {
			if id == cfg.SensitiveID {
				return nil, false, fmt.Errorf("core: container %q is lane %q's batch, cannot be sensitive",
					cfg.SensitiveID, hl.lane.App())
			}
		}
	}
	lane, err := NewLane(cfg, h.arbiter.Lane(cfg.SensitiveApp))
	if err != nil {
		return nil, false, err
	}
	var ck *resilience.Checkpoint
	if old.lane.Space().Len() > 0 {
		ck = old.lane.Checkpoint()
	}
	// Commit point: drain the old lane. Arbiter lane records are looked up
	// by name on every actuation, so recreating the record after DropLane
	// revalidates the handle the new lane's controller already holds.
	relErr := old.lane.Release()
	dropErr := h.arbiter.DropLane(cfg.SensitiveApp)
	h.arbiter.Lane(cfg.SensitiveApp)
	hl := &hostLane{
		lane:   lane,
		sig:    sig,
		filter: metrics.LaneFilter(cfg.SensitiveID, cfg.BatchIDs),
	}
	for i, cur := range h.lanes {
		if cur == old {
			h.lanes[i] = hl
			break
		}
	}
	h.byApp[cfg.SensitiveApp] = hl
	carried := false
	if ck != nil {
		// Best effort: a schema-incompatible checkpoint means the workload
		// the old lane learned no longer describes this one — cold start.
		carried = lane.RestoreCheckpoint(ck) == nil
	}
	if relErr != nil {
		return lane, carried, relErr
	}
	return lane, carried, dropErr
}

// LaneHealth is one lane's point-in-time health, assembled at a period
// boundary for the daemon's readiness and event surfaces.
type LaneHealth struct {
	// App is the sensitive application the lane protects.
	App string `json:"app"`
	// Periods is how many periods the lane has run (0 = freshly added).
	Periods int `json:"periods"`
	// Throttled reports whether the lane currently restricts the batch
	// pool; Level is its requested CPU allowance (1 unlimited, 0 frozen).
	Throttled bool    `json:"throttled"`
	Level     float64 `json:"level"`
	// Beta is the controller's learned resume threshold.
	Beta float64 `json:"beta"`
	// Violations counts application-reported QoS violations so far.
	Violations int `json:"violations"`
	// States and ViolationStates describe the learned space.
	States          int `json:"states"`
	ViolationStates int `json:"violation_states"`
	// QoSStale marks a lane whose application QoS signal has gone silent
	// (last period ran stale).
	QoSStale bool `json:"qos_stale,omitempty"`
}

// Health reports every lane's health in lane order. Like Period it runs
// on the control-loop goroutine (it reads the lanes' learned state);
// daemons snapshot it between periods and serve the snapshot.
func (h *HostRuntime) Health() []LaneHealth {
	out := make([]LaneHealth, 0, len(h.lanes))
	for _, hl := range h.lanes {
		rep := hl.lane.Report()
		lh := LaneHealth{
			App:             hl.lane.App(),
			Periods:         rep.Periods,
			Throttled:       hl.lane.Throttled(),
			Level:           hl.lane.Level(),
			Beta:            hl.lane.Beta(),
			Violations:      rep.Violations,
			States:          rep.States,
			ViolationStates: rep.ViolationStates,
		}
		if evs := hl.lane.Events(); len(evs) > 0 {
			lh.QoSStale = evs[len(evs)-1].QoSStale
		}
		out = append(out, lh)
	}
	return out
}

// Period runs one monitoring period across every lane, in lane insertion
// order, over a single shared sample collection. It returns one event per
// lane. A lane error stops the period and is attributed to the lane; the
// events of lanes that already ran are still returned.
func (h *HostRuntime) Period() ([]Event, error) {
	if len(h.lanes) == 0 {
		return nil, fmt.Errorf("core: host runtime has no lanes")
	}
	// Collect once; each lane sees its own slice of the host's samples.
	samples := h.env.Collect()
	batchRunning := h.env.BatchRunning()
	batchActive := h.env.BatchActive()

	events := make([]Event, 0, len(h.lanes))
	for _, hl := range h.lanes {
		in := PeriodInput{
			Samples:          metrics.Select(samples, hl.filter),
			Violation:        hl.sig.QoSViolation(),
			SensitiveRunning: hl.sig.SensitiveRunning(),
			BatchRunning:     batchRunning,
			BatchActive:      batchActive,
		}
		if qf, ok := hl.sig.(QoSFreshness); ok {
			in.HasFreshness = true
			in.QoSFresh = qf.QoSFresh()
		}
		ev, err := hl.lane.Period(in)
		if err != nil {
			return events, fmt.Errorf("core: lane %q: %w", hl.lane.App(), err)
		}
		events = append(events, ev)
	}
	h.periods++
	return events, nil
}

// Periods returns how many host periods have completed.
func (h *HostRuntime) Periods() int { return h.periods }

// Apps returns the registered application names in lane order.
func (h *HostRuntime) Apps() []string {
	out := make([]string, len(h.lanes))
	for i, hl := range h.lanes {
		out[i] = hl.lane.App()
	}
	return out
}

// Lane returns the lane protecting the named application, or nil.
func (h *HostRuntime) Lane(app string) *Lane {
	if hl, ok := h.byApp[app]; ok {
		return hl.lane
	}
	return nil
}

// Lanes returns every lane in insertion order.
func (h *HostRuntime) Lanes() []*Lane {
	out := make([]*Lane, len(h.lanes))
	for i, hl := range h.lanes {
		out[i] = hl.lane
	}
	return out
}

// Arbiter exposes the actuation arbiter — the observability surface for
// "which lane is holding the batch pool down".
func (h *HostRuntime) Arbiter() *throttle.Arbiter { return h.arbiter }

// Restricting returns, per batch container, the lanes currently
// restricting it (sorted app names). Containers nobody restricts are
// omitted.
func (h *HostRuntime) Restricting() map[string][]string {
	out := make(map[string][]string)
	seen := make(map[string]bool)
	for _, hl := range h.lanes {
		for _, id := range hl.lane.cfg.BatchIDs {
			if seen[id] {
				continue
			}
			seen[id] = true
			if lanes := h.arbiter.Restricting(id); len(lanes) > 0 {
				out[id] = lanes
			}
		}
	}
	return out
}

// Release lifts every restriction on the shared batch pool — the
// emergency thaw-all for fail-safe paths. It bypasses the per-lane merge:
// after a fault the lanes' beliefs cannot be trusted.
func (h *HostRuntime) Release() error { return h.arbiter.ReleaseAll() }

// BatchIDs returns the union of every lane's batch containers, sorted —
// the shared pool recovery must thaw.
func (h *HostRuntime) BatchIDs() []string {
	set := make(map[string]bool)
	for _, hl := range h.lanes {
		for _, id := range hl.lane.cfg.BatchIDs {
			set[id] = true
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
