package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/throttle"
	"repro/internal/trajectory"
)

// envStep scripts one period of a fake environment.
type envStep struct {
	sensitiveCPU float64 // raw CPU for the sensitive container
	batchCPU     float64 // raw CPU for the batch container
	violation    bool
	sensRunning  bool
	batchRunning bool
	batchActive  bool
}

// fakeEnv replays a script; the final step repeats forever.
type fakeEnv struct {
	script []envStep
	i      int
	cur    envStep
}

func (f *fakeEnv) Collect() []metrics.Sample {
	if f.i < len(f.script) {
		f.cur = f.script[f.i]
		f.i++
	}
	return []metrics.Sample{
		metrics.NewSample("web", map[metrics.Metric]float64{
			metrics.MetricCPU:    f.cur.sensitiveCPU,
			metrics.MetricMemory: 500,
		}),
		metrics.NewSample("b1", map[metrics.Metric]float64{
			metrics.MetricCPU: f.cur.batchCPU,
		}),
	}
}

func (f *fakeEnv) QoSViolation() bool     { return f.cur.violation }
func (f *fakeEnv) SensitiveRunning() bool { return f.cur.sensRunning }
func (f *fakeEnv) BatchRunning() bool     { return f.cur.batchRunning }
func (f *fakeEnv) BatchActive() bool      { return f.cur.batchActive }

var _ Environment = (*fakeEnv)(nil)

func testRanges() map[metrics.Metric]metrics.Range {
	return metrics.DefaultRanges(4, 4096, 200, 1000)
}

func newTestRuntime(t *testing.T, cfg Config, env Environment) (*Runtime, *throttle.RecordingActuator) {
	t.Helper()
	act := throttle.NewRecordingActuator()
	r, err := New(cfg, env, act)
	if err != nil {
		t.Fatal(err)
	}
	return r, act
}

func baseConfig() Config {
	return DefaultConfig("web", []string{"b1"}, testRanges())
}

func TestNewValidation(t *testing.T) {
	env := &fakeEnv{}
	act := throttle.NewRecordingActuator()

	cfg := baseConfig()
	cfg.SensitiveID = ""
	if _, err := New(cfg, env, act); err == nil {
		t.Error("missing SensitiveID should error")
	}

	cfg = baseConfig()
	cfg.Ranges = nil
	if _, err := New(cfg, env, act); err == nil {
		t.Error("missing Ranges should error")
	}

	cfg = baseConfig()
	cfg.LogicalBatchVM = "web"
	if _, err := New(cfg, env, act); err == nil {
		t.Error("VM name collision should error")
	}

	cfg = baseConfig()
	cfg.BatchIDs = []string{"web"}
	if _, err := New(cfg, env, act); err == nil {
		t.Error("sensitive-as-batch should error")
	}

	cfg = baseConfig()
	cfg.RefreshEvery = -1
	if _, err := New(cfg, env, act); err == nil {
		t.Error("negative RefreshEvery should error")
	}

	if _, err := New(baseConfig(), nil, act); err == nil {
		t.Error("nil env should error")
	}
	if _, err := New(baseConfig(), env, nil); err == nil {
		t.Error("nil actuator should error")
	}
}

func TestPeriodCreatesAndDedupsStates(t *testing.T) {
	env := &fakeEnv{script: []envStep{
		{sensitiveCPU: 100, batchCPU: 0, sensRunning: true},
		{sensitiveCPU: 100, batchCPU: 0, sensRunning: true}, // identical: dedup
		{sensitiveCPU: 300, batchCPU: 200, sensRunning: true, batchRunning: true, batchActive: true},
	}}
	r, _ := newTestRuntime(t, baseConfig(), env)

	ev1, err := r.Period()
	if err != nil {
		t.Fatal(err)
	}
	if !ev1.NewState || ev1.StateID != 0 {
		t.Errorf("first period: %+v", ev1)
	}
	ev2, err := r.Period()
	if err != nil {
		t.Fatal(err)
	}
	if ev2.NewState || ev2.StateID != 0 {
		t.Errorf("identical vector should dedup: %+v", ev2)
	}
	ev3, err := r.Period()
	if err != nil {
		t.Fatal(err)
	}
	if !ev3.NewState || ev3.StateID != 1 {
		t.Errorf("distinct vector should create state: %+v", ev3)
	}
	st, err := r.Space().State(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Weight != 2 {
		t.Errorf("state 0 weight = %d, want 2", st.Weight)
	}
}

func TestPeriodMarksViolations(t *testing.T) {
	env := &fakeEnv{script: []envStep{
		{sensitiveCPU: 100, sensRunning: true},
		{sensitiveCPU: 380, batchCPU: 380, violation: true, sensRunning: true, batchRunning: true, batchActive: true},
	}}
	r, _ := newTestRuntime(t, baseConfig(), env)
	if _, err := r.Period(); err != nil {
		t.Fatal(err)
	}
	ev, err := r.Period()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Violation {
		t.Error("violation flag lost")
	}
	if ids := r.Space().ViolationIDs(); len(ids) != 1 || ids[0] != ev.StateID {
		t.Errorf("violation IDs = %v, want [%d]", ids, ev.StateID)
	}
	rep := r.Report()
	if rep.Violations != 1 || rep.Periods != 2 {
		t.Errorf("report = %+v", rep)
	}
}

func TestPeriodDetectsModes(t *testing.T) {
	env := &fakeEnv{script: []envStep{
		{},
		{sensitiveCPU: 100, sensRunning: true},
		{batchCPU: 100, batchRunning: true, batchActive: true},
		{sensitiveCPU: 100, batchCPU: 100, sensRunning: true, batchRunning: true, batchActive: true},
	}}
	r, _ := newTestRuntime(t, baseConfig(), env)
	want := []trajectory.Mode{
		trajectory.ModeIdle,
		trajectory.ModeSensitiveOnly,
		trajectory.ModeBatchOnly,
		trajectory.ModeColocated,
	}
	for i, w := range want {
		ev, err := r.Period()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Mode != w {
			t.Errorf("period %d mode = %v, want %v", i, ev.Mode, w)
		}
	}
}

// rampScenario scripts the canonical Stay-Away story: learn a violation at
// high batch CPU, then watch the batch ramp toward it again.
func rampScenario() []envStep {
	var script []envStep
	run := func(s envStep) {
		s.sensRunning = true
		s.batchRunning = true
		s.batchActive = true
		script = append(script, s)
	}
	// Ramp up to a violation once (learning phase).
	for cpu := 40.0; cpu <= 360; cpu += 40 {
		run(envStep{sensitiveCPU: 150, batchCPU: cpu})
	}
	run(envStep{sensitiveCPU: 150, batchCPU: 390, violation: true})
	// Back off.
	for cpu := 360.0; cpu >= 40; cpu -= 40 {
		run(envStep{sensitiveCPU: 150, batchCPU: cpu})
	}
	// Second ramp toward the same violation.
	for cpu := 40.0; cpu <= 390; cpu += 40 {
		run(envStep{sensitiveCPU: 150, batchCPU: cpu})
	}
	return script
}

func TestRuntimePredictsAndThrottlesOnSecondRamp(t *testing.T) {
	env := &fakeEnv{script: rampScenario()}
	r, act := newTestRuntime(t, baseConfig(), env)
	var pausedAt = -1
	for i := 0; i < len(env.script); i++ {
		ev, err := r.Period()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Action == throttle.ActionPause && pausedAt < 0 {
			pausedAt = ev.Period
		}
	}
	if pausedAt < 0 {
		t.Fatal("runtime never paused the batch application")
	}
	// The learning-phase violation happens at period 9; the controller
	// may pause reactively there. What matters for prediction is that the
	// *second* ramp is cut off before its violation step (the last script
	// entry).
	if pausedAt >= len(env.script)-1 {
		t.Errorf("pause at %d is too late (script len %d)", pausedAt, len(env.script))
	}
	if len(act.Events()) == 0 {
		t.Error("no actuations recorded")
	}
	rep := r.Report()
	if rep.PredictedViolations == 0 {
		t.Error("no predicted violations despite repeat ramp")
	}
}

func TestDisableActionsObservesOnly(t *testing.T) {
	cfg := baseConfig()
	cfg.DisableActions = true
	env := &fakeEnv{script: rampScenario()}
	r, act := newTestRuntime(t, cfg, env)
	for i := 0; i < len(env.script); i++ {
		if _, err := r.Period(); err != nil {
			t.Fatal(err)
		}
	}
	if len(act.Events()) != 0 {
		t.Errorf("observe-only mode actuated: %v", act.Events())
	}
	if r.Report().PredictedViolations == 0 {
		t.Error("observe-only mode should still predict")
	}
}

func TestRefreshEmbeddingRuns(t *testing.T) {
	cfg := baseConfig()
	cfg.RefreshEvery = 3
	// Many distinct vectors force state creation each period.
	var script []envStep
	for i := 0; i < 12; i++ {
		script = append(script, envStep{sensitiveCPU: float64(20 + i*30), sensRunning: true})
	}
	env := &fakeEnv{script: script}
	r, _ := newTestRuntime(t, cfg, env)
	for range script {
		if _, err := r.Period(); err != nil {
			t.Fatal(err)
		}
	}
	rep := r.Report()
	if rep.Refreshes == 0 {
		t.Error("no SMACOF refreshes despite many new states")
	}
	if rep.LastStress > 0.2 {
		t.Errorf("refresh stress = %v, want low for 1-D data", rep.LastStress)
	}
}

func TestEventsRecorded(t *testing.T) {
	env := &fakeEnv{script: []envStep{{sensitiveCPU: 100, sensRunning: true}}}
	r, _ := newTestRuntime(t, baseConfig(), env)
	if _, err := r.Period(); err != nil {
		t.Fatal(err)
	}
	evs := r.Events()
	if len(evs) != 1 || evs[0].Period != 0 {
		t.Errorf("events = %v", evs)
	}
	if evs[0].String() == "" {
		t.Error("event string empty")
	}
}

func TestTemplateRoundTripThroughRuntime(t *testing.T) {
	env := &fakeEnv{script: rampScenario()}
	r, _ := newTestRuntime(t, baseConfig(), env)
	for range env.script {
		if _, err := r.Period(); err != nil {
			t.Fatal(err)
		}
	}
	tpl := r.ExportTemplate("web")
	if len(tpl.States) == 0 {
		t.Fatal("template empty")
	}

	// A fresh runtime importing the template starts with the violation
	// knowledge.
	env2 := &fakeEnv{script: rampScenario()}
	r2, _ := newTestRuntime(t, baseConfig(), env2)
	if err := r2.ImportTemplate(tpl); err != nil {
		t.Fatal(err)
	}
	if !r2.Space().HasViolations() {
		t.Error("imported space lost violations")
	}
	// The seeded runtime should throttle earlier than a cold one: its
	// first ramp is already guarded.
	var firstPause2 = -1
	for i := 0; i < len(env2.script); i++ {
		ev, err := r2.Period()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Action == throttle.ActionPause && firstPause2 < 0 {
			firstPause2 = ev.Period
			break
		}
	}
	if firstPause2 < 0 {
		t.Fatal("template-seeded runtime never paused")
	}
	if firstPause2 >= 9 {
		t.Errorf("template-seeded pause at %d; should beat the cold learning violation at 9", firstPause2)
	}
}

func TestImportTemplateAfterStartFails(t *testing.T) {
	env := &fakeEnv{script: []envStep{{sensitiveCPU: 100, sensRunning: true}}}
	r, _ := newTestRuntime(t, baseConfig(), env)
	if _, err := r.Period(); err != nil {
		t.Fatal(err)
	}
	tpl := r.ExportTemplate("web")
	if err := r.ImportTemplate(tpl); err == nil {
		t.Error("import after periods should error")
	}
}

func TestAccuracyTrackerWired(t *testing.T) {
	env := &fakeEnv{script: rampScenario()}
	r, _ := newTestRuntime(t, baseConfig(), env)
	for range env.script {
		if _, err := r.Period(); err != nil {
			t.Fatal(err)
		}
	}
	if r.Tracker().Total() != len(env.script)-1 {
		t.Errorf("tracked %d, want %d (one per period after the first)",
			r.Tracker().Total(), len(env.script)-1)
	}
}

func TestReportString(t *testing.T) {
	var rep Report
	if rep.String() == "" {
		t.Error("report string empty")
	}
}
