package core

import (
	"testing"

	"repro/internal/throttle"
	"repro/internal/trajectory"
)

func TestApplyDefaultsFillsZeroValues(t *testing.T) {
	cfg := Config{
		SensitiveID: "web",
		Ranges:      testRanges(),
	}
	cfg.applyDefaults()
	if cfg.LogicalBatchVM != "batch" {
		t.Errorf("LogicalBatchVM = %q", cfg.LogicalBatchVM)
	}
	if cfg.DedupEpsilon != 0.03 || cfg.RefreshEvery != 8 || cfg.SeriesWindow != 512 {
		t.Errorf("defaults = %v/%v/%v", cfg.DedupEpsilon, cfg.RefreshEvery, cfg.SeriesWindow)
	}
	if cfg.Predictor.Samples != 5 {
		t.Errorf("predictor default = %+v", cfg.Predictor)
	}
	if cfg.Trajectory == (trajectory.ModelConfig{}) {
		t.Error("trajectory default not applied")
	}
	if cfg.Throttle == (throttle.Config{}) {
		t.Error("throttle default not applied")
	}
	// Explicit values survive.
	cfg2 := Config{SensitiveID: "web", Ranges: testRanges(), DedupEpsilon: -1, RefreshEvery: 3}
	cfg2.applyDefaults()
	if cfg2.DedupEpsilon != -1 || cfg2.RefreshEvery != 3 {
		t.Errorf("explicit values overwritten: %v/%v", cfg2.DedupEpsilon, cfg2.RefreshEvery)
	}
}

func TestRuntimeBetaAccessor(t *testing.T) {
	env := &fakeEnv{script: []envStep{{sensitiveCPU: 10, sensRunning: true}}}
	r, _ := newTestRuntime(t, baseConfig(), env)
	if r.Beta() != 0.01 {
		t.Errorf("initial beta = %v, want 0.01", r.Beta())
	}
}

func TestEventStringFlags(t *testing.T) {
	ev := Event{Period: 3, NewState: true, Violation: true, Predicted: true, Throttled: true}
	s := ev.String()
	for _, want := range []string{"N", "V", "P", "T", "p=3"} {
		if !contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	plain := Event{Period: 1}.String()
	if !contains(plain, "-") {
		t.Errorf("plain event %q missing '-' flags", plain)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLandmarkRefresh(t *testing.T) {
	cfg := baseConfig()
	cfg.LandmarkThreshold = 5
	cfg.RefreshEvery = 3
	// Many distinct states so the space exceeds the landmark threshold.
	var script []envStep
	for i := 0; i < 16; i++ {
		script = append(script, envStep{sensitiveCPU: float64(15 + i*22), sensRunning: true})
	}
	env := &fakeEnv{script: script}
	r, _ := newTestRuntime(t, cfg, env)
	for range script {
		if _, err := r.Period(); err != nil {
			t.Fatal(err)
		}
	}
	rep := r.Report()
	if rep.Refreshes == 0 {
		t.Fatal("no refreshes happened")
	}
	if rep.States <= cfg.LandmarkThreshold {
		t.Fatalf("states = %d, need > threshold %d to exercise landmark path",
			rep.States, cfg.LandmarkThreshold)
	}
	// 1-D CPU ramps embed with low stress even through the landmark path.
	if rep.LastStress > 0.2 {
		t.Errorf("landmark refresh stress = %v", rep.LastStress)
	}
}

func TestDisableBatchAggregationSchema(t *testing.T) {
	cfg := baseConfig()
	cfg.DisableBatchAggregation = true
	env := &fakeEnv{script: []envStep{
		{sensitiveCPU: 100, batchCPU: 50, sensRunning: true, batchRunning: true, batchActive: true},
	}}
	r, _ := newTestRuntime(t, cfg, env)
	ev, err := r.Period()
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Space().State(ev.StateID)
	if err != nil {
		t.Fatal(err)
	}
	// Schema: sensitive + one batch container × 4 metrics = 8 dims.
	if len(st.Vector) != 8 {
		t.Errorf("vector dim = %d, want 8", len(st.Vector))
	}
}
