package core

import (
	"sync"
	"testing"

	"repro/internal/throttle"
)

// TestHostLifecycleE2E is the live-operations acceptance scenario at the
// core layer: with batch containers actively throttled, a lane is added,
// a lane is removed, and an invalid reconfiguration is pushed — the
// surviving lane never sees a restriction gap, the departing lane's
// batch containers are released exactly once, and the invalid config is
// rejected without disturbing the running set.
func TestHostLifecycleE2E(t *testing.T) {
	env := &fakeHostEnv{script: []hostStep{
		colocated(100, 300, 50, false, false),
		colocated(100, 300, 200, true, true), // both lanes violate → both freeze
		colocated(100, 300, 200, true, true),
	}}
	act := throttle.NewRecordingActuator()
	h := newTwoLaneHost(t, env, act)
	for i := 0; i < 2; i++ {
		if _, err := h.Period(); err != nil {
			t.Fatal(err)
		}
	}
	if got := act.Paused(); len(got) != 2 {
		t.Fatalf("paused = %v, want the shared pool frozen", got)
	}

	// Add a third lane live while the pool is frozen. The newcomer must
	// not disturb the existing restrictions.
	cfg := laneConfig("cache", "cache-app")
	if _, err := h.AddLane(cfg, laneSig{env, "cache-app"}); err != nil {
		t.Fatalf("live AddLane: %v", err)
	}
	if got := act.Paused(); len(got) != 2 {
		t.Fatalf("paused after live add = %v, want unchanged", got)
	}

	// Invalid reconfiguration: cache-app tries to claim web-app's
	// sensitive container. Rejected; running set untouched.
	bad := laneConfig("web", "cache-app")
	if _, _, err := h.ReconfigureLane(bad, laneSig{env, "cache-app"}); err == nil {
		t.Fatal("reconfigure onto another lane's sensitive container should error")
	}
	if got := h.Apps(); len(got) != 3 {
		t.Fatalf("Apps() after rejected reconfigure = %v", got)
	}
	if got := act.Paused(); len(got) != 2 {
		t.Fatalf("paused after rejected reconfigure = %v, want unchanged", got)
	}

	// Remove one of the two restricting lanes: the survivor still wants
	// the pool frozen, so there must be NO gap — no thaw at all.
	resumesBefore := countResumes(act)
	removed, err := h.RemoveLane("kv-app")
	if err != nil {
		t.Fatalf("RemoveLane(kv-app): %v", err)
	}
	if removed == nil || removed.App() != "kv-app" {
		t.Fatalf("RemoveLane returned %v", removed)
	}
	// The departing lane's learned state is still checkpointable.
	if ck := removed.Checkpoint(); ck == nil || ck.Validate() != nil {
		t.Fatal("departing lane checkpoint not flushable")
	}
	if got := act.Paused(); len(got) != 2 {
		t.Fatalf("paused after removing one of two restricting lanes = %v, want still frozen", got)
	}
	if got := countResumes(act); got != resumesBefore {
		t.Fatalf("resumes went %d → %d during survivor-protected removal, want no thaw", resumesBefore, got)
	}
	if lanes := h.Arbiter().Restricting("b1"); len(lanes) != 1 || lanes[0] != "web-app" {
		t.Fatalf("Restricting(b1) = %v, want only the survivor", lanes)
	}

	// Remove the last restricting lane: the departing lane's batch
	// containers are released exactly once.
	if _, err := h.RemoveLane("web-app"); err != nil {
		t.Fatalf("RemoveLane(web-app): %v", err)
	}
	if got := act.Paused(); len(got) != 0 {
		t.Fatalf("paused after last restricting lane left = %v, want empty", got)
	}
	if got := countResumes(act); got != resumesBefore+1 {
		t.Fatalf("resumes = %d, want exactly one release (was %d)", got, resumesBefore)
	}

	// The host keeps running on the remaining lane.
	if got := h.Apps(); len(got) != 1 || got[0] != "cache-app" {
		t.Fatalf("Apps() = %v", got)
	}
	if _, err := h.Period(); err != nil {
		t.Fatal(err)
	}
}

func countResumes(act *throttle.RecordingActuator) int {
	n := 0
	for _, e := range act.Events() {
		if e.Action == throttle.ActionResume {
			n++
		}
	}
	return n
}

func TestHostRemoveLaneUnknown(t *testing.T) {
	env := &fakeHostEnv{}
	h := newTwoLaneHost(t, env, throttle.NewRecordingActuator())
	if _, err := h.RemoveLane("nope"); err == nil {
		t.Error("removing an unknown lane should error")
	}
	if got := h.Apps(); len(got) != 2 {
		t.Fatalf("Apps() after failed remove = %v", got)
	}
}

// TestHostReconfigureLaneCarriesState replaces a lane with a
// schema-compatible config and expects the learned space and controller
// threshold to survive the swap.
func TestHostReconfigureLaneCarriesState(t *testing.T) {
	env := &fakeHostEnv{script: []hostStep{
		colocated(100, 300, 50, false, false),
		colocated(150, 250, 100, false, false),
		colocated(120, 280, 150, false, true),
	}}
	act := throttle.NewRecordingActuator()
	h := newTwoLaneHost(t, env, act)
	for i := 0; i < 3; i++ {
		if _, err := h.Period(); err != nil {
			t.Fatal(err)
		}
	}
	old := h.Lane("kv-app")
	states := old.Space().Len()
	if states == 0 {
		t.Fatal("lane learned nothing before reconfigure")
	}

	cfg := laneConfig("kv", "kv-app")
	cfg.Throttle.MaxBeta = 0.42 // a tuning change that keeps the measurement schema
	lane, carried, err := h.ReconfigureLane(cfg, laneSig{env, "kv-app"})
	if err != nil {
		t.Fatalf("ReconfigureLane: %v", err)
	}
	if !carried {
		t.Fatal("schema-compatible reconfigure should carry learned state")
	}
	if lane == old {
		t.Fatal("reconfigure returned the old lane")
	}
	if got := lane.Space().Len(); got != states {
		t.Fatalf("carried space has %d states, want %d", got, states)
	}
	if h.Lane("kv-app") != lane {
		t.Fatal("host does not serve the replacement lane")
	}
	// Lane order is preserved: kv-app is still second.
	if got := h.Apps(); len(got) != 2 || got[1] != "kv-app" {
		t.Fatalf("Apps() = %v", got)
	}
	if _, err := h.Period(); err != nil {
		t.Fatalf("period after reconfigure: %v", err)
	}

	// Reconfiguring an unknown app errors.
	if _, _, err := h.ReconfigureLane(laneConfig("x", "x-app"), laneSig{env, "x-app"}); err == nil {
		t.Error("reconfiguring an unknown lane should error")
	}
}

func TestHostHealth(t *testing.T) {
	env := &fakeHostEnv{script: []hostStep{
		colocated(100, 300, 50, false, false),
		colocated(100, 300, 200, false, true), // kv violates → throttles
	}}
	act := throttle.NewRecordingActuator()
	h := newTwoLaneHost(t, env, act)
	for i := 0; i < 2; i++ {
		if _, err := h.Period(); err != nil {
			t.Fatal(err)
		}
	}
	health := h.Health()
	if len(health) != 2 {
		t.Fatalf("Health() = %d lanes, want 2", len(health))
	}
	if health[0].App != "web-app" || health[1].App != "kv-app" {
		t.Fatalf("health apps = %q, %q", health[0].App, health[1].App)
	}
	for _, lh := range health {
		if lh.Periods != 2 {
			t.Errorf("%s Periods = %d, want 2", lh.App, lh.Periods)
		}
		if lh.States == 0 {
			t.Errorf("%s States = 0", lh.App)
		}
		if lh.Beta <= 0 {
			t.Errorf("%s Beta = %v", lh.App, lh.Beta)
		}
	}
	if health[0].Throttled || !health[1].Throttled {
		t.Errorf("throttled: web=%v kv=%v", health[0].Throttled, health[1].Throttled)
	}
	if health[1].Violations != 1 {
		t.Errorf("kv Violations = %d, want 1", health[1].Violations)
	}
	if health[1].Level != 0 {
		t.Errorf("kv Level = %v, want 0 (frozen)", health[1].Level)
	}
}

// TestLaneConcurrentEventDrains runs two consumers with independent
// cursors (the daemon's report drain and the admin SSE publisher) over
// one lane's event ring while the control loop keeps appending. Run
// under -race this is the regression test for the eventLog locking; it
// also asserts both consumers see every period exactly once.
func TestLaneConcurrentEventDrains(t *testing.T) {
	const periods = 200
	env := &fakeHostEnv{script: []hostStep{colocated(100, 300, 50, false, false)}}
	act := throttle.NewRecordingActuator()
	h, err := NewHost(env, act)
	if err != nil {
		t.Fatal(err)
	}
	lane, err := h.AddLane(laneConfig("web", "web-app"), laneSig{env, "web-app"})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	drain := func(name string) {
		defer wg.Done()
		var seq uint64
		var got []Event
		for {
			evs, next := lane.EventsSince(seq)
			got = append(got, evs...)
			seq = next
			select {
			case <-done:
				evs, _ = lane.EventsSince(seq)
				got = append(got, evs...)
				if len(got) != periods {
					t.Errorf("%s drained %d events, want %d", name, len(got), periods)
					return
				}
				for i, ev := range got {
					if ev.Period != i {
						t.Errorf("%s event %d has Period %d — gap or duplicate", name, i, ev.Period)
						return
					}
				}
				return
			default:
			}
		}
	}
	wg.Add(2)
	go drain("report")
	go drain("sse")

	for i := 0; i < periods; i++ {
		if _, err := h.Period(); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}
