package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/throttle"
)

// staleEnv extends fakeEnv with a scripted QoS-freshness signal
// (core.QoSFreshness); the final value repeats like the env script.
type staleEnv struct {
	fakeEnv
	fresh []bool
}

func (e *staleEnv) QoSFresh() bool {
	idx := e.i - 1
	if idx >= len(e.fresh) {
		idx = len(e.fresh) - 1
	}
	if idx < 0 {
		return true
	}
	return e.fresh[idx]
}

var _ QoSFreshness = (*staleEnv)(nil)

func TestRuntimeMarksQoSStaleAtExactThreshold(t *testing.T) {
	// Threshold 2: the FIRST silent period is tolerated, the second flips
	// the staleness flag — and a state first seen while stale stays
	// unverified until a fresh-signal revisit.
	env := &staleEnv{
		fakeEnv: fakeEnv{script: []envStep{
			{sensitiveCPU: 50, sensRunning: true},  // fresh baseline
			{sensitiveCPU: 50, sensRunning: true},  // silent #1: below threshold
			{sensitiveCPU: 250, sensRunning: true}, // silent #2: stale; NEW state
			{sensitiveCPU: 250, sensRunning: true}, // silent #3: still stale
			{sensitiveCPU: 250, sensRunning: true}, // fresh revisit: verifies
		}},
		fresh: []bool{true, false, false, false, true},
	}
	cfg := baseConfig()
	cfg.QoSStaleAfter = 2
	r, _ := newTestRuntime(t, cfg, env)

	var evs []Event
	for range env.script {
		ev, err := r.Period()
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}

	wantStale := []bool{false, false, true, true, false}
	for i, want := range wantStale {
		if evs[i].QoSStale != want {
			t.Errorf("period %d: QoSStale = %v, want %v", i, evs[i].QoSStale, want)
		}
	}
	if !evs[2].NewState {
		t.Fatal("setup: period 2 did not create a state")
	}
	rep := r.Report()
	if rep.QoSStalePeriods != 2 {
		t.Errorf("QoSStalePeriods = %d, want 2", rep.QoSStalePeriods)
	}
	// The fresh revisit at period 4 verified the stale-born state.
	if rep.UnverifiedStates != 0 {
		t.Errorf("UnverifiedStates = %d after fresh revisit, want 0", rep.UnverifiedStates)
	}
	if !strings.Contains(rep.String(), "qos_stale=2") {
		t.Errorf("report does not surface staleness: %q", rep.String())
	}
}

func TestRuntimeStaleStateStaysUnverifiedWithoutFreshRevisit(t *testing.T) {
	env := &staleEnv{
		fakeEnv: fakeEnv{script: []envStep{
			{sensitiveCPU: 50, sensRunning: true},
			{sensitiveCPU: 50, sensRunning: true},
			{sensitiveCPU: 250, sensRunning: true}, // stale birth
			{sensitiveCPU: 250, sensRunning: true}, // stale revisit: no verification
		}},
		fresh: []bool{true, false, false, false},
	}
	cfg := baseConfig()
	cfg.QoSStaleAfter = 2
	r, _ := newTestRuntime(t, cfg, env)
	for range env.script {
		if _, err := r.Period(); err != nil {
			t.Fatal(err)
		}
	}
	if rep := r.Report(); rep.UnverifiedStates != 1 {
		t.Errorf("UnverifiedStates = %d, want 1 (silence proves nothing)", rep.UnverifiedStates)
	}
}

// driveServer feeds one tick per script step, tolerating a loop that dies
// mid-script, then finishes via stop.
func driveServer(t *testing.T, s *Server, ticks chan time.Time, n int, stop func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			select {
			case ticks <- time.Time{}:
			case <-time.After(time.Second):
				return
			}
		}
	}()
	<-done
	stop()
	s.Wait()
}

func TestServerFailSafeThawsBeforeWaitReturns(t *testing.T) {
	for _, tc := range []struct {
		name string
		stop func(cancel context.CancelFunc, ticks chan time.Time)
	}{
		{"context-cancel", func(cancel context.CancelFunc, _ chan time.Time) { cancel() }},
		{"tick-close", func(_ context.CancelFunc, ticks chan time.Time) { close(ticks) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := &fakeEnv{script: rampScenario()}
			r, act := newTestRuntime(t, baseConfig(), env)
			s, err := NewServer(r)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ticks := make(chan time.Time)
			if err := s.Start(ctx, ticks); err != nil {
				t.Fatal(err)
			}
			driveServer(t, s, ticks, len(env.script), func() { tc.stop(cancel, ticks) })

			// The instant Wait returns, nothing may still be frozen: the
			// emergency release ran on the loop's way out.
			if paused := act.Paused(); len(paused) != 0 {
				t.Errorf("cgroups still frozen after Wait: %v", paused)
			}
			events := act.Events()
			if len(events) == 0 {
				t.Fatal("ramp scenario produced no actuations")
			}
			foundResume := false
			for _, ev := range events {
				if ev.Action == throttle.ActionResume {
					foundResume = true
				}
			}
			if !foundResume {
				t.Error("no resume event; fail-safe did not actuate")
			}
			h := s.Health()
			if !h.FailSafeRan || h.FailSafeErr != nil {
				t.Errorf("health = ran %v err %v, want clean fail-safe", h.FailSafeRan, h.FailSafeErr)
			}
			if h.Panicked {
				t.Error("clean shutdown reported as panic")
			}
		})
	}
}

func TestServerAbsorbsRuntimePanicAndStillThaws(t *testing.T) {
	// An environment whose QoS check panics partway through: the loop must
	// die without taking the process down, and the fail-safe must still
	// thaw everything.
	env := &panicQoSEnv{fakeEnv: fakeEnv{script: rampScenario()}, panicAt: 5}
	r, act := newTestRuntime(t, baseConfig(), env)
	s, err := NewServer(r)
	if err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "ck.json")
	s.CheckpointPath = ck
	s.CheckpointEvery = 1000 // only the final checkpoint could fire
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	driveServer(t, s, ticks, len(env.script), func() {})

	h := s.Health()
	if !h.Panicked {
		t.Error("panic not recorded in health")
	}
	if !h.FailSafeRan {
		t.Error("fail-safe skipped after panic")
	}
	if len(act.Paused()) != 0 {
		t.Errorf("cgroups frozen after panic exit: %v", act.Paused())
	}
	_, _, lastErr := s.Snapshot()
	if lastErr == nil || !strings.Contains(lastErr.Error(), "panic") {
		t.Errorf("last error = %v, want the absorbed panic", lastErr)
	}
	// No final checkpoint after a panic: mid-period state is untrusted.
	if _, err := os.Stat(ck); !os.IsNotExist(err) {
		t.Errorf("checkpoint written after panic (stat err %v)", err)
	}
}

// panicQoSEnv panics in QoSViolation on period panicAt.
type panicQoSEnv struct {
	fakeEnv
	panicAt int
	periods int
}

func (e *panicQoSEnv) QoSViolation() bool {
	e.periods++
	if e.periods > e.panicAt {
		panic("injected QoS fault")
	}
	return e.fakeEnv.QoSViolation()
}

func TestServerCheckpointRoundTripRestoresLearnedState(t *testing.T) {
	env := &fakeEnv{script: rampScenario()}
	r, _ := newTestRuntime(t, baseConfig(), env)
	s, err := NewServer(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "state", "checkpoint.json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	s.CheckpointPath = path
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	driveServer(t, s, ticks, len(env.script), func() { close(ticks) })

	h := s.Health()
	if h.Checkpoints == 0 || h.CheckpointErr != nil {
		t.Fatalf("health = %d checkpoints, err %v", h.Checkpoints, h.CheckpointErr)
	}
	ck, err := resilience.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("checkpoint missing after clean exit")
	}
	if ck.Periods != len(env.script) {
		t.Errorf("checkpoint periods = %d, want %d", ck.Periods, len(env.script))
	}

	// A rebooted daemon restoring the checkpoint starts with the learned
	// map AND the learned β — it must guard the very first ramp, like a
	// template-seeded runtime, without relearning.
	env2 := &fakeEnv{script: rampScenario()}
	r2, _ := newTestRuntime(t, baseConfig(), env2)
	if err := r2.RestoreCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	if !r2.Space().HasViolations() {
		t.Error("restored space lost violation states")
	}
	if r2.Beta() != r.Beta() {
		t.Errorf("restored beta = %v, want %v", r2.Beta(), r.Beta())
	}
	firstPause := -1
	for i := 0; i < len(env2.script); i++ {
		ev, err := r2.Period()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Action == throttle.ActionPause {
			firstPause = ev.Period
			break
		}
	}
	if firstPause < 0 {
		t.Fatal("restored runtime never paused")
	}
	if firstPause >= 9 {
		t.Errorf("restored runtime paused at %d; should beat the cold learning violation at 9", firstPause)
	}
}

func TestServerCheckpointCadence(t *testing.T) {
	env := &fakeEnv{script: rampScenario()}
	r, _ := newTestRuntime(t, baseConfig(), env)
	s, err := NewServer(r)
	if err != nil {
		t.Fatal(err)
	}
	s.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
	s.CheckpointEvery = 5
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	driveServer(t, s, ticks, len(env.script), func() { close(ticks) })
	// len/5 periodic checkpoints plus the final one.
	want := len(env.script)/5 + 1
	if h := s.Health(); h.Checkpoints != want {
		t.Errorf("checkpoints = %d, want %d", h.Checkpoints, want)
	}
}

func TestHealthSurfacesQoSStaleness(t *testing.T) {
	env := &staleEnv{
		fakeEnv: fakeEnv{script: []envStep{
			{sensitiveCPU: 50, sensRunning: true},
			{sensitiveCPU: 50, sensRunning: true},
			{sensitiveCPU: 50, sensRunning: true},
		}},
		fresh: []bool{true, false, false},
	}
	cfg := baseConfig()
	cfg.QoSStaleAfter = 2
	r, _ := newTestRuntime(t, cfg, env)
	s, err := NewServer(r)
	if err != nil {
		t.Fatal(err)
	}
	ticks := make(chan time.Time)
	if err := s.Start(context.Background(), ticks); err != nil {
		t.Fatal(err)
	}
	driveServer(t, s, ticks, len(env.script), func() { close(ticks) })
	if h := s.Health(); !h.QoSStale {
		t.Error("health does not surface the stale QoS signal")
	}
}
