package core

import (
	"repro/internal/throttle"
)

// actStage is the default Actor: it wraps a throttle.Controller. In a
// multi-tenant host the controller's actuator is a per-lane handle of the
// shared actuation arbiter, so two lanes never fight over the same batch
// cgroups directly.
type actStage struct {
	controller *throttle.Controller
	disabled   bool
}

var _ Actor = (*actStage)(nil)

// newActStage wraps the controller; disabled mirrors
// Config.DisableActions (observe-only mode).
func newActStage(controller *throttle.Controller, disabled bool) *actStage {
	return &actStage{controller: controller, disabled: disabled}
}

// Act implements Actor. In observe-only mode it returns the zero Result —
// no action, no throttle, β and level unreported — matching events from
// runs that never actuate.
func (s *actStage) Act(in ActInput) (throttle.Result, error) {
	if s.disabled {
		return throttle.Result{}, nil
	}
	return s.controller.Step(throttle.Input{
		Period:                in.Period,
		PredictedViolation:    in.PredictedViolation,
		ActualViolation:       in.ActualViolation,
		ViolationSeverity:     in.Severity,
		SensitiveStepDistance: in.SensitiveStep,
		BatchActive:           in.BatchActive,
	})
}

// Controller exposes the wrapped throttle controller for state accessors
// (β, level) and checkpointing.
func (s *actStage) Controller() *throttle.Controller { return s.controller }
