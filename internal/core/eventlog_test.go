package core

import (
	"testing"

	"repro/internal/throttle"
)

func TestEventLogUnboundedWhenNegative(t *testing.T) {
	log := newEventLog(-1)
	for i := 0; i < 10000; i++ {
		log.append(Event{Period: i})
	}
	if got := log.len(); got != 10000 {
		t.Fatalf("len = %d, want everything retained", got)
	}
	evs, next := log.since(9998)
	if len(evs) != 2 || evs[0].Period != 9998 || next != 10000 {
		t.Fatalf("since(9998) = %d events, next %d", len(evs), next)
	}
}

func TestEventLogRingEviction(t *testing.T) {
	log := newEventLog(4)
	for i := 0; i < 10; i++ {
		log.append(Event{Period: i})
	}
	all := log.all()
	if len(all) != 4 {
		t.Fatalf("len = %d, want window of 4", len(all))
	}
	if all[0].Period != 6 || all[3].Period != 9 {
		t.Fatalf("window = periods %d..%d, want 6..9", all[0].Period, all[3].Period)
	}
}

func TestEventLogSinceDrain(t *testing.T) {
	log := newEventLog(4)
	var seq uint64
	for i := 0; i < 3; i++ {
		log.append(Event{Period: i})
	}
	// First drain sees everything so far.
	evs, seq := log.since(seq)
	if len(evs) != 3 || seq != 3 {
		t.Fatalf("drain 1: %d events, next %d", len(evs), seq)
	}
	// Nothing new: empty drain, cursor unchanged.
	evs, seq = log.since(seq)
	if len(evs) != 0 || seq != 3 {
		t.Fatalf("drain 2: %d events, next %d", len(evs), seq)
	}
	// Two more events arrive.
	log.append(Event{Period: 3})
	log.append(Event{Period: 4})
	evs, seq = log.since(seq)
	if len(evs) != 2 || evs[0].Period != 3 || seq != 5 {
		t.Fatalf("drain 3: %d events, next %d", len(evs), seq)
	}
	// A slow reader whose cursor fell off the window is clamped to the
	// oldest retained event instead of erroring.
	for i := 5; i < 12; i++ {
		log.append(Event{Period: i})
	}
	evs, seq = log.since(5)
	if len(evs) != 4 || evs[0].Period != 8 || seq != 12 {
		t.Fatalf("clamped drain: %d events starting %d, next %d", len(evs), evs[0].Period, seq)
	}
}

func TestRuntimeEventWindowBoundsGrowth(t *testing.T) {
	env := &fakeEnv{script: []envStep{{sensitiveCPU: 100, sensRunning: true}}}
	cfg := baseConfig()
	cfg.EventWindow = 8
	r, _ := newTestRuntime(t, cfg, env)
	for i := 0; i < 100; i++ {
		if _, err := r.Period(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(r.Events()); got != 8 {
		t.Fatalf("retained %d events, want window of 8", got)
	}
	evs, next := r.EventsSince(0)
	if len(evs) != 8 || evs[0].Period != 92 || next != 100 {
		t.Fatalf("EventsSince(0): %d events from %d, next %d", len(evs), evs[0].Period, next)
	}
	rep := r.Report()
	if rep.Periods != 100 {
		t.Fatalf("report periods = %d despite eviction", rep.Periods)
	}
}

func TestConfigRejectsDuplicateBatchIDs(t *testing.T) {
	env := &fakeEnv{}
	act := throttle.NewRecordingActuator()
	cfg := baseConfig()
	cfg.BatchIDs = []string{"b1", "b2", "b1"}
	if _, err := New(cfg, env, act); err == nil {
		t.Fatal("duplicate BatchIDs should be rejected")
	}
}
