package core

import "sync"

// eventLog retains per-period events in a bounded ring. Long daemon runs
// previously accumulated one Event per period forever; the ring bounds
// memory while sequence numbers let report paths drain incrementally
// without missing (un-evicted) events.
//
// The log is internally locked: append only ever happens from the
// control-loop goroutine (Lane.Period), but several consumers — the
// daemon's report drain and the admin SSE publisher, each with its own
// cursor — may drain concurrently with the loop via EventsSince. The
// mutex covers exactly that read path; the Lane as a whole remains
// single-threaded.
type eventLog struct {
	mu  sync.Mutex
	buf []Event
	max int
	// next is the sequence number the next appended event will get; the
	// oldest retained event has sequence next-len(buf).
	next uint64
}

// newEventLog returns a log retaining at most max events; max <= 0 keeps
// everything (the pre-ring behaviour, for short experiment runs that
// render figures from the full history).
func newEventLog(max int) *eventLog {
	return &eventLog{max: max}
}

// append records an event, evicting the oldest when full.
func (l *eventLog) append(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = append(l.buf, ev)
	l.next++
	if l.max > 0 && len(l.buf) > l.max {
		// Shift rather than reslice so the evicted prefix is reclaimable.
		n := copy(l.buf, l.buf[len(l.buf)-l.max:])
		l.buf = l.buf[:n]
	}
}

// all returns a copy of every retained event.
func (l *eventLog) all() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.buf...)
}

// since returns a copy of all retained events with sequence >= seq, plus
// the sequence number to pass next time (one past the newest returned
// event). Evicted events are gone: asking for a sequence older than the
// retention window returns only what is still held.
func (l *eventLog) since(seq uint64) ([]Event, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	oldest := l.next - uint64(len(l.buf))
	if seq < oldest {
		seq = oldest
	}
	if seq >= l.next {
		return nil, l.next
	}
	start := len(l.buf) - int(l.next-seq)
	return append([]Event(nil), l.buf[start:]...), l.next
}

// len reports how many events are retained.
func (l *eventLog) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}
