// Package core assembles the Stay-Away runtime: the per-period
// Mapping → Prediction → Action loop of §3 that turns raw per-container
// usage samples into a 2-D state space, predicts transitions toward
// learned violation-states, and throttles batch applications before the
// violation materializes.
package core

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/statespace"
	"repro/internal/throttle"
	"repro/internal/trajectory"
)

// Config assembles a Runtime.
type Config struct {
	// SensitiveID is the container ID of the latency-sensitive
	// application.
	SensitiveID string
	// BatchIDs are the batch containers; they are aggregated into one
	// logical VM (§5) and throttled collectively.
	BatchIDs []string
	// LogicalBatchVM names the aggregated batch VM in the measurement
	// schema. Defaults to "batch".
	LogicalBatchVM string
	// SensitiveApp is the fleet-wide name of the sensitive *application*
	// (as opposed to SensitiveID, the local container). Templates exported
	// for the registry are keyed by it, so hosts running the same
	// application under different container IDs still share one map.
	// Defaults to SensitiveID.
	SensitiveApp string

	// Ranges configures metric normalization (§4). Required.
	Ranges map[metrics.Metric]metrics.Range

	// DedupEpsilon merges ε-close normalized measurement vectors into one
	// representative state (§4's SMACOF cost optimization). Defaults to
	// 0.05 when 0; negative disables merging.
	DedupEpsilon float64
	// RefreshEvery runs a full (warm-started, Procrustes-aligned) SMACOF
	// refresh after this many newly created states; between refreshes new
	// states are placed incrementally. Defaults to 8 when 0.
	RefreshEvery int
	// SeriesWindow bounds the retained measurement history. Defaults to
	// 512 when 0.
	SeriesWindow int
	// LandmarkThreshold switches full-embedding refreshes to landmark MDS
	// (§4's cited fast approximation) once the state space exceeds this
	// many states, using the threshold as the landmark count. 0 always
	// solves the full problem.
	LandmarkThreshold int

	// Predictor, Trajectory and Throttle tune the subcomponents; zero
	// values take their package defaults.
	Predictor  predictor.Config
	Trajectory trajectory.ModelConfig
	Throttle   throttle.Config

	// RangePolicy overrides how violation-range radii are derived from the
	// nearest-safe-state distance; nil uses the paper's Rayleigh weighting
	// (§3.2.2). Exposed for the range-policy ablation.
	RangePolicy statespace.RangePolicy

	// DisableBatchAggregation gives every batch container its own slot in
	// the measurement schema instead of §5's single logical VM. With many
	// batch containers the vector dimensionality grows and the 2-D
	// embedding distorts ("the best possible configuration in two
	// dimensions may be a poor, highly distorted, representation") —
	// exposed for the aggregation ablation.
	DisableBatchAggregation bool

	// QoSStaleAfter treats the application's QoS signal as stale — not
	// safe — once this many consecutive periods pass without a fresh
	// report (the environment must implement QoSFreshness for silence to
	// be observable). While stale, newly created states are marked
	// unverified so they cannot act as safe-state anchors, and the
	// condition is surfaced in Event.QoSStale / Report.QoSStalePeriods.
	// 0 defaults to 5; negative disables staleness tracking.
	QoSStaleAfter int

	// EventWindow bounds how many per-period events the runtime retains
	// (Events/EventsSince). Long daemon runs previously grew the event
	// slice forever; the ring buffer caps it. 0 defaults to 4096; negative
	// keeps everything (short experiment runs that render figures from the
	// full history).
	EventWindow int

	// SingleModel collapses the per-mode trajectory models into one — the
	// configuration the paper shows is inaccurate; exposed for the
	// ablation experiments.
	SingleModel bool
	// DisableActions runs the full Mapping and Prediction pipeline but
	// never actuates — the observe-only mode used for template validation
	// (Fig 18) and for measuring prediction accuracy against ground truth.
	DisableActions bool

	// Seed drives all randomness in the runtime (prediction sampling and
	// the anti-starvation resume).
	Seed int64
}

// DefaultConfig returns a config for one sensitive container and a set of
// batch containers on a host with the given normalization ranges.
func DefaultConfig(sensitiveID string, batchIDs []string, ranges map[metrics.Metric]metrics.Range) Config {
	return Config{
		SensitiveID:    sensitiveID,
		BatchIDs:       batchIDs,
		LogicalBatchVM: "batch",
		Ranges:         ranges,
		DedupEpsilon:   0.03,
		RefreshEvery:   8,
		SeriesWindow:   512,
		Predictor:      predictor.DefaultConfig(),
		Trajectory:     trajectory.DefaultModelConfig(),
		Throttle:       throttle.DefaultConfig(),
		Seed:           1,
	}
}

func (c *Config) applyDefaults() {
	if c.LogicalBatchVM == "" {
		c.LogicalBatchVM = "batch"
	}
	if c.SensitiveApp == "" {
		c.SensitiveApp = c.SensitiveID
	}
	if c.DedupEpsilon == 0 {
		c.DedupEpsilon = 0.03
	}
	if c.RefreshEvery == 0 {
		c.RefreshEvery = 8
	}
	if c.SeriesWindow == 0 {
		c.SeriesWindow = 512
	}
	if c.Predictor == (predictor.Config{}) {
		c.Predictor = predictor.DefaultConfig()
	}
	if c.Trajectory == (trajectory.ModelConfig{}) {
		c.Trajectory = trajectory.DefaultModelConfig()
	}
	if c.Throttle == (throttle.Config{}) {
		c.Throttle = throttle.DefaultConfig()
	}
	if c.QoSStaleAfter == 0 {
		c.QoSStaleAfter = 5
	}
	if c.EventWindow == 0 {
		c.EventWindow = 4096
	}
}

func (c *Config) validate() error {
	if c.SensitiveID == "" {
		return fmt.Errorf("core: SensitiveID required")
	}
	if len(c.Ranges) == 0 {
		return fmt.Errorf("core: normalization Ranges required")
	}
	if c.SensitiveID == c.LogicalBatchVM {
		return fmt.Errorf("core: SensitiveID %q collides with LogicalBatchVM", c.SensitiveID)
	}
	seenBatch := make(map[string]bool, len(c.BatchIDs))
	for _, id := range c.BatchIDs {
		if id == c.SensitiveID {
			return fmt.Errorf("core: container %q is both sensitive and batch", id)
		}
		if seenBatch[id] {
			// A duplicate batch ID would double-count the container inside
			// the aggregated logical batch VM, skewing every vector.
			return fmt.Errorf("core: duplicate batch container %q", id)
		}
		seenBatch[id] = true
	}
	if c.RefreshEvery < 0 {
		return fmt.Errorf("core: RefreshEvery must be non-negative, got %d", c.RefreshEvery)
	}
	return nil
}

// Environment is what the runtime observes each period. The simulator and
// a real host (cgroups + application callbacks) both satisfy it.
type Environment interface {
	// Collect returns the current per-container usage samples.
	Collect() []metrics.Sample
	// QoSViolation reports whether the sensitive application reported a
	// QoS violation for the period being observed (§3.1: "Stay-Away
	// relies on the application to report whenever a QoS violation
	// happens").
	QoSViolation() bool
	// SensitiveRunning reports whether the sensitive application is
	// actively executing.
	SensitiveRunning() bool
	// BatchRunning reports whether any batch application is actively
	// executing (a frozen batch container is not running).
	BatchRunning() bool
	// BatchActive reports whether any batch application still has work
	// (running or frozen).
	BatchActive() bool
}

// QoSFreshness is an optional Environment extension distinguishing "no
// violation" from "no report": QoSViolation returning false may mean the
// application is healthy — or that its reporting channel went silent
// (crashed reporter, deleted report file, wedged pipe). Environments that
// can tell the difference implement QoSFresh; the runtime then treats
// prolonged silence as stale rather than safe (Config.QoSStaleAfter).
type QoSFreshness interface {
	// QoSFresh reports whether the most recent period had a usable QoS
	// report from the sensitive application.
	QoSFresh() bool
}
