package core

import (
	"path/filepath"
	"testing"

	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/internal/throttle"
)

// hostStep scripts one period of a fake multi-tenant host: per-container
// CPU plus per-lane signals.
type hostStep struct {
	cpu          map[string]float64 // raw CPU per container
	violations   map[string]bool    // per application name
	sensRunning  map[string]bool
	batchRunning bool
	batchActive  bool
}

// fakeHostEnv replays a script; the final step repeats forever. Its
// laneSig handles expose the per-application signals.
type fakeHostEnv struct {
	script []hostStep
	i      int
	cur    hostStep
}

func (f *fakeHostEnv) Collect() []metrics.Sample {
	if f.i < len(f.script) {
		f.cur = f.script[f.i]
		f.i++
	}
	var out []metrics.Sample
	for vm, cpu := range f.cur.cpu {
		out = append(out, metrics.NewSample(vm, map[metrics.Metric]float64{
			metrics.MetricCPU:    cpu,
			metrics.MetricMemory: 500,
		}))
	}
	metrics.SortSamples(out)
	return out
}

func (f *fakeHostEnv) BatchRunning() bool { return f.cur.batchRunning }
func (f *fakeHostEnv) BatchActive() bool  { return f.cur.batchActive }

// laneSig reads one application's signals off the shared fake host.
type laneSig struct {
	env *fakeHostEnv
	app string
}

func (s laneSig) QoSViolation() bool     { return s.env.cur.violations[s.app] }
func (s laneSig) SensitiveRunning() bool { return s.env.cur.sensRunning[s.app] }

var (
	_ HostEnvironment = (*fakeHostEnv)(nil)
	_ LaneSignals     = laneSig{}
)

func laneConfig(sensitiveID, app string) Config {
	cfg := DefaultConfig(sensitiveID, []string{"b1", "b2"}, testRanges())
	cfg.SensitiveApp = app
	return cfg
}

// colocated scripts a period where both sensitives and the batch run.
func colocated(webCPU, kvCPU, batchCPU float64, webViol, kvViol bool) hostStep {
	return hostStep{
		cpu:          map[string]float64{"web": webCPU, "kv": kvCPU, "b1": batchCPU / 2, "b2": batchCPU / 2},
		violations:   map[string]bool{"web-app": webViol, "kv-app": kvViol},
		sensRunning:  map[string]bool{"web-app": true, "kv-app": true},
		batchRunning: true,
		batchActive:  true,
	}
}

func newTwoLaneHost(t *testing.T, env *fakeHostEnv, act throttle.Actuator) *HostRuntime {
	t.Helper()
	h, err := NewHost(env, act)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddLane(laneConfig("web", "web-app"), laneSig{env, "web-app"}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddLane(laneConfig("kv", "kv-app"), laneSig{env, "kv-app"}); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHostAddLaneValidation(t *testing.T) {
	env := &fakeHostEnv{}
	act := throttle.NewRecordingActuator()
	if _, err := NewHost(nil, act); err == nil {
		t.Error("nil environment should error")
	}
	if _, err := NewHost(env, nil); err == nil {
		t.Error("nil actuator should error")
	}
	h, err := NewHost(env, act)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.AddLane(laneConfig("web", "web-app"), nil); err == nil {
		t.Error("nil signals should error")
	}
	if _, err := h.AddLane(laneConfig("web", "web-app"), laneSig{env, "web-app"}); err != nil {
		t.Fatal(err)
	}
	// Duplicate application name.
	if _, err := h.AddLane(laneConfig("web2", "web-app"), laneSig{env, "web-app"}); err == nil {
		t.Error("duplicate app should error")
	}
	// Duplicate sensitive container.
	if _, err := h.AddLane(laneConfig("web", "other"), laneSig{env, "other"}); err == nil {
		t.Error("duplicate sensitive container should error")
	}
	// A lane's sensitive container in another lane's batch set.
	cfg := laneConfig("kv", "kv-app")
	cfg.BatchIDs = []string{"web"}
	if _, err := h.AddLane(cfg, laneSig{env, "kv-app"}); err == nil {
		t.Error("sensitive-as-batch across lanes should error")
	}
	cfg = laneConfig("b1", "b1-app")
	if _, err := h.AddLane(cfg, laneSig{env, "b1-app"}); err == nil {
		t.Error("batch-as-sensitive across lanes should error")
	}

	// No lanes (fresh host) cannot run a period.
	h2, _ := NewHost(env, act)
	if _, err := h2.Period(); err == nil {
		t.Error("period without lanes should error")
	}

	// Lanes can be added live at a period boundary; the newcomer starts
	// at its own period 0 while the host's period count keeps running.
	env.script = []hostStep{colocated(100, 100, 50, false, false)}
	if _, err := h.Period(); err != nil {
		t.Fatal(err)
	}
	lane, err := h.AddLane(laneConfig("kv", "kv-app"), laneSig{env, "kv-app"})
	if err != nil {
		t.Fatalf("live AddLane: %v", err)
	}
	if lane.Periods() != 0 {
		t.Errorf("live lane Periods() = %d, want 0", lane.Periods())
	}
	if _, err := h.Period(); err != nil {
		t.Fatal(err)
	}
	if got := h.Periods(); got != 2 {
		t.Errorf("host Periods() = %d, want 2", got)
	}
	if lane.Periods() != 1 {
		t.Errorf("live lane Periods() = %d, want 1", lane.Periods())
	}
}

func TestHostPeriodFansOutSharedSamples(t *testing.T) {
	env := &fakeHostEnv{script: []hostStep{
		colocated(100, 300, 50, false, false),
		colocated(100, 300, 200, false, true), // kv-app violates
	}}
	act := throttle.NewRecordingActuator()
	h := newTwoLaneHost(t, env, act)

	if got := h.Apps(); len(got) != 2 || got[0] != "web-app" || got[1] != "kv-app" {
		t.Fatalf("Apps() = %v", got)
	}

	evs, err := h.Period()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("events = %d, want one per lane", len(evs))
	}
	if evs[0].App != "web-app" || evs[1].App != "kv-app" {
		t.Fatalf("event apps = %q, %q", evs[0].App, evs[1].App)
	}

	evs, err = h.Period()
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Violation || !evs[1].Violation {
		t.Fatalf("violation fan-out wrong: web=%v kv=%v", evs[0].Violation, evs[1].Violation)
	}
	// The violating lane pauses the shared pool through the arbiter; the
	// other lane is untouched.
	if !evs[1].Throttled || evs[0].Throttled {
		t.Fatalf("throttled: web=%v kv=%v", evs[0].Throttled, evs[1].Throttled)
	}
	if got := act.Paused(); len(got) != 2 {
		t.Fatalf("paused = %v, want both batch containers", got)
	}
	if got := h.Restricting(); len(got["b1"]) != 1 || got["b1"][0] != "kv-app" {
		t.Fatalf("Restricting() = %v", got)
	}

	// Each lane mapped its own sensitive container: distinct CPUs land on
	// distinct vectors, so the lanes learn different spaces.
	web, kv := h.Lane("web-app"), h.Lane("kv-app")
	if web == nil || kv == nil || h.Lane("nope") != nil {
		t.Fatalf("lane lookup broken")
	}
	wv, kvv := web.Space().Vectors(), kv.Space().Vectors()
	if len(wv) == 0 || len(kvv) == 0 {
		t.Fatal("lanes learned nothing")
	}
	if wv[0][0] == kvv[0][0] {
		t.Fatalf("lanes saw identical sensitive CPU %v — fan-out failed", wv[0][0])
	}

	// Emergency release thaws the shared pool.
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
	if got := act.Paused(); len(got) != 0 {
		t.Fatalf("paused after Release = %v", got)
	}

	if got := h.BatchIDs(); len(got) != 2 || got[0] != "b1" || got[1] != "b2" {
		t.Fatalf("BatchIDs() = %v", got)
	}
	if h.Periods() != 2 {
		t.Fatalf("Periods() = %d", h.Periods())
	}
}

// TestHostTwoLaneCrashRecovery is the acceptance scenario: two lanes
// throttle the shared pool, the host dies without releasing, and on
// restart (a) the ledger replay releases the shared batch containers
// exactly once, (b) both lanes restore their own checkpoints from their
// per-lane paths.
func TestHostTwoLaneCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ledger, err := resilience.OpenLedger(filepath.Join(dir, "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	inner := throttle.NewRecordingActuator()
	ledgered, err := resilience.NewLedgeredActuator(inner, ledger)
	if err != nil {
		t.Fatal(err)
	}

	env := &fakeHostEnv{script: []hostStep{
		colocated(100, 300, 50, false, false),
		colocated(150, 250, 100, false, false),
		colocated(120, 280, 150, false, false),
		colocated(100, 300, 200, true, true), // both lanes violate → both freeze
	}}
	host := newTwoLaneHost(t, env, ledgered)
	for i := 0; i < len(env.script); i++ {
		if _, err := host.Period(); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.Paused(); len(got) != 2 {
		t.Fatalf("paused = %v, want the shared pool frozen", got)
	}
	for _, id := range []string{"b1", "b2"} {
		if lanes := host.Arbiter().Restricting(id); len(lanes) != 2 {
			t.Fatalf("Restricting(%s) = %v, want both lanes", id, lanes)
		}
	}

	// Per-lane checkpoints, exactly as the daemon writes them.
	for _, lane := range host.Lanes() {
		path := resilience.LaneCheckpointPath(dir, lane.App())
		if err := resilience.SaveCheckpoint(path, lane.Checkpoint()); err != nil {
			t.Fatalf("checkpoint %s: %v", lane.App(), err)
		}
	}

	// CRASH: the host vanishes without Release. The ledger still holds
	// the freeze records for both shared containers.

	// Restart: replay the ledger first. Both containers thaw in ONE
	// downstream resume (plus the idempotent quota clear).
	ledger2, err := resilience.OpenLedger(filepath.Join(dir, "ledger.json"))
	if err != nil {
		t.Fatal(err)
	}
	inner2 := throttle.NewRecordingActuator()
	thawed, err := resilience.Recover(ledger2, inner2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(thawed) != 2 {
		t.Fatalf("recovery thawed %v, want both shared containers", thawed)
	}
	resumes := 0
	for _, e := range inner2.Events() {
		if e.Action == throttle.ActionResume {
			resumes++
			if len(e.IDs) != 2 {
				t.Fatalf("recovery resume covered %v, want both containers at once", e.IDs)
			}
		}
	}
	if resumes != 1 {
		t.Fatalf("recovery issued %d resumes, want exactly 1", resumes)
	}

	// Both lanes restore their own checkpoint from their own path.
	ledgered2, err := resilience.NewLedgeredActuator(inner2, ledger2)
	if err != nil {
		t.Fatal(err)
	}
	host2 := newTwoLaneHost(t, env, ledgered2)
	for _, lane := range host2.Lanes() {
		ck, err := resilience.LoadCheckpoint(resilience.LaneCheckpointPath(dir, lane.App()))
		if err != nil {
			t.Fatalf("load checkpoint %s: %v", lane.App(), err)
		}
		if ck == nil {
			t.Fatalf("checkpoint %s missing", lane.App())
		}
		if err := lane.RestoreCheckpoint(ck); err != nil {
			t.Fatalf("restore %s: %v", lane.App(), err)
		}
	}
	// The restored lanes kept their learning (distinct per lane), and the
	// restarted host runs.
	w1, k1 := host.Lane("web-app").Space().Len(), host.Lane("kv-app").Space().Len()
	w2, k2 := host2.Lane("web-app").Space().Len(), host2.Lane("kv-app").Space().Len()
	if w2 != w1 || k2 != k1 {
		t.Fatalf("restored states web=%d/%d kv=%d/%d", w2, w1, k2, k1)
	}
	env.i = 0 // replay the script on the restarted host
	if _, err := host2.Period(); err != nil {
		t.Fatal(err)
	}
}
