package sim

import "fmt"

// App is a workload running inside a container. Implementations live in
// the apps package; the simulator only needs demand generation and
// progress application.
type App interface {
	// Name identifies the application (used in labels and reports).
	Name() string
	// Demand returns the resources the application wants for the coming
	// tick.
	Demand(tick int) Demand
	// Advance applies one tick's grant. It returns true when the
	// application has finished all its work (batch jobs); services return
	// false forever.
	Advance(tick int, g Grant) (done bool)
}

// QoSApp is implemented by latency-sensitive applications that report
// their own QoS, mirroring §3.1: "Stay-Away relies on the application to
// report whenever a QoS violation happens."
type QoSApp interface {
	App
	// QoS returns the most recent period's QoS value and the violation
	// threshold; Value < Threshold is a violation.
	QoS() (value, threshold float64)
}

// QueueStats is an open-loop application's request-queue state for the
// most recent tick. Closed-loop apps have no queue and report nothing.
type QueueStats struct {
	// Depth is the request backlog after the tick's service.
	Depth float64
	// OldestAge is how many ticks the oldest queued request has waited.
	OldestAge float64
	// PercentileLatency is the app's SLO-percentile latency in ticks.
	PercentileLatency float64
	// Arrived, Served, Dropped are cumulative request totals.
	Arrived float64
	Served  float64
	Dropped float64
}

// QueueApp is implemented by open-loop applications that expose their
// request-queue state — the observable the closed-loop grant/demand view
// cannot provide: backlog and queueing delay persist after the grant
// recovers.
type QueueApp interface {
	App
	// QueueStats returns the most recent tick's queue state.
	QueueStats() QueueStats
}

// ContainerState is the lifecycle state of a container.
type ContainerState int

const (
	// StateRunning: the application executes normally.
	StateRunning ContainerState = iota
	// StateFrozen: the container is paused (SIGSTOP/cgroup freezer): no
	// CPU, no active memory, resident set retained.
	StateFrozen
	// StateFinished: the application completed its work.
	StateFinished
	// StateStopped: the container was administratively stopped.
	StateStopped
)

// String names the state.
func (s ContainerState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateFrozen:
		return "frozen"
	case StateFinished:
		return "finished"
	case StateStopped:
		return "stopped"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Container is one LXC-like container hosting an application.
type Container struct {
	id    string
	app   App
	state ContainerState

	// lastDemand and lastGrant are the most recent tick's values.
	lastDemand Demand
	lastGrant  Grant

	// residentMB tracks the resident set across freezes (a frozen process
	// keeps its memory).
	residentMB float64

	// cpuQuota is the fractional CPU allowance in (0,1] — the simulated
	// cpu.max quota graded throttling applies. 1 means unlimited.
	cpuQuota float64

	// totals accumulate effective CPU and granted bytes for utilization
	// accounting.
	totalEffectiveCPU float64
	totalCPU          float64
	ticksRun          int
	ticksFrozen       int
}

// ID returns the container's identifier.
func (c *Container) ID() string { return c.id }

// AppName returns the hosted application's name.
func (c *Container) AppName() string { return c.app.Name() }

// App returns the hosted application instance. Exposed so a detached
// container's workload (with its accumulated progress) can be re-hosted on
// another simulator — the substrate of batch-job migration.
func (c *Container) App() App { return c.app }

// State returns the container state.
func (c *Container) State() ContainerState { return c.state }

// Running reports whether the container is actively executing.
func (c *Container) Running() bool { return c.state == StateRunning }

// Active reports whether the container still has work (running or frozen,
// not finished/stopped).
func (c *Container) Active() bool {
	return c.state == StateRunning || c.state == StateFrozen
}

// LastGrant returns the most recent tick's grant.
func (c *Container) LastGrant() Grant { return c.lastGrant }

// LastDemand returns the most recent tick's demand.
func (c *Container) LastDemand() Demand { return c.lastDemand }

// TotalCPU returns cumulative granted CPU (percent-of-core × ticks).
func (c *Container) TotalCPU() float64 { return c.totalCPU }

// TotalEffectiveCPU returns cumulative useful compute.
func (c *Container) TotalEffectiveCPU() float64 { return c.totalEffectiveCPU }

// TicksRun returns how many ticks the container spent running.
func (c *Container) TicksRun() int { return c.ticksRun }

// TicksFrozen returns how many ticks the container spent frozen.
func (c *Container) TicksFrozen() int { return c.ticksFrozen }

// CPUQuota returns the container's fractional CPU allowance in (0,1].
func (c *Container) CPUQuota() float64 { return c.cpuQuota }

// QueueStats returns the hosted application's request-queue state when the
// app is open-loop (implements QueueApp); ok is false for closed-loop
// apps.
func (c *Container) QueueStats() (st QueueStats, ok bool) {
	if qa, is := c.app.(QueueApp); is {
		return qa.QueueStats(), true
	}
	return QueueStats{}, false
}

// demandForTick produces the container's demand respecting its state.
func (c *Container) demandForTick(tick int) Demand {
	switch c.state {
	case StateRunning:
		d := c.app.Demand(tick)
		d.clampNonNegative()
		// A CPU quota is a bandwidth cap, not a pause: the runnable time
		// the scheduler hands out shrinks, and the IO/network the workload
		// can generate shrinks with it, while the resident set stays put.
		if c.cpuQuota < 1 {
			d.CPU *= c.cpuQuota
			d.DiskMBps *= c.cpuQuota
			d.NetMbps *= c.cpuQuota
		}
		c.residentMB = d.MemoryMB
		return d
	case StateFrozen:
		// Frozen: resident set persists, nothing else is consumed. The
		// cold pages stop creating swap pressure, which is exactly why
		// throttling a memory-hungry batch app restores the sensitive
		// app's performance.
		return Demand{MemoryMB: c.residentMB}
	default:
		return Demand{}
	}
}
