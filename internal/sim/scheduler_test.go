package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func testHost() HostConfig { return DefaultHostConfig() }

func TestAllocateNoContention(t *testing.T) {
	cfg := testHost()
	demands := []Demand{
		{CPU: 100, MemoryMB: 500, ActiveMemMB: 200, MemBWMBps: 1000, DiskMBps: 10, NetMbps: 50},
		{CPU: 150, MemoryMB: 800, ActiveMemMB: 300, MemBWMBps: 2000, DiskMBps: 20, NetMbps: 100},
	}
	grants := allocate(cfg, demands)
	for i, g := range grants {
		d := demands[i]
		if g.CPU != d.CPU || g.MemoryMB != d.MemoryMB || g.MemBWMBps != d.MemBWMBps ||
			g.DiskMBps != d.DiskMBps || g.NetMbps != d.NetMbps {
			t.Errorf("grant %d = %+v, want full demand %+v", i, g, d)
		}
		if g.CPUEfficiency != 1 {
			t.Errorf("grant %d efficiency = %v, want 1", i, g.CPUEfficiency)
		}
		if g.SwapIOMBps != 0 {
			t.Errorf("grant %d swap = %v, want 0", i, g.SwapIOMBps)
		}
	}
}

func TestAllocateCPUProportionalShare(t *testing.T) {
	cfg := testHost() // capacity 400
	demands := []Demand{{CPU: 400}, {CPU: 400}}
	grants := allocate(cfg, demands)
	for i, g := range grants {
		if math.Abs(g.CPU-200) > 1e-9 {
			t.Errorf("grant %d CPU = %v, want 200 (fair split)", i, g.CPU)
		}
	}
	// Unequal demands split proportionally.
	grants = allocate(cfg, []Demand{{CPU: 300}, {CPU: 100}, {CPU: 400}})
	want := []float64{150, 50, 200}
	for i, g := range grants {
		if math.Abs(g.CPU-want[i]) > 1e-9 {
			t.Errorf("grant %d CPU = %v, want %v", i, g.CPU, want[i])
		}
	}
}

func TestAllocateCPUSpikeShrinksOthers(t *testing.T) {
	// The "instantaneous transition": a bomb spiking from 0 to full
	// saturation halves the victim's grant within one tick.
	cfg := testHost()
	before := allocate(cfg, []Demand{{CPU: 250}, {CPU: 0}})
	after := allocate(cfg, []Demand{{CPU: 250}, {CPU: 400}})
	if before[0].CPU != 250 {
		t.Errorf("uncontended grant = %v, want 250", before[0].CPU)
	}
	if after[0].CPU >= before[0].CPU {
		t.Errorf("contended grant %v should shrink below %v", after[0].CPU, before[0].CPU)
	}
}

func TestAllocateSwapCollapse(t *testing.T) {
	cfg := testHost() // 4096 MB RAM
	// Two containers actively touching 3 GB each: 6 GB active > 4 GB RAM.
	demands := []Demand{
		{CPU: 100, MemoryMB: 3000, ActiveMemMB: 3000},
		{CPU: 100, MemoryMB: 3000, ActiveMemMB: 3000},
	}
	grants := allocate(cfg, demands)
	r := 6000.0 / cfg.MemoryMB
	wantEff := 1 / (1 + cfg.SwapPenalty*(r-1))
	for i, g := range grants {
		if math.Abs(g.CPUEfficiency-wantEff) > 1e-9 {
			t.Errorf("grant %d efficiency = %v, want %v", i, g.CPUEfficiency, wantEff)
		}
		if g.SwapIOMBps <= 0 {
			t.Errorf("grant %d swap IO = %v, want positive", i, g.SwapIOMBps)
		}
		if g.MemoryMB != 3000 {
			t.Errorf("resident memory must still be granted: %v", g.MemoryMB)
		}
	}
	// Swap traffic splits proportionally to active memory; equal here.
	if math.Abs(grants[0].SwapIOMBps-grants[1].SwapIOMBps) > 1e-9 {
		t.Errorf("swap split unequal: %v vs %v", grants[0].SwapIOMBps, grants[1].SwapIOMBps)
	}
}

func TestAllocateSwapSparesInactiveContainers(t *testing.T) {
	cfg := testHost()
	// A frozen memory hog (resident but inactive) must not thrash the
	// active container.
	demands := []Demand{
		{CPU: 100, MemoryMB: 500, ActiveMemMB: 400},
		{MemoryMB: 6000, ActiveMemMB: 0}, // frozen hog
	}
	grants := allocate(cfg, demands)
	if grants[0].CPUEfficiency != 1 {
		t.Errorf("active container efficiency = %v, want 1 (no active overflow)", grants[0].CPUEfficiency)
	}
	if grants[0].SwapIOMBps != 0 || grants[1].SwapIOMBps != 0 {
		t.Error("no swap traffic expected with cold resident pages")
	}
}

func TestAllocateMemoryBandwidthContention(t *testing.T) {
	cfg := testHost() // 10000 MBps
	demands := []Demand{
		{CPU: 100, MemBWMBps: 8000},
		{CPU: 100, MemBWMBps: 8000},
	}
	grants := allocate(cfg, demands)
	for i, g := range grants {
		if math.Abs(g.MemBWMBps-5000) > 1e-9 {
			t.Errorf("grant %d BW = %v, want 5000", i, g.MemBWMBps)
		}
		if math.Abs(g.CPUEfficiency-0.625) > 1e-9 {
			t.Errorf("grant %d efficiency = %v, want 0.625 (granted/demanded)", i, g.CPUEfficiency)
		}
	}
	// A container not touching memory bandwidth is unaffected.
	grants = allocate(cfg, []Demand{{CPU: 100}, {CPU: 100, MemBWMBps: 20000}})
	if grants[0].CPUEfficiency != 1 {
		t.Errorf("non-BW container efficiency = %v, want 1", grants[0].CPUEfficiency)
	}
}

func TestAllocateSwapConsumesDiskCapacity(t *testing.T) {
	cfg := testHost()
	cfg.DiskMBps = 100
	cfg.SwapIOPerMB = 0.01
	// 4096 RAM; active 9096 → overflow 5000 MB → swap demand 50 MBps.
	demands := []Demand{
		{CPU: 50, MemoryMB: 9096, ActiveMemMB: 9096},
		{CPU: 50, DiskMBps: 100}, // wants the whole disk
	}
	grants := allocate(cfg, demands)
	if grants[0].SwapIOMBps <= 0 {
		t.Fatal("expected swap traffic")
	}
	// Disk left for regular IO is 100 − 50 = 50.
	if math.Abs(grants[1].DiskMBps-50) > 1e-9 {
		t.Errorf("disk grant = %v, want 50 after swap steals capacity", grants[1].DiskMBps)
	}
}

func TestAllocateNetworkContention(t *testing.T) {
	cfg := testHost() // 1000 Mbps
	grants := allocate(cfg, []Demand{{NetMbps: 800}, {NetMbps: 400}})
	total := grants[0].NetMbps + grants[1].NetMbps
	if math.Abs(total-1000) > 1e-9 {
		t.Errorf("total net = %v, want 1000", total)
	}
	if math.Abs(grants[0].NetMbps/grants[1].NetMbps-2) > 1e-9 {
		t.Errorf("net split = %v/%v, want 2:1", grants[0].NetMbps, grants[1].NetMbps)
	}
}

func TestAllocateEmpty(t *testing.T) {
	if got := allocate(testHost(), nil); len(got) != 0 {
		t.Errorf("empty allocate = %v", got)
	}
}

// Property: grants never exceed demand, never negative, and the CPU grant
// total never exceeds capacity.
func TestAllocateConservationProperty(t *testing.T) {
	cfg := testHost()
	f := func(raws []uint16) bool {
		if len(raws) > 12 {
			raws = raws[:12]
		}
		demands := make([]Demand, 0, len(raws)/3)
		for i := 0; i+2 < len(raws); i += 3 {
			demands = append(demands, Demand{
				CPU:         float64(raws[i]) / 65535 * 600,
				MemoryMB:    float64(raws[i+1]) / 65535 * 8000,
				ActiveMemMB: float64(raws[i+1]) / 65535 * 8000,
				MemBWMBps:   float64(raws[i+2]) / 65535 * 20000,
			})
		}
		grants := allocate(cfg, demands)
		var totalCPU float64
		for i, g := range grants {
			d := demands[i]
			if g.CPU < 0 || g.CPU > d.CPU+1e-9 {
				return false
			}
			if g.CPUEfficiency <= 0 || g.CPUEfficiency > 1 {
				return false
			}
			if g.MemBWMBps < 0 || g.MemBWMBps > d.MemBWMBps+1e-9 {
				return false
			}
			totalCPU += g.CPU
		}
		return totalCPU <= cfg.CPUCapacity()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHostConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*HostConfig)
	}{
		{"zero cores", func(c *HostConfig) { c.Cores = 0 }},
		{"zero memory", func(c *HostConfig) { c.MemoryMB = 0 }},
		{"zero bw", func(c *HostConfig) { c.MemBWMBps = 0 }},
		{"zero disk", func(c *HostConfig) { c.DiskMBps = 0 }},
		{"zero net", func(c *HostConfig) { c.NetMbps = 0 }},
		{"negative swap penalty", func(c *HostConfig) { c.SwapPenalty = -1 }},
		{"negative swap io", func(c *HostConfig) { c.SwapIOPerMB = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultHostConfig()
			tt.mutate(&cfg)
			if err := cfg.validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
	if err := DefaultHostConfig().validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if got := DefaultHostConfig().CPUCapacity(); got != 400 {
		t.Errorf("capacity = %v, want 400", got)
	}
}

func TestDemandClamp(t *testing.T) {
	d := Demand{CPU: -5, MemoryMB: 100, ActiveMemMB: 500, MemBWMBps: -1, DiskMBps: -2, NetMbps: -3}
	d.clampNonNegative()
	if d.CPU != 0 || d.MemBWMBps != 0 || d.DiskMBps != 0 || d.NetMbps != 0 {
		t.Errorf("negative fields not clamped: %+v", d)
	}
	if d.ActiveMemMB != 100 {
		t.Errorf("active mem = %v, want clamped to resident 100", d.ActiveMemMB)
	}
}

func TestGrantEffectiveCPU(t *testing.T) {
	g := Grant{CPU: 200, CPUEfficiency: 0.5}
	if g.EffectiveCPU() != 100 {
		t.Errorf("effective = %v, want 100", g.EffectiveCPU())
	}
}
