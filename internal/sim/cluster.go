package sim

import (
	"fmt"
	"sort"
)

// Cluster is a set of named hosts stepped through the same discrete time —
// the multi-host substrate the interference-aware scheduler
// (internal/sched) places batch work onto. Hosts do not share resources;
// what couples them is the placement layer above: which host each batch
// job runs on, and migrations between hosts.
type Cluster struct {
	hosts map[string]*Simulator
	order []string // deterministic iteration order (insertion order)
	tick  int
}

// NewCluster returns an empty cluster.
func NewCluster() *Cluster {
	return &Cluster{hosts: make(map[string]*Simulator)}
}

// AddHost creates a host with the given configuration. IDs must be unique
// and non-empty. Hosts added after stepping begins join at the current
// tick (their local tick counter still starts at 0).
func (c *Cluster) AddHost(id string, cfg HostConfig) (*Simulator, error) {
	if id == "" {
		return nil, fmt.Errorf("sim: empty host ID")
	}
	if _, dup := c.hosts[id]; dup {
		return nil, fmt.Errorf("sim: duplicate host ID %q", id)
	}
	s, err := NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	c.hosts[id] = s
	c.order = append(c.order, id)
	return s, nil
}

// Host returns the simulator for host id.
func (c *Cluster) Host(id string) (*Simulator, error) {
	s, ok := c.hosts[id]
	if !ok {
		return nil, fmt.Errorf("sim: unknown host %q", id)
	}
	return s, nil
}

// HostIDs returns all host IDs in insertion order.
func (c *Cluster) HostIDs() []string {
	return append([]string(nil), c.order...)
}

// Len returns the number of hosts.
func (c *Cluster) Len() int { return len(c.hosts) }

// Tick returns the number of completed cluster steps.
func (c *Cluster) Tick() int { return c.tick }

// Step advances every host by one tick, in insertion order.
func (c *Cluster) Step() {
	for _, id := range c.order {
		c.hosts[id].Step()
	}
	c.tick++
}

// Run advances n cluster steps.
func (c *Cluster) Run(n int) {
	for i := 0; i < n; i++ {
		c.Step()
	}
}

// Migrate moves an active container from one host to another, preserving
// its application progress and usage accounting. The container keeps its
// ID; it arrives running and unthrottled (a migration is a fresh start on
// the destination — the destination host's runtime re-learns whether it
// needs restricting). Migrating to the same host is rejected.
func (c *Cluster) Migrate(containerID, from, to string) error {
	if from == to {
		return fmt.Errorf("sim: migrate %q: source and destination are both %q", containerID, from)
	}
	src, err := c.Host(from)
	if err != nil {
		return err
	}
	dst, err := c.Host(to)
	if err != nil {
		return err
	}
	if _, dup := dst.containers[containerID]; dup {
		return fmt.Errorf("sim: host %q already has container %q", to, containerID)
	}
	ct, err := src.Detach(containerID)
	if err != nil {
		return err
	}
	return dst.Attach(containerID, ct)
}

// Locate returns the host ID currently hosting the container, searching in
// host insertion order. ok is false when no host has it.
func (c *Cluster) Locate(containerID string) (hostID string, ok bool) {
	for _, id := range c.order {
		if _, err := c.hosts[id].Container(containerID); err == nil {
			return id, true
		}
	}
	return "", false
}

// Utilization returns the capacity-weighted mean CPU utilization across
// all hosts over all elapsed ticks.
func (c *Cluster) Utilization() float64 {
	var granted, capacity float64
	for _, id := range c.order {
		h := c.hosts[id]
		granted += h.totalGrantedCPU
		capacity += h.capacityTicks
	}
	if capacity == 0 {
		return 0
	}
	return granted / capacity
}

// ActiveIDs returns the IDs of all containers that still have work across
// the cluster, sorted.
func (c *Cluster) ActiveIDs() []string {
	var out []string
	for _, id := range c.order {
		out = append(out, c.hosts[id].ActiveIDs()...)
	}
	sort.Strings(out)
	return out
}
