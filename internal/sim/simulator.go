package sim

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Simulator steps a host and its containers through discrete time.
type Simulator struct {
	cfg        HostConfig
	containers map[string]*Container
	order      []string // deterministic iteration order (insertion order)
	tick       int

	// utilization accounting
	totalGrantedCPU float64 // across all containers and ticks
	capacityTicks   float64 // CPU capacity × ticks elapsed
}

// NewSimulator returns a simulator for the given host.
func NewSimulator(cfg HostConfig) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Simulator{
		cfg:        cfg,
		containers: make(map[string]*Container),
	}, nil
}

// Config returns the host configuration.
func (s *Simulator) Config() HostConfig { return s.cfg }

// Tick returns the number of completed ticks.
func (s *Simulator) Tick() int { return s.tick }

// AddContainer creates a container hosting app. IDs must be unique and
// non-empty.
func (s *Simulator) AddContainer(id string, app App) (*Container, error) {
	if id == "" {
		return nil, fmt.Errorf("sim: empty container ID")
	}
	if app == nil {
		return nil, fmt.Errorf("sim: nil app for container %q", id)
	}
	if _, dup := s.containers[id]; dup {
		return nil, fmt.Errorf("sim: duplicate container ID %q", id)
	}
	c := &Container{id: id, app: app, state: StateRunning, cpuQuota: 1}
	s.containers[id] = c
	s.order = append(s.order, id)
	return c, nil
}

// Container returns the container with the given ID.
func (s *Simulator) Container(id string) (*Container, error) {
	c, ok := s.containers[id]
	if !ok {
		return nil, fmt.Errorf("sim: unknown container %q", id)
	}
	return c, nil
}

// Containers returns all containers in insertion order.
func (s *Simulator) Containers() []*Container {
	out := make([]*Container, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.containers[id])
	}
	return out
}

// Detach removes an active container from the host and returns it, with
// its application and accumulated accounting intact — the source side of a
// migration. The container stops participating in allocation immediately;
// its granted-CPU history stays in the host's utilization totals (the work
// really did run here). Finished or stopped containers cannot be detached.
func (s *Simulator) Detach(id string) (*Container, error) {
	c, err := s.Container(id)
	if err != nil {
		return nil, err
	}
	if !c.Active() {
		return nil, fmt.Errorf("sim: container %q is %s, not detachable", id, c.state)
	}
	delete(s.containers, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	// The detached container leaves in a clean running state: a frozen
	// source container would otherwise arrive frozen on a host whose
	// runtime never froze it (and would therefore never thaw it).
	c.state = StateRunning
	c.cpuQuota = 1
	c.lastDemand = Demand{}
	c.lastGrant = Grant{}
	return c, nil
}

// Attach re-hosts a previously detached container under the given ID —
// the destination side of a migration. The application keeps its progress;
// the usage totals keep accumulating on the same Container.
func (s *Simulator) Attach(id string, c *Container) error {
	if id == "" {
		return fmt.Errorf("sim: empty container ID")
	}
	if c == nil {
		return fmt.Errorf("sim: nil container")
	}
	if _, dup := s.containers[id]; dup {
		return fmt.Errorf("sim: duplicate container ID %q", id)
	}
	c.id = id
	s.containers[id] = c
	s.order = append(s.order, id)
	return nil
}

// Freeze pauses a running container (cgroup freezer / SIGSTOP semantics).
// Freezing a non-running container is a no-op, matching the idempotent
// behaviour of the real mechanisms.
func (s *Simulator) Freeze(id string) error {
	c, err := s.Container(id)
	if err != nil {
		return err
	}
	if c.state == StateRunning {
		c.state = StateFrozen
	}
	return nil
}

// Thaw resumes a frozen container.
func (s *Simulator) Thaw(id string) error {
	c, err := s.Container(id)
	if err != nil {
		return err
	}
	if c.state == StateFrozen {
		c.state = StateRunning
	}
	return nil
}

// LimitCPU caps a container at the given fraction of its CPU demand
// (cpu.max semantics). frac >= 1 removes the limit; frac <= 0 is
// rejected — a zero allowance is a freeze, which has its own verb.
func (s *Simulator) LimitCPU(id string, frac float64) error {
	c, err := s.Container(id)
	if err != nil {
		return err
	}
	if frac <= 0 {
		return fmt.Errorf("sim: CPU quota %v for %q out of range (0,1]", frac, id)
	}
	if frac > 1 {
		frac = 1
	}
	c.cpuQuota = frac
	return nil
}

// Stop administratively terminates a container.
func (s *Simulator) Stop(id string) error {
	c, err := s.Container(id)
	if err != nil {
		return err
	}
	if c.state == StateRunning || c.state == StateFrozen {
		c.state = StateStopped
	}
	return nil
}

// Step advances the simulation by one tick: collect demands, allocate
// under contention, and let every running application consume its grant.
func (s *Simulator) Step() {
	ids := s.order
	demands := make([]Demand, len(ids))
	for i, id := range ids {
		demands[i] = s.containers[id].demandForTick(s.tick)
	}
	grants := allocate(s.cfg, demands)
	for i, id := range ids {
		c := s.containers[id]
		c.lastDemand = demands[i]
		c.lastGrant = grants[i]
		switch c.state {
		case StateRunning:
			c.ticksRun++
			c.totalCPU += grants[i].CPU
			c.totalEffectiveCPU += grants[i].EffectiveCPU()
			s.totalGrantedCPU += grants[i].CPU
			if done := c.app.Advance(s.tick, grants[i]); done {
				c.state = StateFinished
				c.residentMB = 0
			}
		case StateFrozen:
			c.ticksFrozen++
		}
	}
	s.tick++
	s.capacityTicks += s.cfg.CPUCapacity()
}

// Run advances n ticks.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Samples returns the per-container usage samples for the most recent
// tick, in the form Stay-Away's monitoring collects them: granted CPU,
// resident memory, I/O including swap traffic, and network.
func (s *Simulator) Samples() []metrics.Sample {
	out := make([]metrics.Sample, 0, len(s.order))
	for _, id := range s.order {
		c := s.containers[id]
		g := c.lastGrant
		out = append(out, metrics.NewSample(id, map[metrics.Metric]float64{
			metrics.MetricCPU:     g.CPU,
			metrics.MetricMemory:  g.MemoryMB,
			metrics.MetricIO:      g.DiskMBps + g.SwapIOMBps,
			metrics.MetricNetwork: g.NetMbps,
		}))
	}
	return out
}

// Utilization returns the machine's average CPU utilization in [0,1] over
// all elapsed ticks.
func (s *Simulator) Utilization() float64 {
	if s.capacityTicks == 0 {
		return 0
	}
	return s.totalGrantedCPU / s.capacityTicks
}

// LastTickUtilization returns the CPU utilization of the most recent tick.
// Summation follows s.order, not the container map: float addition is not
// associative, so a map-ordered sum would differ in the low bits from run
// to run.
func (s *Simulator) LastTickUtilization() float64 {
	var granted float64
	for _, id := range s.order {
		granted += s.containers[id].lastGrant.CPU
	}
	u := granted / s.cfg.CPUCapacity()
	if u > 1 {
		u = 1
	}
	return u
}

// ActiveIDs returns the IDs of containers that still have work, sorted.
func (s *Simulator) ActiveIDs() []string {
	var out []string
	for id, c := range s.containers {
		if c.Active() {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
