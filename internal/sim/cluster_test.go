package sim

import (
	"testing"
)

// workApp is a minimal finite batch job for cluster tests.
type workApp struct {
	cpu       float64
	remaining float64
}

func (w *workApp) Name() string { return "work" }
func (w *workApp) Demand(tick int) Demand {
	return Demand{CPU: w.cpu, MemoryMB: 100, ActiveMemMB: 50}
}
func (w *workApp) Advance(tick int, g Grant) bool {
	w.remaining -= g.EffectiveCPU()
	return w.remaining <= 0
}

func TestClusterAddStepAndUtilization(t *testing.T) {
	c := NewCluster()
	h1, err := c.AddHost("h1", DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddHost("h1", DefaultHostConfig()); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if _, err := c.AddHost("", DefaultHostConfig()); err == nil {
		t.Fatal("empty host ID accepted")
	}
	if _, err := c.AddHost("h2", DefaultHostConfig()); err != nil {
		t.Fatal(err)
	}

	if _, err := h1.AddContainer("job", &workApp{cpu: 200, remaining: 1e9}); err != nil {
		t.Fatal(err)
	}
	c.Run(10)
	if c.Tick() != 10 {
		t.Fatalf("Tick = %d, want 10", c.Tick())
	}
	if h1.Tick() != 10 {
		t.Fatalf("host tick = %d, want 10", h1.Tick())
	}
	// One host at 200/400, one idle: cluster-wide utilization 0.25.
	if u := c.Utilization(); u < 0.2 || u > 0.3 {
		t.Fatalf("Utilization = %v, want ≈0.25", u)
	}
	if got := c.ActiveIDs(); len(got) != 1 || got[0] != "job" {
		t.Fatalf("ActiveIDs = %v", got)
	}
}

func TestClusterMigratePreservesProgress(t *testing.T) {
	c := NewCluster()
	h1, _ := c.AddHost("h1", DefaultHostConfig())
	h2, _ := c.AddHost("h2", DefaultHostConfig())

	app := &workApp{cpu: 100, remaining: 1000}
	if _, err := h1.AddContainer("job", app); err != nil {
		t.Fatal(err)
	}
	c.Run(4)
	workBefore := func() float64 {
		ct, err := h1.Container("job")
		if err != nil {
			t.Fatal(err)
		}
		return ct.TotalEffectiveCPU()
	}()
	if workBefore <= 0 {
		t.Fatal("no work before migration")
	}

	if err := c.Migrate("job", "h1", "h2"); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if host, ok := c.Locate("job"); !ok || host != "h2" {
		t.Fatalf("Locate = %q, %v; want h2, true", host, ok)
	}
	if _, err := h1.Container("job"); err == nil {
		t.Fatal("container still on source host")
	}
	c.Run(4)
	ct, err := h2.Container("job")
	if err != nil {
		t.Fatal(err)
	}
	// Accounting carried over: total work strictly grows past the
	// pre-migration amount on the same Container.
	if ct.TotalEffectiveCPU() <= workBefore {
		t.Fatalf("work did not continue: %v <= %v", ct.TotalEffectiveCPU(), workBefore)
	}
	if ct.State() != StateRunning {
		t.Fatalf("migrated container state = %v", ct.State())
	}
}

func TestClusterMigrateFrozenArrivesRunning(t *testing.T) {
	c := NewCluster()
	h1, _ := c.AddHost("h1", DefaultHostConfig())
	if _, err := c.AddHost("h2", DefaultHostConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := h1.AddContainer("job", &workApp{cpu: 100, remaining: 1e9}); err != nil {
		t.Fatal(err)
	}
	if err := h1.Freeze("job"); err != nil {
		t.Fatal(err)
	}
	if err := h1.LimitCPU("job", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate("job", "h1", "h2"); err != nil {
		t.Fatalf("Migrate frozen: %v", err)
	}
	h2, _ := c.Host("h2")
	ct, err := h2.Container("job")
	if err != nil {
		t.Fatal(err)
	}
	if ct.State() != StateRunning || ct.CPUQuota() != 1 {
		t.Fatalf("migrated container = %v quota %v, want running/unthrottled", ct.State(), ct.CPUQuota())
	}
}

func TestClusterMigrateErrors(t *testing.T) {
	c := NewCluster()
	h1, _ := c.AddHost("h1", DefaultHostConfig())
	h2, _ := c.AddHost("h2", DefaultHostConfig())
	if _, err := h1.AddContainer("job", &workApp{cpu: 100, remaining: 1e9}); err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate("job", "h1", "h1"); err == nil {
		t.Fatal("self-migration accepted")
	}
	if err := c.Migrate("job", "h1", "nope"); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if err := c.Migrate("nope", "h1", "h2"); err == nil {
		t.Fatal("unknown container accepted")
	}
	if _, err := h2.AddContainer("job", &workApp{cpu: 10, remaining: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate("job", "h1", "h2"); err == nil {
		t.Fatal("migration onto duplicate ID accepted")
	}
	// Finished containers are not detachable.
	done := &workApp{cpu: 10, remaining: 0.1}
	if _, err := h1.AddContainer("tiny", done); err != nil {
		t.Fatal(err)
	}
	c.Run(2)
	if err := c.Migrate("tiny", "h1", "h2"); err == nil {
		t.Fatal("finished container migrated")
	}
}
