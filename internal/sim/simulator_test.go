package sim

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

// stubApp is a deterministic App for simulator tests.
type stubApp struct {
	name    string
	demand  Demand
	work    float64 // effective CPU units until done; <0 = never done
	doneAt  int     // tick at which Advance reported done (-1 while running)
	grants  []Grant
	demands int
}

func newStubApp(name string, d Demand, work float64) *stubApp {
	return &stubApp{name: name, demand: d, work: work, doneAt: -1}
}

func (a *stubApp) Name() string { return a.name }

func (a *stubApp) Demand(tick int) Demand {
	a.demands++
	return a.demand
}

func (a *stubApp) Advance(tick int, g Grant) bool {
	a.grants = append(a.grants, g)
	if a.work < 0 {
		return false
	}
	a.work -= g.EffectiveCPU()
	if a.work <= 0 {
		a.doneAt = tick
		return true
	}
	return false
}

func mustSim(t *testing.T) *Simulator {
	t.Helper()
	s, err := NewSimulator(DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSimulatorValidation(t *testing.T) {
	cfg := DefaultHostConfig()
	cfg.Cores = 0
	if _, err := NewSimulator(cfg); err == nil {
		t.Error("invalid config should error")
	}
}

func TestAddContainerValidation(t *testing.T) {
	s := mustSim(t)
	if _, err := s.AddContainer("", newStubApp("a", Demand{}, -1)); err == nil {
		t.Error("empty ID should error")
	}
	if _, err := s.AddContainer("c1", nil); err == nil {
		t.Error("nil app should error")
	}
	if _, err := s.AddContainer("c1", newStubApp("a", Demand{}, -1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("c1", newStubApp("b", Demand{}, -1)); err == nil {
		t.Error("duplicate ID should error")
	}
	if _, err := s.Container("ghost"); err == nil {
		t.Error("unknown container should error")
	}
}

func TestStepAdvancesApps(t *testing.T) {
	s := mustSim(t)
	app := newStubApp("svc", Demand{CPU: 100}, -1)
	c, err := s.AddContainer("c1", app)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	if s.Tick() != 3 {
		t.Errorf("tick = %d, want 3", s.Tick())
	}
	if len(app.grants) != 3 {
		t.Errorf("advances = %d, want 3", len(app.grants))
	}
	if c.TicksRun() != 3 || c.TotalCPU() != 300 {
		t.Errorf("ticksRun=%d totalCPU=%v", c.TicksRun(), c.TotalCPU())
	}
	if c.LastGrant().CPU != 100 || c.LastDemand().CPU != 100 {
		t.Errorf("last grant/demand = %+v / %+v", c.LastGrant(), c.LastDemand())
	}
}

func TestAppCompletion(t *testing.T) {
	s := mustSim(t)
	app := newStubApp("job", Demand{CPU: 100}, 250) // needs 2.5 ticks at 100
	c, err := s.AddContainer("c1", app)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	if c.State() != StateFinished {
		t.Errorf("state = %v, want finished", c.State())
	}
	if app.doneAt != 2 {
		t.Errorf("done at tick %d, want 2", app.doneAt)
	}
	// After finishing, the app is no longer advanced and demands nothing.
	if len(app.grants) != 3 {
		t.Errorf("advances = %d, want 3 (stop after done)", len(app.grants))
	}
	if c.LastGrant().CPU != 0 {
		t.Errorf("finished container still granted CPU: %+v", c.LastGrant())
	}
}

func TestFreezeThaw(t *testing.T) {
	s := mustSim(t)
	app := newStubApp("batch", Demand{CPU: 200, MemoryMB: 1000, ActiveMemMB: 500}, -1)
	c, err := s.AddContainer("b", app)
	if err != nil {
		t.Fatal(err)
	}
	s.Step() // running tick: resident set registered
	if err := s.Freeze("b"); err != nil {
		t.Fatal(err)
	}
	s.Step() // frozen tick
	if c.State() != StateFrozen || c.TicksFrozen() != 1 {
		t.Errorf("state=%v frozen=%d", c.State(), c.TicksFrozen())
	}
	// Frozen: no CPU, resident memory kept, no active memory.
	if c.LastDemand().CPU != 0 || c.LastDemand().MemoryMB != 1000 || c.LastDemand().ActiveMemMB != 0 {
		t.Errorf("frozen demand = %+v", c.LastDemand())
	}
	// The app must not be advanced while frozen.
	if len(app.grants) != 1 {
		t.Errorf("advances while frozen: %d", len(app.grants))
	}
	if err := s.Thaw("b"); err != nil {
		t.Fatal(err)
	}
	s.Step()
	if c.State() != StateRunning || len(app.grants) != 2 {
		t.Errorf("after thaw: state=%v advances=%d", c.State(), len(app.grants))
	}
}

func TestFreezeIdempotentAndStates(t *testing.T) {
	s := mustSim(t)
	if _, err := s.AddContainer("x", newStubApp("a", Demand{CPU: 10}, -1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Freeze("x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Freeze("x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Thaw("x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Thaw("x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Freeze("ghost"); err == nil {
		t.Error("freezing unknown container should error")
	}
	if err := s.Stop("x"); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Container("x")
	if c.State() != StateStopped || c.Active() {
		t.Errorf("state = %v", c.State())
	}
	// Freezing a stopped container is a no-op.
	if err := s.Freeze("x"); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateStopped {
		t.Errorf("state after freeze-on-stopped = %v", c.State())
	}
}

func TestSamples(t *testing.T) {
	s := mustSim(t)
	if _, err := s.AddContainer("web", newStubApp("web", Demand{CPU: 100, MemoryMB: 500, DiskMBps: 5, NetMbps: 20}, -1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("batch", newStubApp("batch", Demand{CPU: 50}, -1)); err != nil {
		t.Fatal(err)
	}
	s.Step()
	samples := s.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d", len(samples))
	}
	if samples[0].VM != "web" || samples[1].VM != "batch" {
		t.Errorf("sample order: %v, %v", samples[0].VM, samples[1].VM)
	}
	if samples[0].Get(metrics.MetricCPU) != 100 ||
		samples[0].Get(metrics.MetricMemory) != 500 ||
		samples[0].Get(metrics.MetricIO) != 5 ||
		samples[0].Get(metrics.MetricNetwork) != 20 {
		t.Errorf("web sample = %+v", samples[0])
	}
}

func TestSamplesIncludeSwapIO(t *testing.T) {
	s := mustSim(t)
	if _, err := s.AddContainer("hog", newStubApp("hog", Demand{CPU: 50, MemoryMB: 9000, ActiveMemMB: 9000}, -1)); err != nil {
		t.Fatal(err)
	}
	s.Step()
	samples := s.Samples()
	if io := samples[0].Get(metrics.MetricIO); io <= 0 {
		t.Errorf("IO = %v, want swap traffic visible", io)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	s := mustSim(t) // capacity 400
	if _, err := s.AddContainer("a", newStubApp("a", Demand{CPU: 100}, -1)); err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if got := s.Utilization(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("utilization = %v, want 0.25", got)
	}
	if got := s.LastTickUtilization(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("last-tick utilization = %v, want 0.25", got)
	}
	if got := mustSim(t).Utilization(); got != 0 {
		t.Errorf("utilization before any tick = %v", got)
	}
}

func TestActiveIDs(t *testing.T) {
	s := mustSim(t)
	if _, err := s.AddContainer("b", newStubApp("b", Demand{CPU: 10}, -1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("a", newStubApp("a", Demand{CPU: 10}, 5)); err != nil {
		t.Fatal(err)
	}
	got := s.ActiveIDs()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("active = %v", got)
	}
	s.Run(2) // "a" finishes (needs 5 effective CPU, gets 10/tick)
	got = s.ActiveIDs()
	if len(got) != 1 || got[0] != "b" {
		t.Errorf("active after completion = %v", got)
	}
}

func TestContentionEndToEnd(t *testing.T) {
	// A sensitive service demanding 200 CPU against a bomb demanding 400:
	// the service receives a fair share of ~133 and progresses slower.
	s := mustSim(t)
	svc := newStubApp("svc", Demand{CPU: 200}, -1)
	bomb := newStubApp("bomb", Demand{CPU: 400}, -1)
	if _, err := s.AddContainer("svc", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("bomb", bomb); err != nil {
		t.Fatal(err)
	}
	s.Step()
	got := svc.grants[0].CPU
	want := 200.0 * 400 / 600
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("svc grant = %v, want %v", got, want)
	}
	// Freezing the bomb restores the service's full demand.
	if err := s.Freeze("bomb"); err != nil {
		t.Fatal(err)
	}
	s.Step()
	if got := svc.grants[1].CPU; got != 200 {
		t.Errorf("svc grant after freeze = %v, want 200", got)
	}
}

func TestContainerStateString(t *testing.T) {
	want := map[ContainerState]string{
		StateRunning:  "running",
		StateFrozen:   "frozen",
		StateFinished: "finished",
		StateStopped:  "stopped",
	}
	for st, w := range want {
		if st.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), w)
		}
	}
	if ContainerState(9).String() == "" {
		t.Error("unknown state should format")
	}
}

func TestContainersOrder(t *testing.T) {
	s := mustSim(t)
	for _, id := range []string{"z", "a", "m"} {
		if _, err := s.AddContainer(id, newStubApp(id, Demand{}, -1)); err != nil {
			t.Fatal(err)
		}
	}
	cs := s.Containers()
	if cs[0].ID() != "z" || cs[1].ID() != "a" || cs[2].ID() != "m" {
		t.Errorf("order = %v,%v,%v; want insertion order", cs[0].ID(), cs[1].ID(), cs[2].ID())
	}
}
