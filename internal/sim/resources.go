// Package sim is the virtualization substrate Stay-Away runs against in
// this reproduction: a discrete-time simulator of one physical host running
// LXC-like containers. The paper's testbed (a 4-core i5 with LXC) is
// replaced by a contention model that reproduces the observable surface the
// middleware depends on — per-container usage vectors, an application-level
// QoS signal, and freeze/thaw actuation — together with the contention
// dynamics the evaluation exercises: CPU over-subscription causes
// instantaneous proportional-share slowdowns, memory over-commit causes
// swap thrash with disk traffic and response-time collapse, and memory
// bandwidth saturation stretches compute.
//
// Time advances in fixed ticks; one tick is also one Stay-Away monitoring
// period in the experiments. Nothing reads the wall clock.
package sim

import (
	"fmt"
	"math"
)

// Demand is what a container's application wants to consume during one
// tick.
type Demand struct {
	// CPU is compute demand in percent-of-one-core units (two saturated
	// cores = 200).
	CPU float64
	// MemoryMB is the resident set the application holds.
	MemoryMB float64
	// ActiveMemMB is the working set actively touched this tick; only
	// active memory creates swap pressure. Frozen processes keep their
	// resident set but touch nothing.
	ActiveMemMB float64
	// MemBWMBps is memory-bandwidth demand.
	MemBWMBps float64
	// DiskMBps is disk-throughput demand.
	DiskMBps float64
	// NetMbps is network-throughput demand.
	NetMbps float64
}

// clampNonNegative sanitizes a demand in place.
func (d *Demand) clampNonNegative() {
	d.CPU = math.Max(0, d.CPU)
	d.MemoryMB = math.Max(0, d.MemoryMB)
	d.ActiveMemMB = math.Max(0, math.Min(d.ActiveMemMB, d.MemoryMB))
	d.MemBWMBps = math.Max(0, d.MemBWMBps)
	d.DiskMBps = math.Max(0, d.DiskMBps)
	d.NetMbps = math.Max(0, d.NetMbps)
}

// Grant is what the host actually allocated to a container for one tick.
type Grant struct {
	// CPU is granted compute in percent-of-core units.
	CPU float64
	// CPUEfficiency in (0,1] scales how much useful work each granted CPU
	// unit performs: swap thrash and memory-bandwidth starvation stall
	// cycles without reducing the CPU accounting.
	CPUEfficiency float64
	// MemoryMB is the resident set (always granted; over-commit shows up
	// as swapping, not allocation failure).
	MemoryMB float64
	// MemBWMBps, DiskMBps, NetMbps are granted throughputs.
	MemBWMBps float64
	DiskMBps  float64
	NetMbps   float64
	// SwapIOMBps is this container's share of swap traffic, visible in
	// its I/O metric — the signature by which memory contention manifests
	// in the measurement vector.
	SwapIOMBps float64
}

// EffectiveCPU returns granted CPU discounted by efficiency: the quantity
// that determines application progress.
func (g Grant) EffectiveCPU() float64 { return g.CPU * g.CPUEfficiency }

// HostConfig describes the simulated physical host.
type HostConfig struct {
	// Cores is the number of physical cores (paper testbed: 4).
	Cores int
	// MemoryMB is installed RAM.
	MemoryMB float64
	// MemBWMBps is the saturating memory bandwidth.
	MemBWMBps float64
	// DiskMBps is the disk throughput capacity.
	DiskMBps float64
	// NetMbps is the network capacity.
	NetMbps float64
	// SwapPenalty scales how violently over-commit degrades efficiency:
	// efficiency = 1/(1 + SwapPenalty·(overcommit−1)) for containers with
	// active memory.
	SwapPenalty float64
	// SwapIOPerMB converts each MB of active-memory overflow into disk
	// swap traffic (MB/s per overflowed MB).
	SwapIOPerMB float64
}

// DefaultHostConfig models the paper's testbed: a 4-core machine with a
// few GB of RAM.
func DefaultHostConfig() HostConfig {
	return HostConfig{
		Cores:       4,
		MemoryMB:    4096,
		MemBWMBps:   10000,
		DiskMBps:    200,
		NetMbps:     1000,
		SwapPenalty: 12,
		SwapIOPerMB: 0.05,
	}
}

func (c HostConfig) validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: Cores must be positive, got %d", c.Cores)
	}
	if c.MemoryMB <= 0 || c.MemBWMBps <= 0 || c.DiskMBps <= 0 || c.NetMbps <= 0 {
		return fmt.Errorf("sim: capacities must be positive: %+v", c)
	}
	if c.SwapPenalty < 0 || c.SwapIOPerMB < 0 {
		return fmt.Errorf("sim: swap parameters must be non-negative: %+v", c)
	}
	return nil
}

// CPUCapacity returns total CPU capacity in percent-of-core units.
func (c HostConfig) CPUCapacity() float64 { return 100 * float64(c.Cores) }
