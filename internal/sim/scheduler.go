package sim

import "math"

// allocate implements the host's contention model for one tick: given each
// container's demand, produce each container's grant.
//
// The model is deliberately simple but reproduces the phenomenology the
// paper's evaluation depends on:
//
//   - CPU: proportional share under over-subscription (a CFS-like fair
//     split with equal weights). A CPU spike by one container immediately
//     shrinks everyone's grant — the "instantaneous transition" of §3.2.3.
//   - Memory: resident sets are always granted (over-commit manifests as
//     swapping, not OOM). When the sum of *active* working sets exceeds
//     RAM, every container actively touching memory suffers an efficiency
//     collapse 1/(1+penalty·(r−1)) and generates swap I/O that both shows
//     up in its I/O metric and consumes disk capacity — the "gradual
//     transition" signature, and the §7.2 observation that batch memory
//     pressure "forces the OS to swap pages of Webservice to disk".
//   - Memory bandwidth: proportional share; starved containers stall
//     (efficiency multiplied by granted/demanded).
//   - Disk and network: proportional share of what swap traffic left over.
func allocate(cfg HostConfig, demands []Demand) []Grant {
	n := len(demands)
	grants := make([]Grant, n)
	if n == 0 {
		return grants
	}

	// --- CPU: proportional share. ---
	var totalCPU float64
	for _, d := range demands {
		totalCPU += d.CPU
	}
	cpuRatio := 1.0
	if cap := cfg.CPUCapacity(); totalCPU > cap {
		cpuRatio = cap / totalCPU
	}

	// --- Memory: swap pressure from active working sets. ---
	var totalActive float64
	for _, d := range demands {
		totalActive += d.ActiveMemMB
	}
	swapEff := 1.0
	var swapIOTotal float64
	if totalActive > cfg.MemoryMB {
		r := totalActive / cfg.MemoryMB
		swapEff = 1 / (1 + cfg.SwapPenalty*(r-1))
		overflow := totalActive - cfg.MemoryMB
		swapIOTotal = math.Min(cfg.DiskMBps, overflow*cfg.SwapIOPerMB)
	}

	// --- Memory bandwidth: proportional share. ---
	var totalBW float64
	for _, d := range demands {
		totalBW += d.MemBWMBps
	}
	bwRatio := 1.0
	if totalBW > cfg.MemBWMBps {
		bwRatio = cfg.MemBWMBps / totalBW
	}

	// --- Disk: swap traffic consumes capacity first. ---
	diskCap := math.Max(0, cfg.DiskMBps-swapIOTotal)
	var totalDisk float64
	for _, d := range demands {
		totalDisk += d.DiskMBps
	}
	diskRatio := 1.0
	if totalDisk > diskCap {
		if totalDisk > 0 {
			diskRatio = diskCap / totalDisk
		} else {
			diskRatio = 0
		}
	}

	// --- Network: proportional share. ---
	var totalNet float64
	for _, d := range demands {
		totalNet += d.NetMbps
	}
	netRatio := 1.0
	if totalNet > cfg.NetMbps {
		netRatio = cfg.NetMbps / totalNet
	}

	for i, d := range demands {
		g := &grants[i]
		g.CPU = d.CPU * cpuRatio
		g.MemoryMB = d.MemoryMB
		g.MemBWMBps = d.MemBWMBps * bwRatio
		g.DiskMBps = d.DiskMBps * diskRatio
		g.NetMbps = d.NetMbps * netRatio

		eff := 1.0
		if d.ActiveMemMB > 0 {
			eff *= swapEff
			if totalActive > 0 {
				g.SwapIOMBps = swapIOTotal * (d.ActiveMemMB / totalActive)
			}
		}
		if d.MemBWMBps > 0 {
			eff *= bwRatio
		}
		g.CPUEfficiency = eff
	}
	return grants
}
