package experiments

import "testing"

// TestSchedAblation is the acceptance gate for the placement subsystem:
// the learned-map scorer must beat both the random and the static
// cross-application baselines on violation rate at equal batch
// throughput, reproducibly under a fixed seed.
func TestSchedAblation(t *testing.T) {
	f, err := SchedAblation(42)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Summary

	vMap := s["violations_map"]
	vRandom := s["violations_random"]
	vStatic := s["violations_crossapp"]
	if vMap >= vRandom {
		t.Fatalf("map violations %.0f >= random %.0f", vMap, vRandom)
	}
	if vMap >= vStatic {
		t.Fatalf("map violations %.0f >= static cross-app %.0f", vMap, vStatic)
	}
	if vRandom == 0 || vStatic == 0 {
		t.Fatalf("baselines produced no violations (random %.0f, crossapp %.0f); the scenario does not discriminate",
			vRandom, vStatic)
	}

	// Equal offered load, and the map variant converts all of it: every job
	// finishes, no safety-net throttling. The baselines' misplacements cost
	// them throughput — the safety net throttles the co-locations they
	// create — so map work must be at least as high as either baseline's.
	if s["finished_map"] != 4 {
		t.Fatalf("finished_map = %.0f, want 4", s["finished_map"])
	}
	if s["throttled_map"] != 0 {
		t.Fatalf("map placement still needed %.0f throttled periods", s["throttled_map"])
	}
	if s["work_map"] < s["work_random"] || s["work_map"] < s["work_crossapp"] {
		t.Fatalf("map batch work %.0f below a baseline (random %.0f, crossapp %.0f)",
			s["work_map"], s["work_random"], s["work_crossapp"])
	}
}

// TestSchedAblationReproducible pins the fixed-seed determinism the
// EXPERIMENTS.md numbers rely on.
func TestSchedAblationReproducible(t *testing.T) {
	a, err := SchedAblation(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SchedAblation(42)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Summary {
		if b.Summary[k] != v {
			t.Fatalf("summary %q differs across runs: %v vs %v", k, v, b.Summary[k])
		}
	}
	if a.Text != b.Text {
		t.Fatal("rendered text differs across runs")
	}
}
