package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// Soak: a long co-located run must stay healthy — no errors, bounded state
// space (the §4 reduction at work), sticky violation knowledge, and a
// stable violation rate after the learning phase. The paper's services
// "may run for extended periods"; the runtime must not degrade with time.
func TestSoakLongRunBoundedState(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	res, err := Run(Scenario{
		Name:        "soak",
		SensitiveID: "vlc",
		Sensitive: func(rng *rand.Rand) sim.QoSApp {
			return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
		},
		Batch: []Placement{{ID: "twitter", StartTick: 20, App: func(rng *rand.Rand) sim.App {
			cfg := apps.DefaultTwitterConfig()
			cfg.TotalWork = 0
			return apps.NewTwitterAnalysis(cfg, rng)
		}}},
		Ticks:    3000,
		Seed:     99,
		StayAway: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Periods != 3000 {
		t.Fatalf("periods = %d", rep.Periods)
	}
	// The representative reduction must keep the state space bounded far
	// below the period count.
	if rep.States > 200 {
		t.Errorf("states = %d after 3000 periods; reduction is not holding", rep.States)
	}
	// The violation rate over the last two thirds must not exceed the
	// overall rate: learning must not regress.
	lateVs := Violations(res.Records[1000:])
	allVs := Violations(res.Records)
	if lateVs.Rate > allVs.Rate*1.5+0.01 {
		t.Errorf("late violation rate %v regressed vs overall %v", lateVs.Rate, allVs.Rate)
	}
	// Utilization gain persists through the whole run.
	lateGain := Mean(GainSeries(res.Records[1500:]))
	if lateGain < 0.1 {
		t.Errorf("late gain = %v; the controller starved the batch long-term", lateGain)
	}
}

// Determinism over a long horizon: two identical soak runs must agree
// tick-for-tick.
func TestSoakDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	sc := Scenario{
		Name:        "soak-determinism",
		SensitiveID: "web",
		Sensitive: func(rng *rand.Rand) sim.QoSApp {
			return apps.NewWebservice(apps.DefaultWebserviceConfig(apps.Mixed), rng)
		},
		Batch: []Placement{{ID: "bomb", StartTick: 10, App: func(rng *rand.Rand) sim.App {
			return apps.NewMemoryBomb(apps.DefaultMemoryBombConfig(), rng)
		}}},
		Ticks:    1500,
		Seed:     7,
		StayAway: true,
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("divergence at tick %d", i)
		}
	}
}
