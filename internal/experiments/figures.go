package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/trajectory"
)

// Figure is one regenerated table or figure.
type Figure struct {
	// ID is the experiment identifier ("fig01" … "fig18", "table1").
	ID string
	// Title describes the figure.
	Title string
	// Text is the rendered ASCII figure plus summary lines.
	Text string
	// Summary carries the headline numbers for EXPERIMENTS.md and for the
	// regression assertions in tests/benches.
	Summary map[string]float64
}

// Standard app factories used across figures.

func vlcStreamApp(rng *rand.Rand) sim.QoSApp {
	return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
}

func vlcStreamAppWithDuration(d int) func(*rand.Rand) sim.QoSApp {
	return func(rng *rand.Rand) sim.QoSApp {
		cfg := apps.DefaultVLCStreamConfig()
		cfg.Duration = d
		return apps.NewVLCStream(cfg, rng)
	}
}

// vlcTranscodeQoSApp models Fig 6's sensitive transcoder: "a violation is
// said to have occurred when the rate of transcoding frames fall below a
// certain threshold." It reuses the stream model with transcoding-shaped
// demand (heavier CPU, no streaming output).
func vlcTranscodeQoSApp(rng *rand.Rand) sim.QoSApp {
	cfg := apps.VLCStreamConfig{
		CPU:         280,
		CPUJitter:   0.05,
		MemoryMB:    600,
		ActiveMemMB: 300,
		MemBWMBps:   2500,
		NetMbps:     0,
		Threshold:   0.9,
	}
	return apps.NewVLCStream(cfg, rng)
}

func cpuBombApp(rng *rand.Rand) sim.App {
	return apps.NewCPUBomb(apps.DefaultCPUBombConfig())
}

func memoryBombApp(rng *rand.Rand) sim.App {
	return apps.NewMemoryBomb(apps.DefaultMemoryBombConfig(), rng)
}

func twitterApp(rng *rand.Rand) sim.App {
	cfg := apps.DefaultTwitterConfig()
	cfg.TotalWork = 0 // endless for steady-state figures
	return apps.NewTwitterAnalysis(cfg, rng)
}

func soplexApp(rng *rand.Rand) sim.App {
	cfg := apps.DefaultSoplexConfig()
	cfg.TotalWork = 0
	return apps.NewSoplex(cfg, rng)
}

func webserviceApp(kind apps.WorkloadKind, intensity apps.Intensity) func(*rand.Rand) sim.QoSApp {
	return func(rng *rand.Rand) sim.QoSApp {
		cfg := apps.DefaultWebserviceConfig(kind)
		if intensity != nil {
			cfg.Intensity = intensity
		}
		return apps.NewWebservice(cfg, rng)
	}
}

// modeGlyph maps execution modes to scatter glyphs.
func modeGlyph(m trajectory.Mode, violation bool) byte {
	if violation {
		return 'V'
	}
	switch m {
	case trajectory.ModeIdle:
		return '.'
	case trajectory.ModeBatchOnly:
		return 'b'
	case trajectory.ModeSensitiveOnly:
		return 's'
	default:
		return 'c'
	}
}

// statePoints converts run records into scatter points.
func statePoints(records []TickRecord) []ScatterPoint {
	out := make([]ScatterPoint, 0, len(records))
	for _, r := range records {
		out = append(out, ScatterPoint{X: r.Coord.X, Y: r.Coord.Y, Glyph: modeGlyph(r.Mode, r.Violation)})
	}
	return out
}

// Fig01 regenerates Figure 1: the diurnal Wikipedia read workload.
func Fig01(seed int64) (*Figure, error) {
	cfg := trace.DefaultConfig()
	pts, err := trace.Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	rates := make([]float64, len(pts))
	var lo, hi float64 = pts[0].Rate, pts[0].Rate
	for i, p := range pts {
		rates[i] = p.Rate
		if p.Rate < lo {
			lo = p.Rate
		}
		if p.Rate > hi {
			hi = p.Rate
		}
	}
	var b strings.Builder
	b.WriteString(RenderSeries(ChartOptions{
		Title: "Fig 1 — Wikipedia-like total read workload (4 days, hourly)",
	}, rates))
	fmt.Fprintf(&b, "peak=%.0f trough=%.0f ratio=%.2f\n", hi, lo, hi/lo)
	return &Figure{
		ID:    "fig01",
		Title: "Total workload variation (diurnal trace)",
		Text:  b.String(),
		Summary: map[string]float64{
			"peak":   hi,
			"trough": lo,
			"ratio":  hi / lo,
		},
	}, nil
}

// Fig04 regenerates Figure 4: the violation-range radius R = d·e^(−d²/2c²)
// as the distance d to the nearest safe-state varies.
func Fig04() (*Figure, error) {
	const c = 1.0
	const n = 60
	radii := make([]float64, n)
	var peakD, peakR float64
	for i := 0; i < n; i++ {
		d := 3 * c * float64(i) / float64(n-1)
		r := stats.RayleighWeight(d, c)
		radii[i] = r
		if r > peakR {
			peakD, peakR = d, r
		}
	}
	var b strings.Builder
	b.WriteString(RenderSeries(ChartOptions{
		Title: "Fig 4 — violation-range radius vs distance to nearest safe-state (c=1)",
	}, radii))
	fmt.Fprintf(&b, "peak radius %.4f at d=%.3f (theory: %.4f at d=c=1)\n",
		peakR, peakD, stats.RayleighWeight(c, c))
	return &Figure{
		ID:    "fig04",
		Title: "Violation-range radius (Rayleigh weighting)",
		Text:  b.String(),
		Summary: map[string]float64{
			"peak_d": peakD,
			"peak_r": peakR,
		},
	}, nil
}
