package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/throttle"
)

// GradedAblationResult carries the headline numbers of one binary-vs-
// graded comparison.
type GradedAblationResult struct {
	// ViolationsBinary / ViolationsGraded count QoS violations suffered
	// under each policy.
	ViolationsBinary int
	ViolationsGraded int
	// WorkBinary / WorkGraded is the batch containers' total effective
	// CPU under each policy (throughput retained while protected).
	WorkBinary float64
	WorkGraded float64
	// Pauses / Limits describe the graded run's actuation mix.
	GradedPauses int
	GradedLimits int
}

// runGradedPair runs the same co-location under the binary (freeze-only)
// and graded (cpu.max quota) policies with identical seeds.
func runGradedPair(name string, seed int64, ticks int) (*GradedAblationResult, error) {
	base := Scenario{
		SensitiveID: "vlc",
		Sensitive:   vlcStreamApp,
		Batch:       []Placement{{ID: "twitter", StartTick: 20, App: twitterApp}},
		Ticks:       ticks,
		Seed:        seed,
		StayAway:    true,
	}

	binary := base
	binary.Name = name + "-binary"
	resBin, err := Run(binary)
	if err != nil {
		return nil, err
	}

	graded := base
	graded.Name = name + "-graded"
	graded.Tune = func(cfg *core.Config) {
		cfg.Throttle.Policy = throttle.PolicyGraded
	}
	resGrad, err := Run(graded)
	if err != nil {
		return nil, err
	}

	return &GradedAblationResult{
		ViolationsBinary: Violations(resBin.Records).Violations,
		ViolationsGraded: Violations(resGrad.Records).Violations,
		WorkBinary:       resBin.BatchWork,
		WorkGraded:       resGrad.BatchWork,
		GradedPauses:     resGrad.Report.Pauses,
		GradedLimits:     resGrad.Report.Limits,
	}, nil
}

// AblationGraded compares the paper's binary freeze/thaw actuation against
// the graded cpu.max policy on the gradual-interference co-location (VLC
// streaming + Twitter-Analysis, the Fig 7 workload). The claim under test:
// because a partially-limited batch job keeps computing while a frozen one
// does not, graded throttling retains more batch throughput without
// giving back the QoS protection.
func AblationGraded(seed int64) (*Figure, error) {
	r, err := runGradedPair("ablation-graded", seed, 300)
	if err != nil {
		return nil, err
	}
	retention := 0.0
	if r.WorkBinary > 0 {
		retention = r.WorkGraded / r.WorkBinary
	}
	var b strings.Builder
	b.WriteString("Ablation — binary freeze/thaw vs graded cpu.max quotas (VLC + Twitter-Analysis)\n\n")
	fmt.Fprintf(&b, "  policy   violations   batch work (effective CPU)\n")
	fmt.Fprintf(&b, "  binary   %-12d %.0f\n", r.ViolationsBinary, r.WorkBinary)
	fmt.Fprintf(&b, "  graded   %-12d %.0f  (%.2fx of binary)\n", r.ViolationsGraded, r.WorkGraded, retention)
	fmt.Fprintf(&b, "\ngraded actuation mix: %d quota adjustments, %d full freezes\n",
		r.GradedLimits, r.GradedPauses)
	return &Figure{
		ID:    "ablation-graded",
		Title: "Binary vs graded throttling",
		Text:  b.String(),
		Summary: map[string]float64{
			"violations_binary": float64(r.ViolationsBinary),
			"violations_graded": float64(r.ViolationsGraded),
			"work_binary":       r.WorkBinary,
			"work_graded":       r.WorkGraded,
			"work_retention":    retention,
			"graded_limits":     float64(r.GradedLimits),
			"graded_pauses":     float64(r.GradedPauses),
		},
	}, nil
}
