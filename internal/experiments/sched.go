package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/statespace"
)

// Cluster-placement ablation: does placing batch work with the learned
// violation maps beat interference-oblivious and statically-modeled
// placement? The pipeline dogfoods the whole stack — per-host learning
// runs export templates, the fleet registry merges them, and the
// scheduler queries the merged consensus maps — then runs the same
// arrival schedule under three scorers with the reactive safety net on
// everywhere.

// schedRanges is the shared normalization contract for learning and
// scoring: learning runs, the registry merge, and the prospective
// queries must all measure in the same units.
func schedRanges() map[metrics.Metric]metrics.Range {
	return map[metrics.Metric]metrics.Range{
		metrics.MetricCPU:     {Max: 800},
		metrics.MetricMemory:  {Max: 8192},
		metrics.MetricIO:      {Max: 200},
		metrics.MetricNetwork: {Max: 1000},
	}
}

// schedHostConfig sizes the scenario hosts: 6 GB of RAM means two 3.4 GB
// memory bombs cannot legally share a host (declared-capacity feasibility
// keeps piles the maps have never seen off the table), while one bomb
// plus a network hog still fits.
func schedHostConfig() sim.HostConfig {
	return sim.HostConfig{
		Cores: 8, MemoryMB: 6144, MemBWMBps: 10000, DiskMBps: 200,
		NetMbps: 1000, SwapPenalty: 12, SwapIOPerMB: 0.05,
	}
}

// vlcHDApp is the memory-bandwidth-hungry stream: big CPU headroom, but
// its frame pipeline saturates under a memory-heavy co-runner.
func vlcHDApp() sim.QoSApp {
	return apps.NewVLCStream(apps.VLCStreamConfig{
		CPU: 145, MemoryMB: 400, ActiveMemMB: 150,
		MemBWMBps: 4000, NetMbps: 60, Threshold: 0.9,
	}, nil)
}

// cdnEdgeApp is the network-bound edge cache: it owns most of the uplink,
// so a network-heavy co-runner violates it while memory pressure is
// harmless.
func cdnEdgeApp() sim.QoSApp {
	return apps.NewVLCStream(apps.VLCStreamConfig{
		CPU: 145, MemoryMB: 400, ActiveMemMB: 150,
		MemBWMBps: 1500, NetMbps: 600, Threshold: 0.9,
	}, nil)
}

// netHogBatch is a network-heavy batch job (log shipping / replication).
type netHogBatch struct{ remaining float64 }

func (n *netHogBatch) Name() string { return "nethog" }
func (n *netHogBatch) Demand(tick int) sim.Demand {
	return sim.Demand{CPU: 150, MemoryMB: 300, ActiveMemMB: 100, NetMbps: 600}
}
func (n *netHogBatch) Advance(tick int, g sim.Grant) bool {
	if n.remaining <= 0 {
		return false
	}
	n.remaining -= g.EffectiveCPU()
	return n.remaining <= 0
}

func schedMemBomb(totalWork float64) sim.App {
	cfg := apps.DefaultMemoryBombConfig()
	cfg.RampTicks = 5
	cfg.ReadEveryTicks = 4
	cfg.ReadBurstTicks = 6
	cfg.TotalWork = totalWork
	return apps.NewMemoryBomb(cfg, nil)
}

// Footprints the scheduler sees: steady-state demand estimates matching
// what the learning runs measured.
func schedMemBombJob(id string) sched.BatchJob {
	return sched.BatchJob{ID: id, App: "memorybomb", Footprint: sched.Footprint{CPU: 60, MemoryMB: 3400}}
}

func schedNetHogJob(id string) sched.BatchJob {
	return sched.BatchJob{ID: id, App: "nethog", Footprint: sched.Footprint{CPU: 150, MemoryMB: 300, NetMbps: 600}}
}

// schedLearnTemplate runs one sensitive next to one batch co-runner on a
// single host in observe-only mode (§6's learning execution: record the
// map, don't protect yet) and exports the learned template.
func schedLearnTemplate(seed int64, appName string, qos sim.QoSApp, batch sim.App, ticks int) (*statespace.Template, error) {
	s, err := sim.NewSimulator(schedHostConfig())
	if err != nil {
		return nil, err
	}
	const sensID, batchID = "sensitive", "co-runner"
	if _, err := s.AddContainer(sensID, qos); err != nil {
		return nil, err
	}
	if _, err := s.AddContainer(batchID, batch); err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(sensID, []string{batchID}, schedRanges())
	cfg.SensitiveApp = appName
	cfg.Seed = seed
	cfg.DisableActions = true
	rt, err := core.New(cfg, NewSimEnvironment(s, sensID, []string{batchID}, qos), NewSimActuator(s))
	if err != nil {
		return nil, err
	}
	for t := 0; t < ticks; t++ {
		s.Step()
		if _, err := rt.Period(); err != nil {
			return nil, err
		}
	}
	return rt.ExportTemplate(appName), nil
}

// schedLearnMaps produces the merged consensus template per sensitive
// app: each app contributes one safe-co-location run and one violating
// run, merged through the fleet registry exactly as production hosts
// would contribute them.
func schedLearnMaps(seed int64) (map[string]*statespace.Template, error) {
	reg, err := registry.Open(registry.Config{
		Now: func() time.Time { return time.Unix(0, 0) },
	})
	if err != nil {
		return nil, err
	}
	learn := []struct {
		app   string
		qos   func() sim.QoSApp
		batch func() sim.App
		host  string
	}{
		// vlc-hd: network hog is the harmless neighbour, memory bomb the
		// violating one.
		{"vlc-hd", vlcHDApp, func() sim.App { return &netHogBatch{} }, "learn-a1"},
		{"vlc-hd", vlcHDApp, func() sim.App { return schedMemBomb(0) }, "learn-a2"},
		// cdn-edge: the mirror image.
		{"cdn-edge", cdnEdgeApp, func() sim.App { return schedMemBomb(0) }, "learn-b1"},
		{"cdn-edge", cdnEdgeApp, func() sim.App { return &netHogBatch{} }, "learn-b2"},
	}
	out := make(map[string]*statespace.Template)
	for i, l := range learn {
		tpl, err := schedLearnTemplate(seed+int64(i), l.app, l.qos(), l.batch(), 200)
		if err != nil {
			return nil, fmt.Errorf("learning run %s/%s: %w", l.app, l.host, err)
		}
		if _, err := reg.Put(l.host, tpl); err != nil {
			return nil, fmt.Errorf("registry merge %s/%s: %w", l.app, l.host, err)
		}
		entry, ok := reg.Get(l.app, tpl.SchemaKey())
		if !ok {
			return nil, fmt.Errorf("registry lost template for %s", l.app)
		}
		out[l.app] = entry.Template
	}
	for app, tpl := range out {
		if tpl.ViolationCount() == 0 {
			return nil, fmt.Errorf("learning produced no violation-states for %s", app)
		}
	}
	return out, nil
}

// schedClusterConfig builds the placement scenario: two stream hosts, two
// edge-cache hosts, and an alternating arrival stream of memory bombs and
// network hogs sized so every job can finish within the run. Fresh app
// instances per call — simulated workloads carry state.
func schedClusterConfig(templates map[string]*statespace.Template, p *sched.Placer, seed int64) sched.ClusterConfig {
	host := func(id, app string) sched.ClusterHostSpec {
		var qos sim.QoSApp
		var fp sched.Footprint
		if app == "vlc-hd" {
			qos = vlcHDApp()
			fp = sched.Footprint{CPU: 145, MemoryMB: 400, NetMbps: 60}
		} else {
			qos = cdnEdgeApp()
			fp = sched.Footprint{CPU: 145, MemoryMB: 400, NetMbps: 600}
		}
		return sched.ClusterHostSpec{
			ID: id, Sim: schedHostConfig(),
			Sensitive: &sched.ClusterSensitive{
				Name: app, ContainerID: "sens-" + id, App: qos,
				Footprint: fp, Template: templates[app],
			},
		}
	}
	return sched.ClusterConfig{
		Hosts: []sched.ClusterHostSpec{
			host("a1", "vlc-hd"), host("a2", "vlc-hd"),
			host("b1", "cdn-edge"), host("b2", "cdn-edge"),
		},
		Jobs: []sched.ClusterJob{
			{Job: schedMemBombJob("mem-1"), App: schedMemBomb(3000), Arrival: 2},
			{Job: schedNetHogJob("net-1"), App: &netHogBatch{remaining: 7500}, Arrival: 4},
			{Job: schedMemBombJob("mem-2"), App: schedMemBomb(3000), Arrival: 6},
			{Job: schedNetHogJob("net-2"), App: &netHogBatch{remaining: 7500}, Arrival: 8},
		},
		Placer:      p,
		SafetyNet:   true,
		Ranges:      schedRanges(),
		PeriodTicks: 1,
		Ticks:       400,
		Seed:        seed,
	}
}

// SchedResult is one scorer's outcome in the placement ablation.
type SchedResult struct {
	Scorer           string
	Violations       int
	ThrottledPeriods int
	BatchWork        float64
	JobsFinished     int
}

// SchedAblation runs the placement-vs-reactive ablation: learn maps on
// single hosts, merge them in the registry, then place the same batch
// arrivals with the learned-map scorer, a 1610.04309-style static
// cross-application model, and seeded random placement — the reactive
// per-host runtime active as safety net in every variant.
func SchedAblation(seed int64) (*Figure, error) {
	templates, err := schedLearnMaps(seed)
	if err != nil {
		return nil, err
	}

	mapScorer, err := sched.NewMapScorer(templates)
	if err != nil {
		return nil, err
	}
	scorers := []sched.Scorer{
		mapScorer,
		sched.NewCrossAppScorer(sched.DefaultCrossAppProfile()),
		sched.NewRandomScorer(seed),
	}

	var results []SchedResult
	for _, sc := range scorers {
		p, err := sched.NewPlacer(sched.PlacerConfig{Scorer: sc})
		if err != nil {
			return nil, err
		}
		res, err := sched.RunCluster(schedClusterConfig(templates, p, seed))
		if err != nil {
			return nil, fmt.Errorf("scorer %s: %w", sc.Name(), err)
		}
		results = append(results, SchedResult{
			Scorer:           sc.Name(),
			Violations:       res.Violations,
			ThrottledPeriods: res.ThrottledPeriods,
			BatchWork:        res.BatchWork,
			JobsFinished:     res.JobsFinished,
		})
	}

	var b strings.Builder
	b.WriteString("Ablation — interference-aware placement over learned maps vs baselines\n")
	b.WriteString("(2×vlc-hd + 2×cdn-edge hosts, 2 memory bombs + 2 network hogs, safety net on)\n\n")
	fmt.Fprintf(&b, "  scorer     violations   throttled-periods   batch work   jobs finished\n")
	summary := map[string]float64{}
	for _, r := range results {
		fmt.Fprintf(&b, "  %-9s  %-12d %-19d %-12.0f %d\n",
			r.Scorer, r.Violations, r.ThrottledPeriods, r.BatchWork, r.JobsFinished)
		summary["violations_"+r.Scorer] = float64(r.Violations)
		summary["throttled_"+r.Scorer] = float64(r.ThrottledPeriods)
		summary["work_"+r.Scorer] = r.BatchWork
		summary["finished_"+r.Scorer] = float64(r.JobsFinished)
	}
	b.WriteString("\nThe learned-map scorer routes each job to the host whose sensitive\n")
	b.WriteString("tolerates it; the static model and random placement leave the reactive\n")
	b.WriteString("safety net to clean up the co-locations they create.\n")
	return &Figure{
		ID:      "ablation-sched",
		Title:   "Cluster placement over learned maps vs baselines",
		Text:    b.String(),
		Summary: summary,
	}, nil
}
