package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// The request-driven Webservice (real Memcached layer) must be a drop-in
// replacement for the analytic model in end-to-end scenarios: unprotected
// co-location with a memory stressor violates, Stay-Away mitigates.
func TestRequestWebserviceUnderStayAway(t *testing.T) {
	kvWeb := func(rng *rand.Rand) sim.QoSApp {
		w, err := apps.NewRequestWebservice(
			apps.DefaultRequestWebserviceConfig(apps.MemoryIntensive), rng)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	memBomb := func(rng *rand.Rand) sim.App {
		return apps.NewMemoryBomb(apps.DefaultMemoryBombConfig(), rng)
	}
	base := Scenario{
		Name:        "kvweb-membomb",
		SensitiveID: "web",
		Sensitive:   kvWeb,
		Batch:       []Placement{{ID: "bomb", StartTick: 20, App: memBomb}},
		Ticks:       200,
		Seed:        11,
	}
	noPrev, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	protected := base
	protected.StayAway = true
	sa, err := Run(protected)
	if err != nil {
		t.Fatal(err)
	}
	vsNo := Violations(noPrev.Records)
	vsSA := Violations(sa.Records)
	if vsNo.Violations == 0 {
		t.Fatal("unprotected run should violate under memory pressure")
	}
	if vsSA.Rate >= vsNo.Rate {
		t.Errorf("Stay-Away rate %v should beat unprotected %v", vsSA.Rate, vsNo.Rate)
	}
	if sa.Report.Pauses == 0 {
		t.Error("Stay-Away never paused the bomb")
	}
}

// The request-driven CPU-intensive Webservice should run clean in
// isolation (no batch at all): the substrate swap must not introduce
// self-inflicted violations.
func TestRequestWebserviceIsolatedScenario(t *testing.T) {
	res, err := Run(Scenario{
		Name:        "kvweb-isolated",
		SensitiveID: "web",
		Sensitive: func(rng *rand.Rand) sim.QoSApp {
			w, err := apps.NewRequestWebservice(
				apps.DefaultRequestWebserviceConfig(apps.CPUIntensive), rng)
			if err != nil {
				t.Fatal(err)
			}
			return w
		},
		Ticks: 120,
		Seed:  12,
	})
	if err != nil {
		t.Fatal(err)
	}
	vs := Violations(res.Records)
	if vs.Rate > 0.02 {
		t.Errorf("isolated violation rate = %v, want ≈0", vs.Rate)
	}
}
