package experiments

import (
	"fmt"
	"strings"

	"repro/internal/mds"
	"repro/internal/statespace"
	"repro/internal/trajectory"
)

// Fig05 regenerates Figure 5: the full execution lifecycle of VLC
// streaming co-located with Soplex, stepping through all four execution
// modes (idle → sensitive-only → co-located → batch-only), with the
// per-mode trajectory pdfs. Actions are disabled: the figure illustrates
// unmitigated behaviour.
func Fig05(seed int64) (*Figure, error) {
	res, err := Run(Scenario{
		Name:           "fig05-vlc-soplex-lifecycle",
		SensitiveID:    "vlc",
		Sensitive:      vlcStreamAppWithDuration(110),
		SensitiveStart: 10,
		Batch:          []Placement{{ID: "soplex", StartTick: 40, App: soplexApp}},
		Ticks:          200,
		Seed:           seed,
		StayAway:       true,
		DisableActions: true,
	})
	if err != nil {
		return nil, err
	}

	modesSeen := map[trajectory.Mode]int{}
	for _, r := range res.Records {
		modesSeen[r.Mode]++
	}
	var b strings.Builder
	b.WriteString(RenderScatter(
		"Fig 5 — state space over the lifecycle (.=idle s=sensitive b=batch c=co-located V=violation)",
		64, 20, statePoints(res.Records)))
	b.WriteString("\nper-mode trajectory bias (distance skew, angle skew):\n")
	summary := map[string]float64{}
	for m := trajectory.ModeIdle; m < trajectory.NumModes; m++ {
		model, err := res.Runtime.Models().ModelFor(m)
		if err != nil {
			return nil, err
		}
		dSkew, aSkew := model.Bias()
		cls := trajectory.Classify(model.Recent())
		fmt.Fprintf(&b, "  %-15s steps=%-4d dSkew=%+.2f aSkew=%+.2f walk=%s\n",
			m, model.Count(), dSkew, aSkew, cls.Kind)
		summary["steps_"+m.String()] = float64(model.Count())
	}
	// The smoothed per-mode pdfs (the KDE curves of the paper's Fig 5),
	// for the modes with enough steps to be meaningful.
	for _, m := range []trajectory.Mode{trajectory.ModeSensitiveOnly, trajectory.ModeColocated, trajectory.ModeBatchOnly} {
		model, err := res.Runtime.Models().ModelFor(m)
		if err != nil {
			return nil, err
		}
		if model.Count() < 10 {
			continue
		}
		_, dPDF := model.DistancePDF(64)
		b.WriteString("\n" + RenderSeries(ChartOptions{
			Title:  fmt.Sprintf("step-length pdf, %s mode", m),
			Height: 6, Width: 64,
		}, dPDF))
	}
	for m, n := range modesSeen {
		summary["ticks_"+m.String()] = float64(n)
	}
	summary["modes_seen"] = float64(len(modesSeen))
	summary["states"] = float64(res.Report.States)
	return &Figure{
		ID:      "fig05",
		Title:   "All 4 execution modes: VLC streaming + Soplex",
		Text:    b.String(),
		Summary: summary,
	}, nil
}

// Fig06 regenerates Figure 6: instantaneous state transitions when VLC
// transcoding (QoS-sensitive here) is co-located with CPUBomb, with
// Stay-Away observing but not acting ("Action status: False").
func Fig06(seed int64) (*Figure, error) {
	res, err := Run(Scenario{
		Name:           "fig06-transcode-cpubomb",
		SensitiveID:    "vlc-transcode",
		Sensitive:      vlcTranscodeQoSApp,
		SensitiveStart: 30, // CPUBomb runs alone first (cluster A)
		Batch:          []Placement{{ID: "cpubomb", StartTick: 0, App: cpuBombApp}},
		Ticks:          120,
		Seed:           seed,
		StayAway:       true,
		DisableActions: true,
	})
	if err != nil {
		return nil, err
	}
	// Instantaneous transition: the jump between the batch-only cluster
	// and the co-located/violation cluster happens within one period.
	var maxJump float64
	for i := 1; i < len(res.Records); i++ {
		d := res.Records[i-1].Coord.Dist(res.Records[i].Coord)
		if d > maxJump {
			maxJump = d
		}
	}
	vs := Violations(res.Records)
	var b strings.Builder
	b.WriteString(RenderScatter(
		"Fig 6 — instantaneous transitions, VLC transcoding + CPUBomb (action status: false)",
		64, 20, statePoints(res.Records)))
	fmt.Fprintf(&b, "violations=%d/%d ticks, max one-period jump=%.3f, violation states=%d\n",
		vs.Violations, vs.Ticks, maxJump, res.Report.ViolationStates)
	return &Figure{
		ID:    "fig06",
		Title: "Instantaneous transitions: VLC transcoding + CPUBomb",
		Text:  b.String(),
		Summary: map[string]float64{
			"violations":       float64(vs.Violations),
			"violation_states": float64(res.Report.ViolationStates),
			"max_jump":         maxJump,
		},
	}, nil
}

// Fig07 regenerates Figure 7: gradual transitions when VLC streaming is
// co-located with Twitter-Analysis, with Stay-Away acting ("Action
// status: True").
func Fig07(seed int64) (*Figure, error) {
	res, err := Run(Scenario{
		Name:        "fig07-vlc-twitter",
		SensitiveID: "vlc",
		Sensitive:   vlcStreamApp,
		Batch:       []Placement{{ID: "twitter", StartTick: 20, App: twitterApp}},
		Ticks:       250,
		Seed:        seed,
		StayAway:    true,
	})
	if err != nil {
		return nil, err
	}
	throttledTicks := 0
	for _, r := range res.Records {
		if r.Throttled {
			throttledTicks++
		}
	}
	var b strings.Builder
	b.WriteString(RenderScatter(
		"Fig 7 — gradual transitions, VLC streaming + Twitter-Analysis (action status: true)",
		64, 20, statePoints(res.Records)))
	fmt.Fprintf(&b, "throttled %d/%d ticks, pauses=%d resumes=%d\n",
		throttledTicks, len(res.Records), res.Report.Pauses, res.Report.Resumes)
	return &Figure{
		ID:    "fig07",
		Title: "Gradual transitions: VLC streaming + Twitter-Analysis",
		Text:  b.String(),
		Summary: map[string]float64{
			"throttled_ticks": float64(throttledTicks),
			"pauses":          float64(res.Report.Pauses),
		},
	}, nil
}

// qosComparisonFigure runs a co-location twice — unprotected and with
// Stay-Away — and renders both QoS series (Figs 8, 9).
func qosComparisonFigure(id, title, batchID string, batch func(p Placement) Placement, seed int64, ticks int) (*Figure, error) {
	base := Placement{ID: batchID, StartTick: 20}
	placement := batch(base)

	noPrev, err := Run(Scenario{
		Name:        id + "-noprevention",
		SensitiveID: "vlc",
		Sensitive:   vlcStreamApp,
		Batch:       []Placement{placement},
		Ticks:       ticks,
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	withSA, err := Run(Scenario{
		Name:        id + "-stayaway",
		SensitiveID: "vlc",
		Sensitive:   vlcStreamApp,
		Batch:       []Placement{placement},
		Ticks:       ticks,
		Seed:        seed,
		StayAway:    true,
	})
	if err != nil {
		return nil, err
	}

	vsNo := Violations(noPrev.Records)
	vsSA := Violations(withSA.Records)
	threshold := 1.0
	var b strings.Builder
	b.WriteString(RenderSeries(ChartOptions{
		Title: title + " — without prevention (normalized QoS, threshold line at 1.0)",
		HLine: &threshold, YMin: 0, YMax: 1.3,
	}, QoSSeries(noPrev.Records)))
	b.WriteString(RenderSeries(ChartOptions{
		Title: title + " — with Stay-Away",
		HLine: &threshold, YMin: 0, YMax: 1.3,
	}, QoSSeries(withSA.Records)))
	fmt.Fprintf(&b, "violations without prevention: %d/%d (%.1f%%)\n",
		vsNo.Violations, vsNo.Ticks, 100*vsNo.Rate)
	fmt.Fprintf(&b, "violations with Stay-Away:     %d/%d (%.1f%%), early/late = %d/%d\n",
		vsSA.Violations, vsSA.Ticks, 100*vsSA.Rate, vsSA.FirstHalf, vsSA.SecondHalf)
	return &Figure{
		ID:    id,
		Title: title,
		Text:  b.String(),
		Summary: map[string]float64{
			"violation_rate_noprev":   vsNo.Rate,
			"violation_rate_stayaway": vsSA.Rate,
			"early_violations":        float64(vsSA.FirstHalf),
			"late_violations":         float64(vsSA.SecondHalf),
		},
	}, nil
}

// Fig08 regenerates Figure 8: VLC QoS with CPUBomb, with and without
// Stay-Away.
func Fig08(seed int64) (*Figure, error) {
	return qosComparisonFigure("fig08", "Fig 8 — VLC with CPUBomb", "cpubomb",
		func(p Placement) Placement { p.App = cpuBombApp; return p }, seed, 300)
}

// Fig09 regenerates Figure 9: VLC QoS with Twitter-Analysis.
func Fig09(seed int64) (*Figure, error) {
	return qosComparisonFigure("fig09", "Fig 9 — VLC with Twitter-Analysis", "twitter",
		func(p Placement) Placement { p.App = twitterApp; return p }, seed, 300)
}

// gainFigure runs a co-location unprotected (upper band: maximal gain,
// QoS sacrificed) and with Stay-Away (lower band), rendering gained
// utilization (Figs 10, 11).
func gainFigure(id, title, batchID string, app Placement, seed int64, ticks int) (*Figure, error) {
	app.ID = batchID
	noPrev, err := Run(Scenario{
		Name:        id + "-upperband",
		SensitiveID: "vlc",
		Sensitive:   vlcStreamApp,
		Batch:       []Placement{app},
		Ticks:       ticks,
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	withSA, err := Run(Scenario{
		Name:        id + "-stayaway",
		SensitiveID: "vlc",
		Sensitive:   vlcStreamApp,
		Batch:       []Placement{app},
		Ticks:       ticks,
		Seed:        seed,
		StayAway:    true,
	})
	if err != nil {
		return nil, err
	}
	upper := GainSeries(noPrev.Records)
	lower := GainSeries(withSA.Records)
	meanUpper := Mean(upper)
	meanLower := Mean(lower)
	vsSA := Violations(withSA.Records)
	var b strings.Builder
	b.WriteString(RenderSeries(ChartOptions{
		Title: title + " (*=no prevention upper band, o=Stay-Away lower band)",
		YMin:  0, YMax: 1.05,
	}, upper, lower))
	fmt.Fprintf(&b, "mean gained utilization: no prevention %.1f%%, Stay-Away %.1f%% (QoS violation rate with Stay-Away: %.1f%%)\n",
		100*meanUpper, 100*meanLower, 100*vsSA.Rate)
	return &Figure{
		ID:    id,
		Title: title,
		Text:  b.String(),
		Summary: map[string]float64{
			"gain_noprev":             meanUpper,
			"gain_stayaway":           meanLower,
			"violation_rate_stayaway": vsSA.Rate,
		},
	}, nil
}

// Fig10 regenerates Figure 10: gained utilization with CPUBomb — the worst
// case, spiky and small (paper: ≈5%).
func Fig10(seed int64) (*Figure, error) {
	return gainFigure("fig10", "Fig 10 — gained utilization, VLC + CPUBomb",
		"cpubomb", Placement{StartTick: 20, App: cpuBombApp}, seed, 300)
}

// Fig11 regenerates Figure 11: gained utilization with Twitter-Analysis
// (paper: ≈50% average).
func Fig11(seed int64) (*Figure, error) {
	return gainFigure("fig11", "Fig 11 — gained utilization, VLC + Twitter-Analysis",
		"twitter", Placement{StartTick: 20, App: twitterApp}, seed, 300)
}

// Fig17 regenerates Figure 17: the template captured while VLC streams
// alongside CPUBomb with Stay-Away active.
func Fig17(seed int64) (*Figure, *statespace.Template, error) {
	res, err := Run(Scenario{
		Name:        "fig17-template-cpubomb",
		SensitiveID: "vlc",
		Sensitive:   vlcStreamApp,
		Batch:       []Placement{{ID: "batch", StartTick: 20, App: cpuBombApp}},
		Ticks:       250,
		Seed:        seed,
		StayAway:    true,
	})
	if err != nil {
		return nil, nil, err
	}
	tpl := res.Runtime.ExportTemplate("vlc-stream")
	var b strings.Builder
	b.WriteString(RenderScatter(
		"Fig 17 — template learned with CPUBomb (V = violation states)",
		64, 20, statePoints(res.Records)))
	fmt.Fprintf(&b, "template: %d states, %d violation states\n",
		len(tpl.States), res.Report.ViolationStates)
	return &Figure{
		ID:    "fig17",
		Title: "Template with CPUBomb",
		Text:  b.String(),
		Summary: map[string]float64{
			"states":           float64(len(tpl.States)),
			"violation_states": float64(res.Report.ViolationStates),
		},
	}, tpl, nil
}

// Fig18 regenerates Figure 18: the template from Fig 17 is loaded for a
// run of the same VLC stream alongside Soplex, with actions disabled; the
// violations observed with Soplex must fall inside (or at the edge of) the
// violation region learned with CPUBomb.
func Fig18(seed int64) (*Figure, error) {
	_, tpl, err := Fig17(seed)
	if err != nil {
		return nil, err
	}
	res, err := Run(Scenario{
		Name:           "fig18-template-soplex",
		SensitiveID:    "vlc",
		Sensitive:      vlcStreamApp,
		Batch:          []Placement{{ID: "batch", StartTick: 20, App: soplexApp}},
		Ticks:          250,
		Seed:           seed + 1,
		StayAway:       true,
		DisableActions: true,
		Template:       tpl,
	})
	if err != nil {
		return nil, err
	}

	// Validate the §6 claim ("they correspond to the area characterised by
	// violations") two ways: the strict test — the new violation maps
	// inside some template violation-range — and the qualitative test —
	// the new violation lies closer to the template's violation states
	// than to its safe states.
	tplSpace, err := statespace.Import(tpl)
	if err != nil {
		return nil, err
	}
	var total, inRegion, nearer int
	for _, r := range res.Records {
		if !r.Violation {
			continue
		}
		total++
		if _, in := tplSpace.InViolationRange(r.Coord); in {
			inRegion++
		}
		dSafe, _, okSafe := tplSpace.NearestSafe(r.Coord)
		dViol := nearestViolationDist(tplSpace, r.Coord)
		if okSafe && dViol >= 0 && dViol < dSafe {
			nearer++
		}
	}
	inFrac, nearFrac := 0.0, 0.0
	if total > 0 {
		inFrac = float64(inRegion) / float64(total)
		nearFrac = float64(nearer) / float64(total)
	}
	var b strings.Builder
	b.WriteString(RenderScatter(
		"Fig 18 — VLC + Soplex on the CPUBomb-learned template (actions disabled)",
		64, 20, statePoints(res.Records)))
	fmt.Fprintf(&b, "violations with Soplex: %d; inside template violation-ranges: %d (%.0f%%); "+
		"closer to template violation states than safe states: %d (%.0f%%)\n",
		total, inRegion, 100*inFrac, nearer, 100*nearFrac)
	return &Figure{
		ID:    "fig18",
		Title: "Template validation: VLC with Soplex",
		Text:  b.String(),
		Summary: map[string]float64{
			"violations":         float64(total),
			"in_region":          float64(inRegion),
			"in_region_fraction": inFrac,
			"nearer_fraction":    nearFrac,
		},
	}, nil
}

// nearestViolationDist returns the distance from p to the nearest
// violation state in the space, or −1 when none exists.
func nearestViolationDist(space *statespace.Space, p mds.Coord) float64 {
	best := -1.0
	for _, id := range space.ViolationIDs() {
		st, err := space.State(id)
		if err != nil {
			continue
		}
		d := st.Coord.Dist(p)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}
