package experiments

import "testing"

func TestReloadChaosInvariants(t *testing.T) {
	f, err := ReloadChaos(7)
	if err != nil {
		t.Fatal(err)
	}
	// The suite polices itself; spot-check that it really exercised the
	// lifecycle and the fault injector.
	for _, key := range []string{"adds", "removes", "reconfigs", "crashes", "injected_faults", "pauses", "resumes"} {
		if f.Summary[key] == 0 {
			t.Errorf("summary[%q] = 0, suite under-exercised", key)
		}
	}
	if f.Summary["over_freezes"] != 0 || f.Summary["restriction_gaps"] != 0 || f.Summary["final_replay_thawed"] != 0 {
		t.Errorf("invariant counters non-zero: %+v", f.Summary)
	}
}

func TestReloadChaosDeterministic(t *testing.T) {
	a, err := ReloadChaos(99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReloadChaos(99)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Summary {
		if b.Summary[k] != v {
			t.Errorf("summary[%q] differs across identical seeds: %v vs %v", k, v, b.Summary[k])
		}
	}
}
