package experiments

// Prediction lead time: how many periods in advance the predictor warned
// before each violation. Gradual transitions (§3.2.3) should be flagged
// periods ahead; instantaneous CPU jumps are inherently unforeseeable
// (lead 0), which the paper concedes. Lead-time analysis only makes sense
// on observe-only runs (actions would prevent the violations being
// measured).

// LeadTimeStats summarizes prediction lead over one run.
type LeadTimeStats struct {
	// Violations is the number of violation ticks analysed.
	Violations int
	// Foreseen counts violations preceded by at least one predicted tick.
	Foreseen int
	// MeanLead is the average number of consecutive predicted ticks
	// immediately preceding each violation (0 for unforeseen ones).
	MeanLead float64
	// MaxLead is the longest warning streak observed.
	MaxLead int
}

// LeadTimes computes, for every violation tick, the length of the
// consecutive run of predicted ticks immediately before it. The tick of
// the violation itself does not count toward its lead.
func LeadTimes(records []TickRecord) LeadTimeStats {
	var st LeadTimeStats
	var total int
	for i, r := range records {
		if !r.Violation || !r.SensitiveRunning {
			continue
		}
		st.Violations++
		lead := 0
		for j := i - 1; j >= 0 && records[j].Predicted && !records[j].Violation; j-- {
			lead++
		}
		if lead > 0 {
			st.Foreseen++
		}
		if lead > st.MaxLead {
			st.MaxLead = lead
		}
		total += lead
	}
	if st.Violations > 0 {
		st.MeanLead = float64(total) / float64(st.Violations)
	}
	return st
}
