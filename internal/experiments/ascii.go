package experiments

import (
	"fmt"
	"math"
	"strings"
)

// ASCII rendering for figures: time-series charts and 2-D scatter plots,
// so `cmd/experiments` reproduces every figure as terminal output.

// ChartOptions tunes RenderSeries.
type ChartOptions struct {
	// Width and Height are the plot body dimensions in characters.
	Width, Height int
	// YMin and YMax fix the axis range; when both are 0 the range is
	// derived from the data.
	YMin, YMax float64
	// HLine draws a horizontal marker (e.g. the QoS threshold) at this
	// value when non-nil.
	HLine *float64
	// Title is printed above the plot.
	Title string
}

// RenderSeries plots one or more equally long series. Each series gets its
// own glyph in order: '*', 'o', '+', 'x'.
func RenderSeries(opts ChartOptions, series ...[]float64) string {
	glyphs := []byte{'*', 'o', '+', 'x'}
	w := opts.Width
	if w <= 0 {
		w = 72
	}
	h := opts.Height
	if h <= 0 {
		h = 14
	}
	n := 0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	if n == 0 {
		return opts.Title + "\n(no data)\n"
	}

	lo, hi := opts.YMin, opts.YMax
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, v := range s {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if opts.HLine != nil {
			lo = math.Min(lo, *opts.HLine)
			hi = math.Max(hi, *opts.HLine)
		}
		if lo == hi {
			hi = lo + 1
		}
		pad := (hi - lo) * 0.05
		lo -= pad
		hi += pad
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	toRow := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		row := int(math.Round(float64(h-1) * (1 - frac)))
		if row < 0 {
			row = 0
		}
		if row >= h {
			row = h - 1
		}
		return row
	}
	if opts.HLine != nil {
		r := toRow(*opts.HLine)
		for x := 0; x < w; x++ {
			grid[r][x] = '-'
		}
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i, v := range s {
			x := 0
			if n > 1 {
				x = i * (w - 1) / (n - 1)
			}
			grid[toRow(v)][x] = g
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	for i, row := range grid {
		yVal := hi - (hi-lo)*float64(i)/float64(h-1)
		fmt.Fprintf(&b, "%8.3f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s+\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%8s  tick 0%s%d\n", "", strings.Repeat(" ", maxInt(1, w-7-len(fmt.Sprint(n-1)))), n-1)
	return b.String()
}

// ScatterPoint is one labelled point for RenderScatter.
type ScatterPoint struct {
	X, Y  float64
	Glyph byte
}

// RenderScatter plots labelled 2-D points (state-space snapshots).
func RenderScatter(title string, width, height int, points []ScatterPoint) string {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	if len(points) == 0 {
		return title + "\n(no points)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		x := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
		y := int(math.Round((1 - (p.Y-minY)/(maxY-minY)) * float64(height-1)))
		grid[y][x] = p.Glyph
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "y: %.3f..%.3f  x: %.3f..%.3f\n", minY, maxY, minX, maxX)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s|\n", string(row))
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
