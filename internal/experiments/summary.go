package experiments

import (
	"fmt"
	"strings"
)

// Summary reproduces the paper's headline claim: "we are able to guarantee
// a high level of QoS, and are able to increase the machine utilization by
// 10%-70%, depending on the type of co-located batch application." It runs
// the VLC co-locations of Figs 10–11 plus a Webservice sweep and reports
// the gained-utilization spread.
func Summary(seed int64) (*Figure, error) {
	type row struct {
		name string
		fig  func(int64) (*Figure, error)
		key  string
	}
	rows := []row{
		{"VLC + CPUBomb", Fig10, "gain_stayaway"},
		{"VLC + Twitter-Analysis", Fig11, "gain_stayaway"},
	}
	var b strings.Builder
	b.WriteString("Headline summary — gained utilization with Stay-Away (QoS guarded)\n\n")
	summary := map[string]float64{}
	minGain, maxGain := 1.0, 0.0
	record := func(name string, gain, viol float64) {
		fmt.Fprintf(&b, "  %-38s gain %5.1f%%  violations %4.1f%%\n", name, 100*gain, 100*viol)
		summary["gain_"+name] = gain
		if gain < minGain {
			minGain = gain
		}
		if gain > maxGain {
			maxGain = gain
		}
	}
	for _, r := range rows {
		f, err := r.fig(seed)
		if err != nil {
			return nil, err
		}
		record(r.name, f.Summary[r.key], f.Summary["violation_rate_stayaway"])
	}
	// Webservice sweep from Fig 12.
	f12, err := Fig12(seed)
	if err != nil {
		return nil, err
	}
	for _, combo := range batchCombos() {
		for _, kind := range webKinds {
			key := fmt.Sprintf("gain_%s_%s", combo.name, kind)
			vkey := fmt.Sprintf("viol_%s_%s", combo.name, kind)
			record(fmt.Sprintf("Webservice(%s) + %s", kind, combo.name),
				f12.Summary[key], f12.Summary[vkey])
		}
	}
	fmt.Fprintf(&b, "\ngained utilization spread: %.0f%% – %.0f%% (paper: 10%%–70%%)\n",
		100*minGain, 100*maxGain)
	summary["min_gain"] = minGain
	summary["max_gain"] = maxGain
	return &Figure{
		ID:      "summary",
		Title:   "Gained utilization across co-locations",
		Text:    b.String(),
		Summary: summary,
	}, nil
}

// AllFigures runs every figure in order and returns them. Fig17's template
// is regenerated inside Fig18; callers that need the template itself
// should call Fig17 directly.
func AllFigures(seed int64) ([]*Figure, error) {
	type gen func(int64) (*Figure, error)
	gens := []gen{
		Fig01,
		func(int64) (*Figure, error) { return Fig04() },
		Fig05, Fig06, Fig07, Fig08, Fig09, Fig10, Fig11, Fig12, Fig13,
		Fig14, Fig15, Fig16,
		func(s int64) (*Figure, error) { f, _, err := Fig17(s); return f, err },
		Fig18,
	}
	out := make([]*Figure, 0, len(gens))
	for _, g := range gens {
		f, err := g(seed)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
