package experiments

import (
	"math"
	"testing"
)

func TestQoSSeries(t *testing.T) {
	records := []TickRecord{
		{SensitiveRunning: true, QoS: 0.9, Threshold: 0.9},
		{SensitiveRunning: true, QoS: 0.45, Threshold: 0.9},
		{SensitiveRunning: false, QoS: 0.9, Threshold: 0.9},
		{SensitiveRunning: true, QoS: 1, Threshold: 0},
	}
	got := QoSSeries(records)
	want := []float64{1, 0.5, 0, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("q[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGainAndUtilSeries(t *testing.T) {
	records := []TickRecord{
		{BatchCPUShare: 0.2, Utilization: 0.5, Throttled: true},
		{BatchCPUShare: 0.7, Utilization: 0.9},
	}
	g := GainSeries(records)
	if g[0] != 0.2 || g[1] != 0.7 {
		t.Errorf("gain = %v", g)
	}
	u := UtilizationSeries(records)
	if u[0] != 0.5 || u[1] != 0.9 {
		t.Errorf("util = %v", u)
	}
	th := ThrottleSeries(records)
	if th[0] != 1 || th[1] != 0 {
		t.Errorf("throttle = %v", th)
	}
}

func TestViolations(t *testing.T) {
	var records []TickRecord
	// 10 running ticks; violations at ticks 1 and 2 (first half).
	for i := 0; i < 10; i++ {
		records = append(records, TickRecord{
			Tick:             i,
			SensitiveRunning: true,
			Violation:        i == 1 || i == 2,
		})
	}
	// Non-running ticks are excluded entirely.
	records = append(records, TickRecord{Tick: 10, Violation: true})
	vs := Violations(records)
	if vs.Ticks != 10 || vs.Violations != 2 {
		t.Errorf("stats = %+v", vs)
	}
	if math.Abs(vs.Rate-0.2) > 1e-12 {
		t.Errorf("rate = %v", vs.Rate)
	}
	if vs.FirstHalf != 2 || vs.SecondHalf != 0 {
		t.Errorf("halves = %d/%d", vs.FirstHalf, vs.SecondHalf)
	}
}

func TestViolationsEmpty(t *testing.T) {
	vs := Violations(nil)
	if vs.Ticks != 0 || vs.Rate != 0 {
		t.Errorf("empty stats = %+v", vs)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestMeanWhile(t *testing.T) {
	records := []TickRecord{
		{Tick: 0, Throttled: true},
		{Tick: 1},
		{Tick: 2, Throttled: true},
	}
	xs := []float64{10, 20, 30}
	got := MeanWhile(records, xs, func(r TickRecord) bool { return r.Throttled })
	if got != 20 {
		t.Errorf("mean while throttled = %v, want 20", got)
	}
	if MeanWhile(records, xs, func(TickRecord) bool { return false }) != 0 {
		t.Error("no matching ticks should average to 0")
	}
}
