package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
)

// steadyVLC is a fully deterministic sensitive app (no scene model, no
// jitter, nil RNG) so single- and multi-tenant runs see identical
// demand regardless of RNG draw order.
func steadyVLC(*rand.Rand) sim.QoSApp {
	cfg := apps.DefaultVLCStreamConfig()
	cfg.SceneCPUs, cfg.SceneProbs = nil, nil
	cfg.CPUJitter = 0
	return apps.NewVLCStream(cfg, nil)
}

func TestRunMultiValidation(t *testing.T) {
	base := func() MultiScenario {
		return MultiScenario{
			Sensitives: []SensitiveSpec{{ID: "vlc", Build: steadyVLC}},
			Batch:      []Placement{{ID: "b1", App: cpuBombApp}},
			Ticks:      10,
		}
	}
	bad := []struct {
		name string
		mut  func(*MultiScenario)
	}{
		{"zero ticks", func(s *MultiScenario) { s.Ticks = 0 }},
		{"no sensitives", func(s *MultiScenario) { s.Sensitives = nil }},
		{"missing build", func(s *MultiScenario) { s.Sensitives[0].Build = nil }},
		{"duplicate id", func(s *MultiScenario) {
			s.Sensitives = append(s.Sensitives, SensitiveSpec{ID: "vlc", App: "other", Build: steadyVLC})
		}},
		{"duplicate app", func(s *MultiScenario) {
			s.Sensitives = append(s.Sensitives, SensitiveSpec{ID: "vlc2", App: "vlc", Build: steadyVLC})
		}},
		{"incomplete batch", func(s *MultiScenario) { s.Batch[0].App = nil }},
	}
	for _, tt := range bad {
		sc := base()
		tt.mut(&sc)
		if _, err := RunMulti(sc); err == nil {
			t.Errorf("%s: expected error", tt.name)
		}
	}
	if _, err := RunMulti(base()); err != nil {
		t.Fatalf("valid scenario: %v", err)
	}
}

// TestIdleLaneEquivalence is the acceptance check: adding an idle lane
// (its sensitive never starts) to the host runtime must not change the
// active application's QoS outcome relative to the single-tenant
// runtime. With deterministic apps and pinned lane seeds the two runs
// are bitwise-identical, which is well within "noise".
func TestIdleLaneEquivalence(t *testing.T) {
	const ticks, seed = 400, 99
	single, err := Run(Scenario{
		Name:        "single-tenant",
		SensitiveID: "vlc",
		Sensitive:   steadyVLC,
		Batch:       []Placement{{ID: "b1", StartTick: 30, App: cpuBombApp}},
		Ticks:       ticks,
		Seed:        seed,
		StayAway:    true,
		Tune:        func(cfg *core.Config) { cfg.Seed = 7 },
	})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := RunMulti(MultiScenario{
		Name: "idle-second-lane",
		Sensitives: []SensitiveSpec{
			{ID: "vlc", Build: steadyVLC},
			// Never scheduled: the lane idles for the whole run.
			{ID: "idle", App: "idle-app", Start: ticks + 1, Build: steadyVLC},
		},
		Batch:    []Placement{{ID: "b1", StartTick: 30, App: cpuBombApp}},
		Ticks:    ticks,
		Seed:     seed,
		StayAway: true,
		Tune:     func(app string, cfg *core.Config) { cfg.Seed = 7 },
	})
	if err != nil {
		t.Fatal(err)
	}

	singleViol := 0
	for _, rec := range single.Records {
		if rec.Violation {
			singleViol++
		}
	}
	if got := multi.LaneViolations("vlc"); got != singleViol {
		t.Errorf("violations: multi %d, single %d", got, singleViol)
	}
	srep, mrep := single.Report, multi.Reports["vlc"]
	if mrep.Pauses != srep.Pauses || mrep.Resumes != srep.Resumes {
		t.Errorf("actuation: multi %d/%d, single %d/%d",
			mrep.Pauses, mrep.Resumes, srep.Pauses, srep.Resumes)
	}
	if mrep.Periods != srep.Periods {
		t.Errorf("periods: multi %d, single %d", mrep.Periods, srep.Periods)
	}
	// The per-tick restriction trace matches exactly.
	for i := range single.Records {
		if single.Records[i].Throttled != multi.Records[i].Lanes["vlc"].Throttled {
			t.Fatalf("tick %d: throttle trace diverged (single %v, multi %v)",
				i, single.Records[i].Throttled, multi.Records[i].Lanes["vlc"].Throttled)
		}
	}

	// The idle lane stayed idle: no violations, no actuation, no learning
	// beyond the idle mode.
	idle := multi.Reports["idle-app"]
	if idle.Violations != 0 || idle.Pauses != 0 {
		t.Errorf("idle lane acted: %d violations, %d pauses", idle.Violations, idle.Pauses)
	}
	if got := multi.LaneViolations("idle-app"); got != 0 {
		t.Errorf("idle lane recorded %d violations", got)
	}
}

// TestConflictScenario runs the two-sensitive conflicting workload and
// checks that both lanes protect independently against the shared pool.
func TestConflictScenario(t *testing.T) {
	sc := ConflictScenario(1)
	sc.Ticks = 400
	res, err := RunMulti(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != sc.Ticks {
		t.Fatalf("records = %d", len(res.Records))
	}
	vlc, web := res.Reports["vlc-transcode"], res.Reports["webservice"]
	if vlc.Periods != sc.Ticks || web.Periods != sc.Ticks {
		t.Fatalf("lane periods = %d/%d", vlc.Periods, web.Periods)
	}
	if vlc.Pauses == 0 {
		t.Error("the bursty transcoder never paused the pool")
	}
	// The lanes genuinely disagree at some point: one restricts the shared
	// pool while the other does not.
	disagree := false
	for _, rec := range res.Records {
		a, b := rec.Lanes["vlc-transcode"].Throttled, rec.Lanes["webservice"].Throttled
		if a != b {
			disagree = true
			break
		}
	}
	if !disagree {
		t.Error("lanes never disagreed — scenario exercises no arbitration")
	}
	// Baseline comparison: protection reduces the transcoder's violations.
	base := sc
	base.StayAway = false
	baseRes, err := RunMulti(base)
	if err != nil {
		t.Fatal(err)
	}
	if p, b := res.LaneViolations("vlc-transcode"), baseRes.LaneViolations("vlc-transcode"); p > b {
		t.Errorf("protection increased violations: %d > %d", p, b)
	}
}

func TestMultiTenantFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1200-tick scenario")
	}
	f, err := MultiTenant(42)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "multitenant" || f.Text == "" {
		t.Fatalf("figure = %+v", f)
	}
}
