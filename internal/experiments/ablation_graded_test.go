package experiments

import "testing"

// TestAblationGraded pins the PR's headline claim: on the gradual-
// interference co-location, graded cpu.max throttling retains MORE batch
// throughput than binary freeze/thaw without suffering more QoS
// violations. Deterministic at the standard figure seed.
func TestAblationGraded(t *testing.T) {
	f, err := AblationGraded(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	s := f.Summary
	if s["violations_graded"] > s["violations_binary"] {
		t.Errorf("graded suffered more violations: %v vs %v",
			s["violations_graded"], s["violations_binary"])
	}
	if s["work_graded"] <= s["work_binary"] {
		t.Errorf("graded retained no extra batch work: %v vs %v",
			s["work_graded"], s["work_binary"])
	}
	if s["graded_limits"] == 0 {
		t.Error("graded run never issued a quota adjustment — policy not exercised")
	}
	if f.Text == "" || f.ID != "ablation-graded" {
		t.Errorf("malformed figure: id=%q", f.ID)
	}
}
