package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
)

// §5 aggregation: with multiple batch containers, aggregating them into
// one logical VM keeps the embedding dimensionality (and hence its
// 2-D stress) low; per-container schemas distort.
func TestAggregationKeepsStressLow(t *testing.T) {
	run := func(disable bool) core.Report {
		res, err := Run(Scenario{
			Name:        "aggregation-ablation",
			SensitiveID: "vlc",
			Sensitive: func(rng *rand.Rand) sim.QoSApp {
				return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
			},
			Batch: []Placement{
				{ID: "b1", StartTick: 20, App: func(rng *rand.Rand) sim.App {
					cfg := apps.DefaultTwitterConfig()
					cfg.TotalWork = 0
					return apps.NewTwitterAnalysis(cfg, rng)
				}},
				{ID: "b2", StartTick: 25, App: func(rng *rand.Rand) sim.App {
					cfg := apps.DefaultSoplexConfig()
					cfg.TotalWork = 0
					return apps.NewSoplex(cfg, rng)
				}},
			},
			Ticks:    250,
			Seed:     21,
			StayAway: true,
			Tune:     func(c *core.Config) { c.DisableBatchAggregation = disable },
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Report
	}
	aggregated := run(false)
	perVM := run(true)
	if aggregated.Refreshes == 0 || perVM.Refreshes == 0 {
		t.Fatalf("both runs need at least one SMACOF refresh: %d vs %d",
			aggregated.Refreshes, perVM.Refreshes)
	}
	if aggregated.LastStress > 0.15 {
		t.Errorf("aggregated stress = %v, want low per §5", aggregated.LastStress)
	}
	if perVM.LastStress < aggregated.LastStress {
		t.Errorf("per-VM stress %v should not beat aggregated %v (dimensionality penalty)",
			perVM.LastStress, aggregated.LastStress)
	}
}

// §2.1: "if multiple sensitive applications are co-scheduled Stay-Away can
// choose to migrate or scale resources of the lower priority sensitive
// application." With throttling as the action, a lower-priority sensitive
// application is simply configured as a throttle target: the high-priority
// application's QoS is protected at the low-priority one's expense.
func TestPriorityDemotionOfLowPrioritySensitive(t *testing.T) {
	var lowPrio *apps.VLCStream
	lowViolations := 0
	res, err := Run(Scenario{
		Name:        "priority-demotion",
		SensitiveID: "web-high",
		Sensitive: func(rng *rand.Rand) sim.QoSApp {
			return apps.NewWebservice(apps.DefaultWebserviceConfig(apps.CPUIntensive), rng)
		},
		// The low-priority sensitive app is wired as a throttleable
		// container. Its own QoS is tracked via the Hook below.
		Batch: []Placement{{ID: "vlc-low", StartTick: 20, App: func(rng *rand.Rand) sim.App {
			cfg := apps.DefaultVLCStreamConfig()
			lowPrio = apps.NewVLCStream(cfg, rng)
			return lowPrio
		}}},
		Ticks:    250,
		Seed:     23,
		StayAway: true,
		Hook: func(tick int) {
			if lowPrio != nil && tick > 20 {
				if v, th := lowPrio.QoS(); v < th {
					lowViolations++
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	highVs := Violations(res.Records)
	// The high-priority application ends up well protected...
	if highVs.Rate > 0.12 {
		t.Errorf("high-priority violation rate = %v, want protected", highVs.Rate)
	}
	// ...at the cost of the demoted application being paused at times.
	if res.Report.Pauses == 0 {
		t.Error("the low-priority sensitive app was never throttled")
	}
}

// Model validation: the analytic Webservice and the request-driven
// (kvstore-backed) Webservice must tell the same §7.2 story against the
// same batch co-runner — similar violation behaviour unprotected, and a
// clear improvement under Stay-Away for both.
func TestAnalyticVsRequestDrivenWebservice(t *testing.T) {
	twitter := func(rng *rand.Rand) sim.App {
		cfg := apps.DefaultTwitterConfig()
		cfg.TotalWork = 0
		return apps.NewTwitterAnalysis(cfg, rng)
	}
	type outcome struct{ noPrev, withSA float64 }
	runPair := func(sensitive func(rng *rand.Rand) sim.QoSApp) outcome {
		base := Scenario{
			Name:        "model-compare",
			SensitiveID: "web",
			Sensitive:   sensitive,
			Batch:       []Placement{{ID: "tw", StartTick: 20, App: twitter}},
			Ticks:       250,
			Seed:        31,
		}
		no, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		prot := base
		prot.StayAway = true
		sa, err := Run(prot)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{Violations(no.Records).Rate, Violations(sa.Records).Rate}
	}

	analytic := runPair(func(rng *rand.Rand) sim.QoSApp {
		return apps.NewWebservice(apps.DefaultWebserviceConfig(apps.MemoryIntensive), rng)
	})
	requestDriven := runPair(func(rng *rand.Rand) sim.QoSApp {
		w, err := apps.NewRequestWebservice(apps.DefaultRequestWebserviceConfig(apps.MemoryIntensive), rng)
		if err != nil {
			t.Fatal(err)
		}
		return w
	})

	for name, o := range map[string]outcome{"analytic": analytic, "request-driven": requestDriven} {
		if o.noPrev == 0 {
			t.Errorf("%s: no violations unprotected; contention story missing", name)
		}
		if o.withSA >= o.noPrev {
			t.Errorf("%s: Stay-Away rate %v did not improve on %v", name, o.withSA, o.noPrev)
		}
	}
}
