package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The scenario zoo: open-loop workload classes run at the scale the
// closed-loop figures cannot express. Each class replays an arrival
// pattern against a co-located aggressor twice — unprotected and under
// Stay-Away — and reports the violation rate and the utilization gained
// from the co-location. The open-vs-closed ablation runs the *same*
// throttle schedule against both QoS models to expose the violations the
// grant-ratio view structurally cannot see.

// OpenClosedResult is the open-loop vs closed-loop QoS ablation outcome.
type OpenClosedResult struct {
	// Ticks is the schedule length.
	Ticks int
	// ClosedViolations and OpenViolations count QoS violations each model
	// registered under the identical throttle schedule.
	ClosedViolations int
	OpenViolations   int
	// PeakBacklog is the open-loop queue's maximum depth — the state the
	// closed-loop model does not have.
	PeakBacklog float64
}

// ZooRow is one scenario class's outcome.
type ZooRow struct {
	// Class names the scenario class.
	Class string
	// Ticks is the run length; TraceDays is the replayed trace span in
	// days (0 when the arrival process is synthetic).
	Ticks     int
	TraceDays float64
	// UnprotectedRate and ProtectedRate are QoS-violation rates without
	// and with Stay-Away.
	UnprotectedRate float64
	ProtectedRate   float64
	// UnprotectedUtil and ProtectedUtil are mean machine utilizations.
	UnprotectedUtil float64
	ProtectedUtil   float64
	// UtilizationGain is the protected run's mean batch CPU share — the
	// utilization the co-location adds over running the service alone.
	UtilizationGain float64
	// BatchWork is the protected run's total effective batch CPU.
	BatchWork float64
}

// ZooReport is the scenario-zoo suite outcome the CI gate inspects.
type ZooReport struct {
	Ablation OpenClosedResult
	Rows     []ZooRow
}

// mustOpenLoop builds an open-loop service from a statically-known-valid
// config; construction only fails on programming errors.
func mustOpenLoop(cfg apps.OpenLoopConfig) *apps.OpenLoopService {
	svc, err := apps.NewOpenLoopService(cfg)
	if err != nil {
		panic(err)
	}
	return svc
}

// OpenVsClosed drives the closed-loop Webservice and an open-loop service
// carrying the same load shape through an identical throttle schedule on
// identical (separate) hosts: a mild cpu.max quota of 0.91 for 120 ticks.
//
// The closed-loop QoS is the grant/demand ratio, so the quota pins it at
// exactly 0.91 — above its 0.9 threshold, zero violations, nothing to see.
// The open-loop service cannot serve its arrival rate at 91% capacity, so
// its backlog grows for the whole throttled window and its p99 latency
// blows the SLO — violations that persist after the quota lifts, until the
// backlog drains. Same actuation, opposite verdicts; only the open-loop
// one matches what a latency SLO would say in production.
func OpenVsClosed(seed int64) (*OpenClosedResult, error) {
	const (
		ticks       = 400
		quotaStart  = 100
		quotaEnd    = 220
		quota       = 0.91
		arrivalRate = 24
	)

	closed := apps.NewWebservice(apps.WebserviceConfig{
		Kind:      apps.CPUIntensive,
		Intensity: apps.ArrivalIntensity(workload.Constant(arrivalRate), 30),
		Threshold: 0.9,
	}, nil)
	open := mustOpenLoop(apps.OpenLoopConfig{
		Kind: apps.CPUIntensive,
		Engine: workload.Config{
			Process:        workload.Constant(arrivalRate),
			CPUPerRequest:  2,
			MaxConcurrency: 26, // 8% headroom: a 0.91 quota starves it
			TargetLatency:  3,
			WindowTicks:    40,
			Threshold:      0.95,
		},
	})

	simClosed, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		return nil, err
	}
	simOpen, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		return nil, err
	}
	if _, err := simClosed.AddContainer("svc", closed); err != nil {
		return nil, err
	}
	if _, err := simOpen.AddContainer("svc", open); err != nil {
		return nil, err
	}

	res := OpenClosedResult{Ticks: ticks}
	for tick := 0; tick < ticks; tick++ {
		for _, s := range []*sim.Simulator{simClosed, simOpen} {
			switch tick {
			case quotaStart:
				if err := s.LimitCPU("svc", quota); err != nil {
					return nil, err
				}
			case quotaEnd:
				if err := s.LimitCPU("svc", 1); err != nil {
					return nil, err
				}
			}
			s.Step()
		}
		if v, thr := closed.QoS(); v < thr {
			res.ClosedViolations++
		}
		if v, thr := open.QoS(); v < thr {
			res.OpenViolations++
		}
		if d := open.Engine().Stats().Depth; d > res.PeakBacklog {
			res.PeakBacklog = d
		}
	}
	return &res, nil
}

// runZooPair runs one scenario class unprotected and under Stay-Away with
// the same seed and summarizes both runs.
func runZooPair(base Scenario, traceDays float64) (ZooRow, error) {
	row := ZooRow{Class: base.Name, Ticks: base.Ticks, TraceDays: traceDays}

	un := base
	un.Name = base.Name + "-unprotected"
	un.StayAway = false
	resUn, err := Run(un)
	if err != nil {
		return row, fmt.Errorf("%s: %w", un.Name, err)
	}

	pr := base
	pr.Name = base.Name + "-stayaway"
	pr.StayAway = true
	resPr, err := Run(pr)
	if err != nil {
		return row, fmt.Errorf("%s: %w", pr.Name, err)
	}

	row.UnprotectedRate = Violations(resUn.Records).Rate
	row.ProtectedRate = Violations(resPr.Records).Rate
	row.UnprotectedUtil = resUn.AvgUtilization
	row.ProtectedUtil = resPr.AvgUtilization
	row.UtilizationGain = Mean(GainSeries(resPr.Records))
	row.BatchWork = resPr.BatchWork
	return row, nil
}

// zooDiurnal: a Poisson-modulated day/night cycle against the memory bomb
// — the paper's gradual-transition interference, at open loop.
func zooDiurnal(seed int64) (ZooRow, error) {
	return runZooPair(Scenario{
		Name:        "diurnal",
		SensitiveID: "web",
		Sensitive: func(rng *rand.Rand) sim.QoSApp {
			// Mixed kind: active working set scales with load, so the
			// memory bomb's read bursts push the host into swap at the
			// diurnal peaks — the interference is time-of-day dependent.
			return mustOpenLoop(apps.DefaultOpenLoopConfig(apps.Mixed,
				workload.NewPoisson(workload.Diurnal{
					Base:        70,
					Amplitude:   0.6,
					PeriodTicks: 144, // one simulated day
					PeakTick:    72,
				}, rng)))
		},
		Batch: []Placement{{ID: "membomb", StartTick: 40, App: memoryBombApp}},
		Ticks: 432, // three simulated days
		Seed:  seed,
	}, 3)
}

// zooFlash: a multi-day flash-crowd trace generated by the tracegen path
// (GenerateFlash → CSV-equivalent points → TraceReplay) against the CPU
// bomb. The surge itself is within service capacity; what pushes it over
// is the aggressor — which Stay-Away throttles.
func zooFlash(seed int64) (ZooRow, error) {
	fc := trace.FlashConfig{
		Base: trace.Config{
			Days:           3,
			SamplesPerHour: 2,
			BaseRate:       2600,
			DailyAmplitude: 0.45,
			PeakHour:       14,
			Noise:          0.03,
		},
		Multiplier: 2.5,
		StartHour:  30,
		RampHours:  2,
		HoldHours:  4,
		DecayHours: 6,
	}
	pts, err := trace.GenerateFlash(fc, rand.New(rand.NewSource(seed)))
	if err != nil {
		return ZooRow{}, err
	}
	// 2600 req/s baseline → ~30 req/tick for this service's share.
	replay, err := workload.NewTraceReplay(pts, 30.0/2600, 3)
	if err != nil {
		return ZooRow{}, err
	}
	return runZooPair(Scenario{
		Name:        "flash-crowd",
		SensitiveID: "web",
		Sensitive: func(rng *rand.Rand) sim.QoSApp {
			return mustOpenLoop(apps.DefaultOpenLoopConfig(apps.CPUIntensive, replay))
		},
		Batch: []Placement{{ID: "cpubomb", StartTick: 30, App: cpuBombApp}},
		Ticks: replay.Ticks(),
		Seed:  seed,
	}, float64(fc.Base.Days))
}

// zooChain: a three-stage microservice chain whose QoS is end-to-end
// latency, with Twitter-Analysis's alternating phases as the aggressor.
// The downstream stages ride in Services placements: their usage
// aggregates into the sensitive schema slot and the front stage reports
// the one QoS signal.
func zooChain(seed int64) (ZooRow, error) {
	// One chain instance per run: the Sensitive builder constructs a fresh
	// chain and stashes the downstream stages for the Services builders,
	// which Run always invokes after the sensitive app (StartTick 0 order).
	build := func() (*apps.ChainFront, []*apps.ChainStage) {
		f, r, err := apps.NewChainService("chain", workload.ChainConfig{
			Process: workload.Constant(40),
			Stages: []workload.StageConfig{
				{CPUPerRequest: 2, MaxConcurrency: 60},
				{CPUPerRequest: 1, MaxConcurrency: 60},
				{CPUPerRequest: 1, MaxConcurrency: 60},
			},
			// Three hops minimum = 3 ticks end to end; a 5-tick SLO leaves
			// room for one queued tick per stage, no more.
			TargetLatency: 5,
			WindowTicks:   40,
			Threshold:     0.95,
		})
		if err != nil {
			panic(err) // statically-valid config
		}
		return f, r
	}

	var cur *apps.ChainFront
	var curRest []*apps.ChainStage
	return runZooPair(Scenario{
		Name:        "microservice-chain",
		SensitiveID: "chain-stage0",
		Sensitive: func(rng *rand.Rand) sim.QoSApp {
			cur, curRest = build()
			return cur
		},
		Services: []Placement{
			{ID: "chain-stage1", App: func(rng *rand.Rand) sim.App { return curRest[0] }},
			{ID: "chain-stage2", App: func(rng *rand.Rand) sim.App { return curRest[1] }},
		},
		Batch: []Placement{{ID: "twitter", StartTick: 40, App: twitterApp}},
		Ticks: 400,
		Seed:  seed,
	}, 0)
}

// zooBurstyIO: a storage-coupled open-loop service against the bursty
// compaction batch. The aggressor barely touches CPU — the interference
// channel is disk — so the grant-ratio QoS would sleep through it.
func zooBurstyIO(seed int64) (ZooRow, error) {
	return runZooPair(Scenario{
		Name:        "bursty-io-batch",
		SensitiveID: "web",
		Sensitive: func(rng *rand.Rand) sim.QoSApp {
			cfg := apps.DefaultOpenLoopConfig(apps.CPUIntensive, workload.Constant(40))
			cfg.DiskPerRequest = 4
			cfg.Engine.TargetLatency = 2
			return mustOpenLoop(cfg)
		},
		Batch: []Placement{{
			ID:        "compactor",
			StartTick: 30,
			App: func(rng *rand.Rand) sim.App {
				return apps.NewIOBurstBatch(apps.DefaultIOBurstConfig(), rng)
			},
		}},
		Ticks: 400,
		Seed:  seed,
	}, 0)
}

// ScenarioZoo runs the open-vs-closed ablation and every scenario class.
func ScenarioZoo(seed int64) (*Figure, *ZooReport, error) {
	ablation, err := OpenVsClosed(seed)
	if err != nil {
		return nil, nil, fmt.Errorf("open-vs-closed ablation: %w", err)
	}
	report := &ZooReport{Ablation: *ablation}
	for _, gen := range []func(int64) (ZooRow, error){zooDiurnal, zooFlash, zooChain, zooBurstyIO} {
		row, err := gen(seed)
		if err != nil {
			return nil, nil, err
		}
		report.Rows = append(report.Rows, row)
	}

	var b strings.Builder
	b.WriteString("Scenario zoo — open-loop workload classes (unprotected vs Stay-Away)\n\n")
	fmt.Fprintf(&b, "Open-vs-closed ablation (identical 0.91 cpu.max quota for 120 ticks):\n")
	fmt.Fprintf(&b, "  closed-loop grant-ratio QoS violations: %d\n", report.Ablation.ClosedViolations)
	fmt.Fprintf(&b, "  open-loop p99-latency QoS violations:   %d  (peak backlog %.0f requests)\n\n",
		report.Ablation.OpenViolations, report.Ablation.PeakBacklog)
	fmt.Fprintf(&b, "  %-20s %6s %6s   %-10s %-10s %-10s %s\n",
		"class", "ticks", "days", "viol(un)", "viol(SA)", "util gain", "batch work")
	for _, r := range report.Rows {
		days := "-"
		if r.TraceDays > 0 {
			days = fmt.Sprintf("%.0f", r.TraceDays)
		}
		fmt.Fprintf(&b, "  %-20s %6d %6s   %-10.3f %-10.3f %-10.3f %.0f\n",
			r.Class, r.Ticks, days, r.UnprotectedRate, r.ProtectedRate, r.UtilizationGain, r.BatchWork)
	}

	summary := map[string]float64{
		"ablation_closed_violations": float64(report.Ablation.ClosedViolations),
		"ablation_open_violations":   float64(report.Ablation.OpenViolations),
		"ablation_peak_backlog":      report.Ablation.PeakBacklog,
	}
	for _, r := range report.Rows {
		key := strings.ReplaceAll(r.Class, "-", "_")
		summary[key+"_unprotected_rate"] = r.UnprotectedRate
		summary[key+"_protected_rate"] = r.ProtectedRate
		summary[key+"_utilization_gain"] = r.UtilizationGain
		summary[key+"_batch_work"] = r.BatchWork
	}
	return &Figure{
		ID:      "scenario-zoo",
		Title:   "Open-loop scenario zoo",
		Text:    b.String(),
		Summary: summary,
	}, report, nil
}
