package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/apps"
	"repro/internal/trace"
)

// batchCombo names one batch workload column of Figs 12 and 14–16,
// including the Table 1 combinations.
type batchCombo struct {
	name       string
	placements []Placement
}

// batchCombos returns the evaluation's batch columns: the four single
// applications plus Table 1's Batch-1 (Twitter+Soplex) and Batch-2
// (Twitter+MemoryBomb), each batch application in its own container.
func batchCombos() []batchCombo {
	return []batchCombo{
		{"Soplex", []Placement{{ID: "b1", StartTick: 20, App: soplexApp}}},
		{"Twitter", []Placement{{ID: "b1", StartTick: 20, App: twitterApp}}},
		{"CPUBomb", []Placement{{ID: "b1", StartTick: 20, App: cpuBombApp}}},
		{"MemoryBomb", []Placement{{ID: "b1", StartTick: 20, App: memoryBombApp}}},
		{"Batch-1", []Placement{
			{ID: "b1", StartTick: 20, App: twitterApp},
			{ID: "b2", StartTick: 25, App: soplexApp},
		}},
		{"Batch-2", []Placement{
			{ID: "b1", StartTick: 20, App: twitterApp},
			{ID: "b2", StartTick: 25, App: memoryBombApp},
		}},
	}
}

// webKinds are the three Webservice workload types.
var webKinds = []apps.WorkloadKind{apps.CPUIntensive, apps.MemoryIntensive, apps.Mixed}

// DiurnalIntensity drives the Webservice with the Fig 1 trace shape, one
// trace hour per tick, covering at least the given number of ticks.
func DiurnalIntensity(seed int64, ticks int) (apps.Intensity, error) {
	cfg := trace.DefaultConfig()
	cfg.Days = ticks/24 + 1
	pts, err := trace.Generate(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return apps.SeriesIntensity(trace.Normalize(pts)), nil
}

// Fig12 regenerates Figure 12: gained utilization when the Webservice is
// co-located with each batch application (and the Table 1 combinations),
// per workload type, with Stay-Away active. The Webservice is driven by
// the diurnal trace, matching the paper's naturally varying workload —
// the low-intensity valleys are where Stay-Away lets the batch
// applications through.
func Fig12(seed int64) (*Figure, error) {
	const ticks = 300
	intensity, err := DiurnalIntensity(seed, ticks)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	summary := map[string]float64{}
	b.WriteString("Fig 12 — mean gained utilization (%) with Stay-Away, Webservice × batch app\n\n")
	fmt.Fprintf(&b, "%-18s", "batch \\ workload")
	for _, k := range webKinds {
		fmt.Fprintf(&b, "%18s", k)
	}
	b.WriteString("\n")

	for _, combo := range batchCombos() {
		fmt.Fprintf(&b, "%-18s", combo.name)
		for _, kind := range webKinds {
			res, err := Run(Scenario{
				Name:        fmt.Sprintf("fig12-%s-%s", combo.name, kind),
				SensitiveID: "web",
				Sensitive:   webserviceApp(kind, intensity),
				Batch:       combo.placements,
				Ticks:       ticks,
				Seed:        seed,
				StayAway:    true,
			})
			if err != nil {
				return nil, err
			}
			gain := Mean(GainSeries(res.Records))
			vs := Violations(res.Records)
			fmt.Fprintf(&b, "%13.1f%% v%2.0f%%", 100*gain, 100*vs.Rate)
			summary[fmt.Sprintf("gain_%s_%s", combo.name, kind)] = gain
			summary[fmt.Sprintf("viol_%s_%s", combo.name, kind)] = vs.Rate
		}
		b.WriteString("\n")
	}
	b.WriteString("\n(each cell: mean gained utilization, vNN% = QoS violation rate)\n")
	return &Figure{
		ID:      "fig12",
		Title:   "Gained utilization: Webservice × batch applications",
		Text:    b.String(),
		Summary: summary,
	}, nil
}

// Fig13 regenerates Figure 13: the execution timeline of the Webservice
// co-located with Twitter-Analysis under a varying workload. 13a uses the
// CPU-intensive workload; 13b uses the mixed workload with a deliberate
// phase change. The rendering shows the stress on the Webservice
// (1 − normalized QoS), the workload intensity, and the throttle band.
func Fig13(seed int64) (*Figure, error) {
	const ticks = 120
	sub := func(id string, kind apps.WorkloadKind, intensity apps.Intensity, title string) (string, map[string]float64, error) {
		res, err := Run(Scenario{
			Name:        id,
			SensitiveID: "web",
			Sensitive:   webserviceApp(kind, intensity),
			Batch:       []Placement{{ID: "twitter", StartTick: 10, App: twitterApp}},
			Ticks:       ticks,
			Seed:        seed,
			StayAway:    true,
		})
		if err != nil {
			return "", nil, err
		}
		stress := make([]float64, len(res.Records))
		intens := make([]float64, len(res.Records))
		for i, r := range res.Records {
			q := QoSSeries(res.Records)[i]
			if r.SensitiveRunning {
				stress[i] = 1 - minF(q, 1)
			}
			intens[i] = intensity(i)
		}
		throttle := ThrottleSeries(res.Records)
		var sb strings.Builder
		sb.WriteString(RenderSeries(ChartOptions{
			Title: title + " (*=stress o=intensity +=throttled)",
			YMin:  0, YMax: 1.05,
		}, stress, intens, throttle))
		// Key shape checks: Twitter runs during low intensity, throttles
		// under high intensity stress.
		lowIntensityRun := MeanWhile(res.Records, invert(throttle), func(r TickRecord) bool {
			return intensity(r.Tick) < 0.35 && r.Tick > 10
		})
		highIntensityRun := MeanWhile(res.Records, invert(throttle), func(r TickRecord) bool {
			return intensity(r.Tick) > 0.8 && r.Tick > 10
		})
		vs := Violations(res.Records)
		fmt.Fprintf(&sb, "batch running fraction: low-intensity %.2f vs high-intensity %.2f; violations %d\n",
			lowIntensityRun, highIntensityRun, vs.Violations)
		return sb.String(), map[string]float64{
			"low_intensity_run":  lowIntensityRun,
			"high_intensity_run": highIntensityRun,
			"violations":         float64(vs.Violations),
		}, nil
	}

	// 13a: CPU-intensive with valleys at ticks 20–40 and 80–100.
	intensityA := apps.StepIntensity(
		[]float64{0.9, 0.2, 0.95, 0.25, 0.9},
		[]int{20, 40, 80, 100})
	textA, sumA, err := sub("fig13a", apps.CPUIntensive, intensityA,
		"Fig 13a — Webservice (CPU) + Twitter, varying workload")
	if err != nil {
		return nil, err
	}
	// 13b: mixed workload with a phase change (low period) at ticks 60–72,
	// mirroring the paper's timestamps 30–36.
	intensityB := apps.StepIntensity(
		[]float64{0.9, 0.15, 0.9},
		[]int{60, 72})
	textB, sumB, err := sub("fig13b", apps.Mixed, intensityB,
		"Fig 13b — Webservice (mix) + Twitter, phase change at 60–72")
	if err != nil {
		return nil, err
	}

	summary := map[string]float64{}
	for k, v := range sumA {
		summary["a_"+k] = v
	}
	for k, v := range sumB {
		summary["b_"+k] = v
	}
	return &Figure{
		ID:      "fig13",
		Title:   "Execution timeline: Webservice + Twitter-Analysis",
		Text:    textA + "\n" + textB,
		Summary: summary,
	}, nil
}

// webQoSFigure regenerates Figs 14–16: the Webservice's QoS for one
// workload kind when co-located (with Stay-Away) with each batch
// application.
func webQoSFigure(id string, kind apps.WorkloadKind, seed int64) (*Figure, error) {
	const ticks = 300
	intensity, err := DiurnalIntensity(seed, ticks)
	if err != nil {
		return nil, err
	}
	threshold := 1.0
	var b strings.Builder
	summary := map[string]float64{}
	fmt.Fprintf(&b, "%s — Webservice (%s) QoS with Stay-Away, per batch application\n\n", strings.ToUpper(id[:1])+id[1:], kind)
	for _, combo := range batchCombos() {
		res, err := Run(Scenario{
			Name:        fmt.Sprintf("%s-%s", id, combo.name),
			SensitiveID: "web",
			Sensitive:   webserviceApp(kind, intensity),
			Batch:       combo.placements,
			Ticks:       ticks,
			Seed:        seed,
			StayAway:    true,
		})
		if err != nil {
			return nil, err
		}
		vs := Violations(res.Records)
		b.WriteString(RenderSeries(ChartOptions{
			Title: fmt.Sprintf("vs %s (violations %d/%d = %.1f%%)", combo.name, vs.Violations, vs.Ticks, 100*vs.Rate),
			HLine: &threshold, YMin: 0, YMax: 1.3, Height: 8,
		}, QoSSeries(res.Records)))
		summary["viol_"+combo.name] = vs.Rate
	}
	return &Figure{
		ID:      id,
		Title:   fmt.Sprintf("Webservice (%s) QoS per batch application", kind),
		Text:    b.String(),
		Summary: summary,
	}, nil
}

// Fig14 regenerates Figure 14: Webservice with the mixed workload.
func Fig14(seed int64) (*Figure, error) {
	return webQoSFigure("fig14", apps.Mixed, seed)
}

// Fig15 regenerates Figure 15: Webservice with the CPU-intensive workload.
func Fig15(seed int64) (*Figure, error) {
	return webQoSFigure("fig15", apps.CPUIntensive, seed)
}

// Fig16 regenerates Figure 16: Webservice with the memory-intensive
// workload.
func Fig16(seed int64) (*Figure, error) {
	return webQoSFigure("fig16", apps.MemoryIntensive, seed)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func invert(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 1 - x
	}
	return out
}
