package experiments

import (
	"strings"
	"testing"
)

func TestDiurnalIntensity(t *testing.T) {
	f, err := DiurnalIntensity(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi = 1.0, 0.0
	for tick := 0; tick < 100; tick++ {
		v := f(tick)
		if v < 0 || v > 1 {
			t.Fatalf("intensity(%d) = %v outside [0,1]", tick, v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 0.5 {
		t.Errorf("diurnal swing = %v, want pronounced valleys", hi-lo)
	}
}

func TestFig12Shape(t *testing.T) {
	f, err := Fig12(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	gain := func(batch, kind string) float64 {
		return f.Summary["gain_"+batch+"_"+kind]
	}
	// Twitter's best column is the memory-intensive workload (§7.2).
	if gain("Twitter", "memory-intensive") <= gain("Twitter", "cpu-intensive")*0.9 {
		t.Errorf("Twitter memory gain %v should be its best (cpu column %v)",
			gain("Twitter", "memory-intensive"), gain("Twitter", "cpu-intensive"))
	}
	// MemoryBomb is the only batch app coexisting well with the
	// CPU-intensive workload: its cpu-column gain beats its own memory
	// column and beats CPUBomb's cpu column.
	if gain("MemoryBomb", "cpu-intensive") <= gain("MemoryBomb", "memory-intensive") {
		t.Errorf("MemoryBomb cpu gain %v should beat its memory gain %v",
			gain("MemoryBomb", "cpu-intensive"), gain("MemoryBomb", "memory-intensive"))
	}
	// CPUBomb is the floor against every workload kind vs Twitter.
	for _, kind := range []string{"cpu-intensive", "memory-intensive", "mixed"} {
		if gain("CPUBomb", kind) >= gain("Twitter", kind) {
			t.Errorf("%s: CPUBomb gain %v should trail Twitter %v",
				kind, gain("CPUBomb", kind), gain("Twitter", kind))
		}
	}
	// QoS stays protected across the whole matrix.
	for key, v := range f.Summary {
		if strings.HasPrefix(key, "viol_") && v > 0.15 {
			t.Errorf("%s violation rate = %v, want ≤ 0.15", key, v)
		}
	}
}

func TestFig14To16Protected(t *testing.T) {
	for _, gen := range []func(int64) (*Figure, error){Fig14, Fig15, Fig16} {
		f, err := gen(figSeed)
		if err != nil {
			t.Fatal(err)
		}
		if f.Text == "" {
			t.Errorf("%s: empty rendering", f.ID)
		}
		for key, v := range f.Summary {
			if strings.HasPrefix(key, "viol_") && v > 0.15 {
				t.Errorf("%s %s = %v, want ≤ 0.15", f.ID, key, v)
			}
		}
	}
}

func TestSummarySpread(t *testing.T) {
	f, err := Summary(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	minG, maxG := f.Summary["min_gain"], f.Summary["max_gain"]
	if minG <= 0 || maxG >= 1 || minG >= maxG {
		t.Fatalf("gain spread = [%v, %v]", minG, maxG)
	}
	// The paper claims 10–70%; the reproduced spread must span a
	// comparable band (at least 25 percentage points wide).
	if maxG-minG < 0.25 {
		t.Errorf("spread %v–%v too narrow", minG, maxG)
	}
}

func TestAllFigures(t *testing.T) {
	figs, err := AllFigures(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 16 {
		t.Fatalf("figures = %d, want 16", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if f.ID == "" || f.Text == "" {
			t.Errorf("figure %q incomplete", f.ID)
		}
		if seen[f.ID] {
			t.Errorf("duplicate figure ID %q", f.ID)
		}
		seen[f.ID] = true
	}
}
