package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/statespace"
	"repro/internal/stream"
)

// FleetConvergence simulates the streaming fleet control plane at scale:
// an in-process sharded registry with its publish hub, and 1k–10k
// simulated hosts subscribed to it. One host learns a new violation state
// and pushes it during a burst of ordinary fleet traffic (weight-drift
// re-uploads from other hosts); the harness measures how many streaming
// subscribers of that application see the violation within the same
// control period, how the overflow → poll-recovery path behaves for
// stalled consumers, and how many bytes delta sync ships compared to
// every follower re-pulling the whole template.
//
// The simulation is discrete-time and fully deterministic for a given
// seed: "within one control period" means the event was delivered over
// the stream during the burst; a host whose bounded queue overflowed is
// dropped by the hub (exactly as a slow SSE consumer is) and recovers
// with one conditional delta poll in the next period.

// fleetStallEvery makes every Nth simulated host a stalled consumer that
// never drains its stream queue during the period — the adversarial
// cohort that exercises the bounded-queue drop and poll-recovery path.
// 1 in 250 = 0.4% of the fleet, deterministically spread so that every
// fleet size keeps the within-period fraction above the 99% floor.
const fleetStallEvery = 250

// FleetRow is one fleet size's measured outcome.
type FleetRow struct {
	// Hosts is the simulated fleet size; Followers of them subscribe to
	// the application that learns the new violation.
	Hosts, Followers int
	// WithinPeriod is followers that saw the violation over the stream in
	// the same control period; Dropped is followers whose queue
	// overflowed and who recovered by delta poll one period later.
	WithinPeriod, Dropped int
	// WithinPeriodFrac = WithinPeriod / Followers.
	WithinPeriodFrac float64
	// DeltaBytes is what delta sync actually shipped (stream event
	// payloads to matching subscribers plus recovery polls); FullBytes is
	// what whole-template polling would have shipped for the same
	// updates (every follower of a changed application re-pulling the
	// full consensus template once).
	DeltaBytes, FullBytes int64
	// Puts and DeltaPolls count registry operations; ShardPuts is the
	// per-shard put distribution of the consistent routing.
	Puts, DeltaPolls int
	ShardPuts        []int
}

// FleetReport carries every simulated fleet size.
type FleetReport struct {
	Rows []FleetRow
}

// fleetHost is one simulated subscriber: an application it follows, a hub
// subscription, and a revision cursor — the in-process analogue of a
// StreamSyncer.
type fleetHost struct {
	app     string
	sub     *stream.Subscriber
	rev     int
	stalled bool
	dropped bool
	sawViol bool
}

// drain consumes everything currently queued on the host's stream,
// exactly as a live SSE consumer keeps up between publishes.
func (h *fleetHost) drain(violApp string, deltaBytes *int64) {
	for {
		select {
		case ev, ok := <-h.sub.C:
			if !ok {
				h.dropped = true
				return
			}
			if ev.Type != stream.TypeDelta || ev.App != h.app {
				// The registry's SSE endpoint filters per connection; a
				// non-matching event costs the host nothing.
				continue
			}
			*deltaBytes += int64(len(ev.Data))
			var up fleet.StreamUpdate
			if err := json.Unmarshal(ev.Data, &up); err != nil || up.Delta == nil {
				continue
			}
			if up.Delta.ToRevision <= h.rev {
				continue
			}
			h.rev = up.Delta.ToRevision
			if h.app == violApp && deltaHasViolation(up.Delta) {
				h.sawViol = true
			}
		default:
			return
		}
	}
}

func deltaHasViolation(d *statespace.TemplateDelta) bool {
	for _, st := range d.Patch.States {
		if st.Label == statespace.Violation.String() {
			return true
		}
	}
	return false
}

// fleetTemplate builds a synthetic learned map for one application.
func fleetTemplate(rng *rand.Rand, app string, states int) *statespace.Template {
	vms := []string{"sensitive", "batch"}
	mets := []metrics.Metric{metrics.MetricCPU, metrics.MetricMemory}
	t := &statespace.Template{
		Version:       2,
		SensitiveApp:  app,
		Dim:           len(vms) * len(mets),
		SchemaVMs:     vms,
		SchemaMetrics: mets,
		Ranges: map[metrics.Metric]metrics.Range{
			metrics.MetricCPU:    {Max: 400},
			metrics.MetricMemory: {Max: 4096},
		},
	}
	for i := 0; i < states; i++ {
		vec := make([]float64, t.Dim)
		for j := range vec {
			vec[j] = rng.Float64()
		}
		label := statespace.Safe.String()
		if rng.Float64() < 0.2 {
			label = statespace.Violation.String()
		}
		t.States = append(t.States, statespace.TemplateState{
			X:      rng.Float64()*2 - 1,
			Y:      rng.Float64()*2 - 1,
			Label:  label,
			Weight: 1,
			Vector: vec,
		})
	}
	return t
}

// runFleet simulates one fleet size.
func runFleet(seed int64, hosts int) (FleetRow, error) {
	row := FleetRow{Hosts: hosts}
	rng := rand.New(rand.NewSource(seed))
	apps := []string{"vlc-stream", "kv-store", "web-api", "ml-batch"}
	violApp := apps[0]

	// Small per-subscriber queues make the burst below actually overflow
	// the stalled cohort, like a wedged SSE client would in production.
	hub := stream.NewHub(stream.HubConfig{Epoch: 1, QueueLen: 8, Replay: 64})
	defer hub.Close()
	reg, err := registry.OpenSharded(registry.Config{
		MergeEpsilon: registry.DefaultMergeEpsilon,
		OnPut:        fleet.PublishHook(hub),
	}, 4)
	if err != nil {
		return row, err
	}
	row.ShardPuts = make([]int, reg.Shards())

	put := func(host string, t *statespace.Template) error {
		if _, err := reg.Put(host, t); err != nil {
			return err
		}
		row.Puts++
		row.ShardPuts[reg.ShardFor(t.SensitiveApp)]++
		return nil
	}

	// Seed phase: one pioneer host per application establishes the
	// consensus maps the fleet bootstraps from.
	bases := make(map[string]*statespace.Template, len(apps))
	for _, app := range apps {
		bases[app] = fleetTemplate(rng, app, 40)
		if err := put("pioneer-"+app, bases[app]); err != nil {
			return row, err
		}
	}

	// Fleet bootstrap: hosts follow applications round-robin, pull the
	// current revision, and subscribe to the hub.
	fleetHosts := make([]*fleetHost, hosts)
	for i := range fleetHosts {
		app := apps[i%len(apps)]
		e, ok := reg.Get(app, "")
		if !ok {
			return row, fmt.Errorf("experiments: no entry for %s", app)
		}
		sub, _ := hub.Subscribe("")
		if sub == nil {
			return row, fmt.Errorf("experiments: hub refused subscription")
		}
		fleetHosts[i] = &fleetHost{
			app:     app,
			sub:     sub,
			rev:     e.Revision,
			stalled: i > 0 && i%fleetStallEvery == 0,
		}
		if app == violApp {
			row.Followers++
		}
	}

	// One control period of fleet traffic: host 17 pushes the map with a
	// freshly learned violation state, amid three rounds of weight-drift
	// re-uploads from other hosts (the steady-state background load that
	// fills slow consumers' queues). Live hosts drain between publishes —
	// a real consumer runs concurrently with the publisher.
	violTpl := statespace.CloneTemplate(bases[violApp])
	vec := make([]float64, violTpl.Dim)
	for j := range vec {
		vec[j] = 2 + rng.Float64() // a load region no map has visited
	}
	violTpl.States = append(violTpl.States, statespace.TemplateState{
		X: 2, Y: 2, Label: statespace.Violation.String(), Weight: 1, Vector: vec,
	})
	drainLive := func() {
		for _, h := range fleetHosts {
			if !h.stalled && !h.dropped {
				h.drain(violApp, &row.DeltaBytes)
			}
		}
	}
	for round := 0; round < 3; round++ {
		for _, app := range apps {
			uploader := fmt.Sprintf("host-%04d", rng.Intn(hosts))
			t := bases[app]
			if round == 1 && app == violApp {
				uploader, t = "host-0017", violTpl
			}
			if err := put(uploader, t); err != nil {
				return row, err
			}
			drainLive()
		}
	}
	drainLive()

	// Period boundary: every follower that streamed the violation saw it
	// within the period. Stalled hosts did not — their queues overflowed
	// and the hub dropped them, exactly like a wedged SSE consumer.
	for _, h := range fleetHosts {
		if h.app == violApp && h.sawViol {
			row.WithinPeriod++
		}
	}
	// Next period: each stalled host's syncer notices the closed stream,
	// processes whatever backlog its queue held, and fills the remaining
	// gap with one conditional delta poll — converged one period late.
	for _, h := range fleetHosts {
		if !h.stalled {
			continue
		}
		h.drain(violApp, &row.DeltaBytes) // backlog, then the close
		d, ok := reg.DeltaSince(h.app, "", h.rev)
		row.DeltaPolls++
		if ok && !d.Empty() {
			raw, err := json.Marshal(d)
			if err != nil {
				return row, err
			}
			row.DeltaBytes += int64(len(raw))
			h.rev = d.ToRevision
		}
		if h.app == violApp {
			row.Dropped++
		}
	}
	if row.Followers > 0 {
		row.WithinPeriodFrac = float64(row.WithinPeriod) / float64(row.Followers)
	}

	// Baseline: whole-template polling ships every follower of a changed
	// application the full consensus template once per sync interval.
	for _, app := range apps {
		e, ok := reg.Get(app, "")
		if !ok {
			continue
		}
		raw, err := json.Marshal(e.Template)
		if err != nil {
			return row, err
		}
		followers := hosts / len(apps)
		if hosts%len(apps) > indexOf(apps, app) {
			followers++
		}
		row.FullBytes += int64(len(raw)) * int64(followers)
	}
	return row, nil
}

func indexOf(apps []string, app string) int {
	for i, a := range apps {
		if a == app {
			return i
		}
	}
	return -1
}

// FleetConvergence runs the fleet simulation at 1k, 2.5k and 10k hosts
// and renders the convergence/byte table. The returned report carries the
// raw rows for tests and benches; Summary holds the 1k-host headline
// numbers the CI gate asserts on.
func FleetConvergence(seed int64) (*Figure, *FleetReport, error) {
	sizes := []int{1000, 2500, 10000}
	report := &FleetReport{}
	for i, n := range sizes {
		row, err := runFleet(seed+int64(i), n)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet %d hosts: %w", n, err)
		}
		report.Rows = append(report.Rows, row)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%8s %9s %13s %8s %12s %12s %7s %6s\n",
		"hosts", "followers", "within-period", "dropped", "delta-bytes", "full-bytes", "ratio", "puts")
	for _, r := range report.Rows {
		ratio := 0.0
		if r.FullBytes > 0 {
			ratio = float64(r.DeltaBytes) / float64(r.FullBytes)
		}
		fmt.Fprintf(&b, "%8d %9d %12.1f%% %8d %12d %12d %6.1f%% %6d\n",
			r.Hosts, r.Followers, 100*r.WithinPeriodFrac, r.Dropped,
			r.DeltaBytes, r.FullBytes, 100*ratio, r.Puts)
	}
	r0 := report.Rows[0]
	fmt.Fprintf(&b, "\nAt %d hosts, %.1f%% of the violated application's streaming subscribers\n",
		r0.Hosts, 100*r0.WithinPeriodFrac)
	fmt.Fprintf(&b, "saw the new violation within one control period; the %d stalled\n", r0.Dropped)
	fmt.Fprintf(&b, "subscriber(s) were dropped by the bounded queues and recovered with one\n")
	fmt.Fprintf(&b, "conditional delta poll the next period. Delta sync shipped %d bytes\n", r0.DeltaBytes)
	fmt.Fprintf(&b, "against %d for whole-template polling (%.1f%%). Shard put distribution: %v.\n",
		r0.FullBytes, 100*float64(r0.DeltaBytes)/float64(r0.FullBytes), r0.ShardPuts)

	f := &Figure{
		ID:    "fleet",
		Title: "Fleet convergence: streaming control plane at 1k-10k hosts",
		Text:  b.String(),
		Summary: map[string]float64{
			"hosts":              float64(r0.Hosts),
			"followers":          float64(r0.Followers),
			"within_period_frac": r0.WithinPeriodFrac,
			"dropped":            float64(r0.Dropped),
			"delta_bytes":        float64(r0.DeltaBytes),
			"full_bytes":         float64(r0.FullBytes),
			"puts":               float64(r0.Puts),
			"delta_polls":        float64(r0.DeltaPolls),
		},
	}
	return f, report, nil
}
