// Package experiments wires the Stay-Away runtime to the simulator
// substrate and regenerates every table and figure of the paper's
// evaluation (§7). Each FigNN function builds the corresponding scenario,
// runs it, and returns both structured series data and an ASCII rendering.
package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/throttle"
)

// SimEnvironment adapts a simulator to core.Environment: it is the
// monitoring side of the middleware, reading per-container usage and the
// sensitive application's QoS report.
type SimEnvironment struct {
	sim         *sim.Simulator
	sensitiveID string
	batchIDs    []string
	qosApp      sim.QoSApp
}

var _ core.Environment = (*SimEnvironment)(nil)

// NewSimEnvironment returns an environment observing the given simulator.
// qosApp is the sensitive application instance (its QoS report is the
// violation signal).
func NewSimEnvironment(s *sim.Simulator, sensitiveID string, batchIDs []string, qosApp sim.QoSApp) *SimEnvironment {
	return &SimEnvironment{
		sim:         s,
		sensitiveID: sensitiveID,
		batchIDs:    append([]string(nil), batchIDs...),
		qosApp:      qosApp,
	}
}

// Collect implements core.Environment.
func (e *SimEnvironment) Collect() []metrics.Sample { return e.sim.Samples() }

// QoSViolation implements core.Environment: the sensitive application
// reports a violation when its value drops below threshold while it runs.
func (e *SimEnvironment) QoSViolation() bool {
	if !e.SensitiveRunning() {
		return false
	}
	value, threshold := e.qosApp.QoS()
	return value < threshold
}

// SensitiveRunning implements core.Environment.
func (e *SimEnvironment) SensitiveRunning() bool {
	c, err := e.sim.Container(e.sensitiveID)
	if err != nil {
		return false
	}
	return c.Running()
}

// BatchRunning implements core.Environment.
func (e *SimEnvironment) BatchRunning() bool {
	for _, id := range e.batchIDs {
		c, err := e.sim.Container(id)
		if err != nil {
			continue
		}
		if c.Running() {
			return true
		}
	}
	return false
}

// BatchActive implements core.Environment.
func (e *SimEnvironment) BatchActive() bool {
	for _, id := range e.batchIDs {
		c, err := e.sim.Container(id)
		if err != nil {
			continue
		}
		if c.Active() {
			return true
		}
	}
	return false
}

// NewSimActuator returns a throttle actuator that freezes and thaws the
// simulator's containers — the simulated equivalent of SIGSTOP/SIGCONT.
// Unknown IDs (containers not yet scheduled) are skipped.
func NewSimActuator(s *sim.Simulator) throttle.Actuator {
	do := func(ids []string, f func(string) error) error {
		for _, id := range ids {
			if _, err := s.Container(id); err != nil {
				continue
			}
			if err := f(id); err != nil {
				return err
			}
		}
		return nil
	}
	return throttle.FuncActuator{
		PauseFn:  func(ids []string) error { return do(ids, s.Freeze) },
		ResumeFn: func(ids []string) error { return do(ids, s.Thaw) },
	}
}
