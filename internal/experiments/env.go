// Package experiments wires the Stay-Away runtime to the simulator
// substrate and regenerates every table and figure of the paper's
// evaluation (§7). Each FigNN function builds the corresponding scenario,
// runs it, and returns both structured series data and an ASCII rendering.
package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/throttle"
)

// SimEnvironment adapts a simulator to core.Environment: it is the
// monitoring side of the middleware, reading per-container usage and the
// sensitive application's QoS report.
type SimEnvironment struct {
	sim         *sim.Simulator
	sensitiveID string
	batchIDs    []string
	serviceIDs  []string
	qosApp      sim.QoSApp
}

var _ core.Environment = (*SimEnvironment)(nil)

// NewSimEnvironment returns an environment observing the given simulator.
// qosApp is the sensitive application instance (its QoS report is the
// violation signal).
func NewSimEnvironment(s *sim.Simulator, sensitiveID string, batchIDs []string, qosApp sim.QoSApp) *SimEnvironment {
	return &SimEnvironment{
		sim:         s,
		sensitiveID: sensitiveID,
		batchIDs:    append([]string(nil), batchIDs...),
		qosApp:      qosApp,
	}
}

// AddServiceIDs registers extra service-tier containers (e.g. the
// downstream stages of a microservice chain) whose usage belongs to the
// sensitive application: their samples are merged into the sensitive
// schema slot, so the measurement vector's dimensionality — and with it
// the learned state space — is independent of the chain's length.
func (e *SimEnvironment) AddServiceIDs(ids ...string) {
	e.serviceIDs = append(e.serviceIDs, ids...)
}

// Collect implements core.Environment.
func (e *SimEnvironment) Collect() []metrics.Sample {
	samples := e.sim.Samples()
	if len(e.serviceIDs) == 0 {
		return samples
	}
	sensitive := make(map[string]bool, len(e.serviceIDs)+1)
	sensitive[e.sensitiveID] = true
	for _, id := range e.serviceIDs {
		sensitive[id] = true
	}
	return metrics.AggregateByRole(e.sensitiveID, samples,
		func(vm string) bool { return sensitive[vm] })
}

// QoSViolation implements core.Environment: the sensitive application
// reports a violation when its value drops below threshold while it runs.
func (e *SimEnvironment) QoSViolation() bool {
	if !e.SensitiveRunning() {
		return false
	}
	value, threshold := e.qosApp.QoS()
	return value < threshold
}

// SensitiveRunning implements core.Environment.
func (e *SimEnvironment) SensitiveRunning() bool {
	c, err := e.sim.Container(e.sensitiveID)
	if err != nil {
		return false
	}
	return c.Running()
}

// BatchRunning implements core.Environment.
func (e *SimEnvironment) BatchRunning() bool {
	for _, id := range e.batchIDs {
		c, err := e.sim.Container(id)
		if err != nil {
			continue
		}
		if c.Running() {
			return true
		}
	}
	return false
}

// BatchActive implements core.Environment.
func (e *SimEnvironment) BatchActive() bool {
	for _, id := range e.batchIDs {
		c, err := e.sim.Container(id)
		if err != nil {
			continue
		}
		if c.Active() {
			return true
		}
	}
	return false
}

// simActuator freezes, thaws and CPU-limits the simulator's containers —
// the simulated equivalent of cgroup.freeze + cpu.max (and, degraded,
// SIGSTOP/SIGCONT). Unknown IDs (containers not yet scheduled) are
// skipped. It satisfies throttle.GradedActuator, so it serves both the
// binary and the graded policy.
type simActuator struct {
	sim *sim.Simulator
}

var _ throttle.GradedActuator = simActuator{}

// NewSimActuator returns the simulator-backed graded actuator.
func NewSimActuator(s *sim.Simulator) throttle.GradedActuator {
	return simActuator{sim: s}
}

func (a simActuator) do(ids []string, f func(string) error) error {
	for _, id := range ids {
		if _, err := a.sim.Container(id); err != nil {
			continue
		}
		if err := f(id); err != nil {
			return err
		}
	}
	return nil
}

// Pause implements throttle.Actuator.
func (a simActuator) Pause(ids []string) error { return a.do(ids, a.sim.Freeze) }

// Resume implements throttle.Actuator. Thawing also clears any CPU quota,
// matching cgroup.Actuator's resume semantics.
func (a simActuator) Resume(ids []string) error {
	return a.do(ids, func(id string) error {
		if err := a.sim.Thaw(id); err != nil {
			return err
		}
		return a.sim.LimitCPU(id, 1)
	})
}

// SetLevel implements throttle.GradedActuator.
func (a simActuator) SetLevel(ids []string, level float64) error {
	if level < 0.01 {
		level = 0.01 // the simulated analogue of the kernel's 1ms quota floor
	}
	return a.do(ids, func(id string) error { return a.sim.LimitCPU(id, level) })
}
