package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteRunCSV emits a run's per-tick records as CSV for external plotting
// (gnuplot, pandas, spreadsheets) — the raw data behind every figure.
func WriteRunCSV(w io.Writer, records []TickRecord) error {
	cw := csv.NewWriter(w)
	header := []string{
		"tick", "qos", "threshold", "violation", "sensitive_running",
		"utilization", "batch_cpu_share", "batch_running", "throttled",
		"predicted", "mode", "x", "y", "action",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: write csv header: %w", err)
	}
	b := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range records {
		rec := []string{
			strconv.Itoa(r.Tick),
			f(r.QoS), f(r.Threshold), b(r.Violation), b(r.SensitiveRunning),
			f(r.Utilization), f(r.BatchCPUShare), b(r.BatchRunning), b(r.Throttled),
			b(r.Predicted), r.Mode.String(), f(r.Coord.X), f(r.Coord.Y), r.Action.String(),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: write csv row %d: %w", r.Tick, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
