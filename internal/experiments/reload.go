package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cgroup"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/internal/throttle"
)

// reloadEnv is a mutable scripted host: the suite flips per-application
// violation flags and the lane set between periods.
type reloadEnv struct {
	cpu  map[string]float64 // per container (sensitive groups + batch)
	viol map[string]bool    // per application name
	run  map[string]bool
}

func (e *reloadEnv) Collect() []metrics.Sample {
	var out []metrics.Sample
	for id, cpu := range e.cpu {
		out = append(out, metrics.NewSample(id, map[metrics.Metric]float64{
			metrics.MetricCPU:    cpu,
			metrics.MetricMemory: 500,
		}))
	}
	metrics.SortSamples(out)
	return out
}

func (e *reloadEnv) BatchRunning() bool { return true }
func (e *reloadEnv) BatchActive() bool  { return true }

type reloadSig struct {
	env *reloadEnv
	app string
}

func (s reloadSig) QoSViolation() bool     { return s.env.viol[s.app] }
func (s reloadSig) SensitiveRunning() bool { return s.env.run[s.app] }

var (
	_ core.HostEnvironment = (*reloadEnv)(nil)
	_ core.LaneSignals     = reloadSig{}
)

// countingActuator sits between the ledger and the faulty cgroupfs and
// counts the transitions the arbiter actually actuates — the ground truth
// for the no-gap and release-exactly-once invariants, independent of
// whether an individual control-file write degraded under injection.
type countingActuator struct {
	inner   throttle.GradedActuator
	pauses  int
	resumes int
}

func (c *countingActuator) Pause(ids []string) error {
	c.pauses++
	return c.inner.Pause(ids)
}

func (c *countingActuator) Resume(ids []string) error {
	c.resumes++
	return c.inner.Resume(ids)
}

// SetLevel forwards graded quotas uncounted: recovery's quota clear is
// part of a release, not a separate actuation.
func (c *countingActuator) SetLevel(ids []string, level float64) error {
	return c.inner.SetLevel(ids, level)
}

var _ throttle.GradedActuator = (*countingActuator)(nil)

// ReloadChaos is the reload-under-fault suite: a multi-lane host runtime
// over a ledgered actuator and a cgroupfs failing 10% of writes runs
// through randomized lane adds, removes and reconfigurations while lanes
// freeze and thaw the shared pool — interleaved with hard crashes
// (abandon the runtime mid-restriction, replay the ledger). Invariants,
// each doubling as a CI gate:
//
//   - recovery may over-thaw but never over-freezes: ledger replay issues
//     no Pause, and every batch cgroup reads thawed afterwards;
//   - a removal with restricting survivors causes no restriction gap:
//     zero Resume calls, pool still frozen;
//   - removing the last restricting lane releases the departing batch
//     restrictions exactly once, and leaves the ledger clean (the final
//     replay finds nothing to thaw).
func ReloadChaos(seed int64) (*Figure, error) {
	stateDir, err := os.MkdirTemp("", "stayaway-reload-chaos")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(stateDir)

	batch := []string{"batch/b0", "batch/b1"}
	fake := cgroup.NewFakeFS()
	for i, id := range batch {
		fake.AddCgroup(id, 2000+i)
	}
	cfs := chaos.NewFS(fake, chaos.FSConfig{WriteErrProb: 0.10, Seed: seed})
	raw, err := cgroup.NewActuator(cfs, cgroup.ActuatorConfig{
		MaxCPU:       4,
		WriteRetries: 4,
		Sleep:        func(time.Duration) {},
		Kill:         func(int, syscall.Signal) error { return nil },
	})
	if err != nil {
		return nil, err
	}
	counted := &countingActuator{inner: raw}
	ledger, err := resilience.OpenLedger(filepath.Join(stateDir, "ledger.json"))
	if err != nil {
		return nil, err
	}
	la, err := resilience.NewLedgeredActuator(counted, ledger)
	if err != nil {
		return nil, err
	}

	env := &reloadEnv{
		cpu:  map[string]float64{},
		viol: map[string]bool{},
		run:  map[string]bool{},
	}
	for _, id := range batch {
		env.cpu[id] = 100
	}
	ranges := metrics.DefaultRanges(4, 4096, 200, 1000)
	rng := rand.New(rand.NewSource(seed))

	frozen := func(id string) bool {
		c, ok := fake.Contents(id + "/cgroup.freeze")
		return ok && strings.TrimSpace(c) == "1"
	}
	frozenBatch := func() int {
		n := 0
		for _, id := range batch {
			if frozen(id) {
				n++
			}
		}
		return n
	}

	var host *core.HostRuntime
	active := map[string]bool{}
	laneCfg := func(app string) core.Config {
		cfg := core.DefaultConfig("s/"+app, batch, ranges)
		cfg.SensitiveApp = app
		cfg.Seed = rng.Int63()
		return cfg
	}
	addLane := func(app string) error {
		env.cpu["s/"+app] = 150
		env.run[app] = true
		if _, err := host.AddLane(laneCfg(app), reloadSig{env, app}); err != nil {
			return err
		}
		active[app] = true
		return nil
	}
	removeLane := func(app string) error {
		_, err := host.RemoveLane(app)
		delete(active, app)
		delete(env.cpu, "s/"+app)
		delete(env.viol, app)
		delete(env.run, app)
		return err
	}
	rebuild := func(apps []string) error {
		h, err := core.NewHost(env, la)
		if err != nil {
			return err
		}
		host = h
		active = map[string]bool{}
		for _, app := range apps {
			if err := addLane(app); err != nil {
				return err
			}
		}
		return nil
	}
	activeApps := func() []string {
		var out []string
		for app := range active {
			out = append(out, app)
		}
		// Deterministic order for the seeded rng's picks.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j] < out[j-1]; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}

	pool := []string{"vlc", "kv", "web", "db"}
	if err := rebuild(pool[:2]); err != nil {
		return nil, err
	}

	var adds, removes, reconfigs, crashes, recoveredThaws int
	var overFreezes, frozenAfterRecover, gapResumes, periodErrs int

	const rounds = 500
	for round := 0; round < rounds; round++ {
		for _, app := range activeApps() {
			if rng.Float64() < 0.15 {
				env.viol[app] = !env.viol[app]
			}
		}
		if _, err := host.Period(); err != nil {
			periodErrs++
		}

		switch {
		case round%40 == 39:
			// Hard crash mid-restriction: the incarnation is abandoned
			// without Release, exactly what SIGKILL leaves behind. Ledger
			// replay must thaw everything and must not freeze anything.
			crashes++
			pausesBefore := counted.pauses
			thawed, rerr := resilience.Recover(ledger, la, batch)
			if rerr != nil {
				periodErrs++
			}
			recoveredThaws += len(thawed)
			if counted.pauses != pausesBefore {
				overFreezes++
			}
			frozenAfterRecover += frozenBatch()
			apps := activeApps()
			for _, app := range apps {
				env.viol[app] = false
			}
			if err := rebuild(apps); err != nil {
				return nil, fmt.Errorf("rebuild after crash %d: %w", crashes, err)
			}
		case round%7 == 3:
			apps := activeApps()
			switch op := rng.Intn(3); {
			case op == 0 && len(apps) < len(pool):
				for _, app := range pool {
					if !active[app] {
						if err := addLane(app); err != nil {
							return nil, fmt.Errorf("round %d add %s: %w", round, app, err)
						}
						adds++
						break
					}
				}
			case op == 1 && len(apps) > 1:
				app := apps[rng.Intn(len(apps))]
				resumesBefore := counted.resumes
				restrictedBefore := frozenBatch()
				if err := removeLane(app); err != nil {
					return nil, fmt.Errorf("round %d remove %s: %w", round, app, err)
				}
				removes++
				// Survivors still restricting? Then removal must not have
				// thawed the pool out from under them.
				if restrictedBefore > 0 && frozenBatch() < restrictedBefore &&
					len(host.Arbiter().Restricting(batch[0])) > 0 {
					gapResumes++
				}
				_ = resumesBefore
			case op == 2 && len(apps) > 0:
				app := apps[rng.Intn(len(apps))]
				cfg := laneCfg(app)
				cfg.Throttle.MaxBeta = 0.3 + 0.4*rng.Float64()
				if _, _, err := host.ReconfigureLane(cfg, reloadSig{env, app}); err != nil {
					return nil, fmt.Errorf("round %d reconfigure %s: %w", round, app, err)
				}
				reconfigs++
			}
		}
	}

	// Deterministic tail: with every lane violating and the pool frozen,
	// drain the lanes one by one. No restriction gap while survivors
	// remain; exactly one release when the last one leaves; clean ledger.
	for len(active) < 2 {
		for _, app := range pool {
			if !active[app] {
				if err := addLane(app); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	for _, app := range activeApps() {
		env.viol[app] = true
	}
	for i := 0; i < 3; i++ {
		if _, err := host.Period(); err != nil {
			return nil, fmt.Errorf("tail period: %w", err)
		}
	}
	var tailProblems []string
	if frozenBatch() != len(batch) {
		tailProblems = append(tailProblems,
			fmt.Sprintf("tail setup: %d/%d batch cgroups frozen under universal violation", frozenBatch(), len(batch)))
	}
	resumesBefore := counted.resumes
	apps := activeApps()
	for i, app := range apps {
		if _, err := host.RemoveLane(app); err != nil {
			return nil, fmt.Errorf("tail remove %s: %w", app, err)
		}
		last := i == len(apps)-1
		if !last {
			if counted.resumes != resumesBefore {
				tailProblems = append(tailProblems,
					fmt.Sprintf("restriction gap: removing %s with restricting survivors caused a thaw", app))
			}
			if frozenBatch() != len(batch) {
				tailProblems = append(tailProblems,
					fmt.Sprintf("restriction gap: pool partially thawed after removing %s", app))
			}
		}
	}
	if got := counted.resumes - resumesBefore; got != 1 {
		tailProblems = append(tailProblems,
			fmt.Sprintf("departing restrictions released %d times, want exactly once", got))
	}
	if frozenBatch() != 0 {
		tailProblems = append(tailProblems,
			fmt.Sprintf("%d batch cgroups frozen after full drain", frozenBatch()))
	}
	// No extraIDs here: only genuinely outstanding ledger entries may
	// surface, and after a fully-drained exit there must be none.
	finalThawed, err := resilience.Recover(ledger, la, nil)
	if err != nil {
		return nil, fmt.Errorf("final ledger replay: %w", err)
	}

	_, writes, _, writeErrs, _ := cfs.Stats()

	var problems []string
	problems = append(problems, tailProblems...)
	if writeErrs == 0 {
		problems = append(problems, "no write faults injected (probabilistic injection broken)")
	}
	if crashes == 0 || adds == 0 || removes == 0 || reconfigs == 0 {
		problems = append(problems, fmt.Sprintf(
			"suite did not exercise the lifecycle (crashes %d, adds %d, removes %d, reconfigs %d)",
			crashes, adds, removes, reconfigs))
	}
	if overFreezes != 0 {
		problems = append(problems, fmt.Sprintf("%d recoveries issued a Pause (over-freeze is forbidden)", overFreezes))
	}
	if frozenAfterRecover != 0 {
		problems = append(problems, fmt.Sprintf("%d batch cgroups left frozen after ledger replay", frozenAfterRecover))
	}
	if gapResumes != 0 {
		problems = append(problems, fmt.Sprintf("%d removals thawed the pool out from under restricting survivors", gapResumes))
	}
	if len(finalThawed) != 0 {
		problems = append(problems, fmt.Sprintf(
			"final ledger replay thawed %v: a release went unrecorded", finalThawed))
	}
	if periodErrs != 0 {
		problems = append(problems, fmt.Sprintf("%d period/recovery errors surfaced", periodErrs))
	}
	if len(problems) > 0 {
		return nil, fmt.Errorf("reload chaos suite failed: %s", strings.Join(problems, "; "))
	}

	var b strings.Builder
	b.WriteString("Reload chaos — lane lifecycle under injected faults and crashes\n\n")
	fmt.Fprintf(&b, "  %d rounds: %d adds, %d removes, %d reconfigurations, %d hard crashes\n",
		rounds, adds, removes, reconfigs, crashes)
	fmt.Fprintf(&b, "  cgroupfs: %d writes, %d injected faults (%.1f%%)\n",
		writes, writeErrs, 100*float64(writeErrs)/float64(max(writes, 1)))
	fmt.Fprintf(&b, "  actuations: %d pauses, %d resumes; ledger replays thawed %d restrictions\n",
		counted.pauses, counted.resumes, recoveredThaws)
	fmt.Fprintf(&b, "  over-freezes during recovery: %d; restriction gaps: %d; final replay thawed: %d\n",
		overFreezes, gapResumes, len(finalThawed))
	b.WriteString("\nall invariants held: over-thaw only, no restriction gap, release exactly once, clean ledger\n")
	return &Figure{
		ID:    "reload-chaos",
		Title: "Reload-under-fault suite",
		Text:  b.String(),
		Summary: map[string]float64{
			"adds":                float64(adds),
			"removes":             float64(removes),
			"reconfigs":           float64(reconfigs),
			"crashes":             float64(crashes),
			"injected_faults":     float64(writeErrs),
			"pauses":              float64(counted.pauses),
			"resumes":             float64(counted.resumes),
			"recovered_thaws":     float64(recoveredThaws),
			"over_freezes":        float64(overFreezes),
			"restriction_gaps":    float64(gapResumes),
			"final_replay_thawed": float64(len(finalThawed)),
		},
	}, nil
}
