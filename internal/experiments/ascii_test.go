package experiments

import (
	"strings"
	"testing"
)

func TestRenderSeriesBasics(t *testing.T) {
	out := RenderSeries(ChartOptions{Title: "demo", Width: 20, Height: 5},
		[]float64{0, 1, 2, 3, 4})
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 5 rows + axis + label
	if len(lines) != 8 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no data glyphs")
	}
}

func TestRenderSeriesEmpty(t *testing.T) {
	out := RenderSeries(ChartOptions{Title: "empty"})
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderSeriesHLine(t *testing.T) {
	h := 0.5
	out := RenderSeries(ChartOptions{Width: 10, Height: 5, HLine: &h, YMin: 0, YMax: 1},
		[]float64{0.9})
	if !strings.Contains(out, "----------") {
		t.Error("threshold line missing")
	}
}

func TestRenderSeriesMultipleGlyphs(t *testing.T) {
	out := RenderSeries(ChartOptions{Width: 12, Height: 6, YMin: 0, YMax: 1},
		[]float64{0.2, 0.2}, []float64{0.8, 0.8})
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("glyphs missing:\n%s", out)
	}
}

func TestRenderSeriesConstantValue(t *testing.T) {
	// A constant series must not divide by zero.
	out := RenderSeries(ChartOptions{Width: 10, Height: 4}, []float64{5, 5, 5})
	if !strings.Contains(out, "*") {
		t.Errorf("constant render:\n%s", out)
	}
}

func TestRenderScatter(t *testing.T) {
	out := RenderScatter("scatter", 20, 8, []ScatterPoint{
		{X: 0, Y: 0, Glyph: 'a'},
		{X: 1, Y: 1, Glyph: 'z'},
	})
	if !strings.Contains(out, "a") || !strings.Contains(out, "z") {
		t.Errorf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "scatter") {
		t.Error("title missing")
	}
}

func TestRenderScatterEmpty(t *testing.T) {
	out := RenderScatter("none", 10, 5, nil)
	if !strings.Contains(out, "(no points)") {
		t.Errorf("empty scatter = %q", out)
	}
}

func TestRenderScatterDegenerate(t *testing.T) {
	// Coincident points must not divide by zero.
	out := RenderScatter("dot", 10, 5, []ScatterPoint{
		{X: 2, Y: 2, Glyph: 'x'},
		{X: 2, Y: 2, Glyph: 'x'},
	})
	if !strings.Contains(out, "x") {
		t.Errorf("degenerate scatter:\n%s", out)
	}
}
