package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/throttle"
	"repro/internal/trajectory"
)

// SensitiveSpec places one protected application in a multi-tenant run.
type SensitiveSpec struct {
	// ID is the container ID on the simulated host.
	ID string
	// App is the fleet-wide application name the lane is keyed by;
	// defaults to ID.
	App string
	// Start delays the container's creation (0 = from the first tick). A
	// Start at or beyond Ticks keeps the lane idle for the whole run.
	Start int
	// Build constructs the application; called once at Start with a
	// scenario-derived deterministic RNG.
	Build func(rng *rand.Rand) sim.QoSApp
}

// MultiScenario describes a run where several protected applications
// share one host and one batch pool — the multi-tenant counterpart of
// Scenario. Each sensitive gets its own lane in a core.HostRuntime; the
// lanes' decisions meet in the actuation arbiter.
type MultiScenario struct {
	Name string
	// Host is the simulated machine; zero value uses the default host.
	Host sim.HostConfig
	// Sensitives are the protected applications (at least one).
	Sensitives []SensitiveSpec
	// Batch schedules the shared batch containers.
	Batch []Placement
	// Ticks is the run length.
	Ticks int
	// Seed drives all randomness (simulated apps and the lanes).
	Seed int64
	// StayAway enables the host runtime. When false the co-location runs
	// unprotected.
	StayAway bool
	// Tune mutates one lane's config before construction (nil = defaults);
	// called once per sensitive with its application name.
	Tune func(app string, cfg *core.Config)
	// Hook, when non-nil, runs after each simulator step with the tick
	// index.
	Hook func(tick int)
}

// LaneTick is one lane's observable outcome in one tick.
type LaneTick struct {
	QoS              float64
	Threshold        float64
	Violation        bool
	SensitiveRunning bool
	Mode             trajectory.Mode
	Coord            mds.Coord
	Action           throttle.Action
	Predicted        bool
	// Throttled reports whether THIS lane restricts the shared pool at the
	// end of the tick (the pool itself may be restricted by another lane).
	Throttled bool
}

// MultiTickRecord is one tick of a multi-tenant run: the shared host
// signals plus one LaneTick per application.
type MultiTickRecord struct {
	Tick          int
	Utilization   float64
	BatchCPUShare float64
	BatchRunning  bool
	// Lanes is keyed by application name.
	Lanes map[string]LaneTick
}

// MultiRunResult is a completed multi-tenant scenario.
type MultiRunResult struct {
	Scenario MultiScenario
	Records  []MultiTickRecord
	// Reports and Events are per application name (nil without Stay-Away).
	Reports map[string]core.Report
	Events  map[string][]core.Event
	// Host is the live host runtime (nil without Stay-Away).
	Host *core.HostRuntime
	// BatchWork is the total effective CPU the batch containers performed.
	BatchWork float64
	// AvgUtilization is the mean machine utilization over the run.
	AvgUtilization float64
}

// simHostEnv adapts the simulator to core.HostEnvironment: the host
// samples every container once per tick and the HostRuntime fans the
// slice out to its lanes.
type simHostEnv struct {
	sim      *sim.Simulator
	batchIDs []string
}

var _ core.HostEnvironment = (*simHostEnv)(nil)

func (e *simHostEnv) Collect() []metrics.Sample { return e.sim.Samples() }

func (e *simHostEnv) BatchRunning() bool {
	for _, id := range e.batchIDs {
		if c, err := e.sim.Container(id); err == nil && c.Running() {
			return true
		}
	}
	return false
}

func (e *simHostEnv) BatchActive() bool {
	for _, id := range e.batchIDs {
		if c, err := e.sim.Container(id); err == nil && c.Active() {
			return true
		}
	}
	return false
}

// simLaneSignals is one protected application's view of the simulator.
// The QoS app is bound late, when the scenario schedules the container —
// until then the lane sees "not running, no violation".
type simLaneSignals struct {
	sim    *sim.Simulator
	id     string
	qosApp sim.QoSApp
}

var _ core.LaneSignals = (*simLaneSignals)(nil)

func (s *simLaneSignals) QoSViolation() bool {
	if s.qosApp == nil || !s.SensitiveRunning() {
		return false
	}
	value, threshold := s.qosApp.QoS()
	return value < threshold
}

func (s *simLaneSignals) SensitiveRunning() bool {
	c, err := s.sim.Container(s.id)
	return err == nil && c.Running()
}

// RunMulti executes a multi-tenant scenario. It mirrors Run tick for
// tick: schedule due containers, step the simulator, record observables,
// then drive one host period that fans the shared sample pass out to
// every lane.
func RunMulti(sc MultiScenario) (*MultiRunResult, error) {
	if sc.Ticks <= 0 {
		return nil, fmt.Errorf("experiments: Ticks must be positive, got %d", sc.Ticks)
	}
	if len(sc.Sensitives) == 0 {
		return nil, fmt.Errorf("experiments: multi-tenant run needs at least one sensitive")
	}
	host := sc.Host
	if host == (sim.HostConfig{}) {
		host = sim.DefaultHostConfig()
	}
	simulator, err := sim.NewSimulator(host)
	if err != nil {
		return nil, err
	}

	rootRNG := rand.New(rand.NewSource(sc.Seed))
	appSeed := func() int64 { return rootRNG.Int63() }

	specs := make([]SensitiveSpec, len(sc.Sensitives))
	sensRNGs := make([]*rand.Rand, len(sc.Sensitives))
	seenID, seenApp := map[string]bool{}, map[string]bool{}
	for i, sp := range sc.Sensitives {
		if sp.ID == "" || sp.Build == nil {
			return nil, fmt.Errorf("experiments: sensitive spec %d incomplete", i)
		}
		if sp.App == "" {
			sp.App = sp.ID
		}
		if seenID[sp.ID] || seenApp[sp.App] {
			return nil, fmt.Errorf("experiments: duplicate sensitive %q/%q", sp.ID, sp.App)
		}
		seenID[sp.ID], seenApp[sp.App] = true, true
		specs[i] = sp
		sensRNGs[i] = rand.New(rand.NewSource(appSeed()))
	}

	batchIDs := make([]string, 0, len(sc.Batch))
	batchRNGs := make([]*rand.Rand, len(sc.Batch))
	for i, p := range sc.Batch {
		if p.ID == "" || p.App == nil {
			return nil, fmt.Errorf("experiments: batch placement %d incomplete", i)
		}
		batchIDs = append(batchIDs, p.ID)
		batchRNGs[i] = rand.New(rand.NewSource(appSeed()))
	}

	var hostRT *core.HostRuntime
	sigs := make([]*simLaneSignals, len(specs))
	for i, sp := range specs {
		sigs[i] = &simLaneSignals{sim: simulator, id: sp.ID}
	}
	if sc.StayAway {
		henv := &simHostEnv{sim: simulator, batchIDs: batchIDs}
		hostRT, err = core.NewHost(henv, NewSimActuator(simulator))
		if err != nil {
			return nil, err
		}
		for i, sp := range specs {
			cfg := core.DefaultConfig(sp.ID, batchIDs, metrics.DefaultRanges(
				host.Cores, host.MemoryMB, host.DiskMBps, host.NetMbps))
			cfg.SensitiveApp = sp.App
			cfg.Seed = appSeed()
			if sc.Tune != nil {
				sc.Tune(sp.App, &cfg)
			}
			if _, err := hostRT.AddLane(cfg, sigs[i]); err != nil {
				return nil, fmt.Errorf("experiments: lane %q: %w", sp.App, err)
			}
		}
	}

	res := &MultiRunResult{Scenario: sc, Host: hostRT}
	for tick := 0; tick < sc.Ticks; tick++ {
		for i, sp := range specs {
			if tick == sp.Start {
				qosApp := sp.Build(sensRNGs[i])
				if _, err := simulator.AddContainer(sp.ID, qosApp); err != nil {
					return nil, err
				}
				sigs[i].qosApp = qosApp
			}
		}
		for i, p := range sc.Batch {
			if tick == p.StartTick {
				if _, err := simulator.AddContainer(p.ID, p.App(batchRNGs[i])); err != nil {
					return nil, err
				}
			}
		}

		simulator.Step()
		if sc.Hook != nil {
			sc.Hook(tick)
		}

		rec := MultiTickRecord{
			Tick:        tick,
			Utilization: simulator.LastTickUtilization(),
			Lanes:       make(map[string]LaneTick, len(specs)),
		}
		for i, sp := range specs {
			var lt LaneTick
			if sigs[i].qosApp != nil {
				if c, err := simulator.Container(sp.ID); err == nil && c.Running() {
					lt.SensitiveRunning = true
					lt.QoS, lt.Threshold = sigs[i].qosApp.QoS()
					lt.Violation = lt.QoS < lt.Threshold
				}
			}
			rec.Lanes[sp.App] = lt
		}
		var batchCPU float64
		for _, id := range batchIDs {
			c, err := simulator.Container(id)
			if err != nil {
				continue
			}
			batchCPU += c.LastGrant().CPU
			if c.Running() {
				rec.BatchRunning = true
			}
		}
		rec.BatchCPUShare = batchCPU / host.CPUCapacity()

		if hostRT != nil {
			evs, err := hostRT.Period()
			if err != nil {
				return nil, fmt.Errorf("experiments: period %d: %w", tick, err)
			}
			for _, ev := range evs {
				lt := rec.Lanes[ev.App]
				lt.Mode = ev.Mode
				lt.Coord = ev.Coord
				lt.Action = ev.Action
				lt.Predicted = ev.Predicted
				lt.Throttled = ev.Throttled
				rec.Lanes[ev.App] = lt
			}
		}
		res.Records = append(res.Records, rec)
	}

	for _, id := range batchIDs {
		if c, err := simulator.Container(id); err == nil {
			res.BatchWork += c.TotalEffectiveCPU()
		}
	}
	res.AvgUtilization = simulator.Utilization()
	if hostRT != nil {
		res.Reports = make(map[string]core.Report, len(specs))
		res.Events = make(map[string][]core.Event, len(specs))
		for _, lane := range hostRT.Lanes() {
			res.Reports[lane.App()] = lane.Report()
			res.Events[lane.App()] = lane.Events()
		}
	}
	return res, nil
}

// LaneViolations counts one lane's QoS-violation ticks.
func (r *MultiRunResult) LaneViolations(app string) int {
	n := 0
	for _, rec := range r.Records {
		if rec.Lanes[app].Violation {
			n++
		}
	}
	return n
}

// ConflictScenario is the two-sensitive conflicting workload of the
// multi-tenant evaluation: a bursty VLC transcoder whose scene changes
// demand hard freezes, co-located with a steady CPU-intensive webservice
// that only degrades under sustained interference — their lanes disagree
// about how restricted the shared CPU-bomb pool should be, and the
// arbiter must keep the pool at the most severe of the two demands.
func ConflictScenario(seed int64) MultiScenario {
	// Two sensitives need more headroom than the default 4-core host:
	// transcoder (≈280 CPU) + webservice (≈250 CPU) must fit with the pool
	// frozen, or no amount of throttling can restore QoS.
	host := sim.DefaultHostConfig()
	host.Cores = 8
	host.MemoryMB = 8192
	return MultiScenario{
		Name: "two-sensitive-conflict",
		Host: host,
		Sensitives: []SensitiveSpec{
			{ID: "vlc", App: "vlc-transcode", Start: 0, Build: vlcTranscodeQoSApp},
			{ID: "web", App: "webservice", Start: 0,
				Build: webserviceApp(apps.CPUIntensive, apps.ConstantIntensity(0.8))},
		},
		Batch: []Placement{
			{ID: "bomb1", StartTick: 40, App: cpuBombApp},
			{ID: "bomb2", StartTick: 60, App: cpuBombApp},
		},
		Ticks:    1200,
		Seed:     seed,
		StayAway: true,
	}
}

// MultiTenant runs the conflicting two-sensitive scenario with and
// without Stay-Away and renders the comparison: per-lane violation
// counts, pause/resume activity, and the gained batch utilization.
func MultiTenant(seed int64) (*Figure, error) {
	sc := ConflictScenario(seed)
	protected, err := RunMulti(sc)
	if err != nil {
		return nil, err
	}
	base := sc
	base.StayAway = false
	baseline, err := RunMulti(base)
	if err != nil {
		return nil, err
	}

	text := fmt.Sprintf("scenario %s: %d ticks, %d sensitives, %d batch containers\n\n",
		sc.Name, sc.Ticks, len(sc.Sensitives), len(sc.Batch))
	text += fmt.Sprintf("%-16s %12s %12s %8s %8s\n",
		"lane", "viol (none)", "viol (SA)", "pauses", "resumes")
	for _, sp := range sc.Sensitives {
		rep := protected.Reports[sp.App]
		text += fmt.Sprintf("%-16s %12d %12d %8d %8d\n",
			sp.App, baseline.LaneViolations(sp.App), protected.LaneViolations(sp.App),
			rep.Pauses, rep.Resumes)
	}
	text += fmt.Sprintf("\nbatch work: %.0f (baseline %.0f, %.0f%% retained)\n",
		protected.BatchWork, baseline.BatchWork,
		100*protected.BatchWork/maxf(baseline.BatchWork, 1))
	text += fmt.Sprintf("avg utilization: %.2f (baseline %.2f)\n",
		protected.AvgUtilization, baseline.AvgUtilization)

	summary := map[string]float64{
		"batch_retained": protected.BatchWork / maxf(baseline.BatchWork, 1),
	}
	for _, sp := range sc.Sensitives {
		b := baseline.LaneViolations(sp.App)
		if b == 0 {
			b = 1
		}
		summary["viol_ratio_"+sp.App] =
			float64(protected.LaneViolations(sp.App)) / float64(b)
	}

	return &Figure{
		ID:      "multitenant",
		Title:   "Two conflicting sensitives sharing one batch pool (host runtime + arbiter)",
		Text:    text,
		Summary: summary,
	}, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
