package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

func TestLeadTimesUnit(t *testing.T) {
	mk := func(violation, predicted bool) TickRecord {
		return TickRecord{SensitiveRunning: true, Violation: violation, Predicted: predicted}
	}
	records := []TickRecord{
		mk(false, false),
		mk(false, true),
		mk(false, true),
		mk(true, false), // violation with lead 2
		mk(false, false),
		mk(true, false), // violation with lead 0
	}
	st := LeadTimes(records)
	if st.Violations != 2 || st.Foreseen != 1 || st.MaxLead != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanLead != 1 {
		t.Errorf("mean lead = %v, want 1", st.MeanLead)
	}
	if empty := LeadTimes(nil); empty.Violations != 0 || empty.MeanLead != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

// triangleStressor ramps its active working set up and down in a slow
// triangular wave — the cleanest possible "gradual transition" (§3.2.3):
// every approach to the swap boundary is a multi-tick walk through
// intermediate states.
type triangleStressor struct {
	ticks int
}

func (s *triangleStressor) Name() string { return "triangle-stressor" }

func (s *triangleStressor) Demand(tick int) sim.Demand {
	const period, peakMB = 60, 2200
	pos := s.ticks % period
	level := float64(pos) / (period / 2)
	if pos >= period/2 {
		level = float64(period-pos) / (period / 2)
	}
	mem := peakMB * level
	return sim.Demand{CPU: 50, MemoryMB: mem, ActiveMemMB: mem, MemBWMBps: 500}
}

func (s *triangleStressor) Advance(int, sim.Grant) bool {
	s.ticks++
	return false
}

// The §3.2.3 transition taxonomy, measured: against a gradually ramping
// memory stressor the predictor warns ahead of violations; against
// CPUBomb's instantaneous saturation it mostly cannot (the paper's own
// caveat).
func TestLeadTimeGradualVsInstantaneous(t *testing.T) {
	run := func(batch func(rng *rand.Rand) sim.App) LeadTimeStats {
		res, err := Run(Scenario{
			Name:        "leadtime",
			SensitiveID: "web",
			Sensitive: func(rng *rand.Rand) sim.QoSApp {
				return apps.NewWebservice(apps.DefaultWebserviceConfig(apps.MemoryIntensive), rng)
			},
			Batch:          []Placement{{ID: "b", StartTick: 20, App: batch}},
			Ticks:          400,
			Seed:           17,
			StayAway:       true,
			DisableActions: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return LeadTimes(res.Records)
	}
	gradual := run(func(rng *rand.Rand) sim.App { return &triangleStressor{} })
	if gradual.Violations == 0 {
		t.Fatal("gradual scenario produced no violations")
	}
	if gradual.Foreseen == 0 {
		t.Error("no gradual violation was foreseen")
	}
	if gradual.MaxLead < 1 {
		t.Errorf("max lead = %d, want ≥ 1 for gradual approaches", gradual.MaxLead)
	}
}

func TestWriteRunCSV(t *testing.T) {
	res, err := Run(Scenario{
		Name:        "csv",
		SensitiveID: "vlc",
		Sensitive: func(rng *rand.Rand) sim.QoSApp {
			return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
		},
		Ticks:    10,
		Seed:     1,
		StayAway: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRunCSV(&buf, res.Records); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 11 { // header + 10 ticks
		t.Fatalf("lines = %d, want 11", len(lines))
	}
	if !strings.HasPrefix(lines[0], "tick,qos,threshold") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "sensitive-only") {
		t.Errorf("row 1 = %q, want mode name", lines[1])
	}
}
