package experiments

import "testing"

func TestChaosSuiteInvariantsHold(t *testing.T) {
	fig, err := Chaos(42)
	if err != nil {
		t.Fatalf("chaos suite: %v", err)
	}
	if fig == nil || fig.ID != "chaos" {
		t.Fatalf("figure = %+v", fig)
	}
	// The suite only means something if faults actually fired; the
	// invariants themselves (0 surfaced errors, 0 frozen, watchdog == 2)
	// are enforced inside Chaos, which would have returned an error.
	for _, key := range []string{"injected_errs", "retries", "sigstops", "sigconts"} {
		if fig.Summary[key] == 0 {
			t.Errorf("%s = 0; that fault path never exercised", key)
		}
	}
	if fig.Summary["actuation_errs"] != 0 || fig.Summary["frozen_after_release"] != 0 {
		t.Errorf("invariant counters nonzero: %+v", fig.Summary)
	}
	if fig.Summary["watchdog_fired"] != 2 {
		t.Errorf("watchdog fired %v episodes, want 2", fig.Summary["watchdog_fired"])
	}
}

func TestChaosSuiteIsSeedReproducible(t *testing.T) {
	f1, err := Chaos(7)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Chaos(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"writes", "injected_errs", "retries"} {
		if f1.Summary[key] != f2.Summary[key] {
			t.Errorf("same seed diverged on %s: %v vs %v", key, f1.Summary[key], f2.Summary[key])
		}
	}
}
