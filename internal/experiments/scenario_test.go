package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/throttle"
)

func vlcFactory(rng *rand.Rand) sim.QoSApp {
	return apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rng)
}

func bombFactory(rng *rand.Rand) sim.App {
	return apps.NewCPUBomb(apps.DefaultCPUBombConfig())
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Scenario{Ticks: 0}); err == nil {
		t.Error("zero ticks should error")
	}
	if _, err := Run(Scenario{Ticks: 10, Sensitive: vlcFactory}); err == nil {
		t.Error("sensitive app without ID should error")
	}
	if _, err := Run(Scenario{Ticks: 10, StayAway: true}); err == nil {
		t.Error("Stay-Away without sensitive app should error")
	}
	if _, err := Run(Scenario{Ticks: 10, Batch: []Placement{{ID: "x"}}}); err == nil {
		t.Error("placement without app factory should error")
	}
	if _, err := Run(Scenario{Ticks: 10, Batch: []Placement{{App: bombFactory}}}); err == nil {
		t.Error("placement without ID should error")
	}
}

func TestRunBaselineWithoutStayAway(t *testing.T) {
	res, err := Run(Scenario{
		Name:        "baseline",
		SensitiveID: "vlc",
		Sensitive:   vlcFactory,
		Batch:       []Placement{{ID: "bomb", StartTick: 10, App: bombFactory}},
		Ticks:       60,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 60 {
		t.Fatalf("records = %d", len(res.Records))
	}
	// Before the bomb starts, QoS is perfect; after, it collapses.
	if res.Records[5].Violation {
		t.Error("violation before the bomb exists")
	}
	vs := Violations(res.Records[15:])
	if vs.Rate < 0.9 {
		t.Errorf("post-bomb violation rate = %v, want near 1 without prevention", vs.Rate)
	}
	if res.Runtime != nil || res.Events != nil {
		t.Error("no runtime expected without Stay-Away")
	}
	if res.BatchWork <= 0 {
		t.Error("batch work should accumulate")
	}
}

func TestRunStayAwayImprovesQoS(t *testing.T) {
	base := Scenario{
		SensitiveID: "vlc",
		Sensitive:   vlcFactory,
		Batch:       []Placement{{ID: "bomb", StartTick: 10, App: bombFactory}},
		Ticks:       150,
		Seed:        3,
	}
	noPrev, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withSA := base
	withSA.StayAway = true
	sa, err := Run(withSA)
	if err != nil {
		t.Fatal(err)
	}
	if Violations(sa.Records).Rate >= Violations(noPrev.Records).Rate {
		t.Errorf("Stay-Away violation rate %v should beat unprotected %v",
			Violations(sa.Records).Rate, Violations(noPrev.Records).Rate)
	}
	if sa.Report.Pauses == 0 {
		t.Error("Stay-Away never paused the bomb")
	}
	// Records carry runtime decisions.
	var sawThrottle bool
	for _, r := range sa.Records {
		if r.Throttled {
			sawThrottle = true
		}
	}
	if !sawThrottle {
		t.Error("no throttled ticks recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := Scenario{
		SensitiveID: "vlc",
		Sensitive:   vlcFactory,
		Batch:       []Placement{{ID: "bomb", StartTick: 5, App: bombFactory}},
		Ticks:       80,
		Seed:        9,
		StayAway:    true,
	}
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("records diverge at %d:\n%+v\n%+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestRunDelayedStarts(t *testing.T) {
	res, err := Run(Scenario{
		SensitiveID:    "vlc",
		Sensitive:      vlcFactory,
		SensitiveStart: 10,
		Batch:          []Placement{{ID: "bomb", StartTick: 20, App: bombFactory}},
		Ticks:          30,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[5].SensitiveRunning {
		t.Error("sensitive running before its start tick")
	}
	if !res.Records[12].SensitiveRunning {
		t.Error("sensitive not running after start")
	}
	if res.Records[15].BatchRunning {
		t.Error("batch running before its start tick")
	}
	if !res.Records[25].BatchRunning {
		t.Error("batch not running after start")
	}
}

func TestRunHookInvoked(t *testing.T) {
	var ticks []int
	_, err := Run(Scenario{
		SensitiveID: "vlc",
		Sensitive:   vlcFactory,
		Ticks:       5,
		Seed:        1,
		Hook:        func(tick int) { ticks = append(ticks, tick) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 5 || ticks[0] != 0 || ticks[4] != 4 {
		t.Errorf("hook ticks = %v", ticks)
	}
}

func TestSimEnvironment(t *testing.T) {
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	vlc := apps.NewVLCStream(apps.DefaultVLCStreamConfig(), rand.New(rand.NewSource(1)))
	if _, err := s.AddContainer("vlc", vlc); err != nil {
		t.Fatal(err)
	}
	env := NewSimEnvironment(s, "vlc", []string{"bomb"}, vlc)

	// Batch container does not exist yet.
	if env.BatchRunning() || env.BatchActive() {
		t.Error("absent batch should not be running/active")
	}
	if !env.SensitiveRunning() {
		t.Error("sensitive should be running")
	}
	s.Step()
	if env.QoSViolation() {
		t.Error("isolated VLC should not violate")
	}
	if got := env.Collect(); len(got) != 1 || got[0].VM != "vlc" {
		t.Errorf("collect = %v", got)
	}

	if _, err := s.AddContainer("bomb", apps.NewCPUBomb(apps.DefaultCPUBombConfig())); err != nil {
		t.Fatal(err)
	}
	s.Step()
	if !env.BatchRunning() || !env.BatchActive() {
		t.Error("batch should be running")
	}
	if !env.QoSViolation() {
		t.Error("bomb co-location should violate VLC")
	}
	// Frozen batch: active but not running; QoS recovers.
	if err := s.Freeze("bomb"); err != nil {
		t.Fatal(err)
	}
	s.Step()
	if env.BatchRunning() {
		t.Error("frozen batch must not count as running")
	}
	if !env.BatchActive() {
		t.Error("frozen batch still has work")
	}
	if env.QoSViolation() {
		t.Error("QoS should recover with the bomb frozen")
	}
}

func TestSimActuator(t *testing.T) {
	s, err := sim.NewSimulator(sim.DefaultHostConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddContainer("b", apps.NewCPUBomb(apps.DefaultCPUBombConfig())); err != nil {
		t.Fatal(err)
	}
	var act throttle.Actuator = NewSimActuator(s)
	// Unknown IDs are skipped, not errors (container may start later).
	if err := act.Pause([]string{"ghost", "b"}); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Container("b")
	if c.State() != sim.StateFrozen {
		t.Errorf("state = %v, want frozen", c.State())
	}
	if err := act.Resume([]string{"b", "ghost"}); err != nil {
		t.Fatal(err)
	}
	if c.State() != sim.StateRunning {
		t.Errorf("state = %v, want running", c.State())
	}
}
