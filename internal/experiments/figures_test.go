package experiments

import (
	"strings"
	"testing"
)

// The figure tests assert the paper's qualitative "shape" claims, not
// absolute numbers. Seeds are fixed so the assertions are stable.

const figSeed = 42

func TestFig01Shape(t *testing.T) {
	f, err := Fig01(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	// The diurnal trace has pronounced valleys: peak/trough well above 2.
	if f.Summary["ratio"] < 2 {
		t.Errorf("peak/trough ratio = %v, want > 2", f.Summary["ratio"])
	}
	if !strings.Contains(f.Text, "Fig 1") {
		t.Error("rendering missing")
	}
}

func TestFig04Shape(t *testing.T) {
	f, err := Fig04()
	if err != nil {
		t.Fatal(err)
	}
	// Radius peaks at d = c = 1 with value e^(−1/2).
	if d := f.Summary["peak_d"]; d < 0.9 || d > 1.1 {
		t.Errorf("peak at d = %v, want ≈1", d)
	}
	if r := f.Summary["peak_r"]; r < 0.55 || r > 0.65 {
		t.Errorf("peak radius = %v, want ≈0.607", r)
	}
}

func TestFig05Shape(t *testing.T) {
	f, err := Fig05(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	if f.Summary["modes_seen"] != 4 {
		t.Errorf("modes seen = %v, want all 4", f.Summary["modes_seen"])
	}
	// Each mode's trajectory model must have collected steps (idle may be
	// sparse but sensible modes must be well fed).
	for _, mode := range []string{"sensitive-only", "co-located", "batch-only"} {
		if f.Summary["steps_"+mode] < 5 {
			t.Errorf("mode %s steps = %v, want ≥ 5", mode, f.Summary["steps_"+mode])
		}
	}
}

func TestFig06Shape(t *testing.T) {
	f, err := Fig06(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	if f.Summary["violation_states"] == 0 {
		t.Error("CPUBomb co-location must learn violation states")
	}
	// The transition into co-location is instantaneous: a large one-period
	// jump exists.
	if f.Summary["max_jump"] < 0.1 {
		t.Errorf("max jump = %v, want a visible instantaneous transition", f.Summary["max_jump"])
	}
}

func TestFig07Shape(t *testing.T) {
	f, err := Fig07(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	if f.Summary["pauses"] == 0 {
		t.Error("Stay-Away should have acted at least once")
	}
	// Twitter must NOT be throttled most of the time (its gain story).
	if f.Summary["throttled_ticks"] > 125 {
		t.Errorf("throttled %v/250 ticks; Twitter should mostly run", f.Summary["throttled_ticks"])
	}
}

func TestFig08Shape(t *testing.T) {
	f, err := Fig08(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Without prevention CPUBomb destroys QoS; Stay-Away cuts violations
	// by an order of magnitude.
	if f.Summary["violation_rate_noprev"] < 0.7 {
		t.Errorf("unprotected rate = %v, want near-constant violation", f.Summary["violation_rate_noprev"])
	}
	if f.Summary["violation_rate_stayaway"] > 0.2 {
		t.Errorf("Stay-Away rate = %v, want < 0.2", f.Summary["violation_rate_stayaway"])
	}
	if f.Summary["violation_rate_stayaway"] >= f.Summary["violation_rate_noprev"]/3 {
		t.Error("Stay-Away should cut violations by at least 3x")
	}
}

func TestFig09Shape(t *testing.T) {
	f, err := Fig09(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	if f.Summary["violation_rate_noprev"] < 0.03 {
		t.Errorf("unprotected rate = %v, want visible violations", f.Summary["violation_rate_noprev"])
	}
	if f.Summary["violation_rate_stayaway"] >= f.Summary["violation_rate_noprev"] {
		t.Error("Stay-Away should reduce violations")
	}
}

func TestFig10And11GainOrdering(t *testing.T) {
	f10, err := Fig10(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	f11, err := Fig11(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's central utilization result: CPUBomb is the worst
	// co-runner (small spiky gain, ≈5%); Twitter-Analysis gains far more.
	gBomb := f10.Summary["gain_stayaway"]
	gTwitter := f11.Summary["gain_stayaway"]
	if gBomb > 0.15 {
		t.Errorf("CPUBomb gain = %v, want small (paper ≈5%%)", gBomb)
	}
	if gTwitter < 3*gBomb {
		t.Errorf("Twitter gain %v should dwarf CPUBomb gain %v", gTwitter, gBomb)
	}
	if gTwitter < 0.15 {
		t.Errorf("Twitter gain = %v, want substantial", gTwitter)
	}
	// Stay-Away never exceeds the no-prevention upper band.
	if gBomb > f10.Summary["gain_noprev"] || gTwitter > f11.Summary["gain_noprev"] {
		t.Error("gain exceeded the no-prevention upper band")
	}
}

func TestFig13Shape(t *testing.T) {
	f, err := Fig13(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	// The Fig 13 story: Twitter runs during low-intensity valleys and is
	// throttled under high load.
	for _, prefix := range []string{"a_", "b_"} {
		low := f.Summary[prefix+"low_intensity_run"]
		high := f.Summary[prefix+"high_intensity_run"]
		if low <= high {
			t.Errorf("%s: low-intensity run fraction %v should exceed high-intensity %v",
				prefix, low, high)
		}
		if low < 0.5 {
			t.Errorf("%s: batch should mostly run during valleys, got %v", prefix, low)
		}
	}
}

func TestFig17And18TemplateStory(t *testing.T) {
	f17, tpl, err := Fig17(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	if f17.Summary["violation_states"] == 0 || len(tpl.States) == 0 {
		t.Fatal("template must carry learned violation states")
	}
	f18, err := Fig18(figSeed)
	if err != nil {
		t.Fatal(err)
	}
	if f18.Summary["violations"] == 0 {
		t.Fatal("Soplex run produced no violations to validate against")
	}
	// §6: violations with a different batch app land in the template's
	// violation region.
	if f18.Summary["nearer_fraction"] < 0.7 {
		t.Errorf("only %v of violations near the template violation region",
			f18.Summary["nearer_fraction"])
	}
	if f18.Summary["in_region_fraction"] < 0.5 {
		t.Errorf("only %v of violations inside template violation-ranges",
			f18.Summary["in_region_fraction"])
	}
}
