package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mds"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/statespace"
	"repro/internal/throttle"
	"repro/internal/trajectory"
)

// Placement schedules one container.
type Placement struct {
	// ID is the container ID.
	ID string
	// StartTick is when the container is created (0 = from the start).
	StartTick int
	// App builds the application instance; called once at StartTick with
	// a scenario-derived deterministic RNG.
	App func(rng *rand.Rand) sim.App
}

// Scenario describes one experiment run.
type Scenario struct {
	// Name labels the run in reports.
	Name string
	// Host is the simulated machine; zero value uses the default host.
	Host sim.HostConfig
	// SensitiveID and Sensitive build the latency-sensitive application;
	// leave Sensitive nil for batch-only runs.
	SensitiveID string
	Sensitive   func(rng *rand.Rand) sim.QoSApp
	// SensitiveStart delays the sensitive container's creation.
	SensitiveStart int
	// Services schedules additional service-tier containers that belong to
	// the sensitive application (the downstream stages of a microservice
	// chain). Their usage is aggregated into the sensitive schema slot and
	// they are never throttled; QoS still comes from the Sensitive app.
	Services []Placement
	// Batch schedules the batch containers.
	Batch []Placement
	// Ticks is the run length.
	Ticks int
	// Seed drives all randomness (simulated apps and the runtime).
	Seed int64
	// StayAway enables the runtime. When false the co-location runs
	// unprotected (the paper's "without prevention" baseline).
	StayAway bool
	// DisableActions runs the runtime in observe-only mode (mapping and
	// prediction without throttling) — used by the template validation.
	DisableActions bool
	// Template optionally seeds the runtime with a previously learned map.
	Template *statespace.Template
	// Tune mutates the runtime config before construction (nil = defaults).
	Tune func(*core.Config)
	// Hook, when non-nil, is invoked after each simulator step with the
	// tick index — used by debugging tools and white-box tests to inspect
	// application state mid-run.
	Hook func(tick int)
}

// TickRecord is one tick's observable outcome.
type TickRecord struct {
	Tick int
	// QoS and Threshold are the sensitive application's report (zero when
	// no sensitive app runs or it hasn't started).
	QoS       float64
	Threshold float64
	// Violation marks QoS < Threshold while the sensitive app runs.
	Violation bool
	// SensitiveRunning reports whether the sensitive app ran this tick.
	SensitiveRunning bool
	// Utilization is machine CPU utilization in [0,1] this tick.
	Utilization float64
	// BatchCPUShare is the batch containers' granted CPU as a fraction of
	// capacity — the "gained utilization" contribution.
	BatchCPUShare float64
	// BatchRunning reports whether any batch container ran this tick.
	BatchRunning bool
	// Throttled reports whether batch containers were frozen at the end of
	// the tick.
	Throttled bool
	// Mode, Coord and Action mirror the runtime event (zero values without
	// Stay-Away).
	Mode   trajectory.Mode
	Coord  mds.Coord
	Action throttle.Action
	// Predicted marks a predicted impending violation.
	Predicted bool
}

// RunResult is a completed scenario.
type RunResult struct {
	Scenario Scenario
	Records  []TickRecord
	// Report is the runtime's aggregate report (zero without Stay-Away).
	Report core.Report
	// Events are the runtime's per-period events (nil without Stay-Away).
	Events []core.Event
	// Runtime is the live runtime (nil without Stay-Away), exposed for
	// template export and model inspection.
	Runtime *core.Runtime
	// BatchWork is the total effective CPU the batch containers performed.
	BatchWork float64
	// AvgUtilization is the mean machine utilization over the run.
	AvgUtilization float64
}

// Run executes the scenario.
func Run(sc Scenario) (*RunResult, error) {
	if sc.Ticks <= 0 {
		return nil, fmt.Errorf("experiments: Ticks must be positive, got %d", sc.Ticks)
	}
	host := sc.Host
	if host == (sim.HostConfig{}) {
		host = sim.DefaultHostConfig()
	}
	simulator, err := sim.NewSimulator(host)
	if err != nil {
		return nil, err
	}

	rootRNG := rand.New(rand.NewSource(sc.Seed))
	appSeed := func() int64 { return rootRNG.Int63() }

	var qosApp sim.QoSApp
	var sensitiveRNG *rand.Rand
	if sc.Sensitive != nil {
		if sc.SensitiveID == "" {
			return nil, fmt.Errorf("experiments: SensitiveID required with a sensitive app")
		}
		sensitiveRNG = rand.New(rand.NewSource(appSeed()))
	}

	serviceIDs := make([]string, 0, len(sc.Services))
	serviceRNGs := make([]*rand.Rand, len(sc.Services))
	for i, p := range sc.Services {
		if p.ID == "" || p.App == nil {
			return nil, fmt.Errorf("experiments: service placement %d incomplete", i)
		}
		serviceIDs = append(serviceIDs, p.ID)
		serviceRNGs[i] = rand.New(rand.NewSource(appSeed()))
	}

	batchIDs := make([]string, 0, len(sc.Batch))
	batchRNGs := make([]*rand.Rand, len(sc.Batch))
	for i, p := range sc.Batch {
		if p.ID == "" || p.App == nil {
			return nil, fmt.Errorf("experiments: batch placement %d incomplete", i)
		}
		batchIDs = append(batchIDs, p.ID)
		batchRNGs[i] = rand.New(rand.NewSource(appSeed()))
	}

	var rt *core.Runtime
	var env *SimEnvironment
	if sc.StayAway {
		if sc.Sensitive == nil {
			return nil, fmt.Errorf("experiments: Stay-Away needs a sensitive application")
		}
		cfg := core.DefaultConfig(sc.SensitiveID, batchIDs, metrics.DefaultRanges(
			host.Cores, host.MemoryMB, host.DiskMBps, host.NetMbps))
		cfg.Seed = appSeed()
		cfg.DisableActions = sc.DisableActions
		if sc.Tune != nil {
			sc.Tune(&cfg)
		}
		// env is created after the sensitive app exists; placeholder below.
		env = NewSimEnvironment(simulator, sc.SensitiveID, batchIDs, nil)
		env.AddServiceIDs(serviceIDs...)
		rt, err = core.New(cfg, env, NewSimActuator(simulator))
		if err != nil {
			return nil, err
		}
		if sc.Template != nil {
			if err := rt.ImportTemplate(sc.Template); err != nil {
				return nil, err
			}
		}
	}

	res := &RunResult{Scenario: sc, Runtime: rt}
	for tick := 0; tick < sc.Ticks; tick++ {
		// Schedule containers whose start time has come.
		if sc.Sensitive != nil && tick == sc.SensitiveStart {
			qosApp = sc.Sensitive(sensitiveRNG)
			if _, err := simulator.AddContainer(sc.SensitiveID, qosApp); err != nil {
				return nil, err
			}
			if env != nil {
				env.qosApp = qosApp
			}
		}
		for i, p := range sc.Services {
			if tick == p.StartTick {
				if _, err := simulator.AddContainer(p.ID, p.App(serviceRNGs[i])); err != nil {
					return nil, err
				}
			}
		}
		for i, p := range sc.Batch {
			if tick == p.StartTick {
				if _, err := simulator.AddContainer(p.ID, p.App(batchRNGs[i])); err != nil {
					return nil, err
				}
			}
		}

		simulator.Step()
		if sc.Hook != nil {
			sc.Hook(tick)
		}

		rec := TickRecord{Tick: tick, Utilization: simulator.LastTickUtilization()}
		if qosApp != nil {
			if c, err := simulator.Container(sc.SensitiveID); err == nil && c.Running() {
				rec.SensitiveRunning = true
				rec.QoS, rec.Threshold = qosApp.QoS()
				rec.Violation = rec.QoS < rec.Threshold
			}
		}
		var batchCPU float64
		for _, id := range batchIDs {
			c, err := simulator.Container(id)
			if err != nil {
				continue
			}
			batchCPU += c.LastGrant().CPU
			if c.Running() {
				rec.BatchRunning = true
			}
		}
		rec.BatchCPUShare = batchCPU / host.CPUCapacity()

		if rt != nil {
			ev, err := rt.Period()
			if err != nil {
				return nil, fmt.Errorf("experiments: period %d: %w", tick, err)
			}
			rec.Throttled = ev.Throttled
			rec.Mode = ev.Mode
			rec.Coord = ev.Coord
			rec.Action = ev.Action
			rec.Predicted = ev.Predicted
		}
		res.Records = append(res.Records, rec)
	}

	for _, id := range batchIDs {
		if c, err := simulator.Container(id); err == nil {
			res.BatchWork += c.TotalEffectiveCPU()
		}
	}
	res.AvgUtilization = simulator.Utilization()
	if rt != nil {
		res.Report = rt.Report()
		res.Events = rt.Events()
	}
	return res, nil
}
