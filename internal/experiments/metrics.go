package experiments

// Series extraction and summary statistics over run records.

// QoSSeries returns the sensitive application's normalized QoS per tick
// (QoS divided by its threshold, so 1.0 is the violation boundary), with 0
// for ticks where the app was not running. Normalizing by the threshold
// matches the paper's "normalised QoS" axes with the threshold drawn as a
// horizontal line.
func QoSSeries(records []TickRecord) []float64 {
	out := make([]float64, len(records))
	for i, r := range records {
		if r.SensitiveRunning && r.Threshold > 0 {
			out[i] = r.QoS / r.Threshold
		}
	}
	return out
}

// GainSeries returns the per-tick gained utilization: the batch
// containers' CPU share of the machine. §7.2 defines gained utilization
// as "the gain in utilisation in comparison to executing [the sensitive
// service] without any co-location" — exactly the CPU the batch containers
// consume.
func GainSeries(records []TickRecord) []float64 {
	out := make([]float64, len(records))
	for i, r := range records {
		out[i] = r.BatchCPUShare
	}
	return out
}

// UtilizationSeries returns machine utilization per tick.
func UtilizationSeries(records []TickRecord) []float64 {
	out := make([]float64, len(records))
	for i, r := range records {
		out[i] = r.Utilization
	}
	return out
}

// ThrottleSeries returns 1 for throttled ticks, 0 otherwise.
func ThrottleSeries(records []TickRecord) []float64 {
	out := make([]float64, len(records))
	for i, r := range records {
		if r.Throttled {
			out[i] = 1
		}
	}
	return out
}

// ViolationStats summarizes QoS violations over a run.
type ViolationStats struct {
	// Ticks is how many ticks the sensitive application was running.
	Ticks int
	// Violations is how many of those violated QoS.
	Violations int
	// Rate is Violations/Ticks.
	Rate float64
	// FirstHalf and SecondHalf split the violations by run half; with
	// Stay-Away most violations should fall in the early learning phase
	// (§7.2).
	FirstHalf, SecondHalf int
}

// Violations computes violation statistics over the ticks where the
// sensitive application ran.
func Violations(records []TickRecord) ViolationStats {
	var st ViolationStats
	var runningSeen []int // indices of running ticks
	for i, r := range records {
		if !r.SensitiveRunning {
			continue
		}
		runningSeen = append(runningSeen, i)
		st.Ticks++
		if r.Violation {
			st.Violations++
		}
	}
	if st.Ticks > 0 {
		st.Rate = float64(st.Violations) / float64(st.Ticks)
		mid := runningSeen[len(runningSeen)/2]
		for _, i := range runningSeen {
			if records[i].Violation {
				if i < mid {
					st.FirstHalf++
				} else {
					st.SecondHalf++
				}
			}
		}
	}
	return st
}

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanWhile averages xs over the ticks where pred holds.
func MeanWhile(records []TickRecord, xs []float64, pred func(TickRecord) bool) float64 {
	var s float64
	var n int
	for i, r := range records {
		if pred(r) {
			s += xs[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
