package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"syscall"
	"time"

	"repro/internal/cgroup"
	"repro/internal/chaos"
	"repro/internal/resilience"
)

// ChaosResult carries the fault-injection suite's outcome.
type ChaosResult struct {
	// Writes / InjectedErrs count control-file writes attempted against
	// the faulty cgroupfs and how many were failed by injection.
	Writes       int
	InjectedErrs int
	// Retries / RetrySleep describe the backoff behaviour: retry sleeps
	// taken and their simulated total.
	Retries    int
	RetrySleep time.Duration
	// ActuationErrs counts actuation calls that returned an error despite
	// retry and degradation (must be 0 — the layers absorb a 10% EIO
	// rate completely).
	ActuationErrs int
	// FrozenAfterRelease counts cgroups still frozen after the final
	// thaw-all (must be 0 — the fail-safe invariant).
	FrozenAfterRelease int
	// Sigstops / Sigconts count the degradation path's signals under a
	// persistently unwritable cgroupfs.
	Sigstops int
	Sigconts int
	// WatchdogFired counts stall episodes in the forced-stall segment
	// (must be exactly 1: fires once, does not re-fire, re-arms on beat).
	WatchdogFired int
}

// Chaos runs the fault-injection suite: a graded actuation storm against
// a cgroupfs failing 10% of writes with EIO (proving jittered
// retry-with-backoff absorbs transient faults and a final thaw-all still
// leaves nothing frozen), a persistently unwritable cgroup (proving
// degradation to SIGSTOP/SIGCONT keeps actuating), and a forced control-
// loop stall (proving the watchdog fires its fail-safe exactly once per
// episode). It returns an error when any invariant fails, so `-chaos`
// doubles as a CI smoke gate.
func Chaos(seed int64) (*Figure, error) {
	var r ChaosResult

	// Segment 1: actuation storm under 10% transient EIO.
	ids := []string{"batch/cg0", "batch/cg1", "batch/cg2", "batch/cg3"}
	fake := cgroup.NewFakeFS()
	for i, id := range ids {
		fake.AddCgroup(id, 1000+i)
	}
	cfs := chaos.NewFS(fake, chaos.FSConfig{WriteErrProb: 0.10, Seed: seed})
	act, err := cgroup.NewActuator(cfs, cgroup.ActuatorConfig{
		MaxCPU:       4,
		WriteRetries: 4,
		Kill:         func(int, syscall.Signal) error { return nil },
		Sleep: func(d time.Duration) {
			r.Retries++
			r.RetrySleep += d
		},
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	levels := []float64{0.25, 0.5, 0.75}
	for round := 0; round < 200; round++ {
		var err error
		switch rng.Intn(3) {
		case 0:
			//lint:stayaway-ignore ledgeredactuation fault-injection suite drives the raw actuator on purpose: the ledger is not what is under test here
			err = act.Pause(ids)
		case 1:
			//lint:stayaway-ignore ledgeredactuation fault-injection suite drives the raw actuator on purpose: the ledger is not what is under test here
			err = act.Resume(ids)
		default:
			//lint:stayaway-ignore ledgeredactuation fault-injection suite drives the raw actuator on purpose: the ledger is not what is under test here
			err = act.SetLevel(ids, levels[rng.Intn(len(levels))])
		}
		if err != nil {
			r.ActuationErrs++
		}
	}
	// The fail-safe path: thaw-all must leave nothing frozen even on a
	// still-faulty filesystem.
	//lint:stayaway-ignore ledgeredactuation fault-injection suite drives the raw actuator on purpose: the ledger is not what is under test here
	if err := act.Resume(ids); err != nil {
		r.ActuationErrs++
	}
	//lint:stayaway-ignore ledgeredactuation fault-injection suite drives the raw actuator on purpose: the ledger is not what is under test here
	if err := act.SetLevel(ids, 1); err != nil {
		r.ActuationErrs++
	}
	for _, id := range ids {
		if c, ok := fake.Contents(id + "/cgroup.freeze"); !ok || strings.TrimSpace(c) != "0" {
			r.FrozenAfterRelease++
		}
	}
	_, writes, _, writeErrs, _ := cfs.Stats()
	r.Writes = writes
	r.InjectedErrs = writeErrs

	// Segment 2: persistently unwritable cgroup — degradation to signals.
	fake2 := cgroup.NewFakeFS()
	fake2.AddCgroup("batch/stuck", 4242)
	cfs2 := chaos.NewFS(fake2, chaos.FSConfig{Seed: seed})
	cfs2.FailWrites("batch/stuck", -1, nil)
	act2, err := cgroup.NewActuator(cfs2, cgroup.ActuatorConfig{
		MaxCPU:       4,
		WriteRetries: 1,
		Sleep:        func(time.Duration) {},
		Kill: func(pid int, sig syscall.Signal) error {
			switch sig {
			case syscall.SIGSTOP:
				r.Sigstops++
			case syscall.SIGCONT:
				r.Sigconts++
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	//lint:stayaway-ignore ledgeredactuation fault-injection suite drives the raw actuator on purpose: the ledger is not what is under test here
	if err := act2.Pause([]string{"batch/stuck"}); err != nil {
		r.ActuationErrs++
	}
	//lint:stayaway-ignore ledgeredactuation fault-injection suite drives the raw actuator on purpose: the ledger is not what is under test here
	if err := act2.Resume([]string{"batch/stuck"}); err != nil {
		r.ActuationErrs++
	}

	// Segment 3: forced control-loop stall — the watchdog must fire its
	// fail-safe exactly once, stay quiet while the stall persists, and
	// re-arm on the next beat.
	now := time.Unix(0, 0)
	wd, err := resilience.NewWatchdog(resilience.WatchdogConfig{
		Period:  time.Second,
		Grace:   3,
		OnStall: func(time.Duration) { r.WatchdogFired++ },
		Now:     func() time.Time { return now },
	})
	if err != nil {
		return nil, err
	}
	wd.Beat()
	now = now.Add(2 * time.Second)
	wd.Check() // within grace: no fire
	now = now.Add(5 * time.Second)
	wd.Check() // past grace: fires
	wd.Check() // same episode: must not re-fire
	wd.Beat()  // loop recovers: re-arms
	now = now.Add(10 * time.Second)
	wd.Check() // second episode would fire again; leave it counted

	var problems []string
	if r.InjectedErrs == 0 {
		problems = append(problems, "no write errors injected (probabilistic injection broken)")
	}
	if r.Retries == 0 {
		problems = append(problems, "no retries observed under 10% EIO")
	}
	if r.ActuationErrs != 0 {
		problems = append(problems, fmt.Sprintf("%d actuation calls failed despite retry+degradation", r.ActuationErrs))
	}
	if r.FrozenAfterRelease != 0 {
		problems = append(problems, fmt.Sprintf("%d cgroups frozen after thaw-all", r.FrozenAfterRelease))
	}
	if r.Sigstops == 0 || r.Sigconts == 0 {
		problems = append(problems, "SIGSTOP/SIGCONT degradation did not engage on unwritable cgroup")
	}
	if r.WatchdogFired != 2 {
		problems = append(problems, fmt.Sprintf("watchdog fired %d times, want 2 (once per episode)", r.WatchdogFired))
	}
	if len(problems) > 0 {
		return nil, fmt.Errorf("chaos suite failed: %s", strings.Join(problems, "; "))
	}

	var b strings.Builder
	b.WriteString("Chaos suite — fault injection against the actuation and liveness layers\n\n")
	fmt.Fprintf(&b, "  EIO storm: %d writes, %d injected errors (%.1f%%), %d retries (backoff total %v)\n",
		r.Writes, r.InjectedErrs, 100*float64(r.InjectedErrs)/float64(max(r.Writes, 1)), r.Retries, r.RetrySleep)
	fmt.Fprintf(&b, "  actuation errors surfaced: %d; cgroups frozen after thaw-all: %d\n",
		r.ActuationErrs, r.FrozenAfterRelease)
	fmt.Fprintf(&b, "  unwritable cgroup degradation: %d SIGSTOP, %d SIGCONT\n", r.Sigstops, r.Sigconts)
	fmt.Fprintf(&b, "  forced stall: watchdog fired %d episodes (once each, re-armed by beat)\n", r.WatchdogFired)
	b.WriteString("\nall invariants held: transient EIO absorbed, thaw-all clean, degradation engaged, watchdog live\n")
	return &Figure{
		ID:    "chaos",
		Title: "Fault-injection suite",
		Text:  b.String(),
		Summary: map[string]float64{
			"writes":               float64(r.Writes),
			"injected_errs":        float64(r.InjectedErrs),
			"retries":              float64(r.Retries),
			"actuation_errs":       float64(r.ActuationErrs),
			"frozen_after_release": float64(r.FrozenAfterRelease),
			"sigstops":             float64(r.Sigstops),
			"sigconts":             float64(r.Sigconts),
			"watchdog_fired":       float64(r.WatchdogFired),
		},
	}, nil
}
