package experiments

import (
	"reflect"
	"testing"
)

// TestFleetConvergenceMeetsAcceptance pins the PR's acceptance criteria
// at the 1k-host scale: a violation learned on one host is visible on at
// least 99% of streaming subscribers within one control period, and delta
// sync moves strictly fewer bytes than whole-template polling would.
func TestFleetConvergenceMeetsAcceptance(t *testing.T) {
	row, err := runFleet(42, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if row.Followers == 0 {
		t.Fatal("simulation produced no followers of the violated app")
	}
	if row.WithinPeriodFrac < 0.99 {
		t.Errorf("within-period convergence = %.4f, want >= 0.99 (%d of %d followers)",
			row.WithinPeriodFrac, row.WithinPeriod, row.Followers)
	}
	if row.DeltaBytes >= row.FullBytes {
		t.Errorf("delta sync shipped %d bytes, whole-template polling %d — delta must be strictly cheaper",
			row.DeltaBytes, row.FullBytes)
	}
	// The overflow path must actually be exercised: stalled subscribers
	// get dropped and recover by polling, one period late.
	if row.Dropped == 0 {
		t.Error("no subscriber was ever dropped: the bounded-queue path went untested")
	}
	if row.DeltaPolls == 0 {
		t.Error("no fallback delta polls: the recovery path went untested")
	}
}

// TestFleetConvergenceDeterministic guards the CI gate's reproducibility:
// the same seed must yield the identical row, byte counts included.
func TestFleetConvergenceDeterministic(t *testing.T) {
	a, err := runFleet(7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFleet(7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
