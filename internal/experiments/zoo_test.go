package experiments

import (
	"math"
	"testing"
)

// TestOpenVsClosedAblation is the PR's acceptance criterion: under the
// identical mild cpu.max quota, the closed-loop grant-ratio QoS sees
// nothing while the open-loop p99-latency QoS registers violations.
func TestOpenVsClosedAblation(t *testing.T) {
	res, err := OpenVsClosed(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClosedViolations != 0 {
		t.Fatalf("closed-loop QoS should ride above threshold under the 0.91 quota, got %d violations",
			res.ClosedViolations)
	}
	if res.OpenViolations == 0 {
		t.Fatal("open-loop QoS must register violations the closed-loop model misses")
	}
	if res.PeakBacklog < 50 {
		t.Fatalf("throttled open-loop service should accumulate a large backlog, peak = %v",
			res.PeakBacklog)
	}
}

func TestScenarioZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo suite is long")
	}
	fig, report, err := ScenarioZoo(1)
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "scenario-zoo" || fig.Text == "" {
		t.Fatalf("malformed figure: %+v", fig)
	}
	if len(report.Rows) != 4 {
		t.Fatalf("expected 4 zoo classes, got %d", len(report.Rows))
	}
	for _, r := range report.Rows {
		if r.UnprotectedRate < 0 || r.UnprotectedRate > 1 || r.ProtectedRate < 0 || r.ProtectedRate > 1 {
			t.Fatalf("%s: rates out of range: %+v", r.Class, r)
		}
		if r.UnprotectedRate == 0 {
			t.Errorf("%s: aggressor should cause violations unprotected", r.Class)
		}
		if r.ProtectedRate > r.UnprotectedRate {
			t.Errorf("%s: Stay-Away made things worse: %.3f > %.3f",
				r.Class, r.ProtectedRate, r.UnprotectedRate)
		}
		if r.BatchWork <= 0 {
			t.Errorf("%s: protected run must still get batch work done", r.Class)
		}
		if r.UtilizationGain <= 0 {
			t.Errorf("%s: protected run should report gained utilization", r.Class)
		}
	}
}

// TestScenarioZooDeterministic: the CI gate replays the suite, so two runs
// with the same seed must agree bit-for-bit on every summary value.
func TestScenarioZooDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo suite is long")
	}
	figA, _, err := ScenarioZoo(7)
	if err != nil {
		t.Fatal(err)
	}
	figB, _, err := ScenarioZoo(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(figA.Summary) != len(figB.Summary) {
		t.Fatalf("summary size differs: %d vs %d", len(figA.Summary), len(figB.Summary))
	}
	for k, va := range figA.Summary {
		vb, ok := figB.Summary[k]
		if !ok {
			t.Fatalf("summary key %q missing on replay", k)
		}
		if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
			t.Fatalf("summary[%q] differs across same-seed runs: %v vs %v", k, va, vb)
		}
	}
}
