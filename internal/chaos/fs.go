// Package chaos injects faults into the daemon's contact surfaces with
// the kernel — cgroupfs reads/writes and usage sampling — so the failure
// tests and the -chaos experiment can prove the resilience layer's
// claims: transient EIO is retried, persistent failure degrades to
// SIGSTOP, a hung read trips the watchdog, and none of it wedges the
// control loop. Faults are scripted (deterministic sequences per path
// pattern) or probabilistic (seeded, reproducible).
package chaos

import (
	"io/fs"
	"math/rand"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cgroup"
)

// FSConfig tunes an error-injecting cgroup filesystem.
type FSConfig struct {
	// WriteErrProb / ReadErrProb inject Err on that fraction of
	// WriteFile / ReadFile calls (0 disables).
	WriteErrProb float64
	ReadErrProb  float64
	// Err is the injected error; nil uses EIO, the classic transient
	// cgroupfs failure.
	Err error
	// Seed drives the probabilistic injection, so chaos runs reproduce.
	Seed int64
	// ReadDelay, when positive, sleeps before every read — a slow
	// cgroupfs. Sleep overrides the sleeper for tests; nil uses
	// time.Sleep.
	ReadDelay time.Duration
	Sleep     func(time.Duration)
}

// FS wraps a cgroup.Cgroupfs with fault injection. Scripted faults
// (FailWrites/FailReads) take precedence over probabilistic ones; a hung
// path (HangReads) blocks the calling goroutine until released — the
// stall the watchdog exists to catch. Safe for concurrent use.
type FS struct {
	inner cgroup.Cgroupfs
	cfg   FSConfig

	mu          sync.Mutex
	rng         *rand.Rand
	failWrites  map[string]*scripted
	failReads   map[string]*scripted
	hung        chan struct{} // non-nil while reads should block
	reads       int
	writes      int
	readErrs    int
	writeErrs   int
	hangedReads int
}

type scripted struct {
	n   int // remaining injections; negative = forever
	err error
}

var _ cgroup.Cgroupfs = (*FS)(nil)

// NewFS wraps inner with fault injection.
func NewFS(inner cgroup.Cgroupfs, cfg FSConfig) *FS {
	if cfg.Err == nil {
		cfg.Err = syscall.EIO
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &FS{
		inner:      inner,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		failWrites: make(map[string]*scripted),
		failReads:  make(map[string]*scripted),
	}
}

// FailWrites scripts the next n writes to any path containing substr to
// fail with err (nil = the configured Err). n < 0 fails forever.
func (f *FS) FailWrites(substr string, n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = f.cfg.Err
	}
	f.failWrites[substr] = &scripted{n: n, err: err}
}

// FailReads scripts read failures like FailWrites.
func (f *FS) FailReads(substr string, n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = f.cfg.Err
	}
	f.failReads[substr] = &scripted{n: n, err: err}
}

// HangReads makes every subsequent read block until ReleaseReads is
// called — the hung-cgroupfs stall. Reads already in flight are
// unaffected.
func (f *FS) HangReads() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hung == nil {
		f.hung = make(chan struct{})
	}
}

// ReleaseReads unblocks all hung and future reads.
func (f *FS) ReleaseReads() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hung != nil {
		close(f.hung)
		f.hung = nil
	}
}

// Stats reports call and injected-failure counts:
// reads/writes attempted, read/write errors injected, reads that hung.
func (f *FS) Stats() (reads, writes, readErrs, writeErrs, hangedReads int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads, f.writes, f.readErrs, f.writeErrs, f.hangedReads
}

// scriptedErr consumes one scripted failure matching name, if any.
func scriptedErr(scripts map[string]*scripted, name string) error {
	for substr, s := range scripts {
		if !strings.Contains(name, substr) {
			continue
		}
		if s.n == 0 {
			delete(scripts, substr)
			continue
		}
		if s.n > 0 {
			s.n--
		}
		return s.err
	}
	return nil
}

func pathError(op, name string, err error) error {
	return &fs.PathError{Op: op, Path: name, Err: err}
}

// ReadFile implements cgroup.Cgroupfs with injected delays, hangs and
// errors.
func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	f.reads++
	hung := f.hung
	if hung != nil {
		f.hangedReads++
	}
	err := scriptedErr(f.failReads, name)
	if err == nil && f.cfg.ReadErrProb > 0 && f.rng.Float64() < f.cfg.ReadErrProb {
		err = f.cfg.Err
	}
	if err != nil {
		f.readErrs++
	}
	f.mu.Unlock()
	if hung != nil {
		<-hung
	}
	if f.cfg.ReadDelay > 0 {
		f.cfg.Sleep(f.cfg.ReadDelay)
	}
	if err != nil {
		return nil, pathError("read", name, err)
	}
	return f.inner.ReadFile(name)
}

// WriteFile implements cgroup.Cgroupfs with injected errors.
func (f *FS) WriteFile(name string, data []byte) error {
	f.mu.Lock()
	f.writes++
	err := scriptedErr(f.failWrites, name)
	if err == nil && f.cfg.WriteErrProb > 0 && f.rng.Float64() < f.cfg.WriteErrProb {
		err = f.cfg.Err
	}
	if err != nil {
		f.writeErrs++
	}
	f.mu.Unlock()
	if err != nil {
		return pathError("write", name, err)
	}
	return f.inner.WriteFile(name, data)
}

// Exists implements cgroup.Cgroupfs; existence checks are never faulted
// (the actuator uses them to distinguish vanished cgroups from failures,
// and lying there would convert every injected error into a silent skip).
func (f *FS) Exists(name string) bool { return f.inner.Exists(name) }
