package chaos

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/procenv"
)

// SamplerConfig tunes an error-injecting usage sampler.
type SamplerConfig struct {
	// DropProb is the fraction of Sample calls that return no samples —
	// a collector that transiently lost its procfs/cgroupfs view.
	DropProb float64
	// Seed drives the probabilistic drops, so chaos runs reproduce.
	Seed int64
	// SampleDelay, when positive, sleeps before every Sample — a slow
	// collector. Sleep overrides the sleeper for tests; nil uses
	// time.Sleep.
	SampleDelay time.Duration
	Sleep       func(time.Duration)
}

// Sampler wraps a procenv.Sampler with fault injection: probabilistic
// dropped samples, scripted delays, and a hang switch that blocks Sample
// until released — the collector-side stall the watchdog must catch.
// Safe for concurrent use.
type Sampler struct {
	inner procenv.Sampler
	cfg   SamplerConfig

	mu      sync.Mutex
	rng     *rand.Rand
	hung    chan struct{}
	samples int
	drops   int
}

var _ procenv.Sampler = (*Sampler)(nil)

// NewSampler wraps inner with fault injection.
func NewSampler(inner procenv.Sampler, cfg SamplerConfig) *Sampler {
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Sampler{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// HangSamples makes every subsequent Sample block until ReleaseSamples
// is called.
func (s *Sampler) HangSamples() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hung == nil {
		s.hung = make(chan struct{})
	}
}

// ReleaseSamples unblocks all hung and future Sample calls.
func (s *Sampler) ReleaseSamples() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hung != nil {
		close(s.hung)
		s.hung = nil
	}
}

// Stats reports Sample calls attempted and how many were dropped.
func (s *Sampler) Stats() (samples, drops int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples, s.drops
}

// Sample implements procenv.Sampler with injected hangs, delays, and
// dropped readings.
func (s *Sampler) Sample() []metrics.Sample {
	s.mu.Lock()
	s.samples++
	hung := s.hung
	drop := s.cfg.DropProb > 0 && s.rng.Float64() < s.cfg.DropProb
	if drop {
		s.drops++
	}
	s.mu.Unlock()
	if hung != nil {
		<-hung
	}
	if s.cfg.SampleDelay > 0 {
		s.cfg.Sleep(s.cfg.SampleDelay)
	}
	if drop {
		return nil
	}
	return s.inner.Sample()
}

// GroupRunning implements procenv.Sampler; liveness checks are never
// faulted (lying about a group's existence would make every drop look
// like a finished workload).
func (s *Sampler) GroupRunning(name string) bool { return s.inner.GroupRunning(name) }

// GroupActive implements procenv.Sampler.
func (s *Sampler) GroupActive(name string) bool { return s.inner.GroupActive(name) }

// GroupNames implements procenv.Sampler.
func (s *Sampler) GroupNames() []string { return s.inner.GroupNames() }
