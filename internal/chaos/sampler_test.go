package chaos

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/procenv"
)

// staticSampler is a minimal procenv.Sampler for wrapping.
type staticSampler struct{}

func (staticSampler) Sample() []metrics.Sample {
	return []metrics.Sample{metrics.NewSample("b1", map[metrics.Metric]float64{metrics.MetricCPU: 50})}
}
func (staticSampler) GroupRunning(string) bool { return true }
func (staticSampler) GroupActive(string) bool  { return true }
func (staticSampler) GroupNames() []string     { return []string{"b1"} }

var _ procenv.Sampler = staticSampler{}

func TestSamplerDropsAreSeededAndCounted(t *testing.T) {
	run := func() int {
		s := NewSampler(staticSampler{}, SamplerConfig{DropProb: 0.5, Seed: 3})
		drops := 0
		for i := 0; i < 100; i++ {
			if s.Sample() == nil {
				drops++
			}
		}
		samples, counted := s.Stats()
		if samples != 100 || counted != drops {
			t.Fatalf("stats = (%d, %d), observed %d drops", samples, counted, drops)
		}
		return drops
	}
	d1, d2 := run(), run()
	if d1 != d2 {
		t.Errorf("same seed dropped %d then %d; chaos runs must reproduce", d1, d2)
	}
	if d1 < 25 || d1 > 75 {
		t.Errorf("50%% drop rate produced %d/100", d1)
	}
}

func TestSamplerHangAndRelease(t *testing.T) {
	s := NewSampler(staticSampler{}, SamplerConfig{})
	s.HangSamples()
	done := make(chan []metrics.Sample, 1)
	go func() { done <- s.Sample() }()
	select {
	case <-done:
		t.Fatal("hung sample returned early")
	case <-time.After(20 * time.Millisecond):
	}
	s.ReleaseSamples()
	select {
	case got := <-done:
		if len(got) != 1 {
			t.Errorf("released sample = %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sample still blocked after release")
	}
}

func TestSamplerDelayAndPassthrough(t *testing.T) {
	var slept time.Duration
	s := NewSampler(staticSampler{}, SamplerConfig{
		SampleDelay: 10 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept += d },
	})
	if got := s.Sample(); len(got) != 1 {
		t.Errorf("sample = %v", got)
	}
	if slept != 10*time.Millisecond {
		t.Errorf("slept %v", slept)
	}
	// Liveness checks are never faulted.
	if !s.GroupRunning("b1") || !s.GroupActive("b1") || len(s.GroupNames()) != 1 {
		t.Error("liveness passthrough broken")
	}
}
