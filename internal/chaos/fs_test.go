package chaos

import (
	"errors"
	"io/fs"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cgroup"
)

func newTestFS(cfg FSConfig) (*FS, *cgroup.FakeFS) {
	inner := cgroup.NewFakeFS()
	inner.AddCgroup("batch/b1", 100)
	return NewFS(inner, cfg), inner
}

func TestScriptedWriteFailuresConsumeCount(t *testing.T) {
	f, inner := newTestFS(FSConfig{})
	f.FailWrites("cgroup.freeze", 2, nil)

	for i := 0; i < 2; i++ {
		err := f.WriteFile("batch/b1/cgroup.freeze", []byte("1\n"))
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("write %d err = %v, want EIO", i, err)
		}
	}
	// Budget exhausted: writes pass through again.
	if err := f.WriteFile("batch/b1/cgroup.freeze", []byte("1\n")); err != nil {
		t.Fatalf("write after budget = %v", err)
	}
	if c, _ := inner.Contents("batch/b1/cgroup.freeze"); c != "1\n" {
		t.Errorf("inner content = %q; failed writes must not reach the inner fs", c)
	}
	// Only the successful write reached the inner filesystem.
	if got := len(inner.Writes()); got != 1 {
		t.Errorf("inner writes = %d, want 1", got)
	}
}

func TestScriptedForeverAndCustomError(t *testing.T) {
	f, _ := newTestFS(FSConfig{})
	f.FailReads("cpu.stat", -1, fs.ErrNotExist)
	for i := 0; i < 5; i++ {
		_, err := f.ReadFile("batch/b1/cpu.stat")
		if !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("read %d err = %v, want ErrNotExist", i, err)
		}
	}
}

func TestProbabilisticInjectionIsSeededAndCounted(t *testing.T) {
	run := func() (int, int) {
		f, _ := newTestFS(FSConfig{WriteErrProb: 0.3, Seed: 7})
		fails := 0
		for i := 0; i < 200; i++ {
			if err := f.WriteFile("batch/b1/cgroup.freeze", []byte("0\n")); err != nil {
				fails++
			}
		}
		_, writes, _, writeErrs, _ := f.Stats()
		if writes != 200 || writeErrs != fails {
			t.Fatalf("stats writes=%d errs=%d, observed fails=%d", writes, writeErrs, fails)
		}
		return fails, writes
	}
	f1, _ := run()
	f2, _ := run()
	if f1 != f2 {
		t.Errorf("same seed produced %d then %d failures; chaos runs must reproduce", f1, f2)
	}
	if f1 < 30 || f1 > 90 {
		t.Errorf("30%% injection produced %d/200 failures", f1)
	}
}

func TestHangReadsBlocksUntilReleased(t *testing.T) {
	f, _ := newTestFS(FSConfig{})
	f.HangReads()
	done := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := f.ReadFile("batch/b1/cpu.stat")
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hung read returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	f.ReleaseReads()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released read err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read still blocked after release")
	}
	wg.Wait()
	// After release, new reads pass straight through.
	if _, err := f.ReadFile("batch/b1/cpu.stat"); err != nil {
		t.Fatalf("read after release = %v", err)
	}
}

func TestReadDelayUsesInjectedSleeper(t *testing.T) {
	var slept time.Duration
	inner := cgroup.NewFakeFS()
	inner.AddCgroup("batch/b1", 100)
	f := NewFS(inner, FSConfig{
		ReadDelay: 50 * time.Millisecond,
		Sleep:     func(d time.Duration) { slept += d },
	})
	if _, err := f.ReadFile("batch/b1/cpu.stat"); err != nil {
		t.Fatal(err)
	}
	if slept != 50*time.Millisecond {
		t.Errorf("slept %v, want 50ms", slept)
	}
}

func TestExistsNeverFaulted(t *testing.T) {
	f, _ := newTestFS(FSConfig{WriteErrProb: 1, ReadErrProb: 1, Seed: 1})
	if !f.Exists("batch/b1") {
		t.Error("existing cgroup reported missing")
	}
	if f.Exists("batch/ghost") {
		t.Error("missing cgroup reported present")
	}
}
