package cgroup

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
)

// Group is one monitored cgroup, named as it should appear in the
// measurement schema (the metrics.Sample VM name).
type Group struct {
	// Name becomes the sample's VM name.
	Name string
	// Path is the cgroup directory relative to the hierarchy root.
	Path string
}

// Collector samples per-cgroup resource usage from cgroup v2 accounting
// files — the production replacement for per-PID procfs aggregation:
// cpu.stat covers every process the cgroup ever hosted (no missed
// short-lived children), memory.current is the kernel's own charge
// (not an RSS sum that double-counts shared pages), and io.stat includes
// writeback attributed by the block layer.
type Collector struct {
	fs     Cgroupfs
	groups []Group

	prevCPU  map[string]uint64 // usage_usec per cgroup path
	prevIO   map[string]ioCounters
	prevTime time.Time
	// now allows tests to control the clock.
	now func() time.Time
}

// ioCounters is the subset of io.stat the collector tracks.
type ioCounters struct {
	ReadBytes, WriteBytes uint64
}

// NewCollector returns a collector over the given cgroups.
func NewCollector(cfs Cgroupfs, groups []Group) (*Collector, error) {
	if cfs == nil {
		return nil, fmt.Errorf("cgroup: nil Cgroupfs")
	}
	seen := map[string]bool{}
	for _, g := range groups {
		if g.Name == "" {
			return nil, fmt.Errorf("cgroup: group with empty name")
		}
		if g.Path == "" {
			return nil, fmt.Errorf("cgroup: group %q with empty path", g.Name)
		}
		if seen[g.Name] {
			return nil, fmt.Errorf("cgroup: duplicate group %q", g.Name)
		}
		seen[g.Name] = true
	}
	return &Collector{
		fs:      cfs,
		groups:  append([]Group(nil), groups...),
		prevCPU: make(map[string]uint64),
		prevIO:  make(map[string]ioCounters),
		now:     time.Now,
	}, nil
}

// Sample reads the current usage of every group. The first call primes
// the counters and reports zero rates; subsequent calls report rates over
// the elapsed wall time. A vanished cgroup contributes zeros (its final
// partial interval is dropped — exactly what cgroup deletion does) and
// its counters are pruned so a recreated cgroup re-primes cleanly.
func (c *Collector) Sample() []metrics.Sample {
	now := c.now()
	elapsed := now.Sub(c.prevTime).Seconds()
	first := c.prevTime.IsZero()
	c.prevTime = now

	out := make([]metrics.Sample, 0, len(c.groups))
	for _, g := range c.groups {
		var cpuPercent, memMB, ioMBps float64

		if usage, err := c.readCPUUsage(g.Path); err != nil {
			delete(c.prevCPU, g.Path)
			delete(c.prevIO, g.Path)
		} else {
			if prev, ok := c.prevCPU[g.Path]; ok && !first && elapsed > 0 && usage >= prev {
				cpuPercent = float64(usage-prev) / 1e6 / elapsed * 100
			}
			c.prevCPU[g.Path] = usage

			if bytes, err := c.readSingleValue(g.Path, "memory.current"); err == nil {
				memMB = float64(bytes) / (1 << 20)
			}

			if io, err := c.readIOStat(g.Path); err == nil {
				if prev, ok := c.prevIO[g.Path]; ok && !first && elapsed > 0 &&
					io.ReadBytes >= prev.ReadBytes && io.WriteBytes >= prev.WriteBytes {
					bytes := float64(io.ReadBytes - prev.ReadBytes + io.WriteBytes - prev.WriteBytes)
					ioMBps = bytes / (1 << 20) / elapsed
				}
				c.prevIO[g.Path] = io
			}
		}

		out = append(out, metrics.NewSample(g.Name, map[metrics.Metric]float64{
			metrics.MetricCPU:    cpuPercent,
			metrics.MetricMemory: memMB,
			metrics.MetricIO:     ioMBps,
			// cgroup v2 has no per-cgroup network accounting in the core
			// controllers; wiring net_cls/eBPF counters is future work.
			metrics.MetricNetwork: 0,
		}))
	}
	return out
}

// GroupRunning reports whether the named cgroup hosts processes and is
// not frozen — the execution-mode signal (a frozen cgroup is the
// SIGSTOPped analogue of procfs state 'T').
func (c *Collector) GroupRunning(name string) bool {
	g, ok := c.lookup(name)
	if !ok || !c.populated(g.Path) {
		return false
	}
	data, err := c.fs.ReadFile(controlFile(g.Path, "cgroup.freeze"))
	if err != nil {
		return false
	}
	return strings.TrimSpace(string(data)) != "1"
}

// GroupActive reports whether the named cgroup still hosts processes
// (running or frozen — i.e. it has remaining work).
func (c *Collector) GroupActive(name string) bool {
	g, ok := c.lookup(name)
	return ok && c.populated(g.Path)
}

// AddGroup starts monitoring one more cgroup — the collector half of a
// live lane add. The same validation as NewCollector applies; a
// duplicate name (or a second name over the same path) is rejected so a
// reload cannot silently double-count a cgroup. The new group's first
// Sample primes its counters and reports zero rates, exactly like a
// fresh collector's first call.
func (c *Collector) AddGroup(g Group) error {
	if g.Name == "" {
		return fmt.Errorf("cgroup: group with empty name")
	}
	if g.Path == "" {
		return fmt.Errorf("cgroup: group %q with empty path", g.Name)
	}
	for _, cur := range c.groups {
		if cur.Name == g.Name {
			return fmt.Errorf("cgroup: duplicate group %q", g.Name)
		}
		if cur.Path == g.Path {
			return fmt.Errorf("cgroup: path %q already monitored as group %q", g.Path, cur.Name)
		}
	}
	c.groups = append(c.groups, g)
	return nil
}

// RemoveGroup stops monitoring the named cgroup and prunes its rate
// counters, so a later re-add re-primes cleanly instead of reporting a
// rate over the gap. Removing an unknown group is a no-op: lane removal
// must be idempotent.
func (c *Collector) RemoveGroup(name string) {
	for i, g := range c.groups {
		if g.Name == name {
			c.groups = append(c.groups[:i], c.groups[i+1:]...)
			delete(c.prevCPU, g.Path)
			delete(c.prevIO, g.Path)
			return
		}
	}
}

// GroupNames returns the configured group names in order.
func (c *Collector) GroupNames() []string {
	out := make([]string, len(c.groups))
	for i, g := range c.groups {
		out[i] = g.Name
	}
	return out
}

func (c *Collector) lookup(name string) (Group, bool) {
	for _, g := range c.groups {
		if g.Name == name {
			return g, true
		}
	}
	return Group{}, false
}

// populated reports whether the cgroup exists and has member processes.
func (c *Collector) populated(path string) bool {
	data, err := c.fs.ReadFile(controlFile(path, "cgroup.procs"))
	if err != nil {
		return false
	}
	return len(strings.Fields(string(data))) > 0
}

// readCPUUsage parses usage_usec from cpu.stat.
func (c *Collector) readCPUUsage(path string) (uint64, error) {
	data, err := c.fs.ReadFile(controlFile(path, "cpu.stat"))
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "usage_usec" {
			return strconv.ParseUint(fields[1], 10, 64)
		}
	}
	return 0, fmt.Errorf("cgroup: no usage_usec in %s/cpu.stat", path)
}

// readSingleValue parses a single-integer control file (memory.current).
func (c *Collector) readSingleValue(path, file string) (uint64, error) {
	data, err := c.fs.ReadFile(controlFile(path, file))
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
}

// readIOStat sums rbytes and wbytes across all devices in io.stat. Lines
// look like "8:16 rbytes=1459200 wbytes=314773504 rios=192 ...".
func (c *Collector) readIOStat(path string) (ioCounters, error) {
	data, err := c.fs.ReadFile(controlFile(path, "io.stat"))
	if err != nil {
		return ioCounters{}, err
	}
	var out ioCounters
	for _, line := range strings.Split(string(data), "\n") {
		for _, field := range strings.Fields(line) {
			key, value, ok := strings.Cut(field, "=")
			if !ok {
				continue
			}
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				continue
			}
			switch key {
			case "rbytes":
				out.ReadBytes += v
			case "wbytes":
				out.WriteBytes += v
			}
		}
	}
	return out, nil
}
