package cgroup

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestDirFSRoundTrip(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "stayaway/batch"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "stayaway/batch/cgroup.freeze"), []byte("0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := DirFS{Root: root}

	if !d.Exists("stayaway/batch") {
		t.Error("Exists(dir) = false")
	}
	if d.Exists("stayaway/other") {
		t.Error("Exists(missing) = true")
	}
	if err := d.WriteFile("stayaway/batch/cgroup.freeze", []byte("1\n")); err != nil {
		t.Fatal(err)
	}
	data, err := d.ReadFile("stayaway/batch/cgroup.freeze")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "1\n" {
		t.Errorf("read back %q, want 1\\n", data)
	}
}

func TestDirFSNeverCreatesFiles(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "gone"), 0o755); err != nil {
		t.Fatal(err)
	}
	d := DirFS{Root: root}
	err := d.WriteFile("gone/cgroup.freeze", []byte("1\n"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("write to missing control file = %v, want ErrNotExist", err)
	}
	if _, statErr := os.Stat(filepath.Join(root, "gone/cgroup.freeze")); statErr == nil {
		t.Error("write created a stray file")
	}
}

func TestDirFSRejectsEscapingPaths(t *testing.T) {
	d := DirFS{Root: t.TempDir()}
	for _, name := range []string{"", "../etc/passwd", "/abs/path", "a/../../b"} {
		if _, err := d.ReadFile(name); err == nil {
			t.Errorf("ReadFile(%q) accepted", name)
		}
		if err := d.WriteFile(name, nil); err == nil {
			t.Errorf("WriteFile(%q) accepted", name)
		}
		if d.Exists(name) {
			t.Errorf("Exists(%q) = true", name)
		}
	}
	if _, err := (DirFS{}).ReadFile("x"); err == nil {
		t.Error("empty root accepted")
	}
}

func TestFakeFSVanishedCgroup(t *testing.T) {
	f := NewFakeFS()
	f.AddCgroup("batch", 7)
	if !f.Exists("batch") {
		t.Fatal("Exists after AddCgroup = false")
	}
	f.Remove("batch")
	if f.Exists("batch") {
		t.Error("Exists after Remove = true")
	}
	if _, err := f.ReadFile("batch/cgroup.freeze"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("read after Remove = %v, want ErrNotExist", err)
	}
	if err := f.WriteFile("batch/cgroup.freeze", []byte("1\n")); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("write after Remove = %v, want ErrNotExist", err)
	}
}

func TestFakeFSWriteLog(t *testing.T) {
	f := NewFakeFS()
	f.AddCgroup("batch")
	if err := f.WriteFile("batch/cgroup.freeze", []byte("1\n")); err != nil {
		t.Fatal(err)
	}
	f.Set("batch/cpu.stat", "usage_usec 5\n") // kernel-side: unlogged
	writes := f.Writes()
	if len(writes) != 1 || writes[0].Name != "batch/cgroup.freeze" || writes[0].Data != "1\n" {
		t.Errorf("writes = %v, want single freeze write", writes)
	}
	if got := f.Cgroups(); len(got) != 1 || got[0] != "batch" {
		t.Errorf("Cgroups() = %v", got)
	}
}
