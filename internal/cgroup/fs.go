// Package cgroup actuates and observes applications through the Linux
// cgroup v2 unified hierarchy — the production counterpart of the paper's
// LXC freeze/thaw prototype. It provides a filesystem abstraction (a real
// implementation rooted at /sys/fs/cgroup and an in-memory fake for
// tests, so CI needs no root), a throttle.GradedActuator driving
// cgroup.freeze / cpu.max / memory.high with degradation to per-PID
// SIGSTOP when control files become unwritable, and a cgroup-native
// stats collector (cpu.stat, memory.current, io.stat) that replaces
// per-PID procfs aggregation.
package cgroup

import (
	"fmt"
	"os"
	"path/filepath"
)

// Cgroupfs abstracts the cgroup v2 filesystem. All names are
// slash-separated paths relative to the hierarchy root; a cgroup is named
// by its directory (e.g. "stayaway/batch") and its control files live
// directly under it ("stayaway/batch/cgroup.freeze").
//
// Implementations must return an error satisfying errors.Is(err,
// fs.ErrNotExist) when the cgroup has been removed — the actuator and
// collector treat a vanished cgroup as vacuous success, mirroring the
// ESRCH handling of throttle.ProcessActuator.
type Cgroupfs interface {
	// ReadFile reads a control file.
	ReadFile(name string) ([]byte, error)
	// WriteFile overwrites a control file. Cgroup control files always
	// exist while the cgroup does; implementations never create files.
	WriteFile(name string, data []byte) error
	// Exists reports whether the path (file or cgroup directory) exists.
	Exists(name string) bool
}

// DirFS is the real cgroupfs, rooted at a directory — /sys/fs/cgroup on
// a production host, or any scratch directory in integration tests.
type DirFS struct {
	// Root is the hierarchy mount point.
	Root string
}

var _ Cgroupfs = DirFS{}

// resolve validates and roots a relative cgroup path.
func (d DirFS) resolve(name string) (string, error) {
	if d.Root == "" {
		return "", fmt.Errorf("cgroup: DirFS with empty root")
	}
	if name == "" || !filepath.IsLocal(name) {
		return "", fmt.Errorf("cgroup: invalid cgroup path %q", name)
	}
	return filepath.Join(d.Root, name), nil
}

// ReadFile implements Cgroupfs.
func (d DirFS) ReadFile(name string) ([]byte, error) {
	path, err := d.resolve(name)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// WriteFile implements Cgroupfs. Control files are opened write-only
// without O_CREATE: a vanished cgroup surfaces as fs.ErrNotExist rather
// than a stray regular file.
func (d DirFS) WriteFile(name string, data []byte) error {
	path, err := d.resolve(name)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Exists implements Cgroupfs.
func (d DirFS) Exists(name string) bool {
	path, err := d.resolve(name)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}
