package cgroup

import (
	"io/fs"
	"syscall"
	"testing"
	"time"
)

// flakyFS fails the first failN writes with failErr, then passes through.
type flakyFS struct {
	*FakeFS
	failN   int
	failErr error
	writes  int
}

func (f *flakyFS) WriteFile(name string, data []byte) error {
	f.writes++
	if f.writes <= f.failN {
		return &fs.PathError{Op: "write", Path: name, Err: f.failErr}
	}
	return f.FakeFS.WriteFile(name, data)
}

func newRetryActuator(t *testing.T, cfs Cgroupfs, retries int, sleeps *[]time.Duration, kills *int) *Actuator {
	t.Helper()
	act, err := NewActuator(cfs, ActuatorConfig{
		MaxCPU:       4,
		WriteRetries: retries,
		RetryBackoff: 10 * time.Millisecond,
		Sleep:        func(d time.Duration) { *sleeps = append(*sleeps, d) },
		Kill:         func(int, syscall.Signal) error { *kills++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return act
}

func TestWriteRetriesTransientErrorThenSucceeds(t *testing.T) {
	inner := NewFakeFS()
	inner.AddCgroup("b1", 100)
	flaky := &flakyFS{FakeFS: inner, failN: 2, failErr: syscall.EIO}
	var sleeps []time.Duration
	kills := 0
	act := newRetryActuator(t, flaky, 3, &sleeps, &kills)

	if err := act.Pause([]string{"b1"}); err != nil {
		t.Fatal(err)
	}
	if c, _ := inner.Contents("b1/cgroup.freeze"); c != "1\n" {
		t.Errorf("freeze = %q; retried write never landed", c)
	}
	if kills != 0 {
		t.Errorf("degraded to signals (%d kills) despite the retry succeeding", kills)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want 2 (one per failed attempt)", sleeps)
	}
	// Jittered exponential backoff: attempt n waits in
	// [base<<n, 1.5*base<<n].
	base := 10 * time.Millisecond
	for i, d := range sleeps {
		lo := base << i
		hi := lo + lo/2
		if d < lo || d > hi {
			t.Errorf("sleep %d = %v, want in [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestWriteRetriesExhaustedDegradesToSignals(t *testing.T) {
	inner := NewFakeFS()
	inner.AddCgroup("b1", 100)
	flaky := &flakyFS{FakeFS: inner, failN: 1 << 30, failErr: syscall.EIO}
	var sleeps []time.Duration
	kills := 0
	act := newRetryActuator(t, flaky, 2, &sleeps, &kills)

	if err := act.Pause([]string{"b1"}); err != nil {
		t.Fatal(err)
	}
	if len(sleeps) != 2 {
		t.Errorf("sleeps = %v, want the full retry budget", sleeps)
	}
	if kills != 1 {
		t.Errorf("kills = %d; persistent failure must degrade to SIGSTOP", kills)
	}
}

func TestVanishedFileNotRetried(t *testing.T) {
	inner := NewFakeFS()
	inner.AddCgroup("b1", 100)
	flaky := &flakyFS{FakeFS: inner, failN: 1 << 30, failErr: fs.ErrNotExist}
	var sleeps []time.Duration
	kills := 0
	act := newRetryActuator(t, flaky, 3, &sleeps, &kills)

	// A vanished control file is a finished workload, not a flaky write:
	// vacuous success, no retries, no signals.
	if err := act.Pause([]string{"b1"}); err != nil {
		t.Fatal(err)
	}
	if len(sleeps) != 0 || kills != 0 {
		t.Errorf("vanished file retried (%v) or signalled (%d)", sleeps, kills)
	}
}

func TestNegativeWriteRetriesDisablesRetry(t *testing.T) {
	inner := NewFakeFS()
	inner.AddCgroup("b1", 100)
	flaky := &flakyFS{FakeFS: inner, failN: 1 << 30, failErr: syscall.EIO}
	var sleeps []time.Duration
	kills := 0
	act := newRetryActuator(t, flaky, -1, &sleeps, &kills)

	if err := act.Pause([]string{"b1"}); err != nil {
		t.Fatal(err)
	}
	if len(sleeps) != 0 {
		t.Errorf("sleeps = %v with retries disabled", sleeps)
	}
	if kills != 1 {
		t.Errorf("kills = %d, want immediate degradation", kills)
	}
}

func TestBestEffortWritesAlsoRetry(t *testing.T) {
	inner := NewFakeFS()
	inner.AddCgroup("b1", 100)
	flaky := &flakyFS{FakeFS: inner, failN: 1, failErr: syscall.EIO}
	var sleeps []time.Duration
	kills := 0
	act := newRetryActuator(t, flaky, 2, &sleeps, &kills)

	act.writeBestEffort("b1", "memory.high", "1024")
	if c, _ := inner.Contents("b1/memory.high"); c != "1024\n" {
		t.Errorf("memory.high = %q after transient failure", c)
	}
	if len(sleeps) != 1 {
		t.Errorf("sleeps = %v, want 1", sleeps)
	}
}
