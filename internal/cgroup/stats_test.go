package cgroup

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/procenv"
)

// The collector must be a drop-in replacement for the procfs sampler.
var _ procenv.Sampler = (*Collector)(nil)

func testCollector(t *testing.T, fs *FakeFS, groups []Group) (*Collector, func(d time.Duration)) {
	t.Helper()
	c, err := NewCollector(fs, groups)
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	c.now = func() time.Time { return clock }
	return c, func(d time.Duration) { clock = clock.Add(d) }
}

func sampleByVM(t *testing.T, samples []metrics.Sample, vm string) metrics.Sample {
	t.Helper()
	for _, s := range samples {
		if s.VM == vm {
			return s
		}
	}
	t.Fatalf("no sample for %q in %v", vm, samples)
	return metrics.Sample{}
}

func TestCollectorRates(t *testing.T) {
	fs := NewFakeFS()
	fs.AddCgroup("batch", 7)
	c, advance := testCollector(t, fs, []Group{{Name: "vlc", Path: "batch"}})

	// Priming sample: all rates zero.
	s := sampleByVM(t, c.Sample(), "vlc")
	if s.Values[metrics.MetricCPU] != 0 || s.Values[metrics.MetricIO] != 0 {
		t.Errorf("priming sample has nonzero rates: %v", s.Values)
	}

	// One second later: 0.5 core of CPU, 256MB resident, 10MB of IO.
	fs.Set("batch/cpu.stat", "usage_usec 500000\nuser_usec 400000\nsystem_usec 100000\n")
	fs.Set("batch/memory.current", "268435456\n")
	fs.Set("batch/io.stat", "8:16 rbytes=4194304 wbytes=2097152 rios=10 wios=5\n259:0 rbytes=4194304 wbytes=0\n")
	advance(time.Second)
	s = sampleByVM(t, c.Sample(), "vlc")
	if got := s.Values[metrics.MetricCPU]; got < 49.9 || got > 50.1 {
		t.Errorf("CPU = %v%%, want 50", got)
	}
	if got := s.Values[metrics.MetricMemory]; got != 256 {
		t.Errorf("memory = %vMB, want 256", got)
	}
	if got := s.Values[metrics.MetricIO]; got < 9.9 || got > 10.1 {
		t.Errorf("IO = %vMB/s, want 10", got)
	}
	if got := s.Values[metrics.MetricNetwork]; got != 0 {
		t.Errorf("network = %v, want 0 (no per-cgroup accounting)", got)
	}
}

func TestCollectorVanishedCgroupReportsZerosAndReprimes(t *testing.T) {
	fs := NewFakeFS()
	fs.AddCgroup("batch", 7)
	c, advance := testCollector(t, fs, []Group{{Name: "vlc", Path: "batch"}})
	c.Sample()
	fs.Set("batch/cpu.stat", "usage_usec 1000000\n")
	advance(time.Second)
	c.Sample()

	fs.Remove("batch")
	advance(time.Second)
	s := sampleByVM(t, c.Sample(), "vlc")
	for m, v := range s.Values {
		if v != 0 {
			t.Errorf("vanished cgroup %v = %v, want 0", m, v)
		}
	}

	// Recreated cgroup with a fresh (lower) counter must re-prime, not
	// produce a negative or huge rate.
	fs.AddCgroup("batch", 8)
	fs.Set("batch/cpu.stat", "usage_usec 100000\n")
	advance(time.Second)
	s = sampleByVM(t, c.Sample(), "vlc")
	if got := s.Values[metrics.MetricCPU]; got != 0 {
		t.Errorf("re-prime sample CPU = %v, want 0", got)
	}
	fs.Set("batch/cpu.stat", "usage_usec 350000\n")
	advance(time.Second)
	s = sampleByVM(t, c.Sample(), "vlc")
	if got := s.Values[metrics.MetricCPU]; got < 24.9 || got > 25.1 {
		t.Errorf("post-re-prime CPU = %v%%, want 25", got)
	}
}

func TestCollectorCounterRegressionDropsInterval(t *testing.T) {
	fs := NewFakeFS()
	fs.AddCgroup("batch", 7)
	c, advance := testCollector(t, fs, []Group{{Name: "vlc", Path: "batch"}})
	fs.Set("batch/cpu.stat", "usage_usec 900000\n")
	c.Sample()
	fs.Set("batch/cpu.stat", "usage_usec 100000\n") // counter went backwards
	advance(time.Second)
	s := sampleByVM(t, c.Sample(), "vlc")
	if got := s.Values[metrics.MetricCPU]; got != 0 {
		t.Errorf("regressed counter CPU = %v, want 0", got)
	}
}

func TestCollectorGroupRunningAndActive(t *testing.T) {
	fs := NewFakeFS()
	fs.AddCgroup("batch", 7)
	c, _ := testCollector(t, fs, []Group{{Name: "vlc", Path: "batch"}})

	if !c.GroupRunning("vlc") || !c.GroupActive("vlc") {
		t.Error("populated unfrozen cgroup should be running and active")
	}
	fs.Set("batch/cgroup.freeze", "1\n")
	if c.GroupRunning("vlc") {
		t.Error("frozen cgroup should not be running")
	}
	if !c.GroupActive("vlc") {
		t.Error("frozen cgroup still hosts work: should be active")
	}
	fs.SetPIDs("batch") // all processes exited
	if c.GroupRunning("vlc") || c.GroupActive("vlc") {
		t.Error("empty cgroup should be neither running nor active")
	}
	fs.Remove("batch")
	if c.GroupRunning("vlc") || c.GroupActive("vlc") {
		t.Error("vanished cgroup should be neither running nor active")
	}
	if c.GroupRunning("nope") || c.GroupActive("nope") {
		t.Error("unknown group name should be neither running nor active")
	}
}

func TestCollectorGroupNames(t *testing.T) {
	fs := NewFakeFS()
	c, _ := testCollector(t, fs, []Group{{Name: "a", Path: "p1"}, {Name: "b", Path: "p2"}})
	names := c.GroupNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("GroupNames() = %v", names)
	}
}

func TestNewCollectorValidation(t *testing.T) {
	fs := NewFakeFS()
	cases := []struct {
		name   string
		groups []Group
	}{
		{"empty name", []Group{{Path: "p"}}},
		{"empty path", []Group{{Name: "a"}}},
		{"duplicate name", []Group{{Name: "a", Path: "p1"}, {Name: "a", Path: "p2"}}},
	}
	for _, tc := range cases {
		if _, err := NewCollector(fs, tc.groups); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := NewCollector(nil, nil); err == nil {
		t.Error("nil fs accepted")
	}
}

func TestCollectorAddRemoveGroup(t *testing.T) {
	fs := NewFakeFS()
	fs.AddCgroup("batch", 7)
	c, advance := testCollector(t, fs, []Group{{Name: "vlc", Path: "batch"}})
	c.Sample() // prime

	// Validation mirrors NewCollector, plus path uniqueness so a reload
	// cannot double-count a cgroup under two names.
	if err := c.AddGroup(Group{Path: "p"}); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.AddGroup(Group{Name: "x"}); err == nil {
		t.Error("empty path accepted")
	}
	if err := c.AddGroup(Group{Name: "vlc", Path: "other"}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := c.AddGroup(Group{Name: "alias", Path: "batch"}); err == nil {
		t.Error("duplicate path accepted")
	}

	// A live-added group primes on its first sample (zero rates), then
	// reports rates like any other.
	fs.AddCgroup("web", 8)
	if err := c.AddGroup(Group{Name: "web", Path: "web"}); err != nil {
		t.Fatal(err)
	}
	if got := c.GroupNames(); len(got) != 2 || got[1] != "web" {
		t.Fatalf("GroupNames() = %v", got)
	}
	advance(time.Second)
	s := sampleByVM(t, c.Sample(), "web")
	if s.Values[metrics.MetricCPU] != 0 {
		t.Errorf("new group's priming sample has CPU %v, want 0", s.Values[metrics.MetricCPU])
	}
	fs.Set("web/cpu.stat", "usage_usec 1000000\n")
	advance(time.Second)
	s = sampleByVM(t, c.Sample(), "web")
	if got := s.Values[metrics.MetricCPU]; got < 99.9 || got > 100.1 {
		t.Errorf("new group CPU = %v%%, want 100", got)
	}
	if !c.GroupActive("web") {
		t.Error("live-added group not active")
	}

	// Removal prunes counters: a re-added group must re-prime instead of
	// reporting a rate across the gap.
	c.RemoveGroup("web")
	if got := c.GroupNames(); len(got) != 1 || got[0] != "vlc" {
		t.Fatalf("GroupNames() after remove = %v", got)
	}
	c.RemoveGroup("web") // idempotent
	fs.Set("web/cpu.stat", "usage_usec 9000000\n")
	if err := c.AddGroup(Group{Name: "web", Path: "web"}); err != nil {
		t.Fatal(err)
	}
	advance(time.Second)
	s = sampleByVM(t, c.Sample(), "web")
	if got := s.Values[metrics.MetricCPU]; got != 0 {
		t.Errorf("re-added group reported CPU %v across the gap, want re-primed 0", got)
	}
}
