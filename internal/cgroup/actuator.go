package cgroup

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/throttle"
)

// ActuatorConfig tunes a cgroup Actuator.
type ActuatorConfig struct {
	// CPUPeriodUsec is the cpu.max accounting period; 0 uses the kernel
	// default of 100000 (100ms).
	CPUPeriodUsec int
	// MaxCPU is how many cores the batch cgroups may burn at level 1 —
	// the reference the graded quota steps scale down from. 0 uses the
	// host's CPU count.
	MaxCPU float64
	// MemoryHighBytes, when positive, is written to memory.high while a
	// cgroup is throttled (soft limit: the kernel reclaims aggressively
	// above it instead of OOM-killing) and reset to "max" on full resume.
	MemoryHighBytes int64
	// Kill is the degradation path: when a control file becomes
	// unwritable for a reason other than a vanished cgroup, the actuator
	// falls back to signalling the cgroup's member PIDs directly
	// (SIGSTOP/SIGCONT — the paper's prototype mechanism). Nil uses
	// syscall.Kill.
	Kill func(pid int, sig syscall.Signal) error
	// Logf receives degradation notices ("cgroup x unwritable, falling
	// back to SIGSTOP"); nil discards them.
	Logf func(format string, args ...any)
	// WriteRetries is how many times a failed control-file write is
	// retried before degrading to SIGSTOP (transient EIO on cgroupfs is
	// common under memory pressure). 0 uses the default of 2; negative
	// disables retries.
	WriteRetries int
	// RetryBackoff is the base delay before the first retry; each
	// subsequent retry doubles it, with up to 50% random jitter added so
	// many throttled cgroups don't retry in lockstep. 0 uses 10ms.
	RetryBackoff time.Duration
	// Sleep replaces time.Sleep between retries (tests inject a recorder
	// here to assert the backoff schedule without waiting it out).
	Sleep func(time.Duration)
}

func (c *ActuatorConfig) applyDefaults() {
	if c.CPUPeriodUsec <= 0 {
		c.CPUPeriodUsec = 100000
	}
	if c.MaxCPU <= 0 {
		c.MaxCPU = float64(runtime.NumCPU())
	}
	if c.Kill == nil {
		c.Kill = syscall.Kill
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.WriteRetries == 0 {
		c.WriteRetries = 2
	}
	if c.WriteRetries < 0 {
		c.WriteRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
}

// Actuator drives batch cgroups through cgroup v2 control files. IDs are
// cgroup directory paths relative to the Cgroupfs root. It implements
// throttle.GradedActuator: Pause/Resume via cgroup.freeze, SetLevel via
// cpu.max quotas, with memory.high soft limits alongside both.
//
// Robustness contract: a vanished cgroup (fs.ErrNotExist) is vacuous
// success — the workload is gone, there is nothing left to throttle, and
// erroring would wedge the controller (mirroring the ESRCH handling of
// throttle.ProcessActuator). Any other failure degrades to SIGSTOP/
// SIGCONT of the cgroup's member processes so the control loop keeps
// actuating even on a read-only or misconfigured cgroupfs.
type Actuator struct {
	fs  Cgroupfs
	cfg ActuatorConfig
	rng *rand.Rand // retry jitter; reproducible so tests can assert the schedule
}

var _ throttle.GradedActuator = (*Actuator)(nil)

// NewActuator returns an actuator over the given cgroup filesystem.
func NewActuator(cfs Cgroupfs, cfg ActuatorConfig) (*Actuator, error) {
	if cfs == nil {
		return nil, fmt.Errorf("cgroup: nil Cgroupfs")
	}
	cfg.applyDefaults()
	return &Actuator{fs: cfs, cfg: cfg, rng: rand.New(rand.NewSource(1))}, nil
}

// Pause freezes every cgroup (cgroup.freeze = 1) and applies the
// configured memory.high soft limit.
func (a *Actuator) Pause(ids []string) error {
	var firstErr error
	for _, id := range ids {
		if err := a.write(id, "cgroup.freeze", "1", syscall.SIGSTOP); err != nil && firstErr == nil {
			firstErr = err
		}
		a.applyMemoryHigh(id, true)
	}
	return firstErr
}

// Resume thaws every cgroup, removes its CPU quota and resets
// memory.high.
func (a *Actuator) Resume(ids []string) error {
	var firstErr error
	for _, id := range ids {
		if err := a.write(id, "cgroup.freeze", "0", syscall.SIGCONT); err != nil && firstErr == nil {
			firstErr = err
		}
		// Clearing the quota must not leave a stale limit behind a thaw;
		// failures here degrade silently (the freeze bit is the load-
		// bearing control).
		a.writeBestEffort(id, "cpu.max", fmt.Sprintf("max %d", a.cfg.CPUPeriodUsec))
		a.applyMemoryHigh(id, false)
	}
	return firstErr
}

// SetLevel caps every cgroup at the fraction level of the MaxCPU
// allowance via cpu.max. Level >= 1 removes the limit.
func (a *Actuator) SetLevel(ids []string, level float64) error {
	value := fmt.Sprintf("max %d", a.cfg.CPUPeriodUsec)
	throttled := level < 1
	if throttled {
		quota := int(level * a.cfg.MaxCPU * float64(a.cfg.CPUPeriodUsec))
		// The kernel rejects quotas below 1ms.
		if quota < 1000 {
			quota = 1000
		}
		value = fmt.Sprintf("%d %d", quota, a.cfg.CPUPeriodUsec)
	}
	var firstErr error
	for _, id := range ids {
		// Degrading a failed quota write to SIGSTOP is deliberately
		// conservative: when the limit cannot be applied, protecting the
		// sensitive application outranks batch progress.
		sig := syscall.SIGSTOP
		if !throttled {
			sig = syscall.SIGCONT
		}
		if err := a.write(id, "cpu.max", value, sig); err != nil && firstErr == nil {
			firstErr = err
		}
		a.applyMemoryHigh(id, throttled)
	}
	return firstErr
}

// Probe verifies a cgroup is present and actuable by rewriting
// cgroup.freeze with its current value. It returns nil when actuation
// will use cgroup controls, and an error describing why actuation would
// degrade to SIGSTOP otherwise.
func (a *Actuator) Probe(id string) error {
	data, err := a.fs.ReadFile(controlFile(id, "cgroup.freeze"))
	if err != nil {
		return fmt.Errorf("cgroup: probe %s: %w", id, err)
	}
	value := strings.TrimSpace(string(data))
	if value == "" {
		value = "0"
	}
	if err := a.fs.WriteFile(controlFile(id, "cgroup.freeze"), []byte(value+"\n")); err != nil {
		return fmt.Errorf("cgroup: probe write %s: %w", id, err)
	}
	return nil
}

// writeRetrying attempts one control-file write, retrying transient
// failures with jittered exponential backoff. A vanished cgroup
// (fs.ErrNotExist) is never retried — the workload is gone, not flaky.
func (a *Actuator) writeRetrying(id, file, value string) error {
	name := controlFile(id, file)
	data := []byte(value + "\n")
	var err error
	for attempt := 0; ; attempt++ {
		err = a.fs.WriteFile(name, data)
		if err == nil || errors.Is(err, fs.ErrNotExist) || attempt >= a.cfg.WriteRetries {
			return err
		}
		delay := a.cfg.RetryBackoff << attempt
		delay += time.Duration(a.rng.Int63n(int64(delay)/2 + 1))
		a.cfg.Logf("cgroup: %s transient write error (%v), retry %d/%d in %v",
			name, err, attempt+1, a.cfg.WriteRetries, delay)
		a.cfg.Sleep(delay)
	}
}

// write drives one control file, degrading to per-PID signalling on
// non-vanished failures that survive the retry budget.
func (a *Actuator) write(id, file, value string, fallbackSig syscall.Signal) error {
	if !a.fs.Exists(id) {
		// Vanished cgroup: vacuous success.
		return nil
	}
	err := a.writeRetrying(id, file, value)
	if err == nil || errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	a.cfg.Logf("cgroup: %s/%s unwritable (%v), degrading to signal %v", id, file, err, fallbackSig)
	if sigErr := a.signalMembers(id, fallbackSig); sigErr != nil {
		return fmt.Errorf("cgroup: write %s/%s: %v; signal fallback: %w", id, file, err, sigErr)
	}
	return nil
}

// writeBestEffort drives a non-critical control file, swallowing
// failures (vanished cgroups included).
func (a *Actuator) writeBestEffort(id, file, value string) {
	if !a.fs.Exists(id) {
		return
	}
	if err := a.writeRetrying(id, file, value); err != nil &&
		!errors.Is(err, fs.ErrNotExist) {
		a.cfg.Logf("cgroup: %s/%s unwritable (%v), ignoring", id, file, err)
	}
}

// applyMemoryHigh sets or clears the memory.high soft limit; best effort.
func (a *Actuator) applyMemoryHigh(id string, throttled bool) {
	if a.cfg.MemoryHighBytes <= 0 {
		return
	}
	value := "max"
	if throttled {
		value = strconv.FormatInt(a.cfg.MemoryHighBytes, 10)
	}
	a.writeBestEffort(id, "memory.high", value)
}

// signalMembers sends sig to every PID in the cgroup — the SIGSTOP
// degradation path. A vanished cgroup or vanished member is vacuous
// success.
func (a *Actuator) signalMembers(id string, sig syscall.Signal) error {
	pids, err := a.MemberPIDs(id)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	var firstErr error
	for _, pid := range pids {
		if err := a.cfg.Kill(pid, sig); err != nil && !errors.Is(err, syscall.ESRCH) && firstErr == nil {
			firstErr = fmt.Errorf("signal %v to pid %d: %w", sig, pid, err)
		}
	}
	return firstErr
}

// MemberPIDs reads a cgroup's cgroup.procs.
func (a *Actuator) MemberPIDs(id string) ([]int, error) {
	data, err := a.fs.ReadFile(controlFile(id, "cgroup.procs"))
	if err != nil {
		return nil, err
	}
	var pids []int
	for _, line := range strings.Fields(string(data)) {
		pid, err := strconv.Atoi(line)
		if err != nil || pid <= 0 {
			continue
		}
		pids = append(pids, pid)
	}
	return pids, nil
}

// controlFile joins a cgroup directory and one of its control files.
func controlFile(id, file string) string {
	return strings.TrimSuffix(id, "/") + "/" + file
}
