package cgroup

import (
	"fmt"
	"io/fs"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// FakeFS is an in-memory cgroup v2 hierarchy for tests: no root, no
// kernel, deterministic. It supports the failure injections the actuator
// and collector must survive — a read-only filesystem and cgroups that
// vanish mid-run. Safe for concurrent use.
type FakeFS struct {
	mu       sync.Mutex
	files    map[string]string // control file path -> content
	dirs     map[string]bool   // cgroup directory paths
	readOnly bool
	writes   []FakeWrite
}

// FakeWrite is one recorded WriteFile call.
type FakeWrite struct {
	Name string
	Data string
}

var _ Cgroupfs = (*FakeFS)(nil)

// NewFakeFS returns an empty fake hierarchy.
func NewFakeFS() *FakeFS {
	return &FakeFS{files: make(map[string]string), dirs: make(map[string]bool)}
}

// AddCgroup creates a cgroup directory with the standard v2 control
// files: an unfrozen cgroup.freeze, an unlimited cpu.max and memory.high,
// zeroed cpu.stat / memory.current / io.stat, and the given member PIDs
// in cgroup.procs.
func (f *FakeFS) AddCgroup(dir string, pids ...int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = path.Clean(dir)
	f.dirs[dir] = true
	var procs strings.Builder
	for _, pid := range pids {
		fmt.Fprintf(&procs, "%d\n", pid)
	}
	f.files[dir+"/cgroup.procs"] = procs.String()
	f.files[dir+"/cgroup.freeze"] = "0\n"
	f.files[dir+"/cpu.max"] = "max 100000\n"
	f.files[dir+"/memory.high"] = "max\n"
	f.files[dir+"/cpu.stat"] = "usage_usec 0\nuser_usec 0\nsystem_usec 0\n"
	f.files[dir+"/memory.current"] = "0\n"
	f.files[dir+"/io.stat"] = ""
}

// Set overwrites one control file's content without logging a write (the
// "kernel side" of the fake, e.g. advancing cpu.stat between samples).
func (f *FakeFS) Set(name, content string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[path.Clean(name)] = content
}

// Remove deletes a cgroup directory and everything under it — the
// vanished-cgroup case (rmdir by an orchestrator, container exit).
func (f *FakeFS) Remove(dir string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir = path.Clean(dir)
	delete(f.dirs, dir)
	for name := range f.files {
		if strings.HasPrefix(name, dir+"/") {
			delete(f.files, name)
		}
	}
}

// SetReadOnly toggles write failures: every WriteFile returns EROFS, the
// signature of a cgroupfs mounted read-only (or one the daemon lacks
// permission to drive).
func (f *FakeFS) SetReadOnly(ro bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readOnly = ro
}

// ReadFile implements Cgroupfs.
func (f *FakeFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	content, ok := f.files[path.Clean(name)]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return []byte(content), nil
}

// WriteFile implements Cgroupfs.
func (f *FakeFS) WriteFile(name string, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = path.Clean(name)
	if f.readOnly {
		return &fs.PathError{Op: "write", Path: name, Err: syscall.EROFS}
	}
	if _, ok := f.files[name]; !ok {
		return &fs.PathError{Op: "write", Path: name, Err: fs.ErrNotExist}
	}
	f.files[name] = string(data)
	f.writes = append(f.writes, FakeWrite{Name: name, Data: string(data)})
	return nil
}

// Exists implements Cgroupfs.
func (f *FakeFS) Exists(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	name = path.Clean(name)
	if f.dirs[name] {
		return true
	}
	_, ok := f.files[name]
	return ok
}

// Contents returns a control file's current content.
func (f *FakeFS) Contents(name string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.files[path.Clean(name)]
	return c, ok
}

// Writes returns all recorded WriteFile calls in order.
func (f *FakeFS) Writes() []FakeWrite {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FakeWrite(nil), f.writes...)
}

// Cgroups lists the existing cgroup directories, sorted.
func (f *FakeFS) Cgroups() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.dirs))
	for d := range f.dirs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// SetPIDs replaces a cgroup's member PIDs.
func (f *FakeFS) SetPIDs(dir string, pids ...int) {
	var procs strings.Builder
	for _, pid := range pids {
		procs.WriteString(strconv.Itoa(pid))
		procs.WriteByte('\n')
	}
	f.Set(path.Clean(dir)+"/cgroup.procs", procs.String())
}
