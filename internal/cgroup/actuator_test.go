package cgroup

import (
	"strings"
	"syscall"
	"testing"
)

func newTestActuator(t *testing.T, cfg ActuatorConfig) (*Actuator, *FakeFS) {
	t.Helper()
	fs := NewFakeFS()
	fs.AddCgroup("stayaway/batch", 101, 102)
	a, err := NewActuator(fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, fs
}

func freezeState(t *testing.T, fs *FakeFS, dir string) string {
	t.Helper()
	c, ok := fs.Contents(dir + "/cgroup.freeze")
	if !ok {
		t.Fatalf("%s/cgroup.freeze missing", dir)
	}
	return strings.TrimSpace(c)
}

func TestActuatorFreezeThaw(t *testing.T) {
	a, fs := newTestActuator(t, ActuatorConfig{})
	if err := a.Pause([]string{"stayaway/batch"}); err != nil {
		t.Fatal(err)
	}
	if got := freezeState(t, fs, "stayaway/batch"); got != "1" {
		t.Errorf("cgroup.freeze = %q, want 1", got)
	}
	if err := a.Resume([]string{"stayaway/batch"}); err != nil {
		t.Fatal(err)
	}
	if got := freezeState(t, fs, "stayaway/batch"); got != "0" {
		t.Errorf("cgroup.freeze = %q, want 0", got)
	}
	// Resume also clears any CPU quota.
	if c, _ := fs.Contents("stayaway/batch/cpu.max"); !strings.HasPrefix(c, "max ") {
		t.Errorf("cpu.max after resume = %q, want max", c)
	}
}

func TestActuatorQuotaSteps(t *testing.T) {
	a, fs := newTestActuator(t, ActuatorConfig{MaxCPU: 4, CPUPeriodUsec: 100000})
	tests := []struct {
		level float64
		want  string
	}{
		{0.75, "300000 100000\n"}, // 0.75 × 4 cores × 100ms
		{0.5, "200000 100000\n"},
		{0.25, "100000 100000\n"},
		{0.001, "1000 100000\n"}, // clamped at the kernel's 1ms floor
		{1, "max 100000\n"},
	}
	for _, tt := range tests {
		if err := a.SetLevel([]string{"stayaway/batch"}, tt.level); err != nil {
			t.Fatal(err)
		}
		if got, _ := fs.Contents("stayaway/batch/cpu.max"); got != tt.want {
			t.Errorf("SetLevel(%v): cpu.max = %q, want %q", tt.level, got, tt.want)
		}
	}
}

func TestActuatorMemoryHighSoftLimit(t *testing.T) {
	a, fs := newTestActuator(t, ActuatorConfig{MemoryHighBytes: 512 << 20})
	if err := a.SetLevel([]string{"stayaway/batch"}, 0.5); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.Contents("stayaway/batch/memory.high"); strings.TrimSpace(got) != "536870912" {
		t.Errorf("memory.high while throttled = %q, want 536870912", got)
	}
	if err := a.Resume([]string{"stayaway/batch"}); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.Contents("stayaway/batch/memory.high"); strings.TrimSpace(got) != "max" {
		t.Errorf("memory.high after resume = %q, want max", got)
	}
}

func TestActuatorVanishedCgroupIsVacuousSuccess(t *testing.T) {
	a, fs := newTestActuator(t, ActuatorConfig{
		Kill: func(int, syscall.Signal) error { t.Error("must not signal for a vanished cgroup"); return nil },
	})
	fs.Remove("stayaway/batch")
	if err := a.Pause([]string{"stayaway/batch"}); err != nil {
		t.Errorf("pause of vanished cgroup = %v, want nil", err)
	}
	if err := a.Resume([]string{"stayaway/batch"}); err != nil {
		t.Errorf("resume of vanished cgroup = %v, want nil", err)
	}
	if err := a.SetLevel([]string{"stayaway/batch"}, 0.5); err != nil {
		t.Errorf("SetLevel of vanished cgroup = %v, want nil", err)
	}
}

func TestActuatorReadOnlyFSDegradesToSignals(t *testing.T) {
	type sent struct {
		pid int
		sig syscall.Signal
	}
	var signals []sent
	var logged []string
	a, fs := newTestActuator(t, ActuatorConfig{
		Kill: func(pid int, sig syscall.Signal) error {
			signals = append(signals, sent{pid, sig})
			return nil
		},
		Logf: func(format string, args ...any) { logged = append(logged, format) },
	})
	fs.SetReadOnly(true)

	if err := a.Pause([]string{"stayaway/batch"}); err != nil {
		t.Fatalf("pause should degrade, not fail: %v", err)
	}
	want := []sent{{101, syscall.SIGSTOP}, {102, syscall.SIGSTOP}}
	if len(signals) != len(want) {
		t.Fatalf("signals = %v, want %v", signals, want)
	}
	for i := range want {
		if signals[i] != want[i] {
			t.Errorf("signal %d = %v, want %v", i, signals[i], want[i])
		}
	}
	if len(logged) == 0 {
		t.Error("degradation should be logged")
	}

	signals = nil
	if err := a.Resume([]string{"stayaway/batch"}); err != nil {
		t.Fatalf("resume should degrade, not fail: %v", err)
	}
	if len(signals) != 2 || signals[0].sig != syscall.SIGCONT {
		t.Errorf("resume signals = %v, want SIGCONT to both", signals)
	}

	// A failed quota write degrades conservatively to SIGSTOP.
	signals = nil
	if err := a.SetLevel([]string{"stayaway/batch"}, 0.5); err != nil {
		t.Fatalf("SetLevel should degrade, not fail: %v", err)
	}
	if len(signals) != 2 || signals[0].sig != syscall.SIGSTOP {
		t.Errorf("SetLevel signals = %v, want SIGSTOP to both", signals)
	}
	// And clearing the level degrades to SIGCONT.
	signals = nil
	if err := a.SetLevel([]string{"stayaway/batch"}, 1); err != nil {
		t.Fatalf("SetLevel(1) should degrade, not fail: %v", err)
	}
	if len(signals) != 2 || signals[0].sig != syscall.SIGCONT {
		t.Errorf("SetLevel(1) signals = %v, want SIGCONT to both", signals)
	}
}

func TestActuatorSignalFallbackErrorPropagates(t *testing.T) {
	a, fs := newTestActuator(t, ActuatorConfig{
		Kill: func(pid int, sig syscall.Signal) error {
			if pid == 101 {
				return syscall.EPERM
			}
			return nil
		},
	})
	fs.SetReadOnly(true)
	if err := a.Pause([]string{"stayaway/batch"}); err == nil {
		t.Error("failed write + failed fallback should surface an error")
	}
}

func TestActuatorESRCHInFallbackTolerated(t *testing.T) {
	a, fs := newTestActuator(t, ActuatorConfig{
		Kill: func(int, syscall.Signal) error { return syscall.ESRCH },
	})
	fs.SetReadOnly(true)
	if err := a.Pause([]string{"stayaway/batch"}); err != nil {
		t.Errorf("ESRCH during fallback = %v, want nil (vacuous)", err)
	}
}

func TestActuatorProbe(t *testing.T) {
	a, fs := newTestActuator(t, ActuatorConfig{})
	if err := a.Probe("stayaway/batch"); err != nil {
		t.Errorf("probe of healthy cgroup = %v", err)
	}
	// The probe must not change the freeze state.
	if got := freezeState(t, fs, "stayaway/batch"); got != "0" {
		t.Errorf("freeze state after probe = %q", got)
	}
	fs.SetReadOnly(true)
	if err := a.Probe("stayaway/batch"); err == nil {
		t.Error("probe of read-only cgroupfs should error")
	}
	fs.SetReadOnly(false)
	fs.Remove("stayaway/batch")
	if err := a.Probe("stayaway/batch"); err == nil {
		t.Error("probe of vanished cgroup should error")
	}
}

func TestMemberPIDs(t *testing.T) {
	a, fs := newTestActuator(t, ActuatorConfig{})
	pids, err := a.MemberPIDs("stayaway/batch")
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) != 2 || pids[0] != 101 || pids[1] != 102 {
		t.Errorf("pids = %v, want [101 102]", pids)
	}
	fs.SetPIDs("stayaway/batch") // emptied
	pids, err = a.MemberPIDs("stayaway/batch")
	if err != nil || len(pids) != 0 {
		t.Errorf("pids = %v, %v, want empty", pids, err)
	}
}

func TestNewActuatorValidation(t *testing.T) {
	if _, err := NewActuator(nil, ActuatorConfig{}); err == nil {
		t.Error("nil fs should error")
	}
}
