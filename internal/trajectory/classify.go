package trajectory

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// Walk classification. §3.2.3 observes that different co-locations follow
// different movement models: "co-located execution mode may show
// characteristics of a Biased Random Walk whereas for a different
// combination, the execution mode may follow the trajectory model of levy
// flight. Levy flight trajectories were observed for applications that
// experience sudden phase changes." The classifier labels a step window
// with the best-matching family; the runtime uses it only for reporting
// and figures (prediction itself is purely empirical).

// WalkKind is a trajectory family.
type WalkKind int

const (
	// WalkUnknown: too few steps to classify.
	WalkUnknown WalkKind = iota
	// WalkDirected: consistent orientation with regular step lengths —
	// the paper's description of Soplex ("linear trajectory with a
	// consistent orientation and slightly varying step length").
	WalkDirected
	// WalkOscillating: successive steps reverse direction — the paper's
	// co-located execution ("an oscillating trajectory with bigger step
	// lengths").
	WalkOscillating
	// WalkLevyFlight: heavy-tailed step lengths (rare long jumps among
	// short moves), typical of sudden phase changes.
	WalkLevyFlight
	// WalkBiasedRandom: skewed but neither directed nor oscillating — a
	// biased random walk.
	WalkBiasedRandom
)

// String names the walk kind.
func (k WalkKind) String() string {
	switch k {
	case WalkDirected:
		return "directed"
	case WalkOscillating:
		return "oscillating"
	case WalkLevyFlight:
		return "levy-flight"
	case WalkBiasedRandom:
		return "biased-random-walk"
	default:
		return "unknown"
	}
}

// Classification carries the label and its supporting evidence.
type Classification struct {
	Kind WalkKind
	// DirectionConcentration is the mean resultant length R̄ of absolute
	// angles (1 = perfectly directed).
	DirectionConcentration float64
	// ReversalConcentration is R̄ of turning angles shifted by π: near 1
	// when successive steps reverse.
	ReversalConcentration float64
	// TailRatio is max step length over the median step length: large
	// values indicate heavy (Lévy-like) tails.
	TailRatio float64
}

// Classification thresholds, calibrated on the synthetic generators in the
// tests: directed walks exceed directedThreshold in R̄; oscillating walks
// exceed reversalThreshold on reversed turning angles; Lévy tails show a
// max/median step ratio above tailThreshold.
const (
	directedThreshold = 0.8
	reversalThreshold = 0.8
	tailThreshold     = 8.0
	minClassifySteps  = 8
)

// Classify labels a step window.
func Classify(steps []Step) Classification {
	var angles []float64
	var dists []float64
	for _, s := range steps {
		if s.Distance > 0 {
			angles = append(angles, s.Angle)
			dists = append(dists, s.Distance)
		}
	}
	out := Classification{Kind: WalkUnknown}
	if len(dists) < minClassifySteps {
		return out
	}
	out.DirectionConcentration = stats.MeanResultantLength(angles)

	// A turning angle near ±π means reversal; shifting by π maps reversals
	// near 0 so the resultant length measures their concentration.
	turns := TurningAngles(steps)
	shifted := make([]float64, len(turns))
	for i, a := range turns {
		shifted[i] = stats.NormalizeAngle(a + math.Pi)
	}
	out.ReversalConcentration = stats.MeanResultantLength(shifted)

	sorted := append([]float64(nil), dists...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	maxd := sorted[len(sorted)-1]
	if median > 0 {
		out.TailRatio = maxd / median
	}

	switch {
	case out.TailRatio >= tailThreshold:
		out.Kind = WalkLevyFlight
	case out.DirectionConcentration >= directedThreshold:
		out.Kind = WalkDirected
	case out.ReversalConcentration >= reversalThreshold:
		out.Kind = WalkOscillating
	default:
		out.Kind = WalkBiasedRandom
	}
	return out
}
