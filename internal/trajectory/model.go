package trajectory

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mds"
	"repro/internal/stats"
)

// ModelConfig tunes a per-mode trajectory model.
type ModelConfig struct {
	// MaxStep is the largest step length representable in the distance
	// histogram. Steps beyond it clamp into the top bin. In a normalized
	// metric space with extent ~1 per dimension, 2.0 is generous.
	MaxStep float64
	// DistanceBins and AngleBins set histogram granularity.
	DistanceBins int
	AngleBins    int
	// MinObservations is how many steps must be seen before the model
	// trusts its histograms; below it, sampling falls back to bootstrap
	// resampling of the raw steps observed so far.
	MinObservations int
	// Window bounds how many recent raw steps are retained for the
	// bootstrap fallback and the walk classifier.
	Window int
}

// DefaultModelConfig returns the configuration used by the prototype.
func DefaultModelConfig() ModelConfig {
	return ModelConfig{
		MaxStep:         2.0,
		DistanceBins:    32,
		AngleBins:       36, // 10° resolution
		MinObservations: 8,
		Window:          128,
	}
}

func (c ModelConfig) validate() error {
	if c.MaxStep <= 0 {
		return fmt.Errorf("trajectory: MaxStep must be positive, got %v", c.MaxStep)
	}
	if c.DistanceBins < 1 || c.AngleBins < 1 {
		return fmt.Errorf("trajectory: bins must be positive, got %d/%d", c.DistanceBins, c.AngleBins)
	}
	if c.MinObservations < 1 {
		return fmt.Errorf("trajectory: MinObservations must be positive, got %d", c.MinObservations)
	}
	if c.Window < 2 {
		return fmt.Errorf("trajectory: Window must be at least 2, got %d", c.Window)
	}
	return nil
}

// Model is the empirical trajectory model for one execution mode: the pdfs
// of step distance and absolute angle, estimated as histograms (§3.2.3).
type Model struct {
	cfg       ModelConfig
	distHist  *stats.Histogram
	angleHist *stats.Histogram
	recent    []Step // ring of most recent steps, oldest first
	count     int    // total steps observed
}

// NewModel returns an empty model for one execution mode.
func NewModel(cfg ModelConfig) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dh, err := stats.NewHistogram(0, cfg.MaxStep, cfg.DistanceBins)
	if err != nil {
		return nil, err
	}
	ah, err := stats.NewHistogram(-math.Pi, math.Pi, cfg.AngleBins)
	if err != nil {
		return nil, err
	}
	return &Model{cfg: cfg, distHist: dh, angleHist: ah}, nil
}

// Observe records one step.
func (m *Model) Observe(s Step) {
	m.distHist.Add(s.Distance)
	if s.Distance > 0 {
		// Zero-length steps carry no direction; feeding their
		// conventional angle 0 would bias the angle pdf.
		m.angleHist.Add(s.Angle)
	}
	if len(m.recent) == m.cfg.Window {
		copy(m.recent, m.recent[1:])
		m.recent[len(m.recent)-1] = s
	} else {
		m.recent = append(m.recent, s)
	}
	m.count++
}

// Count returns how many steps the model has observed.
func (m *Model) Count() int { return m.count }

// Ready reports whether enough steps have been seen to trust the
// histograms.
func (m *Model) Ready() bool { return m.count >= m.cfg.MinObservations }

// Recent returns a copy of the retained recent steps, oldest first.
func (m *Model) Recent() []Step { return append([]Step(nil), m.recent...) }

// SampleStep draws one (d, α) pair: inverse-transform sampling from the
// histograms once the model is Ready, bootstrap resampling of raw steps
// before that, and a conservative zero step with no history at all.
func (m *Model) SampleStep(rng *rand.Rand) Step {
	if m.count == 0 {
		return Step{}
	}
	if !m.Ready() {
		return m.recent[rng.Intn(len(m.recent))]
	}
	d := m.distHist.InverseCDF(rng.Float64())
	a := m.angleHist.InverseCDF(rng.Float64())
	return Step{Distance: d, Angle: stats.NormalizeAngle(a)}
}

// PredictFrom generates n candidate future positions from cur: "a random
// set of samples are then generated following the histogram using the
// inverse transform method... this allows us to predict a set of new
// states around the current state and models the uncertainty in the likely
// position of the future state" (§3.2.3).
func (m *Model) PredictFrom(cur mds.Coord, rng *rand.Rand, n int) []mds.Coord {
	out := make([]mds.Coord, n)
	for i := range out {
		out[i] = m.SampleStep(rng).Destination(cur)
	}
	return out
}

// DistancePDF exposes the smoothed step-length density for figures
// (Fig 5's per-mode pdf plots).
func (m *Model) DistancePDF(points int) (xs, ys []float64) {
	k := stats.NewKDEFromHistogram(m.distHist, 0)
	return k.Grid(0, m.cfg.MaxStep, points)
}

// AnglePDF exposes the smoothed angle density for figures.
func (m *Model) AnglePDF(points int) (xs, ys []float64) {
	k := stats.NewKDEFromHistogram(m.angleHist, 0)
	return k.Grid(-math.Pi, math.Pi, points)
}

// Bias reports the skew indices of the distance and angle histograms. The
// paper: "the skew in the distribution indicates that the trajectory is
// biased and not random... this helps model the prediction with high
// accuracy."
func (m *Model) Bias() (distSkew, angleSkew float64) {
	return m.distHist.SkewIndex(), m.angleHist.SkewIndex()
}

// ModeModels dispatches observations and predictions to the per-mode model
// matching the current execution mode. SingleModel collapses all modes
// into one model — the configuration the paper reports as inaccurate,
// retained for the ablation benchmark.
type ModeModels struct {
	cfg         ModelConfig
	models      [NumModes]*Model
	singleModel bool
}

// NewModeModels builds one model per execution mode.
func NewModeModels(cfg ModelConfig) (*ModeModels, error) {
	mm := &ModeModels{cfg: cfg}
	for i := range mm.models {
		m, err := NewModel(cfg)
		if err != nil {
			return nil, err
		}
		mm.models[i] = m
	}
	return mm, nil
}

// NewSingleModel builds the ablation variant where every mode shares one
// model.
func NewSingleModel(cfg ModelConfig) (*ModeModels, error) {
	mm, err := NewModeModels(cfg)
	if err != nil {
		return nil, err
	}
	mm.singleModel = true
	return mm, nil
}

// Observe records a step under the given mode.
func (mm *ModeModels) Observe(mode Mode, s Step) error {
	m, err := mm.ModelFor(mode)
	if err != nil {
		return err
	}
	m.Observe(s)
	return nil
}

// ModelFor returns the model serving the given mode.
func (mm *ModeModels) ModelFor(mode Mode) (*Model, error) {
	if !mode.Valid() {
		return nil, fmt.Errorf("trajectory: invalid mode %v", mode)
	}
	if mm.singleModel {
		return mm.models[0], nil
	}
	return mm.models[mode], nil
}

// PredictFrom samples n candidate future positions under the given mode.
func (mm *ModeModels) PredictFrom(mode Mode, cur mds.Coord, rng *rand.Rand, n int) ([]mds.Coord, error) {
	m, err := mm.ModelFor(mode)
	if err != nil {
		return nil, err
	}
	return m.PredictFrom(cur, rng, n), nil
}
