// Package trajectory models the temporal evolution of mapped states
// (§3.2.3): steps between successive 2-D positions are summarized per
// execution mode by histograms of step distance d and absolute angle α;
// inverse-transform sampling over those histograms generates candidate
// future states; and a walk classifier distinguishes the characteristic
// trajectory shapes the paper observes (directed Soplex-like movement,
// oscillating co-located execution, Lévy-flight phase jumpers).
package trajectory

import "fmt"

// Mode is one of the four execution modes of §3.2.3. "At any point in
// time, one of these 4 execution modes hold true", and each mode gets its
// own prediction model because a single global model "fails to capture the
// inherent patterns and sequence specific to each execution mode".
type Mode int

const (
	// ModeIdle: no application is running.
	ModeIdle Mode = iota
	// ModeBatchOnly: only batch application(s) run.
	ModeBatchOnly
	// ModeSensitiveOnly: only the latency-sensitive application runs
	// (including periods where batch applications are throttled).
	ModeSensitiveOnly
	// ModeColocated: both sensitive and batch applications execute.
	ModeColocated

	// NumModes is the number of distinct execution modes.
	NumModes = 4
)

// String returns a short mode name.
func (m Mode) String() string {
	switch m {
	case ModeIdle:
		return "idle"
	case ModeBatchOnly:
		return "batch-only"
	case ModeSensitiveOnly:
		return "sensitive-only"
	case ModeColocated:
		return "co-located"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined modes.
func (m Mode) Valid() bool { return m >= ModeIdle && m < NumModes }

// DetectMode derives the execution mode from which application classes are
// actively running. The Stay-Away runtime is the middleware managing the
// containers, so it "can any time determine the current execution mode the
// system is in".
func DetectMode(sensitiveActive, batchActive bool) Mode {
	switch {
	case sensitiveActive && batchActive:
		return ModeColocated
	case sensitiveActive:
		return ModeSensitiveOnly
	case batchActive:
		return ModeBatchOnly
	default:
		return ModeIdle
	}
}
