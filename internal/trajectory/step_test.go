package trajectory

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mds"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStepBetween(t *testing.T) {
	tests := []struct {
		name     string
		from, to mds.Coord
		wantD    float64
		wantA    float64
	}{
		{"east", mds.Coord{}, mds.Coord{X: 2}, 2, 0},
		{"north", mds.Coord{}, mds.Coord{Y: 3}, 3, math.Pi / 2},
		{"west", mds.Coord{}, mds.Coord{X: -1}, 1, -math.Pi},
		{"diagonal", mds.Coord{X: 1, Y: 1}, mds.Coord{X: 2, Y: 2}, math.Sqrt2, math.Pi / 4},
		{"zero", mds.Coord{X: 5, Y: 5}, mds.Coord{X: 5, Y: 5}, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := StepBetween(tt.from, tt.to)
			if !almostEqual(s.Distance, tt.wantD, 1e-12) {
				t.Errorf("distance = %v, want %v", s.Distance, tt.wantD)
			}
			if !almostEqual(s.Angle, tt.wantA, 1e-12) {
				t.Errorf("angle = %v, want %v", s.Angle, tt.wantA)
			}
		})
	}
}

// Property: Destination inverts StepBetween.
func TestStepRoundTripProperty(t *testing.T) {
	f := func(fx, fy, tx, ty int16) bool {
		from := mds.Coord{X: float64(fx) / 100, Y: float64(fy) / 100}
		to := mds.Coord{X: float64(tx) / 100, Y: float64(ty) / 100}
		s := StepBetween(from, to)
		got := s.Destination(from)
		return got.Dist(to) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExtractSteps(t *testing.T) {
	if got := ExtractSteps(nil); got != nil {
		t.Errorf("nil path steps = %v", got)
	}
	if got := ExtractSteps([]mds.Coord{{X: 1}}); got != nil {
		t.Errorf("single-point path steps = %v", got)
	}
	path := []mds.Coord{{}, {X: 1}, {X: 1, Y: 1}}
	steps := ExtractSteps(path)
	if len(steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(steps))
	}
	if !almostEqual(steps[0].Angle, 0, 1e-12) || !almostEqual(steps[1].Angle, math.Pi/2, 1e-12) {
		t.Errorf("angles = %v, %v", steps[0].Angle, steps[1].Angle)
	}
}

func TestTurningAngles(t *testing.T) {
	// Right-angle turns: east, north, west.
	path := []mds.Coord{{}, {X: 1}, {X: 1, Y: 1}, {Y: 1}}
	turns := TurningAngles(ExtractSteps(path))
	if len(turns) != 2 {
		t.Fatalf("turns = %d, want 2", len(turns))
	}
	for i, a := range turns {
		if !almostEqual(a, math.Pi/2, 1e-12) {
			t.Errorf("turn %d = %v, want π/2", i, a)
		}
	}
}

func TestTurningAnglesSkipsZeroSteps(t *testing.T) {
	// A pause in place must not inject a spurious direction.
	path := []mds.Coord{{}, {X: 1}, {X: 1}, {X: 2}}
	turns := TurningAngles(ExtractSteps(path))
	if len(turns) != 1 {
		t.Fatalf("turns = %d, want 1", len(turns))
	}
	if !almostEqual(turns[0], 0, 1e-12) {
		t.Errorf("turn = %v, want 0 (straight line)", turns[0])
	}
}

func TestTurningAnglesTooFew(t *testing.T) {
	if got := TurningAngles(nil); got != nil {
		t.Errorf("no steps turns = %v", got)
	}
	if got := TurningAngles([]Step{{Distance: 1}}); got != nil {
		t.Errorf("single step turns = %v", got)
	}
}
