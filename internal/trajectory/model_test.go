package trajectory

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mds"
)

func mustModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelConfigValidation(t *testing.T) {
	base := DefaultModelConfig()
	tests := []struct {
		name   string
		mutate func(*ModelConfig)
	}{
		{"zero MaxStep", func(c *ModelConfig) { c.MaxStep = 0 }},
		{"zero distance bins", func(c *ModelConfig) { c.DistanceBins = 0 }},
		{"zero angle bins", func(c *ModelConfig) { c.AngleBins = 0 }},
		{"zero min obs", func(c *ModelConfig) { c.MinObservations = 0 }},
		{"tiny window", func(c *ModelConfig) { c.Window = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := NewModel(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestModelColdStart(t *testing.T) {
	m := mustModel(t)
	if m.Ready() || m.Count() != 0 {
		t.Fatalf("fresh model ready=%v count=%d", m.Ready(), m.Count())
	}
	s := m.SampleStep(rand.New(rand.NewSource(1)))
	if s.Distance != 0 {
		t.Errorf("cold-start sample = %+v, want zero step", s)
	}
}

func TestModelBootstrapBeforeReady(t *testing.T) {
	m := mustModel(t)
	obs := Step{Distance: 0.5, Angle: 1.0}
	m.Observe(obs)
	m.Observe(Step{Distance: 0.7, Angle: -1.0})
	if m.Ready() {
		t.Fatal("2 observations should not be Ready (min 8)")
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		s := m.SampleStep(rng)
		if s != obs && s != (Step{Distance: 0.7, Angle: -1.0}) {
			t.Fatalf("bootstrap sample %+v not among observations", s)
		}
	}
}

func TestModelHistogramSamplingAfterReady(t *testing.T) {
	m := mustModel(t)
	// Feed a tight distribution: distances ≈0.3, angles ≈π/2.
	for i := 0; i < 50; i++ {
		m.Observe(Step{Distance: 0.3, Angle: math.Pi / 2})
	}
	if !m.Ready() {
		t.Fatal("model should be ready")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		s := m.SampleStep(rng)
		if math.Abs(s.Distance-0.3) > 0.1 {
			t.Errorf("sampled distance %v far from 0.3", s.Distance)
		}
		if math.Abs(s.Angle-math.Pi/2) > 0.2 {
			t.Errorf("sampled angle %v far from π/2", s.Angle)
		}
	}
}

func TestModelZeroStepsDoNotBiasAngles(t *testing.T) {
	m := mustModel(t)
	// Many pauses plus a few eastward moves: the angle pdf must not
	// accumulate mass at 0 from the pauses... (pauses have angle 0 by
	// convention but carry no direction).
	for i := 0; i < 30; i++ {
		m.Observe(Step{})
	}
	for i := 0; i < 10; i++ {
		m.Observe(Step{Distance: 0.2, Angle: math.Pi / 2})
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30; i++ {
		s := m.SampleStep(rng)
		if s.Distance > 0.05 && math.Abs(s.Angle-math.Pi/2) > 0.3 {
			t.Errorf("angle %v should concentrate at π/2", s.Angle)
		}
	}
}

func TestModelWindowBounded(t *testing.T) {
	cfg := DefaultModelConfig()
	cfg.Window = 4
	m, err := NewModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.Observe(Step{Distance: float64(i)})
	}
	recent := m.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d, want 4", len(recent))
	}
	// Oldest retained is step 6.
	if recent[0].Distance != 6 || recent[3].Distance != 9 {
		t.Errorf("recent window = %v", recent)
	}
}

func TestModelPredictFrom(t *testing.T) {
	m := mustModel(t)
	for i := 0; i < 20; i++ {
		m.Observe(Step{Distance: 0.5, Angle: 0}) // always east
	}
	cur := mds.Coord{X: 1, Y: 1}
	preds := m.PredictFrom(cur, rand.New(rand.NewSource(5)), 5)
	if len(preds) != 5 {
		t.Fatalf("predictions = %d, want 5", len(preds))
	}
	for _, p := range preds {
		if p.X <= cur.X {
			t.Errorf("prediction %v should move east of %v", p, cur)
		}
		if math.Abs(p.Y-cur.Y) > 0.2 {
			t.Errorf("prediction %v should stay near y=1", p)
		}
	}
}

func TestModelBias(t *testing.T) {
	m := mustModel(t)
	for i := 0; i < 30; i++ {
		m.Observe(Step{Distance: 1.8, Angle: 3}) // long steps, high angles
	}
	dSkew, aSkew := m.Bias()
	if dSkew <= 0.9 || aSkew <= 0.9 {
		t.Errorf("bias = %v,%v; want strongly positive", dSkew, aSkew)
	}
}

func TestModelPDFExports(t *testing.T) {
	m := mustModel(t)
	for i := 0; i < 20; i++ {
		m.Observe(Step{Distance: 0.4, Angle: 1})
	}
	xs, ys := m.DistancePDF(50)
	if len(xs) != 50 || len(ys) != 50 {
		t.Fatalf("pdf grid = %d,%d", len(xs), len(ys))
	}
	// Density should peak near the observed distance.
	var peakX float64
	var peakY float64
	for i := range xs {
		if ys[i] > peakY {
			peakX, peakY = xs[i], ys[i]
		}
	}
	if math.Abs(peakX-0.4) > 0.2 {
		t.Errorf("distance pdf peak at %v, want ≈0.4", peakX)
	}
	axs, ays := m.AnglePDF(50)
	if len(axs) != 50 || len(ays) != 50 {
		t.Fatalf("angle pdf grid = %d,%d", len(axs), len(ays))
	}
}

func TestModeModelsDispatch(t *testing.T) {
	mm, err := NewModeModels(DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Observe east-moves in co-located mode only.
	for i := 0; i < 20; i++ {
		if err := mm.Observe(ModeColocated, Step{Distance: 0.5, Angle: 0}); err != nil {
			t.Fatal(err)
		}
	}
	colo, err := mm.ModelFor(ModeColocated)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := mm.ModelFor(ModeIdle)
	if err != nil {
		t.Fatal(err)
	}
	if colo.Count() != 20 || idle.Count() != 0 {
		t.Errorf("counts: colocated=%d idle=%d", colo.Count(), idle.Count())
	}
	preds, err := mm.PredictFrom(ModeColocated, mds.Coord{}, rand.New(rand.NewSource(1)), 3)
	if err != nil || len(preds) != 3 {
		t.Errorf("predict: %v, %v", preds, err)
	}
	if err := mm.Observe(Mode(9), Step{}); err == nil {
		t.Error("invalid mode should error")
	}
	if _, err := mm.PredictFrom(Mode(-1), mds.Coord{}, rand.New(rand.NewSource(1)), 1); err == nil {
		t.Error("invalid mode predict should error")
	}
}

func TestSingleModelSharesAcrossModes(t *testing.T) {
	mm, err := NewSingleModel(DefaultModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := mm.Observe(ModeColocated, Step{Distance: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := mm.Observe(ModeIdle, Step{Distance: 0.1}); err != nil {
		t.Fatal(err)
	}
	m, err := mm.ModelFor(ModeSensitiveOnly)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2 {
		t.Errorf("single model count = %d, want 2 (all modes shared)", m.Count())
	}
}

// The paper's rationale for per-mode models: mixing two modes with very
// different trajectories degrades prediction versus per-mode separation.
func TestPerModeBeatsSingleModelOnMixedTrajectories(t *testing.T) {
	cfg := DefaultModelConfig()
	perMode, err := NewModeModels(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := NewSingleModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sensitive-only: tiny steps north. Co-located: long steps east.
	for i := 0; i < 100; i++ {
		sStep := Step{Distance: 0.05, Angle: math.Pi / 2}
		cStep := Step{Distance: 1.0, Angle: 0}
		if err := perMode.Observe(ModeSensitiveOnly, sStep); err != nil {
			t.Fatal(err)
		}
		if err := perMode.Observe(ModeColocated, cStep); err != nil {
			t.Fatal(err)
		}
		if err := single.Observe(ModeSensitiveOnly, sStep); err != nil {
			t.Fatal(err)
		}
		if err := single.Observe(ModeColocated, cStep); err != nil {
			t.Fatal(err)
		}
	}
	// Truth: next sensitive-only step is (0.05, π/2).
	truth := Step{Distance: 0.05, Angle: math.Pi / 2}.Destination(mds.Coord{})
	evalErr := func(mm *ModeModels, seed int64) float64 {
		preds, err := mm.PredictFrom(ModeSensitiveOnly, mds.Coord{}, rand.New(rand.NewSource(seed)), 20)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range preds {
			sum += p.Dist(truth)
		}
		return sum / float64(len(preds))
	}
	pm := evalErr(perMode, 7)
	sm := evalErr(single, 7)
	if pm >= sm {
		t.Errorf("per-mode error %v should beat single-model error %v", pm, sm)
	}
}
