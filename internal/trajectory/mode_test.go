package trajectory

import "testing"

func TestDetectMode(t *testing.T) {
	tests := []struct {
		sensitive, batch bool
		want             Mode
	}{
		{false, false, ModeIdle},
		{false, true, ModeBatchOnly},
		{true, false, ModeSensitiveOnly},
		{true, true, ModeColocated},
	}
	for _, tt := range tests {
		if got := DetectMode(tt.sensitive, tt.batch); got != tt.want {
			t.Errorf("DetectMode(%v,%v) = %v, want %v", tt.sensitive, tt.batch, got, tt.want)
		}
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		ModeIdle:          "idle",
		ModeBatchOnly:     "batch-only",
		ModeSensitiveOnly: "sensitive-only",
		ModeColocated:     "co-located",
	}
	for m, w := range want {
		if got := m.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(m), got, w)
		}
	}
	if Mode(17).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func TestModeValid(t *testing.T) {
	for m := ModeIdle; m < NumModes; m++ {
		if !m.Valid() {
			t.Errorf("mode %v should be valid", m)
		}
	}
	if Mode(-1).Valid() || Mode(NumModes).Valid() {
		t.Error("out-of-range modes should be invalid")
	}
}
