package trajectory

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mds"
)

// Synthetic trajectory generators mirroring the paper's observed families.

func directedWalk(rng *rand.Rand, n int) []Step {
	steps := make([]Step, n)
	for i := range steps {
		steps[i] = Step{
			Distance: 0.4 + rng.Float64()*0.1,       // slightly varying length
			Angle:    0.5 + (rng.Float64()-0.5)*0.1, // consistent orientation
		}
	}
	return steps
}

func oscillatingWalk(rng *rand.Rand, n int) []Step {
	steps := make([]Step, n)
	for i := range steps {
		angle := 0.2
		if i%2 == 1 {
			angle = angle - math.Pi // reverse direction each step
		}
		steps[i] = Step{
			Distance: 0.8 + rng.Float64()*0.2, // bigger step lengths
			Angle:    angle,
		}
	}
	return steps
}

func levyWalk(rng *rand.Rand, n int) []Step {
	steps := make([]Step, n)
	for i := range steps {
		d := 0.05 + rng.Float64()*0.05
		if i%10 == 9 {
			d = 1.5 // rare long jump: a sudden phase change
		}
		steps[i] = Step{Distance: d, Angle: rng.Float64()*2*math.Pi - math.Pi}
	}
	return steps
}

func biasedRandomWalk(rng *rand.Rand, n int) []Step {
	steps := make([]Step, n)
	for i := range steps {
		// Angles drawn with a broad bias toward east but wide spread —
		// neither directed nor oscillating, no heavy tail.
		steps[i] = Step{
			Distance: 0.2 + rng.Float64()*0.2,
			Angle:    (rng.Float64() - 0.3) * 2.4,
		}
	}
	return steps
}

func TestClassifyDirected(t *testing.T) {
	c := Classify(directedWalk(rand.New(rand.NewSource(1)), 40))
	if c.Kind != WalkDirected {
		t.Errorf("kind = %v (%+v), want directed", c.Kind, c)
	}
	if c.DirectionConcentration < 0.8 {
		t.Errorf("direction concentration = %v", c.DirectionConcentration)
	}
}

func TestClassifyOscillating(t *testing.T) {
	c := Classify(oscillatingWalk(rand.New(rand.NewSource(2)), 40))
	if c.Kind != WalkOscillating {
		t.Errorf("kind = %v (%+v), want oscillating", c.Kind, c)
	}
}

func TestClassifyLevyFlight(t *testing.T) {
	c := Classify(levyWalk(rand.New(rand.NewSource(3)), 50))
	if c.Kind != WalkLevyFlight {
		t.Errorf("kind = %v (%+v), want levy-flight", c.Kind, c)
	}
	if c.TailRatio < tailThreshold {
		t.Errorf("tail ratio = %v", c.TailRatio)
	}
}

func TestClassifyBiasedRandom(t *testing.T) {
	c := Classify(biasedRandomWalk(rand.New(rand.NewSource(4)), 60))
	if c.Kind != WalkBiasedRandom {
		t.Errorf("kind = %v (%+v), want biased-random-walk", c.Kind, c)
	}
}

func TestClassifyTooFewSteps(t *testing.T) {
	c := Classify(directedWalk(rand.New(rand.NewSource(5)), 3))
	if c.Kind != WalkUnknown {
		t.Errorf("kind = %v, want unknown for 3 steps", c.Kind)
	}
	if c := Classify(nil); c.Kind != WalkUnknown {
		t.Errorf("kind = %v, want unknown for nil", c.Kind)
	}
	// All zero-length steps carry no direction at all.
	zeros := make([]Step, 20)
	if c := Classify(zeros); c.Kind != WalkUnknown {
		t.Errorf("kind = %v, want unknown for all-zero steps", c.Kind)
	}
}

func TestWalkKindString(t *testing.T) {
	kinds := map[WalkKind]string{
		WalkUnknown:      "unknown",
		WalkDirected:     "directed",
		WalkOscillating:  "oscillating",
		WalkLevyFlight:   "levy-flight",
		WalkBiasedRandom: "biased-random-walk",
	}
	for k, w := range kinds {
		if got := k.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", int(k), got, w)
		}
	}
}

func TestClassifyFromPath(t *testing.T) {
	// End-to-end: build a real path (east-west oscillation), extract
	// steps, classify.
	var path []mds.Coord
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			path = append(path, mds.Coord{X: 0, Y: float64(i) * 0.01})
		} else {
			path = append(path, mds.Coord{X: 1, Y: float64(i) * 0.01})
		}
	}
	c := Classify(ExtractSteps(path))
	if c.Kind != WalkOscillating {
		t.Errorf("kind = %v (%+v), want oscillating", c.Kind, c)
	}
}
