package trajectory

import (
	"math"

	"repro/internal/mds"
	"repro/internal/stats"
)

// Step captures the two trajectory parameters of §3.2.3, following Marsh
// et al.'s minimal-parameter track reconstruction: the distance d between
// successive positions and the absolute angle α between the x direction
// and the step.
type Step struct {
	// Distance is the Euclidean step length d ≥ 0.
	Distance float64
	// Angle is the absolute angle α in [−π, π).
	Angle float64
}

// StepBetween computes the step from one mapped state to the next. A
// zero-length step has angle 0 by convention.
func StepBetween(from, to mds.Coord) Step {
	d := from.Dist(to)
	if d == 0 {
		return Step{}
	}
	return Step{Distance: d, Angle: stats.NormalizeAngle(from.Angle(to))}
}

// Destination returns the point reached by taking the step from p.
func (s Step) Destination(p mds.Coord) mds.Coord {
	return mds.Coord{
		X: p.X + s.Distance*math.Cos(s.Angle),
		Y: p.Y + s.Distance*math.Sin(s.Angle),
	}
}

// ExtractSteps converts a position sequence into its step sequence
// (len(out) = len(path) − 1; an empty or single-point path has no steps).
func ExtractSteps(path []mds.Coord) []Step {
	if len(path) < 2 {
		return nil
	}
	out := make([]Step, len(path)-1)
	for i := 1; i < len(path); i++ {
		out[i-1] = StepBetween(path[i-1], path[i])
	}
	return out
}

// TurningAngles returns the signed change of direction between successive
// steps, ignoring zero-length steps (which carry no direction). Turning
// angles near ±π indicate the oscillating trajectories the paper observes
// for co-located execution.
func TurningAngles(steps []Step) []float64 {
	var dirs []float64
	for _, s := range steps {
		if s.Distance > 0 {
			dirs = append(dirs, s.Angle)
		}
	}
	if len(dirs) < 2 {
		return nil
	}
	out := make([]float64, len(dirs)-1)
	for i := 1; i < len(dirs); i++ {
		out[i-1] = stats.AngleDiff(dirs[i-1], dirs[i])
	}
	return out
}
