package trajectory

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/mds"
)

// VAR(1) forecasting — the alternative §3.1 names and rejects: "A natural
// technique for forecasting in high dimensions is Vector Autoregressive
// Models (VAR)... leading to unreliable parameter estimation." In the 2-D
// mapped space a VAR(1) is perfectly estimable, so this implementation
// serves as the comparison baseline: it excels on smooth linear
// trajectories (Soplex-like) and degrades on the mode-switching,
// oscillating trajectories the histogram models were designed for.

// VARModel fits x_{t+1} = A·x_t + b by least squares over a sliding window
// of positions and predicts the next position with Gaussian residual
// uncertainty.
type VARModel struct {
	window    []mds.Coord
	maxWindow int

	// fitted parameters (valid when fitted is true)
	fitted     bool
	a          [2][2]float64
	b          [2]float64
	residStdX  float64
	residStdY  float64
	fitDirty   bool
	minSamples int
}

// NewVARModel returns a VAR(1) model over a sliding window of at most
// window positions. window must allow a meaningful fit (≥ 8).
func NewVARModel(window int) (*VARModel, error) {
	if window < 8 {
		return nil, fmt.Errorf("trajectory: VAR window must be ≥ 8, got %d", window)
	}
	return &VARModel{maxWindow: window, minSamples: 8}, nil
}

// Observe appends a position to the window.
func (m *VARModel) Observe(p mds.Coord) {
	if len(m.window) == m.maxWindow {
		copy(m.window, m.window[1:])
		m.window[len(m.window)-1] = p
	} else {
		m.window = append(m.window, p)
	}
	m.fitDirty = true
}

// Count returns how many positions are in the window.
func (m *VARModel) Count() int { return len(m.window) }

// Ready reports whether enough positions exist to fit.
func (m *VARModel) Ready() bool { return len(m.window) >= m.minSamples }

// fit solves the least-squares problem for both output dimensions against
// regressors (x, y, 1).
func (m *VARModel) fit() bool {
	if !m.Ready() {
		return false
	}
	if m.fitted && !m.fitDirty {
		return true
	}
	n := len(m.window) - 1
	// Normal equations: G·θ = h with G = Σ r rᵀ (r = [x y 1]).
	var g [3][3]float64
	var hx, hy [3]float64
	for i := 0; i < n; i++ {
		r := [3]float64{m.window[i].X, m.window[i].Y, 1}
		next := m.window[i+1]
		for p := 0; p < 3; p++ {
			for q := 0; q < 3; q++ {
				g[p][q] += r[p] * r[q]
			}
			hx[p] += r[p] * next.X
			hy[p] += r[p] * next.Y
		}
	}
	thetaX, okX := solve3(g, hx)
	thetaY, okY := solve3(g, hy)
	if !okX || !okY {
		return false
	}
	m.a = [2][2]float64{{thetaX[0], thetaX[1]}, {thetaY[0], thetaY[1]}}
	m.b = [2]float64{thetaX[2], thetaY[2]}

	// Residual spread models prediction uncertainty.
	var sx, sy float64
	for i := 0; i < n; i++ {
		px, py := m.apply(m.window[i])
		dx := m.window[i+1].X - px
		dy := m.window[i+1].Y - py
		sx += dx * dx
		sy += dy * dy
	}
	m.residStdX = math.Sqrt(sx / float64(n))
	m.residStdY = math.Sqrt(sy / float64(n))
	m.fitted = true
	m.fitDirty = false
	return true
}

func (m *VARModel) apply(p mds.Coord) (x, y float64) {
	x = m.a[0][0]*p.X + m.a[0][1]*p.Y + m.b[0]
	y = m.a[1][0]*p.X + m.a[1][1]*p.Y + m.b[1]
	return x, y
}

// PredictFrom generates n candidate next positions from cur: the fitted
// linear map plus Gaussian residual noise. Before the model is Ready (or
// when the fit is degenerate) it predicts staying in place.
func (m *VARModel) PredictFrom(cur mds.Coord, rng *rand.Rand, n int) []mds.Coord {
	out := make([]mds.Coord, n)
	if !m.fit() {
		for i := range out {
			out[i] = cur
		}
		return out
	}
	px, py := m.apply(cur)
	for i := range out {
		out[i] = mds.Coord{
			X: px + rng.NormFloat64()*m.residStdX,
			Y: py + rng.NormFloat64()*m.residStdY,
		}
	}
	return out
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting; ok is false for (near-)singular systems.
func solve3(a [3][3]float64, b [3]float64) ([3]float64, bool) {
	// Augment.
	var m [3][4]float64
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return [3]float64{}, false
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for q := col; q < 4; q++ {
			m[col][q] *= inv
		}
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col]
			for q := col; q < 4; q++ {
				m[r][q] -= f * m[col][q]
			}
		}
	}
	return [3]float64{m[0][3], m[1][3], m[2][3]}, true
}
