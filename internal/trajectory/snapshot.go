package trajectory

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ModelSnapshot is the serializable state of one per-mode trajectory
// model: the two histograms, the recent-step ring, and the observation
// count. It is what the crash-recovery checkpoint persists so a restarted
// daemon predicts from the same learned (d, α) distributions instead of
// relearning them.
type ModelSnapshot struct {
	Distance stats.HistogramSnapshot `json:"distance"`
	Angle    stats.HistogramSnapshot `json:"angle"`
	Recent   []Step                  `json:"recent,omitempty"`
	Count    int                     `json:"count"`
}

// ModelsSnapshot captures every mode's model.
type ModelsSnapshot struct {
	SingleModel bool            `json:"single_model,omitempty"`
	Models      []ModelSnapshot `json:"models"`
}

// Snapshot captures the model's full state.
func (m *Model) Snapshot() ModelSnapshot {
	return ModelSnapshot{
		Distance: m.distHist.Snapshot(),
		Angle:    m.angleHist.Snapshot(),
		Recent:   m.Recent(),
		Count:    m.count,
	}
}

// Restore replaces the model's state with the snapshot's. The snapshot's
// histograms must match the model's configuration (range and bin count);
// the recent ring is clamped to the configured window. Invalid snapshots
// are rejected without modifying the model.
func (m *Model) Restore(s ModelSnapshot) error {
	if s.Count < 0 || s.Count < len(s.Recent) {
		return fmt.Errorf("trajectory: snapshot count %d inconsistent with %d recent steps",
			s.Count, len(s.Recent))
	}
	for i, st := range s.Recent {
		if st.Distance < 0 || math.IsNaN(st.Distance) || math.IsInf(st.Distance, 0) ||
			math.IsNaN(st.Angle) || math.IsInf(st.Angle, 0) {
			return fmt.Errorf("trajectory: snapshot recent step %d invalid (%v, %v)",
				i, st.Distance, st.Angle)
		}
	}
	dh, err := stats.HistogramFromSnapshot(s.Distance)
	if err != nil {
		return fmt.Errorf("trajectory: snapshot distance histogram: %w", err)
	}
	ah, err := stats.HistogramFromSnapshot(s.Angle)
	if err != nil {
		return fmt.Errorf("trajectory: snapshot angle histogram: %w", err)
	}
	//lint:stayaway-ignore floatcmp configuration-identity check: MaxStep round-trips exactly through the checkpoint, and an epsilon would silently accept a model trained under different bounds
	if lo, hi := dh.Range(); lo != 0 || hi != m.cfg.MaxStep || dh.Bins() != m.cfg.DistanceBins {
		return fmt.Errorf("trajectory: snapshot distance histogram [%v,%v]/%d incompatible with config [0,%v]/%d",
			lo, hi, dh.Bins(), m.cfg.MaxStep, m.cfg.DistanceBins)
	}
	if ah.Bins() != m.cfg.AngleBins {
		return fmt.Errorf("trajectory: snapshot angle histogram has %d bins, config %d",
			ah.Bins(), m.cfg.AngleBins)
	}
	recent := s.Recent
	if len(recent) > m.cfg.Window {
		recent = recent[len(recent)-m.cfg.Window:]
	}
	m.distHist = dh
	m.angleHist = ah
	m.recent = append([]Step(nil), recent...)
	m.count = s.Count
	return nil
}

// Snapshot captures all per-mode models.
func (mm *ModeModels) Snapshot() *ModelsSnapshot {
	s := &ModelsSnapshot{SingleModel: mm.singleModel}
	for _, m := range mm.models {
		s.Models = append(s.Models, m.Snapshot())
	}
	return s
}

// Restore replaces every mode's model with the snapshot's. The snapshot
// must carry one model per mode and match the single-model setting — a
// checkpoint taken under the ablation configuration would route
// observations differently and silently skew predictions.
func (mm *ModeModels) Restore(s *ModelsSnapshot) error {
	if s == nil {
		return fmt.Errorf("trajectory: nil models snapshot")
	}
	if len(s.Models) != NumModes {
		return fmt.Errorf("trajectory: snapshot has %d models, want %d", len(s.Models), NumModes)
	}
	if s.SingleModel != mm.singleModel {
		return fmt.Errorf("trajectory: snapshot single-model=%v, runtime %v", s.SingleModel, mm.singleModel)
	}
	// Validate all before mutating any, so a half-corrupt snapshot cannot
	// leave the models mixed between old and new state.
	fresh := make([]*Model, NumModes)
	for i, ms := range s.Models {
		m, err := NewModel(mm.cfg)
		if err != nil {
			return err
		}
		if err := m.Restore(ms); err != nil {
			return fmt.Errorf("trajectory: mode %d: %w", i, err)
		}
		fresh[i] = m
	}
	copy(mm.models[:], fresh)
	return nil
}
