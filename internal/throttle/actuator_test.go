package throttle

import (
	"errors"
	"syscall"
	"testing"
)

func TestFuncActuatorNilFunctions(t *testing.T) {
	var f FuncActuator
	if err := f.Pause([]string{"a"}); err != nil {
		t.Errorf("nil PauseFn = %v", err)
	}
	if err := f.Resume([]string{"a"}); err != nil {
		t.Errorf("nil ResumeFn = %v", err)
	}
}

func TestFuncActuatorDelegates(t *testing.T) {
	var pausedWith, resumedWith []string
	f := FuncActuator{
		PauseFn:  func(ids []string) error { pausedWith = ids; return nil },
		ResumeFn: func(ids []string) error { resumedWith = ids; return nil },
	}
	if err := f.Pause([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Resume([]string{"y"}); err != nil {
		t.Fatal(err)
	}
	if len(pausedWith) != 1 || pausedWith[0] != "x" {
		t.Errorf("paused with %v", pausedWith)
	}
	if len(resumedWith) != 1 || resumedWith[0] != "y" {
		t.Errorf("resumed with %v", resumedWith)
	}
}

func TestRecordingActuator(t *testing.T) {
	r := NewRecordingActuator()
	if err := r.Pause([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Resume([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if got := r.Paused(); len(got) != 1 || got[0] != "b" {
		t.Errorf("paused = %v, want [b]", got)
	}
	ev := r.Events()
	if len(ev) != 2 || ev[0].Action != ActionPause || ev[1].Action != ActionResume {
		t.Errorf("events = %v", ev)
	}
}

func TestProcessActuatorSignals(t *testing.T) {
	type call struct {
		pid int
		sig syscall.Signal
	}
	var calls []call
	p := &ProcessActuator{Kill: func(pid int, sig syscall.Signal) error {
		calls = append(calls, call{pid, sig})
		return nil
	}}
	if err := p.Pause([]string{"123", "456"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Resume([]string{"123"}); err != nil {
		t.Fatal(err)
	}
	want := []call{{123, syscall.SIGSTOP}, {456, syscall.SIGSTOP}, {123, syscall.SIGCONT}}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v", calls)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("call %d = %v, want %v", i, calls[i], want[i])
		}
	}
}

func TestProcessActuatorInvalidPIDs(t *testing.T) {
	p := &ProcessActuator{Kill: func(int, syscall.Signal) error { return nil }}
	for _, bad := range []string{"", "abc", "12x", "-5", "0", "99999999999"} {
		if err := p.Pause([]string{bad}); err == nil {
			t.Errorf("PID %q should error", bad)
		}
	}
}

func TestProcessActuatorContinuesPastFailures(t *testing.T) {
	var signalled []int
	failErr := errors.New("no such process")
	p := &ProcessActuator{Kill: func(pid int, sig syscall.Signal) error {
		signalled = append(signalled, pid)
		if pid == 1 {
			return failErr
		}
		return nil
	}}
	err := p.Pause([]string{"1", "2"})
	if err == nil {
		t.Error("first failure should be reported")
	}
	if len(signalled) != 2 {
		t.Errorf("signalled = %v, want both PIDs attempted", signalled)
	}
}

func TestProcessActuatorToleratesESRCH(t *testing.T) {
	// A vanished process is vacuous success: resuming it has nothing left
	// to do, and erroring would wedge the controller throttled.
	p := &ProcessActuator{Kill: func(pid int, sig syscall.Signal) error {
		return syscall.ESRCH
	}}
	if err := p.Resume([]string{"123"}); err != nil {
		t.Errorf("ESRCH should be tolerated, got %v", err)
	}
	if err := p.Pause([]string{"123"}); err != nil {
		t.Errorf("ESRCH should be tolerated, got %v", err)
	}
}
