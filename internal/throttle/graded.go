package throttle

import "fmt"

// GradedActuator extends the binary freeze/thaw Actuator with fractional
// CPU throttling — the cgroup v2 cpu.max knob (and the simulator's
// fractional quota). Level semantics: 1 removes the limit, values in
// (0,1) cap the batch applications at that fraction of their unthrottled
// CPU allowance, and 0 is expressed through Pause (full freeze) instead.
type GradedActuator interface {
	Actuator
	// SetLevel caps the given batch applications at the fraction level of
	// their CPU allowance. Implementations must treat level >= 1 as
	// removing the limit.
	SetLevel(ids []string, level float64) error
}

// Policy selects how the controller translates a predicted violation into
// actuation.
type Policy int

const (
	// PolicyBinary is the paper's prototype: full SIGSTOP/freeze on any
	// predicted or actual violation.
	PolicyBinary Policy = iota
	// PolicyGraded steps CPU quotas down proportionally to the predicted
	// violation proximity (the fraction of candidate future states voting
	// violation) and escalates to a full freeze when the proximity
	// saturates, an actual violation occurs, or stepping has exhausted the
	// quota range. It requires a GradedActuator.
	PolicyGraded
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyBinary:
		return "binary"
	case PolicyGraded:
		return "graded"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// targetLevel quantizes a violation severity in [0,1] onto the configured
// quota steps: severity 0 maps to the gentlest step below full speed,
// severity >= FreezeSeverity maps to 0 (freeze). With GradedLevels = 4
// the reachable levels are 0.75, 0.5, 0.25 and 0.
func (c *Controller) targetLevel(severity float64) float64 {
	if severity >= c.cfg.FreezeSeverity {
		return 0
	}
	if severity < 0 {
		severity = 0
	}
	step := 1.0 / float64(c.cfg.GradedLevels)
	// Severity s wants level 1-s, rounded down to the next step boundary
	// so throttling always errs toward protecting the sensitive app.
	level := (1 - severity) / step
	target := float64(int(level)) * step
	if target >= 1 {
		target = 1 - step
	}
	if target < 0 {
		target = 0
	}
	return target
}

// applyLevel drives the graded actuator from the current level to target,
// using Pause/Resume for the freeze boundary and SetLevel for quotas.
func (c *Controller) applyLevel(target float64) error {
	switch {
	case target <= 0:
		if c.level > 0 {
			if err := c.graded.Pause(c.batchIDs); err != nil {
				return fmt.Errorf("throttle: graded freeze: %w", err)
			}
		}
	default:
		if c.level <= 0 {
			// Thaw before adjusting the quota so a frozen group does not
			// stay frozen under a nonzero limit.
			if err := c.graded.Resume(c.batchIDs); err != nil {
				return fmt.Errorf("throttle: graded thaw: %w", err)
			}
		}
		if err := c.graded.SetLevel(c.batchIDs, target); err != nil {
			return fmt.Errorf("throttle: set level %.2f: %w", target, err)
		}
	}
	c.level = target
	return nil
}

// restoreFull lifts all graded throttling: thaw if frozen, then remove
// the CPU limit.
func (c *Controller) restoreFull() error {
	if c.level <= 0 {
		if err := c.graded.Resume(c.batchIDs); err != nil {
			return fmt.Errorf("throttle: graded resume: %w", err)
		}
	}
	if err := c.graded.SetLevel(c.batchIDs, 1); err != nil {
		return fmt.Errorf("throttle: clear level: %w", err)
	}
	c.level = 1
	return nil
}

// stepGraded is the §3.3 decision logic under PolicyGraded: instead of
// the binary pause it lowers the batch CPU quota proportionally to how
// many predicted candidate states voted violation, escalates one step per
// period while the prediction persists (reaching full freeze), and
// restores full speed through the same phase-change / anti-starvation
// resume rules as the binary policy.
func (c *Controller) stepGraded(in Input, res *Result) error {
	severity := in.ViolationSeverity
	if in.ActualViolation {
		// A reported violation is past prediction: apply maximum pressure.
		severity = 1
	}

	switch {
	case !c.throttled:
		if in.BatchActive && (in.PredictedViolation || in.ActualViolation) {
			target := c.targetLevel(severity)
			if err := c.applyLevel(target); err != nil {
				return err
			}
			c.throttled = true
			c.stablePeriods = 0
			c.clearPeriods = 0
			if target <= 0 {
				res.Action = ActionPause
			} else {
				res.Action = ActionLimit
			}
		}
	default: // throttled at some level
		if !in.BatchActive {
			// The batch workload ended while throttled; release state.
			if err := c.restoreFull(); err != nil {
				return err
			}
			c.throttled = false
			res.Action = ActionResume
			break
		}
		if in.PredictedViolation || in.ActualViolation {
			// Still heading for (or inside) a violation: escalate one quota
			// step toward the freeze, never above the severity's own target.
			step := 1.0 / float64(c.cfg.GradedLevels)
			target := c.level - step
			if t := c.targetLevel(severity); t < target {
				target = t
			}
			if target < step/2 {
				target = 0
			}
			if target != c.level {
				if err := c.applyLevel(target); err != nil {
					return err
				}
				if target <= 0 {
					res.Action = ActionPause
				} else {
					res.Action = ActionLimit
				}
			}
			c.stablePeriods = 0
			c.clearPeriods = 0
			break
		}
		if in.SensitiveStepDistance > c.beta {
			// Phase change or workload-intensity change detected.
			if err := c.restoreFull(); err != nil {
				return err
			}
			c.throttled = false
			c.resumed = true
			c.lastResumePeriod = in.Period
			c.lastResumePhase = true
			res.Action = ActionResume
			break
		}
		if c.level > 0 {
			// The prediction cleared while only partially limited. Unlike a
			// freeze — where the batch is silent and only a sensitive-side
			// phase change proves the coast is clear — a quota-limited batch
			// is still visible in the map, so a cleared prediction is direct
			// evidence the pressure can come off. After DeEscalatePeriods
			// consecutive quiet periods, raise the quota one step, releasing
			// fully once the range is walked back up.
			c.clearPeriods++
			if c.clearPeriods < c.cfg.DeEscalatePeriods {
				break
			}
			c.clearPeriods = 0
			step := 1.0 / float64(c.cfg.GradedLevels)
			target := c.level + step
			if target >= 1-step/2 {
				if err := c.restoreFull(); err != nil {
					return err
				}
				c.throttled = false
				c.resumed = true
				c.lastResumePeriod = in.Period
				c.lastResumePhase = false
				res.Action = ActionResume
			} else {
				if err := c.applyLevel(target); err != nil {
					return err
				}
				res.Action = ActionLimit
			}
			break
		}
		c.stablePeriods++
		if c.stablePeriods >= c.cfg.StarvationPeriods &&
			c.rng.Float64() < c.cfg.StarvationProbability {
			if err := c.restoreFull(); err != nil {
				return err
			}
			c.throttled = false
			c.resumed = true
			c.lastResumePeriod = in.Period
			c.lastResumePhase = false
			res.Action = ActionResume
			res.RandomResume = true
		}
	}
	return nil
}
