package throttle

import (
	"errors"
	"math/rand"
	"syscall"
	"testing"
)

func newGradedController(t *testing.T, mutate func(*Config)) (*Controller, *RecordingActuator) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = PolicyGraded
	if mutate != nil {
		mutate(&cfg)
	}
	act := NewRecordingActuator()
	c, err := New(cfg, act, []string{"batch1", "batch2"}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return c, act
}

func TestGradedRequiresGradedActuator(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyGraded
	// FuncActuator has no SetLevel.
	_, err := New(cfg, FuncActuator{}, nil, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Error("PolicyGraded with a binary actuator should error")
	}
}

func TestGradedConfigValidation(t *testing.T) {
	for _, mutate := range []func(*Config){
		func(c *Config) { c.GradedLevels = 0 },
		func(c *Config) { c.FreezeSeverity = 0 },
		func(c *Config) { c.FreezeSeverity = 1.5 },
		func(c *Config) { c.Policy = Policy(99) },
	} {
		cfg := DefaultConfig()
		cfg.Policy = PolicyGraded
		mutate(&cfg)
		if _, err := New(cfg, NewRecordingActuator(), nil, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("config %+v should fail validation", cfg)
		}
	}
}

func TestGradedTargetLevelQuantization(t *testing.T) {
	c, _ := newGradedController(t, nil) // 4 levels: 0.75, 0.5, 0.25, 0
	tests := []struct {
		severity float64
		want     float64
	}{
		{0, 0.75},    // any prediction throttles at least one step
		{0.2, 0.75},  // 0.8 floors to 0.75
		{0.4, 0.5},   // 0.6 floors to 0.5
		{0.6, 0.25},  // 0.4 floors to 0.25
		{0.8, 0},     // 0.2 floors to 0
		{1, 0},       // saturated: freeze
		{-0.5, 0.75}, // clamped
	}
	for _, tt := range tests {
		if got := c.targetLevel(tt.severity); got != tt.want {
			t.Errorf("targetLevel(%v) = %v, want %v", tt.severity, got, tt.want)
		}
	}
}

func TestGradedLimitsInsteadOfFreezing(t *testing.T) {
	c, act := newGradedController(t, nil)
	res, err := c.Step(Input{Period: 1, PredictedViolation: true, ViolationSeverity: 0.6, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionLimit || !res.Throttled {
		t.Errorf("result = %+v, want limit+throttled", res)
	}
	if res.Level != 0.25 {
		t.Errorf("level = %v, want 0.25", res.Level)
	}
	if got := act.Paused(); len(got) != 0 {
		t.Errorf("paused = %v, want none (graded quota, not freeze)", got)
	}
	if got := act.Level("batch1"); got != 0.25 {
		t.Errorf("actuator level = %v, want 0.25", got)
	}
}

func TestGradedEscalatesToFreeze(t *testing.T) {
	c, act := newGradedController(t, nil)
	// Persistent mild prediction: 0.75 → 0.5 → 0.25 → frozen.
	wantLevels := []float64{0.75, 0.5, 0.25, 0}
	for i, want := range wantLevels {
		res, err := c.Step(Input{Period: i, PredictedViolation: true, ViolationSeverity: 0.1, BatchActive: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Level != want {
			t.Errorf("period %d: level = %v, want %v", i, res.Level, want)
		}
	}
	if got := act.Paused(); len(got) != 2 {
		t.Errorf("paused = %v, want both batch apps frozen after escalation", got)
	}
}

func TestGradedSaturatedSeverityFreezesImmediately(t *testing.T) {
	c, act := newGradedController(t, nil)
	res, err := c.Step(Input{Period: 1, PredictedViolation: true, ViolationSeverity: 1, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionPause || res.Level != 0 {
		t.Errorf("result = %+v, want immediate freeze", res)
	}
	if got := act.Paused(); len(got) != 2 {
		t.Errorf("paused = %v", got)
	}
}

func TestGradedActualViolationFreezes(t *testing.T) {
	c, _ := newGradedController(t, nil)
	// A reported violation overrides a mild predicted severity.
	res, err := c.Step(Input{Period: 1, ActualViolation: true, ViolationSeverity: 0.2, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionPause || res.Level != 0 {
		t.Errorf("result = %+v, want freeze on actual violation", res)
	}
}

func TestGradedPhaseChangeRestoresFullSpeed(t *testing.T) {
	c, act := newGradedController(t, nil)
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, ViolationSeverity: 0.4, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Step(Input{Period: 2, SensitiveStepDistance: 0.5, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionResume || res.Throttled || res.Level != 1 {
		t.Errorf("result = %+v, want full resume", res)
	}
	if got := act.Level("batch1"); got != 1 {
		t.Errorf("actuator level = %v, want restored to 1", got)
	}
}

func TestGradedResumeFromFreezeThaws(t *testing.T) {
	c, act := newGradedController(t, nil)
	if _, err := c.Step(Input{Period: 1, ActualViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	if got := act.Paused(); len(got) != 2 {
		t.Fatalf("paused = %v", got)
	}
	res, err := c.Step(Input{Period: 2, SensitiveStepDistance: 0.5, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != 1 || res.Action != ActionResume {
		t.Errorf("result = %+v", res)
	}
	if got := act.Paused(); len(got) != 0 {
		t.Errorf("still paused after resume: %v", got)
	}
}

func TestGradedBatchEndRestores(t *testing.T) {
	c, _ := newGradedController(t, nil)
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, ViolationSeverity: 0.4, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Step(Input{Period: 2, BatchActive: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionResume || res.Throttled {
		t.Errorf("result = %+v, want release when batch work ends", res)
	}
}

func TestGradedStarvationResume(t *testing.T) {
	c, _ := newGradedController(t, func(cfg *Config) {
		cfg.StarvationPeriods = 3
		cfg.StarvationProbability = 1
	})
	// A saturated vote freezes outright; a frozen batch can only come back
	// through phase change or the anti-starvation resume.
	if _, err := c.Step(Input{Period: 0, PredictedViolation: true, ViolationSeverity: 1, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	var resumed bool
	for p := 1; p < 10; p++ {
		res, err := c.Step(Input{Period: p, BatchActive: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Action == ActionResume {
			if !res.RandomResume {
				t.Error("resume should be marked random")
			}
			resumed = true
			break
		}
	}
	if !resumed {
		t.Error("starvation resume never fired")
	}
}

func TestGradedDeEscalation(t *testing.T) {
	c, act := newGradedController(t, func(cfg *Config) {
		cfg.DeEscalatePeriods = 1
	})
	// Escalate to 0.25, then let the prediction clear: the quota must walk
	// back up one step per period and finally release.
	for p := 0; p < 3; p++ {
		if _, err := c.Step(Input{Period: p, PredictedViolation: true, ViolationSeverity: 0.2, BatchActive: true}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Level(); got != 0.25 {
		t.Fatalf("level after escalation = %v, want 0.25", got)
	}
	res, err := c.Step(Input{Period: 3, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionLimit || res.Level != 0.5 {
		t.Errorf("first de-escalation = %+v, want limit to 0.5", res)
	}
	res, err = c.Step(Input{Period: 4, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionLimit || res.Level != 0.75 {
		t.Errorf("second de-escalation = %+v, want limit to 0.75", res)
	}
	res, err = c.Step(Input{Period: 5, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionResume || res.Throttled || res.Level != 1 {
		t.Errorf("final de-escalation = %+v, want full release", res)
	}
	if res.RandomResume {
		t.Error("de-escalation release must not count as a random resume")
	}
	if got := act.Level("b1"); got != 1 {
		t.Errorf("actuator level after release = %v, want 1", got)
	}
	// A frozen batch must NOT de-escalate on a cleared prediction: it is
	// invisible to the map, so silence proves nothing.
	if _, err := c.Step(Input{Period: 6, PredictedViolation: true, ViolationSeverity: 1, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	res, err = c.Step(Input{Period: 7, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionNone || res.Level != 0 {
		t.Errorf("frozen step without prediction = %+v, want no action", res)
	}
}

func TestGradedBetaLearningStillApplies(t *testing.T) {
	c, _ := newGradedController(t, nil)
	// Throttle, phase-change resume, then an immediate violation: β must
	// grow exactly as under the binary policy.
	if _, err := c.Step(Input{Period: 0, PredictedViolation: true, ViolationSeverity: 0.4, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(Input{Period: 1, SensitiveStepDistance: 0.5, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Step(Input{Period: 2, ActualViolation: true, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BetaIncremented || res.Beta <= 0.01 {
		t.Errorf("result = %+v, want β incremented after premature resume", res)
	}
}

func TestGradedActuatorFailurePropagates(t *testing.T) {
	act := NewRecordingActuator()
	act.FailSetLevel = errors.New("cgroupfs gone")
	cfg := DefaultConfig()
	cfg.Policy = PolicyGraded
	c, err := New(cfg, act, []string{"b"}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, ViolationSeverity: 0.4, BatchActive: true}); err == nil {
		t.Error("SetLevel failure should propagate")
	}
}

// TestProcessActuatorMixedAliveDeadFirstError covers the first-error
// aggregation across a mixed PID set: vanished processes (ESRCH) are
// vacuous successes, every PID is still attempted, and the first real
// failure is the one reported.
func TestProcessActuatorMixedAliveDeadFirstError(t *testing.T) {
	var attempted []int
	p := &ProcessActuator{Kill: func(pid int, sig syscall.Signal) error {
		attempted = append(attempted, pid)
		switch pid {
		case 1: // alive, signal delivered
			return nil
		case 2: // dead: vacuous success
			return syscall.ESRCH
		case 3: // alive but not ours
			return syscall.EPERM
		case 4: // also failing, but later — must not displace the first error
			return syscall.EINVAL
		default:
			return nil
		}
	}}
	err := p.Pause([]string{"1", "2", "3", "4", "5"})
	if !errors.Is(err, syscall.EPERM) {
		t.Errorf("err = %v, want first real failure (EPERM)", err)
	}
	if len(attempted) != 5 {
		t.Errorf("attempted = %v, want all five PIDs signalled despite failures", attempted)
	}
	// All-dead set: nothing left to do, vacuous success.
	attempted = nil
	p2 := &ProcessActuator{Kill: func(int, syscall.Signal) error { return syscall.ESRCH }}
	if err := p2.Resume([]string{"1", "2", "3"}); err != nil {
		t.Errorf("all-ESRCH resume = %v, want nil", err)
	}
}
