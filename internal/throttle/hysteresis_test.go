package throttle

import (
	"math"
	"testing"
)

// Boundary tests for PolicyGraded's hysteresis: the de-escalation must
// fire at EXACTLY the configured quiet-period count (not one early, not
// one late), and the freeze escalation at EXACTLY FreezeSeverity.

// throttleTo drives an idle controller into a partial limit at the given
// severity and returns the resulting level.
func throttleTo(t *testing.T, c *Controller, severity float64) float64 {
	t.Helper()
	res, err := c.Step(Input{
		Period: 1, PredictedViolation: true, BatchActive: true,
		ViolationSeverity: severity,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionLimit {
		t.Fatalf("initial throttle action = %v, want limit", res.Action)
	}
	return res.Level
}

func TestGradedDeEscalatesExactlyAtQuietThreshold(t *testing.T) {
	const quiet = 3
	c, _ := newGradedController(t, func(cfg *Config) { cfg.DeEscalatePeriods = quiet })
	if lvl := throttleTo(t, c, 0.4); lvl != 0.5 {
		t.Fatalf("level = %v, want 0.5", lvl)
	}

	// quiet-1 prediction-free periods: the quota must NOT move.
	for i := 1; i < quiet; i++ {
		res, err := c.Step(Input{Period: 1 + i, BatchActive: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Action != ActionNone || res.Level != 0.5 {
			t.Fatalf("quiet period %d/%d: action=%v level=%v; de-escalated early",
				i, quiet, res.Action, res.Level)
		}
	}
	// EXACTLY the quiet-th period: one step up.
	res, err := c.Step(Input{Period: 1 + quiet, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionLimit || res.Level != 0.75 {
		t.Errorf("quiet period %d: action=%v level=%v, want limit to 0.75", quiet, res.Action, res.Level)
	}
}

func TestGradedDeEscalationCounterResetsOnPrediction(t *testing.T) {
	const quiet = 2
	c, _ := newGradedController(t, func(cfg *Config) { cfg.DeEscalatePeriods = quiet })
	throttleTo(t, c, 0.4) // level 0.5

	// One quiet period, then a prediction: the counter must reset, so the
	// next single quiet period may not de-escalate.
	if _, err := c.Step(Input{Period: 2, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(Input{Period: 3, PredictedViolation: true, BatchActive: true, ViolationSeverity: 0.4}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Step(Input{Period: 4, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionNone {
		t.Errorf("action = %v after counter reset; hysteresis leaked across predictions", res.Action)
	}
	// The second consecutive quiet period completes the window.
	res, err = c.Step(Input{Period: 5, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionLimit {
		t.Errorf("action = %v on completed quiet window, want limit", res.Action)
	}
}

func TestGradedFreezeExactlyAtSeverityThreshold(t *testing.T) {
	const freezeAt = 0.75
	justBelow := math.Nextafter(freezeAt, 0)

	// Severity exactly at FreezeSeverity: straight to a full freeze.
	c, act := newGradedController(t, func(cfg *Config) { cfg.FreezeSeverity = freezeAt })
	res, err := c.Step(Input{
		Period: 1, PredictedViolation: true, BatchActive: true,
		ViolationSeverity: freezeAt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionPause || res.Level != 0 {
		t.Errorf("severity == FreezeSeverity: action=%v level=%v, want pause at 0", res.Action, res.Level)
	}
	if len(act.Paused()) == 0 {
		t.Error("actuator was not paused at the freeze threshold")
	}

	// The largest severity below the threshold: still a graded limit.
	c2, act2 := newGradedController(t, func(cfg *Config) { cfg.FreezeSeverity = freezeAt })
	res, err = c2.Step(Input{
		Period: 1, PredictedViolation: true, BatchActive: true,
		ViolationSeverity: justBelow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionPause && res.Level <= 0 {
		t.Errorf("just below threshold froze: action=%v level=%v", res.Action, res.Level)
	}
	if res.Action != ActionLimit || res.Level != 0.25 {
		t.Errorf("just below threshold: action=%v level=%v, want limit at 0.25", res.Action, res.Level)
	}
	if len(act2.Paused()) != 0 {
		t.Error("actuator paused below the freeze threshold")
	}
}

func TestGradedEscalationWalksToFreezeUnderPersistentPrediction(t *testing.T) {
	c, act := newGradedController(t, nil) // 4 levels
	if lvl := throttleTo(t, c, 0); lvl != 0.75 {
		t.Fatalf("level = %v, want gentlest step", lvl)
	}
	// Persistent low-severity prediction: one step down per period, then
	// the freeze boundary.
	want := []struct {
		level  float64
		action Action
	}{{0.5, ActionLimit}, {0.25, ActionLimit}, {0, ActionPause}}
	for i, w := range want {
		res, err := c.Step(Input{Period: 2 + i, PredictedViolation: true, BatchActive: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Level != w.level || res.Action != w.action {
			t.Fatalf("escalation step %d: action=%v level=%v, want %v at %v",
				i, res.Action, res.Level, w.action, w.level)
		}
	}
	if len(act.Paused()) == 0 {
		t.Error("walk-down never reached the freezer")
	}
}

func TestControllerSnapshotRestoresLearnedBetaOnly(t *testing.T) {
	c, _ := newGradedController(t, nil)
	throttleTo(t, c, 0.4)
	snap := c.Snapshot()
	snap.Beta = 0.07
	if !snap.Throttled || snap.Level != 0.5 {
		t.Fatalf("snapshot = %+v, want throttled at 0.5", snap)
	}

	c2, _ := newGradedController(t, nil)
	if err := c2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if c2.Beta() != 0.07 {
		t.Errorf("restored beta = %v, want 0.07", c2.Beta())
	}
	// Actuation state deliberately resets: recovery thawed everything.
	if c2.Throttled() || c2.Level() != 1 {
		t.Errorf("restored actuation state = throttled %v level %v, want clean", c2.Throttled(), c2.Level())
	}
}

func TestControllerSnapshotRestoreValidation(t *testing.T) {
	c, _ := newGradedController(t, nil)
	for _, beta := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := c.Restore(ControllerSnapshot{Beta: beta, Level: 1}); err == nil {
			t.Errorf("beta %v should be rejected", beta)
		}
	}
	// Beta above MaxBeta clamps instead of rejecting.
	if err := c.Restore(ControllerSnapshot{Beta: 99, Level: 1}); err != nil {
		t.Fatal(err)
	}
	if c.Beta() != DefaultConfig().MaxBeta {
		t.Errorf("beta = %v, want clamped to %v", c.Beta(), DefaultConfig().MaxBeta)
	}
}

func TestReleaseThawsUnconditionally(t *testing.T) {
	c, act := newGradedController(t, nil)
	// Even an untouched controller must actuate on Release: after a fault
	// its tracked state cannot be trusted.
	if err := c.Release(); err != nil {
		t.Fatal(err)
	}
	events := act.Events()
	if len(events) != 2 || events[0].Action != ActionResume || events[1].Action != ActionLimit || events[1].Level != 1 {
		t.Fatalf("events = %+v, want unconditional resume + quota clear", events)
	}

	// And from a frozen state it leaves everything clean.
	c2, act2 := newGradedController(t, nil)
	if _, err := c2.Step(Input{Period: 1, ActualViolation: true, BatchActive: true, ViolationSeverity: 1}); err != nil {
		t.Fatal(err)
	}
	if !c2.Throttled() {
		t.Fatal("setup: controller not throttled")
	}
	if err := c2.Release(); err != nil {
		t.Fatal(err)
	}
	if c2.Throttled() || c2.Level() != 1 || len(act2.Paused()) != 0 {
		t.Errorf("after release: throttled=%v level=%v paused=%v", c2.Throttled(), c2.Level(), act2.Paused())
	}
}
