package throttle

import (
	"errors"
	"reflect"
	"testing"
)

func effective(t *testing.T, a *Arbiter, id string, wantFrozen bool, wantLevel float64) {
	t.Helper()
	frozen, level := a.Effective(id)
	if frozen != wantFrozen || level != wantLevel {
		t.Fatalf("Effective(%q) = (%v, %v), want (%v, %v)", id, frozen, level, wantFrozen, wantLevel)
	}
}

// countActions tallies recorded actuations per action type.
func countActions(events []ActuationEvent) map[Action]int {
	out := make(map[Action]int)
	for _, e := range events {
		out[e.Action]++
	}
	return out
}

func TestArbiterUnionFreezeSingleRelease(t *testing.T) {
	rec := NewRecordingActuator()
	arb, err := NewArbiter(rec)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"b1", "b2"}
	laneA := arb.Lane("A")
	laneB := arb.Lane("B")

	if err := laneA.Pause(ids); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", true, 1)
	if got := rec.Paused(); !reflect.DeepEqual(got, []string{"b1", "b2"}) {
		t.Fatalf("paused = %v", got)
	}

	// Second lane freezing the already-frozen pool must not re-actuate.
	before := len(rec.Events())
	if err := laneB.Pause(ids); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Events()); got != before {
		t.Fatalf("second freeze actuated downstream: %d events, want %d", got, before)
	}

	// First lane resumes; the other still wants the freeze — no thaw yet.
	if err := laneA.Resume(ids); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", true, 1)
	if got := rec.Paused(); len(got) != 2 {
		t.Fatalf("thawed while lane B still freezing: paused = %v", got)
	}
	if got := arb.Restricting("b1"); !reflect.DeepEqual(got, []string{"B"}) {
		t.Fatalf("Restricting = %v, want [B]", got)
	}

	// Last restricting lane resumes → exactly one downstream release.
	if err := laneB.Resume(ids); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", false, 1)
	if got := rec.Paused(); len(got) != 0 {
		t.Fatalf("still paused after full release: %v", got)
	}
	if got := countActions(rec.Events())[ActionResume]; got != 1 {
		t.Fatalf("downstream resumes = %d, want exactly 1", got)
	}
}

// The ISSUE's conflict scenario: lane A demands a freeze while lane B
// wants a graded 40% quota; A resumes but B still restricts (the pool
// thaws into B's quota); both resume → a single release actuation.
func TestArbiterFreezeVersusGradedQuota(t *testing.T) {
	rec := NewRecordingActuator()
	arb, err := NewArbiter(rec)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"b1"}
	laneA := arb.Lane("A")
	laneB := arb.Lane("B")

	if err := laneB.SetLevel(ids, 0.4); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", false, 0.4)
	if got := rec.Level("b1"); got != 0.4 {
		t.Fatalf("downstream level = %v, want 0.4", got)
	}

	// Freeze outranks the quota (most-severe-wins).
	if err := laneA.Pause(ids); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", true, 0.4)
	if got := rec.Paused(); !reflect.DeepEqual(got, []string{"b1"}) {
		t.Fatalf("paused = %v", got)
	}

	// While frozen, B's quota adjustments are absorbed downstream.
	before := len(rec.Events())
	if err := laneB.SetLevel(ids, 0.25); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Events()); got != before {
		t.Fatalf("quota change actuated on a frozen target")
	}

	// A resumes: the pool thaws INTO B's surviving quota, not to full
	// speed.
	if err := laneA.Resume(ids); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", false, 0.25)
	if got := rec.Paused(); len(got) != 0 {
		t.Fatalf("still paused: %v", got)
	}
	if got := rec.Level("b1"); got != 0.25 {
		t.Fatalf("post-thaw level = %v, want B's 0.25", got)
	}

	// B releases: one quota-clearing release, nothing left behind.
	if err := laneB.SetLevel(ids, 1); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", false, 1)
	if got := rec.Level("b1"); got != 1 {
		t.Fatalf("final level = %v, want 1", got)
	}
}

func TestArbiterMinLevelWins(t *testing.T) {
	rec := NewRecordingActuator()
	arb, _ := NewArbiter(rec)
	ids := []string{"b1"}
	laneA := arb.Lane("A")
	laneB := arb.Lane("B")

	if err := laneA.SetLevel(ids, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := laneB.SetLevel(ids, 0.5); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", false, 0.5)

	// The stricter lane loosening to 0.9 leaves A's 0.75 in charge.
	if err := laneB.SetLevel(ids, 0.9); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", false, 0.75)
	if got := rec.Level("b1"); got != 0.75 {
		t.Fatalf("downstream level = %v, want 0.75", got)
	}

	if err := laneA.Resume(ids); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", false, 0.9)
	if err := laneB.Resume(ids); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", false, 1)
}

func TestArbiterReleaseAll(t *testing.T) {
	rec := NewRecordingActuator()
	arb, _ := NewArbiter(rec)
	laneA := arb.Lane("A")
	laneB := arb.Lane("B")
	if err := laneA.Pause([]string{"b1"}); err != nil {
		t.Fatal(err)
	}
	if err := laneB.SetLevel([]string{"b2"}, 0.5); err != nil {
		t.Fatal(err)
	}

	if err := arb.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Paused(); len(got) != 0 {
		t.Fatalf("paused after ReleaseAll: %v", got)
	}
	if got := rec.Level("b2"); got != 1 {
		t.Fatalf("level after ReleaseAll = %v", got)
	}
	effective(t, arb, "b1", false, 1)
	effective(t, arb, "b2", false, 1)
	if got := arb.Restricting("b1"); len(got) != 0 {
		t.Fatalf("lane desires survived ReleaseAll: %v", got)
	}

	// Idempotent when nothing was ever touched again.
	if err := arb.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
}

func TestArbiterDownstreamErrorsPropagate(t *testing.T) {
	rec := NewRecordingActuator()
	boom := errors.New("boom")
	rec.FailPause = boom
	arb, _ := NewArbiter(rec)
	lane := arb.Lane("A")
	if err := lane.Pause([]string{"b1"}); !errors.Is(err, boom) {
		t.Fatalf("pause error = %v, want %v", err, boom)
	}
}

func TestArbiterNonGradedDownstreamRejectsQuota(t *testing.T) {
	arb, _ := NewArbiter(FuncActuator{})
	lane := arb.Lane("A")
	if err := lane.SetLevel([]string{"b1"}, 0.5); err == nil {
		t.Fatal("SetLevel over a non-graded downstream should error")
	}
	// Binary freeze/thaw still works.
	if err := lane.Pause([]string{"b1"}); err != nil {
		t.Fatal(err)
	}
	if err := lane.Resume([]string{"b1"}); err != nil {
		t.Fatal(err)
	}
}

func TestArbiterDropLaneThawsIntoSurvivingQuota(t *testing.T) {
	rec := NewRecordingActuator()
	arb, _ := NewArbiter(rec)
	ids := []string{"b1", "b2"}
	laneA := arb.Lane("A")
	laneB := arb.Lane("B")

	// A freezes the pool; B holds a 40% quota underneath.
	if err := laneA.Pause(ids); err != nil {
		t.Fatal(err)
	}
	if err := laneB.SetLevel(ids, 0.4); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", true, 0.4)

	// Dropping A must thaw the pool INTO B's surviving quota — no
	// restriction gap beyond the unavoidable thaw/re-quota window, and
	// certainly no lingering freeze.
	if err := arb.DropLane("A"); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", false, 0.4)
	if got := rec.Paused(); len(got) != 0 {
		t.Fatalf("still frozen after DropLane: %v", got)
	}
	if got := rec.Level("b1"); got != 0.4 {
		t.Fatalf("b1 level = %v, want surviving 0.4 quota", got)
	}
	if got := arb.Restricting("b1"); !reflect.DeepEqual(got, []string{"B"}) {
		t.Fatalf("Restricting = %v, want [B]", got)
	}

	// Dropping the last restricting lane fully releases, exactly once.
	if err := arb.DropLane("B"); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", false, 1)
	if got := rec.Level("b1"); got != 1 {
		t.Fatalf("b1 level = %v after last drop, want 1", got)
	}
	if got := countActions(rec.Events())[ActionResume]; got != 1 {
		t.Fatalf("downstream resumes = %d, want exactly 1 (the thaw when A dropped)", got)
	}
}

func TestArbiterDropLaneIdempotentAndUnknown(t *testing.T) {
	rec := NewRecordingActuator()
	arb, _ := NewArbiter(rec)
	lane := arb.Lane("A")
	if err := lane.Pause([]string{"b1"}); err != nil {
		t.Fatal(err)
	}
	if err := arb.DropLane("A"); err != nil {
		t.Fatal(err)
	}
	before := len(rec.Events())
	// Second drop and a never-registered lane: no-ops, no actuation.
	if err := arb.DropLane("A"); err != nil {
		t.Fatal(err)
	}
	if err := arb.DropLane("ghost"); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Events()); got != before {
		t.Fatalf("idempotent drops actuated downstream: %d events, want %d", got, before)
	}
}

func TestArbiterDropLaneOnlyLoosens(t *testing.T) {
	rec := NewRecordingActuator()
	arb, _ := NewArbiter(rec)
	ids := []string{"b1"}
	laneA := arb.Lane("A")
	laneB := arb.Lane("B")
	// B freezes, A only quotas: dropping A must leave B's freeze in force.
	if err := laneB.Pause(ids); err != nil {
		t.Fatal(err)
	}
	if err := laneA.SetLevel(ids, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := arb.DropLane("A"); err != nil {
		t.Fatal(err)
	}
	effective(t, arb, "b1", true, 1)
	if got := rec.Paused(); !reflect.DeepEqual(got, []string{"b1"}) {
		t.Fatalf("paused = %v, want b1 still frozen for lane B", got)
	}
}
