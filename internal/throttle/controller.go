// Package throttle implements Stay-Away's action step (§3.3): pausing the
// batch application(s) when a violation is predicted, and deciding when to
// resume them — either because the sensitive application changed phase
// (consecutive sensitive-only states drift more than the learned threshold
// β) or, after a long stable stretch, by a randomized anti-starvation
// resume. β starts at 0.01 and is incremented whenever a phase-change
// resume immediately leads back to a violation, so the threshold "attains
// accuracy" over time.
package throttle

import (
	"fmt"
	"math/rand"
)

// Action is what the controller did in one period.
type Action int

const (
	// ActionNone: no actuation this period.
	ActionNone Action = iota
	// ActionPause: batch applications were paused.
	ActionPause
	// ActionResume: batch applications were resumed.
	ActionResume
	// ActionLimit: batch applications had their CPU quota changed without
	// crossing the freeze boundary (PolicyGraded only).
	ActionLimit
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionPause:
		return "pause"
	case ActionResume:
		return "resume"
	case ActionLimit:
		return "limit"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Actuator applies throttle decisions to the batch applications. The
// prototype's actuator sends SIGSTOP/SIGCONT (§3.3); the simulator freezes
// and thaws containers.
type Actuator interface {
	// Pause suspends the given batch applications.
	Pause(ids []string) error
	// Resume continues the given batch applications.
	Resume(ids []string) error
}

// Config tunes the controller.
type Config struct {
	// InitialBeta is the starting phase-change threshold. The paper:
	// "Initially β is set to 0.01."
	InitialBeta float64
	// BetaIncrement is added to β when a phase-change resume immediately
	// leads back to a violation ("the system increments β by a small
	// amount").
	BetaIncrement float64
	// MaxBeta caps β growth so a mis-learned threshold cannot block
	// resumes forever.
	MaxBeta float64
	// PrematureWindow is how many periods after a resume a violation (or
	// violation prediction) counts as evidence the resume was premature.
	PrematureWindow int
	// StarvationPeriods is how many consecutive throttled periods with
	// distance below β must pass before the randomized resume may fire:
	// "Stay-Away uses a random factor to resume the execution of the batch
	// application when the distance falls below β for a long time."
	StarvationPeriods int
	// StarvationProbability is the per-period chance of the randomized
	// resume once StarvationPeriods have elapsed.
	StarvationProbability float64

	// Policy selects binary freeze/thaw (the paper's prototype) or graded
	// CPU-quota throttling (cgroup cpu.max). PolicyGraded requires the
	// actuator to implement GradedActuator.
	Policy Policy
	// GradedLevels is the number of quota steps between full speed and
	// freeze under PolicyGraded (4 → levels 0.75, 0.5, 0.25, frozen).
	GradedLevels int
	// FreezeSeverity is the predicted violation proximity (fraction of
	// candidate future states voting violation) at or above which
	// PolicyGraded escalates straight to a full freeze.
	FreezeSeverity float64
	// DeEscalatePeriods is how many consecutive prediction-free periods a
	// partially limited batch must accumulate before PolicyGraded raises
	// the quota one step — hysteresis so a single quiet period does not
	// bounce the quota straight back into a violation.
	DeEscalatePeriods int
}

// DefaultConfig returns the prototype's parameters.
func DefaultConfig() Config {
	return Config{
		InitialBeta:           0.01,
		BetaIncrement:         0.01,
		MaxBeta:               0.5,
		PrematureWindow:       3,
		StarvationPeriods:     20,
		StarvationProbability: 0.2,
		Policy:                PolicyBinary,
		GradedLevels:          4,
		FreezeSeverity:        1,
		DeEscalatePeriods:     2,
	}
}

func (c Config) validate() error {
	if c.InitialBeta <= 0 {
		return fmt.Errorf("throttle: InitialBeta must be positive, got %v", c.InitialBeta)
	}
	if c.BetaIncrement < 0 {
		return fmt.Errorf("throttle: BetaIncrement must be non-negative, got %v", c.BetaIncrement)
	}
	if c.MaxBeta < c.InitialBeta {
		return fmt.Errorf("throttle: MaxBeta %v below InitialBeta %v", c.MaxBeta, c.InitialBeta)
	}
	if c.PrematureWindow < 1 {
		return fmt.Errorf("throttle: PrematureWindow must be positive, got %d", c.PrematureWindow)
	}
	if c.StarvationPeriods < 1 {
		return fmt.Errorf("throttle: StarvationPeriods must be positive, got %d", c.StarvationPeriods)
	}
	if c.StarvationProbability < 0 || c.StarvationProbability > 1 {
		return fmt.Errorf("throttle: StarvationProbability must be in [0,1], got %v", c.StarvationProbability)
	}
	if c.Policy != PolicyBinary && c.Policy != PolicyGraded {
		return fmt.Errorf("throttle: unknown policy %d", int(c.Policy))
	}
	if c.Policy == PolicyGraded {
		if c.GradedLevels < 1 {
			return fmt.Errorf("throttle: GradedLevels must be positive, got %d", c.GradedLevels)
		}
		if c.FreezeSeverity <= 0 || c.FreezeSeverity > 1 {
			return fmt.Errorf("throttle: FreezeSeverity must be in (0,1], got %v", c.FreezeSeverity)
		}
		if c.DeEscalatePeriods < 1 {
			return fmt.Errorf("throttle: DeEscalatePeriods must be positive, got %d", c.DeEscalatePeriods)
		}
	}
	return nil
}

// Input is everything the controller needs for one period's decision.
type Input struct {
	// Period is the current monitoring period.
	Period int
	// PredictedViolation is the predictor's verdict for this period.
	PredictedViolation bool
	// ActualViolation reports whether the sensitive application reported a
	// QoS violation this period.
	ActualViolation bool
	// SensitiveStepDistance is the 2-D distance between the two most
	// recent sensitive-only mapped states. Only meaningful while
	// throttled; it is the phase-change signal of §3.3.
	SensitiveStepDistance float64
	// BatchActive reports whether any batch application still has work;
	// when false there is nothing to pause or resume.
	BatchActive bool
	// ViolationSeverity is the predicted violation proximity in [0,1]: the
	// fraction of the predictor's candidate future states that landed
	// inside a violation-range. PolicyBinary ignores it; PolicyGraded uses
	// it to choose the quota step.
	ViolationSeverity float64
}

// Result reports what the controller decided.
type Result struct {
	// Action performed this period.
	Action Action
	// Throttled is the batch state after the action.
	Throttled bool
	// Beta is the current learned threshold.
	Beta float64
	// RandomResume marks a resume triggered by the anti-starvation factor
	// rather than a detected phase change.
	RandomResume bool
	// BetaIncremented marks periods where a premature resume raised β.
	BetaIncremented bool
	// Level is the batch CPU fraction after the action: 1 unthrottled,
	// 0 frozen, intermediate values are graded quota steps. Always 1 or 0
	// under PolicyBinary.
	Level float64
}

// Controller drives the actuator. It is not safe for concurrent use; the
// Stay-Away runtime invokes it from a single periodic loop.
type Controller struct {
	cfg    Config
	act    Actuator
	graded GradedActuator // non-nil only under PolicyGraded
	rng    *rand.Rand

	batchIDs []string

	throttled        bool
	level            float64 // current batch CPU fraction (1 = unthrottled)
	beta             float64
	stablePeriods    int // consecutive throttled periods with distance < β
	clearPeriods     int // consecutive prediction-free periods at a partial level
	lastResumePeriod int
	lastResumePhase  bool // last resume was phase-change triggered
	resumed          bool // a resume happened at some point
}

// New returns a controller driving the given actuator for the given batch
// application IDs.
func New(cfg Config, act Actuator, batchIDs []string, rng *rand.Rand) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if act == nil {
		return nil, fmt.Errorf("throttle: nil actuator")
	}
	if rng == nil {
		return nil, fmt.Errorf("throttle: nil RNG")
	}
	c := &Controller{
		cfg:              cfg,
		act:              act,
		rng:              rng,
		batchIDs:         append([]string(nil), batchIDs...),
		level:            1,
		beta:             cfg.InitialBeta,
		lastResumePeriod: -1 << 30,
	}
	if cfg.Policy == PolicyGraded {
		ga, ok := act.(GradedActuator)
		if !ok {
			return nil, fmt.Errorf("throttle: PolicyGraded requires a GradedActuator, got %T", act)
		}
		c.graded = ga
	}
	return c, nil
}

// Beta returns the current learned threshold.
func (c *Controller) Beta() float64 { return c.beta }

// Throttled reports whether the batch applications are currently paused
// or quota-limited.
func (c *Controller) Throttled() bool { return c.throttled }

// Level returns the current batch CPU fraction (1 = unthrottled,
// 0 = frozen).
func (c *Controller) Level() float64 { return c.level }

// SetBatchIDs replaces the set of batch applications under control (§5's
// collective throttling of the logical batch VM).
func (c *Controller) SetBatchIDs(ids []string) {
	c.batchIDs = append([]string(nil), ids...)
}

// Step runs one period of the §3.3 decision logic.
func (c *Controller) Step(in Input) (Result, error) {
	res := Result{Throttled: c.throttled, Beta: c.beta, Level: c.level}

	// β learning: a violation soon after a phase-change resume means the
	// phase change "was not enough to avoid degradation".
	if c.resumed && c.lastResumePhase && !c.throttled &&
		(in.ActualViolation || in.PredictedViolation) &&
		in.Period-c.lastResumePeriod <= c.cfg.PrematureWindow {
		if c.beta < c.cfg.MaxBeta {
			c.beta += c.cfg.BetaIncrement
			if c.beta > c.cfg.MaxBeta {
				c.beta = c.cfg.MaxBeta
			}
			res.BetaIncremented = true
		}
		res.Beta = c.beta
		// Only charge the resume once.
		c.lastResumePhase = false
	}

	if c.cfg.Policy == PolicyGraded {
		if err := c.stepGraded(in, &res); err != nil {
			return res, err
		}
		res.Throttled = c.throttled
		res.Beta = c.beta
		res.Level = c.level
		//lint:stayaway-ignore failsafe Step is a cross-period protocol: stepGraded's quota tightening is deliberately held until a later Step loosens it, with the runtime's deferred fail-safe as backstop
		return res, nil
	}

	switch {
	case !c.throttled:
		if in.BatchActive && (in.PredictedViolation || in.ActualViolation) {
			if err := c.act.Pause(c.batchIDs); err != nil {
				return res, fmt.Errorf("throttle: pause: %w", err)
			}
			c.throttled = true
			c.level = 0
			c.stablePeriods = 0
			res.Action = ActionPause
		}
	default: // throttled
		if !in.BatchActive {
			// The batch workload ended while paused; release state.
			if err := c.act.Resume(c.batchIDs); err != nil {
				return res, fmt.Errorf("throttle: resume: %w", err)
			}
			c.throttled = false
			c.level = 1
			res.Action = ActionResume
			break
		}
		if in.SensitiveStepDistance > c.beta {
			// Phase change or workload-intensity change detected.
			if err := c.act.Resume(c.batchIDs); err != nil {
				return res, fmt.Errorf("throttle: resume: %w", err)
			}
			c.throttled = false
			c.level = 1
			c.resumed = true
			c.lastResumePeriod = in.Period
			c.lastResumePhase = true
			res.Action = ActionResume
			break
		}
		c.stablePeriods++
		if c.stablePeriods >= c.cfg.StarvationPeriods &&
			c.rng.Float64() < c.cfg.StarvationProbability {
			// Anti-starvation randomized resume "in hope that the batch
			// application may experience a phase transition".
			if err := c.act.Resume(c.batchIDs); err != nil {
				return res, fmt.Errorf("throttle: resume: %w", err)
			}
			c.throttled = false
			c.level = 1
			c.resumed = true
			c.lastResumePeriod = in.Period
			c.lastResumePhase = false
			res.Action = ActionResume
			res.RandomResume = true
		}
	}

	res.Throttled = c.throttled
	res.Beta = c.beta
	res.Level = c.level
	//lint:stayaway-ignore failsafe Step is a cross-period protocol: the pause is deliberately held until a later Step resumes it, with the runtime's deferred fail-safe as backstop
	return res, nil
}
