package throttle

import (
	"fmt"
	"sort"
	"sync"
)

// Arbiter merges the throttle decisions of several per-application lanes
// onto one shared pool of batch containers. Each lane's controller drives
// its own Lane handle as if it owned the batch pool; the arbiter tracks
// every lane's desired restriction per target and actuates downstream
// only when the merged effective state changes:
//
//   - freeze is a union: a target is frozen while ANY lane wants it
//     frozen;
//   - graded quotas are most-severe-wins: the effective cpu.max fraction
//     is the MINIMUM over all lanes' requested levels;
//   - release happens only when EVERY lane that requested restriction has
//     satisfied its own resume condition — one downstream release
//     actuation, not one per lane.
//
// The arbiter sits ABOVE the write-ahead ledger (wrap the downstream
// actuator in resilience.LedgeredActuator): only merged effective
// actuations reach the ledger, so crash recovery replays exactly the
// restrictions that were applied to the shared containers and still
// over-thaws, never over-freezes.
//
// While a target's effective state is frozen, lane quota changes are
// absorbed (frozen is already the most severe state); the merged quota is
// applied downstream when the last freezing lane lets go.
type Arbiter struct {
	downstream Actuator
	graded     GradedActuator // non-nil when downstream supports quotas

	mu    sync.Mutex
	lanes map[string]*arbiterLane
	// known remembers every target any lane ever touched, for ReleaseAll.
	known map[string]bool
	// effFrozen / effLevel cache the downstream state last actuated, so
	// merges only actuate on change.
	effFrozen map[string]bool
	effLevel  map[string]float64
}

// arbiterLane is one lane's desired restriction per target.
type arbiterLane struct {
	frozen map[string]bool
	level  map[string]float64
}

// NewArbiter wraps the downstream actuator (typically the ledgered cgroup
// actuator, or the simulator's).
func NewArbiter(downstream Actuator) (*Arbiter, error) {
	if downstream == nil {
		return nil, fmt.Errorf("throttle: nil downstream actuator")
	}
	a := &Arbiter{
		downstream: downstream,
		lanes:      make(map[string]*arbiterLane),
		known:      make(map[string]bool),
		effFrozen:  make(map[string]bool),
		effLevel:   make(map[string]float64),
	}
	if g, ok := downstream.(GradedActuator); ok {
		a.graded = g
	}
	return a, nil
}

// Lane returns the named lane's actuator handle, creating it on first
// use. The handle implements GradedActuator; a lane's controller drives
// it exactly as it would drive the real actuator.
func (a *Arbiter) Lane(name string) *LaneActuator {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.lanes[name]; !ok {
		a.lanes[name] = &arbiterLane{
			frozen: make(map[string]bool),
			level:  make(map[string]float64),
		}
	}
	return &LaneActuator{arbiter: a, lane: name}
}

// Effective returns the merged state last actuated for a target:
// whether it is frozen and its CPU fraction (1 = unlimited).
func (a *Arbiter) Effective(id string) (frozen bool, level float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	level = 1
	if l, ok := a.effLevel[id]; ok {
		level = l
	}
	return a.effFrozen[id], level
}

// Restricting returns the names of lanes currently requesting any
// restriction on the target, sorted — the observability surface for
// "who is holding the batch pool down".
func (a *Arbiter) Restricting(id string) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for name, ln := range a.lanes {
		// Stored levels are always < 1 (SetLevel deletes on release), so
		// any entry means the lane restricts the target.
		if _, limited := ln.level[id]; ln.frozen[id] || limited {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// ReleaseAll bypasses the merge and lifts every restriction downstream —
// the emergency thaw-all for fail-safe paths (loop exit, panic, watchdog
// stall). Lane desires are cleared so controllers that keep stepping
// afterwards re-request restriction from a clean slate.
func (a *Arbiter) ReleaseAll() error {
	a.mu.Lock()
	ids := make([]string, 0, len(a.known))
	for id := range a.known {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, ln := range a.lanes {
		ln.frozen = make(map[string]bool)
		ln.level = make(map[string]float64)
	}
	a.effFrozen = make(map[string]bool)
	a.effLevel = make(map[string]float64)
	graded := a.graded
	a.mu.Unlock()
	if len(ids) == 0 {
		return nil
	}
	// Resume unconditionally: an emergency release cannot trust the cached
	// effective state (that mismatch is exactly what faults produce).
	err := a.downstream.Resume(ids)
	if graded != nil {
		if qerr := graded.SetLevel(ids, 1); qerr != nil && err == nil {
			err = qerr
		}
	}
	return err
}

// mergeDelta collects per-target downstream transitions, grouped into
// batch downstream calls. Downstream Resume clears quotas
// (cgroup.Actuator, the simulator and the ledger all treat thaw as a full
// release), so a target thawing into another lane's surviving quota needs
// the quota re-applied AFTER the thaw. The brief fully-released window is
// the safe direction: a crash inside it makes recovery over-thaw, never
// over-freeze.
type mergeDelta struct {
	freeze, thaw []string
	levelSet     map[float64][]string // quota changes while unfrozen
	thawInto     map[float64][]string // quotas to re-apply post-thaw
}

// diffLocked compares a target's merged desire against the cached
// effective downstream state, appends the needed transition to d, and
// updates the cache. Caller holds a.mu.
func (a *Arbiter) diffLocked(d *mergeDelta, id string) {
	newFrozen, newLevel := a.mergedLocked(id)
	oldFrozen := a.effFrozen[id]
	oldLevel, hadLevel := a.effLevel[id]
	if !hadLevel {
		oldLevel = 1
	}
	switch {
	case newFrozen && !oldFrozen:
		d.freeze = append(d.freeze, id)
	case !newFrozen && oldFrozen:
		d.thaw = append(d.thaw, id)
		if newLevel < 1 {
			if d.thawInto == nil {
				d.thawInto = make(map[float64][]string)
			}
			d.thawInto[newLevel] = append(d.thawInto[newLevel], id)
		}
	case !newFrozen && newLevel != oldLevel:
		if d.levelSet == nil {
			d.levelSet = make(map[float64][]string)
		}
		d.levelSet[newLevel] = append(d.levelSet[newLevel], id)
	}
	a.effFrozen[id] = newFrozen
	a.effLevel[id] = newLevel
}

// actuate applies a collected delta downstream. Restrictions before
// releases, and tightening quotas before loosening ones, so a
// mid-sequence crash leaves the ledger holding the more severe record
// (over-thaw on replay).
func (a *Arbiter) actuate(d *mergeDelta, graded GradedActuator) error {
	if graded == nil && (len(d.levelSet) > 0 || len(d.thawInto) > 0) {
		return fmt.Errorf("throttle: downstream actuator %T is not graded", a.downstream)
	}
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if len(d.freeze) > 0 {
		record(a.downstream.Pause(d.freeze))
	}
	for _, level := range sortedLevels(d.levelSet) {
		record(graded.SetLevel(d.levelSet[level], level))
	}
	if len(d.thaw) > 0 {
		record(a.downstream.Resume(d.thaw))
	}
	for _, level := range sortedLevels(d.thawInto) {
		record(graded.SetLevel(d.thawInto[level], level))
	}
	return firstErr
}

// apply records a lane's desire for the given targets and actuates the
// merged delta downstream. fn mutates the lane's per-target desire.
func (a *Arbiter) apply(lane string, ids []string, fn func(ln *arbiterLane, id string)) error {
	a.mu.Lock()
	ln, ok := a.lanes[lane]
	if !ok {
		a.mu.Unlock()
		return fmt.Errorf("throttle: unknown arbiter lane %q", lane)
	}
	var d mergeDelta
	for _, id := range ids {
		if id == "" {
			continue
		}
		a.known[id] = true
		fn(ln, id)
		a.diffLocked(&d, id)
	}
	graded := a.graded
	a.mu.Unlock()
	return a.actuate(&d, graded)
}

// DropLane withdraws the named lane from the merge entirely: its desires
// are discarded and every target it was restricting is re-merged over the
// surviving lanes — thawed when nobody else restricts it, thawed into the
// surviving quota otherwise. Dropping a lane can only loosen restrictions
// (over-thaw is the allowed direction; over-freeze is impossible by
// construction), so this is the fail-safe half of live lane removal.
// Unknown lanes are a no-op: removal must be idempotent.
func (a *Arbiter) DropLane(name string) error {
	a.mu.Lock()
	ln, ok := a.lanes[name]
	if !ok {
		a.mu.Unlock()
		return nil
	}
	ids := make([]string, 0, len(ln.frozen)+len(ln.level))
	seen := make(map[string]bool)
	for id := range ln.frozen {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for id := range ln.level {
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	delete(a.lanes, name)
	var d mergeDelta
	for _, id := range ids {
		a.diffLocked(&d, id)
	}
	graded := a.graded
	a.mu.Unlock()
	return a.actuate(&d, graded)
}

// mergedLocked computes a target's effective (frozen, level) over all
// lanes. Caller holds a.mu.
func (a *Arbiter) mergedLocked(id string) (bool, float64) {
	frozen := false
	level := 1.0
	for _, ln := range a.lanes {
		if ln.frozen[id] {
			frozen = true
		}
		if l, ok := ln.level[id]; ok && l < level {
			level = l
		}
	}
	return frozen, level
}

// sortedLevels orders quota groups most-severe-first so tightening is
// recorded in the ledger before loosening.
func sortedLevels(m map[float64][]string) []float64 {
	out := make([]float64, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Float64s(out)
	return out
}

// LaneActuator is one lane's handle on the shared arbiter. It implements
// GradedActuator so a throttle.Controller can drive it unchanged.
type LaneActuator struct {
	arbiter *Arbiter
	lane    string
}

var _ GradedActuator = (*LaneActuator)(nil)

// Pause records this lane's freeze request; the targets freeze downstream
// unless already frozen on another lane's behalf.
func (l *LaneActuator) Pause(ids []string) error {
	return l.arbiter.apply(l.lane, ids, func(ln *arbiterLane, id string) {
		ln.frozen[id] = true
	})
}

// Resume withdraws this lane's restriction entirely (freeze and quota).
// The targets thaw downstream only once no other lane restricts them.
func (l *LaneActuator) Resume(ids []string) error {
	return l.arbiter.apply(l.lane, ids, func(ln *arbiterLane, id string) {
		delete(ln.frozen, id)
		delete(ln.level, id)
	})
}

// SetLevel records this lane's quota request; the effective downstream
// quota is the minimum over all lanes.
func (l *LaneActuator) SetLevel(ids []string, level float64) error {
	if level < 0 {
		level = 0
	}
	return l.arbiter.apply(l.lane, ids, func(ln *arbiterLane, id string) {
		if level >= 1 {
			delete(ln.level, id)
		} else {
			ln.level[id] = level
		}
	})
}
