package throttle

import (
	"fmt"
	"math"
)

// ControllerSnapshot is the serializable state of a Controller, persisted
// by the crash-recovery checkpoint. Only *learned* state survives a
// restore: β took many premature-resume observations to converge and must
// not reset to 0.01 on every crash. Actuation state (throttled, level,
// hysteresis counters) is recorded for post-mortem observability but is
// deliberately NOT restored — recovery thaws every batch target before
// the loop restarts, so the controller must come back believing nothing
// is throttled, matching the actuated reality.
type ControllerSnapshot struct {
	// Beta is the learned resume threshold.
	Beta float64 `json:"beta"`
	// Throttled, Level, StablePeriods and ClearPeriods record the
	// actuation state at snapshot time (observability only).
	Throttled     bool    `json:"throttled,omitempty"`
	Level         float64 `json:"level"`
	StablePeriods int     `json:"stable_periods,omitempty"`
	ClearPeriods  int     `json:"clear_periods,omitempty"`
}

// Snapshot captures the controller's state.
func (c *Controller) Snapshot() ControllerSnapshot {
	return ControllerSnapshot{
		Beta:          c.beta,
		Throttled:     c.throttled,
		Level:         c.level,
		StablePeriods: c.stablePeriods,
		ClearPeriods:  c.clearPeriods,
	}
}

// Restore adopts the snapshot's learned state. β is validated against the
// controller's configured bounds; the actuation state resets to
// unthrottled (see ControllerSnapshot). Restore must be called before the
// first Step.
func (c *Controller) Restore(s ControllerSnapshot) error {
	if math.IsNaN(s.Beta) || math.IsInf(s.Beta, 0) || s.Beta <= 0 {
		return fmt.Errorf("throttle: snapshot beta %v invalid", s.Beta)
	}
	beta := s.Beta
	if beta > c.cfg.MaxBeta {
		// A checkpoint from a run with a larger MaxBeta: clamp rather than
		// reject — the learned direction (resume later) is still right.
		beta = c.cfg.MaxBeta
	}
	c.beta = beta
	c.throttled = false
	c.level = 1
	c.stablePeriods = 0
	c.clearPeriods = 0
	c.resumed = false
	c.lastResumePhase = false
	c.lastResumePeriod = -1 << 30
	return nil
}

// Release lifts every restriction the controller believes it has applied
// — and, conservatively, even ones it does not: thaw and quota-clear are
// idempotent, and an emergency release (loop exit, panic, watchdog stall)
// must err toward over-thawing. After Release the controller is
// unthrottled and may keep stepping if the loop continues.
func (c *Controller) Release() error {
	// Resume unconditionally — not just when c.level says frozen — because
	// an emergency release cannot trust that the tracked level matches the
	// actuated state (that mismatch is exactly what crashes produce).
	err := c.act.Resume(c.batchIDs)
	if c.graded != nil {
		if qerr := c.graded.SetLevel(c.batchIDs, 1); qerr != nil && err == nil {
			err = qerr
		}
	}
	c.throttled = false
	c.level = 1
	c.stablePeriods = 0
	c.clearPeriods = 0
	return err
}
