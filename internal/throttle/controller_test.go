package throttle

import (
	"errors"
	"math/rand"
	"testing"
)

func newTestController(t *testing.T, cfg Config) (*Controller, *RecordingActuator) {
	t.Helper()
	act := NewRecordingActuator()
	c, err := New(cfg, act, []string{"batch1", "batch2"}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return c, act
}

func TestConfigValidation(t *testing.T) {
	base := DefaultConfig()
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero beta", func(c *Config) { c.InitialBeta = 0 }},
		{"negative increment", func(c *Config) { c.BetaIncrement = -1 }},
		{"max below initial", func(c *Config) { c.MaxBeta = 0.001 }},
		{"zero premature window", func(c *Config) { c.PrematureWindow = 0 }},
		{"zero starvation periods", func(c *Config) { c.StarvationPeriods = 0 }},
		{"probability > 1", func(c *Config) { c.StarvationProbability = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := New(cfg, NewRecordingActuator(), nil, rand.New(rand.NewSource(1))); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := New(base, nil, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("nil actuator should error")
	}
	if _, err := New(base, NewRecordingActuator(), nil, nil); err == nil {
		t.Error("nil RNG should error")
	}
}

func TestInitialState(t *testing.T) {
	c, _ := newTestController(t, DefaultConfig())
	if c.Throttled() {
		t.Error("fresh controller should not be throttled")
	}
	if c.Beta() != 0.01 {
		t.Errorf("beta = %v, want 0.01", c.Beta())
	}
}

func TestPauseOnPredictedViolation(t *testing.T) {
	c, act := newTestController(t, DefaultConfig())
	res, err := c.Step(Input{Period: 1, PredictedViolation: true, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionPause || !res.Throttled {
		t.Errorf("result = %+v, want pause", res)
	}
	if got := act.Paused(); len(got) != 2 {
		t.Errorf("paused = %v, want both batch apps", got)
	}
}

func TestPauseOnActualViolation(t *testing.T) {
	c, _ := newTestController(t, DefaultConfig())
	res, err := c.Step(Input{Period: 1, ActualViolation: true, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionPause {
		t.Errorf("action = %v, want pause", res.Action)
	}
}

func TestNoPauseWhenBatchInactive(t *testing.T) {
	c, act := newTestController(t, DefaultConfig())
	res, err := c.Step(Input{Period: 1, PredictedViolation: true, BatchActive: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionNone || res.Throttled {
		t.Errorf("result = %+v, want no action", res)
	}
	if len(act.Events()) != 0 {
		t.Errorf("events = %v, want none", act.Events())
	}
}

func TestNoActionWhenSafe(t *testing.T) {
	c, _ := newTestController(t, DefaultConfig())
	res, err := c.Step(Input{Period: 1, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionNone || res.Throttled {
		t.Errorf("result = %+v", res)
	}
}

func TestResumeOnPhaseChange(t *testing.T) {
	c, act := newTestController(t, DefaultConfig())
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	// Distance below beta: stay throttled.
	res, err := c.Step(Input{Period: 2, BatchActive: true, SensitiveStepDistance: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionNone || !res.Throttled {
		t.Errorf("below-beta step = %+v, want still throttled", res)
	}
	// Distance above beta: phase change -> resume.
	res, err = c.Step(Input{Period: 3, BatchActive: true, SensitiveStepDistance: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionResume || res.Throttled || res.RandomResume {
		t.Errorf("phase-change step = %+v, want resume", res)
	}
	if got := act.Paused(); len(got) != 0 {
		t.Errorf("still paused: %v", got)
	}
}

func TestBetaIncrementOnPrematureResume(t *testing.T) {
	cfg := DefaultConfig()
	c, _ := newTestController(t, cfg)
	// Pause, then phase-change resume at period 3.
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(Input{Period: 3, BatchActive: true, SensitiveStepDistance: 0.05}); err != nil {
		t.Fatal(err)
	}
	// Violation right after the resume: beta must grow and a new pause
	// fire.
	res, err := c.Step(Input{Period: 4, ActualViolation: true, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BetaIncremented {
		t.Errorf("result = %+v, want beta incremented", res)
	}
	if got := c.Beta(); got != cfg.InitialBeta+cfg.BetaIncrement {
		t.Errorf("beta = %v, want %v", got, cfg.InitialBeta+cfg.BetaIncrement)
	}
	if res.Action != ActionPause {
		t.Errorf("action = %v, want pause", res.Action)
	}
}

func TestBetaNotIncrementedOutsideWindow(t *testing.T) {
	cfg := DefaultConfig()
	c, _ := newTestController(t, cfg)
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(Input{Period: 2, BatchActive: true, SensitiveStepDistance: 0.05}); err != nil {
		t.Fatal(err)
	}
	// Violation long after the resume: not the resume's fault.
	res, err := c.Step(Input{Period: 2 + cfg.PrematureWindow + 5, ActualViolation: true, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.BetaIncremented || c.Beta() != cfg.InitialBeta {
		t.Errorf("beta = %v (incremented=%v), want unchanged", c.Beta(), res.BetaIncremented)
	}
}

func TestBetaChargedOnlyOnce(t *testing.T) {
	cfg := DefaultConfig()
	c, _ := newTestController(t, cfg)
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(Input{Period: 2, BatchActive: true, SensitiveStepDistance: 0.05}); err != nil {
		t.Fatal(err)
	}
	// Two violations inside the window: only the first increments.
	if _, err := c.Step(Input{Period: 3, ActualViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	// (now throttled again; resume not phase-triggered yet)
	if _, err := c.Step(Input{Period: 4, ActualViolation: true, BatchActive: true, SensitiveStepDistance: 0}); err != nil {
		t.Fatal(err)
	}
	want := cfg.InitialBeta + cfg.BetaIncrement
	if c.Beta() != want {
		t.Errorf("beta = %v, want %v (single increment)", c.Beta(), want)
	}
}

func TestBetaCapped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InitialBeta = 0.4
	cfg.BetaIncrement = 0.2
	cfg.MaxBeta = 0.5
	c, _ := newTestController(t, cfg)
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(Input{Period: 2, BatchActive: true, SensitiveStepDistance: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(Input{Period: 3, ActualViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	if c.Beta() != cfg.MaxBeta {
		t.Errorf("beta = %v, want capped at %v", c.Beta(), cfg.MaxBeta)
	}
}

func TestRandomResumeAfterStarvation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StarvationPeriods = 5
	cfg.StarvationProbability = 1.0 // deterministic for the test
	c, _ := newTestController(t, cfg)
	if _, err := c.Step(Input{Period: 0, PredictedViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	var resumed bool
	for p := 1; p <= 6; p++ {
		res, err := c.Step(Input{Period: p, BatchActive: true, SensitiveStepDistance: 0.001})
		if err != nil {
			t.Fatal(err)
		}
		if res.Action == ActionResume {
			if !res.RandomResume {
				t.Error("resume should be flagged as random")
			}
			if p < 5 {
				t.Errorf("random resume at period %d, before starvation threshold", p)
			}
			resumed = true
			break
		}
	}
	if !resumed {
		t.Error("controller never random-resumed despite probability 1")
	}
}

func TestRandomResumeProbabilityZeroNeverFires(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StarvationPeriods = 2
	cfg.StarvationProbability = 0
	c, _ := newTestController(t, cfg)
	if _, err := c.Step(Input{Period: 0, PredictedViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	for p := 1; p < 50; p++ {
		res, err := c.Step(Input{Period: p, BatchActive: true, SensitiveStepDistance: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.Action == ActionResume {
			t.Fatalf("resume fired at period %d with probability 0", p)
		}
	}
}

func TestResumeWhenBatchFinishes(t *testing.T) {
	c, act := newTestController(t, DefaultConfig())
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	res, err := c.Step(Input{Period: 2, BatchActive: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionResume || res.Throttled {
		t.Errorf("result = %+v, want state released", res)
	}
	if len(act.Paused()) != 0 {
		t.Errorf("paused = %v", act.Paused())
	}
}

func TestPauseAfterRandomResumeViolation(t *testing.T) {
	// "if the batch application continues to degrade performance of the
	// sensitive application, it is paused again" — without charging β.
	cfg := DefaultConfig()
	cfg.StarvationPeriods = 1
	cfg.StarvationProbability = 1
	c, _ := newTestController(t, cfg)
	if _, err := c.Step(Input{Period: 0, ActualViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	// One stable throttled period reaches the starvation threshold, so the
	// probability-1 random resume fires immediately.
	res, err := c.Step(Input{Period: 1, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionResume || !res.RandomResume {
		t.Fatalf("expected random resume, got %+v", res)
	}
	// Violation immediately after the random resume: pause again, beta
	// unchanged (the resume was a gamble, not a phase-change belief).
	res, err = c.Step(Input{Period: 2, ActualViolation: true, BatchActive: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Action != ActionPause {
		t.Errorf("action = %v, want pause", res.Action)
	}
	if res.BetaIncremented || c.Beta() != cfg.InitialBeta {
		t.Errorf("beta = %v (incremented=%v), want unchanged after random resume", c.Beta(), res.BetaIncremented)
	}
}

func TestActuatorErrorsPropagate(t *testing.T) {
	act := NewRecordingActuator()
	act.FailPause = errors.New("boom")
	c, err := New(DefaultConfig(), act, []string{"b"}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, BatchActive: true}); err == nil {
		t.Error("pause failure should propagate")
	}

	act2 := NewRecordingActuator()
	c2, err := New(DefaultConfig(), act2, []string{"b"}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Step(Input{Period: 1, PredictedViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	act2.FailResume = errors.New("boom")
	if _, err := c2.Step(Input{Period: 2, BatchActive: true, SensitiveStepDistance: 1}); err == nil {
		t.Error("resume failure should propagate")
	}
}

func TestSetBatchIDs(t *testing.T) {
	c, act := newTestController(t, DefaultConfig())
	c.SetBatchIDs([]string{"only"})
	if _, err := c.Step(Input{Period: 1, PredictedViolation: true, BatchActive: true}); err != nil {
		t.Fatal(err)
	}
	if got := act.Paused(); len(got) != 1 || got[0] != "only" {
		t.Errorf("paused = %v, want [only]", got)
	}
}

func TestActionString(t *testing.T) {
	if ActionNone.String() != "none" || ActionPause.String() != "pause" || ActionResume.String() != "resume" {
		t.Error("action strings wrong")
	}
	if Action(9).String() == "" {
		t.Error("unknown action should format")
	}
}
