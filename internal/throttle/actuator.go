package throttle

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"syscall"
)

// FuncActuator adapts pause/resume callbacks into an Actuator; the
// simulator's containers are driven through this.
type FuncActuator struct {
	// PauseFn and ResumeFn receive the batch application IDs. Nil
	// functions are no-ops.
	PauseFn  func(ids []string) error
	ResumeFn func(ids []string) error
}

var _ Actuator = FuncActuator{}

// Pause invokes PauseFn.
func (f FuncActuator) Pause(ids []string) error {
	if f.PauseFn == nil {
		return nil
	}
	return f.PauseFn(ids)
}

// Resume invokes ResumeFn.
func (f FuncActuator) Resume(ids []string) error {
	if f.ResumeFn == nil {
		return nil
	}
	return f.ResumeFn(ids)
}

// RecordingActuator records every actuation, for tests and event logs.
// It also implements GradedActuator so graded-policy controllers can be
// tested against it. It is safe for concurrent use.
type RecordingActuator struct {
	mu     sync.Mutex
	events []ActuationEvent
	paused map[string]bool
	levels map[string]float64
	// FailPause, FailResume and FailSetLevel inject errors for failure
	// testing.
	FailPause    error
	FailResume   error
	FailSetLevel error
}

// ActuationEvent is one recorded pause, resume or quota change.
type ActuationEvent struct {
	Action Action
	IDs    []string
	// Level is the quota fraction of an ActionLimit event.
	Level float64
}

var _ GradedActuator = (*RecordingActuator)(nil)

// NewRecordingActuator returns an empty recorder.
func NewRecordingActuator() *RecordingActuator {
	return &RecordingActuator{paused: make(map[string]bool), levels: make(map[string]float64)}
}

// Pause records a pause.
func (r *RecordingActuator) Pause(ids []string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.FailPause != nil {
		return r.FailPause
	}
	r.events = append(r.events, ActuationEvent{Action: ActionPause, IDs: append([]string(nil), ids...)})
	for _, id := range ids {
		r.paused[id] = true
	}
	return nil
}

// Resume records a resume.
func (r *RecordingActuator) Resume(ids []string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.FailResume != nil {
		return r.FailResume
	}
	r.events = append(r.events, ActuationEvent{Action: ActionResume, IDs: append([]string(nil), ids...)})
	for _, id := range ids {
		delete(r.paused, id)
	}
	return nil
}

// SetLevel records a quota change.
func (r *RecordingActuator) SetLevel(ids []string, level float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.FailSetLevel != nil {
		return r.FailSetLevel
	}
	r.events = append(r.events, ActuationEvent{Action: ActionLimit, IDs: append([]string(nil), ids...), Level: level})
	for _, id := range ids {
		if level >= 1 {
			delete(r.levels, id)
		} else {
			r.levels[id] = level
		}
	}
	return nil
}

// Level returns the recorded quota for an ID (1 when unlimited).
func (r *RecordingActuator) Level(id string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if l, ok := r.levels[id]; ok {
		return l
	}
	return 1
}

// Events returns a copy of all recorded actuations.
func (r *RecordingActuator) Events() []ActuationEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ActuationEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Paused returns the currently paused IDs, sorted.
func (r *RecordingActuator) Paused() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.paused))
	for id := range r.paused {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ProcessActuator throttles real operating-system processes with
// SIGSTOP/SIGCONT — the exact mechanism of the paper's prototype ("To
// throttle the execution of the batch application, Stay-Away sends a
// SIGSTOP signal to pause the batch application and SIGCONT to resume its
// execution"). IDs must be decimal PIDs.
type ProcessActuator struct {
	// Kill is the signal-sending function; overridable for tests. Nil uses
	// syscall.Kill.
	Kill func(pid int, sig syscall.Signal) error
}

var _ Actuator = (*ProcessActuator)(nil)

// Pause sends SIGSTOP to every PID.
func (p *ProcessActuator) Pause(ids []string) error {
	return p.signalAll(ids, syscall.SIGSTOP)
}

// Resume sends SIGCONT to every PID.
func (p *ProcessActuator) Resume(ids []string) error {
	return p.signalAll(ids, syscall.SIGCONT)
}

func (p *ProcessActuator) signalAll(ids []string, sig syscall.Signal) error {
	kill := p.Kill
	if kill == nil {
		kill = syscall.Kill
	}
	var firstErr error
	for _, id := range ids {
		pid, err := parsePID(id)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := kill(pid, sig); err != nil && !errors.Is(err, syscall.ESRCH) && firstErr == nil {
			// ESRCH (process already gone) is vacuous success: there is
			// nothing left to pause or resume, and treating it as an error
			// would wedge the controller in the throttled state.
			firstErr = fmt.Errorf("throttle: signal %v to pid %d: %w", sig, pid, err)
		}
	}
	return firstErr
}

func parsePID(id string) (int, error) {
	if id == "" {
		return 0, fmt.Errorf("throttle: empty PID")
	}
	pid := 0
	for _, r := range id {
		if r < '0' || r > '9' {
			return 0, fmt.Errorf("throttle: invalid PID %q", id)
		}
		pid = pid*10 + int(r-'0')
		if pid > 1<<22 {
			return 0, fmt.Errorf("throttle: PID %q out of range", id)
		}
	}
	if pid <= 0 {
		return 0, fmt.Errorf("throttle: invalid PID %q", id)
	}
	return pid, nil
}
