package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
)

// FailsafeAnalyzer enforces the control runtime's release contract: an
// exported entry point in internal/core or internal/throttle that
// acquires a restriction (Pause, or SetLevel below full quota) must
// release it on every path out of the function — early returns and panic
// edges included — either inline or via defer. An exit while the
// restriction is held leaves the batch pool throttled with nobody left
// to thaw it.
//
// The check is flow-sensitive: it runs a forward dataflow over the
// function's CFG tracking the set of possible (held, deferred-release)
// states, with two refinements. First, the error branch of the idiomatic
// acquire guard — `if err := a.Pause(ids); err != nil { return err }` —
// is known to be unheld (the acquire failed), so that return is never
// flagged. Second, same-package helpers are summarized: a helper that
// releases on every exit counts as a release at its call sites, and a
// helper that acquires marks its callers held.
//
// Stateful acquire-only entry points (throttle.Controller.Step holds
// restrictions across calls by design, with release owned by the
// runtime's deferred fail-safe) are out of scope: a function with no
// release anywhere — inline, deferred, or via helper — is a cross-call
// protocol and is not flagged.
var FailsafeAnalyzer = &analysis.Analyzer{
	Name: "failsafe",
	Doc:  "exported core/throttle entry points must release acquired restrictions on every exit path, including panics; release on all paths or via defer",
	Run:  runFailsafe,
}

var failsafePkgs = []string{
	"internal/core",
	"internal/throttle",
}

// failsafeReleaseNames are the calls that lift restrictions. SetLevel is
// handled separately (release only at full quota). RemoveLane and
// DropLane are the lane-removal/shutdown paths: both drain a lane out of
// the merged actuation (the arbiter's DropLane can only loosen), so an
// exit between an acquire and one of them strands the departing lane's
// restrictions just like a skipped Resume would.
var failsafeReleaseNames = map[string]bool{
	"Resume": true, "Release": true, "ReleaseAll": true,
	"Thaw": true, "runFailSafe": true,
	"RemoveLane": true, "DropLane": true,
}

// fsState is a bitset over the possible (held, deferred-release)
// combinations at a program point; the dataflow join is set union, so a
// bit is set when SOME path reaches the point in that combination. The
// unsafe exit condition is exactly the fsHeld bit: held with no deferred
// release pending.
type fsState uint8

const (
	fsFree      fsState = 1 << iota // not held, no deferred release
	fsFreeDefer                     // not held, deferred release pending
	fsHeld                          // held, no deferred release: unsafe at exit
	fsHeldDefer                     // held, deferred release pending
)

// fsAcquireOp marks every combination held, preserving the defer bit.
func fsAcquireOp(s fsState) fsState {
	var out fsState
	if s&(fsFree|fsHeld) != 0 {
		out |= fsHeld
	}
	if s&(fsFreeDefer|fsHeldDefer) != 0 {
		out |= fsHeldDefer
	}
	return out
}

// fsReleaseOp marks every combination unheld, preserving the defer bit.
func fsReleaseOp(s fsState) fsState {
	var out fsState
	if s&(fsFree|fsHeld) != 0 {
		out |= fsFree
	}
	if s&(fsFreeDefer|fsHeldDefer) != 0 {
		out |= fsFreeDefer
	}
	return out
}

// fsDeferOp marks every combination as having a deferred release.
func fsDeferOp(s fsState) fsState {
	var out fsState
	if s&(fsFree|fsFreeDefer) != 0 {
		out |= fsFreeDefer
	}
	if s&(fsHeld|fsHeldDefer) != 0 {
		out |= fsHeldDefer
	}
	return out
}

// fsRunDefers models function exit: pending deferred releases fire, so
// held-with-defer becomes unheld. Used when summarizing helpers — a
// helper's internal defer has completed by the time its caller resumes.
func fsRunDefers(s fsState) fsState {
	out := s &^ fsHeldDefer
	if s&fsHeldDefer != 0 {
		out |= fsFreeDefer
	}
	return out
}

// fsEffect classifies one call's effect on the restriction state.
type fsEffect int

const (
	fsNone fsEffect = iota
	fsAcq
	fsRel
)

// fsSummary is the per-helper effect summary: acquires means the helper
// may leave a restriction held when entered unheld; releasesAlways means
// every normal exit releases a restriction that was held on entry.
type fsSummary struct {
	acquires       bool
	releasesAlways bool
}

// fsScan owns call classification for one package pass, including the
// memoized helper summaries.
type fsScan struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
	sums  *flow.Summaries[fsSummary]
}

// classify resolves a call to its restriction effect: the actuation
// protocol names first, then same-package helpers via their flow
// summary.
func (sc *fsScan) classify(c *ast.CallExpr) fsEffect {
	switch name := calleeName(c); {
	case failsafeReleaseNames[name]:
		return fsRel
	case name == "Pause":
		return fsAcq
	case name == "SetLevel":
		if isConstOne(sc.pass, c) {
			return fsRel
		}
		return fsAcq
	}
	fn := calleeFunc(sc.pass, c)
	if fn == nil {
		return fsNone
	}
	decl, ok := sc.decls[fn]
	if !ok {
		return fsNone
	}
	sum := sc.sums.Get(fn, fsSummary{}, func() fsSummary { return sc.summarize(decl) })
	switch {
	case sum.releasesAlways:
		return fsRel
	case sum.acquires:
		return fsAcq
	}
	return fsNone
}

// deferReleases reports whether d defers a release: directly, through a
// closure body, or through a summarized helper.
func (sc *fsScan) deferReleases(d *ast.DeferStmt) bool {
	if sc.classify(d.Call) == fsRel {
		return true
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		for _, c := range callsIn(lit.Body) {
			if sc.classify(c) == fsRel {
				return true
			}
		}
	}
	return false
}

// summarize computes a helper's effect by running the same dataflow over
// its body twice: once entered unheld (does it acquire?) and once held
// (does it release on every exit?). Recursive helpers get the zero
// summary via the Summaries cut-off: neither acquire nor release.
func (sc *fsScan) summarize(decl *ast.FuncDecl) fsSummary {
	g := cfg.New(decl.Body)
	guards := sc.guardEdges(g)

	exitState := func(entry fsState) (fsState, bool) {
		fl := &fsFlow{sc: sc, entry: entry, edgeClear: guards}
		r := flow.Run[fsState](g, fl)
		s, ok := r.In[g.Exit]
		return s, ok
	}

	var sum fsSummary
	if s, ok := exitState(fsFree); ok {
		sum.acquires = fsRunDefers(s)&fsHeld != 0
	}
	if s, ok := exitState(fsHeld); ok {
		resolved := fsRunDefers(s)
		sum.releasesAlways = resolved&fsHeld == 0
	}
	return sum
}

// fsEdge keys the guard-edge refinement map.
type fsEdge struct{ from, to *cfg.Block }

// guardEdges finds the acquire-guard idiom — a block whose condition
// compares against nil an error assigned from an acquiring call in the
// same block — and returns the failure edges, along which the acquire is
// known NOT to have happened.
func (sc *fsScan) guardEdges(g *cfg.CFG) map[fsEdge]bool {
	edges := make(map[fsEdge]bool)
	for _, b := range g.Blocks {
		if len(b.Nodes) == 0 || len(b.Succs) != 2 {
			continue
		}
		cond, ok := b.Nodes[len(b.Nodes)-1].(*ast.BinaryExpr)
		if !ok || (cond.Op != token.NEQ && cond.Op != token.EQL) {
			continue
		}
		errIdent := nilComparedIdent(cond)
		if errIdent == nil {
			continue
		}
		// The LAST assignment to the guarded ident before the condition
		// must be from an acquiring expression.
		acquired := false
		for _, n := range b.Nodes[:len(b.Nodes)-1] {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			assigns := false
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == errIdent.Name {
					assigns = true
				}
			}
			if !assigns {
				continue
			}
			acquired = false
			for _, c := range callsIn(as) {
				if sc.classify(c) == fsAcq {
					acquired = true
				}
			}
		}
		if !acquired {
			continue
		}
		// Succs[0] is the then-branch: for `err != nil` that is the
		// failure path; for `err == nil` the failure path is Succs[1].
		fail := b.Succs[0]
		if cond.Op == token.EQL {
			fail = b.Succs[1]
		}
		edges[fsEdge{b, fail}] = true
	}
	return edges
}

// nilComparedIdent returns the identifier compared against nil in cond,
// or nil if the comparison has another shape.
func nilComparedIdent(cond *ast.BinaryExpr) *ast.Ident {
	if isNilIdent(cond.Y) {
		if id, ok := cond.X.(*ast.Ident); ok {
			return id
		}
	}
	if isNilIdent(cond.X) {
		if id, ok := cond.Y.(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// fsFlow is the dataflow problem: bitset lattice joined by union, with
// guard edges clearing the held bits on acquire-failure branches.
type fsFlow struct {
	sc        *fsScan
	entry     fsState
	edgeClear map[fsEdge]bool
}

func (a *fsFlow) Entry() fsState            { return a.entry }
func (a *fsFlow) Join(x, y fsState) fsState { return x | y }
func (a *fsFlow) Equal(x, y fsState) bool   { return x == y }

func (a *fsFlow) Transfer(n ast.Node, s fsState) fsState {
	if d, ok := n.(*ast.DeferStmt); ok {
		if a.sc.deferReleases(d) {
			return fsDeferOp(s)
		}
		return s
	}
	for _, c := range callsIn(n) {
		switch a.sc.classify(c) {
		case fsRel:
			s = fsReleaseOp(s)
		case fsAcq:
			s = fsAcquireOp(s)
		}
	}
	return s
}

func (a *fsFlow) EdgeTransfer(from, to *cfg.Block, s fsState) fsState {
	if a.edgeClear[fsEdge{from, to}] {
		return fsReleaseOp(s)
	}
	return s
}

func runFailsafe(pass *analysis.Pass) (any, error) {
	if !pkgMatches(pass.Pkg.Path(), failsafePkgs...) {
		return nil, nil
	}
	sc := &fsScan{
		pass:  pass,
		decls: flow.DeclIndex(pass.Files, pass.TypesInfo),
		sums:  flow.NewSummaries[fsSummary](),
	}
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			checkFailsafeFn(pass, sc, fn)
		}
	}
	return nil, nil
}

func checkFailsafeFn(pass *analysis.Pass, sc *fsScan, fn *ast.FuncDecl) {
	g := cfg.New(fn.Body)
	reach := g.Reachable()

	// Presence scan: which reachable blocks acquire, which release. A
	// function with no acquire has nothing to check; one that acquires
	// but never releases anywhere is a stateful cross-call protocol and
	// is out of scope.
	anyAcq, anyRel := false, false
	acqPos := make(map[*cfg.Block]token.Pos)
	var acqBlocks []*cfg.Block
	releaseIn := make(map[*cfg.Block]bool)
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok {
				if sc.deferReleases(d) {
					anyRel = true
					releaseIn[b] = true
				}
				continue
			}
			for _, c := range callsIn(n) {
				switch sc.classify(c) {
				case fsAcq:
					anyAcq = true
					if _, seen := acqPos[b]; !seen {
						acqPos[b] = c.Pos()
						acqBlocks = append(acqBlocks, b)
					}
				case fsRel:
					anyRel = true
					releaseIn[b] = true
				}
			}
		}
	}
	if !anyAcq || !anyRel {
		return
	}

	fl := &fsFlow{sc: sc, entry: fsFree, edgeClear: sc.guardEdges(g)}
	r := flow.Run[fsState](g, fl)
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		out, ok := r.Out[b]
		if !ok {
			continue
		}
		for _, succ := range b.Succs {
			if succ != g.Exit && succ != g.Panic {
				continue
			}
			if fl.EdgeTransfer(b, succ, out)&fsHeld == 0 {
				continue
			}
			reportFailsafe(pass, fn, g, b, succ, acqBlocks, acqPos, releaseIn)
			break
		}
	}
}

// reportFailsafe emits one diagnostic at the violating exit, with the
// acquire line and a concrete release-free witness path when one is
// found.
func reportFailsafe(pass *analysis.Pass, fn *ast.FuncDecl, g *cfg.CFG, b, succ *cfg.Block, acqBlocks []*cfg.Block, acqPos map[*cfg.Block]token.Pos, releaseIn map[*cfg.Block]bool) {
	pos := fn.Body.Rbrace
	if len(b.Nodes) > 0 {
		pos = b.Nodes[len(b.Nodes)-1].Pos()
	}
	exitWord := "return"
	if succ == g.Panic {
		exitWord = "panic"
	}

	var path []*cfg.Block
	var acq *cfg.Block
	for _, ab := range acqBlocks {
		if p := flow.Trace(ab, b, func(x *cfg.Block) bool { return releaseIn[x] }); p != nil {
			path, acq = p, ab
			break
		}
	}
	if acq == nil {
		// No release-free trace (held state reached b another way): still
		// report, anchored at the first acquire.
		acq = acqBlocks[0]
	}
	acqLine := pass.Fset.Position(acqPos[acq]).Line

	msg := fmt.Sprintf("restriction acquired at line %d is not released before this %s", acqLine, exitWord)
	if trace := traceLines(pass.Fset, path); trace != "" {
		msg += " (path: " + trace + ")"
	}
	msg += " and leaves the batch pool throttled on this path; release on every path or via defer"
	pass.Reportf(pos, "%s", msg)
}

// traceLines renders a block path as a deduplicated line-number chain,
// eliding the middle of long paths.
func traceLines(fset *token.FileSet, path []*cfg.Block) string {
	var lines []int
	for _, b := range path {
		p := b.Pos()
		if !p.IsValid() {
			continue
		}
		ln := fset.Position(p).Line
		if len(lines) == 0 || lines[len(lines)-1] != ln {
			lines = append(lines, ln)
		}
	}
	if len(lines) < 2 {
		return ""
	}
	var parts []string
	if len(lines) > 6 {
		for _, ln := range lines[:4] {
			parts = append(parts, "line "+strconv.Itoa(ln))
		}
		parts = append(parts, "...", "line "+strconv.Itoa(lines[len(lines)-1]))
	} else {
		for _, ln := range lines {
			parts = append(parts, "line "+strconv.Itoa(ln))
		}
	}
	return strings.Join(parts, " -> ")
}

// callsIn collects the calls inside n in source order, not descending
// into function literals: their bodies execute on their own schedule,
// not on this path.
func callsIn(n ast.Node) []*ast.CallExpr {
	var calls []*ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			calls = append(calls, n)
		}
		return true
	})
	return calls
}

// calleeFunc resolves the called function object, for helper-summary
// lookup. Returns nil for builtins, conversions, and function values.
func calleeFunc(pass *analysis.Pass, c *ast.CallExpr) *types.Func {
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		return methodObj(pass, fun)
	}
	return nil
}

// isConstOne reports whether the last argument of c is the constant 1.
func isConstOne(pass *analysis.Pass, c *ast.CallExpr) bool {
	if len(c.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[c.Args[len(c.Args)-1]]
	if !ok || tv.Value == nil {
		return false
	}
	one := constant.MakeInt64(1)
	return constant.Compare(tv.Value, token.EQL, one)
}

// calleeName extracts the called function or method name.
func calleeName(c *ast.CallExpr) string {
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
