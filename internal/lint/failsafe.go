package lint

import (
	"go/ast"
	"go/constant"
	"go/token"

	"repro/internal/lint/analysis"
)

// FailsafeAnalyzer enforces the control runtime's release contract: an
// exported entry point in internal/core or internal/throttle that
// acquires a restriction (Pause, or SetLevel below full quota) and later
// releases it in straight-line code must not be able to return between
// the two — an error exit there leaves the batch pool throttled with
// nobody left to thaw it. The fix is structural: release via defer (as
// core.Server's loop does with its fail-safe), which this analyzer
// recognizes and accepts anywhere in the function.
//
// Stateful acquire-only entry points (throttle.Controller.Step holds
// restrictions across calls by design, with release owned by the
// runtime's deferred fail-safe) are out of scope: the analyzer only pairs
// an acquire with a release in the same statement list, so cross-call
// protocols are not flagged.
var FailsafeAnalyzer = &analysis.Analyzer{
	Name: "failsafe",
	Doc:  "exported core/throttle entry points must not early-return between acquiring and releasing a restriction; release via defer",
	Run:  runFailsafe,
}

var failsafePkgs = []string{
	"internal/core",
	"internal/throttle",
}

// failsafeReleaseNames are the calls that lift restrictions. SetLevel is
// handled separately (release only at full quota). RemoveLane and
// DropLane are the lane-removal/shutdown paths: both drain a lane out of
// the merged actuation (the arbiter's DropLane can only loosen), so an
// early return between an acquire and one of them strands the departing
// lane's restrictions just like a skipped Resume would.
var failsafeReleaseNames = map[string]bool{
	"Resume": true, "Release": true, "ReleaseAll": true,
	"Thaw": true, "runFailSafe": true,
	"RemoveLane": true, "DropLane": true,
}

func runFailsafe(pass *analysis.Pass) (any, error) {
	if !pkgMatches(pass.Pkg.Path(), failsafePkgs...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if hasDeferredRelease(pass, fn.Body) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BlockStmt:
					checkAcquireReleaseSpan(pass, n.List)
				case *ast.CaseClause:
					checkAcquireReleaseSpan(pass, n.Body)
				case *ast.CommClause:
					checkAcquireReleaseSpan(pass, n.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkAcquireReleaseSpan pairs the first acquiring statement with the
// first later releasing statement of one statement list and flags every
// return between them. Statement granularity is deliberate: a `return`
// inside the acquire statement itself (the acquire *failed*) is fine.
func checkAcquireReleaseSpan(pass *analysis.Pass, stmts []ast.Stmt) {
	acquire := -1
	for i, stmt := range stmts {
		if stmtContains(stmt, func(c *ast.CallExpr) bool { return isAcquireCall(pass, c) }) {
			acquire = i
			break
		}
	}
	if acquire < 0 {
		return
	}
	release := -1
	for i := acquire + 1; i < len(stmts); i++ {
		if _, isDefer := stmts[i].(*ast.DeferStmt); isDefer {
			continue
		}
		if stmtContains(stmts[i], func(c *ast.CallExpr) bool { return isReleaseCall(pass, c) }) {
			release = i
			break
		}
	}
	if release < 0 {
		return
	}
	for i := acquire + 1; i < release; i++ {
		ast.Inspect(stmts[i], func(n ast.Node) bool {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				pass.Reportf(ret.Pos(),
					"return between restriction acquire (stmt at line %d) and its release (line %d) leaves the batch pool throttled on this path; release via defer",
					pass.Fset.Position(stmts[acquire].Pos()).Line,
					pass.Fset.Position(stmts[release].Pos()).Line)
			}
			// Do not descend into nested function literals: their returns
			// exit the literal, not this span.
			_, isLit := n.(*ast.FuncLit)
			return !isLit
		})
	}
}

// hasDeferredRelease reports whether any defer in the body (including
// deferred closures) reaches a release call.
func hasDeferredRelease(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isReleaseCall(pass, d.Call) {
			found = true
			return false
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			if stmtContains(lit.Body, func(c *ast.CallExpr) bool { return isReleaseCall(pass, c) }) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isAcquireCall reports whether c acquires a restriction: Pause, or
// SetLevel with a level that is not the constant 1 (full quota).
func isAcquireCall(pass *analysis.Pass, c *ast.CallExpr) bool {
	name := calleeName(c)
	switch name {
	case "Pause":
		return true
	case "SetLevel":
		return !isConstOne(pass, c)
	}
	return false
}

// isReleaseCall reports whether c lifts restrictions: a release-named
// call, or SetLevel back to the constant 1.
func isReleaseCall(pass *analysis.Pass, c *ast.CallExpr) bool {
	name := calleeName(c)
	if failsafeReleaseNames[name] {
		return true
	}
	return name == "SetLevel" && isConstOne(pass, c)
}

// isConstOne reports whether the last argument of c is the constant 1.
func isConstOne(pass *analysis.Pass, c *ast.CallExpr) bool {
	if len(c.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[c.Args[len(c.Args)-1]]
	if !ok || tv.Value == nil {
		return false
	}
	one := constant.MakeInt64(1)
	return constant.Compare(tv.Value, token.EQL, one)
}

// stmtContains reports whether any call inside n (excluding nested
// function literals for defer bodies handled separately) satisfies pred.
func stmtContains(n ast.Node, pred func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && pred(c) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// calleeName extracts the called function or method name.
func calleeName(c *ast.CallExpr) string {
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
