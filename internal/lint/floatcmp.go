package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// FloatCmpAnalyzer flags == and != between floating-point operands in the
// math packages (internal/mds, internal/stats, internal/statespace,
// internal/predictor, internal/trajectory): after any arithmetic, exact
// equality is a rounding-error lottery — use an epsilon comparison such
// as stats.ApproxEqual.
//
// Two comparisons are exempt because they are exact by construction:
//   - against the constant zero (`den == 0` before a division guards the
//     one value that is exactly representable and exactly dangerous);
//   - between two constants (evaluated exactly at compile time).
//
// Intentional exact comparisons against non-zero values (e.g. canonical
// IEEE boundary handling) must carry a //lint:stayaway-ignore floatcmp
// directive with a reason.
var FloatCmpAnalyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "no ==/!= on floating-point operands in the math packages; use epsilon helpers (stats.ApproxEqual)",
	Run:  runFloatCmp,
}

var floatCmpPkgs = []string{
	"internal/mds",
	"internal/stats",
	"internal/statespace",
	"internal/predictor",
	"internal/trajectory",
}

func runFloatCmp(pass *analysis.Pass) (any, error) {
	if !pkgMatches(pass.Pkg.Path(), floatCmpPkgs...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			xtv, xok := pass.TypesInfo.Types[bin.X]
			ytv, yok := pass.TypesInfo.Types[bin.Y]
			if !xok || !yok {
				return true
			}
			if !isFloat(xtv.Type) && !isFloat(ytv.Type) {
				return true
			}
			if isExactZero(xtv.Value) || isExactZero(ytv.Value) {
				return true
			}
			if xtv.Value != nil && ytv.Value != nil {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: bin.OpPos,
				Message: fmt.Sprintf(
					"%s on floating-point operands compares exact bit patterns; use an epsilon comparison (stats.ApproxEqual)",
					bin.Op),
				SuggestedFixes: []analysis.SuggestedFix{approxEqualFix(pass, bin)},
			})
			return true
		})
	}
	return nil, nil
}

// approxEqualFix builds the epsilon-comparison rewrite for an exact
// float comparison: `x == y` becomes `stats.ApproxEqual(x, y, 1e-9)`
// (bare ApproxEqual inside internal/stats itself), and `x != y` the
// negation. The edit spans the whole comparison so precedence is
// preserved regardless of the surrounding expression.
func approxEqualFix(pass *analysis.Pass, bin *ast.BinaryExpr) analysis.SuggestedFix {
	qual := "stats."
	if pkgMatches(pass.Pkg.Path(), "internal/stats") {
		qual = ""
	}
	call := fmt.Sprintf("%sApproxEqual(%s, %s, 1e-9)",
		qual, types.ExprString(bin.X), types.ExprString(bin.Y))
	if bin.Op == token.NEQ {
		call = "!" + call
	}
	return analysis.SuggestedFix{
		Message: "replace the exact comparison with " + qual + "ApproxEqual",
		TextEdits: []analysis.TextEdit{{
			Pos:     bin.Pos(),
			End:     bin.End(),
			NewText: []byte(call),
		}},
	}
}

// isExactZero reports whether v is the constant 0 (of any numeric form).
func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
