package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
)

// BoundedGrowthAnalyzer keeps the long-lived daemon/stream/registry
// structures from growing without bound: an append to a receiver field
// slice, or an insert into a receiver field map, must be paired with a
// cap, ring trim, or eviction. A subscriber table or replay ring that
// only ever grows turns fleet churn into a slow memory leak on exactly
// the hosts that run longest.
//
// A growth site is considered bounded when any of these hold:
//   - on EVERY path from function entry to the site, the function
//     consults a bound for the field (a len(...) check), evicts from it
//     (delete), trims it (a slice reassignment), or resets it;
//   - every path from the site to the function exit passes such a
//     guard (the append-then-trim ring idiom);
//   - some other method on the same receiver type evicts, trims, or
//     resets the field (insert-here/evict-there protocols like a
//     subscribe/unsubscribe pair).
//
// Deliberately unbounded structures (static registration sets sized by
// code, not input) carry a //lint:stayaway-ignore boundedgrowth
// directive with a reason.
var BoundedGrowthAnalyzer = &analysis.Analyzer{
	Name: "boundedgrowth",
	Doc:  "appends/map-inserts to long-lived receiver fields in internal/{daemon,stream,registry} must be guarded by a cap, ring, or eviction",
	Run:  runBoundedGrowth,
}

var boundedGrowthPkgs = []string{
	"internal/daemon",
	"internal/stream",
	"internal/registry",
}

// growthSite is one append/insert to a receiver field.
type growthSite struct {
	node  ast.Node   // the AssignStmt
	expr  ast.Expr   // the field selector being grown
	key   string     // field path with the receiver name stripped ("set.byKey")
	kind  string     // "append" or "map insert"
	block *cfg.Block // block holding the site
	idx   int        // node index within the block
}

func runBoundedGrowth(pass *analysis.Pass) (any, error) {
	if !pkgMatches(pass.Pkg.Path(), boundedGrowthPkgs...) {
		return nil, nil
	}
	// First pass: which receiver-type/field pairs have an eviction
	// (delete, trim, reset) in which methods — the cross-method
	// protocol. A method's OWN evictions don't exempt its growth sites
	// (those are what the per-path flow check is for); only an eviction
	// owned by a different method does.
	evicted := make(map[string]map[*ast.FuncDecl]bool) // "TypeName.field.path"
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv, tname := recvInfo(pass, fd)
			if recv == "" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if key, ok := evictionOf(n, recv); ok {
					full := tname + "." + key
					if evicted[full] == nil {
						evicted[full] = make(map[*ast.FuncDecl]bool)
					}
					evicted[full][fd] = true
				}
				return true
			})
		}
	}

	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv, tname := recvInfo(pass, fd)
			if recv == "" {
				continue
			}
			checkGrowthIn(pass, fd, recv, tname, evicted)
		}
	}
	return nil, nil
}

// recvInfo returns the receiver's identifier name and its type name, or
// "" when fd is not a method with a named receiver.
func recvInfo(pass *analysis.Pass, fd *ast.FuncDecl) (recv, typeName string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return "", ""
	}
	name := fd.Recv.List[0].Names[0].Name
	if name == "_" {
		return "", ""
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return name, named.Obj().Name()
	}
	return name, ""
}

// fieldKey flattens a receiver-rooted selector chain to its field path
// ("h.set.byKey" with receiver h → "set.byKey"); ok is false when e is
// not rooted at the receiver identifier.
func fieldKey(e ast.Expr, recv string) (string, bool) {
	var parts []string
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			parts = append(parts, x.Sel.Name)
			e = x.X
		case *ast.Ident:
			if x.Name != recv || len(parts) == 0 {
				return "", false
			}
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, "."), true
		default:
			return "", false
		}
	}
}

// evictionOf reports whether n shrinks or resets a receiver field:
// delete(recv.f, ...), recv.f = <no self-append> (trim/reset), or a
// len(recv.f) bound check.
func evictionOf(n ast.Node, recv string) (key string, ok bool) {
	switch n := n.(type) {
	case *ast.CallExpr:
		if id, isIdent := n.Fun.(*ast.Ident); isIdent && id.Name == "delete" && len(n.Args) >= 1 {
			if k, rooted := fieldKey(n.Args[0], recv); rooted {
				return k, true
			}
		}
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			k, rooted := fieldKey(lhs, recv)
			if !rooted {
				continue
			}
			if i < len(n.Rhs) && selfAppendOf(n.Rhs[i], lhs) {
				continue // growth, not a reset
			}
			return k, true
		}
	}
	return "", false
}

// boundCheckOf reports whether n consults len(recv.f).
func boundCheckOf(n ast.Node, recv, key string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		c, ok := x.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if id, isIdent := c.Fun.(*ast.Ident); isIdent && id.Name == "len" && len(c.Args) == 1 {
			if k, rooted := fieldKey(c.Args[0], recv); rooted && k == key {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// selfAppendOf reports whether rhs is append(target, ...) growing the
// very selector it is assigned to. append([]T(nil), x...) style resets
// are not self-appends.
func selfAppendOf(rhs ast.Expr, target ast.Expr) bool {
	c, ok := rhs.(*ast.CallExpr)
	if !ok || len(c.Args) == 0 {
		return false
	}
	id, ok := c.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	return types.ExprString(c.Args[0]) == types.ExprString(target)
}

// guardPred reports whether node n guards key's growth: a bound check,
// eviction, trim, or reset of the field.
func guardPred(n ast.Node, recv, key string) bool {
	if boundCheckOf(n, recv, key) {
		return true
	}
	guarded := false
	ast.Inspect(n, func(x ast.Node) bool {
		if guarded {
			return false
		}
		if k, ok := evictionOf(x, recv); ok && k == key {
			guarded = true
			return false
		}
		return true
	})
	return guarded
}

// mustFlow is a generic must-analysis: "pred held on every path since
// entry", joined with AND.
type mustFlow struct{ pred func(ast.Node) bool }

func (mustFlow) Entry() bool { return false }
func (m mustFlow) Transfer(n ast.Node, s bool) bool {
	if s || m.pred(n) {
		return true
	}
	return false
}
func (mustFlow) Join(a, b bool) bool  { return a && b }
func (mustFlow) Equal(a, b bool) bool { return a == b }

func checkGrowthIn(pass *analysis.Pass, fd *ast.FuncDecl, recv, tname string, evicted map[string]map[*ast.FuncDecl]bool) {
	g := cfg.New(fd.Body)
	reach := g.Reachable()

	// Collect growth sites block-by-block so flow states line up.
	var sites []growthSite
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for i, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for li, lhs := range as.Lhs {
				// Slice growth: recv.f = append(recv.f, ...).
				if k, rooted := fieldKey(lhs, recv); rooted {
					if li < len(as.Rhs) && selfAppendOf(as.Rhs[li], lhs) {
						sites = append(sites, growthSite{as, lhs, k, "append", b, i})
					}
					continue
				}
				// Map growth: recv.f[k] = v with a map-typed field.
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				k, rooted := fieldKey(ix.X, recv)
				if !rooted {
					continue
				}
				if _, isMap := pass.TypesInfo.TypeOf(ix.X).Underlying().(*types.Map); !isMap {
					continue
				}
				sites = append(sites, growthSite{as, ix.X, k, "map insert", b, i})
			}
		}
	}
	if len(sites) == 0 {
		return
	}

	for _, site := range sites {
		if tname != "" && evictedElsewhere(evicted[tname+"."+site.key], fd) {
			continue // another method on this receiver evicts the field
		}
		pred := func(n ast.Node) bool { return guardPred(n, recv, site.key) }
		if mustGuardBefore(g, site, pred) || mustGuardAfter(g, site, pred) {
			continue
		}
		pass.Reportf(site.node.Pos(),
			"unbounded growth: %s to long-lived field %s.%s has no cap, ring, or eviction on some path and no evicting method on %s; bound it or evict entries",
			site.kind, recv, site.key, receiverLabel(tname))
	}
}

// evictedElsewhere reports whether any method other than fd evicts the
// field.
func evictedElsewhere(owners map[*ast.FuncDecl]bool, fd *ast.FuncDecl) bool {
	for owner := range owners {
		if owner != fd {
			return true
		}
	}
	return false
}

func receiverLabel(tname string) string {
	if tname == "" {
		return "the receiver"
	}
	return tname
}

// mustGuardBefore: the guard is seen on every path from entry to the
// site (checked at node granularity inside the site's block).
func mustGuardBefore(g *cfg.CFG, site growthSite, pred func(ast.Node) bool) bool {
	fl := mustFlow{pred: pred}
	r := flow.Run[bool](g, fl)
	before, ok := r.In[site.block]
	if !ok {
		return true // unreachable: nothing to flag
	}
	s := before
	for _, n := range site.block.Nodes[:site.idx] {
		s = fl.Transfer(n, s)
	}
	return s
}

// mustGuardAfter: every path from the site to the normal exit passes a
// guard — the append-then-trim ring idiom. A guard later in the site's
// own block counts; otherwise every block path to Exit must cross a
// guard block.
func mustGuardAfter(g *cfg.CFG, site growthSite, pred func(ast.Node) bool) bool {
	for _, n := range site.block.Nodes[site.idx+1:] {
		if pred(n) {
			return true
		}
	}
	guardBlock := func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			if pred(n) {
				return true
			}
		}
		return false
	}
	// A guard-free path from the site to Exit means the growth can
	// escape unbounded; panic paths are crashes, not leaks.
	return flow.Trace(site.block, g.Exit, guardBlock) == nil
}
