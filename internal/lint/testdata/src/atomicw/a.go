// Package atomicw is outside internal/fsatomic, so raw write/rename
// calls must be flagged while reads and opens stay clean.
package atomicw

import "os"

func save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `write through internal/fsatomic`
}

func create(path string) (*os.File, error) {
	return os.Create(path) // want `write through internal/fsatomic`
}

func swap(oldPath, newPath string) error {
	return os.Rename(oldPath, newPath) // want `write through internal/fsatomic`
}

func load(path string) ([]byte, error) {
	return os.ReadFile(path) // reads are fine
}

func appendLog(path string) (*os.File, error) {
	// OpenFile is deliberately exempt: append-mode ledgers have their own
	// durability contract.
	return os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
}
