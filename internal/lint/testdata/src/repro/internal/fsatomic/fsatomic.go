// Package fsatomic is the one package allowed to touch the raw file
// syscall surface: nothing here is flagged.
package fsatomic

import "os"

func WriteFile(path string, data []byte) error {
	tmp, err := os.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(path+".tmp", path)
}
