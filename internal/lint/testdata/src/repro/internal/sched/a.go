// Package sched stands in for the cluster placement package, covered by
// the determinism analyzer: placement plans are reproducible artifacts,
// so scorers and placers may not read the wall clock, draw from the
// global rand source, or emit map-ordered output.
package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

type decision struct {
	Job  string
	Host string
}

func stampPlan() int64 {
	return time.Now().UnixNano() // want `time.Now`
}

func tieBreak(hosts []string) string {
	return hosts[rand.Intn(len(hosts))] // want `math/rand`
}

func seededTieBreak(r *rand.Rand, hosts []string) string {
	return hosts[r.Intn(len(hosts))] // explicitly seeded source: fine
}

func planUnsorted(assign map[string]string) []decision {
	var plan []decision
	for job, host := range assign {
		plan = append(plan, decision{Job: job, Host: host}) // want `map iteration`
	}
	return plan
}

func planSorted(assign map[string]string) []decision {
	var plan []decision
	for job, host := range assign {
		plan = append(plan, decision{Job: job, Host: host})
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].Job < plan[j].Job })
	return plan
}

func totalLoad(loads map[string]float64) float64 {
	var sum float64
	for _, l := range loads {
		sum += l // want `floating-point accumulation`
	}
	return sum
}

func dumpPlan(assign map[string]string) {
	for job, host := range assign {
		fmt.Printf("%s -> %s\n", job, host) // want `map iteration`
	}
}
