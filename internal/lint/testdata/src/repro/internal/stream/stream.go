// Package stream exercises the goroutineleak analyzer: every go
// statement must have a reachable stop signal — a context/done case
// that returns, a closable channel, or a bounded loop — on all paths.
package stream

import "context"

func work() {}

type Hub struct {
	events chan int
	done   chan struct{}
}

// GoodContextLoop: the ctx.Done case returns — a reachable stop signal.
func (h *Hub) GoodContextLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case e := <-h.events:
				_ = e
			}
		}
	}()
}

// GoodRange: channel close is the stop signal.
func (h *Hub) GoodRange() {
	go func() {
		for e := range h.events {
			_ = e
		}
	}()
}

// GoodFinite: the body runs to completion on its own.
func (h *Hub) GoodFinite() {
	go work()
}

// BadForever: nothing can ever stop the loop.
func (h *Hub) BadForever() {
	go func() { // want `no reachable stop signal`
		for {
			work()
		}
	}()
}

// BadTickOnly: the select has cases, but none of them exits — under
// lane reloads this accumulates one stuck goroutine per cycle.
func (h *Hub) BadTickOnly(tick chan int) {
	go func() { // want `no reachable stop signal`
		for {
			select {
			case <-tick:
				work()
			}
		}
	}()
}

// pump loops forever; BadNamed is flagged through the same-package
// method resolution, which the analyzer summarizes by building pump's
// own CFG.
func (h *Hub) pump() {
	for {
		work()
	}
}

func (h *Hub) BadNamed() {
	go h.pump() // want `no reachable stop signal`
}

// GoodConditionalStop: the loop can stop via the flag check — only a
// block with NO path out of the goroutine is flagged.
func (h *Hub) GoodConditionalStop(stop bool) {
	go func() {
		for {
			if stop {
				return
			}
			work()
		}
	}()
}

// GoodDoneChannel: a done-channel case that returns counts the same as
// a context.
func (h *Hub) GoodDoneChannel() {
	go func() {
		for {
			select {
			case <-h.done:
				return
			case e := <-h.events:
				_ = e
			}
		}
	}()
}
