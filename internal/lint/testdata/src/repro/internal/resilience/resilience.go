// Package resilience is both a stand-in for the ledger wrapper (calls to
// LedgeredActuator methods are never flagged) and the golden pass case
// for the allowed-package exemption: the direct actuations below are
// expected to produce no diagnostics because this package IS the
// actuation layer.
package resilience

import (
	"repro/internal/cgroup"
	"repro/internal/throttle"
)

type LedgeredActuator struct{}

func (*LedgeredActuator) Pause(ids []string) error                   { return nil }
func (*LedgeredActuator) Resume(ids []string) error                  { return nil }
func (*LedgeredActuator) SetLevel(ids []string, level float64) error { return nil }

func Recover(act throttle.Actuator, fs cgroup.Cgroupfs, ids []string) error {
	if err := act.Resume(ids); err != nil {
		return err
	}
	return fs.WriteFile("batch/cgroup.freeze", []byte("0"))
}

// Inside the ledger layer the raw surface is legal but ordered: every
// restrictive actuation must have a record call on ALL paths before it.

type Ledger struct{}

func (*Ledger) RecordFreeze(ids []string) error { return nil }

type Wrapper struct {
	inner  throttle.Actuator
	graded throttle.GradedActuator
	ledger *Ledger
}

// Pause records the freeze intent before freezing: the sanctioned order.
func (w *Wrapper) Pause(ids []string) error {
	if err := w.ledger.RecordFreeze(ids); err != nil {
		return err
	}
	return w.inner.Pause(ids)
}

// BadPause freezes without any record: crash replay cannot see it.
func (w *Wrapper) BadPause(ids []string) error {
	return w.inner.Pause(ids) // want `unledgered`
}

// BadBranchRecord records only on the audited branch; the other path
// reaches the freeze unrecorded — visible only to a per-path analysis.
func (w *Wrapper) BadBranchRecord(ids []string, audited bool) error {
	if audited {
		if err := w.ledger.RecordFreeze(ids); err != nil {
			return err
		}
	}
	return w.inner.Pause(ids) // want `unledgered`
}

// ThrottleHalf tightens quota below full without a record.
func (w *Wrapper) ThrottleHalf(ids []string) error {
	return w.graded.SetLevel(ids, 0.5) // want `unledgered`
}

// Release needs no prior record: under-recording a loosening only
// over-thaws, which is the safe direction.
func (w *Wrapper) Release(ids []string) error {
	if err := w.inner.Resume(ids); err != nil {
		return err
	}
	return w.graded.SetLevel(ids, 1)
}
