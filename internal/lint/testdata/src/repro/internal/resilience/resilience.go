// Package resilience is both a stand-in for the ledger wrapper (calls to
// LedgeredActuator methods are never flagged) and the golden pass case
// for the allowed-package exemption: the direct actuations below are
// expected to produce no diagnostics because this package IS the
// actuation layer.
package resilience

import (
	"repro/internal/cgroup"
	"repro/internal/throttle"
)

type LedgeredActuator struct{}

func (*LedgeredActuator) Pause(ids []string) error                   { return nil }
func (*LedgeredActuator) Resume(ids []string) error                  { return nil }
func (*LedgeredActuator) SetLevel(ids []string, level float64) error { return nil }

func Recover(act throttle.Actuator, fs cgroup.Cgroupfs, ids []string) error {
	if err := act.Resume(ids); err != nil {
		return err
	}
	return fs.WriteFile("batch/cgroup.freeze", []byte("0"))
}
