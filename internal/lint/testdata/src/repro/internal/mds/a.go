// Package mds stands in for a math package covered by the determinism
// analyzer: wall-clock reads, the global rand source, and order-sensitive
// map iteration are flagged; seeded sources and sorted output are not.
package mds

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clock() int64 {
	return time.Now().Unix() // want `time.Now`
}

func draw() int {
	return rand.Intn(6) // want `math/rand`
}

func drawSeeded(r *rand.Rand) int {
	return r.Intn(6) // a seeded source is reproducible: fine
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `map iteration`
	}
	return out
}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out) // sorting afterwards restores determinism
	return out
}

func sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `floating-point accumulation`
	}
	return s
}

func count(m map[string]int) int {
	n := 0
	for range m {
		n++ // integer counting is order-insensitive: fine
	}
	return n
}

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration`
	}
}
