// Package core stands in for the control-plane package covered by the
// failsafe analyzer: exported entry points that pause or throttle must
// not return between the acquire and the release unless a deferred
// release is in place.
package core

type Act interface {
	Pause(ids []string) error
	Resume(ids []string) error
	SetLevel(ids []string, level float64) error
}

func work() error { return nil }

func BadPauseWindow(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err // failing to acquire leaves nothing held: fine
	}
	if err := work(); err != nil {
		return err // want `leaves the batch pool throttled`
	}
	return a.Resume(ids)
}

func BadThrottleWindow(a Act, ids []string) error {
	if err := a.SetLevel(ids, 0.5); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // want `leaves the batch pool throttled`
	}
	return a.SetLevel(ids, 1)
}

func GoodDeferred(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	defer a.Resume(ids)
	if err := work(); err != nil {
		return err // the deferred Resume runs on every path: fine
	}
	return nil
}

func GoodStraightLine(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	err := work()
	if rerr := a.Resume(ids); rerr != nil {
		return rerr
	}
	return err
}

// badButUnexported is out of scope: only exported entry points are
// audited, internal helpers are covered by their exported callers.
func badButUnexported(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err
	}
	return a.Resume(ids)
}

// ReleaseOnly never acquires anything: fine.
func ReleaseOnly(a Act, ids []string) error {
	return a.Resume(ids)
}

// Host stands in for the lane runtime: RemoveLane and DropLane drain a
// lane's restrictions out of the merged actuation, so they count as
// releases for the span check.
type Host interface {
	RemoveLane(app string) error
	DropLane(app string)
}

func BadRemoveLaneWindow(a Act, h Host, ids []string, app string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // want `leaves the batch pool throttled`
	}
	return h.RemoveLane(app)
}

func BadDropLaneWindow(a Act, h Host, ids []string, app string) error {
	if err := a.SetLevel(ids, 0.5); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // want `leaves the batch pool throttled`
	}
	h.DropLane(app)
	return nil
}

func GoodDeferredRemoveLane(a Act, h Host, ids []string, app string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	defer h.RemoveLane(app)
	if err := work(); err != nil {
		return err // the deferred drain runs on every path: fine
	}
	return nil
}

func GoodStraightLineDropLane(a Act, h Host, ids []string, app string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	err := work()
	h.DropLane(app)
	return err
}
