// Package core stands in for the control-plane package covered by the
// failsafe analyzer: exported entry points that pause or throttle must
// not return between the acquire and the release unless a deferred
// release is in place.
package core

type Act interface {
	Pause(ids []string) error
	Resume(ids []string) error
	SetLevel(ids []string, level float64) error
}

func work() error { return nil }

func BadPauseWindow(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err // failing to acquire leaves nothing held: fine
	}
	if err := work(); err != nil {
		return err // want `leaves the batch pool throttled`
	}
	return a.Resume(ids)
}

func BadThrottleWindow(a Act, ids []string) error {
	if err := a.SetLevel(ids, 0.5); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // want `leaves the batch pool throttled`
	}
	return a.SetLevel(ids, 1)
}

func GoodDeferred(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	defer a.Resume(ids)
	if err := work(); err != nil {
		return err // the deferred Resume runs on every path: fine
	}
	return nil
}

func GoodStraightLine(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	err := work()
	if rerr := a.Resume(ids); rerr != nil {
		return rerr
	}
	return err
}

// badButUnexported is out of scope: only exported entry points are
// audited, internal helpers are covered by their exported callers.
func badButUnexported(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err
	}
	return a.Resume(ids)
}

// ReleaseOnly never acquires anything: fine.
func ReleaseOnly(a Act, ids []string) error {
	return a.Resume(ids)
}

// Host stands in for the lane runtime: RemoveLane and DropLane drain a
// lane's restrictions out of the merged actuation, so they count as
// releases for the span check.
type Host interface {
	RemoveLane(app string) error
	DropLane(app string)
}

func BadRemoveLaneWindow(a Act, h Host, ids []string, app string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // want `leaves the batch pool throttled`
	}
	return h.RemoveLane(app)
}

func BadDropLaneWindow(a Act, h Host, ids []string, app string) error {
	if err := a.SetLevel(ids, 0.5); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // want `leaves the batch pool throttled`
	}
	h.DropLane(app)
	return nil
}

func GoodDeferredRemoveLane(a Act, h Host, ids []string, app string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	defer h.RemoveLane(app)
	if err := work(); err != nil {
		return err // the deferred drain runs on every path: fine
	}
	return nil
}

func GoodStraightLineDropLane(a Act, h Host, ids []string, app string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	err := work()
	h.DropLane(app)
	return err
}

// BadBranchRelease releases only on the verbose branch. The old
// syntactic pass paired the acquire with the branch release and saw no
// return statement between them — a false negative only flow analysis
// over both paths can catch.
func BadBranchRelease(a Act, ids []string, verbose bool) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	if verbose {
		return a.Resume(ids)
	}
	return nil // want `leaves the batch pool throttled`
}

// release hides the Resume behind same-package indirection; the flow
// engine summarizes it as releasing on every exit, so its call sites
// count as releases.
func release(a Act, ids []string) error { return a.Resume(ids) }

func GoodHelperRelease(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	if err := work(); err != nil {
		release(a, ids)
		return err
	}
	return release(a, ids)
}

// throttleHalf acquires through indirection: the helper summary marks
// its callers held even though no Pause/SetLevel appears in their own
// bodies — invisible to the old syntactic pass.
func throttleHalf(a Act, ids []string) error { return a.SetLevel(ids, 0.5) }

func BadHelperAcquire(a Act, ids []string) error {
	if err := throttleHalf(a, ids); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err // want `leaves the batch pool throttled`
	}
	return a.SetLevel(ids, 1)
}

func validate() bool { return true }

// BadPanicWindow exits via the panic edge while the restriction is
// held and no deferred release is pending: the unwind strands the
// throttle. The old pass only looked at return statements.
func BadPanicWindow(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	if !validate() {
		panic("invariant violated") // want `leaves the batch pool throttled`
	}
	return a.Resume(ids)
}

func GoodPanicDeferred(a Act, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	defer a.Resume(ids)
	if !validate() {
		panic("invariant violated") // the deferred Resume runs during unwind: fine
	}
	return nil
}
