// Package workload stands in for the open-loop workload engine, covered
// by the determinism analyzer: arrival processes and queues drive the
// scenario-zoo CI gate, whose same-seed replay must reproduce every
// summary value bit-for-bit — no wall clock, no global rand source, no
// map-ordered output.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func arrivalsAtWallClock() float64 {
	return float64(time.Now().Unix() % 100) // want `time.Now`
}

func poissonGlobal(mean float64) float64 {
	return mean * rand.ExpFloat64() // want `math/rand`
}

func poissonSeeded(r *rand.Rand, mean float64) float64 {
	return mean * r.ExpFloat64() // explicitly seeded source: fine
}

func ratesUnsorted(perClass map[string]float64) []float64 {
	var rates []float64
	for _, r := range perClass {
		rates = append(rates, r) // want `map iteration`
	}
	return rates
}

func ratesSorted(perClass map[string]float64) []float64 {
	var rates []float64
	for _, r := range perClass {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	return rates
}

func totalRate(perClass map[string]float64) float64 {
	var sum float64
	for _, r := range perClass {
		sum += r // want `floating-point accumulation`
	}
	return sum
}

func dumpRates(perClass map[string]float64) {
	for class, r := range perClass {
		fmt.Printf("%s: %v\n", class, r) // want `map iteration`
	}
}
