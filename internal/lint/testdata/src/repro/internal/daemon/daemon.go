// Package daemon exercises the boundedgrowth analyzer: appends and
// map-inserts to long-lived receiver fields must be bounded by a cap,
// ring trim, or eviction — locally on every path, or by another method
// of the same receiver.
package daemon

type Queue struct {
	items []string
	index map[string]string
}

// BadAppend: plain unbounded append, no eviction anywhere on Queue.
func (q *Queue) BadAppend(v string) {
	q.items = append(q.items, v) // want `unbounded growth`
}

// BadInsert: plain unbounded map insert.
func (q *Queue) BadInsert(k, v string) {
	q.index[k] = v // want `unbounded growth`
}

type Ring struct {
	buf []int
}

// GoodRing: the append-then-trim ring idiom — every path from the
// append to the exit passes the bound check.
func (r *Ring) GoodRing(v int) {
	r.buf = append(r.buf, v)
	if len(r.buf) > 64 {
		r.buf = r.buf[1:]
	}
}

type Cache struct {
	entries map[string]int
}

// GoodCapBefore: the bound is consulted on every path before the
// insert (taking the eviction branch or not, the cap was checked).
func (c *Cache) GoodCapBefore(k string, v int) {
	if len(c.entries) >= 128 {
		for old := range c.entries {
			delete(c.entries, old)
			break
		}
	}
	c.entries[k] = v
}

type Journal struct {
	lines []string
}

// BadConditionalTrim: the trim runs only on the audited path — the
// other path grows unbounded. The old syntactic shape "a trim exists
// somewhere in the method" cannot tell these apart; the per-path flow
// can.
func (j *Journal) BadConditionalTrim(v string, audit bool) {
	if audit {
		if len(j.lines) > 100 {
			j.lines = j.lines[1:]
		}
	}
	j.lines = append(j.lines, v) // want `unbounded growth`
}

type SubTable struct {
	subs map[string]chan int
}

// Subscribe inserts; Unsubscribe evicts. The insert-here/evict-there
// protocol is bounded by the pairing, not by a local check.
func (t *SubTable) Subscribe(id string, ch chan int) {
	t.subs[id] = ch
}

func (t *SubTable) Unsubscribe(id string) {
	delete(t.subs, id)
}

type Snapshot struct {
	rows []string
}

// GoodReset: replacing the slice wholesale is a reset, not growth.
func (s *Snapshot) GoodReset(rows []string) {
	s.rows = append([]string(nil), rows...)
}

// Local variables are not long-lived: never flagged.
func (s *Snapshot) GoodLocal(rows []string) []string {
	var out []string
	for _, r := range rows {
		out = append(out, r)
	}
	return out
}
