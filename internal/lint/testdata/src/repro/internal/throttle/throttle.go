// Package throttle is a minimal stand-in for the real actuator surface,
// just enough API for the golden packages to violate the invariants.
package throttle

type Actuator interface {
	Pause(ids []string) error
	Resume(ids []string) error
}

type GradedActuator interface {
	Actuator
	SetLevel(ids []string, level float64) error
}

type ProcessActuator struct{}

func (ProcessActuator) Pause(ids []string) error  { return nil }
func (ProcessActuator) Resume(ids []string) error { return nil }
