// Package registry exercises the locksafe analyzer: a sync mutex
// locked in a function must be unlocked on every exit path, panic
// edges included.
package registry

import "sync"

type Store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	vals map[string]int
}

func check() bool { return true }

// GoodDeferred: the canonical shape; the deferred unlock covers every
// exit, unwinding panics included.
func (s *Store) GoodDeferred(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[k]
}

// GoodExplicitPaths: both exits unlock explicitly.
func (s *Store) GoodExplicitPaths(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.vals[k]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// BadEarlyReturn: the not-found path returns with the lock held —
// every later caller wedges behind it.
func (s *Store) BadEarlyReturn(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.vals[k]
	if !ok {
		return 0, false // want `still locked`
	}
	s.mu.Unlock()
	return v, true
}

// BadPanicWindow: the panic unwinds with the lock held; only the CFG's
// panic edge sees this exit.
func (s *Store) BadPanicWindow(k string, v int) {
	s.mu.Lock()
	if !check() {
		panic("corrupt store") // want `still locked`
	}
	s.vals[k] = v
	s.mu.Unlock()
}

// GoodDeferredClosure: a deferred closure unlock also covers the panic
// unwind.
func (s *Store) GoodDeferredClosure(k string, v int) {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	if !check() {
		panic("corrupt store")
	}
	s.vals[k] = v
}

// BadReadLock: the read side is tracked separately from the write side.
func (s *Store) BadReadLock(k string) (int, bool) {
	s.rw.RLock()
	v, ok := s.vals[k]
	if !ok {
		return 0, false // want `still locked`
	}
	s.rw.RUnlock()
	return v, true
}

// GoodJoin: the unlock at the join covers both branches.
func (s *Store) GoodJoin(k string) int {
	s.mu.Lock()
	v := s.vals[k]
	if v < 0 {
		v = 0
	}
	s.mu.Unlock()
	return v
}
