// Package stats stands in for a math package covered by the floatcmp
// analyzer.
package stats

const tolerance = 1e-9

func eq(a, b float64) bool {
	return a == b // want `floating-point operands`
}

func neq(a, b float64) bool {
	return a != b // want `floating-point operands`
}

func mixed(a float64) bool {
	return a == 1.5 // want `floating-point operands`
}

func f32(a, b float32) bool {
	return a != b // want `floating-point operands`
}

func zeroGuard(a float64) bool {
	return a == 0 // exact-zero guards (division-by-zero checks) are fine
}

func constOnly() bool {
	return tolerance == 1e-9 // both operands constant: decided at compile time
}

func intCmp(a, b int) bool {
	return a == b // integers compare exactly: fine
}

func ordered(a, b float64) bool {
	return a < b // ordering comparisons are fine
}
