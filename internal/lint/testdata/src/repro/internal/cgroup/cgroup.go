// Package cgroup is a minimal stand-in for the real cgroupfs and
// actuator, just enough API for the golden packages to violate the
// invariants.
package cgroup

type Cgroupfs interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte) error
}

type Actuator struct{}

func (*Actuator) Pause(ids []string) error                   { return nil }
func (*Actuator) Resume(ids []string) error                  { return nil }
func (*Actuator) SetLevel(ids []string, level float64) error { return nil }
