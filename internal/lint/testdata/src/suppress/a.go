// Package suppress exercises the //lint:stayaway-ignore directive
// handling end to end through lint.Run. The line numbers of the
// os.WriteFile calls below are asserted by TestSuppressionIntegration;
// keep them stable when editing.
package suppress

import "os"

func writeAll(path string, data []byte) {
	//lint:stayaway-ignore atomicwrite scratch file rewritten from scratch every run
	_ = os.WriteFile(path, data, 0o644) // line 11: properly suppressed

	_ = os.WriteFile(path, data, 0o644) // line 13: unsuppressed

	//lint:stayaway-ignore atomicwrite
	_ = os.WriteFile(path, data, 0o644) // line 16: directive missing reason, not suppressed

	//lint:stayaway-ignore nosuchanalyzer because reasons
	_ = os.WriteFile(path, data, 0o644) // line 19: unknown analyzer, not suppressed

	//lint:stayaway-ignore floatcmp wrong analyzer for this site
	_ = os.WriteFile(path, data, 0o644) // line 22: well-formed but wrong analyzer, not suppressed
}
