// Package notmath is outside the determinism analyzer's scope: the same
// constructs that are flagged in math packages carry no want comments.
package notmath

import (
	"math/rand"
	"time"
)

func clock() int64 {
	return time.Now().Unix()
}

func draw() int {
	return rand.Intn(6)
}

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
