// Test files may drive actuators directly: no want comments here.
package ledgered

import "repro/internal/throttle"

func driveInTest(a throttle.Actuator, ids []string) error {
	if err := a.Pause(ids); err != nil {
		return err
	}
	return a.Resume(ids)
}
