// Package ledgered is outside the actuation layer, so every raw
// actuation below must be flagged.
package ledgered

import (
	"repro/internal/cgroup"
	"repro/internal/resilience"
	"repro/internal/throttle"
)

func drive(a throttle.Actuator, g throttle.GradedActuator, ids []string) error {
	if err := a.Pause(ids); err != nil { // want `bypasses the actuation ledger`
		return err
	}
	if err := g.SetLevel(ids, 0.5); err != nil { // want `bypasses the actuation ledger`
		return err
	}
	return a.Resume(ids) // want `bypasses the actuation ledger`
}

func driveConcrete(p *throttle.ProcessActuator, c *cgroup.Actuator, ids []string) {
	_ = p.Pause(ids)          // want `bypasses the actuation ledger`
	_ = c.Resume(ids)         // want `bypasses the actuation ledger`
	_ = c.SetLevel(ids, 0.25) // want `bypasses the actuation ledger`
}

func writeControl(fs cgroup.Cgroupfs) error {
	if _, err := fs.ReadFile("batch/cgroup.freeze"); err != nil { // reads are fine
		return err
	}
	return fs.WriteFile("batch/cgroup.freeze", []byte("1")) // want `bypasses the actuation ledger`
}

// Going through the ledger wrapper is the sanctioned path: never flagged.
func ledgered(la *resilience.LedgeredActuator, ids []string) error {
	if err := la.Pause(ids); err != nil {
		return err
	}
	if err := la.SetLevel(ids, 0.5); err != nil {
		return err
	}
	return la.Resume(ids)
}

// forwarder is the sanctioned decorator shape: a same-named method
// calling through its own receiver is part of the actuation stack, not a
// bypass — previously these needed suppressions.
type forwarder struct {
	inner throttle.GradedActuator
}

func (f *forwarder) Pause(ids []string) error  { return f.inner.Pause(ids) }
func (f *forwarder) Resume(ids []string) error { return f.inner.Resume(ids) }
func (f *forwarder) SetLevel(ids []string, level float64) error {
	return f.inner.SetLevel(ids, level)
}

// A different method name is not a forward, even through the receiver.
func (f *forwarder) Stop(ids []string) error {
	return f.inner.Pause(ids) // want `bypasses the actuation ledger`
}

// A same-named function without a receiver is not a forward either.
func Pause(a throttle.Actuator, ids []string) error {
	return a.Pause(ids) // want `bypasses the actuation ledger`
}

// fsDecorator forwards control-file writes: the same exemption applies
// to the cgroupfs surface.
type fsDecorator struct {
	inner cgroup.Cgroupfs
}

func (d *fsDecorator) WriteFile(name string, data []byte) error {
	return d.inner.WriteFile(name, data)
}
