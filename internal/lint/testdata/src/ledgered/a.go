// Package ledgered is outside the actuation layer, so every raw
// actuation below must be flagged.
package ledgered

import (
	"repro/internal/cgroup"
	"repro/internal/resilience"
	"repro/internal/throttle"
)

func drive(a throttle.Actuator, g throttle.GradedActuator, ids []string) error {
	if err := a.Pause(ids); err != nil { // want `bypasses the actuation ledger`
		return err
	}
	if err := g.SetLevel(ids, 0.5); err != nil { // want `bypasses the actuation ledger`
		return err
	}
	return a.Resume(ids) // want `bypasses the actuation ledger`
}

func driveConcrete(p *throttle.ProcessActuator, c *cgroup.Actuator, ids []string) {
	_ = p.Pause(ids)          // want `bypasses the actuation ledger`
	_ = c.Resume(ids)         // want `bypasses the actuation ledger`
	_ = c.SetLevel(ids, 0.25) // want `bypasses the actuation ledger`
}

func writeControl(fs cgroup.Cgroupfs) error {
	if _, err := fs.ReadFile("batch/cgroup.freeze"); err != nil { // reads are fine
		return err
	}
	return fs.WriteFile("batch/cgroup.freeze", []byte("1")) // want `bypasses the actuation ledger`
}

// Going through the ledger wrapper is the sanctioned path: never flagged.
func ledgered(la *resilience.LedgeredActuator, ids []string) error {
	if err := la.Pause(ids); err != nil {
		return err
	}
	if err := la.SetLevel(ids, 0.5); err != nil {
		return err
	}
	return la.Resume(ids)
}
