package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// AtomicWriteAnalyzer enforces crash-safe persistence: every state or
// output file in this repository is replaced atomically (temp file +
// rename in the destination directory) via internal/fsatomic, so a crash
// mid-write — or a concurrent reader — never observes a torn file. Raw
// os.WriteFile/os.Create/os.Rename outside internal/fsatomic and _test.go
// files are flagged; fsatomic itself is the one place allowed to own the
// rename dance.
//
// os.OpenFile is deliberately not flagged: append-mode writers (the
// actuation ledger) and non-creating control-file writers (cgroupfs) have
// different, individually-audited crash contracts.
var AtomicWriteAnalyzer = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc:  "state files must be written through internal/fsatomic, not raw os.WriteFile/os.Create/os.Rename",
	Run:  runAtomicWrite,
}

func runAtomicWrite(pass *analysis.Pass) (any, error) {
	if pkgMatches(pass.Pkg.Path(), "internal/fsatomic") {
		return nil, nil
	}
	flagged := map[string]bool{"WriteFile": true, "Create": true, "Rename": true}
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := methodObj(pass, sel)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			if flagged[fn.Name()] {
				pass.Reportf(call.Pos(),
					"raw os.%s can leave a torn file after a crash; write through internal/fsatomic",
					fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
