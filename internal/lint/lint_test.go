package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
)

func TestLedgeredActuation(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LedgeredActuationAnalyzer,
		"ledgered", "repro/internal/resilience")
}

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AtomicWriteAnalyzer,
		"atomicw", "repro/internal/fsatomic")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.DeterminismAnalyzer,
		"repro/internal/mds", "repro/internal/sched", "repro/internal/workload", "notmath")
}

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, "testdata", lint.FloatCmpAnalyzer,
		"repro/internal/stats")
}

func TestFailsafe(t *testing.T) {
	analysistest.Run(t, "testdata", lint.FailsafeAnalyzer,
		"repro/internal/core")
}

func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, "testdata", lint.GoroutineLeakAnalyzer,
		"repro/internal/stream")
}

func TestBoundedGrowth(t *testing.T) {
	analysistest.Run(t, "testdata", lint.BoundedGrowthAnalyzer,
		"repro/internal/daemon")
}

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockSafeAnalyzer,
		"repro/internal/registry")
}

// TestFloatCmpSuggestedFix checks that floatcmp findings carry a
// machine-applicable rewrite: the whole comparison replaced by an
// ApproxEqual call (bare inside internal/stats, negated for !=).
func TestFloatCmpSuggestedFix(t *testing.T) {
	pkgs := analysistest.Load(t, "testdata", "repro/internal/stats")
	findings, err := lint.Run(pkgs, []*analysis.Analyzer{lint.FloatCmpAnalyzer})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	wantRewrites := map[int]string{ // keyed by finding line
		8:  "ApproxEqual(a, b, 1e-9)",
		12: "!ApproxEqual(a, b, 1e-9)",
		16: "ApproxEqual(a, 1.5, 1e-9)",
		20: "!ApproxEqual(a, b, 1e-9)",
	}
	if len(findings) != len(wantRewrites) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(wantRewrites))
	}
	for _, f := range findings {
		want, ok := wantRewrites[f.Pos.Line]
		if !ok {
			t.Errorf("unexpected finding line %d: %s", f.Pos.Line, f)
			continue
		}
		if len(f.Fixes) != 1 || len(f.Fixes[0].Edits) != 1 {
			t.Errorf("line %d: got %d fixes, want exactly 1 with 1 edit", f.Pos.Line, len(f.Fixes))
			continue
		}
		e := f.Fixes[0].Edits[0]
		if e.NewText != want {
			t.Errorf("line %d: rewrite = %q, want %q", f.Pos.Line, e.NewText, want)
		}
		if e.Pos.Line != f.Pos.Line || e.End.Line != f.Pos.Line || e.End.Column <= e.Pos.Column {
			t.Errorf("line %d: edit range %v-%v does not span the comparison", f.Pos.Line, e.Pos, e.End)
		}
	}
}

// TestAuditSuppressions exercises the -suppressions audit path over the
// suppress fixture: the one well-formed directive is reported as used.
func TestAuditSuppressions(t *testing.T) {
	pkgs := analysistest.Load(t, "testdata", "suppress")
	audits, err := lint.AuditSuppressions(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("AuditSuppressions: %v", err)
	}
	// The fixture has exactly two well-formed directives: the atomicwrite
	// one on line 10 (silences line 11, so live) and the floatcmp one on
	// line 21 (names the wrong analyzer for its site, so dead).
	if len(audits) != 2 {
		for _, a := range audits {
			t.Logf("audit: %s:%d %s used=%v", a.File, a.Line, a.Analyzer, a.Used)
		}
		t.Fatalf("got %d suppressions, want 2", len(audits))
	}
	if a := audits[0]; a.Line != 10 || a.Analyzer != "atomicwrite" || !a.Used {
		t.Errorf("audit[0] = %s:%d %s used=%v; want line 10 atomicwrite used", a.File, a.Line, a.Analyzer, a.Used)
	}
	if a := audits[1]; a.Line != 21 || a.Analyzer != "floatcmp" || a.Used {
		t.Errorf("audit[1] = %s:%d %s used=%v; want line 21 floatcmp unused", a.File, a.Line, a.Analyzer, a.Used)
	}
}

// TestSuppressionIntegration runs the full pipeline — all analyzers plus
// directive parsing — over testdata/src/suppress and pins down exactly
// which findings survive: a well-formed directive silences its line, a
// malformed or unknown one is itself a finding and silences nothing, and
// a directive naming the wrong analyzer leaves the original finding
// standing.
func TestSuppressionIntegration(t *testing.T) {
	pkgs := analysistest.Load(t, "testdata", "suppress")
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	want := []struct {
		line     int
		analyzer string
		contains string
	}{
		{13, "atomicwrite", "torn file"},
		{15, lint.DirectiveAnalyzerName, "missing reason"},
		{16, "atomicwrite", "torn file"},
		{18, lint.DirectiveAnalyzerName, `unknown analyzer "nosuchanalyzer"`},
		{19, "atomicwrite", "torn file"},
		{22, "atomicwrite", "torn file"},
	}
	if len(findings) != len(want) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(want))
	}
	for i, w := range want {
		f := findings[i]
		if f.Pos.Line != w.line || f.Analyzer != w.analyzer || !strings.Contains(f.Message, w.contains) {
			t.Errorf("finding %d = %s; want line %d analyzer %s containing %q",
				i, f, w.line, w.analyzer, w.contains)
		}
	}
	// The suppressed call on line 11 must not appear at all.
	for _, f := range findings {
		if f.Pos.Line == 11 {
			t.Errorf("suppressed line 11 still reported: %s", f)
		}
	}
}
