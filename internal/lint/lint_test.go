package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestLedgeredActuation(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LedgeredActuationAnalyzer,
		"ledgered", "repro/internal/resilience")
}

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AtomicWriteAnalyzer,
		"atomicw", "repro/internal/fsatomic")
}

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.DeterminismAnalyzer,
		"repro/internal/mds", "repro/internal/sched", "repro/internal/workload", "notmath")
}

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, "testdata", lint.FloatCmpAnalyzer,
		"repro/internal/stats")
}

func TestFailsafe(t *testing.T) {
	analysistest.Run(t, "testdata", lint.FailsafeAnalyzer,
		"repro/internal/core")
}

// TestSuppressionIntegration runs the full pipeline — all analyzers plus
// directive parsing — over testdata/src/suppress and pins down exactly
// which findings survive: a well-formed directive silences its line, a
// malformed or unknown one is itself a finding and silences nothing, and
// a directive naming the wrong analyzer leaves the original finding
// standing.
func TestSuppressionIntegration(t *testing.T) {
	pkgs := analysistest.Load(t, "testdata", "suppress")
	findings, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	want := []struct {
		line     int
		analyzer string
		contains string
	}{
		{13, "atomicwrite", "torn file"},
		{15, lint.DirectiveAnalyzerName, "missing reason"},
		{16, "atomicwrite", "torn file"},
		{18, lint.DirectiveAnalyzerName, `unknown analyzer "nosuchanalyzer"`},
		{19, "atomicwrite", "torn file"},
		{22, "atomicwrite", "torn file"},
	}
	if len(findings) != len(want) {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(findings), len(want))
	}
	for i, w := range want {
		f := findings[i]
		if f.Pos.Line != w.line || f.Analyzer != w.analyzer || !strings.Contains(f.Message, w.contains) {
			t.Errorf("finding %d = %s; want line %d analyzer %s containing %q",
				i, f, w.line, w.analyzer, w.contains)
		}
	}
	// The suppressed call on line 11 must not appear at all.
	for _, f := range findings {
		if f.Pos.Line == 11 {
			t.Errorf("suppressed line 11 still reported: %s", f)
		}
	}
}
