// Package lint is stayawaylint: a suite of static analyzers that machine-
// enforce the repository's safety and determinism contracts — the rules
// that previously lived only in DESIGN.md prose and review vigilance.
//
// The analyzers (see Analyzers) encode, respectively: the write-ahead
// ledger's upper-bound invariant (ledgeredactuation), crash-safe
// persistence (atomicwrite), reproducible mapping/prediction pipelines
// (determinism), epsilon-safe float comparison in the math packages
// (floatcmp), and the fail-safe release contract of the control runtime
// (failsafe). Run them via `go run ./cmd/stayawaylint ./...`.
//
// A finding can be acknowledged in place with a mandatory-reason
// directive; see DirectivePrefix.
package lint

import (
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Analyzers returns the full suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicWriteAnalyzer,
		DeterminismAnalyzer,
		FailsafeAnalyzer,
		FloatCmpAnalyzer,
		LedgeredActuationAnalyzer,
	}
}

// DirectiveAnalyzerName labels findings produced by the suppression
// parser itself (malformed directives). It is not suppressible.
const DirectiveAnalyzerName = "directive"

// Finding is one post-suppression diagnostic with its origin analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return f.Pos.String() + ": " + f.Message + " (" + f.Analyzer + ")"
}

// Run executes the analyzers over the packages, applies
// //lint:stayaway-ignore suppressions, and returns the surviving findings
// sorted by position. Malformed directives are findings too, under
// DirectiveAnalyzerName.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		var sups []Suppression
		for _, f := range pkg.Syntax {
			sups = append(sups, fileSuppressions(pkg.Fset, f, known, func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: DirectiveAnalyzerName,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			})...)
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				for _, s := range sups {
					if s.Covers(a.Name, pos.Filename, pos.Line) {
						return
					}
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// pkgMatches reports whether the package import path denotes one of the
// named repo packages, by path-boundary suffix match — so both the real
// tree ("repro/internal/mds") and the analyzer testdata fakes resolve to
// the same scope.
func pkgMatches(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// inTestFile reports whether pos falls in a _test.go file. Test code may
// drive actuators and filesystems directly: the invariants protect the
// production control path, and tests are precisely where raw access is
// exercised.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
