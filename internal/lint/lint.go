// Package lint is stayawaylint: a suite of static analyzers that machine-
// enforce the repository's safety and determinism contracts — the rules
// that previously lived only in DESIGN.md prose and review vigilance.
//
// The analyzers (see Analyzers) encode: the write-ahead ledger's
// upper-bound invariant (ledgeredactuation), crash-safe persistence
// (atomicwrite), reproducible mapping/prediction pipelines
// (determinism), epsilon-safe float comparison in the math packages
// (floatcmp), the fail-safe release contract of the control runtime
// (failsafe), goroutine stop signals in the streaming layers
// (goroutineleak), capped long-lived structures (boundedgrowth), and
// the lock release protocol (locksafe). The failsafe, ledger, and
// concurrency analyzers are flow-sensitive: they run a forward dataflow
// over per-function CFGs (lint/cfg, lint/flow) so invariants hold along
// every path — early returns, panic edges, helper indirection — not
// just straight-line code. Run them via `go run ./cmd/stayawaylint
// ./...`.
//
// A finding can be acknowledged in place with a mandatory-reason
// directive; see DirectivePrefix.
package lint

import (
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Analyzers returns the full suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AtomicWriteAnalyzer,
		BoundedGrowthAnalyzer,
		DeterminismAnalyzer,
		FailsafeAnalyzer,
		FloatCmpAnalyzer,
		GoroutineLeakAnalyzer,
		LedgeredActuationAnalyzer,
		LockSafeAnalyzer,
	}
}

// DirectiveAnalyzerName labels findings produced by the suppression
// parser itself (malformed directives). It is not suppressible.
const DirectiveAnalyzerName = "directive"

// Finding is one post-suppression diagnostic with its origin analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fixes are the analyzer's suggested rewrites, with token positions
	// resolved to file coordinates so consumers (JSON output, editors)
	// need no FileSet.
	Fixes []Fix
}

// Fix is one machine-applicable rewrite suggested for a Finding.
type Fix struct {
	Message string
	Edits   []FixEdit
}

// FixEdit replaces the source range [Pos, End) with NewText.
type FixEdit struct {
	Pos     token.Position
	End     token.Position
	NewText string
}

func (f Finding) String() string {
	return f.Pos.String() + ": " + f.Message + " (" + f.Analyzer + ")"
}

// Run executes the analyzers over the packages, applies
// //lint:stayaway-ignore suppressions, and returns the surviving findings
// sorted by position. Malformed directives are findings too, under
// DirectiveAnalyzerName.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		var sups []Suppression
		for _, f := range pkg.Syntax {
			sups = append(sups, fileSuppressions(pkg.Fset, f, known, func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: DirectiveAnalyzerName,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			})...)
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				for _, s := range sups {
					if s.Covers(a.Name, pos.Filename, pos.Line) {
						return
					}
				}
				f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				for _, sf := range d.SuggestedFixes {
					fix := Fix{Message: sf.Message}
					for _, e := range sf.TextEdits {
						fix.Edits = append(fix.Edits, FixEdit{
							Pos:     pkg.Fset.Position(e.Pos),
							End:     pkg.Fset.Position(e.End),
							NewText: string(e.NewText),
						})
					}
					f.Fixes = append(f.Fixes, fix)
				}
				findings = append(findings, f)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// pkgMatches reports whether the package import path denotes one of the
// named repo packages, by path-boundary suffix match — so both the real
// tree ("repro/internal/mds") and the analyzer testdata fakes resolve to
// the same scope.
func pkgMatches(pkgPath string, suffixes ...string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// inTestFile reports whether pos falls in a _test.go file. Test code may
// drive actuators and filesystems directly: the invariants protect the
// production control path, and tests are precisely where raw access is
// exercised.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
