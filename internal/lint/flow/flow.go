// Package flow is a small forward-dataflow engine over lint/cfg graphs:
// an analyzer supplies a join-semilattice of abstract states and a
// per-node transfer function, and Run iterates a worklist to the least
// fixed point. It also carries the two helpers the stayawaylint
// analyzers share: memoized per-call-site summaries for same-package
// helpers (so release/record logic hidden behind an unexported function
// is still seen), and witness-path extraction for diagnostics that name
// the concrete violating path.
package flow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/cfg"
)

// Analysis defines one forward dataflow problem. S is the abstract state;
// implementations must treat states as immutable values (Transfer and
// Join return fresh states rather than mutating their arguments).
type Analysis[S any] interface {
	// Entry is the state on function entry.
	Entry() S
	// Transfer propagates s across one block node.
	Transfer(n ast.Node, s S) S
	// Join merges the states of two incoming edges.
	Join(a, b S) S
	// Equal reports state equality; the fixed point is reached when no
	// block's output changes under Equal.
	Equal(a, b S) bool
}

// EdgeAnalysis optionally refines states per edge: EdgeTransfer adapts
// the state flowing along from→to before it joins to's input. Analyzers
// use it for branch correlation the node-level Transfer cannot express —
// e.g. "on the error branch of `if err := acquire(); err != nil`, the
// acquisition did not happen".
type EdgeAnalysis[S any] interface {
	Analysis[S]
	EdgeTransfer(from, to *cfg.Block, s S) S
}

// Result holds the fixed-point states. Blocks unreachable from entry are
// absent from both maps.
type Result[S any] struct {
	// In is the state at block entry; Out after its last node.
	In, Out map[*cfg.Block]S
	// Visits counts block evaluations until convergence (worklist
	// iterations), exposed for the convergence tests.
	Visits int
}

// Run iterates a to its least fixed point over g.
func Run[S any](g *cfg.CFG, a Analysis[S]) *Result[S] {
	r := &Result[S]{In: make(map[*cfg.Block]S), Out: make(map[*cfg.Block]S)}
	r.In[g.Entry] = a.Entry()
	work := []*cfg.Block{g.Entry}
	queued := map[*cfg.Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		r.Visits++
		s := r.In[b]
		for _, n := range b.Nodes {
			s = a.Transfer(n, s)
		}
		if old, ok := r.Out[b]; ok && a.Equal(old, s) {
			continue
		}
		r.Out[b] = s
		ea, edgeAware := any(a).(EdgeAnalysis[S])
		for _, succ := range b.Succs {
			next := s
			if edgeAware {
				next = ea.EdgeTransfer(b, succ, s)
			}
			if cur, ok := r.In[succ]; ok {
				next = a.Join(cur, next)
				if a.Equal(cur, next) {
					continue
				}
			}
			r.In[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return r
}

// NodeStates walks b's nodes from the block's fixed-point In state,
// calling visit with the state holding immediately BEFORE each node.
// Analyzers use it to test a fact at a precise statement (a return, an
// actuation call) rather than at block granularity.
func (r *Result[S]) NodeStates(a Analysis[S], b *cfg.Block, visit func(n ast.Node, before S)) {
	s, ok := r.In[b]
	if !ok {
		return // unreachable
	}
	for _, n := range b.Nodes {
		visit(n, s)
		s = a.Transfer(n, s)
	}
}

// Trace returns a shortest from→to block path along which avoid is never
// true (both endpoints included; avoid is not consulted for them), or nil
// when every such path is cut. Analyzers use it to surface the concrete
// violating path — "the release is skipped via these lines" — in a
// diagnostic.
func Trace(from, to *cfg.Block, avoid func(*cfg.Block) bool) []*cfg.Block {
	if from == to {
		return []*cfg.Block{from}
	}
	prev := map[*cfg.Block]*cfg.Block{from: nil}
	queue := []*cfg.Block{from}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, s := range b.Succs {
			if _, seen := prev[s]; seen {
				continue
			}
			if s != to && avoid != nil && avoid(s) {
				continue
			}
			prev[s] = b
			if s == to {
				var path []*cfg.Block
				for at := to; at != nil; at = prev[at] {
					path = append(path, at)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, s)
		}
	}
	return nil
}

// Summaries memoizes a per-function summary V, keyed by the function's
// types object, with a recursion cut-off: while fn's own summary is being
// computed, a re-entrant request for it (direct or mutual recursion)
// yields fallback instead of diverging. One Summaries instance per
// analyzer pass gives every call site of a helper the same computed
// summary — the "per-call-site summaries" reuse the flow tests pin down.
type Summaries[V any] struct {
	cache map[*types.Func]V
	busy  map[*types.Func]bool
	// Computed counts cold computations (cache misses), exposed for the
	// summary-reuse tests.
	Computed int
}

// NewSummaries creates an empty summary cache.
func NewSummaries[V any]() *Summaries[V] {
	return &Summaries[V]{
		cache: make(map[*types.Func]V),
		busy:  make(map[*types.Func]bool),
	}
}

// Get returns fn's summary, computing and caching it on first use.
func (s *Summaries[V]) Get(fn *types.Func, fallback V, compute func() V) V {
	if v, ok := s.cache[fn]; ok {
		return v
	}
	if s.busy[fn] {
		return fallback
	}
	s.busy[fn] = true
	s.Computed++
	v := compute()
	delete(s.busy, fn)
	s.cache[fn] = v
	return v
}

// DeclIndex maps the package's *types.Func objects to their syntax, so
// analyzers can summarize same-package helpers. Functions without bodies
// (externally linked) are omitted.
func DeclIndex(files []*ast.File, info *types.Info) map[*types.Func]*ast.FuncDecl {
	idx := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				idx[fn] = fd
			}
		}
	}
	return idx
}
