package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/cfg"
)

// assignSet is a test analysis: the state is the set of identifiers
// assigned so far (joined by union), a textbook join-semilattice.
type assignSet struct{}

func (assignSet) Entry() map[string]bool { return map[string]bool{} }

func (assignSet) Transfer(n ast.Node, s map[string]bool) map[string]bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return s
	}
	out := make(map[string]bool, len(s)+1)
	for k := range s {
		out[k] = true
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			out[id.Name] = true
		}
	}
	return out
}

func (assignSet) Join(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (assignSet) Equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func names(s map[string]bool) string {
	var ks []string
	for k := range s {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, ",")
}

func buildCFG(t *testing.T, body string) *cfg.CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return cfg.New(file.Decls[0].(*ast.FuncDecl).Body)
}

// TestJoinIsUnion pins the diamond shape: facts from both branches meet
// at the join with set union, and the exit sees the merged state.
func TestJoinIsUnion(t *testing.T) {
	g := buildCFG(t, `
if cond() {
	a = 1
} else {
	b = 2
}
c = 3`)
	r := Run[map[string]bool](g, assignSet{})
	got := names(r.In[g.Exit])
	if got != "a,b,c" {
		t.Errorf("exit state = {%s}, want {a,b,c}", got)
	}
}

// TestBranchStatesStaySeparate checks flow-sensitivity: before the join,
// each branch carries only its own facts.
func TestBranchStatesStaySeparate(t *testing.T) {
	g := buildCFG(t, `
if cond() {
	a = 1
} else {
	b = 2
}`)
	r := Run[map[string]bool](g, assignSet{})
	for b := range g.Reachable() {
		switch b.Kind {
		case "if.then":
			if got := names(r.Out[b]); got != "a" {
				t.Errorf("then out = {%s}, want {a}", got)
			}
		case "if.else":
			if got := names(r.Out[b]); got != "b" {
				t.Errorf("else out = {%s}, want {b}", got)
			}
		}
	}
}

// TestLoopConvergence: a loop whose body keeps re-adding the same facts
// must converge (monotone lattice + Equal cut-off), and facts assigned in
// the body must flow around the back edge into the loop head.
func TestLoopConvergence(t *testing.T) {
	g := buildCFG(t, `
x = 0
for i := 0; i < 10; i = i + 1 {
	y = x
}
z = y`)
	r := Run[map[string]bool](g, assignSet{})
	if got := names(r.In[g.Exit]); got != "i,x,y,z" {
		t.Errorf("exit state = {%s}, want {i,x,y,z}", got)
	}
	// Convergence sanity: chaotic iteration must settle in a handful of
	// visits, not loop-count-many.
	if r.Visits > 4*len(g.Blocks) {
		t.Errorf("worklist took %d visits for %d blocks; not converging monotonically", r.Visits, len(g.Blocks))
	}
	// The loop head's In must include body-assigned y (via the back edge).
	for b := range g.Reachable() {
		if b.Kind == "for.head" && !r.In[b]["y"] {
			t.Errorf("back edge did not propagate y into loop head: {%s}", names(r.In[b]))
		}
	}
}

// TestUnreachableBlocksAbsent: code after an unconditional return is not
// analyzed.
func TestUnreachableBlocksAbsent(t *testing.T) {
	g := buildCFG(t, `
a = 1
return
b = 2`)
	r := Run[map[string]bool](g, assignSet{})
	if r.In[g.Exit]["b"] {
		t.Errorf("dead assignment leaked into exit state: {%s}", names(r.In[g.Exit]))
	}
	for b, s := range r.Out {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "b" {
					t.Errorf("unreachable block was analyzed: %v", names(s))
				}
			}
		}
	}
}

// TestNodeStates: the before-state is per node, not per block.
func TestNodeStates(t *testing.T) {
	g := buildCFG(t, "a = 1\nb = 2")
	r := Run[map[string]bool](g, assignSet{})
	var seen []string
	r.NodeStates(assignSet{}, g.Entry, func(n ast.Node, before map[string]bool) {
		seen = append(seen, names(before))
	})
	if len(seen) != 2 || seen[0] != "" || seen[1] != "a" {
		t.Errorf("per-node before-states = %q, want [\"\" \"a\"]", seen)
	}
}

// edgeTagger layers EdgeTransfer on assignSet: crossing into an if.then
// block records the synthetic fact "then". Pins that edge refinement is
// applied on the from→to edge only, before joining the successor input.
type edgeTagger struct{ assignSet }

func (edgeTagger) EdgeTransfer(from, to *cfg.Block, s map[string]bool) map[string]bool {
	if to.Kind != "if.then" {
		return s
	}
	out := make(map[string]bool, len(s)+1)
	for k := range s {
		out[k] = true
	}
	out["then"] = true
	return out
}

func TestEdgeTransferRefinesBranch(t *testing.T) {
	g := buildCFG(t, `
if cond() {
	a = 1
} else {
	b = 2
}
c = 3`)
	r := Run[map[string]bool](g, edgeTagger{})
	for b := range g.Reachable() {
		switch b.Kind {
		case "if.then":
			if !r.In[b]["then"] {
				t.Errorf("then-branch missing edge fact: {%s}", names(r.In[b]))
			}
		case "if.else":
			if r.In[b]["then"] {
				t.Errorf("edge fact leaked into else branch: {%s}", names(r.In[b]))
			}
		}
	}
	// The join sees the fact only via the then path (union), which is the
	// correct may-semantics for a set lattice.
	if got := names(r.In[g.Exit]); got != "a,b,c,then" {
		t.Errorf("exit state = {%s}, want {a,b,c,then}", got)
	}
}

func TestTraceAvoidsBlocks(t *testing.T) {
	g := buildCFG(t, `
if cond() {
	a = 1
} else {
	b = 2
}
c = 3`)
	var thenB *cfg.Block
	for b := range g.Reachable() {
		if b.Kind == "if.then" {
			thenB = b
		}
	}
	// Unconstrained: a path entry→exit exists.
	if Trace(g.Entry, g.Exit, nil) == nil {
		t.Fatal("no unconstrained path entry→exit")
	}
	// Avoiding the then-branch still leaves the else path.
	p := Trace(g.Entry, g.Exit, func(b *cfg.Block) bool { return b == thenB })
	if p == nil {
		t.Fatal("avoiding then-branch severed all paths; else path should remain")
	}
	for _, b := range p {
		if b == thenB {
			t.Error("trace passed through an avoided block")
		}
	}
	// Avoiding the join (the only way out) severs everything.
	p = Trace(g.Entry, g.Exit, func(b *cfg.Block) bool { return b.Kind == "if.join" })
	if p != nil {
		t.Error("trace found a path through the only avoided cut vertex")
	}
}

// TestSummariesReuse: one computation per function, later Gets hit the
// cache, and recursive self-lookup yields the fallback instead of
// diverging.
func TestSummariesReuse(t *testing.T) {
	src := `package p
func helper() {}
func mutualA() { mutualB() }
func mutualB() { mutualA() }
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: make(map[*ast.Ident]types.Object)}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	idx := DeclIndex([]*ast.File{file}, info)
	if len(idx) != 3 {
		t.Fatalf("DeclIndex found %d functions, want 3", len(idx))
	}
	var helper *types.Func
	for fn := range idx {
		if fn.Name() == "helper" {
			helper = fn
		}
	}
	s := NewSummaries[int]()
	calls := 0
	compute := func() int { calls++; return 42 }
	if got := s.Get(helper, -1, compute); got != 42 {
		t.Errorf("first Get = %d, want 42", got)
	}
	if got := s.Get(helper, -1, compute); got != 42 {
		t.Errorf("second Get = %d, want 42", got)
	}
	if calls != 1 || s.Computed != 1 {
		t.Errorf("compute ran %d times (Computed=%d), want exactly once", calls, s.Computed)
	}

	// Recursion cut-off: a summary that asks for itself mid-computation
	// sees the fallback, and the final cached value is the computed one.
	var rec *types.Func
	for fn := range idx {
		if fn.Name() == "mutualA" {
			rec = fn
		}
	}
	var sawFallback bool
	v := s.Get(rec, -7, func() int {
		if inner := s.Get(rec, -7, func() int { return 99 }); inner == -7 {
			sawFallback = true
		}
		return 7
	})
	if !sawFallback {
		t.Error("re-entrant Get did not yield the fallback")
	}
	if v != 7 {
		t.Errorf("recursive Get = %d, want 7", v)
	}
	if got := s.Get(rec, -7, func() int { return 99 }); got != 7 {
		t.Errorf("cached value after recursion = %d, want 7", got)
	}
}
