package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
)

// LockSafeAnalyzer checks the arbiter/hub/registry locking protocol: a
// sync mutex locked in a function must be unlocked on every exit path,
// including panic edges. A return (or panic) with the lock held wedges
// every other lane, subscriber, or registry client behind it — in the
// control plane that converts one bug into a fleet-wide stall, the
// exact failure the Stay-Away fail-safes exist to avoid.
//
// Each mutex is tracked by its receiver expression (h.mu and v.set.mu
// are distinct), with read locks tracked separately from write locks.
// A deferred unlock covers every later exit, including unwinding
// panics; an explicit unlock must appear on each path. Intentional
// lock-across-return protocols need a //lint:stayaway-ignore locksafe
// directive with a reason.
var LockSafeAnalyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "sync mutexes locked in internal/{throttle,stream,registry} must be unlocked on every exit path, including panic edges; unlock on all paths or via defer",
	Run:  runLockSafe,
}

var lockSafePkgs = []string{
	"internal/throttle",
	"internal/stream",
	"internal/registry",
}

// lockState maps a mutex key to its fsState bitset; absent keys are
// fsFree. States are treated as immutable values.
type lockState map[string]fsState

func (s lockState) get(k string) fsState {
	if v, ok := s[k]; ok {
		return v
	}
	return fsFree
}

func (s lockState) with(k string, v fsState) lockState {
	out := make(lockState, len(s)+1)
	for key, val := range s {
		out[key] = val
	}
	out[k] = v
	return out
}

// lockOp classifies a call against the sync mutex surface; op is
// "lock"/"unlock", key identifies the mutex (with an "/R" suffix for
// the read side of an RWMutex).
func lockOp(pass *analysis.Pass, c *ast.CallExpr) (key, op string) {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	fn := methodObj(pass, sel)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	key = types.ExprString(sel.X)
	if name == "RLock" || name == "RUnlock" {
		key += "/R"
	}
	if name == "Lock" || name == "RLock" {
		return key, "lock"
	}
	return key, "unlock"
}

// lockFlow is the dataflow problem: per-mutex fsState bitsets joined by
// union.
type lockFlow struct {
	pass *analysis.Pass
}

func (lockFlow) Entry() lockState { return lockState{} }

func (f lockFlow) Transfer(n ast.Node, s lockState) lockState {
	if d, ok := n.(*ast.DeferStmt); ok {
		for _, key := range f.deferredUnlocks(d) {
			s = s.with(key, fsDeferOp(s.get(key)))
		}
		return s
	}
	for _, c := range callsIn(n) {
		switch key, op := lockOp(f.pass, c); op {
		case "lock":
			s = s.with(key, fsAcquireOp(s.get(key)))
		case "unlock":
			s = s.with(key, fsReleaseOp(s.get(key)))
		}
	}
	return s
}

// deferredUnlocks returns the mutex keys d unlocks, directly or through
// a closure body.
func (f lockFlow) deferredUnlocks(d *ast.DeferStmt) []string {
	var keys []string
	if key, op := lockOp(f.pass, d.Call); op == "unlock" {
		keys = append(keys, key)
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		for _, c := range callsIn(lit.Body) {
			if key, op := lockOp(f.pass, c); op == "unlock" {
				keys = append(keys, key)
			}
		}
	}
	return keys
}

func (lockFlow) Join(a, b lockState) lockState {
	out := make(lockState, len(a)+len(b))
	for k, v := range a {
		out[k] = v | b.get(k)
	}
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v | a.get(k)
		}
	}
	return out
}

func (lockFlow) Equal(a, b lockState) bool {
	for k, v := range a {
		if b.get(k) != v {
			return false
		}
	}
	for k, v := range b {
		if a.get(k) != v {
			return false
		}
	}
	return true
}

func runLockSafe(pass *analysis.Pass) (any, error) {
	if !pkgMatches(pass.Pkg.Path(), lockSafePkgs...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockSafeFn(pass, fd)
		}
	}
	return nil, nil
}

func checkLockSafeFn(pass *analysis.Pass, fd *ast.FuncDecl) {
	g := cfg.New(fd.Body)
	reach := g.Reachable()

	// Record where each mutex is locked and unlocked, for the witness
	// trace; skip functions with no lock at all.
	lockBlocks := make(map[string][]*cfg.Block)
	unlockIn := make(map[string]map[*cfg.Block]bool)
	fl := lockFlow{pass: pass}
	hasLock := false
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, n := range b.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok {
				for _, key := range fl.deferredUnlocks(d) {
					if unlockIn[key] == nil {
						unlockIn[key] = make(map[*cfg.Block]bool)
					}
					unlockIn[key][b] = true
				}
				continue
			}
			for _, c := range callsIn(n) {
				switch key, op := lockOp(pass, c); op {
				case "lock":
					hasLock = true
					lockBlocks[key] = append(lockBlocks[key], b)
				case "unlock":
					if unlockIn[key] == nil {
						unlockIn[key] = make(map[*cfg.Block]bool)
					}
					unlockIn[key][b] = true
				}
			}
		}
	}
	if !hasLock {
		return
	}

	r := flow.Run[lockState](g, fl)
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		out, ok := r.Out[b]
		if !ok {
			continue
		}
		exits := false
		panics := false
		for _, succ := range b.Succs {
			if succ == g.Exit {
				exits = true
			}
			if succ == g.Panic {
				panics = true
			}
		}
		if !exits && !panics {
			continue
		}
		for key, v := range out {
			if v&fsHeld == 0 {
				continue
			}
			pos := fd.Body.Rbrace
			if len(b.Nodes) > 0 {
				pos = b.Nodes[len(b.Nodes)-1].Pos()
			}
			exitWord := "return"
			if panics {
				exitWord = "panic"
			}
			mutex := key
			if cut := len(mutex) - 2; cut > 0 && mutex[cut:] == "/R" {
				mutex = mutex[:cut] + " (read lock)"
			}
			msg := fmt.Sprintf("%s is still locked at this %s", mutex, exitWord)
			var path []*cfg.Block
			for _, lb := range lockBlocks[key] {
				if p := flow.Trace(lb, b, func(x *cfg.Block) bool { return unlockIn[key][x] }); p != nil {
					path = p
					break
				}
			}
			if trace := traceLines(pass.Fset, path); trace != "" {
				msg += " (path: " + trace + ")"
			}
			msg += "; unlock on every path or defer the unlock"
			pass.Reportf(pos, "%s", msg)
		}
	}
}
