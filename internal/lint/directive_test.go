package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

func TestParseDirective(t *testing.T) {
	tests := []struct {
		name     string
		text     string
		ok       bool
		analyzer string
		reason   string
		problem  string
	}{
		{
			name:     "well formed",
			text:     "//lint:stayaway-ignore floatcmp exact round-trip identity check",
			ok:       true,
			analyzer: "floatcmp",
			reason:   "exact round-trip identity check",
		},
		{
			name:     "tabs and extra spaces collapse",
			text:     "//lint:stayaway-ignore\tatomicwrite   scratch   file",
			ok:       true,
			analyzer: "atomicwrite",
			reason:   "scratch file",
		},
		{
			name: "ordinary comment",
			text: "// just a comment",
			ok:   false,
		},
		{
			name: "different lint namespace",
			text: "//lint:ignore SA4006 classic staticcheck directive",
			ok:   false,
		},
		{
			name: "prefix glued to other text",
			text: "//lint:stayaway-ignoreX floatcmp reason",
			ok:   false,
		},
		{
			name:    "bare directive",
			text:    "//lint:stayaway-ignore",
			ok:      true,
			problem: "missing analyzer name and reason",
		},
		{
			name:     "missing reason",
			text:     "//lint:stayaway-ignore floatcmp",
			ok:       true,
			analyzer: "floatcmp",
			problem:  "missing reason (a justification is mandatory)",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			analyzer, reason, problem, ok := parseDirective(tt.text)
			if ok != tt.ok {
				t.Fatalf("ok = %v, want %v", ok, tt.ok)
			}
			if analyzer != tt.analyzer || reason != tt.reason || problem != tt.problem {
				t.Errorf("got (%q, %q, %q), want (%q, %q, %q)",
					analyzer, reason, problem, tt.analyzer, tt.reason, tt.problem)
			}
		})
	}
}

func TestFileSuppressions(t *testing.T) {
	const src = `package p

//lint:stayaway-ignore floatcmp config identity check
var a = 1

//lint:stayaway-ignore floatcmp
var b = 2

//lint:stayaway-ignore bogus some reason
var c = 3
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []analysis.Diagnostic
	known := map[string]bool{"floatcmp": true}
	sups := fileSuppressions(fset, f, known, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})

	if len(sups) != 1 {
		t.Fatalf("got %d suppressions, want 1: %+v", len(sups), sups)
	}
	s := sups[0]
	if s.Analyzer != "floatcmp" || s.Line != 3 || s.File != "p.go" || s.Reason != "config identity check" {
		t.Errorf("unexpected suppression: %+v", s)
	}

	if len(diags) != 2 {
		t.Fatalf("got %d directive diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "missing reason") {
		t.Errorf("diag 0 = %q, want missing-reason complaint", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, `unknown analyzer "bogus"`) {
		t.Errorf("diag 1 = %q, want unknown-analyzer complaint", diags[1].Message)
	}
}

func TestSuppressionCovers(t *testing.T) {
	s := Suppression{File: "a.go", Line: 10, Analyzer: "floatcmp", Reason: "r"}
	tests := []struct {
		analyzer string
		file     string
		line     int
		want     bool
	}{
		{"floatcmp", "a.go", 10, true},  // same line (trailing directive)
		{"floatcmp", "a.go", 11, true},  // next line (preceding directive)
		{"floatcmp", "a.go", 12, false}, // two lines below
		{"floatcmp", "a.go", 9, false},  // line above
		{"atomicwrite", "a.go", 10, false},
		{"floatcmp", "b.go", 10, false},
	}
	for _, tt := range tests {
		if got := s.Covers(tt.analyzer, tt.file, tt.line); got != tt.want {
			t.Errorf("Covers(%q, %q, %d) = %v, want %v",
				tt.analyzer, tt.file, tt.line, got, tt.want)
		}
	}
}
