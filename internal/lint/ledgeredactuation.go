package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
	"repro/internal/lint/flow"
)

// LedgeredActuationAnalyzer enforces the write-ahead ledger's upper-bound
// invariant: every restrictive actuation must be recorded before it
// touches a cgroup, so crash recovery can only over-thaw. That holds only
// if actuations flow through resilience.LedgeredActuator (or the
// throttle.Arbiter stack above it) — a single direct call to a raw
// actuator or to the cgroup filesystem reopens the crash-starvation hole.
//
// Flagged outside internal/throttle, internal/resilience, internal/cgroup
// and _test.go files:
//   - calls to Pause/Resume/SetLevel methods declared in internal/throttle
//     or internal/cgroup (the raw actuator surface; the interface method
//     counts, since the static type cannot prove the dynamic value is
//     ledgered);
//   - calls to WriteFile methods declared in internal/cgroup (the
//     freeze/thaw/quota control-file writers behind the actuator).
//
// One shape is exempt without a directive: a forwarding decorator — a
// method that calls the SAME-named method on a field reached through its
// own receiver (`return c.inner.Pause(ids)` inside a Pause method). Such
// wrappers sit inside the actuation stack by construction; the ledger
// invariant is carried by whatever wraps or is wrapped by them.
//
// Inside internal/resilience the raw surface is legal but ordered: the
// analyzer runs a must-analysis over each function's CFG requiring every
// restrictive actuation (Pause, or SetLevel with a constant level below
// full quota) to be preceded by a ledger record call (Record*/Append) on
// ALL paths. Loosening calls (Resume, SetLevel back to 1, variable-level
// SetLevel whose restrictiveness is data-dependent) are not checked —
// under-recording a release only over-thaws, which is the safe direction.
//
// Deliberate bypasses — fail-safe over-thaw paths, fault-injection
// suites — must carry a //lint:stayaway-ignore ledgeredactuation
// directive with a reason.
var LedgeredActuationAnalyzer = &analysis.Analyzer{
	Name: "ledgeredactuation",
	Doc:  "actuations must go through the write-ahead ledger (LedgeredActuator/Arbiter), not raw actuators or cgroupfs writers; restrictive actuations in the ledger layer must record first on every path",
	Run:  runLedgeredActuation,
}

// ledgerExemptPkgs are the packages that constitute the actuation layer
// itself: the raw actuators, the ledger wrapper, and the fault-injection
// decorators that sit below the ledger by construction.
var ledgerExemptPkgs = []string{
	"internal/throttle",
	"internal/resilience",
	"internal/cgroup",
}

func runLedgeredActuation(pass *analysis.Pass) (any, error) {
	if pkgMatches(pass.Pkg.Path(), "internal/resilience") {
		checkRecordBeforeRestrict(pass)
		return nil, nil
	}
	if pkgMatches(pass.Pkg.Path(), ledgerExemptPkgs...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			enclosing, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := methodObj(pass, sel)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				declPkg := fn.Pkg().Path()
				switch fn.Name() {
				case "Pause", "Resume", "SetLevel":
					if !pkgMatches(declPkg, "internal/throttle", "internal/cgroup") {
						return true
					}
					if isDecoratorForward(enclosing, fn.Name(), sel) {
						return true
					}
					pass.Reportf(call.Pos(),
						"direct call to (%s).%s bypasses the actuation ledger; actuate through resilience.LedgeredActuator or the throttle.Arbiter",
						declPkg, fn.Name())
				case "WriteFile":
					if !pkgMatches(declPkg, "internal/cgroup") {
						return true
					}
					if isDecoratorForward(enclosing, fn.Name(), sel) {
						return true
					}
					pass.Reportf(call.Pos(),
						"direct cgroup control-file write via (%s).WriteFile bypasses the actuation ledger; use the ledgered actuator",
						declPkg)
				}
				return true
			})
		}
	}
	return nil, nil
}

// isDecoratorForward reports whether a raw-surface call is the sanctioned
// decorator shape: the enclosing declaration is a method with the same
// name as the callee, and the callee's receiver expression is reached
// through the method's own receiver (c.inner.Pause inside (c).Pause).
// Calls through globals or parameters, and same-receiver calls under a
// different method name, are not forwards.
func isDecoratorForward(enclosing *ast.FuncDecl, calleeName string, sel *ast.SelectorExpr) bool {
	if enclosing == nil || enclosing.Recv == nil || enclosing.Name.Name != calleeName {
		return false
	}
	if len(enclosing.Recv.List) != 1 || len(enclosing.Recv.List[0].Names) != 1 {
		return false
	}
	recvName := enclosing.Recv.List[0].Names[0].Name
	// Walk the selector chain of the callee's receiver down to its root
	// identifier; it must be the method receiver, and at least one field
	// hop must separate them (plain c.Pause would be recursion, not a
	// forward).
	expr := sel.X
	hops := 0
	for {
		switch x := expr.(type) {
		case *ast.SelectorExpr:
			expr = x.X
			hops++
		case *ast.Ident:
			return hops > 0 && x.Name == recvName
		default:
			return false
		}
	}
}

// recordFlow is the must-analysis for the record-before-restrict check:
// the state is "a ledger record has happened on EVERY path since entry"
// (join = AND), flipped true by any Record*/Append call.
type recordFlow struct{}

func (recordFlow) Entry() bool { return false }

func (recordFlow) Transfer(n ast.Node, s bool) bool {
	if s {
		return true
	}
	for _, c := range callsIn(n) {
		if isRecordCall(c) {
			return true
		}
	}
	return s
}

func (recordFlow) Join(a, b bool) bool  { return a && b }
func (recordFlow) Equal(a, b bool) bool { return a == b }

func isRecordCall(c *ast.CallExpr) bool {
	name := calleeName(c)
	return strings.HasPrefix(name, "Record") || name == "Append"
}

// isRestrictiveActuation reports whether c tightens the sandbox: a raw
// Pause, or a raw SetLevel whose level is a constant below full quota.
// Variable-level SetLevel is data-dependent and left to the runtime
// ordering in LedgeredActuator.SetLevel itself.
func isRestrictiveActuation(pass *analysis.Pass, c *ast.CallExpr) bool {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := methodObj(pass, sel)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if !pkgMatches(fn.Pkg().Path(), "internal/throttle", "internal/cgroup") {
		return false
	}
	switch fn.Name() {
	case "Pause":
		return true
	case "SetLevel":
		if len(c.Args) == 0 {
			return false
		}
		tv, ok := pass.TypesInfo.Types[c.Args[len(c.Args)-1]]
		if !ok || tv.Value == nil {
			return false
		}
		if k := tv.Value.Kind(); k != constant.Int && k != constant.Float {
			return false
		}
		return constant.Compare(tv.Value, token.LSS, constant.MakeInt64(1))
	}
	return false
}

// checkRecordBeforeRestrict verifies the write-ahead ordering inside the
// ledger layer: on every path from function entry to a restrictive
// actuation there is a prior record call. Violations report a concrete
// record-free path.
func checkRecordBeforeRestrict(pass *analysis.Pass) {
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := cfg.New(fd.Body)
			fl := recordFlow{}
			r := flow.Run[bool](g, fl)
			recordIn := make(map[*cfg.Block]bool)
			for _, b := range g.Blocks {
				for _, n := range b.Nodes {
					for _, c := range callsIn(n) {
						if isRecordCall(c) {
							recordIn[b] = true
						}
					}
				}
			}
			for _, b := range g.Blocks {
				block := b
				r.NodeStates(fl, b, func(n ast.Node, before bool) {
					s := before
					for _, c := range callsIn(n) {
						if isRecordCall(c) {
							s = true
							continue
						}
						if !s && isRestrictiveActuation(pass, c) {
							msg := "restrictive actuation is not preceded by a ledger record on every path; an unledgered freeze here starves the batch pool across a crash (record first, actuate second)"
							if p := flow.Trace(g.Entry, block, func(x *cfg.Block) bool { return recordIn[x] }); p != nil {
								if trace := traceLines(pass.Fset, p); trace != "" {
									msg += " (record-free path: " + trace + ")"
								}
							}
							pass.Reportf(c.Pos(), "%s", msg)
						}
					}
				})
			}
		}
	}
}

// methodObj resolves the *types.Func a selector call denotes: a method
// (value.Method(...), including interface methods — resolved to where the
// method is declared) or a package-qualified function (pkg.Func(...)).
func methodObj(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Func {
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}
