package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// LedgeredActuationAnalyzer enforces the write-ahead ledger's upper-bound
// invariant: every restrictive actuation must be recorded before it
// touches a cgroup, so crash recovery can only over-thaw. That holds only
// if actuations flow through resilience.LedgeredActuator (or the
// throttle.Arbiter stack above it) — a single direct call to a raw
// actuator or to the cgroup filesystem reopens the crash-starvation hole.
//
// Flagged outside internal/throttle, internal/resilience, internal/cgroup
// and _test.go files:
//   - calls to Pause/Resume/SetLevel methods declared in internal/throttle
//     or internal/cgroup (the raw actuator surface; the interface method
//     counts, since the static type cannot prove the dynamic value is
//     ledgered);
//   - calls to WriteFile methods declared in internal/cgroup (the
//     freeze/thaw/quota control-file writers behind the actuator).
//
// Calls to methods declared in internal/resilience (LedgeredActuator) are
// never flagged. Deliberate bypasses — fail-safe over-thaw paths, fault-
// injection suites — must carry a //lint:stayaway-ignore ledgeredactuation
// directive with a reason.
var LedgeredActuationAnalyzer = &analysis.Analyzer{
	Name: "ledgeredactuation",
	Doc:  "actuations must go through the write-ahead ledger (LedgeredActuator/Arbiter), not raw actuators or cgroupfs writers",
	Run:  runLedgeredActuation,
}

// ledgerExemptPkgs are the packages that constitute the actuation layer
// itself: the raw actuators, the ledger wrapper, and the fault-injection
// decorators that sit below the ledger by construction.
var ledgerExemptPkgs = []string{
	"internal/throttle",
	"internal/resilience",
	"internal/cgroup",
}

func runLedgeredActuation(pass *analysis.Pass) (any, error) {
	if pkgMatches(pass.Pkg.Path(), ledgerExemptPkgs...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := methodObj(pass, sel)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			declPkg := fn.Pkg().Path()
			switch fn.Name() {
			case "Pause", "Resume", "SetLevel":
				if pkgMatches(declPkg, "internal/throttle", "internal/cgroup") {
					pass.Reportf(call.Pos(),
						"direct call to (%s).%s bypasses the actuation ledger; actuate through resilience.LedgeredActuator or the throttle.Arbiter",
						declPkg, fn.Name())
				}
			case "WriteFile":
				if pkgMatches(declPkg, "internal/cgroup") {
					pass.Reportf(call.Pos(),
						"direct cgroup control-file write via (%s).WriteFile bypasses the actuation ledger; use the ledgered actuator",
						declPkg)
				}
			}
			return true
		})
	}
	return nil, nil
}

// methodObj resolves the *types.Func a selector call denotes: a method
// (value.Method(...), including interface methods — resolved to where the
// method is declared) or a package-qualified function (pkg.Func(...)).
func methodObj(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Func {
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}
