package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// DeterminismAnalyzer enforces reproducibility of the mapping/prediction
// pipeline: checkpoints, templates and experiment figures must be
// byte-identical under a fixed seed, which is what makes crash recovery
// and cross-host template exchange testable. In internal/mds,
// internal/statespace, internal/predictor, internal/trajectory,
// internal/sim, internal/sched and internal/workload (non-test files) it
// flags:
//
//   - time.Now — wall-clock reads; time must flow in from the caller;
//   - the global math/rand (and math/rand/v2) top-level functions, whose
//     shared source is seeded per-process — randomness must come from an
//     explicitly seeded *rand.Rand;
//   - map iteration feeding order-dependent output: appending to a slice
//     declared outside the loop without a subsequent sort of that slice in
//     the same block, accumulating floating-point values (addition is not
//     associative, so iteration order changes low bits), or printing.
//
// Map iteration that fills another map, counts integers, or appends and
// then sorts is fine and not flagged.
var DeterminismAnalyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "mapping/prediction packages must be deterministic: no wall clock, no global rand, no map-ordered output",
	Run:  runDeterminism,
}

var determinismPkgs = []string{
	"internal/mds",
	"internal/statespace",
	"internal/predictor",
	"internal/trajectory",
	"internal/sim",
	// Placement plans are reproducible artifacts: the same inventory, jobs
	// and seed must yield the same decisions.
	"internal/sched",
	// Open-loop arrival processes and queues drive every scenario-zoo
	// figure and the CI -scenarios determinism gate: a same-seed replay
	// must reproduce each summary value bit-for-bit.
	"internal/workload",
}

// globalRandFuncs are the math/rand top-level functions backed by the
// process-global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	if !pkgMatches(pass.Pkg.Path(), determinismPkgs...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if inTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondeterministicCall(pass, n)
			case *ast.BlockStmt:
				checkMapRanges(pass, n.List)
			case *ast.CaseClause:
				checkMapRanges(pass, n.Body)
			case *ast.CommClause:
				checkMapRanges(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

func checkNondeterministicCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn := methodObj(pass, sel)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: methods on an explicitly seeded
	// *rand.Rand are the sanctioned randomness source.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now in a deterministic package; take the timestamp as a parameter")
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "global %s.%s uses the process-wide source; draw from an explicitly seeded *rand.Rand", fn.Pkg().Path(), fn.Name())
		}
	}
}

// checkMapRanges scans one statement list so that a range-over-map can be
// absolved by a later sort of the slice it built, in the same list.
func checkMapRanges(pass *analysis.Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		checkMapRangeBody(pass, rng, stmts[i+1:])
	}
}

func checkMapRangeBody(pass *analysis.Pass, rng *ast.RangeStmt, after []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			lhs, ok := n.Lhs[0].(*ast.Ident)
			if !ok || !declaredOutside(pass, lhs, rng) {
				return true
			}
			switch n.Tok {
			case token.ASSIGN, token.DEFINE:
				if isAppendTo(pass, n.Rhs[0], lhs) && !sortedAfter(pass, lhs, after) {
					pass.Reportf(n.Pos(),
						"append to %s under map iteration without a subsequent sort; the result order follows the map's randomized order",
						lhs.Name)
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if isFloat(pass.TypesInfo.TypeOf(lhs)) {
					pass.Reportf(n.Pos(),
						"floating-point accumulation into %s under map iteration; float arithmetic is not associative, so the low bits follow the map's randomized order — iterate sorted keys",
						lhs.Name)
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn := methodObj(pass, sel); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "fmt" && hasPrefixAny(fn.Name(), "Print", "Fprint", "Sprint") {
					pass.Reportf(n.Pos(), "fmt.%s under map iteration emits map-ordered output; iterate sorted keys", fn.Name())
				}
			}
		}
		return true
	})
}

// declaredOutside reports whether id's object is declared outside the
// range statement (so writes to it under iteration escape the loop).
func declaredOutside(pass *analysis.Pass, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := pass.TypesInfo.ObjectOf(id)
	return obj != nil && (obj.Pos() < rng.Pos() || obj.Pos() >= rng.End())
}

// isAppendTo reports whether e is append(target, ...).
func isAppendTo(pass *analysis.Pass, e ast.Expr, target *ast.Ident) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.TypesInfo.ObjectOf(fn).(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(arg) == pass.TypesInfo.ObjectOf(target)
}

// sortedAfter reports whether one of the statements contains a sort of
// the slice (sort.Strings/Ints/Float64s/Slice/SliceStable/Sort or the
// slices package equivalents) with the same object as first argument.
func sortedAfter(pass *analysis.Pass, target *ast.Ident, stmts []ast.Stmt) bool {
	obj := pass.TypesInfo.ObjectOf(target)
	for _, stmt := range stmts {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := methodObj(pass, sel)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "sort", "slices":
			default:
				return true
			}
			if !hasPrefixAny(fn.Name(), "Sort", "Strings", "Ints", "Float64s", "Slice", "Stable") {
				return true
			}
			if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(arg) == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func hasPrefixAny(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}
