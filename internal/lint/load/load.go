// Package load turns package patterns into type-checked syntax trees for
// the lint analyzers, using only the standard library and the go command.
//
// It shells out to `go list -export -json -deps`, which both resolves the
// patterns and compiles every dependency into the build cache, then
// type-checks the target packages from source with imports satisfied from
// the cached export data (via go/importer's gc mode with a lookup
// function). This is the same division of labour as
// golang.org/x/tools/go/packages, minus the dependency — the build
// environment for this repository cannot fetch modules.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	// PkgPath is the import path ("repro/internal/mds").
	PkgPath string
	// Dir is the package's source directory.
	Dir string
	// GoFiles are the parsed file names, relative to Dir.
	GoFiles []string
	// Fset positions Syntax; shared across all packages of one Load call.
	Fset *token.FileSet
	// Syntax holds one parsed file per GoFiles entry, with comments.
	Syntax []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo records uses, defs, types and selections.
	TypesInfo *types.Info
}

// ListedPackage is the subset of `go list -json` output the loader
// consumes.
type ListedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// ExportIndex maps import paths to compiled export-data files. The gc
// importer resolves every import — including transitive ones — through
// this index, so it must cover the full dependency closure.
type ExportIndex map[string]string

// Importer returns a types.Importer that reads from the index.
func (x ExportIndex) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := x[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// GoList runs `go list -export -json -deps` in dir on the given patterns
// and returns the decoded package stream. Compilation errors in the tree
// surface here, before any analysis runs.
func GoList(dir string, patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("load: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var pkgs []ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Index builds an ExportIndex from a go list stream, applying each
// package's ImportMap so vendored or otherwise remapped import strings
// resolve to the export data of the package they actually denote.
func Index(pkgs []ListedPackage) ExportIndex {
	x := make(ExportIndex, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			x[p.ImportPath] = p.Export
		}
	}
	for _, p := range pkgs {
		for from, to := range p.ImportMap {
			if e, ok := x[to]; ok {
				x[from] = e
			}
		}
	}
	return x
}

// Load type-checks the packages matching patterns (as the go command in
// dir resolves them, e.g. "./...") and returns them in deterministic
// (import path) order. Test files are not loaded: the analyzers' test
// exemption is a package-path/file-name rule applied by the suite, and
// the tree's _test.go files are exercised by `go test`, not linted.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	index := Index(listed)
	fset := token.NewFileSet()
	imp := index.Importer(fset)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly {
			continue
		}
		var paths []string
		for _, g := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, g))
		}
		pkg, err := Check(fset, imp, p.ImportPath, paths)
		if err != nil {
			return nil, err
		}
		pkg.Dir = p.Dir
		pkg.GoFiles = append(pkg.GoFiles, p.GoFiles...)
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// Check parses the named files and type-checks them as package pkgPath,
// resolving imports through imp. It is the shared core of Load, the
// analysistest harness and the vettool mode of cmd/stayawaylint.
func Check(fset *token.FileSet, imp types.Importer, pkgPath string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
